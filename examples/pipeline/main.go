// Pipeline runs the dedup-style pipelined workload (the paper's worst-case
// benchmark: high syscall AND sync-op rates) under all three
// synchronization agents and compares their overhead — a miniature of
// Figure 5's dedup column, where the agent ranking WoC < PO/TO emerges.
package main

import (
	"fmt"

	mvee "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	b, err := workload.ByName("dedup")
	if err != nil {
		panic(err)
	}
	cfg := bench.Config{Workers: 4, Reps: 3, Seed: 9}

	native := bench.Measure(b, cfg, mvee.NoAgent, 1)
	fmt.Printf("dedup model (4-stage pipeline over kernel-backed queues)\n")
	fmt.Printf("native: %v  (%.0f syscalls/s, %.0f sync ops/s)\n\n",
		native.Duration, native.SyscallRate(), native.SyncRate())

	fmt.Printf("%-15s %12s %10s %12s\n", "agent", "duration", "slowdown", "slave stalls")
	for _, kind := range []mvee.AgentKind{mvee.TotalOrder, mvee.PartialOrder, mvee.WallOfClocks} {
		m := bench.Measure(b, cfg, kind, 2)
		if m.Diverged {
			fmt.Printf("%-15v DIVERGED\n", kind)
			continue
		}
		fmt.Printf("%-15v %12v %9.2fx %12d\n",
			kind, m.Duration, float64(m.Duration)/float64(native.Duration), m.Stalls)
	}
	fmt.Println("\nExpected shape (paper Fig. 5, dedup): wall-of-clocks lowest overhead,")
	fmt.Println("total-order and partial-order substantially slower on this sync-heavy pipeline.")
}
