// Covertchannel demonstrates the paper's §5.4 proof-of-concept covert
// channels: two diversified variants exchange their (supposedly private)
// randomized pointer values by abusing the MVEE's replication of
// gettimeofday results and of synchronization-operation outcomes — and the
// leak escapes without any divergence for the monitor to detect.
package main

import (
	"fmt"

	mvee "repro"
	"repro/internal/covert"
	"repro/internal/variant"
)

func main() {
	const seed = 99
	oracle := func(v int) uint64 {
		sp := variant.NewSpace(v, variant.Options{ASLR: true, Seed: seed})
		return sp.AllocData(8) >> 3 & (1<<covert.SecretBits - 1)
	}
	fmt.Printf("variant 0 secret (low pointer bits): %04x  (role %d)\n", oracle(0), covert.Role(oracle(0)))
	fmt.Printf("variant 1 secret (low pointer bits): %04x  (role %d)\n\n", oracle(1), covert.Role(oracle(1)))

	run := func(name string, prog mvee.Program, file string) {
		s := mvee.NewSession(mvee.Options{
			Variants: 2, Agent: mvee.WallOfClocks, ASLR: true, Seed: seed, MaxThreads: 8,
		}, prog)
		res := s.Run()
		leak, _ := s.Kernel().ReadFile(file)
		fmt.Printf("%s:\n", name)
		fmt.Printf("  leaked to the outside: %s\n", leak)
		fmt.Printf("  divergence detected  : %v\n\n", res.Divergence != nil)
	}

	run("timestamp-delta channel (phase0-phase1 = per-role secrets)",
		covert.TimestampChannel(), "/covert-ts")
	run("trylock channel (master's secret, recovered by every variant)",
		covert.TrylockChannel(), "/covert-lock")

	fmt.Println("Both channels moved variant-private data across the isolation boundary")
	fmt.Println("without divergence — the §5.4 result: this is an MVEE-generic issue,")
	fmt.Println("not one introduced by the synchronization agents.")
}
