// Quickstart: run a small multithreaded program as two diversified
// variants in lockstep, first with the wall-of-clocks synchronization agent
// (no divergence), then demonstrate that the monitor catches a variant
// whose output depends on its (randomized) address-space layout, and
// finally scale the same protection out: a fleet of MVEE sessions serving
// requests behind a gateway.
package main

import (
	"fmt"
	"log"
	"time"

	mvee "repro"
	"repro/internal/webserver"
)

func main() {
	// A data-race-free program: four threads increment a shared counter
	// under an instrumented mutex, then the main thread publishes the
	// total through a monitored write.
	counterProg := mvee.Program{Name: "counter", Main: func(t *mvee.Thread) {
		mu := mvee.NewMutex(t)
		total := 0
		handles := make([]*mvee.ThreadHandle, 4)
		for i := range handles {
			handles[i] = t.Spawn(func(t *mvee.Thread) {
				for j := 0; j < 1000; j++ {
					mu.Lock(t)
					total++
					mu.Unlock(t)
				}
			})
		}
		for _, h := range handles {
			h.Join()
		}
		mvee.WriteFile(t, "/result", []byte(fmt.Sprintf("total=%d", total)))
	}}

	session := mvee.NewSession(mvee.Options{
		Variants: 2,
		Agent:    mvee.WallOfClocks,
		ASLR:     true,
		Seed:     1,
	}, counterProg)
	res := session.Run()
	if res.Divergence != nil {
		log.Fatalf("unexpected divergence: %v", res.Divergence)
	}
	out, _ := session.Kernel().ReadFile("/result")
	fmt.Printf("counter program: %s in %v across %d variants\n", out, res.Duration, res.Variants)
	fmt.Printf("  %d monitored syscalls, %d sync ops replicated, %d slave stalls\n\n",
		res.Syscalls, res.SyncOps, res.Stalls)

	// Now a "compromised" program whose output leaks a layout-dependent
	// value: the variants disagree and the monitor kills them.
	leakyProg := mvee.Program{Name: "leaky", Main: func(t *mvee.Thread) {
		secret := t.DataAddr(8) // differs per variant under ASLR
		mvee.WriteFile(t, "/leak", []byte(fmt.Sprintf("%x", secret)))
	}}
	res = mvee.Run(mvee.Options{Variants: 2, Agent: mvee.WallOfClocks, ASLR: true, Seed: 1}, leakyProg)
	if res.Divergence == nil {
		log.Fatal("expected the monitor to catch the layout-dependent output")
	}
	fmt.Printf("leaky program: detected as expected:\n  %v\n\n", res.Divergence)

	// Serving shape: the same lockstep protection behind a gateway. A
	// fleet runs a pool of MVEE sessions of a server program; requests
	// fan over the pool, and a diverged session would be quarantined and
	// hot-replaced while the rest keep serving.
	pool, err := mvee.NewFleet(webserver.FleetConfig(
		webserver.Config{Port: 8080, PoolThreads: 4, InstrumentCustomSync: true, PageSize: 512},
		mvee.Options{Variants: 2, Agent: mvee.WallOfClocks, ASLR: true, DCL: true, Seed: 1},
		2, // pool size
	))
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	for i := 0; i < 100; i++ {
		if _, err := pool.Do([]byte("GET /")); err != nil {
			log.Fatalf("fleet request %d: %v", i, err)
		}
	}
	s := pool.Stats()
	pool.Close()
	fmt.Printf("fleet: %d requests over 2 sessions, p99 latency %v, %d divergences\n",
		s.Served, time.Duration(s.Latency.Quantile(0.99)), s.Divergences)
}
