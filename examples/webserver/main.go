// Webserver reproduces the paper's §5.5 use case end to end:
//
//  1. Serve load through a thread-pooled server running as two diversified
//     variants (ASLR + disjoint code layouts) and measure throughput
//     against a single native variant.
//  2. Launch the CVE-2013-2028-style attack tailored to one variant's
//     layout: against a single variant it succeeds; against two variants
//     the monitor detects divergence and shuts the server down before the
//     leaked data escapes.
package main

import (
	"fmt"
	"strings"
	"time"

	mvee "repro"
	"repro/internal/variant"
	"repro/internal/webserver"
)

const seed = 2028

func startServer(cfg webserver.Config, variants int, kind mvee.AgentKind) (*mvee.Session, <-chan *mvee.Result) {
	s := mvee.NewSession(mvee.Options{
		Variants: variants, Agent: kind, ASLR: true, DCL: true, Seed: seed, MaxThreads: 64,
	}, webserver.Program(cfg))
	done := make(chan *mvee.Result, 1)
	go func() { done <- s.Run() }()
	for {
		if cc, errno := s.Kernel().Connect(cfg.Port); errno == 0 {
			cc.Write([]byte("GET /"))
			cc.Close()
			return s, done
		}
		time.Sleep(time.Millisecond)
	}
}

func main() {
	// Throughput: native vs 2 variants (the paper measures 48% loopback
	// overhead; shape, not absolute numbers, is what we reproduce).
	fmt.Println("== throughput (loopback, 4 KiB page, 8 pool threads) ==")
	tput := func(variants int, kind mvee.AgentKind, port uint16) float64 {
		cfg := webserver.Config{Port: port, PoolThreads: 8, InstrumentCustomSync: true}
		s, done := startServer(cfg, variants, kind)
		res := webserver.GenerateLoad(s.Kernel(), port, 10, 30)
		s.Kernel().CloseListener(port)
		<-done
		return res.Throughput()
	}
	native := tput(1, mvee.NoAgent, 8080)
	protected := tput(2, mvee.WallOfClocks, 8081)
	fmt.Printf("native    : %8.0f req/s\n", native)
	fmt.Printf("2 variants: %8.0f req/s  (%.1f%% overhead; paper: 48%% on loopback)\n\n",
		protected, (1-protected/native)*100)

	// The attack: gadget address computed for variant 0's layout, exactly
	// what a one-variant info leak would give the adversary.
	gadget := variant.NewSpace(0, variant.Options{ASLR: true, DCL: true, Seed: seed}).AllocCode(64)

	fmt.Println("== attack against a single (unprotected) variant ==")
	cfg := webserver.Config{Port: 8082, PoolThreads: 4, InstrumentCustomSync: true, Vulnerable: true}
	s, done := startServer(cfg, 1, mvee.NoAgent)
	resp, err := webserver.Attack(s.Kernel(), cfg.Port, gadget)
	fmt.Printf("response: %q err=%v\n", resp, err)
	if strings.Contains(resp, "PWNED") {
		fmt.Println("=> exploit succeeded: code pointer leaked")
		fmt.Println()
	}
	s.Kernel().CloseListener(cfg.Port)
	<-done

	fmt.Println("== the same attack against two variants under the MVEE ==")
	cfg.Port = 8083
	s, done = startServer(cfg, 2, mvee.WallOfClocks)
	resp, err = webserver.Attack(s.Kernel(), cfg.Port, gadget)
	fmt.Printf("response: %q err=%v\n", resp, err)
	s.Kernel().CloseListener(cfg.Port)
	res := <-done
	if res.Divergence != nil {
		fmt.Printf("=> attack DETECTED, variants terminated before output escaped:\n   %v\n", res.Divergence)
	} else {
		fmt.Println("=> attack was not detected (unexpected)")
	}
}
