// Webserver reproduces the paper's §5.5 use case end to end:
//
//  1. Serve load through a thread-pooled server running as two diversified
//     variants (ASLR + disjoint code layouts) and measure throughput
//     against a single native variant.
//  2. Launch the CVE-2013-2028-style attack tailored to one variant's
//     layout: against a single variant it succeeds; against two variants
//     the monitor detects divergence and shuts the server down before the
//     leaked data escapes.
//  3. Scale out: serve the same workload from a FLEET of MVEE sessions
//     behind a gateway, fire the attack mid-traffic, and watch the fleet
//     quarantine the one diverged session, hot-replace it with a
//     re-randomized one, and keep serving — the same payload is then
//     harmless against the replacement.
package main

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	mvee "repro"
	"repro/internal/fleet"
	"repro/internal/variant"
	"repro/internal/webserver"
)

const seed = 2028

func startServer(cfg webserver.Config, variants int, kind mvee.AgentKind) (*mvee.Session, <-chan *mvee.Result) {
	s := mvee.NewSession(mvee.Options{
		Variants: variants, Agent: kind, ASLR: true, DCL: true, Seed: seed, MaxThreads: 64,
	}, webserver.Program(cfg))
	done := make(chan *mvee.Result, 1)
	go func() { done <- s.Run() }()
	for {
		if cc, errno := s.Kernel().Connect(cfg.Port); errno == 0 {
			cc.Write([]byte("GET /"))
			cc.Close()
			return s, done
		}
		time.Sleep(time.Millisecond)
	}
}

func main() {
	// Throughput: native vs 2 variants (the paper measures 48% loopback
	// overhead; shape, not absolute numbers, is what we reproduce).
	fmt.Println("== throughput (loopback, 4 KiB page, 8 pool threads) ==")
	tput := func(variants int, kind mvee.AgentKind, port uint16) float64 {
		cfg := webserver.Config{Port: port, PoolThreads: 8, InstrumentCustomSync: true}
		s, done := startServer(cfg, variants, kind)
		res := webserver.GenerateLoad(s.Kernel(), port, 10, 30)
		s.Kernel().CloseListener(port)
		<-done
		return res.Throughput()
	}
	native := tput(1, mvee.NoAgent, 8080)
	protected := tput(2, mvee.WallOfClocks, 8081)
	fmt.Printf("native    : %8.0f req/s\n", native)
	fmt.Printf("2 variants: %8.0f req/s  (%.1f%% overhead; paper: 48%% on loopback)\n\n",
		protected, (1-protected/native)*100)

	// The attack: gadget address computed for variant 0's layout, exactly
	// what a one-variant info leak would give the adversary.
	gadget := variant.NewSpace(0, variant.Options{ASLR: true, DCL: true, Seed: seed}).AllocCode(64)

	fmt.Println("== attack against a single (unprotected) variant ==")
	cfg := webserver.Config{Port: 8082, PoolThreads: 4, InstrumentCustomSync: true, Vulnerable: true}
	s, done := startServer(cfg, 1, mvee.NoAgent)
	resp, err := webserver.Attack(s.Kernel(), cfg.Port, gadget)
	fmt.Printf("response: %q err=%v\n", resp, err)
	if strings.Contains(resp, "PWNED") {
		fmt.Println("=> exploit succeeded: code pointer leaked")
		fmt.Println()
	}
	s.Kernel().CloseListener(cfg.Port)
	<-done

	fmt.Println("== the same attack against two variants under the MVEE ==")
	cfg.Port = 8083
	s, done = startServer(cfg, 2, mvee.WallOfClocks)
	resp, err = webserver.Attack(s.Kernel(), cfg.Port, gadget)
	fmt.Printf("response: %q err=%v\n", resp, err)
	s.Kernel().CloseListener(cfg.Port)
	res := <-done
	if res.Divergence != nil {
		fmt.Printf("=> attack DETECTED, variants terminated before output escaped:\n   %v\n", res.Divergence)
	} else {
		fmt.Println("=> attack was not detected (unexpected)")
	}

	// 3. The fleet: a pool of 4 MVEE sessions behind a gateway, attacked
	// mid-traffic. One session burns; the pool keeps serving.
	fmt.Println("\n== the attack against a FLEET of 4 MVEE sessions ==")
	pool, err := mvee.NewFleet(webserver.FleetConfig(
		webserver.Config{Port: 8084, PoolThreads: 4, InstrumentCustomSync: true, Vulnerable: true},
		mvee.Options{Variants: 2, Agent: mvee.WallOfClocks, ASLR: true, DCL: true, Seed: seed, MaxThreads: 64},
		4,
	))
	if err != nil {
		fmt.Println("fleet failed to start:", err)
		return
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 25; r++ {
				pool.Do([]byte("GET /"))
			}
		}()
	}
	payload := []byte(fmt.Sprintf("POST /upload %x", gadget))
	fresp, ferr := pool.Do(payload)
	fmt.Printf("attack response: %q err=%v\n", fresp, ferr)
	wg.Wait()
	for _, q := range pool.Quarantined() {
		fmt.Printf("=> QUARANTINED slot %d (served %d requests before divergence):\n   %v\n",
			q.Slot, q.Served, q.Divergence)
	}

	// Each exploit burns at most one session, and every replacement is
	// re-randomized. Keep replaying the same payload until every
	// original-layout session has been recycled (a replay that lands on
	// a replacement is already benign); then the leaked address is
	// garbage in EVERY variant — an error page, never a divergence.
	waitHealthy := func() {
		deadline := time.Now().Add(10 * time.Second)
		for pool.Stats().Healthy < 4 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	originals := func() (n int) {
		for _, m := range pool.Members() {
			if m.Gen == 0 {
				n++
			}
		}
		return n
	}
	for round := 2; originals() > 0; round++ {
		waitHealthy()
		fresp, ferr = pool.Do(payload)
		switch {
		case errors.Is(ferr, fleet.ErrNoHealthyMember) || errors.Is(ferr, fleet.ErrClosed):
			fmt.Printf("replay %d: pool busy recycling, retrying\n", round)
		case ferr != nil:
			// The member died mid-request: this payload burned it. (The
			// slot swap lands asynchronously, so don't quote a
			// remaining-originals count here — it would lag by one.)
			fmt.Printf("replay %d: burned one more original-layout session\n", round)
		default:
			fmt.Printf("replay %d: landed on a re-randomized session — benign %q\n", round, fresp)
		}
	}
	waitHealthy()
	fresp, ferr = pool.Do(payload)
	fmt.Printf("all original layouts recycled; the same payload is now harmless: %q err=%v\n", fresp, ferr)
	stats := pool.Stats()
	fmt.Printf("fleet served %d requests, %d divergence(s) quarantined, %d session(s) recycled, %d healthy\n",
		stats.Served, stats.Divergences, stats.Recycled, stats.Healthy)
	pool.Close()
}
