package monitor

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/kernel"
)

// The vectored/zero-copy syscalls carry their interesting structure in
// places a naive comparator could miss: writev's segment boundaries ride
// the iovec prefixes inside Call.Data, and sendfile's transfer window is
// pure argument tuple (the page bytes never reach the monitor). These
// tests pin that all of it participates in divergence detection.

func TestWritevIovcntDivergence(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	iov := kernel.EncodeIovec(nil, []byte("ab"), []byte("c"))
	var div any
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { div = recover() }()
		// Same payload bytes, but the slave claims three segments.
		m.Invoke(1, 0, kernel.Call{Nr: kernel.SysWritev, Args: [6]uint64{3, 3}, Data: iov})
	}()
	func() {
		defer func() { _ = recover() }()
		m.Invoke(0, 0, kernel.Call{Nr: kernel.SysWritev, Args: [6]uint64{3, 2}, Data: iov})
	}()
	wg.Wait()
	if div != ErrKilled {
		t.Fatalf("slave recovered %v, want ErrKilled", div)
	}
	d := m.Divergence()
	if d == nil || !strings.Contains(d.Reason, "argument 1") {
		t.Fatalf("divergence = %v, want iovcnt (argument 1) mismatch", d)
	}
}

func TestWritevSegmentBoundaryDivergence(t *testing.T) {
	// Identical flat payload ("abc"), identical iovcnt — but the variants
	// disagree on where one segment ends and the next begins. The length
	// prefixes are part of the wire payload, so this must diverge.
	m, _ := newTestMonitor(t, 2)
	master := kernel.EncodeIovec(nil, []byte("ab"), []byte("c"))
	slave := kernel.EncodeIovec(nil, []byte("a"), []byte("bc"))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { _ = recover() }()
		m.Invoke(1, 0, kernel.Call{Nr: kernel.SysWritev, Args: [6]uint64{3, 2}, Data: slave})
	}()
	func() {
		defer func() { _ = recover() }()
		m.Invoke(0, 0, kernel.Call{Nr: kernel.SysWritev, Args: [6]uint64{3, 2}, Data: master})
	}()
	wg.Wait()
	d := m.Divergence()
	if d == nil || d.Reason != "payload mismatch" {
		t.Fatalf("divergence = %v, want payload mismatch on iovec structure", d)
	}
}

func TestSendfileOffsetDivergenceInBatch(t *testing.T) {
	// The offset mismatch is detected on the BATCHED consumption path too:
	// the slave's run-ahead peek compares each record positionally, so a
	// divergent second call kills the session even though the master
	// published the whole batch in one ring operation.
	m, _ := newTestMonitor(t, 2)
	var div any
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { div = recover() }()
		calls := []kernel.Call{
			{Nr: kernel.SysGetpid},
			{Nr: kernel.SysSendfile, Args: [6]uint64{4, 3, 16, 8}},
		}
		m.InvokeBatchOn(1, 0, m.procs[1], calls, make([]kernel.Ret, len(calls)))
	}()
	func() {
		defer func() { _ = recover() }()
		calls := []kernel.Call{
			{Nr: kernel.SysGetpid},
			{Nr: kernel.SysSendfile, Args: [6]uint64{4, 3, 0, 8}},
		}
		m.InvokeBatchOn(0, 0, m.procs[0], calls, make([]kernel.Ret, len(calls)))
	}()
	wg.Wait()
	if div != ErrKilled {
		t.Fatalf("slave recovered %v, want ErrKilled", div)
	}
	d := m.Divergence()
	if d == nil || !strings.Contains(d.Reason, "argument 2") {
		t.Fatalf("divergence = %v, want offset (argument 2) mismatch", d)
	}
	if d.Variant != 1 || d.Tid != 0 {
		t.Fatalf("divergence location = variant %d tid %d", d.Variant, d.Tid)
	}
}

// captureTrace runs the canonical ready-connection sequence — opens, then
// a run of recv-shaped reads, a pid probe, and a response write — on a
// fresh 2-variant capturing monitor, issuing the run either as one
// InvokeBatchOn multi-record or as per-call Invokes, and returns the
// captured tid-0 record tape.
func captureTrace(t *testing.T, batched bool) []Record {
	t.Helper()
	k := kernel.New()
	procs := []*kernel.Proc{
		k.NewProc(0x1000_0000, 0x7000_0000),
		k.NewProc(0x2000_0000, 0xe000_0000),
	}
	m := New(k, procs, Config{MaxThreads: 8, RingCap: 32, Capture: true})
	k.WriteFile("/in", bytes.Repeat([]byte("req!"), 8))

	drive := func(v int) {
		fd := m.Invoke(v, 0, openCall("/in", kernel.ORdonly))
		out := m.Invoke(v, 0, openCall("/out", kernel.OCreat|kernel.OWronly))
		buf := make([]byte, 16)
		calls := []kernel.Call{
			{Nr: kernel.SysRead, Args: [6]uint64{fd.Val, 16}, Buf: buf},
			{Nr: kernel.SysGetpid},
			{Nr: kernel.SysRead, Args: [6]uint64{fd.Val, 16}, Buf: buf},
			{Nr: kernel.SysWrite, Args: [6]uint64{out.Val}, Data: []byte("HTTP/1.1 200 OK")},
		}
		rets := make([]kernel.Ret, len(calls))
		if batched {
			m.InvokeBatchOn(v, 0, m.procs[v], calls, rets)
		} else {
			for i := range calls {
				rets[i] = m.Invoke(v, 0, calls[i])
			}
		}
		for i, r := range rets {
			if !r.Ok() {
				t.Errorf("batched=%v variant %d call %d failed: %+v", batched, v, i, r)
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		drive(1)
	}()
	drive(0)
	wg.Wait()
	if d := m.Divergence(); d != nil {
		t.Fatalf("batched=%v diverged: %+v", batched, d)
	}
	tape := m.StopCapture()
	if len(tape) == 0 || len(tape[0]) == 0 {
		t.Fatalf("batched=%v captured nothing", batched)
	}
	return tape[0]
}

// TestBatchedReplicationMatchesSequential is the batching soundness
// property: batching changes record TRANSPORT (one reservation, one wake
// per run), not the trace. The same call sequence issued through
// InvokeBatchOn and through per-call Invoke must capture byte-identical
// record tapes — same ordering-clock stamps, same payloads, same results.
func TestBatchedReplicationMatchesSequential(t *testing.T) {
	seq := captureTrace(t, false)
	bat := captureTrace(t, true)
	if len(seq) != len(bat) {
		t.Fatalf("record counts differ: sequential %d, batched %d", len(seq), len(bat))
	}
	for i := range seq {
		se, err1 := seq[i].GobEncode()
		be, err2 := bat[i].GobEncode()
		if err1 != nil || err2 != nil {
			t.Fatalf("record %d encode: %v / %v", i, err1, err2)
		}
		if !bytes.Equal(se, be) {
			t.Fatalf("record %d differs:\n sequential %+v\n batched    %+v", i, seq[i], bat[i])
		}
	}
}

// TestBatchFallsBackOnIneligibleCall: a run containing a per-variant call
// (brk moves variant-local memory) must take the transparent per-call
// path — every slot still gets its result and nothing diverges.
func TestBatchFallsBackOnIneligibleCall(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	drive := func(v int) []kernel.Ret {
		calls := []kernel.Call{
			{Nr: kernel.SysGetpid},
			{Nr: kernel.SysBrk, Args: [6]uint64{0}},
			{Nr: kernel.SysGetpid},
		}
		rets := make([]kernel.Ret, len(calls))
		m.InvokeBatchOn(v, 0, m.procs[v], calls, rets)
		return rets
	}
	var slaveRets []kernel.Ret
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		slaveRets = drive(1)
	}()
	masterRets := drive(0)
	wg.Wait()
	if d := m.Divergence(); d != nil {
		t.Fatalf("fallback batch diverged: %+v", d)
	}
	for i, rets := range [][]kernel.Ret{masterRets, slaveRets} {
		for j, r := range rets {
			if !r.Ok() {
				t.Errorf("variant %d call %d: %+v, want success via fallback", i, j, r)
			}
		}
		// brk with a 0 argument reports the current break — nonzero proves
		// the per-variant call really executed in BOTH variants.
		if rets[1].Val == 0 {
			t.Errorf("variant %d brk returned 0; per-variant call skipped", i)
		}
	}
}

// TestBatchSlaveCopiesIntoCallBuf pins the zero-alloc contract on BOTH
// sides of a batched stream read: the master's recv lands directly in the
// caller-provided Buf (the kernel's readInto path) and the slave copies
// the replicated record's bytes into ITS caller's Buf — in each case
// Ret.Data aliases the buf's prefix, so a serving loop's scratch buffers
// are recycled rather than re-allocated per request.
func TestBatchSlaveCopiesIntoCallBuf(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	drive := func(v int) (kernel.Ret, []byte) {
		// Pipes are stream objects (readInto), so a Buf-carrying read takes
		// the allocation-free receive path exactly like a socket recv.
		pr := m.Invoke(v, 0, kernel.Call{Nr: kernel.SysPipe2})
		m.Invoke(v, 0, kernel.Call{Nr: kernel.SysWrite, Args: [6]uint64{pr.Val2}, Data: []byte("payload")})
		buf := make([]byte, 64)
		calls := []kernel.Call{
			{Nr: kernel.SysRead, Args: [6]uint64{pr.Val, 64}, Buf: buf},
			{Nr: kernel.SysGetpid},
		}
		rets := make([]kernel.Ret, len(calls))
		m.InvokeBatchOn(v, 0, m.procs[v], calls, rets)
		return rets[0], buf
	}
	var slaveRet kernel.Ret
	var slaveBuf []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		slaveRet, slaveBuf = drive(1)
	}()
	ret, buf := drive(0)
	wg.Wait()

	if d := m.Divergence(); d != nil {
		t.Fatalf("diverged: %+v", d)
	}
	if string(ret.Data) != "payload" || &ret.Data[0] != &buf[0] {
		t.Fatalf("master batched read = %q (aliases buf: %v), want %q in caller buf",
			ret.Data, len(ret.Data) > 0 && &ret.Data[0] == &buf[0], "payload")
	}
	if string(slaveRet.Data) != "payload" || &slaveRet.Data[0] != &slaveBuf[0] {
		t.Fatalf("slave batched read = %q, want %q copied into the caller's buf", slaveRet.Data, "payload")
	}
}
