package monitor_test

// The cross-layer determinism regression for multi-threaded forked
// processes: concurrent Spawn and Fork from racing threads must hand out
// IDENTICAL pids and tids in every variant. Both allocators draw inside
// ordered syscalls (fork, clone), so the monitor's ticket order — not host
// goroutine scheduling — decides the i-th allocation, and the compared
// write payloads below (which embed the drawn ids) prove every variant
// agreed on all of them.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/kernel"
)

func runSession(t *testing.T, opts core.Options, prog core.Program) *core.Result {
	t.Helper()
	s := core.NewSession(opts, prog)
	done := make(chan *core.Result, 1)
	go func() { done <- s.Run() }()
	select {
	case r := <-done:
		return r
	case <-time.After(60 * time.Second):
		s.Kill()
		t.Fatalf("%s: session deadlocked", prog.Name)
		return nil
	}
}

func TestInterleavedForkAndSpawnAllocationIsDeterministic(t *testing.T) {
	// The root spawns two racing threads; each forks a child, and each
	// child spawns a worker thread. Which fork wins the ordered section
	// varies run to run (host scheduling), but WITHIN a run every variant
	// sees the same winner — the drawn pid/tid values ride compared write
	// payloads, so any disagreement is a divergence, not a silent skew.
	for round := 0; round < 5; round++ {
		kern := kernel.New()
		prog := core.Program{Name: "fork-spawn-interleave", Main: func(th *core.Thread) {
			racer := func(tag string) func(*core.Thread) {
				return func(s *core.Thread) {
					h := s.Fork(func(c *core.Thread) {
						w := c.Spawn(func(w *core.Thread) {
							w.Syscall(kernel.SysGetpid, [6]uint64{}, nil)
						})
						if w == nil {
							c.Exit(9)
						}
						w.Join()
						// The compared payload: this child's pid and its
						// worker's tid, as THIS variant drew them.
						fd := c.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly},
							[]byte("/alloc-"+tag)).Val
						c.Syscall(kernel.SysWrite, [6]uint64{fd},
							[]byte(fmt.Sprintf("pid=%d wtid=%d", c.Getpid(), w.Tid)))
						c.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
						c.Exit(0)
					})
					if h == nil {
						t.Error("fork degraded with tid space to spare")
					}
				}
			}
			a := th.Spawn(racer("a"))
			b := th.Spawn(racer("b"))
			a.Join()
			b.Join()
			for reaped := 0; reaped < 2; {
				if _, st, errno := th.Wait(); errno == kernel.OK {
					if st != 0 {
						t.Errorf("child status %d, want 0", st)
					}
					reaped++
				} else if errno != kernel.EINTR {
					t.Errorf("wait: %v", errno)
					break
				}
			}
		}}
		res := runSession(t, core.Options{
			Variants: 3, Agent: agent.WallOfClocks, ASLR: true, DCL: true,
			Seed: int64(100 + round), MaxThreads: 16, Kernel: kern,
		}, prog)
		if res.Divergence != nil {
			t.Fatalf("round %d: interleaved fork/spawn diverged: %v", round, res.Divergence)
		}
		// Both children recorded an allocation; the two forks drew the two
		// deterministic pids in SOME order, and all four auxiliary tids
		// (two racers, two workers) are distinct.
		seen := map[string]bool{}
		for _, tag := range []string{"a", "b"} {
			data, ok := kern.ReadFile("/alloc-" + tag)
			if !ok {
				t.Fatalf("round %d: racer %s left no allocation record", round, tag)
			}
			var pid, wtid int
			if _, err := fmt.Sscanf(string(data), "pid=%d wtid=%d", &pid, &wtid); err != nil {
				t.Fatalf("round %d: bad record %q: %v", round, data, err)
			}
			if pid != 2 && pid != 3 {
				t.Fatalf("round %d: racer %s drew pid %d, want 2 or 3", round, tag, pid)
			}
			for _, k := range []string{fmt.Sprintf("pid%d", pid), fmt.Sprintf("tid%d", wtid)} {
				if seen[k] {
					t.Fatalf("round %d: duplicate allocation %s (records: %q)", round, k, data)
				}
				seen[k] = true
			}
		}
	}
}
