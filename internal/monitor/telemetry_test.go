package monitor

import (
	"sync"
	"testing"

	"repro/internal/kernel"
)

func newTelemetryMonitor(t *testing.T, variants int) (*Monitor, *kernel.Kernel) {
	t.Helper()
	k := kernel.New()
	procs := make([]*kernel.Proc, variants)
	for v := range procs {
		procs[v] = k.NewProc(uint64(0x1000_0000*(v+1)), uint64(0x7000_0000*(uint64(v)+1)))
	}
	return New(k, procs, Config{MaxThreads: 8, RingCap: 32, Telemetry: true}), k
}

func TestTelemetryDisabledByDefault(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	if m.Telemetry() != nil {
		t.Fatalf("telemetry recorder present without Config.Telemetry")
	}
	if tail := m.FlightTail(); tail != nil {
		t.Fatalf("flight tail = %v, want nil", tail)
	}
}

func TestTelemetryCountsMatchSyscalls(t *testing.T) {
	m, k := newTelemetryMonitor(t, 2)
	k.WriteFile("/in", []byte("payload"))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fd := m.Invoke(1, 0, openCall("/in", kernel.ORdonly))
		m.Invoke(1, 0, kernel.Call{Nr: kernel.SysRead, Args: [6]uint64{fd.Val, 64}})
		m.Invoke(1, 0, kernel.Call{Nr: kernel.SysGetpid})
	}()
	fd := m.Invoke(0, 0, openCall("/in", kernel.ORdonly))
	m.Invoke(0, 0, kernel.Call{Nr: kernel.SysRead, Args: [6]uint64{fd.Val, 64}})
	m.Invoke(0, 0, kernel.Call{Nr: kernel.SysGetpid})
	wg.Wait()
	if d := m.Divergence(); d != nil {
		t.Fatalf("divergence: %v", d)
	}

	tel := m.Telemetry()
	if tel == nil {
		t.Fatal("telemetry recorder missing")
	}
	for v := 0; v < 2; v++ {
		for _, nr := range []kernel.Sysno{kernel.SysOpen, kernel.SysRead, kernel.SysGetpid} {
			if got := tel.Matrix.Count(v, nr); got != 1 {
				t.Errorf("matrix count variant %d %v = %d, want 1", v, nr, got)
			}
		}
		// The matrix total must agree with the monitor's own per-variant
		// syscall counter — same interposition point, same increments.
		snap := tel.Matrix.Snapshot()
		if got, want := snap.Total(v), m.Syscalls(v); got != want {
			t.Errorf("matrix total variant %d = %d, want %d", v, got, want)
		}
	}

	// The first call of every (variant, sysno) cell is latency-sampled, so
	// each exercised cell must hold at least one observation.
	s := tel.Matrix.Snapshot()
	if c := s.Cells[0][kernel.SysOpen]; c.LatN == 0 {
		t.Errorf("sampled latency missing for master open: %+v", c)
	}

	// Live flight tails: both variants recorded their replicated calls.
	tails := m.FlightTail()
	if len(tails) != 2 {
		t.Fatalf("flight tails for %d variants, want 2", len(tails))
	}
	for v, tail := range tails {
		if len(tail) != 3 {
			t.Fatalf("variant %d flight tail has %d records, want 3: %v", v, len(tail), tail)
		}
		if tail[0].Sysno != kernel.SysOpen || tail[1].Sysno != kernel.SysRead || tail[2].Sysno != kernel.SysGetpid {
			t.Fatalf("variant %d flight order = %v", v, tail)
		}
	}
	// Matching calls must digest identically across variants — that is what
	// makes the tails comparable in a divergence dump.
	for i := range tails[0] {
		if tails[0][i].Digest != tails[1][i].Digest {
			t.Errorf("digest mismatch at %d: %016x vs %016x", i, tails[0][i].Digest, tails[1][i].Digest)
		}
	}
}

func TestDivergenceFreezesFlightTail(t *testing.T) {
	m, _ := newTelemetryMonitor(t, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { _ = recover() }()
		m.Invoke(1, 0, kernel.Call{Nr: kernel.SysGetpid})
		m.Invoke(1, 0, kernel.Call{Nr: kernel.SysWrite, Args: [6]uint64{3}, Data: []byte("EVIL")})
	}()
	func() {
		defer func() { _ = recover() }()
		m.Invoke(0, 0, kernel.Call{Nr: kernel.SysGetpid})
		m.Invoke(0, 0, kernel.Call{Nr: kernel.SysWrite, Args: [6]uint64{3}, Data: []byte("good")})
	}()
	wg.Wait()
	if m.Divergence() == nil {
		t.Fatal("expected divergence")
	}
	tail := m.FlightTail()
	if len(tail) != 2 {
		t.Fatalf("flight tails for %d variants, want 2", len(tail))
	}
	// The divergent write was blocked at the lockstep barrier before the
	// master executed it, so the frozen tails end at the last call that
	// replicated cleanly; the offending call itself rides the Divergence.
	for v := range tail {
		if n := len(tail[v]); n == 0 || tail[v][n-1].Sysno != kernel.SysGetpid {
			t.Fatalf("variant %d frozen tail = %v", v, tail[v])
		}
	}
	// Frozen means frozen: activity after the kill must not change the view.
	before := len(tail[0])
	func() {
		defer func() { _ = recover() }()
		m.Invoke(0, 0, kernel.Call{Nr: kernel.SysGetpid})
	}()
	if again := m.FlightTail(); len(again[0]) != before {
		t.Fatalf("frozen tail grew from %d to %d records", before, len(again[0]))
	}
}
