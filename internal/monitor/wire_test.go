package monitor

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/kernel"
)

func TestRecordGobRoundTrip(t *testing.T) {
	big := bytes.Repeat([]byte("spill!"), 40) // > InlinePayload
	recs := []Record{
		{Exit: true},
		{Nr: kernel.SysGetpid, Args: [6]uint64{1, 2, 3, 4, 5, 6},
			Ret: kernel.Ret{Val: 7}, Ts: 42, Ordered: true},
		func() Record {
			r := Record{Nr: kernel.SysWrite, Ret: kernel.Ret{Val: 5, Val2: 9, Err: kernel.EPIPE,
				Data: []byte("resp")}}
			r.SetPayload([]byte("small"))
			return r
		}(),
		func() Record {
			r := Record{Nr: kernel.SysSend}
			r.SetPayload(big)
			return r
		}(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		w, g := &recs[i], &got[i]
		if w.Nr != g.Nr || w.Args != g.Args || w.Ts != g.Ts ||
			w.Ordered != g.Ordered || w.Exit != g.Exit {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, w, g)
		}
		if w.Ret.Val != g.Ret.Val || w.Ret.Val2 != g.Ret.Val2 || w.Ret.Err != g.Ret.Err ||
			!bytes.Equal(w.Ret.Data, g.Ret.Data) {
			t.Fatalf("record %d Ret mismatch", i)
		}
		if !bytes.Equal(w.Payload(), g.Payload()) {
			t.Fatalf("record %d payload mismatch: %q vs %q", i, w.Payload(), g.Payload())
		}
	}
}

func TestRecordGobDecodeTruncated(t *testing.T) {
	r := Record{Nr: kernel.SysWrite}
	r.SetPayload([]byte("payload"))
	enc, err := r.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var out Record
	if err := out.GobDecode(enc[:len(enc)-3]); err == nil {
		t.Fatal("decoding a truncated record did not fail")
	}
}

// The compact wire format is the point: a record with a small payload must
// not pay for the fixed inline array.
func TestRecordGobCompact(t *testing.T) {
	r := Record{Nr: kernel.SysWrite}
	r.SetPayload([]byte("hello"))
	enc, err := r.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > 100 {
		t.Fatalf("5-byte-payload record encodes to %d bytes; the inline array is leaking into the wire format", len(enc))
	}
}
