package monitor

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/kernel"
)

// pollCall builds a SysPoll call over one descriptor.
func pollCall(fd uint64, events uint16, timeout uint64) kernel.Call {
	buf := make([]byte, kernel.PollFDSize)
	kernel.EncodePollFD(buf, 0, int(fd), events)
	return kernel.Call{Nr: kernel.SysPoll, Args: [6]uint64{1, timeout}, Data: buf}
}

// Poll is replicated: the master executes it against the kernel and the
// slave consumes the master's revents without executing — the slave's fd
// table never even holds the polled descriptor, so if the call ran per
// variant the slave would see PollNval instead of the master's PollIn.
func TestPollReplicated(t *testing.T) {
	m, k := newTestMonitor(t, 2)

	var slaveRet kernel.Ret
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // slave thread 0 mirrors the master's calls
		defer wg.Done()
		pr := m.Invoke(1, 0, kernel.Call{Nr: kernel.SysPipe2})
		m.Invoke(1, 0, kernel.Call{Nr: kernel.SysWrite, Args: [6]uint64{pr.Val2}, Data: []byte("evt")})
		slaveRet = m.Invoke(1, 0, pollCall(pr.Val, kernel.PollIn, kernel.PollNoTimeout))
	}()
	pr := m.Invoke(0, 0, kernel.Call{Nr: kernel.SysPipe2})
	m.Invoke(0, 0, kernel.Call{Nr: kernel.SysWrite, Args: [6]uint64{pr.Val2}, Data: []byte("evt")})
	masterRet := m.Invoke(0, 0, pollCall(pr.Val, kernel.PollIn, kernel.PollNoTimeout))
	wg.Wait()

	if d := m.Divergence(); d != nil {
		t.Fatalf("divergence: %v", d)
	}
	if masterRet.Val != 1 || kernel.DecodeRevents(masterRet.Data, 0)&kernel.PollIn == 0 {
		t.Fatalf("master poll: ready=%d revents=%#x", masterRet.Val, kernel.DecodeRevents(masterRet.Data, 0))
	}
	if slaveRet.Val != masterRet.Val ||
		kernel.DecodeRevents(slaveRet.Data, 0) != kernel.DecodeRevents(masterRet.Data, 0) {
		t.Fatalf("slave revents %#x/%d, master %#x/%d: result not replicated",
			kernel.DecodeRevents(slaveRet.Data, 0), slaveRet.Val,
			kernel.DecodeRevents(masterRet.Data, 0), masterRet.Val)
	}
	_ = k
}

// A variant polling a DIFFERENT descriptor set is divergence: the fd-set
// payload is compared like any write payload.
func TestPollFdSetMismatchDiverges(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	var div any
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { div = recover() }()
		m.Invoke(1, 0, pollCall(4, kernel.PollIn, 0)) // different fd than the master's
	}()
	func() {
		defer func() { _ = recover() }() // master unwinds on the lockstep divergence too
		m.Invoke(0, 0, pollCall(3, kernel.PollIn, 0))
	}()
	wg.Wait()
	if div != ErrKilled {
		t.Fatalf("slave recovered %v, want ErrKilled", div)
	}
	d := m.Divergence()
	if d == nil || d.Reason != "payload mismatch" {
		t.Fatalf("divergence = %v, want fd-set payload mismatch", d)
	}
}

// A variant polling with a different timeout is divergence too: the
// timeout is argument 1 and fully participates in the comparison.
func TestPollTimeoutMismatchDiverges(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	var div any
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { div = recover() }()
		m.Invoke(1, 0, pollCall(3, kernel.PollIn, 12345))
	}()
	func() {
		defer func() { _ = recover() }()
		m.Invoke(0, 0, pollCall(3, kernel.PollIn, 99999))
	}()
	wg.Wait()
	if div != ErrKilled {
		t.Fatalf("slave recovered %v, want ErrKilled", div)
	}
	d := m.Divergence()
	if d == nil || !strings.Contains(d.Reason, "argument 1") {
		t.Fatalf("divergence = %v, want timeout-argument mismatch", d)
	}
}

func TestClassifyPoll(t *testing.T) {
	want := class{monitored: true, replicated: true, blocking: true}
	if got := classify(kernel.SysPoll); got != want {
		t.Fatalf("classify(poll) = %+v, want %+v", got, want)
	}
	if argMask(kernel.SysPoll) != 0x3f {
		t.Fatal("poll arguments (nfds, timeout) must be fully compared")
	}
}
