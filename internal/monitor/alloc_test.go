package monitor

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
)

// Hard assertion of the replication hot path's 0 allocs/op invariant
// (ROADMAP): where the CI bench smoke only checks the benchmark's
// -benchmem output, this test fails the suite outright if a steady-state
// monitored call allocates — in either the master or the slave, since
// testing.AllocsPerRun counts process-wide mallocs while the mirrored
// slave goroutine runs the same calls concurrently.
//
// The matrix matches BenchmarkReplicationHotPath: both policies, payload-
// free (getpid) and inline-payload (64-byte pwrite) calls, telemetry off
// and on — the observability plane (counter matrix, sampled latency,
// flight-recorder appends) must not cost a single allocation. Parking
// keeps this invariant because futex.Parker parks on sync.Cond, which
// recycles its queue nodes — even under AllocsPerRun's GOMAXPROCS=1,
// where every rendezvous escalates through yields and may park.
func TestReplicationHotPathZeroAllocs(t *testing.T) {
	policies := []struct {
		name   string
		policy Policy
	}{
		{"strict", PolicyStrictLockstep},
		{"relaxed", PolicySecuritySensitive},
	}
	for _, pc := range policies {
		for _, payload := range []int{0, InlinePayload} {
			for _, tel := range []bool{false, true} {
				pc, payload, tel := pc, payload, tel
				t.Run(fmt.Sprintf("%s/payload-%d/telemetry=%v", pc.name, payload, tel), func(t *testing.T) {
					k := kernel.New()
					procs := []*kernel.Proc{
						k.NewProc(0x1000_0000, 0x7000_0000),
						k.NewProc(0x2000_0000, 0x7100_0000),
					}
					m := New(k, procs, Config{MaxThreads: 2, RingCap: 256, Policy: pc.policy, Telemetry: tel})
					data := make([]byte, payload)
					for i := range data {
						data[i] = byte(i)
					}
					one := func(v int, fd uint64) {
						if payload == 0 {
							m.Invoke(v, 0, kernel.Call{Nr: kernel.SysGetpid})
						} else {
							m.Invoke(v, 0, kernel.Call{
								Nr: kernel.SysPwrite, Args: [6]uint64{fd, 0}, Data: data,
							})
						}
					}
					setup := func(v int) uint64 {
						fd := m.Invoke(v, 0, openCall("/alloc-test", kernel.OCreat|kernel.ORdwr))
						// Pre-size so the measured pwrites never grow the inode.
						m.Invoke(v, 0, kernel.Call{
							Nr: kernel.SysPwrite, Args: [6]uint64{fd.Val, 0},
							Data: make([]byte, InlinePayload),
						})
						return fd.Val
					}
					const warmup, runs = 64, 200
					// AllocsPerRun invokes f runs+1 times (one untimed warmup
					// call); the slave mirrors the exact total or the last
					// rendezvous would hang.
					total := warmup + runs + 1
					done := make(chan struct{})
					go func() {
						defer close(done)
						fd := setup(1)
						for i := 0; i < total; i++ {
							one(1, fd)
						}
					}()
					fd := setup(0)
					for i := 0; i < warmup; i++ {
						one(0, fd)
					}
					allocs := testing.AllocsPerRun(runs, func() { one(0, fd) })
					<-done
					if d := m.Divergence(); d != nil {
						t.Fatalf("diverged: %v", d)
					}
					if allocs != 0 {
						t.Fatalf("replication hot path allocates %.2f/op, want 0", allocs)
					}
				})
			}
		}
	}
}
