// Package monitor implements the MVEE monitor: it interposes on every
// system call a variant thread makes, compares the variants' behavior,
// replicates I/O results from the master to the slaves, and enforces an
// equivalent cross-thread ordering of system calls using a Lamport logical
// clock (the "syscall ordering clock", §4.1).
//
// The monitor follows the paper's strict, security-oriented model: no
// variant proceeds past a monitored call until an equivalent call has been
// validated against the master's record, and any mismatch — different
// syscall number, different arguments, different output payload — is
// divergence, which terminates all variants.
package monitor

import "repro/internal/kernel"

// Policy selects which system calls are lockstep-compared. §5.1 evaluates
// "a variety of monitoring policies ranging from strict lockstepping on all
// system calls to lockstepping only on security-sensitive system calls".
// I/O replication is unaffected by policy — inputs must be duplicated and
// outputs deduplicated no matter what, or the variants drift apart.
type Policy int

const (
	// PolicyStrictLockstep compares every monitored call.
	PolicyStrictLockstep Policy = iota
	// PolicySecuritySensitive compares only security-sensitive calls
	// (writes, opens, memory mapping, network); other calls are still
	// replicated but not argument-checked.
	PolicySecuritySensitive
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == PolicySecuritySensitive {
		return "security-sensitive"
	}
	return "strict-lockstep"
}

// class describes how the monitor handles one syscall number.
type class struct {
	monitored  bool // passes through the rendezvous at all
	ordered    bool // stamped by the syscall ordering clock (non-blocking calls only)
	replicated bool // master executes, slaves receive the master's results
	perVariant bool // every variant executes it against its own process state
	blocking   bool // may block in the kernel, so it cannot be ordered (§4.1 Limitations)
	sensitive  bool // compared even under PolicySecuritySensitive
}

// classify implements Table-4.1-style routing:
//
//   - sched_yield, gettid and futex never reach the monitor. The paper
//     treats sys_futex as unordered (footnote 5); since the sync agents
//     already order all inter-thread communication, per-variant futexes
//     are safe.
//   - brk/mmap/munmap/mprotect/clone execute in every variant (address
//     spaces are per-variant and intentionally different) but are ordered
//     and compared with address arguments masked out.
//   - blocking calls (read/recv/accept/poll, nanosleep) are replicated but not
//     ordered: the monitor must not sit in an ordering critical section
//     across a call that may never return. nanosleep in particular must
//     be replicated, not per-variant: only the master pays the sleep, and
//     the slaves consume the replicated (empty) result during replay —
//     running it per variant made every slave re-pay the master's sleep
//     and hid mismatched sleeps from the divergence detector.
//   - wall-clock reads (gettimeofday/clock_gettime) are ordered and
//     replicated like any other nondeterministic result: the master's
//     reading is the session's time, or per-variant clock skew becomes a
//     guaranteed benign-divergence source the moment a timestamp feeds a
//     compared payload.
//   - everything else is ordered, compared and replicated.
func classify(nr kernel.Sysno) class {
	switch nr {
	case kernel.SysSchedYield, kernel.SysGettid, kernel.SysFutex:
		return class{}
	case kernel.SysNanosleep:
		return class{monitored: true, replicated: true, blocking: true}
	case kernel.SysBrk, kernel.SysMunmap:
		return class{monitored: true, ordered: true, perVariant: true}
	case kernel.SysMmap, kernel.SysMprotect:
		return class{monitored: true, ordered: true, perVariant: true, sensitive: true}
	case kernel.SysClone:
		return class{monitored: true, ordered: true, perVariant: true, sensitive: true}
	case kernel.SysFork:
		// Fork executes in every variant (each builds its own child
		// process) inside the ordered section, which is exactly what makes
		// the returned child pids and initial tids deterministic: the i-th
		// ordered fork of every variant draws the same ids.
		return class{monitored: true, ordered: true, perVariant: true, sensitive: true}
	case kernel.SysExit, kernel.SysThreadExit:
		// Process exit is ordered so that exit/kill/waitpid interleavings
		// replay identically: a master that observed ESRCH because the
		// target died first must see its slaves observe the same.
		return class{monitored: true, ordered: true, perVariant: true}
	case kernel.SysKill:
		// Kill is per-variant (each variant posts the signal to its own
		// process tree, so slave-side pending state marches with the
		// master's) and sensitive: the (pid, signo) arguments are compared
		// even under the relaxed policy — a variant signalling a different
		// process or signal is an attack, not noise.
		return class{monitored: true, ordered: true, perVariant: true, sensitive: true}
	case kernel.SysSigaction, kernel.SysSigprocmask:
		// Signal-table edits are per-variant ordered state changes; the
		// (signo, disposition/mask) arguments are security-relevant and
		// compared under every policy.
		return class{monitored: true, ordered: true, perVariant: true, sensitive: true}
	case kernel.SysWaitpid:
		// Waitpid blocks until a child dies, so like read/accept it cannot
		// sit inside the ordering critical section; the master executes the
		// reap and the (pid, status) result is replicated. It is sensitive:
		// which child a variant waits for is compared under every policy.
		return class{monitored: true, replicated: true, blocking: true, sensitive: true}
	case kernel.SysRead, kernel.SysRecv, kernel.SysAccept:
		return class{monitored: true, replicated: true, blocking: true}
	case kernel.SysPoll:
		// poll may park in the kernel until a descriptor turns ready, so
		// like read/accept it cannot sit inside the ordering critical
		// section; the master executes it and the revents array is
		// replicated. The fd-set payload and the (nfds, timeout) arguments
		// all participate in divergence detection: a variant polling a
		// different descriptor set — the evented server's entire control
		// flow — is as divergent as one writing different bytes.
		return class{monitored: true, replicated: true, blocking: true}
	case kernel.SysWrite, kernel.SysSend, kernel.SysPwrite,
		kernel.SysWritev, kernel.SysSendfile:
		// The vectored/zero-copy transfers are writes: ordered, replicated,
		// and compared under every policy. For writev the iovec count rides
		// Args[1] and the segment-boundary prefixes ride the Data payload,
		// so both participate in divergence detection; for sendfile the page
		// bytes never reach the monitor at all — the compared surface is the
		// (out_fd, in_fd, offset, count) argument tuple.
		return class{monitored: true, ordered: true, replicated: true, sensitive: true}
	case kernel.SysOpen, kernel.SysUnlink, kernel.SysFtruncate,
		kernel.SysSocket, kernel.SysBind, kernel.SysListen, kernel.SysConnect,
		kernel.SysShutdown:
		return class{monitored: true, ordered: true, replicated: true, sensitive: true}
	case kernel.SysClose, kernel.SysDup, kernel.SysLseek, kernel.SysStat,
		kernel.SysPread, kernel.SysPipe2, kernel.SysGetpid,
		kernel.SysGettimeofday, kernel.SysClockGettime:
		return class{monitored: true, ordered: true, replicated: true}
	default:
		// Unknown syscalls (e.g. the MVEE-awareness call) are monitored
		// so the monitor can intercept them before the kernel sees them.
		return class{monitored: true, ordered: true, perVariant: true}
	}
}

// argMask returns a bitmask of which Args positions participate in
// comparison. Address-valued arguments are excluded: under ASLR they differ
// across variants by design, exactly like the paper's monitor compares
// normalized, not raw, arguments.
func argMask(nr kernel.Sysno) uint8 {
	switch nr {
	case kernel.SysBrk:
		return 0 // the requested break is an address
	case kernel.SysMmap:
		return 1 << 1 // compare length; addr hint masked
	case kernel.SysMunmap, kernel.SysMprotect:
		return 1<<1 | 1<<2 // compare length (and prot); addr masked
	case kernel.SysClone, kernel.SysFork:
		// No compared arguments: the determinism that matters (identical
		// child tids/pids) is a property of the ordered execution, not of
		// the call's inputs.
		return 0
	case kernel.SysKill, kernel.SysWaitpid, kernel.SysSigaction,
		kernel.SysSigprocmask, kernel.SysExit, kernel.SysThreadExit:
		// Full comparison, stated explicitly rather than via the default:
		// pid/signo/disposition/mask/exit-status arguments are plain values
		// that must be identical across variants — a variant signalling a
		// different target, registering a different handler, or exiting
		// with a different status is divergence.
		return 0x3f
	case kernel.SysNanosleep:
		// The duration is a plain value, identical across variants by
		// construction — compare it, or a variant sleeping a different
		// amount than its counterparts stays invisible to the detector
		// (the mask was dead code while nanosleep bypassed the monitor;
		// now that it is monitored, it must bite).
		return 1 << 0
	default:
		return 0x3f // all six
	}
}
