package monitor

import (
	"encoding/binary"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
)

// The wall-clock regression suite: time syscalls must never be a
// benign-divergence source. The kernel's nowNanos is strictly increasing
// (two reads NEVER return the same value), so if each variant executed
// gettimeofday itself, any timestamp flowing into a compared payload would
// diverge by construction. The monitor must instead replicate the master's
// reading — which these tests pin down by writing the observed timestamps
// back out through the (payload-compared) write syscall.

// timeProgram reads the clock twice (gettimeofday + clock_gettime) and
// writes both readings into a file; run by every variant's thread 0.
func timeProgram(m *Monitor, v int) (t1, t2 uint64, ok bool) {
	fd := m.Invoke(v, 0, openCall("/ts", kernel.OCreat|kernel.ORdwr))
	if !fd.Ok() {
		return 0, 0, false
	}
	t1 = m.Invoke(v, 0, kernel.Call{Nr: kernel.SysGettimeofday}).Val
	t2 = m.Invoke(v, 0, kernel.Call{Nr: kernel.SysClockGettime}).Val
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], t1)
	binary.LittleEndian.PutUint64(buf[8:], t2)
	w := m.Invoke(v, 0, kernel.Call{Nr: kernel.SysWrite, Args: [6]uint64{fd.Val}, Data: buf[:]})
	m.Invoke(v, 0, kernel.Call{Nr: kernel.SysClose, Args: [6]uint64{fd.Val}})
	return t1, t2, w.Ok()
}

func TestWallClockReplicatedAcrossVariants(t *testing.T) {
	const variants = 3
	m, _ := newTestMonitor(t, variants)
	var (
		wg sync.WaitGroup
		t1 [variants]uint64
		t2 [variants]uint64
	)
	for v := 1; v < variants; v++ {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			t1[v], t2[v], _ = timeProgram(m, v)
		}()
	}
	var ok bool
	t1[0], t2[0], ok = timeProgram(m, 0)
	wg.Wait()
	if !ok {
		t.Fatal("master time program failed")
	}
	if d := m.Divergence(); d != nil {
		t.Fatalf("timestamp-derived payload tripped the divergence detector: %v", d)
	}
	for v := 1; v < variants; v++ {
		if t1[v] != t1[0] || t2[v] != t2[0] {
			t.Fatalf("variant %d observed (%d, %d), master (%d, %d): wall clock not replicated",
				v, t1[v], t2[v], t1[0], t2[0])
		}
	}
	if t1[0] == t2[0] {
		t.Fatal("kernel clock not strictly increasing (covert-channel PoC depends on it)")
	}
}

func TestNanosleepSleepsOnlyInMaster(t *testing.T) {
	const rounds = 3
	m, k := newTestMonitor(t, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			m.Invoke(1, 0, kernel.Call{Nr: kernel.SysNanosleep,
				Args: [6]uint64{uint64(time.Millisecond)}})
		}
	}()
	start := time.Now()
	for i := 0; i < rounds; i++ {
		r := m.Invoke(0, 0, kernel.Call{Nr: kernel.SysNanosleep,
			Args: [6]uint64{uint64(time.Millisecond)}})
		if !r.Ok() {
			t.Fatalf("master nanosleep: %v", r.Err)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if d := m.Divergence(); d != nil {
		t.Fatalf("matched nanosleeps diverged: %v", d)
	}
	if got := k.Sleeps(); got != rounds {
		t.Fatalf("kernel executed %d sleeps for %d call pairs, want %d (master only)",
			got, rounds, rounds)
	}
	if elapsed < rounds*time.Millisecond {
		t.Fatalf("master did not actually sleep (%v elapsed)", elapsed)
	}
}

// A variant that sleeps when its counterpart does not must now be caught:
// nanosleep used to bypass the monitor entirely, so mismatched sleeps were
// invisible to the divergence detector.
func TestNanosleepMismatchIsDivergence(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }() // ErrKilled on divergence
		m.Invoke(1, 0, kernel.Call{Nr: kernel.SysGetpid})
	}()
	func() {
		defer func() { recover() }()
		m.Invoke(0, 0, kernel.Call{Nr: kernel.SysNanosleep,
			Args: [6]uint64{uint64(time.Millisecond)}})
	}()
	wg.Wait()
	if m.Divergence() == nil {
		t.Fatal("mismatched nanosleep/getpid pair not detected as divergence")
	}
}

// Mismatched sleep DURATIONS must also be divergence: argMask(nanosleep)
// compares the duration argument now that the call is monitored (a masked
// duration would let a variant sleep arbitrarily differently unnoticed).
func TestNanosleepDurationMismatchIsDivergence(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }()
		m.Invoke(1, 0, kernel.Call{Nr: kernel.SysNanosleep,
			Args: [6]uint64{uint64(10 * time.Millisecond)}})
	}()
	func() {
		defer func() { recover() }()
		m.Invoke(0, 0, kernel.Call{Nr: kernel.SysNanosleep,
			Args: [6]uint64{uint64(time.Millisecond)}})
	}()
	wg.Wait()
	if d := m.Divergence(); d == nil {
		t.Fatal("mismatched nanosleep durations not detected as divergence")
	} else if !strings.Contains(d.Reason, "argument 0") {
		t.Fatalf("unexpected divergence reason: %v", d)
	}
}
