package monitor_test

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// TestRecordWireGolden locks the trace.Version 5 record encoding
// byte-for-byte. The wire layout (wire.go) is
//
//	u32 Nr | 6×u64 Args | u64 Val | u64 Val2 | u32 Err | u32 Sig |
//	u8 Inj | u32 len(Data) | Data | u64 Ts | u8 flags | u32 plen | payload
//
// little-endian throughout. Any drift — a field added, reordered, or
// widened without bumping trace.Version — shows up here as a byte diff, not
// as a silently unreadable trace three sessions later.
func TestRecordWireGolden(t *testing.T) {
	if trace.Version != 5 {
		t.Fatalf("trace.Version = %d; this golden pins version 5 — record a new golden alongside the bump", trace.Version)
	}

	r := monitor.Record{
		Nr:   kernel.SysWrite,
		Args: [6]uint64{0x0102030405060708, 2, 3, 4, 5, 6},
		Ret: kernel.Ret{
			Val:  0x1122334455667788,
			Val2: 9,
			Err:  kernel.EPIPE,
			Sig:  10,
			Inj:  kernel.InjError,
			Data: []byte("resp"),
		},
		Ts:      0xCAFEBABE,
		Ordered: true,
		Exit:    true,
	}
	r.SetPayload([]byte("hello"))

	var want []byte
	want = binary.LittleEndian.AppendUint32(want, 4) // SysWrite — enum IS wire format
	want = binary.LittleEndian.AppendUint64(want, 0x0102030405060708)
	for a := uint64(2); a <= 6; a++ {
		want = binary.LittleEndian.AppendUint64(want, a)
	}
	want = binary.LittleEndian.AppendUint64(want, 0x1122334455667788)
	want = binary.LittleEndian.AppendUint64(want, 9)
	want = binary.LittleEndian.AppendUint32(want, 32) // EPIPE
	want = binary.LittleEndian.AppendUint32(want, 10)
	want = append(want, kernel.InjError)
	want = binary.LittleEndian.AppendUint32(want, 4)
	want = append(want, "resp"...)
	want = binary.LittleEndian.AppendUint64(want, 0xCAFEBABE)
	want = append(want, 1|2) // wireFlagOrdered | wireFlagExit
	want = binary.LittleEndian.AppendUint32(want, 5)
	want = append(want, "hello"...)

	got, err := r.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("v5 record encoding drifted:\n got  %s\n want %s",
			hex.EncodeToString(got), hex.EncodeToString(want))
	}

	// And the golden bytes must decode back to the record, so the pin
	// guards both directions.
	var back monitor.Record
	if err := back.GobDecode(want); err != nil {
		t.Fatal(err)
	}
	if back.Nr != r.Nr || back.Args != r.Args || back.Ret.Val != r.Ret.Val ||
		back.Ret.Val2 != r.Ret.Val2 || back.Ret.Err != r.Ret.Err ||
		back.Ret.Sig != r.Ret.Sig || back.Ret.Inj != r.Ret.Inj ||
		!bytes.Equal(back.Ret.Data, r.Ret.Data) || back.Ts != r.Ts ||
		back.Ordered != r.Ordered || back.Exit != r.Exit ||
		!bytes.Equal(back.Payload(), r.Payload()) {
		t.Fatalf("golden bytes decoded to %+v, want %+v", back, r)
	}
}

// TestSysnoWireValues pins the numeric values that travel in the Nr word.
// trace.Version 5's only change was APPENDING SysWritev and SysSendfile to
// the enum; reordering or inserting mid-enum would silently re-map every
// recorded trace, so the load-bearing values are fixed here by number.
func TestSysnoWireValues(t *testing.T) {
	for _, pin := range []struct {
		nr   kernel.Sysno
		val  uint32
		name string
	}{
		{kernel.SysWrite, 4, "write"},
		{kernel.SysFutex, 33, "futex"},
		{kernel.SysPoll, 35, "poll"},
		{kernel.SysThreadExit, 41, "thread_exit"},
		{kernel.SysWritev, 42, "writev"},     // appended in v5
		{kernel.SysSendfile, 43, "sendfile"}, // appended in v5
	} {
		if uint32(pin.nr) != pin.val {
			t.Errorf("%s = %d, want %d: Sysno values are wire format (trace.Version %d); append, never reorder",
				pin.name, uint32(pin.nr), pin.val, trace.Version)
		}
		if got := pin.nr.String(); got != pin.name {
			t.Errorf("Sysno %d renders %q, want %q", uint32(pin.nr), got, pin.name)
		}
	}
}
