package monitor

import (
	"strings"
	"testing"

	"repro/internal/kernel"
)

// The enum-completeness guard: every Sysno in [SysOpen, SysnoMax) must
// have a name, a DELIBERATE monitor classification, and an argument-mask
// decision, all recorded in the table below. Before this test existed, an
// appended syscall silently stringified as "sys#N" and fell into
// classify's default case with nothing tripping — the table forces every
// future append to state its routing decisions explicitly (and keeps the
// trace wire format honest: Sysno values are recorded-trace currency, so
// the walk also locks the enum's order).
func TestSysnoSurfaceIsComplete(t *testing.T) {
	type decision struct {
		name string
		cls  class
		mask uint8
	}
	const all = uint8(0x3f)
	want := map[kernel.Sysno]decision{
		kernel.SysOpen:      {"open", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysClose:     {"close", class{monitored: true, ordered: true, replicated: true}, all},
		kernel.SysRead:      {"read", class{monitored: true, replicated: true, blocking: true}, all},
		kernel.SysWrite:     {"write", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysPread:     {"pread", class{monitored: true, ordered: true, replicated: true}, all},
		kernel.SysPwrite:    {"pwrite", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysLseek:     {"lseek", class{monitored: true, ordered: true, replicated: true}, all},
		kernel.SysStat:      {"stat", class{monitored: true, ordered: true, replicated: true}, all},
		kernel.SysUnlink:    {"unlink", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysDup:       {"dup", class{monitored: true, ordered: true, replicated: true}, all},
		kernel.SysPipe2:     {"pipe2", class{monitored: true, ordered: true, replicated: true}, all},
		kernel.SysFtruncate: {"ftruncate", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysBrk:       {"brk", class{monitored: true, ordered: true, perVariant: true}, 0},
		kernel.SysMmap:      {"mmap", class{monitored: true, ordered: true, perVariant: true, sensitive: true}, 1 << 1},
		kernel.SysMunmap:    {"munmap", class{monitored: true, ordered: true, perVariant: true}, 1<<1 | 1<<2},
		kernel.SysMprotect:  {"mprotect", class{monitored: true, ordered: true, perVariant: true, sensitive: true}, 1<<1 | 1<<2},
		kernel.SysClone:     {"clone", class{monitored: true, ordered: true, perVariant: true, sensitive: true}, 0},
		kernel.SysExit:      {"exit", class{monitored: true, ordered: true, perVariant: true}, all},
		kernel.SysGettimeofday: {"gettimeofday",
			class{monitored: true, ordered: true, replicated: true}, all},
		kernel.SysClockGettime: {"clock_gettime",
			class{monitored: true, ordered: true, replicated: true}, all},
		kernel.SysNanosleep:  {"nanosleep", class{monitored: true, replicated: true, blocking: true}, 1 << 0},
		kernel.SysSchedYield: {"sched_yield", class{}, all},
		kernel.SysGetpid:     {"getpid", class{monitored: true, ordered: true, replicated: true}, all},
		kernel.SysGettid:     {"gettid", class{}, all},
		kernel.SysSocket:     {"socket", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysBind:       {"bind", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysListen:     {"listen", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysAccept:     {"accept", class{monitored: true, replicated: true, blocking: true}, all},
		kernel.SysConnect:    {"connect", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysSend:       {"send", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysRecv:       {"recv", class{monitored: true, replicated: true, blocking: true}, all},
		kernel.SysShutdown:   {"shutdown", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysFutex:      {"futex", class{}, all},
		kernel.SysMVEEAware:  {"mvee_aware", class{monitored: true, ordered: true, perVariant: true}, all},
		kernel.SysPoll:       {"poll", class{monitored: true, replicated: true, blocking: true}, all},
		kernel.SysFork:       {"fork", class{monitored: true, ordered: true, perVariant: true, sensitive: true}, 0},
		kernel.SysWaitpid:    {"waitpid", class{monitored: true, replicated: true, blocking: true, sensitive: true}, all},
		kernel.SysKill:       {"kill", class{monitored: true, ordered: true, perVariant: true, sensitive: true}, all},
		kernel.SysSigaction:  {"sigaction", class{monitored: true, ordered: true, perVariant: true, sensitive: true}, all},
		kernel.SysSigprocmask: {"sigprocmask",
			class{monitored: true, ordered: true, perVariant: true, sensitive: true}, all},
		kernel.SysThreadExit: {"thread_exit",
			class{monitored: true, ordered: true, perVariant: true}, all},
		// The vectored/zero-copy transfers are writes: ordered, replicated,
		// sensitive, with every argument compared (writev's iovec count in
		// Args[1]; sendfile's fd pair, offset, and byte count).
		kernel.SysWritev:   {"writev", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
		kernel.SysSendfile: {"sendfile", class{monitored: true, ordered: true, replicated: true, sensitive: true}, all},
	}

	n := 0
	for s := kernel.SysOpen; s < kernel.SysnoMax; s++ {
		n++
		d, ok := want[s]
		if !ok {
			t.Errorf("Sysno %d (%v) has no entry in the guard table: a new syscall "+
				"must record its name, classify case, and argMask decision here", uint32(s), s)
			continue
		}
		if got := s.String(); got != d.name {
			t.Errorf("%v: String() = %q, want %q (missing sysnoNames entry?)", s, got, d.name)
		}
		if strings.HasPrefix(s.String(), "sys#") {
			t.Errorf("Sysno %d stringifies as %q — add it to sysnoNames", uint32(s), s)
		}
		if got := classify(s); got != d.cls {
			t.Errorf("%v: classify = %+v, want %+v", s, got, d.cls)
		}
		if got := argMask(s); got != d.mask {
			t.Errorf("%v: argMask = %#x, want %#x", s, got, d.mask)
		}
	}
	if n != len(want) {
		t.Errorf("guard table has %d entries for %d enum members — remove stale rows", len(want), n)
	}
	// Internal-consistency sweeps over the classification itself:
	for s := kernel.SysOpen; s < kernel.SysnoMax; s++ {
		cls := classify(s)
		if cls.ordered && cls.blocking {
			t.Errorf("%v is both ordered and blocking: a blocking call must not sit "+
				"inside the ordering critical section (§4.1 Limitations)", s)
		}
		if cls.replicated && cls.perVariant {
			t.Errorf("%v is both replicated and per-variant", s)
		}
		if (cls.ordered || cls.replicated || cls.perVariant || cls.blocking) && !cls.monitored {
			t.Errorf("%v has routing flags but is not monitored: %+v", s, cls)
		}
	}
	// A hypothetical appended syscall (SysnoMax itself) must stringify as
	// sys#N and fall into the documented default class — the behaviour the
	// guard exists to catch.
	if got := kernel.SysnoMax.String(); !strings.HasPrefix(got, "sys#") {
		t.Errorf("out-of-range Sysno stringified as %q", got)
	}
	if got := classify(kernel.SysnoMax); !(got.monitored && got.ordered && got.perVariant) {
		t.Errorf("default classify changed: %+v", got)
	}
}
