package monitor

import (
	"sync"
	"time"
)

// Offline record/replay support (RecPlay [35] style, §6): during recording,
// an extra consumer group drains every per-thread syscall record into
// memory; during replay, the rings are pre-filled from the trace and the
// single replayed variant consumes them exactly like an online slave.

// RecordCapture drains the per-thread syscall buffers into memory.
type RecordCapture struct {
	m     *Monitor
	group int
	mu    sync.Mutex
	recs  [][]Record
	stop  chan struct{}
	done  sync.WaitGroup
}

// startCapture begins draining; called from New when cfg.Capture is set.
func (m *Monitor) startCapture() *RecordCapture {
	c := &RecordCapture{
		m:     m,
		group: m.tapeGroup,
		recs:  make([][]Record, m.cfg.MaxThreads),
		stop:  make(chan struct{}),
	}
	for tid := 0; tid < m.cfg.MaxThreads; tid++ {
		c.done.Add(1)
		go c.drain(tid)
	}
	return c
}

func (c *RecordCapture) drain(tid int) {
	defer c.done.Done()
	var local []Record
	// Batched consumption: one cursor move per run of published records.
	// The tape owns the copies outright (the monitor disables the payload
	// arenas under capture), so consuming eagerly is safe. Rings are
	// created lazily by the variants; until thread tid makes its first
	// monitored call there is nothing to drain (and polling the atomic
	// pointer creates nothing).
	var batch [slaveBatch]Record
	take := func() bool {
		buf := c.m.rings[tid].Load()
		if buf == nil {
			return false
		}
		n := buf.TryConsumeBatch(c.group, batch[:])
		if n == 0 {
			return false
		}
		local = append(local, batch[:n]...)
		return true
	}
	for {
		if take() {
			continue
		}
		select {
		case <-c.stop:
			for take() {
			}
			c.mu.Lock()
			c.recs[tid] = local
			c.mu.Unlock()
			return
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// Stop ends the capture and returns the per-thread record streams. Call it
// only after the recorded session has finished.
func (c *RecordCapture) Stop() [][]Record {
	close(c.stop)
	c.done.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recs
}

// prefillReplay loads a recorded trace into the rings so the replayed
// variant can consume it, and rewires the monitor into replay mode.
func (m *Monitor) prefillReplay(recs [][]Record) {
	for tid, stream := range recs {
		if tid >= len(m.rings) {
			break
		}
		// One batched append per thread: the rings were sized to hold the
		// whole trace, so this is one sequence claim per stream.
		m.ring(tid).AppendBatch(stream)
	}
}
