package monitor

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/kernel"
)

func newTestMonitor(t *testing.T, variants int) (*Monitor, *kernel.Kernel) {
	t.Helper()
	k := kernel.New()
	procs := make([]*kernel.Proc, variants)
	for v := range procs {
		procs[v] = k.NewProc(uint64(0x1000_0000*(v+1)), uint64(0x7000_0000*(uint64(v)+1)))
	}
	return New(k, procs, Config{MaxThreads: 8, RingCap: 32}), k
}

func openCall(path string, flags uint64) kernel.Call {
	return kernel.Call{Nr: kernel.SysOpen, Args: [6]uint64{flags}, Data: []byte(path)}
}

func TestClassifyRouting(t *testing.T) {
	cases := []struct {
		nr   kernel.Sysno
		want class
	}{
		{kernel.SysSchedYield, class{}},
		{kernel.SysFutex, class{}},
		{kernel.SysWrite, class{monitored: true, ordered: true, replicated: true, sensitive: true}},
		{kernel.SysRead, class{monitored: true, replicated: true, blocking: true}},
		{kernel.SysBrk, class{monitored: true, ordered: true, perVariant: true}},
		{kernel.SysClone, class{monitored: true, ordered: true, perVariant: true, sensitive: true}},
		{kernel.SysGettimeofday, class{monitored: true, ordered: true, replicated: true}},
	}
	for _, c := range cases {
		if got := classify(c.nr); got != c.want {
			t.Errorf("classify(%v) = %+v, want %+v", c.nr, got, c.want)
		}
	}
}

func TestArgMaskAddressArgsExcluded(t *testing.T) {
	if argMask(kernel.SysBrk) != 0 {
		t.Error("brk address must be masked")
	}
	if argMask(kernel.SysMmap)&1 != 0 {
		t.Error("mmap addr hint must be masked")
	}
	if argMask(kernel.SysWrite) != 0x3f {
		t.Error("write args must be fully compared")
	}
}

func TestMasterSlaveReplication(t *testing.T) {
	m, k := newTestMonitor(t, 2)
	k.WriteFile("/in", []byte("payload"))

	var slaveData []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // slave thread 0
		defer wg.Done()
		fd := m.Invoke(1, 0, openCall("/in", kernel.ORdonly))
		r := m.Invoke(1, 0, kernel.Call{Nr: kernel.SysRead, Args: [6]uint64{fd.Val, 64}})
		slaveData = r.Data
	}()
	fd := m.Invoke(0, 0, openCall("/in", kernel.ORdonly))
	if !fd.Ok() {
		t.Fatalf("master open: %v", fd.Err)
	}
	r := m.Invoke(0, 0, kernel.Call{Nr: kernel.SysRead, Args: [6]uint64{fd.Val, 64}})
	wg.Wait()
	if string(r.Data) != "payload" || string(slaveData) != "payload" {
		t.Fatalf("master %q / slave %q", r.Data, slaveData)
	}
	if m.Divergence() != nil {
		t.Fatalf("unexpected divergence: %v", m.Divergence())
	}
	// The file must have been read once by the kernel for the master only;
	// the slave's fd table must not even hold the descriptor (replication,
	// not re-execution).
	if m.Syscalls(0) != 2 || m.Syscalls(1) != 2 {
		t.Fatalf("syscall counts %d/%d, want 2/2", m.Syscalls(0), m.Syscalls(1))
	}
}

func TestDivergenceOnArgMismatch(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	var div any
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { div = recover() }()
		m.Invoke(1, 0, kernel.Call{Nr: kernel.SysLseek, Args: [6]uint64{3, 99, 0}})
	}()
	func() {
		defer func() { _ = recover() }() // master also unwinds on divergence
		m.Invoke(0, 0, kernel.Call{Nr: kernel.SysLseek, Args: [6]uint64{3, 0, 0}})
	}()
	wg.Wait()
	if div != ErrKilled {
		t.Fatalf("slave recovered %v, want ErrKilled", div)
	}
	d := m.Divergence()
	if d == nil || !strings.Contains(d.Reason, "argument") {
		t.Fatalf("divergence = %v", d)
	}
	if d.Variant != 1 || d.Tid != 0 {
		t.Fatalf("divergence location = variant %d tid %d", d.Variant, d.Tid)
	}
}

func TestDivergenceOnPayloadMismatch(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { _ = recover() }()
		m.Invoke(1, 0, kernel.Call{Nr: kernel.SysWrite, Args: [6]uint64{3}, Data: []byte("EVIL")})
	}()
	func() {
		defer func() { _ = recover() }() // lockstep barrier: master panics on divergence
		m.Invoke(0, 0, kernel.Call{Nr: kernel.SysWrite, Args: [6]uint64{3}, Data: []byte("good")})
	}()
	wg.Wait()
	d := m.Divergence()
	if d == nil || d.Reason != "payload mismatch" {
		t.Fatalf("divergence = %v", d)
	}
}

func TestSyscallOrderingAcrossThreads(t *testing.T) {
	// Two master threads issue ordered calls; the slave threads must be
	// able to consume them regardless of their own scheduling. This is
	// the §4.1 ordering-clock mechanism end to end.
	m, _ := newTestMonitor(t, 2)
	const per = 50
	var wg sync.WaitGroup
	for tid := 0; tid < 2; tid++ {
		wg.Add(2)
		go func(tid int) { // master thread
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Invoke(0, tid, kernel.Call{Nr: kernel.SysGetpid})
			}
		}(tid)
		go func(tid int) { // slave thread
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Invoke(1, tid, kernel.Call{Nr: kernel.SysGetpid})
			}
		}(tid)
	}
	wg.Wait()
	if m.Divergence() != nil {
		t.Fatalf("divergence: %v", m.Divergence())
	}
	if m.Syscalls(0) != 2*per || m.Syscalls(1) != 2*per {
		t.Fatalf("counts %d/%d", m.Syscalls(0), m.Syscalls(1))
	}
}

func TestMVEEAwareAnsweredByMonitor(t *testing.T) {
	m, _ := newTestMonitor(t, 3)
	for v := 0; v < 3; v++ {
		r := m.Invoke(v, 0, kernel.Call{Nr: kernel.SysMVEEAware})
		if !r.Ok() || r.Val != uint64(v) {
			t.Fatalf("variant %d: mvee_aware = %+v", v, r)
		}
	}
}

func TestUnmonitoredCallsBypassRendezvous(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	// sched_yield by a slave alone must not block waiting for the master.
	r := m.Invoke(1, 0, kernel.Call{Nr: kernel.SysSchedYield})
	if !r.Ok() {
		t.Fatalf("yield: %v", r.Err)
	}
	if m.Syscalls(1) != 0 {
		t.Fatal("unmonitored call counted as monitored")
	}
}

func TestKillIsIdempotentAndFirstDivergenceWins(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	d1 := &Divergence{Variant: 1, Reason: "first"}
	d2 := &Divergence{Variant: 1, Reason: "second"}
	m.Kill(d1)
	m.Kill(d2)
	if got := m.Divergence(); got != d1 {
		t.Fatalf("divergence = %v, want first", got)
	}
	if !m.Killed() {
		t.Fatal("not killed")
	}
}

func TestOnKillHooksRunOnce(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	n := 0
	m.OnKill(func() { n++ })
	m.Kill(nil)
	m.Kill(nil)
	if n != 1 {
		t.Fatalf("hook ran %d times", n)
	}
}

func TestInvokeAfterKillPanics(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	m.Kill(nil)
	defer func() {
		if recover() != ErrKilled {
			t.Fatal("Invoke after kill did not panic ErrKilled")
		}
	}()
	m.Invoke(0, 0, kernel.Call{Nr: kernel.SysGetpid})
}

func TestThreadExitMismatchIsDivergence(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	// Master records one call then exit; slave exits immediately. Both
	// sides run concurrently because the lockstep barrier makes the
	// master wait for the slave's digest.
	var div any
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { div = recover() }()
		m.ThreadExit(1, 0)
	}()
	func() {
		defer func() { _ = recover() }()
		m.Invoke(0, 0, kernel.Call{Nr: kernel.SysGetpid})
		m.ThreadExit(0, 0)
	}()
	wg.Wait()
	if div != ErrKilled {
		t.Fatalf("recovered %v", div)
	}
	if d := m.Divergence(); d == nil || !strings.Contains(d.Reason, "exited") {
		t.Fatalf("divergence = %v", d)
	}
}

func TestPerVariantExecutionOfMemoryCalls(t *testing.T) {
	m, _ := newTestMonitor(t, 2)
	var slaveAddr uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		slaveAddr = m.Invoke(1, 0, kernel.Call{Nr: kernel.SysMmap, Args: [6]uint64{0, 4096}}).Val
	}()
	masterAddr := m.Invoke(0, 0, kernel.Call{Nr: kernel.SysMmap, Args: [6]uint64{0, 4096}}).Val
	wg.Wait()
	if m.Divergence() != nil {
		t.Fatalf("divergence: %v", m.Divergence())
	}
	if masterAddr == slaveAddr {
		t.Fatal("mmap returned identical addresses: not executed per variant")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyStrictLockstep.String() != "strict-lockstep" ||
		PolicySecuritySensitive.String() != "security-sensitive" {
		t.Fatal("policy strings wrong")
	}
}

func TestDivergenceErrorRendering(t *testing.T) {
	d := &Divergence{Variant: 2, Tid: 1, Reason: "payload mismatch",
		Master: "write(...)", Slave: "write(...)"}
	if !strings.Contains(d.Error(), "variant 2") || !strings.Contains(d.Error(), "payload mismatch") {
		t.Fatalf("Error() = %q", d.Error())
	}
}
