package monitor

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/futex"
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/telemetry"
)

// ErrKilled is panicked out of monitor calls once the session has been
// terminated (divergence or external shutdown). The MVEE core recovers it
// at the top of every variant thread.
var ErrKilled = fmt.Errorf("monitor: session killed")

// InlinePayload is the number of input-payload bytes a Record or digest
// carries inline, inside the ring slot itself. Payloads at or below this
// size (the vast majority of write/open/send payloads in server traffic)
// cross the master→slave and slave→master rings with zero heap allocations
// and zero shared mutable state; only larger payloads spill (see
// spillArena).
const InlinePayload = 64

// payloadBox is the inline-or-spill storage both Record and digest embed
// for the call's input payload: up to InlinePayload bytes live in the
// fixed array inside the ring slot itself; larger payloads live in spill
// (a per-thread arena slot on the hot path, a fresh allocation otherwise).
// Keeping the triple in one embedded type keeps the storage invariant in
// one place for both directions of the replication protocol.
type payloadBox struct {
	n      int32
	inline [InlinePayload]byte
	spill  []byte
}

// Payload returns the stored input payload (nil if none). The returned
// slice must not be retained past the record's consumption window (for a
// slave: until it advances past the record) — large payloads may live in a
// recycled arena.
func (b *payloadBox) Payload() []byte {
	if b.spill != nil {
		return b.spill
	}
	return b.inline[:b.n]
}

// SetPayload stores p, inline if it fits and in a freshly allocated spill
// otherwise. The hot path does not use this (it places large payloads in
// per-thread arenas; see storeSpill) — SetPayload is for trace
// construction and tests.
func (b *payloadBox) SetPayload(p []byte) {
	b.n = int32(len(p))
	if len(p) <= InlinePayload {
		copy(b.inline[:], p)
		b.spill = nil
		return
	}
	b.spill = append([]byte(nil), p...)
}

// storeInline stores a payload known to fit inline.
func (b *payloadBox) storeInline(p []byte) {
	b.n = int32(len(p))
	copy(b.inline[:], p)
}

// storeSpill stores an oversized payload through arena slot seq (of a ring
// with capacity rcap), or a fresh allocation when arena recycling is
// unsound (arena == nil). Callers must have Reserved seq first — that is
// what makes the arena slot reusable (see spillArena).
func (b *payloadBox) storeSpill(p []byte, arena *spillArena, rcap int, seq uint64) {
	b.n = int32(len(p))
	if arena != nil {
		b.spill = arena.put(rcap, seq, p)
		return
	}
	b.spill = append([]byte(nil), p...)
}

// Record is one entry in a per-thread syscall buffer: the master's account
// of one monitored system call, against which slaves validate their own.
// The input payload travels in the embedded payloadBox; use Payload and
// SetPayload. Records gob-encode compactly (see GobEncode): only the
// payload bytes cross the wire, not the fixed inline array.
type Record struct {
	Nr   kernel.Sysno
	Args [6]uint64
	Ret  kernel.Ret
	Ts   uint64 // syscall-ordering-clock stamp, valid if Ordered

	payloadBox

	Ordered bool
	Exit    bool // thread-exit marker, not a syscall
}

// Divergence describes why the monitor shut the variants down.
type Divergence struct {
	Variant int    // the slave that mismatched
	Tid     int    // logical thread
	Reason  string // human-readable mismatch description
	Master  string // master's record, rendered
	Slave   string // slave's attempted call, rendered
}

// Error implements the error interface.
func (d *Divergence) Error() string {
	return fmt.Sprintf("divergence in variant %d thread %d: %s (master: %s, slave: %s)",
		d.Variant, d.Tid, d.Reason, d.Master, d.Slave)
}

// Config sizes a Monitor.
type Config struct {
	Variants   int
	MaxThreads int
	RingCap    int
	Policy     Policy
	// Capture adds a tape consumer group that drains every record into
	// memory for offline replay (see trace.go). Capture retains records
	// indefinitely, so it disables the spill arenas (large payloads are
	// freshly allocated instead of recycled).
	Capture bool
	// Replay pre-fills the syscall buffers from a recorded trace; the
	// single variant then consumes them like an online slave.
	Replay [][]Record
	// Telemetry arms the observability plane: the per-syscall/per-variant
	// counter+latency matrix and the per-variant flight recorders (see
	// internal/telemetry). The hot-path cost is one atomic add plus the
	// flight ring's atomic stores per monitored call — and zero
	// allocations, which TestReplicationHotPathZeroAllocs asserts with
	// this flag on.
	Telemetry bool
}

func (c *Config) fill() {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 64
	}
	if c.RingCap <= 0 {
		c.RingCap = 256
	}
}

// slaveBatch is how many master records a slave thread consumes from its
// ring in one peek: one cursor release per batch instead of one per record.
// Under the relaxed (run-ahead) policy the master is typically several
// records ahead, so real batches form; under strict lockstep batches
// degenerate to length 1 without costing anything extra.
const slaveBatch = 8

// slaveCons is one (consumer group, thread) pair's consumption state over
// its per-thread syscall ring: a prefetched batch of records plus the next
// ring sequence to peek. The ring cursor deliberately lags `next` while a
// batch is in flight — slots (and their arena payloads) may only be
// recycled once the slave is completely done with them, so the cursor is
// released in a single AdvanceTo when the next batch is fetched.
type slaveCons struct {
	next  uint64 // next ring sequence to peek
	i, n  int    // batch[i:n] are fetched but unprocessed
	batch [slaveBatch]Record
}

// counter is a cache-line-isolated event counter: the per-variant syscall
// counters are bumped on every monitored call by different threads, and
// without padding variant 0's and variant 1's counters share a line.
type counter struct {
	n atomic.Uint64
	_ [56]byte
}

// spillArena is a per-thread recycler for oversized payloads. Slot
// seq&(cap-1) backs the payload of ring entry seq; it may be reused exactly
// when ring slot seq&(cap-1) may (the producer Reserves the sequence first,
// which blocks until every consumer group's cursor has passed the old
// occupant), so in steady state large payloads cost zero allocations too.
// The backing slices are allocated lazily: most threads never spill.
type spillArena struct {
	bufs [][]byte
}

// put copies p into the arena slot for seq (of a ring with capacity rcap)
// and returns the stable copy.
func (a *spillArena) put(rcap int, seq uint64, p []byte) []byte {
	if a.bufs == nil {
		a.bufs = make([][]byte, rcap)
	}
	i := seq & uint64(rcap-1)
	b := append(a.bufs[i][:0], p...)
	a.bufs[i] = b
	return b
}

// Monitor supervises one MVEE session: variant 0 is the master, variants
// 1..N-1 are slaves. One Monitor thread per variant-thread-set is implicit
// in the design (§4: "each of ReMon's threads monitors one set of
// equivalent variant threads"); here the per-thread syscall buffers play
// that role.
//
// Ordering (§4.1, ticket form). The paper's monitor wraps every
// non-blocking monitored call in an "ordered critical section": enter,
// stamp the call with the current syscall-ordering-clock time, execute,
// and leave — so that the stamps form a total order identical to the order
// in which the master actually executed the calls, and the slaves can
// replay exactly that order by waiting for their own copy of the clock to
// reach each record's stamp. The first implementation here used a global
// mutex for that critical section; this one uses ordering tickets instead:
//
//   - A master thread Takes a ticket t from a cache-line-isolated dispenser
//     (clock.Tickets) — one uncontended fetch-add, no lock.
//   - It waits until the master's Lamport clock reads exactly t (its turn
//     in the total order). When only one thread is making ordered calls —
//     the common case for a server handling one request per thread — the
//     clock already equals t and the wait is a single load.
//   - It executes the call with Ts = t and Ticks the clock, passing the
//     turn to ticket t+1.
//
// This is a ticket lock whose "now serving" word IS the syscall ordering
// clock, which is what makes it secure in the paper's sense: the stamp is
// not merely taken inside a critical section, the stamp is the critical
// section — a thread holding ticket t is by construction the t-th ordered
// call, so no interleaving of threads can produce records whose stamps
// disagree with the execution order. Genuine cross-thread rendezvous (two
// threads with adjacent tickets) costs one cache-line transfer of the
// serving clock; threads that don't contend never synchronize at all.
// Publication of the record happens after the turn is passed: records
// travel through per-thread rings, so cross-thread publication order is
// irrelevant and keeping it out of the ordered section shortens the
// serialized path to stamp+execute.
type Monitor struct {
	cfg   Config
	kern  *kernel.Kernel
	procs []*kernel.Proc

	// clocks[v] is variant v's private copy of the syscall ordering clock.
	clocks []*clock.Lamport
	// clockParks[v] parks threads waiting for clocks[v] to reach their
	// ticket (the §4.1 ordered-section waits) once spinning stops paying
	// off; every Tick of clocks[v] wakes it — one atomic load when nobody
	// is parked, which is the common (uncontended) case.
	clockParks []futex.Parker
	// tickets dispenses the master's ordering tickets (see the type
	// comment); clocks[0] is the corresponding "now serving" word.
	tickets clock.Tickets
	// rings[tid] carries master records to the slaves; group g serves
	// slave variant g+1. scons[g][tid] is that slave thread's batched
	// consumption state. Rings are created lazily on first use (see
	// Monitor.ring): a session sized for MaxThreads=64 typically runs a
	// dozen threads, and eagerly allocating 64 record rings dominates both
	// session construction (zeroing megabytes of slots) and steady-state
	// GC cost (the slots hold pointers, so the collector scans them on
	// every cycle, used or not).
	rings     []atomic.Pointer[ring.Log[Record]]
	ringCap   int
	ringGroup int
	scons     [][]slaveCons
	// inboxes[g][tid] carries slave g+1's call digests to the master for
	// lockstep calls: the master waits for (and validates) every slave's
	// equivalent call BEFORE executing, so no variant proceeds past a
	// lockstepped call until all variants have made it (§2). inboxPos
	// tracks the master's read position per (g, tid). Lazily created like
	// rings (see Monitor.inbox).
	inboxes  [][]atomic.Pointer[ring.Log[digest]]
	inboxPos [][]uint64

	// arenas[tid] recycles the master's oversized record payloads;
	// darenas[g][tid] recycles slave g+1's oversized digest payloads. Nil
	// when recycling would be unsound (capture retains records; replay has
	// no live producer).
	arenas  []spillArena
	darenas [][]spillArena
	// outArenas[tid] recycles the master's OUTPUT payloads for calls made
	// with a caller-owned destination buffer (kernel.Call.Buf): the result
	// bytes alias the master guest's reusable buffer, which the guest will
	// overwrite on its next receive, so they must be copied into stable
	// slot-lifetime storage before publication. Same recycling soundness
	// condition (and nil-means-fresh-allocation fallback) as arenas.
	outArenas []spillArena
	// brecs[tid] is the master's record scratch for batched invocations
	// (InvokeBatchOn): records are built across the whole batch before
	// publication, so they cannot live on the stack of a per-call helper.
	// Only thread tid's master goroutine touches its slot.
	brecs [][]Record

	// publish is true when master records have at least one consumer
	// (live slaves or the capture tape).
	publish   bool
	replay    bool
	tapeGroup int
	capture   *RecordCapture

	killed   atomic.Bool
	diverged atomic.Pointer[Divergence]
	onKill   []func()
	killMu   sync.Mutex

	syscalls []counter // per variant: monitored syscall count
	unmon    []counter // per variant: unmonitored syscall count

	// tel is the observability plane (nil unless Config.Telemetry): the
	// syscall matrix fed from InvokeOn and the per-variant flight
	// recorders fed from the master/slave call paths. flightTail is the
	// tail captured at kill time (killMu), so quarantine forensics see
	// the records that led INTO the divergence, not the unwind noise
	// after it.
	tel        *telemetry.Recorder
	flightTail [][]telemetry.FlightRecord
}

// New creates a monitor for nvariants over kern. procs[v] is variant v's
// kernel process.
func New(kern *kernel.Kernel, procs []*kernel.Proc, cfg Config) *Monitor {
	cfg.fill()
	cfg.Variants = len(procs)
	m := &Monitor{
		cfg:      cfg,
		kern:     kern,
		procs:    procs,
		clocks:   make([]*clock.Lamport, len(procs)),
		rings:    make([]atomic.Pointer[ring.Log[Record]], cfg.MaxThreads),
		syscalls: make([]counter, len(procs)),
		unmon:    make([]counter, len(procs)),
	}
	m.replay = cfg.Replay != nil
	m.publish = cfg.Variants > 1 || cfg.Capture
	// Clocks: one per variant; replay additionally needs the "slave"
	// clock at index 1.
	if m.replay && len(m.clocks) < 2 {
		m.clocks = make([]*clock.Lamport, 2)
	}
	for v := range m.clocks {
		m.clocks[v] = &clock.Lamport{}
	}
	m.clockParks = make([]futex.Parker, len(m.clocks))
	if cfg.Telemetry {
		// Sized by len(m.clocks), not cfg.Variants: replay runs a single
		// variant through the slave path under variant index 1.
		m.tel = telemetry.New(len(m.clocks))
	}
	slaves := len(procs) - 1
	groups := slaves
	if cfg.Capture {
		m.tapeGroup = groups
		groups++
	}
	ringCap := cfg.RingCap
	if m.replay {
		groups = 1
		// Replay has no live producer to back-pressure: size the rings
		// to hold the complete trace.
		for _, stream := range cfg.Replay {
			if len(stream) > ringCap {
				ringCap = len(stream)
			}
		}
	}
	if groups < 1 {
		groups = 1 // rings still need a consumer group; unused for 1 variant
	}
	m.ringCap = ringCap
	m.ringGroup = groups
	consGroups := slaves
	if m.replay {
		consGroups = 1
	}
	m.scons = make([][]slaveCons, consGroups)
	for g := range m.scons {
		m.scons[g] = make([]slaveCons, cfg.MaxThreads)
	}
	// Spill arenas recycle large payloads in lockstep with ring-slot
	// recycling; see spillArena. Capture retains records past consumption
	// (the tape), so recycling the master arenas would corrupt the trace;
	// replay publishes nothing live.
	if m.publish && !cfg.Capture && !m.replay {
		m.arenas = make([]spillArena, cfg.MaxThreads)
		m.outArenas = make([]spillArena, cfg.MaxThreads)
	}
	m.brecs = make([][]Record, cfg.MaxThreads)
	if m.replay {
		m.prefillReplay(cfg.Replay)
	}
	if cfg.Capture {
		m.capture = m.startCapture()
	}
	m.inboxes = make([][]atomic.Pointer[ring.Log[digest]], len(procs)-1)
	m.inboxPos = make([][]uint64, len(procs)-1)
	if !m.replay {
		m.darenas = make([][]spillArena, len(procs)-1)
	}
	for g := range m.inboxes {
		m.inboxes[g] = make([]atomic.Pointer[ring.Log[digest]], cfg.MaxThreads)
		m.inboxPos[g] = make([]uint64, cfg.MaxThreads)
		if m.darenas != nil {
			m.darenas[g] = make([]spillArena, cfg.MaxThreads)
		}
	}
	return m
}

// ring returns thread tid's syscall ring, creating it on first use. The
// fast path is a single atomic load; creation races (master publishing vs
// slave consuming the same thread's first call) are settled by one
// compare-and-swap, with the loser discarding its candidate.
func (m *Monitor) ring(tid int) *ring.Log[Record] {
	if r := m.rings[tid].Load(); r != nil {
		return r
	}
	r := ring.NewLog[Record](m.ringCap, m.ringGroup)
	r.SetStop(m.killed.Load)
	if !m.rings[tid].CompareAndSwap(nil, r) {
		return m.rings[tid].Load()
	}
	return r
}

// inboxCap sizes the per-(slave, thread) digest inboxes. The lockstep
// protocol bounds the in-flight depth intrinsically: a slave submits a
// digest and then blocks on that very call's record, and the master cannot
// pass its own lockstepped call without consuming the matching digest — so
// at most a couple of digests are ever unconsumed. A small ring keeps lazy
// creation cheap; 64 is pure slack.
const inboxCap = 64

// inbox returns slave g+1's digest inbox for thread tid, creating it on
// first use (see ring).
func (m *Monitor) inbox(g, tid int) *ring.Log[digest] {
	if ib := m.inboxes[g][tid].Load(); ib != nil {
		return ib
	}
	ib := ring.NewLog[digest](inboxCap, 1)
	ib.SetStop(m.killed.Load)
	if !m.inboxes[g][tid].CompareAndSwap(nil, ib) {
		return m.inboxes[g][tid].Load()
	}
	return ib
}

// digest is a slave's account of the call it is about to make, submitted to
// the master for pre-execution validation. The payload travels in the same
// embedded payloadBox as Record's (spills go to the slave's digest arena).
type digest struct {
	Nr   kernel.Sysno
	Args [6]uint64
	payloadBox
	Exit bool
}

// lockstepped reports whether calls of this class require the full
// pre-execution rendezvous. Under the strict policy every monitored call
// does; under the relaxed policy only security-sensitive calls do, and the
// rest follow the run-ahead (leader/follower) protocol.
func (m *Monitor) lockstepped(cls class) bool {
	return m.cfg.Policy == PolicyStrictLockstep || cls.sensitive
}

// Variants returns the number of variants under supervision.
func (m *Monitor) Variants() int { return m.cfg.Variants }

// Policy returns the comparison policy.
func (m *Monitor) Policy() Policy { return m.cfg.Policy }

// OnKill registers a teardown hook run exactly once when the session dies.
func (m *Monitor) OnKill(f func()) {
	m.killMu.Lock()
	m.onKill = append(m.onKill, f)
	m.killMu.Unlock()
}

// Kill terminates the session. The first divergence wins; later calls are
// no-ops. A nil d is an external (non-divergence) shutdown.
func (m *Monitor) Kill(d *Divergence) {
	if d != nil {
		m.diverged.CompareAndSwap(nil, d)
	}
	if m.killed.CompareAndSwap(false, true) {
		if m.tel != nil {
			// Freeze the flight tails NOW, before the variants unwind:
			// the forensic value is the records that led into the kill,
			// and threads racing their teardown would otherwise keep
			// overwriting the tail.
			tail := m.tel.SnapshotFlights()
			m.killMu.Lock()
			m.flightTail = tail
			m.killMu.Unlock()
		}
		m.killMu.Lock()
		hooks := m.onKill
		m.killMu.Unlock()
		for _, f := range hooks {
			f()
		}
		m.kern.Interrupt()
		m.wakeParked()
	}
}

// wakeParked releases every thread parked in a replication wait (record
// rings, digest inboxes, ordering-clock waits) so it re-checks the kill
// flag and unwinds. The killed flag is already set when this runs, and
// every park site re-checks it inside the Prepare window, so a thread that
// parks after this sweep never sleeps through the kill.
func (m *Monitor) wakeParked() {
	for i := range m.rings {
		if r := m.rings[i].Load(); r != nil {
			r.Interrupt()
		}
	}
	for g := range m.inboxes {
		for i := range m.inboxes[g] {
			if ib := m.inboxes[g][i].Load(); ib != nil {
				ib.Interrupt()
			}
		}
	}
	for i := range m.clockParks {
		m.clockParks[i].Wake()
	}
}

// Killed reports whether the session has been terminated.
func (m *Monitor) Killed() bool { return m.killed.Load() }

// Divergence returns the detected divergence, if any.
func (m *Monitor) Divergence() *Divergence { return m.diverged.Load() }

// Syscalls returns variant v's monitored syscall count.
func (m *Monitor) Syscalls(v int) uint64 { return m.syscalls[v].n.Load() }

// Telemetry returns the session's observability recorder, or nil when
// Config.Telemetry was off.
func (m *Monitor) Telemetry() *telemetry.Recorder { return m.tel }

// FlightTail returns the per-variant flight-recorder tails: the snapshot
// frozen at kill time if the session was killed, or a live snapshot
// otherwise. Nil without telemetry.
func (m *Monitor) FlightTail() [][]telemetry.FlightRecord {
	m.killMu.Lock()
	tail := m.flightTail
	m.killMu.Unlock()
	if tail != nil {
		return tail
	}
	if m.tel == nil {
		return nil
	}
	return m.tel.SnapshotFlights()
}

// StopCapture ends the record capture (if any) and returns the per-thread
// record streams. Call only after the session has finished.
func (m *Monitor) StopCapture() [][]Record {
	if m.capture == nil {
		return nil
	}
	return m.capture.Stop()
}

func (m *Monitor) checkKilled() {
	if m.killed.Load() {
		panic(ErrKilled)
	}
}

// relax backs a polling loop off using the ring package's adaptive backoff
// (busy spin → pause → scheduler yield; immediate yield on a single-CPU
// process), so every wait in the replication path shares one policy.
func relax(spins int) { ring.Backoff(spins) }

// Invoke performs one system call on behalf of thread tid of variant v,
// running against variant v's ROOT process. Multi-process programs go
// through InvokeOn instead; Invoke remains the single-process surface the
// benchmarks and monitor tests use.
func (m *Monitor) Invoke(v, tid int, call kernel.Call) kernel.Ret {
	return m.InvokeOn(v, tid, m.procs[v], call)
}

// InvokeOn performs one system call on behalf of thread tid of variant v,
// whose current process is proc (the root process, or a fork descendant).
// This is the interposition point: the variant's thread "traps" here
// instead of entering the kernel directly.
func (m *Monitor) InvokeOn(v, tid int, proc *kernel.Proc, call kernel.Call) kernel.Ret {
	m.checkKilled()
	// The MVEE-awareness call never reaches the kernel (§4.5): the
	// monitor answers it, telling the variant its role.
	if call.Nr == kernel.SysMVEEAware {
		m.unmon[v].n.Add(1)
		return kernel.Ret{Val: uint64(v)}
	}
	cls := classify(call.Nr)
	if !cls.monitored {
		m.unmon[v].n.Add(1)
		return m.kern.Do(proc, call)
	}
	m.syscalls[v].n.Add(1)
	if tel := m.tel; tel != nil {
		// Telemetry hot path: one atomic add; every SampleEvery-th call
		// of a cell additionally brackets the dispatch with two clock
		// reads and one histogram observation. Master samples therefore
		// measure execute+publish, slave samples measure the replay wait
		// — both ends of the replication path, at sampling cost.
		if c := tel.Matrix.Inc(v, tid, call.Nr); telemetry.SampleDue(c) {
			t0 := time.Now()
			ret := m.dispatch(v, tid, proc, call, cls)
			tel.Matrix.Observe(v, call.Nr, time.Since(t0))
			return ret
		}
	}
	return m.dispatch(v, tid, proc, call, cls)
}

// dispatch routes a monitored call to the master execute or slave replay
// path.
func (m *Monitor) dispatch(v, tid int, proc *kernel.Proc, call kernel.Call, cls class) kernel.Ret {
	if m.replay && v == 0 {
		// The replayed variant consumes the trace like an online slave.
		return m.slaveCall(1, tid, proc, call, cls)
	}
	if v == 0 {
		return m.masterCall(tid, proc, call, cls)
	}
	return m.slaveCall(v, tid, proc, call, cls)
}

// flightAppend records one replicated call of variant v into its flight
// ring: sysno, a digest of the compared args+payload, the ordering ticket,
// and the delivered signal. Allocation-free (see telemetry.Flight).
func (m *Monitor) flightAppend(v, tid int, rec *Record, payload []byte) {
	if m.tel == nil {
		return
	}
	m.tel.Flights[v].Append(rec.Nr, tid, telemetry.Digest(&rec.Args, payload), rec.Ts, rec.Ret.Sig)
}

// ThreadExit publishes (master) or validates (slave) a thread-exit marker,
// so that a variant thread making more or fewer syscalls than its
// counterparts is caught as divergence.
func (m *Monitor) ThreadExit(v, tid int) {
	if m.killed.Load() {
		return // tearing down anyway; nothing to validate
	}
	if m.replay {
		rec := m.nextRecord(1, tid)
		if !rec.Exit {
			m.Kill(&Divergence{Variant: 1, Tid: tid,
				Reason: "replayed thread exited while trace records a system call",
				Master: renderRecord(rec), Slave: "thread exit"})
			panic(ErrKilled)
		}
		m.advance(1, tid)
		return
	}
	if v == 0 {
		if m.publish {
			m.awaitDigests(tid, kernel.Call{}, class{}, true)
			m.ring(tid).Append(Record{Exit: true})
		}
		return
	}
	m.submitDigest(v, tid, kernel.Call{}, true)
	rec := m.nextRecord(v, tid)
	if !rec.Exit {
		m.Kill(&Divergence{Variant: v, Tid: tid,
			Reason: "thread exited while master recorded a system call",
			Master: renderRecord(rec), Slave: "thread exit"})
		panic(ErrKilled)
	}
	m.advance(v, tid)
}

// submitDigest publishes slave v's account of its next call (or thread
// exit) to the master's inbox for thread tid. Small payloads travel inline
// in the ring slot; large ones go through the slave's digest arena, whose
// slots recycle in lockstep with the inbox ring's (Reserve blocks until the
// old occupant was consumed), so steady-state digests are allocation-free
// at any payload size.
func (m *Monitor) submitDigest(v, tid int, call kernel.Call, exit bool) {
	ib := m.inbox(v-1, tid)
	d := digest{Nr: call.Nr, Args: call.Args, Exit: exit}
	if len(call.Data) <= InlinePayload {
		d.storeInline(call.Data)
		ib.Append(d)
		return
	}
	seq := ib.Reserve()
	var arena *spillArena
	if m.darenas != nil {
		arena = &m.darenas[v-1][tid]
	}
	d.storeSpill(call.Data, arena, ib.Cap(), seq)
	ib.Publish(seq, d)
}

// awaitDigests blocks until every slave has submitted its digest for the
// master's current call of thread tid, validates the digests, and kills the
// session on mismatch. This is the lockstep barrier: the master does not
// execute until every variant has arrived with an equivalent call.
//
// Validation happens BEFORE the inbox cursor advances: a digest's spilled
// payload lives in the slave's arena, which may recycle the slot as soon as
// the cursor passes it.
func (m *Monitor) awaitDigests(tid int, call kernel.Call, cls class, exit bool) {
	for g := 0; g < m.cfg.Variants-1; g++ {
		pos := m.inboxPos[g][tid]
		ib := m.inbox(g, tid)
		// Poll the publication word only (Ready), not TryGet: a TryGet
		// miss constructs a zero digest, and this loop spins once per
		// lockstepped call. Past the spin/pause/yield phases the master
		// parks on the inbox's wait set; the slave's submitDigest append
		// wakes it.
		for spins := 0; !ib.Ready(pos); spins++ {
			m.checkKilled()
			if ring.ParkDue(spins) {
				pk := ib.Parker()
				g := pk.Prepare()
				if ib.Ready(pos) || m.killed.Load() {
					pk.Cancel()
					continue
				}
				pk.Park(g)
				continue
			}
			relax(spins)
		}
		d, _ := ib.TryGet(pos)
		if dv := m.validateDigest(g+1, tid, call, cls, exit, &d); dv != nil {
			m.Kill(dv)
			panic(ErrKilled)
		}
		ib.Advance(0, pos)
		m.inboxPos[g][tid]++
	}
}

// validateDigest compares a slave's submitted call against the master's.
func (m *Monitor) validateDigest(v, tid int, call kernel.Call, cls class, exit bool, d *digest) *Divergence {
	fail := func(reason string) *Divergence {
		slave := renderCall(kernel.Call{Nr: d.Nr, Args: d.Args, Data: d.Payload()})
		if d.Exit {
			slave = "thread exit"
		}
		master := renderCall(call)
		if exit {
			master = "thread exit"
		}
		return &Divergence{Variant: v, Tid: tid, Reason: reason, Master: master, Slave: slave}
	}
	if exit != d.Exit {
		if exit {
			return fail("slave issued a system call where master's thread exited")
		}
		return fail("thread exited while master recorded a system call")
	}
	if exit {
		return nil
	}
	if call.Nr != d.Nr {
		return fail("system call number mismatch")
	}
	mask := argMask(call.Nr)
	for i := 0; i < 6; i++ {
		if mask&(1<<i) != 0 && call.Args[i] != d.Args[i] {
			return fail(fmt.Sprintf("argument %d mismatch", i))
		}
	}
	if !bytes.Equal(call.Data, d.Payload()) {
		return fail("payload mismatch")
	}
	return nil
}

// masterCall executes a monitored call in the master variant and publishes
// the record for the slaves. After the call executes, the master pops the
// lowest deliverable pending signal of the calling process (if any) into
// Ret.Sig — the syscall-boundary delivery point. Because the popped signal
// travels inside the replicated record, the master's delivery schedule IS
// the session's delivery schedule: slaves consume it positionally instead
// of racing their own pending sets (DESIGN.md §2.5).
func (m *Monitor) masterCall(tid int, proc *kernel.Proc, call kernel.Call, cls class) kernel.Ret {
	if m.cfg.Variants > 1 && m.lockstepped(cls) {
		m.awaitDigests(tid, call, cls, false)
	}
	rec := Record{Nr: call.Nr, Args: call.Args, Ordered: cls.ordered}
	if cls.ordered {
		// §4.1, ticket form (see the Monitor type comment): take the next
		// position in the total order, wait for the turn, execute, pass
		// the turn. The stamp-execute window is the serialized section;
		// publication happens after the turn is passed because records
		// travel through per-thread rings, where cross-thread order is
		// immaterial.
		t := m.tickets.Take()
		// Inline wait (no closure: this runs per ordered call and must not
		// allocate). The common, uncontended case exits on the first load;
		// a thread whose turn is far off parks on the clock's wait set and
		// is woken by the Tick that passes it the turn.
		for spins := 0; m.clocks[0].Now() < t; spins++ {
			m.checkKilled()
			if ring.ParkDue(spins) {
				g := m.clockParks[0].Prepare()
				if m.clocks[0].Now() >= t || m.killed.Load() {
					m.clockParks[0].Cancel()
					continue
				}
				m.clockParks[0].Park(g)
				continue
			}
			relax(spins)
		}
		rec.Ts = t
		rec.Ret = m.execute(proc, call)
		if call.Nr != kernel.SysExit && call.Nr != kernel.SysThreadExit {
			// No delivery at the exit boundaries: the thread is gone and
			// Linux discards its pending signals. (Delivering here would
			// also re-terminate a process already inside its exit path.)
			rec.Ret.Sig = proc.BoundarySig()
		}
		m.clocks[0].Tick()
		m.clockParks[0].Wake()
		// Capture the master's return BEFORE publication: stabilization may
		// repoint the published record's Ret.Data at an arena copy, while
		// the master's own caller keeps the alias into its Call.Buf.
		ret := rec.Ret
		if m.publish {
			m.publishRecord(tid, &rec, call.Data, call.Buf != nil && len(rec.Ret.Data) > 0)
		}
		m.flightAppend(0, tid, &rec, call.Data)
		return ret
	}
	// Blocking call: may not be wrapped in the ordering critical section
	// because the kernel may never return (§4.1 Limitations). It is still
	// executed by the master only and replicated positionally.
	rec.Ret = m.execute(proc, call)
	rec.Ret.Sig = proc.BoundarySig()
	ret := rec.Ret
	if m.publish {
		m.publishRecord(tid, &rec, call.Data, call.Buf != nil && len(rec.Ret.Data) > 0)
	}
	m.flightAppend(0, tid, &rec, call.Data)
	return ret
}

// publishRecord appends rec (with the call's input payload) to thread tid's
// syscall ring. Small payloads are copied inline into the ring slot —
// copying, rather than aliasing the caller's buffer, is what makes the
// record immutable the moment it is published. Large payloads go through
// the per-thread arena (or a fresh allocation when recycling is unsound;
// see Monitor.arenas). stabilize marks a record whose Ret.Data aliases the
// caller's reusable destination buffer (Call.Buf): such output must be
// copied into slot-lifetime storage before the record becomes visible, or
// the master guest's next receive overwrites bytes the slaves haven't
// consumed yet.
func (m *Monitor) publishRecord(tid int, rec *Record, payload []byte, stabilize bool) {
	r := m.ring(tid)
	if !stabilize && len(payload) <= InlinePayload {
		rec.storeInline(payload)
		r.Append(*rec)
		return
	}
	seq := r.Reserve()
	if len(payload) <= InlinePayload {
		rec.storeInline(payload)
	} else {
		var arena *spillArena
		if m.arenas != nil {
			arena = &m.arenas[tid]
		}
		rec.storeSpill(payload, arena, r.Cap(), seq)
	}
	if stabilize {
		m.stabilizeOut(tid, rec, r.Cap(), seq)
	}
	r.Publish(seq, *rec)
}

// stabilizeOut repoints rec.Ret.Data at a stable copy backed by the
// output arena slot for seq (reusable exactly when ring slot seq is — the
// caller Reserved it), or a fresh allocation when arenas are off (capture
// retains records indefinitely).
func (m *Monitor) stabilizeOut(tid int, rec *Record, rcap int, seq uint64) {
	if m.outArenas != nil {
		rec.Ret.Data = m.outArenas[tid].put(rcap, seq, rec.Ret.Data)
		return
	}
	rec.Ret.Data = append([]byte(nil), rec.Ret.Data...)
}

// slaveCall validates thread tid's call against the master's record,
// waits for its ordering turn, and returns the replicated (or per-variant
// re-executed) result.
func (m *Monitor) slaveCall(v, tid int, proc *kernel.Proc, call kernel.Call, cls class) kernel.Ret {
	if m.lockstepped(cls) && !m.replay {
		// Submit this call for the master's pre-execution validation;
		// the master will not execute until every slave has arrived.
		// (Replay has no master to validate against; the trace is the
		// authority.)
		m.submitDigest(v, tid, call, false)
	}
	rec := m.nextRecord(v, tid)
	if d := m.compare(v, tid, call, rec, cls); d != nil {
		m.Kill(d)
		panic(ErrKilled)
	}
	var ret kernel.Ret
	if rec.Ordered {
		// Wait until this variant's ordering clock reaches the recorded
		// stamp; then this thread alone may proceed (§4.1). This is the
		// slave half of the ticket scheme: rec.Ts is the master's ticket,
		// and the slave's own Lamport clock is its serving word. Inline
		// wait — no closure — so the per-call path stays allocation-free;
		// far-off turns park on the clock's wait set until a sibling
		// thread's Tick passes the turn along.
		for spins := 0; m.clocks[v].Now() < rec.Ts; spins++ {
			m.checkKilled()
			if ring.ParkDue(spins) {
				g := m.clockParks[v].Prepare()
				if m.clocks[v].Now() >= rec.Ts || m.killed.Load() {
					m.clockParks[v].Cancel()
					continue
				}
				m.clockParks[v].Park(g)
				continue
			}
			relax(spins)
		}
		ret = m.slaveResult(proc, call, rec, cls)
		m.clocks[v].Tick()
		m.clockParks[v].Wake()
	} else {
		ret = m.slaveResult(proc, call, rec, cls)
	}
	// Copy a replicated output payload into the slave's own destination
	// buffer (Call.Buf): the record's bytes may live in a recycled arena
	// slot that is only valid until this thread advances past the record,
	// and each variant must own its result the way the master owns its.
	if call.Buf != nil && !cls.perVariant && len(ret.Data) > 0 {
		n := copy(call.Buf, ret.Data)
		ret.Data = call.Buf[:n]
	}
	// Enact the master's signal-delivery schedule: the record says a
	// signal landed at this boundary, so consume the slave's own pending
	// bit (set by its per-variant execution of the same ordered kill) and
	// surface the same signal to the slave's guest.
	if rec.Ret.Sig != 0 {
		proc.AckSignal(rec.Ret.Sig)
		ret.Sig = rec.Ret.Sig
	}
	// A replicated waitpid reaped a child in the master's tree; mirror the
	// reap in this variant's tree so pid liveness stays in lockstep.
	if call.Nr == kernel.SysWaitpid && rec.Ret.Err == kernel.OK {
		m.kern.ApplySlaveWait(proc, int(rec.Ret.Val))
	}
	// The slave's own call compared equal to the record, so digesting the
	// slave's args+payload yields the master's digest: matching tails
	// digest identically across variants right up to the divergence point.
	m.flightAppend(v, tid, rec, call.Data)
	m.advance(v, tid)
	return ret
}

func (m *Monitor) slaveResult(proc *kernel.Proc, call kernel.Call, rec *Record, cls class) kernel.Ret {
	if cls.perVariant {
		return m.execute(proc, call)
	}
	return rec.Ret // replicated master (or traced) result
}

// InvokeBatchOn performs a RUN of system calls on behalf of thread tid of
// variant v as one replicated multi-record: the master executes all of
// them and publishes the records in one ring operation (one reservation,
// one wake — one cross-core handoff per batch instead of one per call),
// and the slaves consume them through the same batched peek the run-ahead
// protocol already uses. This is the poll-wakeup amortization path: a poll
// that woke with K ready connections drains all K receives as one batch.
//
// Eligibility is exactly the REPLICATED set (monitored, replicated, not
// per-variant): replicated calls execute only in the master, so deferring
// their publication to the end of the batch changes nothing the slaves can
// observe except the grouping. Per-variant calls (fork, mmap, exit) have
// slave-side effects that later batch members could depend on, and
// unmonitored calls never reach the rendezvous — a batch containing either
// falls back to the per-call path, preserving semantics over speed.
//
// Signal delivery happens ONCE per batch, at its end: the batch is one
// syscall boundary, so a signal that lands mid-batch is stamped on the
// last record (and delivered by the caller after the batch returns),
// keeping the master's delivery schedule positional and replicable.
//
// rets must be the same length as calls; rets[i] receives call i's result.
func (m *Monitor) InvokeBatchOn(v, tid int, proc *kernel.Proc, calls []kernel.Call, rets []kernel.Ret) {
	m.checkKilled()
	for i := range calls {
		cls := classify(calls[i].Nr)
		if calls[i].Nr == kernel.SysMVEEAware || !cls.monitored || !cls.replicated || cls.perVariant {
			for j := range calls {
				rets[j] = m.InvokeOn(v, tid, proc, calls[j])
			}
			return
		}
	}
	m.syscalls[v].n.Add(uint64(len(calls)))
	if tel := m.tel; tel != nil {
		// Count every call in the matrix; skip the latency sampling
		// brackets — a batch's per-call latency is not separable.
		for i := range calls {
			tel.Matrix.Inc(v, tid, calls[i].Nr)
		}
	}
	if m.replay || v != 0 {
		sv := v
		if m.replay {
			sv = 1 // the replayed variant consumes the trace like a slave
		}
		m.slaveBatch(sv, tid, proc, calls, rets)
		return
	}
	m.masterBatch(tid, proc, calls, rets)
}

// batchRecs returns thread tid's master-side record scratch, grown to n.
func (m *Monitor) batchRecs(tid, n int) []Record {
	if cap(m.brecs[tid]) < n {
		m.brecs[tid] = make([]Record, n)
	}
	return m.brecs[tid][:n]
}

// masterBatch is masterCall over a batch: per call, the digest rendezvous
// and the ordered-section stamp+execute happen exactly as in the singular
// path (the ordering clock still ticks once per call — batching changes
// record TRANSPORT, not the total order, which is what keeps a batched
// trace identical to the sequential one) — but publication is deferred and
// done in one ring operation at the end.
func (m *Monitor) masterBatch(tid int, proc *kernel.Proc, calls []kernel.Call, rets []kernel.Ret) {
	recs := m.batchRecs(tid, len(calls))
	for i := range calls {
		call := &calls[i]
		cls := classify(call.Nr)
		if m.cfg.Variants > 1 && m.lockstepped(cls) {
			m.awaitDigests(tid, *call, cls, false)
		}
		rec := &recs[i]
		*rec = Record{Nr: call.Nr, Args: call.Args, Ordered: cls.ordered}
		if cls.ordered {
			t := m.tickets.Take()
			for spins := 0; m.clocks[0].Now() < t; spins++ {
				m.checkKilled()
				if ring.ParkDue(spins) {
					g := m.clockParks[0].Prepare()
					if m.clocks[0].Now() >= t || m.killed.Load() {
						m.clockParks[0].Cancel()
						continue
					}
					m.clockParks[0].Park(g)
					continue
				}
				relax(spins)
			}
			rec.Ts = t
			rec.Ret = m.execute(proc, *call)
			m.clocks[0].Tick()
			m.clockParks[0].Wake()
		} else {
			rec.Ret = m.execute(proc, *call)
		}
		rets[i] = rec.Ret
	}
	// One delivery point per batch (see InvokeBatchOn): stamp the batch's
	// boundary signal on the LAST record. Exit syscalls are per-variant and
	// therefore never batched, so no exit-boundary exception applies here.
	if sig := proc.BoundarySig(); sig != 0 {
		recs[len(recs)-1].Ret.Sig = sig
		rets[len(rets)-1].Sig = sig
	}
	if m.publish {
		m.publishBatch(tid, recs, calls)
	}
	for i := range recs {
		m.flightAppend(0, tid, &recs[i], calls[i].Data)
	}
}

// batchChunk caps how many records one publishBatch ring operation covers;
// larger batches are split (and further clamped to the ring's capacity, so
// ReserveN never over-reserves on a small test-sized ring).
const batchChunk = 64

// publishBatch publishes a batch of executed records to thread tid's ring
// in one producer operation per chunk. The fast path — every payload
// inline, no output stabilization needed — is a straight AppendBatch; a
// chunk with spilled payloads or Buf-aliased outputs reserves its whole
// sequence run at once (one fetch-add + one back-pressure wait, same cost
// shape) and places each record's storage before publishing front-to-back.
func (m *Monitor) publishBatch(tid int, recs []Record, calls []kernel.Call) {
	r := m.ring(tid)
	for len(recs) > 0 {
		n := len(recs)
		if n > batchChunk {
			n = batchChunk
		}
		if n > r.Cap() {
			n = r.Cap()
		}
		chunk, cc := recs[:n], calls[:n]
		plain := true
		for i := range chunk {
			if len(cc[i].Data) > InlinePayload || (cc[i].Buf != nil && len(chunk[i].Ret.Data) > 0) {
				plain = false
				break
			}
		}
		if plain {
			for i := range chunk {
				chunk[i].storeInline(cc[i].Data)
			}
			r.AppendBatch(chunk)
		} else {
			first := r.ReserveN(n)
			for i := range chunk {
				seq := first + uint64(i)
				rec := &chunk[i]
				if len(cc[i].Data) <= InlinePayload {
					rec.storeInline(cc[i].Data)
				} else {
					var arena *spillArena
					if m.arenas != nil {
						arena = &m.arenas[tid]
					}
					rec.storeSpill(cc[i].Data, arena, r.Cap(), seq)
				}
				if cc[i].Buf != nil && len(rec.Ret.Data) > 0 {
					m.stabilizeOut(tid, rec, r.Cap(), seq)
				}
				r.Publish(seq, *rec)
			}
		}
		recs, calls = recs[n:], calls[n:]
	}
}

// slaveBatch is slaveCall over a batch. The one protocol difference from
// looping slaveCall: under lockstep, EVERY digest is submitted before ANY
// record is consumed. The master publishes the batch only after executing
// all of it, so a slave that submitted digest i only after consuming
// record i-1 would deadlock against a master waiting for digest i before
// executing the batch. Submitting up front is safe — digests are consumed
// positionally from a per-thread inbox, so the master still validates
// digest i against its call i.
func (m *Monitor) slaveBatch(v, tid int, proc *kernel.Proc, calls []kernel.Call, rets []kernel.Ret) {
	if !m.replay {
		for i := range calls {
			if m.lockstepped(classify(calls[i].Nr)) {
				m.submitDigest(v, tid, calls[i], false)
			}
		}
	}
	for i := range calls {
		call := &calls[i]
		cls := classify(call.Nr)
		rec := m.nextRecord(v, tid)
		if d := m.compare(v, tid, *call, rec, cls); d != nil {
			m.Kill(d)
			panic(ErrKilled)
		}
		ret := rec.Ret // batches are replicated-only: no per-variant re-execution
		if rec.Ordered {
			for spins := 0; m.clocks[v].Now() < rec.Ts; spins++ {
				m.checkKilled()
				if ring.ParkDue(spins) {
					g := m.clockParks[v].Prepare()
					if m.clocks[v].Now() >= rec.Ts || m.killed.Load() {
						m.clockParks[v].Cancel()
						continue
					}
					m.clockParks[v].Park(g)
					continue
				}
				relax(spins)
			}
			m.clocks[v].Tick()
			m.clockParks[v].Wake()
		}
		if call.Buf != nil && len(ret.Data) > 0 {
			n := copy(call.Buf, ret.Data)
			ret.Data = call.Buf[:n]
		}
		if rec.Ret.Sig != 0 {
			proc.AckSignal(rec.Ret.Sig)
			ret.Sig = rec.Ret.Sig
		}
		if call.Nr == kernel.SysWaitpid && rec.Ret.Err == kernel.OK {
			m.kern.ApplySlaveWait(proc, int(rec.Ret.Val))
		}
		m.flightAppend(v, tid, rec, call.Data)
		m.advance(v, tid)
		rets[i] = ret
	}
}

// execute runs the call against the kernel for the given process. Injected
// faults surface here exactly once per fault (the kernel only sets Inj in
// the master's execution of a replicated call; slaves consume the record),
// so this is where telemetry counts them — one predicted-false branch on
// clean calls.
func (m *Monitor) execute(proc *kernel.Proc, call kernel.Call) kernel.Ret {
	ret := m.kern.Do(proc, call)
	if ret.Inj != 0 && m.tel != nil {
		m.tel.Faults.Count(ret.Inj)
	}
	return ret
}

// nextRecord returns the master's record for slave v's thread tid,
// blocking (with kill checks) until the master publishes it. Records are
// fetched in batches: one peek copies up to slaveBatch published records
// out of the ring, and the ring cursor is released for the whole previous
// batch in a single move — one cross-core cursor write per batch instead of
// one per record. The returned pointer is into the batch buffer and stays
// valid until the record is advanced past and a further batch is fetched.
func (m *Monitor) nextRecord(v, tid int) *Record {
	g := v - 1
	sc := &m.scons[g][tid]
	if sc.i < sc.n {
		return &sc.batch[sc.i]
	}
	r := m.ring(tid)
	// The previous batch is fully processed: release its slots (and any
	// arena payloads they reference) in one cursor move.
	r.AdvanceTo(g, sc.next)
	for spins := 0; ; spins++ {
		m.checkKilled()
		if n := r.PeekBatch(sc.next, sc.batch[:]); n > 0 {
			sc.i, sc.n = 0, n
			sc.next += uint64(n)
			return &sc.batch[0]
		}
		// A slave that has drained the ring and found the master still
		// busy elsewhere is the paper's lagging-slave case: park on the
		// ring's wait set (the master's next publish wakes it) instead of
		// yield-storming the scheduler.
		if ring.ParkDue(spins) {
			pk := r.Parker()
			pg := pk.Prepare()
			if r.Ready(sc.next) || m.killed.Load() {
				pk.Cancel()
				continue
			}
			pk.Park(pg)
			continue
		}
		relax(spins)
	}
}

// advance marks the current record of slave v's thread tid consumed. The
// ring cursor itself moves lazily at the next batch fetch (see nextRecord).
func (m *Monitor) advance(v, tid int) {
	m.scons[v-1][tid].i++
}

// compare validates a slave call against the master record under the
// session policy. It returns a non-nil Divergence on mismatch.
func (m *Monitor) compare(v, tid int, call kernel.Call, rec *Record, cls class) *Divergence {
	fail := func(reason string) *Divergence {
		return &Divergence{Variant: v, Tid: tid, Reason: reason,
			Master: renderRecord(rec), Slave: renderCall(call)}
	}
	if rec.Exit {
		return fail("slave issued a system call where master's thread exited")
	}
	if call.Nr != rec.Nr {
		return fail("system call number mismatch")
	}
	if m.cfg.Policy == PolicySecuritySensitive && !cls.sensitive {
		return nil
	}
	mask := argMask(call.Nr)
	for i := 0; i < 6; i++ {
		if mask&(1<<i) != 0 && call.Args[i] != rec.Args[i] {
			return fail(fmt.Sprintf("argument %d mismatch", i))
		}
	}
	if !bytes.Equal(call.Data, rec.Payload()) {
		return fail("payload mismatch")
	}
	return nil
}

func renderRecord(r *Record) string {
	if r.Exit {
		return "thread exit"
	}
	return fmt.Sprintf("%v(args=%v, %d bytes) @ts=%d", r.Nr, r.Args, r.n, r.Ts)
}

func renderCall(c kernel.Call) string {
	return fmt.Sprintf("%v(args=%v, %d bytes)", c.Nr, c.Args, len(c.Data))
}
