package monitor

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/kernel"
	"repro/internal/ring"
)

// ErrKilled is panicked out of monitor calls once the session has been
// terminated (divergence or external shutdown). The MVEE core recovers it
// at the top of every variant thread.
var ErrKilled = fmt.Errorf("monitor: session killed")

// Record is one entry in a per-thread syscall buffer: the master's account
// of one monitored system call, against which slaves validate their own.
type Record struct {
	Nr      kernel.Sysno
	Args    [6]uint64
	Data    []byte // input payload (write data, open path)
	Ret     kernel.Ret
	Ts      uint64 // syscall-ordering-clock stamp, valid if Ordered
	Ordered bool
	Exit    bool // thread-exit marker, not a syscall
}

// Divergence describes why the monitor shut the variants down.
type Divergence struct {
	Variant int    // the slave that mismatched
	Tid     int    // logical thread
	Reason  string // human-readable mismatch description
	Master  string // master's record, rendered
	Slave   string // slave's attempted call, rendered
}

// Error implements the error interface.
func (d *Divergence) Error() string {
	return fmt.Sprintf("divergence in variant %d thread %d: %s (master: %s, slave: %s)",
		d.Variant, d.Tid, d.Reason, d.Master, d.Slave)
}

// Config sizes a Monitor.
type Config struct {
	Variants   int
	MaxThreads int
	RingCap    int
	Policy     Policy
	// Capture adds a tape consumer group that drains every record into
	// memory for offline replay (see trace.go).
	Capture bool
	// Replay pre-fills the syscall buffers from a recorded trace; the
	// single variant then consumes them like an online slave.
	Replay [][]Record
}

func (c *Config) fill() {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 64
	}
	if c.RingCap <= 0 {
		c.RingCap = 256
	}
}

// Monitor supervises one MVEE session: variant 0 is the master, variants
// 1..N-1 are slaves. One Monitor thread per variant-thread-set is implicit
// in the design (§4: "each of ReMon's threads monitors one set of
// equivalent variant threads"); here the per-thread syscall buffers play
// that role.
type Monitor struct {
	cfg   Config
	kern  *kernel.Kernel
	procs []*kernel.Proc

	// clocks[v] is variant v's private copy of the syscall ordering clock.
	clocks []*clock.Lamport
	// seqMu serializes the master's ordered critical sections (§4.1).
	seqMu sync.Mutex
	// rings[tid] carries master records to the slaves; group g serves
	// slave variant g+1. cursors[v-1][tid] is that slave thread's read
	// position.
	rings   []*ring.Log[Record]
	cursors [][]uint64
	// inboxes[g][tid] carries slave g+1's call digests to the master for
	// lockstep calls: the master waits for (and validates) every slave's
	// equivalent call BEFORE executing, so no variant proceeds past a
	// lockstepped call until all variants have made it (§2). inboxPos
	// tracks the master's read position per (g, tid).
	inboxes  [][]*ring.Log[digest]
	inboxPos [][]uint64

	// publish is true when master records have at least one consumer
	// (live slaves or the capture tape).
	publish   bool
	replay    bool
	tapeGroup int
	capture   *RecordCapture

	killed   atomic.Bool
	diverged atomic.Pointer[Divergence]
	onKill   []func()
	killMu   sync.Mutex

	syscalls []atomic.Uint64 // per variant: monitored syscall count
	unmon    []atomic.Uint64 // per variant: unmonitored syscall count
}

// New creates a monitor for nvariants over kern. procs[v] is variant v's
// kernel process.
func New(kern *kernel.Kernel, procs []*kernel.Proc, cfg Config) *Monitor {
	cfg.fill()
	cfg.Variants = len(procs)
	m := &Monitor{
		cfg:      cfg,
		kern:     kern,
		procs:    procs,
		clocks:   make([]*clock.Lamport, len(procs)),
		rings:    make([]*ring.Log[Record], cfg.MaxThreads),
		cursors:  make([][]uint64, len(procs)-1),
		syscalls: make([]atomic.Uint64, len(procs)),
		unmon:    make([]atomic.Uint64, len(procs)),
	}
	m.replay = cfg.Replay != nil
	m.publish = cfg.Variants > 1 || cfg.Capture
	// Clocks: one per variant; replay additionally needs the "slave"
	// clock at index 1.
	if m.replay && len(m.clocks) < 2 {
		m.clocks = make([]*clock.Lamport, 2)
	}
	for v := range m.clocks {
		m.clocks[v] = &clock.Lamport{}
	}
	slaves := len(procs) - 1
	groups := slaves
	if cfg.Capture {
		m.tapeGroup = groups
		groups++
	}
	ringCap := cfg.RingCap
	if m.replay {
		groups = 1
		// Replay has no live producer to back-pressure: size the rings
		// to hold the complete trace.
		for _, stream := range cfg.Replay {
			if len(stream) > ringCap {
				ringCap = len(stream)
			}
		}
	}
	if groups < 1 {
		groups = 1 // rings still need a consumer group; unused for 1 variant
	}
	for tid := range m.rings {
		m.rings[tid] = ring.NewLog[Record](ringCap, groups)
		m.rings[tid].SetStop(m.killed.Load)
	}
	cursorGroups := slaves
	if m.replay {
		cursorGroups = 1
	}
	m.cursors = make([][]uint64, cursorGroups)
	for g := range m.cursors {
		m.cursors[g] = make([]uint64, cfg.MaxThreads)
	}
	if m.replay {
		m.prefillReplay(cfg.Replay)
	}
	if cfg.Capture {
		m.capture = m.startCapture()
	}
	m.inboxes = make([][]*ring.Log[digest], len(procs)-1)
	m.inboxPos = make([][]uint64, len(procs)-1)
	for g := range m.inboxes {
		m.inboxes[g] = make([]*ring.Log[digest], cfg.MaxThreads)
		m.inboxPos[g] = make([]uint64, cfg.MaxThreads)
		for tid := range m.inboxes[g] {
			m.inboxes[g][tid] = ring.NewLog[digest](cfg.RingCap, 1)
			m.inboxes[g][tid].SetStop(m.killed.Load)
		}
	}
	return m
}

// digest is a slave's account of the call it is about to make, submitted to
// the master for pre-execution validation.
type digest struct {
	Nr   kernel.Sysno
	Args [6]uint64
	Data []byte
	Exit bool
}

// lockstepped reports whether calls of this class require the full
// pre-execution rendezvous. Under the strict policy every monitored call
// does; under the relaxed policy only security-sensitive calls do, and the
// rest follow the run-ahead (leader/follower) protocol.
func (m *Monitor) lockstepped(cls class) bool {
	return m.cfg.Policy == PolicyStrictLockstep || cls.sensitive
}

// Variants returns the number of variants under supervision.
func (m *Monitor) Variants() int { return m.cfg.Variants }

// Policy returns the comparison policy.
func (m *Monitor) Policy() Policy { return m.cfg.Policy }

// OnKill registers a teardown hook run exactly once when the session dies.
func (m *Monitor) OnKill(f func()) {
	m.killMu.Lock()
	m.onKill = append(m.onKill, f)
	m.killMu.Unlock()
}

// Kill terminates the session. The first divergence wins; later calls are
// no-ops. A nil d is an external (non-divergence) shutdown.
func (m *Monitor) Kill(d *Divergence) {
	if d != nil {
		m.diverged.CompareAndSwap(nil, d)
	}
	if m.killed.CompareAndSwap(false, true) {
		m.killMu.Lock()
		hooks := m.onKill
		m.killMu.Unlock()
		for _, f := range hooks {
			f()
		}
		m.kern.Interrupt()
	}
}

// Killed reports whether the session has been terminated.
func (m *Monitor) Killed() bool { return m.killed.Load() }

// Divergence returns the detected divergence, if any.
func (m *Monitor) Divergence() *Divergence { return m.diverged.Load() }

// Syscalls returns variant v's monitored syscall count.
func (m *Monitor) Syscalls(v int) uint64 { return m.syscalls[v].Load() }

// StopCapture ends the record capture (if any) and returns the per-thread
// record streams. Call only after the session has finished.
func (m *Monitor) StopCapture() [][]Record {
	if m.capture == nil {
		return nil
	}
	return m.capture.Stop()
}

func (m *Monitor) checkKilled() {
	if m.killed.Load() {
		panic(ErrKilled)
	}
}

// Invoke performs one system call on behalf of thread tid of variant v.
// This is the interposition point: the variant's thread "traps" here
// instead of entering the kernel directly.
func (m *Monitor) Invoke(v, tid int, call kernel.Call) kernel.Ret {
	m.checkKilled()
	// The MVEE-awareness call never reaches the kernel (§4.5): the
	// monitor answers it, telling the variant its role.
	if call.Nr == kernel.SysMVEEAware {
		m.unmon[v].Add(1)
		return kernel.Ret{Val: uint64(v)}
	}
	cls := classify(call.Nr)
	if !cls.monitored {
		m.unmon[v].Add(1)
		return m.kern.Do(m.procs[v], call)
	}
	m.syscalls[v].Add(1)
	if m.replay && v == 0 {
		// The replayed variant consumes the trace like an online slave.
		return m.slaveCall(1, tid, call, cls)
	}
	if v == 0 {
		return m.masterCall(tid, call, cls)
	}
	return m.slaveCall(v, tid, call, cls)
}

// ThreadExit publishes (master) or validates (slave) a thread-exit marker,
// so that a variant thread making more or fewer syscalls than its
// counterparts is caught as divergence.
func (m *Monitor) ThreadExit(v, tid int) {
	if m.killed.Load() {
		return // tearing down anyway; nothing to validate
	}
	if m.replay {
		rec := m.nextRecord(1, tid)
		if !rec.Exit {
			m.Kill(&Divergence{Variant: 1, Tid: tid,
				Reason: "replayed thread exited while trace records a system call",
				Master: renderRecord(rec), Slave: "thread exit"})
			panic(ErrKilled)
		}
		m.advance(1, tid)
		return
	}
	if v == 0 {
		if m.publish {
			m.awaitDigests(tid, kernel.Call{}, class{}, true)
			m.rings[tid].Append(Record{Exit: true})
		}
		return
	}
	m.inboxes[v-1][tid].Append(digest{Exit: true})
	rec := m.nextRecord(v, tid)
	if !rec.Exit {
		m.Kill(&Divergence{Variant: v, Tid: tid,
			Reason: "thread exited while master recorded a system call",
			Master: renderRecord(rec), Slave: "thread exit"})
		panic(ErrKilled)
	}
	m.advance(v, tid)
}

// awaitDigests blocks until every slave has submitted its digest for the
// master's current call of thread tid, validates the digests, and kills the
// session on mismatch. This is the lockstep barrier: the master does not
// execute until every variant has arrived with an equivalent call.
func (m *Monitor) awaitDigests(tid int, call kernel.Call, cls class, exit bool) {
	for g := 0; g < m.cfg.Variants-1; g++ {
		pos := m.inboxPos[g][tid]
		var d digest
		for spins := 0; ; spins++ {
			m.checkKilled()
			var ok bool
			if d, ok = m.inboxes[g][tid].TryGet(pos); ok {
				break
			}
			if spins > 16 {
				runtime.Gosched()
			}
		}
		m.inboxes[g][tid].Advance(0, pos)
		m.inboxPos[g][tid]++
		if dv := m.validateDigest(g+1, tid, call, cls, exit, d); dv != nil {
			m.Kill(dv)
			panic(ErrKilled)
		}
	}
}

// validateDigest compares a slave's submitted call against the master's.
func (m *Monitor) validateDigest(v, tid int, call kernel.Call, cls class, exit bool, d digest) *Divergence {
	fail := func(reason string) *Divergence {
		slave := renderCall(kernel.Call{Nr: d.Nr, Args: d.Args, Data: d.Data})
		if d.Exit {
			slave = "thread exit"
		}
		master := renderCall(call)
		if exit {
			master = "thread exit"
		}
		return &Divergence{Variant: v, Tid: tid, Reason: reason, Master: master, Slave: slave}
	}
	if exit != d.Exit {
		if exit {
			return fail("slave issued a system call where master's thread exited")
		}
		return fail("thread exited while master recorded a system call")
	}
	if exit {
		return nil
	}
	if call.Nr != d.Nr {
		return fail("system call number mismatch")
	}
	mask := argMask(call.Nr)
	for i := 0; i < 6; i++ {
		if mask&(1<<i) != 0 && call.Args[i] != d.Args[i] {
			return fail(fmt.Sprintf("argument %d mismatch", i))
		}
	}
	if !bytes.Equal(call.Data, d.Data) {
		return fail("payload mismatch")
	}
	return nil
}

// masterCall executes a monitored call in the master variant and publishes
// the record for the slaves.
func (m *Monitor) masterCall(tid int, call kernel.Call, cls class) kernel.Ret {
	if m.cfg.Variants > 1 && m.lockstepped(cls) {
		m.awaitDigests(tid, call, cls, false)
	}
	rec := Record{Nr: call.Nr, Args: call.Args, Data: call.Data, Ordered: cls.ordered}
	if cls.ordered {
		// §4.1: enter the critical section, stamp the call with the
		// current syscall-ordering-clock time, execute, publish — all
		// before leaving the critical section.
		m.seqMu.Lock()
		rec.Ts = m.clocks[0].Tick()
		rec.Ret = m.execute(0, call)
		if m.publish {
			m.rings[tid].Append(rec)
		}
		m.seqMu.Unlock()
		return rec.Ret
	}
	// Blocking call: may not be wrapped in the ordering critical section
	// because the kernel may never return (§4.1 Limitations). It is still
	// executed by the master only and replicated positionally.
	rec.Ret = m.execute(0, call)
	if m.publish {
		m.rings[tid].Append(rec)
	}
	return rec.Ret
}

// slaveCall validates thread tid's call against the master's record,
// waits for its ordering turn, and returns the replicated (or per-variant
// re-executed) result.
func (m *Monitor) slaveCall(v, tid int, call kernel.Call, cls class) kernel.Ret {
	if m.lockstepped(cls) && !m.replay {
		// Submit this call for the master's pre-execution validation;
		// the master will not execute until every slave has arrived.
		// (Replay has no master to validate against; the trace is the
		// authority.)
		m.inboxes[v-1][tid].Append(digest{Nr: call.Nr, Args: call.Args, Data: call.Data})
	}
	rec := m.nextRecord(v, tid)
	if d := m.compare(v, tid, call, rec, cls); d != nil {
		m.Kill(d)
		panic(ErrKilled)
	}
	var ret kernel.Ret
	if rec.Ordered {
		// Wait until this variant's ordering clock reaches the recorded
		// stamp; then this thread alone may proceed (§4.1).
		spins := 0
		m.clocks[v].WaitFor(rec.Ts, func() {
			m.checkKilled()
			spins++
			if spins > 16 {
				runtime.Gosched()
			}
		})
		ret = m.slaveResult(v, tid, call, rec, cls)
		m.clocks[v].Tick()
	} else {
		ret = m.slaveResult(v, tid, call, rec, cls)
	}
	m.advance(v, tid)
	return ret
}

func (m *Monitor) slaveResult(v, tid int, call kernel.Call, rec Record, cls class) kernel.Ret {
	if cls.perVariant {
		if m.replay {
			v = 0 // the replayed variant owns the only process
		}
		return m.execute(v, call)
	}
	return rec.Ret // replicated master (or traced) result
}

// execute runs the call against the kernel for variant v.
func (m *Monitor) execute(v int, call kernel.Call) kernel.Ret {
	return m.kern.Do(m.procs[v], call)
}

// nextRecord fetches the master's record for slave v's thread tid,
// blocking (with kill checks) until the master publishes it.
func (m *Monitor) nextRecord(v, tid int) Record {
	g := v - 1
	seq := m.cursors[g][tid]
	for spins := 0; ; spins++ {
		m.checkKilled()
		if rec, ok := m.rings[tid].TryGet(seq); ok {
			return rec
		}
		if spins > 16 {
			runtime.Gosched()
		}
	}
}

func (m *Monitor) advance(v, tid int) {
	g := v - 1
	m.rings[tid].Advance(g, m.cursors[g][tid])
	m.cursors[g][tid]++
}

// compare validates a slave call against the master record under the
// session policy. It returns a non-nil Divergence on mismatch.
func (m *Monitor) compare(v, tid int, call kernel.Call, rec Record, cls class) *Divergence {
	fail := func(reason string) *Divergence {
		return &Divergence{Variant: v, Tid: tid, Reason: reason,
			Master: renderRecord(rec), Slave: renderCall(call)}
	}
	if rec.Exit {
		return fail("slave issued a system call where master's thread exited")
	}
	if call.Nr != rec.Nr {
		return fail("system call number mismatch")
	}
	if m.cfg.Policy == PolicySecuritySensitive && !cls.sensitive {
		return nil
	}
	mask := argMask(call.Nr)
	for i := 0; i < 6; i++ {
		if mask&(1<<i) != 0 && call.Args[i] != rec.Args[i] {
			return fail(fmt.Sprintf("argument %d mismatch", i))
		}
	}
	if !bytes.Equal(call.Data, rec.Data) {
		return fail("payload mismatch")
	}
	return nil
}

func renderRecord(r Record) string {
	if r.Exit {
		return "thread exit"
	}
	return fmt.Sprintf("%v(args=%v, %d bytes) @ts=%d", r.Nr, r.Args, len(r.Data), r.Ts)
}

func renderCall(c kernel.Call) string {
	return fmt.Sprintf("%v(args=%v, %d bytes)", c.Nr, c.Args, len(c.Data))
}
