package monitor

import (
	"encoding/binary"
	"fmt"

	"repro/internal/kernel"
)

// Compact gob wire format for Record (internal/trace encodes captured
// sessions as [][]Record with encoding/gob). The default struct encoding
// would serialize the fixed InlinePayload array in full for every record —
// tripling traces of small-payload syscalls — and cannot see the
// unexported payloadBox fields anyway, so Record implements GobEncoder/
// GobDecoder with a flat little-endian layout that carries only the bytes
// that exist:
//
//	u32 Nr | 6×u64 Args | u64 Ret.Val | u64 Ret.Val2 | u32 Ret.Err |
//	u32 Ret.Sig | u8 Ret.Inj | u32 len(Ret.Data) | Ret.Data | u64 Ts |
//	u8 flags | u32 plen | payload
//
// Ret.Sig entered the layout with trace.Version 3 (the signal delivered at
// this record's syscall boundary; replaying it is what makes recorded
// signal schedules deterministic offline). Ret.Inj entered with
// trace.Version 4: the fault-injection marker, so a replay reproduces
// injected faults from the record instead of re-rolling them.
// trace.Version 5 changed no layout: it appended SysWritev/SysSendfile to
// the Sysno enum, whose values travel in the Nr word below. Batched
// publication (InvokeBatchOn) also adds nothing here — a batch is a
// transport grouping, not a record property, so batched and sequential
// sessions produce byte-identical traces.
const (
	wireFlagOrdered = 1 << 0
	wireFlagExit    = 1 << 1
)

// GobEncode implements gob.GobEncoder.
func (r Record) GobEncode() ([]byte, error) {
	pay := r.Payload()
	buf := make([]byte, 0, 4+48+8+8+4+4+1+4+len(r.Ret.Data)+8+1+4+len(pay))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Nr))
	for _, a := range r.Args {
		buf = binary.LittleEndian.AppendUint64(buf, a)
	}
	buf = binary.LittleEndian.AppendUint64(buf, r.Ret.Val)
	buf = binary.LittleEndian.AppendUint64(buf, r.Ret.Val2)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Ret.Err))
	buf = binary.LittleEndian.AppendUint32(buf, r.Ret.Sig)
	buf = append(buf, r.Ret.Inj)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Ret.Data)))
	buf = append(buf, r.Ret.Data...)
	buf = binary.LittleEndian.AppendUint64(buf, r.Ts)
	var flags byte
	if r.Ordered {
		flags |= wireFlagOrdered
	}
	if r.Exit {
		flags |= wireFlagExit
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pay)))
	buf = append(buf, pay...)
	return buf, nil
}

// GobDecode implements gob.GobDecoder.
func (r *Record) GobDecode(buf []byte) error {
	d := wireReader{buf: buf}
	*r = Record{}
	r.Nr = kernel.Sysno(d.u32())
	for i := range r.Args {
		r.Args[i] = d.u64()
	}
	r.Ret.Val = d.u64()
	r.Ret.Val2 = d.u64()
	r.Ret.Err = kernel.Errno(d.u32())
	r.Ret.Sig = d.u32()
	r.Ret.Inj = d.u8()
	if data := d.bytes(); len(data) > 0 {
		r.Ret.Data = append([]byte(nil), data...)
	}
	r.Ts = d.u64()
	flags := d.u8()
	r.Ordered = flags&wireFlagOrdered != 0
	r.Exit = flags&wireFlagExit != 0
	r.SetPayload(d.bytes())
	if d.err != nil {
		return fmt.Errorf("monitor: decode record: %w", d.err)
	}
	return nil
}

// wireReader is a cursor over the wire buffer that latches the first
// error, so the decode path reads straight through without per-field
// error plumbing.
type wireReader struct {
	buf []byte
	err error
}

func (d *wireReader) take(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		if d.err == nil {
			d.err = fmt.Errorf("truncated record (want %d bytes, have %d)", n, len(d.buf))
		}
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *wireReader) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *wireReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *wireReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *wireReader) bytes() []byte {
	n := d.u32()
	return d.take(int(n))
}
