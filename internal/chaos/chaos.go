// Package chaos is the fault-injection plane of the simulated-kernel MVEE
// (DESIGN.md §8). A Plan is parsed from a compact command-line grammar:
//
//	target=listener:80 latency=+5ms error=3% short-reads
//
// and an Injector draws deterministic decisions from it with a seeded
// counter PRNG. The kernel consults the injector once per eligible call —
// always in the master variant's execution of a replicated syscall — and
// carries the verdict in the replicated record, so every variant observes
// the identical fault. Chaos here is a reproducible experiment, not a dice
// roll: the same seed against the same workload injects the same faults in
// the same places, run after run, including under record/replay.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/kernel"
)

// Plan is a parsed fault plan: an ordered list of rules plus the PRNG seed.
// Rules compose — a call matching several rules accumulates all their
// effects (latencies add; the last matching error rule's errno wins).
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// Rule is one fault clause, scoped to a target selector.
type Rule struct {
	// Target selects the object kind (kernel.FaultNone = every kind).
	Target kernel.FaultTarget
	// Port restricts a listener rule to one bound port (0 = any).
	Port uint16
	// Latency is added to every matching call (latency=+5ms).
	Latency time.Duration
	// ErrorRate in [0,1] fails that fraction of matching calls with Errno
	// (error=3%).
	ErrorRate float64
	// Errno is the injected failure code (errno=ECONNRESET; default EIO).
	Errno kernel.Errno
	// TimeoutRate in [0,1] forces timeout semantics on that fraction of
	// matching calls (timeout=5%).
	TimeoutRate float64
	// ShortReads/ShortWrites truncate matching transfers (short-reads,
	// short-writes).
	ShortReads  bool
	ShortWrites bool
}

// injectableErrnos is the grammar's errno vocabulary: transient I/O
// failures a guest's error paths should survive.
var injectableErrnos = map[string]kernel.Errno{
	"EIO":        kernel.EIO,
	"ECONNRESET": kernel.ECONNRESET,
	"EAGAIN":     kernel.EAGAIN,
	"EPIPE":      kernel.EPIPE,
	"EINTR":      kernel.EINTR,
}

var targetNames = map[string]kernel.FaultTarget{
	"all":      kernel.FaultNone,
	"pipe":     kernel.FaultPipe,
	"socket":   kernel.FaultSocket,
	"listener": kernel.FaultListener,
	"poll":     kernel.FaultPoll,
	"sleep":    kernel.FaultSleep,
}

// Parse parses a fault plan. Rules are separated by ';'; inside a rule,
// space-separated clauses are either key=value pairs (target, latency,
// error, errno, timeout, seed) or bare flags (short-reads, short-writes).
// An empty spec yields a nil plan (injection disabled).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1}
	for _, rspec := range strings.Split(spec, ";") {
		fields := strings.Fields(rspec)
		if len(fields) == 0 {
			continue
		}
		r := Rule{Errno: kernel.EIO}
		armed := false
		for _, f := range fields {
			key, val, hasVal := strings.Cut(f, "=")
			switch key {
			case "target":
				if !hasVal {
					return nil, fmt.Errorf("chaos: target needs a value (target=listener:80)")
				}
				name, port, hasPort := strings.Cut(val, ":")
				t, ok := targetNames[name]
				if !ok {
					return nil, fmt.Errorf("chaos: unknown target %q (all, pipe, socket, listener[:port], poll, sleep)", name)
				}
				r.Target = t
				if hasPort {
					if t != kernel.FaultListener {
						return nil, fmt.Errorf("chaos: only listener targets take a port (%q)", val)
					}
					n, err := strconv.ParseUint(port, 10, 16)
					if err != nil {
						return nil, fmt.Errorf("chaos: bad listener port %q", port)
					}
					r.Port = uint16(n)
				}
			case "latency":
				if !hasVal {
					return nil, fmt.Errorf("chaos: latency needs a duration (latency=+5ms)")
				}
				d, err := time.ParseDuration(strings.TrimPrefix(val, "+"))
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("chaos: bad latency %q", val)
				}
				r.Latency = d
				armed = true
			case "error":
				rate, err := parseRate(val, hasVal)
				if err != nil {
					return nil, fmt.Errorf("chaos: bad error rate %q", val)
				}
				r.ErrorRate = rate
				// A zero rate injects nothing: it must not arm the rule,
				// or String would drop the clause and render a plan with
				// no fault clauses (which Parse rejects).
				armed = armed || rate > 0
			case "timeout":
				rate, err := parseRate(val, hasVal)
				if err != nil {
					return nil, fmt.Errorf("chaos: bad timeout rate %q", val)
				}
				r.TimeoutRate = rate
				armed = armed || rate > 0
			case "errno":
				e, ok := injectableErrnos[strings.ToUpper(val)]
				if !ok || !hasVal {
					return nil, fmt.Errorf("chaos: unknown errno %q (EIO, ECONNRESET, EAGAIN, EPIPE, EINTR)", val)
				}
				r.Errno = e
			case "short-reads":
				r.ShortReads = true
				armed = true
			case "short-writes":
				r.ShortWrites = true
				armed = true
			case "seed":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil || !hasVal {
					return nil, fmt.Errorf("chaos: bad seed %q", val)
				}
				p.Seed = n
			default:
				return nil, fmt.Errorf("chaos: unknown clause %q", f)
			}
		}
		if armed {
			p.Rules = append(p.Rules, r)
		}
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("chaos: plan %q has no fault clauses", spec)
	}
	return p, nil
}

func parseRate(val string, hasVal bool) (float64, error) {
	if !hasVal {
		return 0, fmt.Errorf("missing value")
	}
	pct := strings.HasSuffix(val, "%")
	f, err := strconv.ParseFloat(strings.TrimSuffix(val, "%"), 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad rate")
	}
	if pct {
		f /= 100
	}
	if f > 1 {
		return 0, fmt.Errorf("rate above 100%%")
	}
	return f, nil
}

// String renders the plan back in (normalized) grammar form.
func (p *Plan) String() string {
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteString("; ")
		}
		name := r.Target.String()
		if r.Target == kernel.FaultNone {
			// FaultNone stringifies as "none" kernel-side, but the grammar
			// spells the match-everything target "all" — keep String's
			// output parseable.
			name = "all"
		}
		fmt.Fprintf(&b, "target=%s", name)
		if r.Port != 0 {
			fmt.Fprintf(&b, ":%d", r.Port)
		}
		if r.Latency > 0 {
			fmt.Fprintf(&b, " latency=+%s", r.Latency)
		}
		if r.ErrorRate > 0 {
			fmt.Fprintf(&b, " error=%g%% errno=%s", r.ErrorRate*100, r.Errno)
		}
		if r.TimeoutRate > 0 {
			fmt.Fprintf(&b, " timeout=%g%%", r.TimeoutRate*100)
		}
		if r.ShortReads {
			b.WriteString(" short-reads")
		}
		if r.ShortWrites {
			b.WriteString(" short-writes")
		}
	}
	fmt.Fprintf(&b, " seed=%d", p.Seed)
	return b.String()
}

// matches reports whether the rule applies to the op. The zero target
// matches every kind; a port-qualified rule additionally requires the op's
// port.
func (r *Rule) matches(op kernel.FaultOp) bool {
	if r.Target != kernel.FaultNone && r.Target != op.Kind {
		return false
	}
	if r.Port != 0 && r.Port != op.Port {
		return false
	}
	return true
}

// Injector draws fault decisions from a Plan. Decisions are deterministic
// in the order calls reach the kernel: one atomic counter increment per
// decision feeds a splitmix64 stream, so a deterministic workload (and the
// master's execution of replicated calls IS the deterministic sequence)
// sees the same faults every run. Concurrency-safe; one Injector may be
// shared across the sessions of a fleet, at the cost of per-member
// determinism (the members then interleave on the shared counter).
type Injector struct {
	plan *Plan
	ctr  atomic.Uint64
	// injected counts decisions that carried at least one fault effect.
	injected atomic.Uint64
}

// New returns an injector for the plan; a nil plan yields a nil injector,
// which kernel.SetInjector treats as "injection disabled".
func New(p *Plan) *Injector {
	if p == nil || len(p.Rules) == 0 {
		return nil
	}
	return &Injector{plan: p}
}

// Injected reports how many calls have had at least one fault injected.
func (in *Injector) Injected() uint64 { return in.injected.Load() }

// Plan returns the injector's plan (for banner/echo output).
func (in *Injector) Plan() *Plan { return in.plan }

// Decide implements kernel.FaultInjector. It is nil-receiver safe, so a
// nil *Injector stored in the interface (a disabled plan passed through
// layers that don't check) decides nothing rather than crashing.
func (in *Injector) Decide(op kernel.FaultOp) (kernel.FaultDecision, bool) {
	if in == nil {
		return kernel.FaultDecision{}, false
	}
	// One counter draw per decision; per-rule sub-streams are derived
	// locally so the draw count per call never depends on how many rules
	// match (a plan edit shifts decisions, a cache miss never does).
	base := splitmix64(in.plan.Seed + in.ctr.Add(1)*0x9e3779b97f4a7c15)
	var d kernel.FaultDecision
	for i := range in.plan.Rules {
		r := &in.plan.Rules[i]
		if !r.matches(op) {
			continue
		}
		u := splitmix64(base ^ (uint64(i+1) * 0xbf58476d1ce4e5b9))
		if r.Latency > 0 {
			d.Delay += r.Latency
		}
		if r.ErrorRate > 0 && frac(splitmix64(u^1)) < r.ErrorRate {
			d.Err = r.Errno
		}
		if r.TimeoutRate > 0 && frac(splitmix64(u^2)) < r.TimeoutRate {
			d.Timeout = true
		}
		if (r.ShortReads && (op.Nr == kernel.SysRead || op.Nr == kernel.SysRecv)) ||
			(r.ShortWrites && (op.Nr == kernel.SysWrite || op.Nr == kernel.SysSend)) {
			d.Short = true
		}
	}
	if d == (kernel.FaultDecision{}) {
		return d, false
	}
	in.injected.Add(1)
	return d, true
}

// splitmix64 is the standard 64-bit finalizer-style PRNG step: cheap,
// stateless, and uniform enough for fault rates.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// frac maps a 64-bit draw onto [0,1).
func frac(u uint64) float64 { return float64(u>>11) / (1 << 53) }
