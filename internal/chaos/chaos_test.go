package chaos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/kernel"
)

func TestParseFullGrammar(t *testing.T) {
	p, err := Parse("target=listener:80 latency=+5ms error=3% errno=ECONNRESET short-reads seed=42; target=pipe timeout=0.25 short-writes")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Rules) != 2 {
		t.Fatalf("seed=%d rules=%d, want 42/2", p.Seed, len(p.Rules))
	}
	r := p.Rules[0]
	if r.Target != kernel.FaultListener || r.Port != 80 || r.Latency != 5*time.Millisecond ||
		r.ErrorRate != 0.03 || r.Errno != kernel.ECONNRESET || !r.ShortReads || r.ShortWrites {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = p.Rules[1]
	if r.Target != kernel.FaultPipe || r.TimeoutRate != 0.25 || !r.ShortWrites || r.ShortReads {
		t.Fatalf("rule 1 = %+v", r)
	}
	// The zero target means "all"; the errno default is EIO.
	if r.Errno != kernel.EIO {
		t.Fatalf("default errno = %v, want EIO", r.Errno)
	}
}

func TestParseDefaultsAndEmpty(t *testing.T) {
	if p, err := Parse("   "); p != nil || err != nil {
		t.Fatalf("blank spec: plan=%v err=%v, want nil/nil (injection disabled)", p, err)
	}
	p, err := Parse("error=10%")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 1 || p.Rules[0].Target != kernel.FaultNone || p.Rules[0].Errno != kernel.EIO {
		t.Fatalf("defaults: %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"target=disk error=1%",     // unknown target
		"target=pipe:9 error=1%",   // port on a non-listener
		"target=listener:bignum",   // bad port
		"latency=5",                // bare number is not a duration
		"latency=-3ms",             // negative latency
		"error=150%",               // rate above 1
		"error=-1%",                // negative rate
		"errno=ENOENT error=1%",    // errno outside the injectable set
		"frobnicate=1",             // unknown clause
		"target=pipe",              // rule with no fault clause
		"seed=7",                   // seed alone arms nothing
		"target=pipe seed=notanum", // bad seed
		"target=listener timeout",  // rate with no value
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed plan", spec)
		}
	}
}

func TestPlanStringRoundTrips(t *testing.T) {
	p, err := Parse("target=listener:8080 latency=+2ms error=3% short-reads seed=7")
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"target=listener:8080", "latency=+2ms", "error=3%", "errno=EIO", "short-reads", "seed=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	// The normalized form must itself parse back to the same plan.
	p2, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", s, err)
	}
	if p2.String() != s {
		t.Fatalf("round trip drifted:\n  %s\n  %s", s, p2.String())
	}
}

func TestDecideIsDeterministicPerSeed(t *testing.T) {
	const spec = "latency=+1ms error=20% timeout=10% short-reads short-writes seed=99"
	ops := []kernel.FaultOp{
		{Nr: kernel.SysRead, Kind: kernel.FaultPipe},
		{Nr: kernel.SysWrite, Kind: kernel.FaultPipe},
		{Nr: kernel.SysRecv, Kind: kernel.FaultSocket},
		{Nr: kernel.SysAccept, Kind: kernel.FaultListener, Port: 80},
		{Nr: kernel.SysPoll, Kind: kernel.FaultPoll},
		{Nr: kernel.SysNanosleep, Kind: kernel.FaultSleep},
	}
	draw := func(seed string) []kernel.FaultDecision {
		p, err := Parse(strings.Replace(spec, "seed=99", seed, 1))
		if err != nil {
			t.Fatal(err)
		}
		in := New(p)
		var out []kernel.FaultDecision
		for i := 0; i < 200; i++ {
			d, _ := in.Decide(ops[i%len(ops)])
			out = append(out, d)
		}
		return out
	}
	a, b, c := draw("seed=99"), draw("seed=99"), draw("seed=100")
	same := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across same-seed injectors: %+v vs %+v", i, a[i], b[i])
		}
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed=100 produced the identical decision sequence as seed=99 — the seed is dead")
	}
}

func TestDecideRatesApproximate(t *testing.T) {
	p, err := Parse("target=pipe error=25% seed=3")
	if err != nil {
		t.Fatal(err)
	}
	in := New(p)
	op := kernel.FaultOp{Nr: kernel.SysRead, Kind: kernel.FaultPipe}
	errs := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if d, ok := in.Decide(op); ok && d.Err != kernel.OK {
			errs++
		}
	}
	// 25% of 4000 is 1000; allow a generous band — this checks the rate is
	// honored, not the PRNG's quality.
	if errs < n/5 || errs > 3*n/10 {
		t.Fatalf("error=25%% injected %d/%d (%.1f%%)", errs, n, 100*float64(errs)/n)
	}
	if in.Injected() != uint64(errs) {
		t.Fatalf("Injected() = %d, want %d (only carried decisions count)", in.Injected(), errs)
	}
}

func TestDecideScoping(t *testing.T) {
	p, err := Parse("target=listener:80 error=100%")
	if err != nil {
		t.Fatal(err)
	}
	in := New(p)
	if d, ok := in.Decide(kernel.FaultOp{Nr: kernel.SysAccept, Kind: kernel.FaultListener, Port: 80}); !ok || d.Err != kernel.EIO {
		t.Fatalf("matching op: %+v ok=%v", d, ok)
	}
	// Wrong port, wrong kind: no decision.
	if _, ok := in.Decide(kernel.FaultOp{Nr: kernel.SysAccept, Kind: kernel.FaultListener, Port: 81}); ok {
		t.Fatal("port 81 matched a listener:80 rule")
	}
	if _, ok := in.Decide(kernel.FaultOp{Nr: kernel.SysRead, Kind: kernel.FaultPipe}); ok {
		t.Fatal("pipe op matched a listener rule")
	}
}

func TestShortAppliesOnlyToMatchingDirection(t *testing.T) {
	p, err := Parse("target=pipe short-reads")
	if err != nil {
		t.Fatal(err)
	}
	in := New(p)
	if d, ok := in.Decide(kernel.FaultOp{Nr: kernel.SysRead, Kind: kernel.FaultPipe}); !ok || !d.Short {
		t.Fatalf("read under short-reads: %+v ok=%v", d, ok)
	}
	if _, ok := in.Decide(kernel.FaultOp{Nr: kernel.SysWrite, Kind: kernel.FaultPipe}); ok {
		t.Fatal("short-reads truncated a write")
	}
}

func TestNilInjectorDecidesNothing(t *testing.T) {
	var in *Injector
	if d, ok := in.Decide(kernel.FaultOp{Nr: kernel.SysRead, Kind: kernel.FaultPipe}); ok || d != (kernel.FaultDecision{}) {
		t.Fatalf("nil injector decided %+v", d)
	}
	if New(nil) != nil {
		t.Fatal("New(nil) must return a nil injector")
	}
}
