package chaos

import (
	"testing"
)

// FuzzPlanGrammar fuzzes the plan grammar round trip: any spec Parse
// accepts must render through String into a normalized form that (a)
// parses again and (b) is a fixed point — String(Parse(String(p))) ==
// String(p). The seed corpus is the README grammar table, one entry per
// clause form plus the composed examples the docs show.
func FuzzPlanGrammar(f *testing.F) {
	for _, seed := range []string{
		"",
		"target=all error=1%",
		"target=pipe short-reads",
		"target=socket error=3% errno=ECONNRESET short-reads",
		"target=listener latency=+2ms",
		"target=listener:80 latency=+5ms error=3% errno=ECONNRESET short-reads seed=42",
		"target=poll timeout=5%",
		"target=sleep latency=+1ms",
		"latency=+1.5ms short-writes",
		"error=0.03 errno=EAGAIN",
		"error=10% errno=EPIPE; timeout=0.25 seed=9",
		"errno=EINTR timeout=100%",
		"target=socket error=3% errno=ECONNRESET short-reads; target=listener latency=+2ms seed=7",
		"short-reads short-writes",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil || p == nil {
			// Rejected (or blank = injection disabled): nothing to round
			// trip; the parser just must not panic, which reaching here
			// proves.
			return
		}
		s1 := p.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("Parse(%q) ok but normalized form %q rejected: %v", spec, s1, err)
		}
		if p2 == nil {
			t.Fatalf("normalized form %q parsed to a nil plan", s1)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("String not a fixed point for %q:\n  first  %q\n  second %q", spec, s1, s2)
		}
	})
}
