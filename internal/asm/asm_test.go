package asm

import "testing"

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpLockRMW: "lock-rmw", OpXchg: "xchg", OpLoad: "load", OpStore: "store",
		OpLea: "lea", OpMovReg: "movreg", OpCall: "call", OpArith: "arith", OpRet: "ret",
	} {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	if Op(99).String() != "op(99)" {
		t.Errorf("unknown op string = %q", Op(99).String())
	}
}

func TestNumInstrs(t *testing.T) {
	u := &Unit{
		Funcs: []Func{
			{Name: "a", Body: []Instr{{Op: OpArith}, {Op: OpRet}}},
			{Name: "b", Body: []Instr{{Op: OpRet}}},
		},
	}
	if got := u.NumInstrs(); got != 3 {
		t.Fatalf("NumInstrs = %d, want 3", got)
	}
	if (&Unit{}).NumInstrs() != 0 {
		t.Fatal("empty unit has instructions")
	}
}

func TestFuncByName(t *testing.T) {
	u := &Unit{Funcs: []Func{{Name: "f"}, {Name: "g"}}}
	if f := u.FuncByName("g"); f == nil || f.Name != "g" {
		t.Fatalf("FuncByName(g) = %v", f)
	}
	if u.FuncByName("h") != nil {
		t.Fatal("FuncByName(h) found a ghost")
	}
	// Returned pointer aliases the unit (mutations visible).
	u.FuncByName("f").Params = []string{"rdi"}
	if len(u.Funcs[0].Params) != 1 {
		t.Fatal("FuncByName returned a copy")
	}
}
