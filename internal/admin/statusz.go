package admin

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/kernel"
	"repro/internal/telemetry"
)

// handleStatusz renders the human-facing health page: the fleet stats
// table, every member's session and process-table detail, and the
// quarantine log with each record's flight-recorder tails.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	snap := s.fleet.Snapshot()
	var b strings.Builder

	fmt.Fprintf(&b, "== fleet ==\n%s\n", fleet.StatsTable(s.fleet.Stats()))

	fmt.Fprintf(&b, "\n== members ==\n")
	for _, m := range snap.Members {
		state := "healthy"
		if !m.Healthy {
			state = "down"
		}
		fmt.Fprintf(&b, "slot %d gen %d seed %d epoch %d/%d: %s, inflight %d, served %d, syscalls %d\n",
			m.Slot, m.Gen, m.Seed, m.Epoch, m.EpochSeed, state, m.Inflight, m.Served, m.Syscalls)
		for _, p := range m.Procs {
			fmt.Fprintf(&b, "  pid %-4d vpid %-3d parent %-3d %-8s threads %d fds %d\n",
				p.Pid, p.Vpid, p.Parent, p.State, p.Threads, p.OpenFDs)
		}
	}

	if snap.Telemetry != nil {
		fmt.Fprintf(&b, "\n== syscall matrix (merged) ==\n%s", MatrixTable(snap.Telemetry))
	}

	if snap.Faults.Total() > 0 {
		fmt.Fprintf(&b, "\n== chaos ==\nfaults injected: %d (latency %d, error %d, timeout %d, short %d)\n",
			snap.Faults.Total(), snap.Faults.Latency, snap.Faults.Errors,
			snap.Faults.Timeouts, snap.Faults.Shorts)
	}

	fmt.Fprintf(&b, "\n== waits ==\nring: parks %d, stop trips %d, append batches %d (%d items), consume runs %d (%d items)\nfutex: parks %d, wakes %d\n",
		snap.Ring.Parks, snap.Ring.StopTrips, snap.Ring.AppendBatches, snap.Ring.AppendItems,
		snap.Ring.ConsumeRuns, snap.Ring.ConsumeItems, snap.Futex.Parks, snap.Futex.Wakes)

	if len(snap.Quarantined) > 0 {
		fmt.Fprintf(&b, "\n== quarantined sessions ==\n")
		for i, q := range snap.Quarantined {
			var reason string
			switch {
			case q.Divergence != nil:
				reason = q.Divergence.Error()
			case q.Deadlock != nil:
				reason = q.Deadlock.String()
			default:
				reason = fmt.Sprintf("program crash: %v", q.Panic)
			}
			fmt.Fprintf(&b, "[%d] slot %d gen %d seed %d at %s\n    %s\n    served %d over %v (%d syscalls, %d sync ops)\n",
				i, q.Slot, q.Gen, q.Seed, q.When.Format(time.RFC3339), reason,
				q.Served, q.Uptime.Round(time.Microsecond), q.Syscalls, q.SyncOps)
			if q.Trace != nil {
				fmt.Fprintf(&b, "    forensic trace captured (replayable offline)\n")
			}
			for v, tail := range q.Flight {
				fmt.Fprintf(&b, "    variant %d flight tail (%d records):\n", v, len(tail))
				for _, r := range tail {
					fmt.Fprintf(&b, "      %s\n", r)
				}
			}
		}
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(b.String()))
}

// MatrixTable renders the merged syscall matrix as an aligned text table:
// one row per sysno with activity, count and sampled p50/p99 latency per
// variant. Shared by /statusz and cmd/mvee-top.
func MatrixTable(t *telemetry.Snapshot) string {
	if t == nil || len(t.Cells) == 0 {
		return "(no telemetry)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "sysno")
	for v := range t.Cells {
		fmt.Fprintf(&b, " %12s %9s %9s", fmt.Sprintf("v%d count", v), "p50", "p99")
	}
	b.WriteByte('\n')
	width := 0
	for _, row := range t.Cells {
		if len(row) > width {
			width = len(row)
		}
	}
	for nr := 0; nr < width; nr++ {
		active := false
		for _, row := range t.Cells {
			if nr < len(row) && row[nr].Count > 0 {
				active = true
				break
			}
		}
		if !active {
			continue
		}
		fmt.Fprintf(&b, "%-14s", kernel.Sysno(nr).String())
		for _, row := range t.Cells {
			var c telemetry.Cell
			if nr < len(row) {
				c = row[nr]
			}
			p50, p99 := "-", "-"
			if c.LatN > 0 {
				p50 = time.Duration(c.LatP50).String()
				p99 = time.Duration(c.LatP99).String()
			}
			fmt.Fprintf(&b, " %12d %9s %9s", c.Count, p50, p99)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
