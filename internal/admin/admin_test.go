package admin_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/variant"
	"repro/internal/webserver"
)

const testSeed = 77

func newServedFleet(t *testing.T, cfg webserver.Config, size int) (*fleet.Fleet, string) {
	t.Helper()
	sess := core.Options{Variants: 2, Agent: agent.WallOfClocks, ASLR: true, DCL: true,
		Seed: testSeed, MaxThreads: 64}
	f, err := fleet.New(webserver.FleetConfig(cfg, sess, size))
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	t.Cleanup(f.Close)
	srv := admin.New(f)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("admin.Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return f, addr
}

func get(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	f, addr := newServedFleet(t, webserver.Config{Port: 8080, PoolThreads: 2, InstrumentCustomSync: true}, 2)
	for r := 0; r < 10; r++ {
		if _, err := f.Do([]byte("GET /")); err != nil {
			t.Fatalf("request %d: %v", r, err)
		}
	}
	body := get(t, addr, "/metrics")
	for _, want := range []string{
		"mvee_requests_served_total 10",
		"mvee_members_healthy 2",
		// The static page is served zero-copy (sendfile), so that is the
		// per-variant counter traffic shows up under.
		`mvee_syscalls_total{variant="0",sysno="sendfile"}`,
		`mvee_syscalls_total{variant="1",sysno="sendfile"}`,
		`mvee_syscalls_total{variant="0",sysno="accept"}`,
		"mvee_futex_wakes_total",
		"mvee_ring_parks_total",
		`mvee_member_served_total{slot="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(body, "mvee_divergences_total 0\n") == false {
		t.Errorf("/metrics divergence counter not rendered as 0:\n%s", body)
	}
	if strings.Contains(body, "mvee_deadlocks_total 0\n") == false {
		t.Errorf("/metrics deadlock counter not rendered as 0:\n%s", body)
	}
}

func TestSnapshotEndpointRoundTrips(t *testing.T) {
	f, addr := newServedFleet(t, webserver.Config{Port: 8080, PoolThreads: 2, InstrumentCustomSync: true}, 1)
	for r := 0; r < 5; r++ {
		if _, err := f.Do([]byte("GET /")); err != nil {
			t.Fatalf("request %d: %v", r, err)
		}
	}
	var snap admin.Snapshot
	if err := json.Unmarshal([]byte(get(t, addr, "/api/snapshot")), &snap); err != nil {
		t.Fatalf("decode /api/snapshot: %v", err)
	}
	if snap.Stats.Served != 5 || len(snap.Members) != 1 {
		t.Fatalf("snapshot stats = %+v, members = %d", snap.Stats, len(snap.Members))
	}
	if snap.Telemetry == nil || snap.Telemetry.Total(0) == 0 {
		t.Fatalf("snapshot telemetry missing or empty: %+v", snap.Telemetry)
	}
	if len(snap.Members[0].Procs) == 0 || len(snap.Members[0].Flight) == 0 {
		t.Fatalf("member snapshot lacks procs/flight: %+v", snap.Members[0])
	}
}

// TestStatuszShowsQuarantineFlightTail is the divergence-forensics
// acceptance: an exploit payload diverges a session, and /statusz shows
// the quarantine record with a non-empty flight-recorder tail.
func TestStatuszShowsQuarantineFlightTail(t *testing.T) {
	cfg := webserver.Config{Port: 8080, PoolThreads: 2, InstrumentCustomSync: true,
		Vulnerable: true, PageSize: 1024}
	f, addr := newServedFleet(t, cfg, 2)
	gadget := variant.NewSpace(0, variant.Options{ASLR: true, DCL: true, Seed: testSeed}).AllocCode(64)
	if resp, err := f.Do([]byte(fmt.Sprintf("POST /upload %x", gadget))); err == nil && strings.Contains(string(resp), "PWNED") {
		t.Fatalf("leak escaped: %q", resp)
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.Stats().Divergences == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	body := get(t, addr, "/statusz")
	if !strings.Contains(body, "== quarantined sessions ==") {
		t.Fatalf("/statusz lacks the quarantine section:\n%s", body)
	}
	if !strings.Contains(body, "payload mismatch") {
		t.Errorf("/statusz lacks the divergence verdict")
	}
	for v := 0; v < 2; v++ {
		tag := fmt.Sprintf("variant %d flight tail (", v)
		at := strings.Index(body, tag)
		if at < 0 {
			t.Fatalf("/statusz lacks %q:\n%s", tag, body)
		}
		if strings.Contains(body[at:], tag+"0 records)") {
			t.Errorf("variant %d flight tail is empty", v)
		}
	}
	// The tail lines render actual records.
	if !strings.Contains(body, "digest=") {
		t.Errorf("/statusz flight tails carry no records:\n%s", body)
	}
}
