// Package admin is the fleet's live observability plane: an HTTP server
// (real host networking, unlike the fleet's simulated kernels) exposing
//
//	/metrics       Prometheus text format, no external dependencies
//	/statusz       human-readable fleet health, process tables, quarantine log
//	/api/snapshot  the full fleet.Snapshot as JSON (what mvee-top consumes)
//	/reload        POST: fleet-wide zero-downtime hot restart (SIGHUP sweep)
//	/debug/pprof/  the standard Go profiler endpoints
//
// Everything renders from one fleet.Snapshot per request, so a scrape
// costs the serving path nothing beyond the lock-free snapshot reads.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/fleet"
)

// Server serves the admin plane for one fleet. Create with New, then
// Start (own listener) or mount Handler on an existing mux.
type Server struct {
	fleet *fleet.Fleet
	mux   *http.ServeMux
	srv   *http.Server
	ln    net.Listener
}

// New builds the admin server for f without binding any socket.
func New(f *fleet.Fleet) *Server {
	s := &Server{fleet: f, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/api/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/reload", s.handleReload)
	// Explicit pprof routes: the package's init only registers on
	// http.DefaultServeMux, which a library must not depend on.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the admin mux, for embedding into an existing server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (host:port; an empty host binds all interfaces, port 0
// picks a free port) and serves in the background. It returns the bound
// address, which is what callers print and tests dial.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// handleReload triggers a fleet-wide hot restart: SIGHUP to every healthy
// member's root process (see fleet.Reload). POST only — it mutates serving
// state, and an idle GET from a crawler or a dashboard prefetcher must not
// cycle worker generations.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	n := s.fleet.Reload()
	fmt.Fprintf(w, "reload signalled to %d member(s)\n", n)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	snap := SnapshotJSON(s.fleet.Snapshot())
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
