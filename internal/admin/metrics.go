package admin

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/kernel"
)

// handleMetrics renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), hand-rolled — the repo takes no external
// dependencies, and the format is lines of `name{labels} value`.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.fleet.Snapshot()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("mvee_requests_served_total", "Requests answered successfully.", snap.Stats.Served)
	counter("mvee_requests_errors_total", "Requests that failed (divergence kills included).", snap.Stats.Errors)
	counter("mvee_requests_rejected_total", "Requests rejected by gateway backpressure.", snap.Stats.Rejected)
	counter("mvee_divergences_total", "Sessions quarantined because their variants diverged.", snap.Stats.Divergences)
	counter("mvee_deadlocks_total", "Sessions quarantined because the deadlock detector proved them wedged.", snap.Stats.Deadlocks)
	counter("mvee_crashes_total", "Sessions quarantined because the program crashed.", snap.Stats.Crashes)
	counter("mvee_sessions_recycled_total", "Replacement sessions spawned.", snap.Stats.Recycled)
	counter("mvee_reloads_total", "Hot-restart sweeps triggered through the fleet.", snap.Stats.Reloads)
	gauge("mvee_members_healthy", "Members currently accepting dispatch.", float64(snap.Stats.Healthy))
	gauge("mvee_uptime_seconds", "Fleet uptime.", snap.Stats.Uptime.Seconds())

	fmt.Fprintf(&b, "# HELP mvee_request_latency_ns Gateway request latency quantiles.\n# TYPE mvee_request_latency_ns gauge\n")
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(&b, "mvee_request_latency_ns{quantile=%q} %d\n", fmt.Sprintf("%g", q), snap.Stats.Latency.Quantile(q))
	}

	// The syscall matrix: one counter series per (variant, sysno) cell
	// with a nonzero count, and sampled latency quantiles alongside.
	fmt.Fprintf(&b, "# HELP mvee_syscalls_total Monitored syscalls by variant and sysno (merged across members).\n# TYPE mvee_syscalls_total counter\n")
	if snap.Telemetry != nil {
		for v, row := range snap.Telemetry.Cells {
			for nr, cell := range row {
				if cell.Count == 0 {
					continue
				}
				fmt.Fprintf(&b, "mvee_syscalls_total{variant=\"%d\",sysno=%q} %d\n",
					v, kernel.Sysno(nr).String(), cell.Count)
			}
		}
		fmt.Fprintf(&b, "# HELP mvee_syscall_latency_ns Sampled syscall dispatch latency by variant and sysno.\n# TYPE mvee_syscall_latency_ns gauge\n")
		for v, row := range snap.Telemetry.Cells {
			for nr, cell := range row {
				if cell.LatN == 0 {
					continue
				}
				name := kernel.Sysno(nr).String()
				fmt.Fprintf(&b, "mvee_syscall_latency_ns{variant=\"%d\",sysno=%q,quantile=\"0.5\"} %d\n", v, name, cell.LatP50)
				fmt.Fprintf(&b, "mvee_syscall_latency_ns{variant=\"%d\",sysno=%q,quantile=\"0.99\"} %d\n", v, name, cell.LatP99)
			}
		}
	}

	// Chaos plane: injected faults by class, summed over members. All-zero
	// (but present, so dashboards can alert on "chaos unexpectedly on")
	// without a fault plan.
	fmt.Fprintf(&b, "# HELP mvee_faults_injected_total Chaos-plane faults injected, by class.\n# TYPE mvee_faults_injected_total counter\n")
	fmt.Fprintf(&b, "mvee_faults_injected_total{kind=\"latency\"} %d\n", snap.Faults.Latency)
	fmt.Fprintf(&b, "mvee_faults_injected_total{kind=\"error\"} %d\n", snap.Faults.Errors)
	fmt.Fprintf(&b, "mvee_faults_injected_total{kind=\"timeout\"} %d\n", snap.Faults.Timeouts)
	fmt.Fprintf(&b, "mvee_faults_injected_total{kind=\"short\"} %d\n", snap.Faults.Shorts)

	counter("mvee_ring_parks_total", "Ring waits that escalated to a futex park.", snap.Ring.Parks)
	counter("mvee_ring_stop_trips_total", "Parking-contract watchdog violations.", snap.Ring.StopTrips)
	counter("mvee_ring_append_batches_total", "Batched ring appends.", snap.Ring.AppendBatches)
	counter("mvee_ring_append_items_total", "Items published through batched appends.", snap.Ring.AppendItems)
	counter("mvee_ring_consume_runs_total", "Batched ring consumes that made progress.", snap.Ring.ConsumeRuns)
	counter("mvee_ring_consume_items_total", "Items consumed through batched consumes.", snap.Ring.ConsumeItems)
	counter("mvee_futex_parks_total", "Parker sleeps (all wait sets).", snap.Futex.Parks)
	counter("mvee_futex_wakes_total", "Parker wakes that found sleepers and broadcast.", snap.Futex.Wakes)

	// Per-member gauges: health, load, and kernel pressure.
	fmt.Fprintf(&b, "# HELP mvee_member_healthy Whether the slot accepts dispatch.\n# TYPE mvee_member_healthy gauge\n")
	for _, m := range snap.Members {
		h := 0
		if m.Healthy {
			h = 1
		}
		fmt.Fprintf(&b, "mvee_member_healthy{slot=\"%d\"} %d\n", m.Slot, h)
	}
	fmt.Fprintf(&b, "# HELP mvee_worker_epoch The member program's live worker generation (hot-restart epoch).\n# TYPE mvee_worker_epoch gauge\n")
	for _, m := range snap.Members {
		fmt.Fprintf(&b, "mvee_worker_epoch{slot=\"%d\"} %d\n", m.Slot, m.Epoch)
	}
	fmt.Fprintf(&b, "# HELP mvee_member_served_total Requests served by the slot's current session.\n# TYPE mvee_member_served_total counter\n")
	for _, m := range snap.Members {
		fmt.Fprintf(&b, "mvee_member_served_total{slot=\"%d\"} %d\n", m.Slot, m.Served)
	}
	fmt.Fprintf(&b, "# HELP mvee_member_open_fds Live descriptors across the member kernel's processes.\n# TYPE mvee_member_open_fds gauge\n")
	for _, m := range snap.Members {
		fds := 0
		for _, p := range m.Procs {
			fds += p.OpenFDs
		}
		fmt.Fprintf(&b, "mvee_member_open_fds{slot=\"%d\"} %d\n", m.Slot, fds)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
