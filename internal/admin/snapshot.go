package admin

import (
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/futex"
	"repro/internal/ring"
	"repro/internal/telemetry"
)

// Snapshot is the wire form of fleet.Snapshot: the same data with the
// non-serializable parts flattened — Stats reduced to numbers (its
// histogram becomes quantiles), Quarantine's Panic rendered to a string
// and its Trace reduced to a presence bit (a trace can be megabytes; the
// admin plane reports it, forensic replay consumes it in-process). Both
// the /api/snapshot handler and cmd/mvee-top use this one type, so the
// CLI decodes exactly what the server encodes.
type Snapshot struct {
	Taken       time.Time              `json:"taken"`
	Stats       Stats                  `json:"stats"`
	Members     []fleet.MemberSnapshot `json:"members"`
	Telemetry   *telemetry.Snapshot    `json:"telemetry,omitempty"`
	Ring        ring.Metrics           `json:"ring"`
	Futex       futex.Metrics          `json:"futex"`
	Quarantined []QuarantineInfo       `json:"quarantined,omitempty"`
}

// Stats is the wire form of fleet.Stats.
type Stats struct {
	Served        uint64  `json:"served"`
	Errors        uint64  `json:"errors"`
	Rejected      uint64  `json:"rejected"`
	Divergences   uint64  `json:"divergences"`
	Deadlocks     uint64  `json:"deadlocks"`
	Crashes       uint64  `json:"crashes"`
	Recycled      uint64  `json:"recycled"`
	Healthy       int     `json:"healthy"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Throughput    float64 `json:"throughput"`
	LatencyCount  uint64  `json:"latency_count"`
	LatencyMeanNs float64 `json:"latency_mean_ns"`
	LatencyP50Ns  uint64  `json:"latency_p50_ns"`
	LatencyP90Ns  uint64  `json:"latency_p90_ns"`
	LatencyP99Ns  uint64  `json:"latency_p99_ns"`
	LatencyMaxNs  uint64  `json:"latency_max_ns"`
}

// QuarantineInfo is the wire form of fleet.Quarantine.
type QuarantineInfo struct {
	Slot     int                        `json:"slot"`
	Gen      int                        `json:"gen"`
	Seed     int64                      `json:"seed"`
	Kind     string                     `json:"kind"` // "divergence", "deadlock" or "crash"
	Reason   string                     `json:"reason"`
	Served   uint64                     `json:"served"`
	Uptime   time.Duration              `json:"uptime_ns"`
	Syscalls uint64                     `json:"syscalls"`
	SyncOps  uint64                     `json:"sync_ops"`
	HasTrace bool                       `json:"has_trace"`
	Flight   [][]telemetry.FlightRecord `json:"flight,omitempty"`
	When     time.Time                  `json:"when"`
}

// SnapshotJSON flattens a fleet.Snapshot into its wire form.
func SnapshotJSON(s fleet.Snapshot) Snapshot {
	out := Snapshot{
		Taken:     s.Taken,
		Members:   s.Members,
		Telemetry: s.Telemetry,
		Ring:      s.Ring,
		Futex:     s.Futex,
		Stats: Stats{
			Served:        s.Stats.Served,
			Errors:        s.Stats.Errors,
			Rejected:      s.Stats.Rejected,
			Divergences:   s.Stats.Divergences,
			Deadlocks:     s.Stats.Deadlocks,
			Crashes:       s.Stats.Crashes,
			Recycled:      s.Stats.Recycled,
			Healthy:       s.Stats.Healthy,
			UptimeSeconds: s.Stats.Uptime.Seconds(),
			Throughput:    s.Stats.Throughput(),
			LatencyCount:  s.Stats.Latency.Count(),
			LatencyMeanNs: s.Stats.Latency.MeanValue(),
			LatencyP50Ns:  s.Stats.Latency.Quantile(0.50),
			LatencyP90Ns:  s.Stats.Latency.Quantile(0.90),
			LatencyP99Ns:  s.Stats.Latency.Quantile(0.99),
			LatencyMaxNs:  s.Stats.Latency.MaxValue(),
		},
	}
	for _, q := range s.Quarantined {
		qi := QuarantineInfo{
			Slot: q.Slot, Gen: q.Gen, Seed: q.Seed,
			Served: q.Served, Uptime: q.Uptime,
			Syscalls: q.Syscalls, SyncOps: q.SyncOps,
			HasTrace: q.Trace != nil,
			Flight:   q.Flight,
			When:     q.When,
		}
		switch {
		case q.Divergence != nil:
			qi.Kind, qi.Reason = "divergence", q.Divergence.Error()
		case q.Deadlock != nil:
			qi.Kind, qi.Reason = "deadlock", q.Deadlock.String()
		default:
			qi.Kind, qi.Reason = "crash", fmt.Sprint(q.Panic)
		}
		out.Quarantined = append(out.Quarantined, qi)
	}
	return out
}
