// Package bench is the evaluation harness: it regenerates the paper's
// Tables 1-3 and Figure 5 from the modelled workloads (see DESIGN.md's
// experiment index). Both cmd/mvee-bench and the root bench_test.go build
// on it.
package bench

import (
	"fmt"
	"time"

	"repro/internal/agent"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/webserver"
	"repro/internal/workload"
)

// Run is one measured execution.
type Run struct {
	Benchmark string
	Agent     agent.Kind
	Variants  int
	Duration  time.Duration
	Syscalls  uint64
	SyncOps   uint64
	Stalls    uint64
	Diverged  bool
}

// SyscallRate returns monitored syscalls per second.
func (r Run) SyscallRate() float64 { return stats.Rate(r.Syscalls, r.Duration.Seconds()) }

// SyncRate returns sync ops per second.
func (r Run) SyncRate() float64 { return stats.Rate(r.SyncOps, r.Duration.Seconds()) }

// Config scales the evaluation.
type Config struct {
	// Scale multiplies every workload's default work units.
	Scale float64
	// Workers is the worker-thread count (the paper uses 4).
	Workers int
	// Repetitions per measurement; the minimum duration is kept, which is
	// robust against scheduling noise.
	Reps int
	// Seed for the diversified layouts.
	Seed int64
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

func (c Config) params(b workload.Benchmark) workload.Params {
	p := workload.Params{Workers: c.Workers}
	if c.Scale != 1 {
		// Scale the registry's default units for this benchmark's shape.
		p.Units = int(float64(defaultUnits(b)) * c.Scale)
		if p.Units < 64 {
			p.Units = 64
		}
	}
	return p
}

// defaultUnits mirrors the registry defaults for scaling purposes.
func defaultUnits(b workload.Benchmark) int {
	// The registry's default Units are applied inside the builders; for
	// scaling we only need a consistent base, so probe with a native run
	// is overkill — use a representative constant per shape.
	switch b.Shape {
	case "fine-grained":
		return 60000
	case "task-queue":
		return 30000
	case "data-parallel":
		return 8000
	case "pipeline":
		return 4000
	case "barrier-phased":
		return 8000
	case "reduction":
		return 8000
	default:
		return 8000
	}
}

// Measure runs one benchmark in the given configuration and returns the
// best (minimum-duration) of cfg.Reps runs.
func Measure(b workload.Benchmark, cfg Config, kind agent.Kind, variants int) Run {
	cfg.fill()
	best := Run{Benchmark: b.Name, Agent: kind, Variants: variants}
	for rep := 0; rep < cfg.Reps; rep++ {
		res := core.Run(core.Options{
			Variants:   variants,
			Agent:      kind,
			ASLR:       true,
			Seed:       cfg.Seed + int64(rep),
			MaxThreads: 64,
		}, b.Build(cfg.params(b)))
		r := Run{
			Benchmark: b.Name, Agent: kind, Variants: variants,
			Duration: res.Duration, Syscalls: res.Syscalls,
			SyncOps: res.SyncOps, Stalls: res.Stalls,
			Diverged: res.Divergence != nil,
		}
		if rep == 0 || r.Duration < best.Duration {
			best = r
		}
		if r.Diverged {
			best.Diverged = true
			break
		}
	}
	return best
}

// Slowdown measures a benchmark natively and under the MVEE and returns
// both runs plus the relative slowdown (the Figure 5 quantity).
func Slowdown(b workload.Benchmark, cfg Config, kind agent.Kind, variants int) (native, mvee Run, slowdown float64) {
	native = Measure(b, cfg, agent.None, 1)
	mvee = Measure(b, cfg, kind, variants)
	if native.Duration > 0 {
		slowdown = float64(mvee.Duration) / float64(native.Duration)
	}
	return native, mvee, slowdown
}

// Table2 regenerates Table 2: native run time, syscall rate and sync-op
// rate per benchmark, alongside the paper's reference numbers.
func Table2(cfg Config) (*stats.Table, []Run) {
	cfg.fill()
	tbl := &stats.Table{Header: []string{
		"benchmark", "suite", "run time", "syscalls/s", "sync ops/s",
		"paper run(s)", "paper sys(k/s)", "paper sync(k/s)"}}
	var runs []Run
	for _, b := range workload.All() {
		r := Measure(b, cfg, agent.None, 1)
		runs = append(runs, r)
		tbl.Add(b.Name, b.Suite,
			fmt.Sprintf("%.1fms", r.Duration.Seconds()*1000),
			fmt.Sprintf("%.0f", r.SyscallRate()),
			fmt.Sprintf("%.0f", r.SyncRate()),
			fmt.Sprintf("%.2f", b.PaperRunSec),
			fmt.Sprintf("%.2f", b.PaperSyscallKps),
			fmt.Sprintf("%.2f", b.PaperSyncKps))
	}
	return tbl, runs
}

// Figure5 regenerates the Figure 5 series: per benchmark, the relative
// overhead of each agent at each variant count.
func Figure5(cfg Config, agents []agent.Kind, variantCounts []int) (*stats.Table, map[string]map[agent.Kind]map[int]float64) {
	cfg.fill()
	header := []string{"benchmark"}
	for _, k := range agents {
		for _, n := range variantCounts {
			header = append(header, fmt.Sprintf("%s/%dv", short(k), n))
		}
	}
	tbl := &stats.Table{Header: header}
	series := map[string]map[agent.Kind]map[int]float64{}
	for _, b := range workload.All() {
		native := Measure(b, cfg, agent.None, 1)
		row := []string{b.Name}
		series[b.Name] = map[agent.Kind]map[int]float64{}
		for _, k := range agents {
			series[b.Name][k] = map[int]float64{}
			for _, n := range variantCounts {
				m := Measure(b, cfg, k, n)
				sd := 0.0
				if native.Duration > 0 {
					sd = float64(m.Duration) / float64(native.Duration)
				}
				if m.Diverged {
					sd = -1 // should never happen; surfaced in the table
				}
				series[b.Name][k][n] = sd
				row = append(row, fmt.Sprintf("%.2fx", sd))
			}
		}
		tbl.Add(row...)
	}
	return tbl, series
}

// Table1 regenerates Table 1: the aggregated average slowdown of each
// agent at 2..4 variants, next to the paper's numbers.
func Table1(cfg Config, variantCounts []int) (*stats.Table, map[agent.Kind]map[int]float64) {
	cfg.fill()
	paper := map[agent.Kind]map[int]float64{
		agent.TotalOrder:   {2: 2.76, 3: 2.83, 4: 2.87},
		agent.PartialOrder: {2: 2.83, 3: 2.83, 4: 3.00},
		agent.WallOfClocks: {2: 1.14, 3: 1.27, 4: 1.38},
	}
	agents := []agent.Kind{agent.TotalOrder, agent.PartialOrder, agent.WallOfClocks}
	header := []string{"agent"}
	for _, n := range variantCounts {
		header = append(header, fmt.Sprintf("%d variants", n), fmt.Sprintf("paper %dv", n))
	}
	tbl := &stats.Table{Header: header}
	out := map[agent.Kind]map[int]float64{}

	// Native baselines, measured once.
	natives := map[string]Run{}
	for _, b := range workload.All() {
		natives[b.Name] = Measure(b, cfg, agent.None, 1)
	}
	for _, k := range agents {
		out[k] = map[int]float64{}
		row := []string{short(k)}
		for _, n := range variantCounts {
			var sds []float64
			for _, b := range workload.All() {
				m := Measure(b, cfg, k, n)
				nat := natives[b.Name]
				if nat.Duration > 0 && !m.Diverged {
					sds = append(sds, float64(m.Duration)/float64(nat.Duration))
				}
			}
			avg := stats.Mean(sds)
			out[k][n] = avg
			row = append(row, fmt.Sprintf("%.2fx", avg), fmt.Sprintf("%.2fx", paper[k][n]))
		}
		tbl.Add(row...)
	}
	return tbl, out
}

// Table3 regenerates Table 3: sync ops identified per library corpus.
func Table3(kind analysis.PointsToKind) (*stats.Table, []*analysis.Report) {
	tbl := &stats.Table{Header: []string{
		"unit", "type (i)", "type (ii)", "type (iii)",
		"paper (i)", "paper (ii)", "paper (iii)"}}
	var reps []*analysis.Report
	for _, spec := range analysis.Table3Specs() {
		rep := analysis.Analyze(analysis.Generate(spec), kind)
		reps = append(reps, rep)
		tbl.Add(rep.Unit,
			fmt.Sprintf("%d", rep.CountI),
			fmt.Sprintf("%d", rep.CountII),
			fmt.Sprintf("%d", rep.CountIII),
			fmt.Sprintf("%d", spec.I),
			fmt.Sprintf("%d", spec.II),
			fmt.Sprintf("%d", spec.III))
	}
	return tbl, reps
}

// Nginx measures the §5.5 server: native and MVEE throughput plus the
// overhead, using the loopback load generator (the paper's worst case:
// 48% overhead on loopback). Thread-pool serving mode.
func Nginx(variants, conns, requests int) (native, mveeTput float64, overhead float64) {
	native, mveeTput, overhead, _ = NginxCell(variants, conns, requests, false, true)
	return native, mveeTput, overhead
}

// NginxCell runs one §5.5 throughput cell — thread-pool or evented serving,
// poll-wakeup batching on or off — and additionally returns recsPerReq: the
// monitored syscall records the MVEE's master spent per served response.
// That quotient is the replication bill of one request (accept + recv +
// response transfer + close, plus the amortized poll traffic in evented
// mode); the batching and zero-copy work exists to push it toward the
// native line, and the static-page keep-alive workload must keep it
// below 4.
func NginxCell(variants, conns, requests int, evented, batching bool) (native, mveeTput, overhead, recsPerReq float64) {
	run := func(nv int, kind agent.Kind, port uint16) (float64, float64) {
		cfg := webserver.Config{Port: port, PoolThreads: 8, InstrumentCustomSync: true,
			Evented: evented, NoBatchWakeups: !batching}
		s := core.NewSession(core.Options{
			Variants: nv, Agent: kind, ASLR: true, DCL: true, Seed: 5, MaxThreads: 64,
		}, webserver.Program(cfg))
		done := make(chan *core.Result, 1)
		go func() { done <- s.Run() }()
		// Wait for the listener.
		for {
			if cc, errno := s.Kernel().Connect(port); errno == 0 {
				cc.Write([]byte("GET /"))
				cc.Close()
				break
			}
			time.Sleep(time.Millisecond)
		}
		res := webserver.GenerateLoad(s.Kernel(), port, conns, requests)
		s.Kernel().CloseListener(port)
		r := <-done
		perReq := 0.0
		if res.Responses > 0 {
			perReq = float64(r.Syscalls) / float64(res.Responses)
		}
		return res.Throughput(), perReq
	}
	native, _ = run(1, agent.None, 9090)
	mveeTput, recsPerReq = run(variants, agent.WallOfClocks, 9091)
	if native > 0 {
		overhead = 1 - mveeTput/native
	}
	return native, mveeTput, overhead, recsPerReq
}

func short(k agent.Kind) string {
	switch k {
	case agent.TotalOrder:
		return "TO"
	case agent.PartialOrder:
		return "PO"
	case agent.WallOfClocks:
		return "WoC"
	}
	return k.String()
}
