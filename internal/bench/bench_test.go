package bench

import (
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/analysis"
	"repro/internal/workload"
)

// tiny keeps harness tests fast.
var tiny = Config{Scale: 0.05, Workers: 4, Reps: 1, Seed: 11}

func TestMeasureNative(t *testing.T) {
	b, _ := workload.ByName("blackscholes")
	r := Measure(b, tiny, agent.None, 1)
	if r.Diverged {
		t.Fatal("native run diverged")
	}
	if r.Duration <= 0 {
		t.Fatal("no duration measured")
	}
	if r.Benchmark != "blackscholes" {
		t.Fatalf("benchmark name = %q", r.Benchmark)
	}
}

func TestSlowdownIsPositive(t *testing.T) {
	b, _ := workload.ByName("swaptions")
	native, mvee, sd := Slowdown(b, tiny, agent.WallOfClocks, 2)
	if native.Diverged || mvee.Diverged {
		t.Fatal("diverged")
	}
	if sd <= 0 {
		t.Fatalf("slowdown = %v", sd)
	}
	if mvee.SyncOps == 0 {
		t.Fatal("no sync ops under the MVEE")
	}
}

func TestTable3AgainstPaper(t *testing.T) {
	tbl, reps := Table3(analysis.UseAndersen)
	if len(reps) != 8 {
		t.Fatalf("%d units, want 8", len(reps))
	}
	// Every row must match the paper's counts exactly (the corpora are
	// generated to plant them; the analysis must recover them).
	for i, spec := range analysis.Table3Specs() {
		r := reps[i]
		if r.CountI != spec.I || r.CountII != spec.II || r.CountIII != spec.III {
			t.Errorf("%s: %d/%d/%d, paper %d/%d/%d",
				spec.Name, r.CountI, r.CountII, r.CountIII, spec.I, spec.II, spec.III)
		}
	}
	if !strings.Contains(tbl.String(), "libc-2.19.so") {
		t.Fatal("table missing libc row")
	}
}

func TestRatesComputed(t *testing.T) {
	b, _ := workload.ByName("dedup")
	r := Measure(b, tiny, agent.None, 1)
	if r.SyscallRate() <= 0 || r.SyncRate() <= 0 {
		t.Fatalf("rates = %v, %v", r.SyscallRate(), r.SyncRate())
	}
}

func TestNginxHarness(t *testing.T) {
	native, mvee, overhead := Nginx(2, 2, 5)
	if native <= 0 || mvee <= 0 {
		t.Fatalf("throughputs = %v, %v", native, mvee)
	}
	if overhead >= 1 {
		t.Fatalf("overhead = %v (MVEE produced no throughput)", overhead)
	}
}
