// Package webserver models the paper's realistic use case (§5.5): nginx
// 1.8 with thread pools. The server runs under the MVEE, accepts loopback
// connections from a load generator, and serves a static page. Its
// inter-thread synchronization mixes pthread-style primitives with the
// custom spinlock-style primitives nginx builds from inline assembly —
// which is exactly what made instrumentation necessary in the paper: an
// uninstrumented custom primitive causes divergence once traffic flows.
//
// The package also reproduces the security experiment: a request to a
// vulnerable endpoint (modelling the re-introduced CVE-2013-2028
// exploitation) corrupts a "function pointer" with an attacker-supplied
// code address. Because variants have disjoint code layouts, the corrupted
// pointer is only meaningful in one variant; the divergent response write
// is detected by the monitor before any output leaves the system.
package webserver

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/synclib"
)

// Config shapes the server.
type Config struct {
	Port        uint16
	PoolThreads int // worker threads in the thread pool (nginx used 32)
	// InstrumentCustomSync controls whether the nginx-style custom
	// spinlock is routed through the sync agent. Turning it off
	// reproduces the paper's observation: the server starts fine but
	// diverges once traffic flows.
	InstrumentCustomSync bool
	// Vulnerable enables the CVE-2013-2028-style endpoint.
	Vulnerable bool
	// PageSize is the static page size (the paper serves 4 KiB).
	PageSize int
	// Evented selects the event-driven serving mode: one thread
	// multiplexing every connection through SysPoll (nginx's native event
	// loop) instead of the thread-per-connection pool. All request
	// endpoints behave identically; only the concurrency model changes.
	// Under the MVEE the poll results are replicated from the master, so
	// every variant's event loop takes the same branches — and a variant
	// polling a different fd set is divergence.
	Evented bool
	// Prefork selects the multi-PROCESS serving mode (nginx/Apache
	// prefork): the parent binds the listener, forks Workers child
	// processes that inherit (and accept on) the shared listening
	// descriptor, then sits in a waitpid loop reaping dead workers and
	// re-forking replacements. Worker death — a /quit request, a kill —
	// is an ordinary, survivable event; shutdown (listener closed) makes
	// every worker exit cleanly and the parent drain to ECHILD.
	Prefork bool
	// Workers is the prefork worker-process count (nginx worker_processes).
	Workers int
	// WorkerThreads is the number of accept-loop threads per prefork
	// worker process (1 = the classic single-threaded worker). Forked
	// children are full processes, so each worker grows its own thread
	// pool; connection→thread assignment stays deterministic because it
	// rides the replicated accept stream.
	WorkerThreads int
}

func (c *Config) fill() {
	if c.Port == 0 {
		c.Port = 8080
	}
	if c.PoolThreads <= 0 {
		c.PoolThreads = 8
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.WorkerThreads <= 0 {
		c.WorkerThreads = 1
	}
}

// uninstrumentedSpinLock is the nginx custom primitive WITHOUT agent
// instrumentation: it spins on a plain Go atomic that the agents never see.
// Using it under the MVEE produces scheduling-dependent request handling
// and therefore benign divergence — the §5.5 negative result.
type uninstrumentedSpinLock struct {
	state chan struct{}
}

func newUninstrumentedSpinLock() *uninstrumentedSpinLock {
	l := &uninstrumentedSpinLock{state: make(chan struct{}, 1)}
	l.state <- struct{}{}
	return l
}

func (l *uninstrumentedSpinLock) Lock()   { <-l.state }
func (l *uninstrumentedSpinLock) Unlock() { l.state <- struct{}{} }

// Program builds the server program for the MVEE.
func Program(cfg Config) core.Program {
	cfg.fill()
	name := "nginx-sim"
	switch {
	case cfg.Evented:
		name = "nginx-sim-evented"
	case cfg.Prefork:
		name = "nginx-sim-prefork"
	}
	return core.Program{Name: name, Main: func(t *core.Thread) {
		switch {
		case cfg.Evented:
			runEventedServer(t, cfg)
		case cfg.Prefork:
			runPreforkServer(t, cfg)
		default:
			runServer(t, cfg)
		}
	}}
}

// request is one queued connection.
type request struct {
	fd uint64
}

func runServer(t *core.Thread, cfg Config) {
	page := strings.Repeat("x", cfg.PageSize)
	// The static response is served on every default-path request; build
	// it once instead of concatenating header+page per request in every
	// variant.
	response := []byte("HTTP/1.1 200 OK\r\n\r\n" + page)

	// The "function pointer" the vulnerability overwrites: it holds the
	// variant-local code address of the page handler. Diversity (DCL)
	// places it differently in every variant.
	handlerPtr := t.CodeAddr(64)

	// Shared request counter protected by nginx's *custom* primitive.
	var reqCount uint32
	var customLock interface {
		Lock(*core.Thread)
		Unlock(*core.Thread)
	}
	var rawLock *uninstrumentedSpinLock
	if cfg.InstrumentCustomSync {
		customLock = instrumented{synclib.NewSpinLock(t)}
	} else {
		rawLock = newUninstrumentedSpinLock()
	}
	bumpCount := func(tt *core.Thread) uint32 {
		if cfg.InstrumentCustomSync {
			customLock.Lock(tt)
			reqCount++
			n := reqCount
			customLock.Unlock(tt)
			return n
		}
		rawLock.Lock()
		reqCount++
		n := reqCount
		rawLock.Unlock()
		return n
	}

	// Thread pool fed through an instrumented (pthread-style) queue.
	qmu := synclib.NewMutex(t)
	qcond := synclib.NewCond(t)
	var queue []request
	closed := false

	sfd := t.Syscall(kernel.SysSocket, [6]uint64{}, nil).Val
	t.Syscall(kernel.SysBind, [6]uint64{sfd, uint64(cfg.Port)}, nil)
	lr := t.Syscall(kernel.SysListen, [6]uint64{sfd, uint64(cfg.Port), 128}, nil)
	if !lr.Ok() {
		return
	}

	workers := make([]*core.ThreadHandle, cfg.PoolThreads)
	for w := 0; w < cfg.PoolThreads; w++ {
		workers[w] = t.Spawn(func(tt *core.Thread) {
			for {
				qmu.Lock(tt)
				for len(queue) == 0 && !closed {
					qcond.Wait(tt, qmu)
				}
				if len(queue) == 0 && closed {
					qmu.Unlock(tt)
					return
				}
				req := queue[0]
				queue = queue[1:]
				qmu.Unlock(tt)
				handle(tt, cfg, req, response, handlerPtr, bumpCount)
			}
		})
	}

	// Accept loop: runs until the listener is closed by the client side
	// (accept returns an error).
	for {
		acc := t.Syscall(kernel.SysAccept, [6]uint64{sfd}, nil)
		if !acc.Ok() {
			break
		}
		qmu.Lock(t)
		queue = append(queue, request{fd: acc.Val})
		qcond.Signal(t)
		qmu.Unlock(t)
	}
	qmu.Lock(t)
	closed = true
	qcond.Broadcast(t)
	qmu.Unlock(t)
	for _, w := range workers {
		w.Join()
	}
}

type instrumented struct{ l *synclib.SpinLock }

func (i instrumented) Lock(t *core.Thread)   { i.l.Lock(t) }
func (i instrumented) Unlock(t *core.Thread) { i.l.Unlock(t) }

// handle serves one connection: reads the request line, dispatches.
func handle(t *core.Thread, cfg Config, req request, response []byte, handlerPtr uint64,
	bump func(*core.Thread) uint32) {
	r := t.Syscall(kernel.SysRecv, [6]uint64{req.fd, 4096}, nil)
	if !r.Ok() || r.Val == 0 {
		t.Syscall(kernel.SysClose, [6]uint64{req.fd}, nil)
		return
	}
	line := string(r.Data)
	// nginx touches its shared counters at several points while handling
	// one request; model that with repeated bumps. Under the
	// uninstrumented custom lock, the interleaving of these bumps across
	// worker threads is scheduler-dependent and differs between variants.
	n := bump(t)
	for i := 0; i < 8; i++ {
		t.Yield()
		n = bump(t)
	}
	respond(t, cfg, req.fd, line, response, handlerPtr, n)
	t.Syscall(kernel.SysClose, [6]uint64{req.fd}, nil)
}

// sendAll writes the whole payload, resuming after EINTR and after the
// POSIX short counts an interrupted pipe write can return — without the
// loop, a signal landing while the send is parked on a full buffer would
// silently truncate the response (the callers never inspect Ret.Val).
func sendAll(t *core.Thread, fd uint64, p []byte) {
	for len(p) > 0 {
		r := t.Syscall(kernel.SysSend, [6]uint64{fd}, p)
		if r.Err == kernel.EINTR {
			continue
		}
		if !r.Ok() || r.Val == 0 {
			return // broken connection; nothing more to send
		}
		p = p[r.Val:]
	}
}

// respond dispatches one parsed request line and sends the response. It is
// shared by the thread-pool, evented, and prefork serving modes.
func respond(t *core.Thread, cfg Config, fd uint64, line string, response []byte,
	handlerPtr uint64, count uint32) {
	switch {
	case cfg.Vulnerable && strings.HasPrefix(line, "POST /upload"):
		// CVE-2013-2028 model: a chunked-transfer stack overflow lets
		// the attacker overwrite a return address / function pointer
		// with a gadget address they computed for ONE concrete layout.
		// We model the overwrite by replacing handlerPtr with the
		// attacker-supplied value and "calling" it: the response leaks
		// whether the gadget matched this variant's layout.
		var gadget uint64
		fmt.Sscanf(line[len("POST /upload "):], "%x", &gadget)
		hijacked := gadget // overwritten pointer
		// The "indirect call": executing the gadget succeeds only in
		// the variant whose code layout the attacker targeted. The
		// response encodes the outcome, so variants answer differently
		// — which the monitor catches at the send.
		var body string
		if hijacked == handlerPtr {
			body = fmt.Sprintf("PWNED leaked-code-ptr=%#x", handlerPtr)
		} else {
			body = "500 internal error"
		}
		t.Syscall(kernel.SysSend, [6]uint64{fd}, []byte(body))
	case strings.HasPrefix(line, "GET /count"):
		// The request count depends on cross-thread ordering: with the
		// custom lock uninstrumented, counts drift across variants and
		// this response diverges. (The evented mode has a single thread,
		// so its count is deterministic by construction.)
		sendAll(t, fd, []byte(fmt.Sprintf("count=%d", count)))
	default:
		sendAll(t, fd, response)
	}
}

// runEventedServer is the event-driven serving mode: one thread
// multiplexes the listener and every open connection through SysPoll,
// the way nginx's native event loop does — where the thread-pool mode
// above burns one vthread per in-flight connection, this one serves N
// connections with exactly one.
//
// Under the MVEE this exercises the poll replication path end to end:
// the master's poll parks on the kernel's poll wait set (allocation-free)
// until traffic arrives, its revents array is replicated to the slaves,
// and every variant's loop takes identical branches because the accept
// results (and therefore the polled fd sets) are replicated too.
func runEventedServer(t *core.Thread, cfg Config) {
	page := strings.Repeat("x", cfg.PageSize)
	response := []byte("HTTP/1.1 200 OK\r\n\r\n" + page)
	handlerPtr := t.CodeAddr(64)

	sfd := t.Syscall(kernel.SysSocket, [6]uint64{}, nil).Val
	t.Syscall(kernel.SysBind, [6]uint64{sfd, uint64(cfg.Port)}, nil)
	if lr := t.Syscall(kernel.SysListen, [6]uint64{sfd, uint64(cfg.Port), 128}, nil); !lr.Ok() {
		return
	}

	// Single-threaded state: no locks needed, and the /count responses are
	// deterministic across variants by construction.
	var reqCount uint32
	conns := make([]uint64, 0, 64)
	var pollBuf []byte
	probeBuf := make([]byte, kernel.PollFDSize)

serve:
	for {
		// Entry 0 is the listener; entries 1..n are the open connections.
		// The buffer is reused across iterations (grown amortized), so the
		// steady-state loop allocates only what the kernel returns.
		n := 1 + len(conns)
		need := n * kernel.PollFDSize
		if cap(pollBuf) < need {
			pollBuf = make([]byte, need, need*2)
		}
		pollBuf = pollBuf[:need]
		kernel.EncodePollFD(pollBuf, 0, int(sfd), kernel.PollIn)
		for i, fd := range conns {
			kernel.EncodePollFD(pollBuf, 1+i, int(fd), kernel.PollIn)
		}
		r := t.Syscall(kernel.SysPoll, [6]uint64{uint64(n), kernel.PollNoTimeout}, pollBuf)
		if !r.Ok() {
			break
		}
		// Serve ready connections first (back to front, so the
		// remove-by-swap keeps untouched indices stable), then accept.
		for i := len(conns) - 1; i >= 0; i-- {
			if kernel.DecodeRevents(r.Data, 1+i) == 0 {
				continue
			}
			fd := conns[i]
			conns[i] = conns[len(conns)-1]
			conns = conns[:len(conns)-1]
			serveEvented(t, cfg, fd, response, handlerPtr, &reqCount)
		}
		lev := kernel.DecodeRevents(r.Data, 0)
		if lev&(kernel.PollHup|kernel.PollErr|kernel.PollNval) != 0 {
			break // listener closed: drain is done, shut down
		}
		// Drain the whole connect burst while the backlog is known ready:
		// accept blocks on an empty backlog, so each further accept is
		// gated on a zero-timeout single-entry probe of the listener — far
		// cheaper than paying a full fd-set poll round per connection.
		for lev&kernel.PollIn != 0 {
			acc := t.Syscall(kernel.SysAccept, [6]uint64{sfd}, nil)
			if !acc.Ok() {
				break serve
			}
			conns = append(conns, acc.Val)
			kernel.EncodePollFD(probeBuf, 0, int(sfd), kernel.PollIn)
			pr := t.Syscall(kernel.SysPoll, [6]uint64{1, 0}, probeBuf)
			if !pr.Ok() {
				break serve
			}
			lev = kernel.DecodeRevents(pr.Data, 0)
		}
	}
	for _, fd := range conns {
		t.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
	}
}

// serveEvented handles one ready connection: poll guaranteed the recv
// will not block (data or EOF), so the event thread never stalls on a
// slow client.
func serveEvented(t *core.Thread, cfg Config, fd uint64, response []byte,
	handlerPtr uint64, reqCount *uint32) {
	r := t.Syscall(kernel.SysRecv, [6]uint64{fd, 4096}, nil)
	if !r.Ok() || r.Val == 0 {
		t.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
		return
	}
	*reqCount++
	respond(t, cfg, fd, string(r.Data), response, handlerPtr, *reqCount)
	t.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
}
