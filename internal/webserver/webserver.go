// Package webserver models the paper's realistic use case (§5.5): nginx
// 1.8 with thread pools. The server runs under the MVEE, accepts loopback
// connections from a load generator, and serves a static page. Its
// inter-thread synchronization mixes pthread-style primitives with the
// custom spinlock-style primitives nginx builds from inline assembly —
// which is exactly what made instrumentation necessary in the paper: an
// uninstrumented custom primitive causes divergence once traffic flows.
//
// The package also reproduces the security experiment: a request to a
// vulnerable endpoint (modelling the re-introduced CVE-2013-2028
// exploitation) corrupts a "function pointer" with an attacker-supplied
// code address. Because variants have disjoint code layouts, the corrupted
// pointer is only meaningful in one variant; the divergent response write
// is detected by the monitor before any output leaves the system.
//
// The serving path mirrors nginx's I/O strategy: the static page is
// materialized as a FILE and served with zero-copy sendfile; multi-piece
// responses gather their segments with one writev; and every mode recvs
// into a reusable scratch buffer instead of allocating per request. The
// evented mode additionally batches all of a poll wakeup's ready
// connections into one replicated multi-record (core.Thread.SyscallBatch),
// so a wakeup with K ready clients costs one cross-core handoff, not K.
package webserver

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/synclib"
)

// Config shapes the server.
type Config struct {
	Port        uint16
	PoolThreads int // worker threads in the thread pool (nginx used 32)
	// InstrumentCustomSync controls whether the nginx-style custom
	// spinlock is routed through the sync agent. Turning it off
	// reproduces the paper's observation: the server starts fine but
	// diverges once traffic flows.
	InstrumentCustomSync bool
	// Vulnerable enables the CVE-2013-2028-style endpoint.
	Vulnerable bool
	// PageSize is the static page size (the paper serves 4 KiB).
	PageSize int
	// Evented selects the event-driven serving mode: one thread
	// multiplexing every connection through SysPoll (nginx's native event
	// loop) instead of the thread-per-connection pool. All request
	// endpoints behave identically; only the concurrency model changes.
	// Under the MVEE the poll results are replicated from the master, so
	// every variant's event loop takes the same branches — and a variant
	// polling a different fd set is divergence.
	Evented bool
	// NoBatchWakeups disables the evented mode's poll-wakeup batching:
	// each ready connection's recv is then replicated as its own record,
	// one cross-core handoff apiece, the way every call was delivered
	// before batching existed. The zero value — batching ON — is the
	// intended configuration; the switch is the A-B lever for
	// scripts/bench.sh and the batching equivalence tests.
	NoBatchWakeups bool
	// Prefork selects the multi-PROCESS serving mode (nginx/Apache
	// prefork): the parent binds the listener, forks Workers child
	// processes that inherit (and accept on) the shared listening
	// descriptor, then sits in a waitpid loop reaping dead workers and
	// re-forking replacements. Worker death — a /quit request, a kill —
	// is an ordinary, survivable event; shutdown (listener closed) makes
	// every worker exit cleanly and the parent drain to ECHILD.
	Prefork bool
	// Workers is the prefork worker-process count (nginx worker_processes).
	Workers int
	// WorkerThreads is the number of accept-loop threads per prefork
	// worker process (1 = the classic single-threaded worker). Forked
	// children are full processes, so each worker grows its own thread
	// pool; connection→thread assignment stays deterministic because it
	// rides the replicated accept stream.
	WorkerThreads int
}

func (c *Config) fill() {
	if c.Port == 0 {
		c.Port = 8080
	}
	if c.PoolThreads <= 0 {
		c.PoolThreads = 8
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.WorkerThreads <= 0 {
		c.WorkerThreads = 1
	}
}

// recvBufSize is the per-connection request scratch buffer: requests are
// one short line, so 4 KiB covers them with the same headroom nginx's
// default client_header_buffer uses.
const recvBufSize = 4096

// responseHeader prefixes every static-page response.
const responseHeader = "HTTP/1.1 200 OK\r\n\r\n"

// uninstrumentedSpinLock is the nginx custom primitive WITHOUT agent
// instrumentation: it spins on a plain Go atomic that the agents never see.
// Using it under the MVEE produces scheduling-dependent request handling
// and therefore benign divergence — the §5.5 negative result.
type uninstrumentedSpinLock struct {
	state chan struct{}
}

func newUninstrumentedSpinLock() *uninstrumentedSpinLock {
	l := &uninstrumentedSpinLock{state: make(chan struct{}, 1)}
	l.state <- struct{}{}
	return l
}

func (l *uninstrumentedSpinLock) Lock()   { <-l.state }
func (l *uninstrumentedSpinLock) Unlock() { l.state <- struct{}{} }

// Program builds the server program for the MVEE.
func Program(cfg Config) core.Program {
	cfg.fill()
	name := "nginx-sim"
	switch {
	case cfg.Evented:
		name = "nginx-sim-evented"
	case cfg.Prefork:
		name = "nginx-sim-prefork"
	}
	return core.Program{Name: name, Main: func(t *core.Thread) {
		switch {
		case cfg.Evented:
			runEventedServer(t, cfg)
		case cfg.Prefork:
			runPreforkServer(t, cfg)
		default:
			runServer(t, cfg)
		}
	}}
}

// pageSrv is the serving context every mode shares: the prebuilt response,
// its iovec encoding (header and page kept as separate gather segments for
// the vectored fallback), and the response FILE the zero-copy default path
// serves from. Built once per process, before traffic flows.
type pageSrv struct {
	cfg Config
	// handlerPtr is the "function pointer" the vulnerability overwrites:
	// it holds the variant-local code address of the page handler.
	// Diversity (DCL) places it differently in every variant.
	handlerPtr uint64
	response   []byte // header + page: the full default-path response
	iov        []byte // EncodeIovec(header, page): the writev fallback wire
	iovcnt     uint64
	pageFD     uint64 // read-only fd over the full response; 0 = unavailable
}

// newPageSrv builds the serving context. Every syscall it makes is
// replicated and sits before the accept loop in program order, so all
// variants agree on the resulting descriptor.
func newPageSrv(t *core.Thread, cfg Config) *pageSrv {
	header := []byte(responseHeader)
	page := []byte(strings.Repeat("x", cfg.PageSize))
	srv := &pageSrv{
		cfg:        cfg,
		handlerPtr: t.CodeAddr(64),
		response:   append(append(make([]byte, 0, len(header)+len(page)), header...), page...),
		iov:        kernel.EncodeIovec(nil, header, page),
		iovcnt:     2,
	}
	srv.pageFD = setupPageFile(t, cfg.Port, srv.response)
	return srv
}

// setupPageFile materializes the response as a regular file and reopens it
// read-only, giving respond's default path a source descriptor for
// zero-copy sendfile — the nginx `sendfile on` configuration. Returns 0
// (never a valid descriptor here) when any step fails; respond then falls
// back to writev/send and the server keeps serving.
func setupPageFile(t *core.Thread, port uint16, response []byte) uint64 {
	name := []byte(fmt.Sprintf("/srv/response-%d", port))
	w := t.Syscall(kernel.SysOpen,
		[6]uint64{kernel.OCreat | kernel.OWronly | kernel.OTrunc}, name)
	if !w.Ok() {
		return 0
	}
	wr := t.Syscall(kernel.SysWrite, [6]uint64{w.Val}, response)
	t.Syscall(kernel.SysClose, [6]uint64{w.Val}, nil)
	if !wr.Ok() || wr.Val != uint64(len(response)) {
		return 0
	}
	r := t.Syscall(kernel.SysOpen, [6]uint64{kernel.ORdonly}, name)
	if !r.Ok() {
		return 0
	}
	return r.Val
}

// request is one queued connection.
type request struct {
	fd uint64
}

func runServer(t *core.Thread, cfg Config) {
	srv := newPageSrv(t, cfg)

	// Shared request counter protected by nginx's *custom* primitive.
	var reqCount uint32
	var customLock interface {
		Lock(*core.Thread)
		Unlock(*core.Thread)
	}
	var rawLock *uninstrumentedSpinLock
	if cfg.InstrumentCustomSync {
		customLock = instrumented{synclib.NewSpinLock(t)}
	} else {
		rawLock = newUninstrumentedSpinLock()
	}
	bumpCount := func(tt *core.Thread) uint32 {
		if cfg.InstrumentCustomSync {
			customLock.Lock(tt)
			reqCount++
			n := reqCount
			customLock.Unlock(tt)
			return n
		}
		rawLock.Lock()
		reqCount++
		n := reqCount
		rawLock.Unlock()
		return n
	}

	// Thread pool fed through an instrumented (pthread-style) queue.
	qmu := synclib.NewMutex(t)
	qcond := synclib.NewCond(t)
	var queue []request
	closed := false

	sfd := t.Syscall(kernel.SysSocket, [6]uint64{}, nil).Val
	t.Syscall(kernel.SysBind, [6]uint64{sfd, uint64(cfg.Port)}, nil)
	lr := t.Syscall(kernel.SysListen, [6]uint64{sfd, uint64(cfg.Port), 128}, nil)
	if !lr.Ok() {
		return
	}

	workers := make([]*core.ThreadHandle, cfg.PoolThreads)
	for w := 0; w < cfg.PoolThreads; w++ {
		workers[w] = t.Spawn(func(tt *core.Thread) {
			// One request scratch buffer for this worker's lifetime: every
			// recv lands in it (core.Thread.SyscallInto), so the serving
			// path stops paying an exact-sized allocation per request.
			buf := make([]byte, recvBufSize)
			for {
				qmu.Lock(tt)
				for len(queue) == 0 && !closed {
					qcond.Wait(tt, qmu)
				}
				if len(queue) == 0 && closed {
					qmu.Unlock(tt)
					return
				}
				req := queue[0]
				queue = queue[1:]
				qmu.Unlock(tt)
				handle(tt, srv, req, buf, bumpCount)
			}
		})
	}

	// Accept loop: runs until the listener is closed by the client side
	// (accept returns an error).
	for {
		acc := t.Syscall(kernel.SysAccept, [6]uint64{sfd}, nil)
		if !acc.Ok() {
			break
		}
		qmu.Lock(t)
		queue = append(queue, request{fd: acc.Val})
		qcond.Signal(t)
		qmu.Unlock(t)
	}
	qmu.Lock(t)
	closed = true
	qcond.Broadcast(t)
	qmu.Unlock(t)
	for _, w := range workers {
		w.Join()
	}
}

type instrumented struct{ l *synclib.SpinLock }

func (i instrumented) Lock(t *core.Thread)   { i.l.Lock(t) }
func (i instrumented) Unlock(t *core.Thread) { i.l.Unlock(t) }

// handle serves one connection: reads the request line into the worker's
// scratch buffer, dispatches.
func handle(t *core.Thread, srv *pageSrv, req request, buf []byte,
	bump func(*core.Thread) uint32) {
	r := t.SyscallInto(kernel.SysRecv, [6]uint64{req.fd, recvBufSize}, buf)
	if !r.Ok() || r.Val == 0 {
		t.Syscall(kernel.SysClose, [6]uint64{req.fd}, nil)
		return
	}
	line := r.Data // aliases buf; consumed before the next recv reuses it
	// nginx touches its shared counters at several points while handling
	// one request; model that with repeated bumps. Under the
	// uninstrumented custom lock, the interleaving of these bumps across
	// worker threads is scheduler-dependent and differs between variants.
	n := bump(t)
	for i := 0; i < 8; i++ {
		t.Yield()
		n = bump(t)
	}
	respond(t, srv, req.fd, line, n)
	t.Syscall(kernel.SysClose, [6]uint64{req.fd}, nil)
}

// sendAll writes the whole payload, resuming after EINTR and after the
// POSIX short counts an interrupted pipe write can return — without the
// loop, a signal landing while the send is parked on a full buffer would
// silently truncate the response (the callers never inspect Ret.Val).
func sendAll(t *core.Thread, fd uint64, p []byte) {
	for len(p) > 0 {
		r := t.Syscall(kernel.SysSend, [6]uint64{fd}, p)
		if r.Err == kernel.EINTR {
			continue
		}
		if !r.Ok() || r.Val == 0 {
			return // broken connection; nothing more to send
		}
		p = p[r.Val:]
	}
}

// sendVec issues ONE vectored write of the pre-encoded iovec; flat is the
// same bytes in linear form, used to resume the rare short count (a signal
// landing while the send was parked) with plain sends. Reports whether the
// vectored call was accepted at all — EINVAL means writev is unavailable
// for this destination and the caller falls back wholesale.
func sendVec(t *core.Thread, fd uint64, iov []byte, iovcnt uint64, flat []byte) bool {
	for {
		r := t.Syscall(kernel.SysWritev, [6]uint64{fd, iovcnt}, iov)
		if r.Err == kernel.EINTR {
			continue
		}
		if r.Err == kernel.EINVAL {
			return false
		}
		if !r.Ok() || r.Val == 0 {
			return true // broken connection; nothing more to send
		}
		if int(r.Val) < len(flat) {
			sendAll(t, fd, flat[r.Val:])
		}
		return true
	}
}

// sendFile streams total bytes of the response file to the socket with
// zero-copy sendfile, resuming short transfers at EXPLICIT offsets — never
// the shared file offset, because prefork workers inherit ONE open
// description of the page file across fork and must not serialize on its
// cursor. Reports false when sendfile is unavailable for this descriptor
// pair (EINVAL with no progress) so the caller can fall back; broken
// connections report true (there is nothing left to send).
func sendFile(t *core.Thread, fd, src uint64, total int) bool {
	sent := uint64(0)
	for sent < uint64(total) {
		r := t.Syscall(kernel.SysSendfile,
			[6]uint64{fd, src, sent, uint64(total) - sent}, nil)
		if r.Err == kernel.EINTR {
			continue
		}
		if r.Err == kernel.EINVAL && sent == 0 {
			return false
		}
		if !r.Ok() || r.Val == 0 {
			return true // broken connection
		}
		sent += r.Val
	}
	return true
}

// respond dispatches one parsed request line and sends the response. It is
// shared by the thread-pool, evented, and prefork serving modes. The
// default (static page) path is zero-copy: one sendfile from the response
// file straight to the socket. /count gathers its two pieces — the static
// label and the formatted counter — with one writev. Each path degrades to
// the next (writev, then plain sends) if its syscall is unavailable.
func respond(t *core.Thread, srv *pageSrv, fd uint64, line []byte, count uint32) {
	switch {
	case srv.cfg.Vulnerable && bytes.HasPrefix(line, []byte("POST /upload")):
		// CVE-2013-2028 model: a chunked-transfer stack overflow lets
		// the attacker overwrite a return address / function pointer
		// with a gadget address they computed for ONE concrete layout.
		// We model the overwrite by replacing handlerPtr with the
		// attacker-supplied value and "calling" it: the response leaks
		// whether the gadget matched this variant's layout.
		var gadget uint64
		fmt.Sscanf(string(line[len("POST /upload "):]), "%x", &gadget)
		hijacked := gadget // overwritten pointer
		// The "indirect call": executing the gadget succeeds only in
		// the variant whose code layout the attacker targeted. The
		// response encodes the outcome, so variants answer differently
		// — which the monitor catches at the send.
		var body string
		if hijacked == srv.handlerPtr {
			body = fmt.Sprintf("PWNED leaked-code-ptr=%#x", srv.handlerPtr)
		} else {
			body = "500 internal error"
		}
		t.Syscall(kernel.SysSend, [6]uint64{fd}, []byte(body))
	case bytes.HasPrefix(line, []byte("GET /count")):
		// The request count depends on cross-thread ordering: with the
		// custom lock uninstrumented, counts drift across variants and
		// this response diverges. (The evented mode has a single thread,
		// so its count is deterministic by construction.) The two pieces
		// go out as one gathered writev — its payload is compared like
		// any write, so drifted counts still trip the monitor.
		flat := []byte(fmt.Sprintf("count=%d", count))
		label := len("count=")
		if !sendVec(t, fd, kernel.EncodeIovec(nil, flat[:label], flat[label:]), 2, flat) {
			sendAll(t, fd, flat)
		}
	default:
		if srv.pageFD != 0 && sendFile(t, fd, srv.pageFD, len(srv.response)) {
			return
		}
		if len(srv.iov) > 0 && sendVec(t, fd, srv.iov, srv.iovcnt, srv.response) {
			return
		}
		sendAll(t, fd, srv.response)
	}
}

// connState is one open evented-mode connection: its descriptor and its
// request scratch buffer. Buffers are pooled across connections, so the
// steady-state accept→serve→close cycle allocates nothing.
type connState struct {
	fd  uint64
	buf []byte
}

// runEventedServer is the event-driven serving mode: one thread
// multiplexes the listener and every open connection through SysPoll,
// the way nginx's native event loop does — where the thread-pool mode
// above burns one vthread per in-flight connection, this one serves N
// connections with exactly one. Connections are keep-alive: the CLIENT
// ends one by closing, which arrives here as a recv EOF.
//
// Under the MVEE this exercises the poll replication path end to end:
// the master's poll parks on the kernel's poll wait set (allocation-free)
// until traffic arrives, its revents array is replicated to the slaves,
// and every variant's loop takes identical branches because the accept
// results (and therefore the polled fd sets) are replicated too. With
// batching on (the default), all of a wakeup's ready recvs travel as one
// replicated multi-record — one ring reservation and one cross-core
// handoff per WAKEUP instead of per connection.
func runEventedServer(t *core.Thread, cfg Config) {
	srv := newPageSrv(t, cfg)

	sfd := t.Syscall(kernel.SysSocket, [6]uint64{}, nil).Val
	t.Syscall(kernel.SysBind, [6]uint64{sfd, uint64(cfg.Port)}, nil)
	if lr := t.Syscall(kernel.SysListen, [6]uint64{sfd, uint64(cfg.Port), 128}, nil); !lr.Ok() {
		return
	}

	// Single-threaded state: no locks needed, and the /count responses are
	// deterministic across variants by construction.
	var reqCount uint32
	conns := make([]connState, 0, 64)
	var spare [][]byte // recycled request buffers of closed connections
	var pollBuf []byte
	var ready []int
	var calls []kernel.Call
	var rets []kernel.Ret
	probeBuf := make([]byte, kernel.PollFDSize)
	batch := !cfg.NoBatchWakeups

	takeBuf := func() []byte {
		if n := len(spare); n > 0 {
			b := spare[n-1]
			spare = spare[:n-1]
			return b
		}
		return make([]byte, recvBufSize)
	}
	// drop closes connection i and recycles its slot. Callers walk ready
	// indices in DESCENDING order, so the remove-by-swap never moves an
	// index a later iteration still needs.
	drop := func(i int) {
		t.Syscall(kernel.SysClose, [6]uint64{conns[i].fd}, nil)
		spare = append(spare, conns[i].buf)
		conns[i] = conns[len(conns)-1]
		conns = conns[:len(conns)-1]
	}

serve:
	for {
		// Entry 0 is the listener; entries 1..n are the open connections.
		// The buffer is reused across iterations (grown amortized), so the
		// steady-state loop allocates only what the kernel returns.
		n := 1 + len(conns)
		need := n * kernel.PollFDSize
		if cap(pollBuf) < need {
			pollBuf = make([]byte, need, need*2)
		}
		pollBuf = pollBuf[:need]
		kernel.EncodePollFD(pollBuf, 0, int(sfd), kernel.PollIn)
		for i, c := range conns {
			kernel.EncodePollFD(pollBuf, 1+i, int(c.fd), kernel.PollIn)
		}
		r := t.Syscall(kernel.SysPoll, [6]uint64{uint64(n), kernel.PollNoTimeout}, pollBuf)
		if !r.Ok() {
			break
		}
		// Collect the wakeup's ready connections back to front (so the
		// remove-by-swap in drop keeps untouched indices stable), then
		// serve them — batched into one replicated multi-record when more
		// than one is ready — and only then accept.
		ready = ready[:0]
		for i := len(conns) - 1; i >= 0; i-- {
			if kernel.DecodeRevents(r.Data, 1+i) != 0 {
				ready = append(ready, i)
			}
		}
		if batch && len(ready) > 1 {
			if cap(calls) < len(ready) {
				calls = make([]kernel.Call, len(ready))
				rets = make([]kernel.Ret, len(ready))
			}
			calls, rets = calls[:len(ready)], rets[:len(ready)]
			for j, i := range ready {
				calls[j] = kernel.Call{
					Nr:   kernel.SysRecv,
					Args: [6]uint64{conns[i].fd, recvBufSize},
					Buf:  conns[i].buf,
				}
			}
			t.SyscallBatch(calls, rets)
			for j, i := range ready {
				if !serveReady(t, srv, conns[i].fd, rets[j], &reqCount) {
					drop(i)
				}
			}
		} else {
			for _, i := range ready {
				rr := t.SyscallInto(kernel.SysRecv,
					[6]uint64{conns[i].fd, recvBufSize}, conns[i].buf)
				if !serveReady(t, srv, conns[i].fd, rr, &reqCount) {
					drop(i)
				}
			}
		}
		lev := kernel.DecodeRevents(r.Data, 0)
		if lev&(kernel.PollHup|kernel.PollErr|kernel.PollNval) != 0 {
			break // listener closed: drain is done, shut down
		}
		// Drain the whole connect burst while the backlog is known ready:
		// accept blocks on an empty backlog, so each further accept is
		// gated on a zero-timeout single-entry probe of the listener — far
		// cheaper than paying a full fd-set poll round per connection.
		for lev&kernel.PollIn != 0 {
			acc := t.Syscall(kernel.SysAccept, [6]uint64{sfd}, nil)
			if !acc.Ok() {
				break serve
			}
			conns = append(conns, connState{fd: acc.Val, buf: takeBuf()})
			kernel.EncodePollFD(probeBuf, 0, int(sfd), kernel.PollIn)
			pr := t.Syscall(kernel.SysPoll, [6]uint64{1, 0}, probeBuf)
			if !pr.Ok() {
				break serve
			}
			lev = kernel.DecodeRevents(pr.Data, 0)
		}
	}
	for _, c := range conns {
		t.Syscall(kernel.SysClose, [6]uint64{c.fd}, nil)
	}
}

// serveReady consumes one poll-ready connection's recv result: poll
// guaranteed the recv could not block (data or EOF), so the event thread
// never stalls on a slow client. EOF or an error means the peer is done
// with this keep-alive connection — the caller closes and recycles the
// slot; otherwise the request is served and the connection stays polled.
func serveReady(t *core.Thread, srv *pageSrv, fd uint64, r kernel.Ret, reqCount *uint32) bool {
	if !r.Ok() || r.Val == 0 {
		return false
	}
	*reqCount++
	respond(t, srv, fd, r.Data, *reqCount)
	return true
}
