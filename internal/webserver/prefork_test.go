package webserver

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/kernel"
	"repro/internal/variant"
)

// The prefork mode must pass the same serving/divergence/leak suite the
// thread-pool and evented modes do: the change is the concurrency model
// (worker PROCESSES sharing the listener via forked descriptor tables,
// reaped and re-forked by the parent's waitpid loop).

func preforkCfg(port uint16) Config {
	return Config{Port: port, PageSize: 4096, Prefork: true, Workers: 3, InstrumentCustomSync: true}
}

func TestPreforkServesStaticPageUnderMVEE(t *testing.T) {
	cfg := preforkCfg(8200)
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	res := GenerateLoad(s.Kernel(), cfg.Port, 4, 25)
	if res.Errors > 0 || res.Responses != res.Requests {
		t.Fatalf("load: %+v", res)
	}
	if res.Bytes < res.Responses*4096 {
		t.Fatalf("short responses: %d bytes over %d responses", res.Bytes, res.Responses)
	}
	final := shutdown()
	if final.Divergence != nil {
		t.Fatalf("prefork server diverged under benign load: %v", final.Divergence)
	}
}

func TestPreforkCountEndpointIsConsistent(t *testing.T) {
	// Worker-local counters: which worker serves which connection is part
	// of the replicated accept stream, so /count responses are identical
	// across variants with no locks at all.
	cfg := preforkCfg(8201)
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	for round := 0; round < 25; round++ {
		if _, err := CountProbe(s.Kernel(), cfg.Port); err != nil {
			t.Fatalf("count probe %d: %v", round, err)
		}
	}
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("prefork /count diverged: %v", res.Divergence)
	}
}

func TestPreforkAttackDetectedWithTwoVariants(t *testing.T) {
	// The §5.5 security result holds in worker processes: the divergent
	// send is caught before the leak escapes, and the fact that the
	// vulnerable handler runs in a forked child changes nothing — the
	// child's syscalls are monitored exactly like the root's.
	for _, target := range []int{0, 1} {
		cfg := preforkCfg(uint16(8202 + target))
		cfg.Vulnerable = true
		s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
		resp, err := Attack(s.Kernel(), cfg.Port, attackGadget(target, 77))
		if err == nil && strings.Contains(resp, "PWNED") {
			t.Fatalf("target=%d: leak escaped the MVEE: %q", target, resp)
		}
		res := shutdown()
		if res.Divergence == nil {
			t.Fatalf("target=%d: attack not detected", target)
		}
		if res.Divergence.Reason != "payload mismatch" {
			t.Fatalf("target=%d: unexpected reason %q", target, res.Divergence.Reason)
		}
	}
}

func TestPreforkBenignTrafficWithVulnerableEndpointDoesNotDiverge(t *testing.T) {
	cfg := preforkCfg(8210)
	cfg.Vulnerable = true
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	res := GenerateLoad(s.Kernel(), cfg.Port, 4, 20)
	if res.Errors > 0 {
		t.Fatalf("benign load errored: %+v", res)
	}
	final := shutdown()
	if final.Divergence != nil {
		t.Fatalf("false positive: %v", final.Divergence)
	}
}

// probe sends one request and returns the response body.
func probe(k *kernel.Kernel, port uint16, req string) (string, error) {
	cc, errno := k.Connect(port)
	if errno != kernel.OK {
		return "", errno
	}
	defer cc.Close()
	if _, err := cc.Write([]byte(req)); err != nil {
		return "", err
	}
	buf := make([]byte, 8192)
	n, err := cc.Read(buf)
	if err != nil {
		return "", err
	}
	return string(buf[:n]), nil
}

func TestPreforkWorkerReapAndRefork(t *testing.T) {
	// Worker death is survivable: /quit makes the serving worker exit
	// (status 1), the parent's waitpid reaps it and forks a replacement,
	// and the pool keeps serving — with zero divergence, because the
	// whole reap/re-fork cycle is replicated kernel state.
	cfg := preforkCfg(8211)
	cfg.Workers = 2
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	for round := 0; round < 3; round++ {
		if resp, err := probe(s.Kernel(), cfg.Port, "GET /quit"); err != nil || resp != "bye" {
			t.Fatalf("round %d: /quit: %q %v", round, resp, err)
		}
		// The replacement (and the surviving sibling) keep serving.
		for i := 0; i < 6; i++ {
			resp, err := probe(s.Kernel(), cfg.Port, "GET /")
			if err != nil || !strings.Contains(resp, "200 OK") {
				t.Fatalf("round %d, request %d after refork: %q %v", round, i, resp, err)
			}
		}
	}
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("reap/refork diverged: %v", res.Divergence)
	}
}

func TestPreforkKilledWorkerIsReforked(t *testing.T) {
	// The signal path of worker death: /killme SIGTERMs the serving
	// worker; the unhandled terminating signal is delivered at the kill's
	// own syscall boundary, the process exits 128+SIGTERM, the parent
	// reaps and re-forks. Every variant replays the same delivery point.
	cfg := preforkCfg(8212)
	cfg.Workers = 2
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	for round := 0; round < 3; round++ {
		if resp, err := probe(s.Kernel(), cfg.Port, "GET /killme"); err != nil || resp != "bye" {
			t.Fatalf("round %d: /killme: %q %v", round, resp, err)
		}
		for i := 0; i < 6; i++ {
			resp, err := probe(s.Kernel(), cfg.Port, "GET /")
			if err != nil || !strings.Contains(resp, "200 OK") {
				t.Fatalf("round %d, request %d after kill: %q %v", round, i, resp, err)
			}
		}
	}
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("kill/refork diverged: %v", res.Divergence)
	}
}

func TestPreforkLeavesNoZombies(t *testing.T) {
	// Every dead worker must be reaped: after a few /quit cycles and the
	// shutdown drain, no zombie processes may remain in any variant.
	cfg := preforkCfg(8213)
	cfg.Workers = 2
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	for round := 0; round < 4; round++ {
		probe(s.Kernel(), cfg.Port, "GET /quit")
		probe(s.Kernel(), cfg.Port, "GET /")
	}
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("diverged: %v", res.Divergence)
	}
	// Only the two root processes (one per variant) survive a clean run:
	// every worker — including the /quit casualties and their
	// replacements — was reaped in every variant's tree.
	if n := s.Kernel().ProcCount(); n != 2 {
		t.Fatalf("%d processes left after shutdown, want 2 roots", n)
	}
}

func TestPreforkFleetServes(t *testing.T) {
	// The fleet gateway drives the prefork mode like every other: warm
	// spawn probes, watchdog closes, and divergence quarantine ride the
	// same ClientConn surface, and a layout-targeted exploit burns one
	// member which is hot-replaced.
	cfg := Config{Port: 8214, PageSize: 512, Prefork: true, Workers: 2,
		Vulnerable: true, InstrumentCustomSync: true}
	f, err := fleet.New(FleetConfig(cfg, core.Options{
		Variants: 2, Agent: agent.WallOfClocks, ASLR: true, DCL: true, Seed: 11, MaxThreads: 64,
	}, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 32; i++ {
		resp, err := f.Do([]byte("GET /"))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !strings.Contains(string(resp), "200 OK") {
			t.Fatalf("request %d: %q", i, resp)
		}
	}
	f.Do([]byte(fmt.Sprintf("POST /upload %x", attackGadget(0, 11))))
	for i := 0; i < 16; i++ {
		if _, err := f.Do([]byte("GET /")); err != nil {
			t.Fatalf("post-attack request %d: %v", i, err)
		}
	}
	st := f.Stats()
	if st.Divergences == 0 {
		t.Fatal("exploit did not burn a session")
	}
	if st.Recycled == 0 {
		t.Fatal("burned session was not hot-replaced")
	}
}

func TestPreforkStress(t *testing.T) {
	// CI race-job stress cell: heavy concurrent load over a small worker
	// pool with mid-run worker churn.
	cfg := preforkCfg(8215)
	cfg.Workers = 3
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			probe(s.Kernel(), cfg.Port, "GET /quit")
		}
	}()
	res := GenerateLoad(s.Kernel(), cfg.Port, 8, 15)
	<-done
	if res.Errors > 0 {
		t.Fatalf("stress load errored: %+v", res)
	}
	final := shutdown()
	if final.Divergence != nil {
		t.Fatalf("stress diverged: %v", final.Divergence)
	}
}

// --- Hot restart (DESIGN.md §9) --------------------------------------------

// reloadCfg is the multi-threaded prefork shape the hot-restart acceptance
// runs against: 2 worker processes × 3 accept threads each.
func reloadCfg(port uint16) Config {
	return Config{Port: port, PageSize: 1024, Prefork: true, Workers: 2,
		WorkerThreads: 3, InstrumentCustomSync: true}
}

// awaitEpoch polls the kernel's EpochFile until the parent publishes
// generation `want` (readiness included: the file is written only after
// every new-epoch worker signalled on the readiness pipe).
func awaitEpoch(t *testing.T, k *kernel.Kernel, want int) (seed int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, ok := k.ReadFile(fleet.EpochFile); ok {
			if e, s, _, valid := fleet.ParseEpochState(b); valid && e >= want {
				if e != want {
					t.Fatalf("epoch overshot: published %d, want %d", e, want)
				}
				return s
			}
		}
		if time.Now().After(deadline) {
			b, _ := k.ReadFile(fleet.EpochFile)
			t.Fatalf("epoch %d never published (file: %q)", want, b)
		}
		time.Sleep(time.Millisecond)
	}
}

// awaitQuiescence polls the kernel process table until exactly
// variants × (parent + workers) running processes remain, with no zombies
// and at most maxFDs+1 descriptors per process — maxFDs is 1 (the
// listener share) for an idle server, 2 while load runs (an in-flight
// connection is legitimate), and every process additionally holds the
// read-only page file its sendfile path serves from (the nginx
// `sendfile on` open-file residency). Anything above that is a leak from
// the epoch churn.
func awaitQuiescence(t *testing.T, k *kernel.Kernel, wantRunning, maxFDs int) {
	t.Helper()
	maxFDs++ // the resident page-file descriptor
	deadline := time.Now().Add(30 * time.Second)
	for {
		running, bad := 0, ""
		for _, p := range k.Snapshot() {
			switch p.State {
			case "running":
				running++
				if p.OpenFDs > maxFDs {
					bad = fmt.Sprintf("pid %d holds %d fds, want <= %d", p.Pid, p.OpenFDs, maxFDs)
				}
			case "zombie":
				bad = fmt.Sprintf("pid %d is an unreaped zombie", p.Pid)
			}
		}
		if bad == "" && running == wantRunning {
			return
		}
		if time.Now().After(deadline) {
			if bad == "" {
				bad = fmt.Sprintf("%d running procs, want %d", running, wantRunning)
			}
			t.Fatalf("old generation never drained: %s\nprocs: %+v", bad, k.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPreforkHotRestartZeroDowntime(t *testing.T) {
	// The tentpole acceptance: a multi-threaded prefork server under
	// CONTINUOUS load survives 3 consecutive hot restarts with zero
	// dropped or errored requests and zero divergence; each generation
	// publishes a distinct epoch and diversity seed, and after every drain
	// the kernel settles back to exactly the live generation's processes
	// with no leaked descriptors.
	cfg := reloadCfg(8216)
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)

	var stop atomic.Bool
	var served, failed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				req := "GET /"
				if i%8 == 7 {
					req = "GET /count"
				}
				resp, err := probe(s.Kernel(), cfg.Port, req)
				if err != nil || (!strings.Contains(resp, "200 OK") && !strings.Contains(resp, "count=")) {
					failed.Add(1)
					t.Errorf("client %d request %d failed across reload: %q %v", c, i, resp, err)
					return
				}
				served.Add(1)
			}
		}(c)
	}

	seeds := map[int64]bool{}
	wantRunning := 2 * (1 + cfg.Workers) // variants × (parent + workers)
	for gen := 1; gen <= 3; gen++ {
		if !s.Signal(kernel.SIGHUP) {
			t.Fatalf("reload %d: SIGHUP not accepted", gen)
		}
		seed := awaitEpoch(t, s.Kernel(), gen)
		if seed == 0 || seeds[seed] {
			t.Fatalf("reload %d: seed %d not distinct (%v)", gen, seed, seeds)
		}
		seeds[seed] = true
		awaitQuiescence(t, s.Kernel(), wantRunning, 2)
	}

	stop.Store(true)
	wg.Wait()
	// With the load stopped, everything settles to exactly one descriptor
	// — the listener share — per process: nothing from any of the three
	// displaced generations leaked.
	awaitQuiescence(t, s.Kernel(), wantRunning, 1)
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("hot restarts diverged: %v", res.Divergence)
	}
	if failed.Load() != 0 {
		t.Fatalf("%d of %d requests failed across 3 hot restarts, want 0", failed.Load(), failed.Load()+served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("the load never served anything — the clients raced straight past the run")
	}
	t.Logf("%d requests served across 3 hot restarts, 0 dropped", served.Load())
}

func TestPreforkHotRestartSurvivesWorkerKillStorm(t *testing.T) {
	// Chaos DURING the reload: /quit and /killme storms fire while the
	// epochs are mid-swap. Dead current-epoch workers are re-forked, dead
	// old-epoch workers just finish their drain, and the whole braid stays
	// divergence-free.
	cfg := reloadCfg(8217)
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	for gen := 1; gen <= 2; gen++ {
		if !s.Signal(kernel.SIGHUP) {
			t.Fatalf("reload %d: SIGHUP not accepted", gen)
		}
		for k := 0; k < 4; k++ {
			req := "GET /quit"
			if k%2 == 1 {
				req = "GET /killme"
			}
			probe(s.Kernel(), cfg.Port, req)
			// A request racing a process death may legitimately drop (the
			// exit-group tears down sibling threads mid-request — exactly
			// what exit(2) does to a multi-threaded process), so retry; the
			// pool must RECOVER, and the reload must still complete.
			ok := false
			for attempt := 0; attempt < 20 && !ok; attempt++ {
				resp, err := probe(s.Kernel(), cfg.Port, "GET /")
				ok = err == nil && strings.Contains(resp, "200 OK")
			}
			if !ok {
				t.Fatalf("reload %d: pool never recovered from kill %d", gen, k)
			}
		}
		awaitEpoch(t, s.Kernel(), gen)
		awaitQuiescence(t, s.Kernel(), 2*(1+cfg.Workers), 1)
	}
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("kill storm across reloads diverged: %v", res.Divergence)
	}
}

func TestPreforkHotRestartRefreshesDiversity(t *testing.T) {
	// The diversity refresh is real, both ways:
	//
	//   - a layout leak harvested BEFORE the reload is dead afterwards: the
	//     stale gadget matches NO variant's refreshed layout, so the attack
	//     fizzles benignly (identical rejection everywhere, no divergence);
	//   - an attacker who re-harvests the NEW generation's layout for one
	//     variant is still caught the classic way — the fresh gadget
	//     matches only that variant and the cross-variant comparison trips.
	cfg := reloadCfg(8218)
	cfg.Vulnerable = true
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	stale := attackGadget(0, 77) // pre-reload leak of variant 0's layout
	if !s.Signal(kernel.SIGHUP) {
		t.Fatal("SIGHUP not accepted")
	}
	awaitEpoch(t, s.Kernel(), 1)
	awaitQuiescence(t, s.Kernel(), 2*(1+cfg.Workers), 1)
	resp, err := probe(s.Kernel(), cfg.Port, fmt.Sprintf("POST /upload %x", stale))
	if err == nil && strings.Contains(resp, "PWNED") {
		t.Fatalf("stale layout leak still works after diversity refresh: %q", resp)
	}
	if resp, err := probe(s.Kernel(), cfg.Port, "GET /"); err != nil || !strings.Contains(resp, "200 OK") {
		t.Fatalf("stale gadget burned the refreshed server: %q %v", resp, err)
	}

	// Mirror the new generation's allocation history for variant 0: the
	// epoch-0 handler alloc, the epoch-1 diversity shift, the epoch-1
	// handler alloc. This is exactly the leak an attacker would have to
	// RE-harvest after the restart.
	sp := variant.NewSpace(0, variant.Options{ASLR: true, DCL: true, Seed: 77})
	sp.AllocCode(64)
	sp.EpochShift(epochSeed(1))
	fresh := sp.AllocCode(64)
	if fresh == stale {
		t.Fatal("diversity refresh did not move the handler address")
	}
	if resp, err := Attack(s.Kernel(), cfg.Port, fresh); err == nil && strings.Contains(resp, "PWNED") {
		t.Fatalf("re-harvested leak escaped the MVEE: %q", resp)
	}
	res := shutdown()
	if res.Divergence == nil {
		t.Fatal("re-harvested attack on the new generation was not detected")
	}
	if res.Divergence.Reason != "payload mismatch" {
		t.Fatalf("unexpected reason: %v", res.Divergence)
	}
}
