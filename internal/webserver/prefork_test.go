package webserver

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/kernel"
)

// The prefork mode must pass the same serving/divergence/leak suite the
// thread-pool and evented modes do: the change is the concurrency model
// (worker PROCESSES sharing the listener via forked descriptor tables,
// reaped and re-forked by the parent's waitpid loop).

func preforkCfg(port uint16) Config {
	return Config{Port: port, PageSize: 4096, Prefork: true, Workers: 3, InstrumentCustomSync: true}
}

func TestPreforkServesStaticPageUnderMVEE(t *testing.T) {
	cfg := preforkCfg(8200)
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	res := GenerateLoad(s.Kernel(), cfg.Port, 4, 25)
	if res.Errors > 0 || res.Responses != res.Requests {
		t.Fatalf("load: %+v", res)
	}
	if res.Bytes < res.Responses*4096 {
		t.Fatalf("short responses: %d bytes over %d responses", res.Bytes, res.Responses)
	}
	final := shutdown()
	if final.Divergence != nil {
		t.Fatalf("prefork server diverged under benign load: %v", final.Divergence)
	}
}

func TestPreforkCountEndpointIsConsistent(t *testing.T) {
	// Worker-local counters: which worker serves which connection is part
	// of the replicated accept stream, so /count responses are identical
	// across variants with no locks at all.
	cfg := preforkCfg(8201)
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	for round := 0; round < 25; round++ {
		if _, err := CountProbe(s.Kernel(), cfg.Port); err != nil {
			t.Fatalf("count probe %d: %v", round, err)
		}
	}
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("prefork /count diverged: %v", res.Divergence)
	}
}

func TestPreforkAttackDetectedWithTwoVariants(t *testing.T) {
	// The §5.5 security result holds in worker processes: the divergent
	// send is caught before the leak escapes, and the fact that the
	// vulnerable handler runs in a forked child changes nothing — the
	// child's syscalls are monitored exactly like the root's.
	for _, target := range []int{0, 1} {
		cfg := preforkCfg(uint16(8202 + target))
		cfg.Vulnerable = true
		s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
		resp, err := Attack(s.Kernel(), cfg.Port, attackGadget(target, 77))
		if err == nil && strings.Contains(resp, "PWNED") {
			t.Fatalf("target=%d: leak escaped the MVEE: %q", target, resp)
		}
		res := shutdown()
		if res.Divergence == nil {
			t.Fatalf("target=%d: attack not detected", target)
		}
		if res.Divergence.Reason != "payload mismatch" {
			t.Fatalf("target=%d: unexpected reason %q", target, res.Divergence.Reason)
		}
	}
}

func TestPreforkBenignTrafficWithVulnerableEndpointDoesNotDiverge(t *testing.T) {
	cfg := preforkCfg(8210)
	cfg.Vulnerable = true
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	res := GenerateLoad(s.Kernel(), cfg.Port, 4, 20)
	if res.Errors > 0 {
		t.Fatalf("benign load errored: %+v", res)
	}
	final := shutdown()
	if final.Divergence != nil {
		t.Fatalf("false positive: %v", final.Divergence)
	}
}

// probe sends one request and returns the response body.
func probe(k *kernel.Kernel, port uint16, req string) (string, error) {
	cc, errno := k.Connect(port)
	if errno != kernel.OK {
		return "", errno
	}
	defer cc.Close()
	if _, err := cc.Write([]byte(req)); err != nil {
		return "", err
	}
	buf := make([]byte, 8192)
	n, err := cc.Read(buf)
	if err != nil {
		return "", err
	}
	return string(buf[:n]), nil
}

func TestPreforkWorkerReapAndRefork(t *testing.T) {
	// Worker death is survivable: /quit makes the serving worker exit
	// (status 1), the parent's waitpid reaps it and forks a replacement,
	// and the pool keeps serving — with zero divergence, because the
	// whole reap/re-fork cycle is replicated kernel state.
	cfg := preforkCfg(8211)
	cfg.Workers = 2
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	for round := 0; round < 3; round++ {
		if resp, err := probe(s.Kernel(), cfg.Port, "GET /quit"); err != nil || resp != "bye" {
			t.Fatalf("round %d: /quit: %q %v", round, resp, err)
		}
		// The replacement (and the surviving sibling) keep serving.
		for i := 0; i < 6; i++ {
			resp, err := probe(s.Kernel(), cfg.Port, "GET /")
			if err != nil || !strings.Contains(resp, "200 OK") {
				t.Fatalf("round %d, request %d after refork: %q %v", round, i, resp, err)
			}
		}
	}
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("reap/refork diverged: %v", res.Divergence)
	}
}

func TestPreforkKilledWorkerIsReforked(t *testing.T) {
	// The signal path of worker death: /killme SIGTERMs the serving
	// worker; the unhandled terminating signal is delivered at the kill's
	// own syscall boundary, the process exits 128+SIGTERM, the parent
	// reaps and re-forks. Every variant replays the same delivery point.
	cfg := preforkCfg(8212)
	cfg.Workers = 2
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	for round := 0; round < 3; round++ {
		if resp, err := probe(s.Kernel(), cfg.Port, "GET /killme"); err != nil || resp != "bye" {
			t.Fatalf("round %d: /killme: %q %v", round, resp, err)
		}
		for i := 0; i < 6; i++ {
			resp, err := probe(s.Kernel(), cfg.Port, "GET /")
			if err != nil || !strings.Contains(resp, "200 OK") {
				t.Fatalf("round %d, request %d after kill: %q %v", round, i, resp, err)
			}
		}
	}
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("kill/refork diverged: %v", res.Divergence)
	}
}

func TestPreforkLeavesNoZombies(t *testing.T) {
	// Every dead worker must be reaped: after a few /quit cycles and the
	// shutdown drain, no zombie processes may remain in any variant.
	cfg := preforkCfg(8213)
	cfg.Workers = 2
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	for round := 0; round < 4; round++ {
		probe(s.Kernel(), cfg.Port, "GET /quit")
		probe(s.Kernel(), cfg.Port, "GET /")
	}
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("diverged: %v", res.Divergence)
	}
	// Only the two root processes (one per variant) survive a clean run:
	// every worker — including the /quit casualties and their
	// replacements — was reaped in every variant's tree.
	if n := s.Kernel().ProcCount(); n != 2 {
		t.Fatalf("%d processes left after shutdown, want 2 roots", n)
	}
}

func TestPreforkFleetServes(t *testing.T) {
	// The fleet gateway drives the prefork mode like every other: warm
	// spawn probes, watchdog closes, and divergence quarantine ride the
	// same ClientConn surface, and a layout-targeted exploit burns one
	// member which is hot-replaced.
	cfg := Config{Port: 8214, PageSize: 512, Prefork: true, Workers: 2,
		Vulnerable: true, InstrumentCustomSync: true}
	f, err := fleet.New(FleetConfig(cfg, core.Options{
		Variants: 2, Agent: agent.WallOfClocks, ASLR: true, DCL: true, Seed: 11, MaxThreads: 64,
	}, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 32; i++ {
		resp, err := f.Do([]byte("GET /"))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !strings.Contains(string(resp), "200 OK") {
			t.Fatalf("request %d: %q", i, resp)
		}
	}
	f.Do([]byte(fmt.Sprintf("POST /upload %x", attackGadget(0, 11))))
	for i := 0; i < 16; i++ {
		if _, err := f.Do([]byte("GET /")); err != nil {
			t.Fatalf("post-attack request %d: %v", i, err)
		}
	}
	st := f.Stats()
	if st.Divergences == 0 {
		t.Fatal("exploit did not burn a session")
	}
	if st.Recycled == 0 {
		t.Fatal("burned session was not hot-replaced")
	}
}

func TestPreforkStress(t *testing.T) {
	// CI race-job stress cell: heavy concurrent load over a small worker
	// pool with mid-run worker churn.
	cfg := preforkCfg(8215)
	cfg.Workers = 3
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			probe(s.Kernel(), cfg.Port, "GET /quit")
		}
	}()
	res := GenerateLoad(s.Kernel(), cfg.Port, 8, 15)
	<-done
	if res.Errors > 0 {
		t.Fatalf("stress load errored: %+v", res)
	}
	final := shutdown()
	if final.Divergence != nil {
		t.Fatalf("stress diverged: %v", final.Divergence)
	}
}
