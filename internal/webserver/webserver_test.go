package webserver

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/variant"
)

// startServer launches the server under the MVEE and returns the session
// plus a shutdown function that closes the listener and joins the session.
func startServer(t *testing.T, cfg Config, variants int, kind agent.Kind) (*core.Session, func() *core.Result) {
	t.Helper()
	cfg.fill()
	s := core.NewSession(core.Options{
		Variants: variants, Agent: kind, ASLR: true, DCL: true, Seed: 77, MaxThreads: 64,
	}, Program(cfg))
	done := make(chan *core.Result, 1)
	go func() { done <- s.Run() }()
	// Wait for the listener to come up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cc, errno := s.Kernel().Connect(cfg.Port); errno == 0 {
			cc.Write([]byte("GET /")) // handled and discarded
			cc.Close()
			break
		}
		if time.Now().After(deadline) {
			s.Kill()
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	shutdown := func() *core.Result {
		s.Kernel().CloseListener(cfg.Port)
		select {
		case res := <-done:
			return res
		case <-time.After(60 * time.Second):
			s.Kill()
			return <-done
		}
	}
	return s, shutdown
}

func TestServesStaticPageUnderMVEE(t *testing.T) {
	cfg := Config{Port: 8080, PoolThreads: 4, InstrumentCustomSync: true, PageSize: 4096}
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	res := GenerateLoad(s.Kernel(), cfg.Port, 4, 25)
	if res.Errors > 0 || res.Responses != res.Requests {
		t.Fatalf("load: %+v", res)
	}
	if res.Bytes < res.Responses*4096 {
		t.Fatalf("short responses: %d bytes over %d responses", res.Bytes, res.Responses)
	}
	final := shutdown()
	if final.Divergence != nil {
		t.Fatalf("instrumented server diverged: %v", final.Divergence)
	}
}

func TestUninstrumentedCustomSyncDiverges(t *testing.T) {
	// §5.5: "if we do not instrument these custom synchronization
	// primitives, nginx does not function correctly ... starts up
	// normally, but quickly triggers a divergence when network traffic
	// starts flowing in." The /count endpoint exposes the custom-lock-
	// protected counter, so unordered increments surface as divergent
	// response payloads.
	cfg := Config{Port: 8081, PoolThreads: 4, InstrumentCustomSync: false}
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	// Hammer /count from several connections until divergence (bounded).
	diverged := false
	for round := 0; round < 200 && !diverged; round++ {
		done := make(chan struct{}, 8)
		for c := 0; c < 8; c++ {
			go func() {
				CountProbe(s.Kernel(), cfg.Port)
				done <- struct{}{}
			}()
		}
		for c := 0; c < 8; c++ {
			<-done
		}
		diverged = s.Monitor().Killed()
	}
	res := shutdown()
	if res.Divergence == nil {
		t.Fatal("uninstrumented custom sync did not cause divergence (the §5.5 negative result)")
	}
}

func TestInstrumentedCountEndpointIsConsistent(t *testing.T) {
	cfg := Config{Port: 8082, PoolThreads: 4, InstrumentCustomSync: true}
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	for round := 0; round < 50; round++ {
		done := make(chan struct{}, 4)
		for c := 0; c < 4; c++ {
			go func() {
				CountProbe(s.Kernel(), cfg.Port)
				done <- struct{}{}
			}()
		}
		for c := 0; c < 4; c++ {
			<-done
		}
	}
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("instrumented /count diverged: %v", res.Divergence)
	}
}

// attackGadget computes the code address the attacker would use, i.e. the
// handler address in the targeted variant's layout — exactly what a
// per-variant information leak would give a real adversary.
func attackGadget(targetVariant int, seed int64) uint64 {
	space := variant.NewSpace(targetVariant, variant.Options{ASLR: true, DCL: true, Seed: seed})
	return space.AllocCode(64)
}

func TestAttackSucceedsAgainstSingleVariant(t *testing.T) {
	// Baseline (§5.5): "our attack could successfully compromise nginx
	// running ... as a single variant inside our MVEE."
	cfg := Config{Port: 8083, PoolThreads: 2, InstrumentCustomSync: true, Vulnerable: true}
	s, shutdown := startServer(t, cfg, 1, agent.None)
	resp, err := Attack(s.Kernel(), cfg.Port, attackGadget(0, 77))
	if err != nil {
		t.Fatalf("attack request failed: %v", err)
	}
	if !strings.Contains(resp, "PWNED") {
		t.Fatalf("attack against single variant failed: %q", resp)
	}
	if res := shutdown(); res.Divergence != nil {
		t.Fatalf("single variant cannot diverge: %v", res.Divergence)
	}
}

func TestAttackDetectedWithTwoVariants(t *testing.T) {
	// The headline security result: with >= 2 variants the MVEE detects
	// divergence and shuts down before the compromised output escapes.
	for _, target := range []int{0, 1} {
		cfg := Config{Port: uint16(8084 + target), PoolThreads: 2,
			InstrumentCustomSync: true, Vulnerable: true}
		s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
		resp, err := Attack(s.Kernel(), cfg.Port, attackGadget(target, 77))
		// The attack connection must NOT receive the leak: the monitor
		// kills the variants at the divergent send, so the client sees
		// an error or EOF.
		if err == nil && strings.Contains(resp, "PWNED") {
			t.Fatalf("target=%d: leak escaped the MVEE: %q", target, resp)
		}
		res := shutdown()
		if res.Divergence == nil {
			t.Fatalf("target=%d: attack not detected", target)
		}
		if res.Divergence.Reason != "payload mismatch" {
			t.Fatalf("target=%d: unexpected reason %q", target, res.Divergence.Reason)
		}
	}
}

func TestBenignTrafficWithVulnerableEndpointDoesNotDiverge(t *testing.T) {
	// The vulnerable build behaves identically across variants as long as
	// nobody exploits it: no false positives.
	cfg := Config{Port: 8090, PoolThreads: 4, InstrumentCustomSync: true, Vulnerable: true}
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	res := GenerateLoad(s.Kernel(), cfg.Port, 4, 20)
	if res.Errors > 0 {
		t.Fatalf("benign load errored: %+v", res)
	}
	final := shutdown()
	if final.Divergence != nil {
		t.Fatalf("false positive: %v", final.Divergence)
	}
}

func TestThroughputMeasurable(t *testing.T) {
	// Sanity for the §5.5 performance experiment: the load generator
	// reports a plausible throughput.
	cfg := Config{Port: 8091, PoolThreads: 4, InstrumentCustomSync: true}
	s, shutdown := startServer(t, cfg, 1, agent.None)
	res := GenerateLoad(s.Kernel(), cfg.Port, 2, 30)
	if res.Throughput() <= 0 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
	shutdown()
}
