package webserver

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/kernel"
)

// LoadResult summarizes a load-generation run (the wrk measurements of
// §5.5).
type LoadResult struct {
	Requests  int
	Responses int
	Bytes     int
	Errors    int
	Duration  time.Duration
}

// Throughput returns responses per second.
func (r LoadResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Responses) / r.Duration.Seconds()
}

// GenerateLoad plays the wrk role: conns concurrent connections each issue
// requestsPerConn GET requests for the static page and read the responses.
// It runs outside the MVEE, against the session kernel.
func GenerateLoad(k *kernel.Kernel, port uint16, conns, requestsPerConn int) LoadResult {
	start := time.Now()
	var mu sync.Mutex
	res := LoadResult{}
	var wg sync.WaitGroup
	// Hoisted out of the request loop: the request bytes are constant and
	// the response buffer is reused — the load generator must not be the
	// process's allocation hot spot when it is the measuring instrument.
	request := []byte("GET / HTTP/1.1")
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := LoadResult{}
			buf := make([]byte, 8192)
			for r := 0; r < requestsPerConn; r++ {
				cc, errno := k.Connect(port)
				if errno != kernel.OK {
					local.Errors++
					continue
				}
				local.Requests++
				if _, err := cc.Write(request); err != nil {
					local.Errors++
					cc.Close()
					continue
				}
				n, err := cc.Read(buf)
				if err != nil || n == 0 {
					local.Errors++
				} else {
					local.Responses++
					local.Bytes += n
				}
				cc.Close()
			}
			mu.Lock()
			res.Requests += local.Requests
			res.Responses += local.Responses
			res.Bytes += local.Bytes
			res.Errors += local.Errors
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.Duration = time.Since(start)
	return res
}

// Attack plays the adversary: it probes the vulnerable endpoint with a
// gadget address "tailored to a specific running victim variant" (§5.5) —
// here, the true handler address of the targeted variant, as an attacker
// with a leak for that one variant would have. It returns the server's
// response.
func Attack(k *kernel.Kernel, port uint16, gadget uint64) (string, error) {
	cc, errno := k.Connect(port)
	if errno != kernel.OK {
		return "", errno
	}
	defer cc.Close()
	if _, err := cc.Write([]byte(fmt.Sprintf("POST /upload %x", gadget))); err != nil {
		return "", err
	}
	buf := make([]byte, 4096)
	n, err := cc.Read(buf)
	if err != nil {
		return "", err
	}
	return string(buf[:n]), nil
}

// CountProbe issues a GET /count request and returns the response.
func CountProbe(k *kernel.Kernel, port uint16) (string, error) {
	cc, errno := k.Connect(port)
	if errno != kernel.OK {
		return "", errno
	}
	defer cc.Close()
	if _, err := cc.Write([]byte("GET /count")); err != nil {
		return "", err
	}
	buf := make([]byte, 256)
	n, err := cc.Read(buf)
	if err != nil {
		return "", err
	}
	return string(buf[:n]), nil
}
