package webserver

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/kernel"
)

// LoadResult summarizes a load-generation run (the wrk measurements of
// §5.5).
type LoadResult struct {
	Requests  int
	Responses int
	Bytes     int
	Errors    int
	Duration  time.Duration
}

// Throughput returns responses per second.
func (r LoadResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Responses) / r.Duration.Seconds()
}

// GenerateLoad plays the wrk role: conns concurrent connections each issue
// requestsPerConn GET requests for the static page and read the responses.
// It runs outside the MVEE, against the session kernel.
//
// Connections are KEEP-ALIVE: each worker holds one open connection and
// reuses it across requests, reconnecting transparently when the server
// turns out to have closed it (the thread-pool and prefork modes close per
// request; the evented mode keeps the connection). Responses are framed by
// a single read — correct for any response the kernel delivers in one
// chunk; use GenerateLoadSized when the expected response is larger.
func GenerateLoad(k *kernel.Kernel, port uint16, conns, requestsPerConn int) LoadResult {
	return GenerateLoadSized(k, port, conns, requestsPerConn, 0)
}

// GenerateLoadSized is GenerateLoad with explicit response framing: expect
// is the exact response size in bytes, and each request reads until that
// many bytes arrived — which is what keeps request/response pairing sound
// on a keep-alive connection when a response spans several reads (a page
// larger than the kernel's 64 KiB pipe buffer necessarily does). expect=0
// keeps the single-read framing.
func GenerateLoadSized(k *kernel.Kernel, port uint16, conns, requestsPerConn, expect int) LoadResult {
	start := time.Now()
	var mu sync.Mutex
	res := LoadResult{}
	var wg sync.WaitGroup
	// Hoisted out of the request loop: the request bytes are constant and
	// the response buffer is reused — the load generator must not be the
	// process's allocation hot spot when it is the measuring instrument.
	request := []byte("GET / HTTP/1.1")
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := LoadResult{}
			buf := make([]byte, 8192)
			var cc kernel.ClientConn
			open := false
			for r := 0; r < requestsPerConn; r++ {
				local.Requests++
				got, ok := 0, false
				// Two attempts: a write error or an immediate EOF on a kept
				// connection means the server closed it between requests —
				// an ordinary keep-alive race, retried once on a fresh
				// connection rather than counted as a failure.
				for attempt := 0; attempt < 2 && !ok; attempt++ {
					if !open {
						c, errno := k.Connect(port)
						if errno != kernel.OK {
							break
						}
						cc, open = c, true
					}
					if _, err := cc.Write(request); err != nil {
						cc.Close()
						open = false
						continue
					}
					got = 0
					for {
						n, err := cc.Read(buf)
						if err != nil || n == 0 {
							cc.Close()
							open = false
							break
						}
						got += n
						if expect <= 0 || got >= expect {
							ok = true
							break
						}
					}
				}
				if ok {
					local.Responses++
					local.Bytes += got
				} else {
					local.Errors++
				}
			}
			if open {
				cc.Close()
			}
			mu.Lock()
			res.Requests += local.Requests
			res.Responses += local.Responses
			res.Bytes += local.Bytes
			res.Errors += local.Errors
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.Duration = time.Since(start)
	return res
}

// Attack plays the adversary: it probes the vulnerable endpoint with a
// gadget address "tailored to a specific running victim variant" (§5.5) —
// here, the true handler address of the targeted variant, as an attacker
// with a leak for that one variant would have. It returns the server's
// response.
func Attack(k *kernel.Kernel, port uint16, gadget uint64) (string, error) {
	cc, errno := k.Connect(port)
	if errno != kernel.OK {
		return "", errno
	}
	defer cc.Close()
	if _, err := cc.Write([]byte(fmt.Sprintf("POST /upload %x", gadget))); err != nil {
		return "", err
	}
	buf := make([]byte, 4096)
	n, err := cc.Read(buf)
	if err != nil {
		return "", err
	}
	return string(buf[:n]), nil
}

// CountProbe issues a GET /count request and returns the response.
func CountProbe(k *kernel.Kernel, port uint16) (string, error) {
	cc, errno := k.Connect(port)
	if errno != kernel.OK {
		return "", errno
	}
	defer cc.Close()
	if _, err := cc.Write([]byte("GET /count")); err != nil {
		return "", err
	}
	buf := make([]byte, 256)
	n, err := cc.Read(buf)
	if err != nil {
		return "", err
	}
	return string(buf[:n]), nil
}
