package webserver

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/kernel"
)

// The prefork serving mode: the nginx/Apache master-worker process model
// on top of the simulated kernel's fork/wait/kill subsystem (DESIGN.md
// §2.5). The parent process binds the listener and forks cfg.Workers
// child PROCESSES; every worker inherits a copy of the listening
// descriptor (fork copies the table; the open descriptions behind the
// entries are shared) and runs cfg.WorkerThreads
// accept→serve loops (one per thread). The parent then becomes a reaper:
// it blocks in waitpid, and any worker that dies abnormally — a /quit
// request, a self-inflicted SIGTERM via /killme, a crash — is immediately
// replaced by a fresh fork, so worker death is a survivable, in-protocol
// event rather than an outage.
//
// The parent also speaks a zero-downtime HOT-RESTART protocol (DESIGN.md
// §9). SIGHUP starts a new worker GENERATION ("epoch"): the parent
// re-randomizes the variant layout (core.Thread.RefreshLayout) so the new
// generation's handler code lands at fresh addresses, binds a new listener
// over the old one with the kernel's takeover listen (which atomically
// swaps the port binding and closes the old listener), forks a full set of
// new-epoch workers, waits for each to signal readiness on a pipe, and
// only then publishes the new epoch in EpochFile. The OLD generation needs
// no signal at all: its parked accepts wake when the takeover closes its
// listener, drain whatever that backlog still holds, finish their
// in-flight requests, and exit on the accept EINVAL — while every
// connection that raced the swap lands in the new listener's backlog (the
// kernel migrates stragglers and re-chases refused connects), so no
// request is dropped across the restart.
//
// Under the MVEE every piece of this is deterministic: fork hands out the
// same pids and tids in every variant (ordered call), the master's waitpid
// results and signal-delivery points are replicated, and kill's (pid,
// signo) arguments are compared — a variant signalling a different worker
// is divergence, not noise.

// Worker exit statuses. The parent replaces a CURRENT-epoch worker that
// exits with any status other than shutdownExit or drainExit; workers of
// displaced epochs are never replaced, whatever they report.
const (
	// shutdownExit: the listener closed underneath the worker and no newer
	// epoch exists — the whole server is shutting down.
	shutdownExit = 0
	// quitExit: deliberate worker suicide (/quit); the parent re-forks.
	quitExit = 1
	// drainExit: the worker drained out because a hot restart displaced
	// its generation's listener. Best-effort: an old worker that exits
	// before the parent publishes the new epoch reports shutdownExit, and
	// the parent's own epoch table — not this status — is what guarantees
	// drained workers are not re-forked.
	drainExit = 2
)

// epochSeed derives the diversity-refresh seed of a generation: a pure
// function of the epoch number, so every variant shifts its layout from
// the same seed at the same ordered position (the per-variant salt lives
// in variant.Space.EpochShift).
func epochSeed(epoch int) int64 { return int64(epoch)*104729 + 1 }

func runPreforkServer(t *core.Thread, cfg Config) {
	// Built BEFORE the forks: workers inherit the parent's (variant-local)
	// handler address — exactly like a real prefork server's workers
	// inherit the parent's code layout — AND the parent's open page-file
	// descriptor (fork copies the table over the shared description), so
	// every worker serves with zero-copy sendfile at explicit offsets.
	// The handler address is re-derived per epoch after RefreshLayout,
	// which is the whole point of the diversity refresh; the page file is
	// epoch-invariant.
	srv := newPageSrv(t, cfg)
	handlerPtr := srv.handlerPtr

	sfd := t.Syscall(kernel.SysSocket, [6]uint64{}, nil).Val
	t.Syscall(kernel.SysBind, [6]uint64{sfd, uint64(cfg.Port)}, nil)
	if lr := t.Syscall(kernel.SysListen, [6]uint64{sfd, uint64(cfg.Port), 128}, nil); !lr.Ok() {
		return
	}

	// The reload flag is flipped by the SIGHUP handler and consumed at the
	// top of the reap loop. The parent is single-threaded and handlers run
	// at its own syscall boundaries, so no further synchronization exists
	// — or is needed.
	reload := false
	t.Sigaction(kernel.SIGHUP, func(*core.Thread, int) { reload = true })

	epoch := 0
	workerEpoch := make(map[int]int) // live worker pid → its epoch
	active := make(map[int]int)      // epoch → live worker count

	forkWorker := func(e int, fd, hp, readyR, readyW uint64) {
		// Each fork captures its own pageSrv COPY with the epoch's handler
		// address baked in: the parent mutates nothing a live worker reads.
		ws := *srv
		ws.handlerPtr = hp
		h := t.Fork(func(w *core.Thread) {
			preforkWorker(w, &ws, fd, e, readyR, readyW)
		})
		if h != nil { // nil: tid space exhausted — serve with fewer workers
			workerEpoch[h.Pid] = e
			active[e]++
		}
	}

	// startEpoch forks the current generation's full worker set, waits for
	// each worker to write its readiness byte (sent only after the worker
	// grew its thread pool), then publishes the generation in EpochFile —
	// so an observer that sees epoch N there knows generation N is really
	// accepting.
	startEpoch := func() {
		pr := t.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
		rfd, wfd := pr.Val, pr.Val2
		if !pr.Ok() {
			rfd, wfd = 0, 0 // readiness degrades to "forked"; keep serving
		}
		for i := 0; i < cfg.Workers; i++ {
			forkWorker(epoch, sfd, handlerPtr, rfd, wfd)
		}
		for got, need := 0, active[epoch]; got < need && rfd != 0; {
			r := t.Syscall(kernel.SysRead, [6]uint64{rfd, 64}, nil)
			if r.Err == kernel.EINTR {
				continue // handler ran; reload consumed by the reap loop
			}
			if !r.Ok() || r.Val == 0 {
				break
			}
			got += int(r.Val)
		}
		if rfd != 0 {
			// Fork COPIES the descriptor table (over shared open file
			// descriptions), so this drops only the parent's references —
			// each worker closes its own inherited pair after signalling.
			t.Syscall(kernel.SysClose, [6]uint64{rfd}, nil)
			t.Syscall(kernel.SysClose, [6]uint64{wfd}, nil)
		}
		fd := t.Syscall(kernel.SysOpen,
			[6]uint64{kernel.OCreat | kernel.OWronly | kernel.OTrunc}, []byte(fleet.EpochFile))
		if fd.Ok() {
			t.Syscall(kernel.SysWrite, [6]uint64{fd.Val},
				fleet.FormatEpochState(epoch, epochSeed(epoch), active[epoch]))
			t.Syscall(kernel.SysClose, [6]uint64{fd.Val}, nil)
		}
	}
	startEpoch()

	// The reap loop: one waitpid per dead worker. EINTR (a signal landed
	// in the parent) re-checks the reload flag; ECHILD means every worker
	// exited cleanly after the listener closed — the server is done.
	for {
		if reload {
			reload = false
			epoch++
			t.RefreshLayout(epochSeed(epoch))
			handlerPtr = t.CodeAddr(64)
			nfd := t.Syscall(kernel.SysSocket, [6]uint64{}, nil).Val
			t.Syscall(kernel.SysBind, [6]uint64{nfd, uint64(cfg.Port)}, nil)
			// Takeover listen (Args[3]=1): atomically displace the old
			// generation's listener. From here the old epoch is draining
			// and every new connection reaches the new listener.
			if lr := t.Syscall(kernel.SysListen,
				[6]uint64{nfd, uint64(cfg.Port), 128, 1}, nil); !lr.Ok() {
				break
			}
			// Drop the parent's descriptor for the displaced listener NOW,
			// before the new generation forks: the draining workers hold
			// their own copies, and anything still open here would be
			// inherited by every new-epoch worker as a stale fd.
			t.Syscall(kernel.SysClose, [6]uint64{sfd}, nil)
			sfd = nfd
			startEpoch()
			continue
		}
		pid, status, errno := t.Wait()
		if errno == kernel.EINTR {
			continue
		}
		if errno != kernel.OK {
			break
		}
		e, tracked := workerEpoch[pid]
		if !tracked {
			// A fork that degraded at tid exhaustion: the kernel-side child
			// exited without ever being counted. Nothing to replace.
			continue
		}
		delete(workerEpoch, pid)
		active[e]--
		if e != epoch {
			// A displaced generation's worker finished draining; it is not
			// replaced, whatever its exit status.
			if active[e] == 0 {
				delete(active, e)
			}
			continue
		}
		if status != shutdownExit && status != drainExit {
			forkWorker(epoch, sfd, handlerPtr, 0, 0)
		}
	}
}

// preforkWorker is one worker process: the initial thread grows the accept
// pool to cfg.WorkerThreads vthreads (tid exhaustion shrinks the pool
// instead of failing — Spawn returns nil at the same ordered position in
// every variant), signals readiness, serves, and — once the listener dies —
// joins its siblings so every in-flight request finishes before the
// process exits.
func preforkWorker(w *core.Thread, srv *pageSrv, sfd uint64,
	myEpoch int, readyR, readyW uint64) {
	var sibs []*core.ThreadHandle
	for i := 1; i < srv.cfg.WorkerThreads; i++ {
		h := w.Spawn(func(tt *core.Thread) {
			workerAcceptLoop(tt, srv, sfd)
		})
		if h == nil {
			break
		}
		sibs = append(sibs, h)
	}
	if readyW != 0 {
		w.Syscall(kernel.SysWrite, [6]uint64{readyW}, []byte{'r'})
		// Drop the inherited pipe references: fork copied the parent's
		// descriptor table, so these copies are this process's to close
		// (the shared descriptions survive until the parent's read is
		// done). Leaving them open would fail the fd-quiescence invariant
		// long-lived workers are held to.
		w.Syscall(kernel.SysClose, [6]uint64{readyR}, nil)
		w.Syscall(kernel.SysClose, [6]uint64{readyW}, nil)
	}
	workerAcceptLoop(w, srv, sfd)
	for _, h := range sibs {
		h.Join()
	}
	status := shutdownExit
	if e, ok := readPublishedEpoch(w); ok && e > myEpoch {
		status = drainExit
	}
	w.Exit(status)
}

// readPublishedEpoch reads EpochFile through replicated syscalls: the
// master's read decides the content every variant sees, so the epoch
// comparison branches identically everywhere.
func readPublishedEpoch(w *core.Thread) (int, bool) {
	fd := w.Syscall(kernel.SysOpen, [6]uint64{kernel.ORdonly}, []byte(fleet.EpochFile))
	if !fd.Ok() {
		return 0, false
	}
	var r kernel.Ret
	for {
		r = w.Syscall(kernel.SysRead, [6]uint64{fd.Val, 128}, nil)
		if r.Err != kernel.EINTR {
			break
		}
	}
	w.Syscall(kernel.SysClose, [6]uint64{fd.Val}, nil)
	if !r.Ok() {
		return 0, false
	}
	e, _, _, ok := fleet.ParseEpochState(r.Data)
	return e, ok
}

// workerAcceptLoop is one worker thread: accept on the shared listener,
// serve the connection, repeat. EINTR from accept or recv — a signal
// delivered while parked — retries after the handler ran; a failed accept
// means this generation's listener died (shutdown, or a hot restart's
// takeover) and the loop returns with its in-flight request already
// finished.
func workerAcceptLoop(w *core.Thread, srv *pageSrv, sfd uint64) {
	// Per-thread request counter: prefork's answer to the thread-pool
	// mode's custom-lock-protected global — no sharing, no lock, and the
	// /count responses are deterministic because connection→thread
	// assignment is part of the replicated accept stream.
	var served uint32
	// Per-thread scratch buffer: every request line lands here instead of
	// in a fresh exact-sized allocation.
	buf := make([]byte, recvBufSize)
	for {
		acc := w.Syscall(kernel.SysAccept, [6]uint64{sfd}, nil)
		if acc.Err == kernel.EINTR {
			continue
		}
		if !acc.Ok() {
			return
		}
		fd := acc.Val
		var r kernel.Ret
		for {
			r = w.SyscallInto(kernel.SysRecv, [6]uint64{fd, recvBufSize}, buf)
			if r.Err != kernel.EINTR {
				break
			}
		}
		if !r.Ok() || r.Val == 0 {
			w.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
			continue
		}
		line := r.Data
		served++
		switch {
		case bytes.HasPrefix(line, []byte("GET /quit")):
			// Orderly worker suicide: the parent reaps status 1 and forks
			// a replacement. Exit-group unwinds any sibling threads at
			// their next syscall boundary.
			sendAll(w, fd, []byte("bye"))
			w.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
			w.Exit(quitExit)
		case bytes.HasPrefix(line, []byte("GET /killme")):
			// Signal-path worker death: the worker SIGTERMs itself. The
			// kill syscall's own boundary delivers the (unhandled,
			// terminating) signal, so the process exits with 128+SIGTERM
			// and the parent re-forks — the whole path runs through the
			// replicated signal schedule.
			sendAll(w, fd, []byte("bye"))
			w.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
			w.Kill(w.Getpid(), kernel.SIGTERM)
		default:
			respond(w, srv, fd, line, served)
			w.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
		}
	}
}
