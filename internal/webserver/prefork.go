package webserver

import (
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
)

// The prefork serving mode: the nginx/Apache master-worker process model
// on top of the simulated kernel's fork/wait/kill subsystem (DESIGN.md
// §2.5). The parent process binds the listener and forks cfg.Workers
// child PROCESSES; every worker inherits the listening descriptor through
// the forked (shared) descriptor table and runs a single-threaded
// accept→serve loop. The parent then becomes a reaper: it blocks in
// waitpid, and any worker that dies abnormally — a /quit request, a
// self-inflicted SIGTERM via /killme, a crash — is immediately replaced by
// a fresh fork, so worker death is a survivable, in-protocol event rather
// than an outage.
//
// Under the MVEE every piece of this is deterministic: fork hands out the
// same pids and tids in every variant (ordered call), the master's waitpid
// results and signal-delivery points are replicated, and kill's (pid,
// signo) arguments are compared — a variant signalling a different worker
// is divergence, not noise.

// Worker exit statuses. Status 0 (shutdownExit) means "the listener
// closed, do not replace me"; anything else makes the parent re-fork.
const (
	shutdownExit = 0
	quitExit     = 1
)

func runPreforkServer(t *core.Thread, cfg Config) {
	page := strings.Repeat("x", cfg.PageSize)
	response := []byte("HTTP/1.1 200 OK\r\n\r\n" + page)
	// Computed BEFORE the forks: workers inherit the parent's (variant-
	// local) handler address, exactly like a real prefork server's workers
	// inherit the parent's code layout.
	handlerPtr := t.CodeAddr(64)

	sfd := t.Syscall(kernel.SysSocket, [6]uint64{}, nil).Val
	t.Syscall(kernel.SysBind, [6]uint64{sfd, uint64(cfg.Port)}, nil)
	if lr := t.Syscall(kernel.SysListen, [6]uint64{sfd, uint64(cfg.Port), 128}, nil); !lr.Ok() {
		return
	}

	forkWorker := func() {
		t.Fork(func(w *core.Thread) {
			preforkWorker(w, cfg, sfd, response, handlerPtr)
		})
	}
	for i := 0; i < cfg.Workers; i++ {
		forkWorker()
	}

	// The reap loop: one waitpid per dead worker. EINTR (a signal landed
	// in the parent) just retries; ECHILD means every worker exited
	// cleanly after the listener closed — the server is done.
	for {
		_, status, errno := t.Wait()
		if errno == kernel.EINTR {
			continue
		}
		if errno != kernel.OK {
			break
		}
		if status != shutdownExit {
			forkWorker()
		}
	}
}

// preforkWorker is one worker process's initial (and only) thread: accept
// on the shared listener, serve the connection, repeat. EINTR from accept
// or recv — a signal delivered while parked — retries after the handler
// ran; a failed accept means the listener closed and the worker exits
// cleanly (status 0, not replaced).
func preforkWorker(w *core.Thread, cfg Config, sfd uint64, response []byte, handlerPtr uint64) {
	// Per-process request counter: prefork's answer to the thread-pool
	// mode's custom-lock-protected global — no sharing, no lock, and the
	// /count responses are deterministic because connection→worker
	// assignment is part of the replicated accept stream.
	var served uint32
	for {
		acc := w.Syscall(kernel.SysAccept, [6]uint64{sfd}, nil)
		if acc.Err == kernel.EINTR {
			continue
		}
		if !acc.Ok() {
			w.Exit(shutdownExit)
		}
		fd := acc.Val
		var r kernel.Ret
		for {
			r = w.Syscall(kernel.SysRecv, [6]uint64{fd, 4096}, nil)
			if r.Err != kernel.EINTR {
				break
			}
		}
		if !r.Ok() || r.Val == 0 {
			w.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
			continue
		}
		line := string(r.Data)
		served++
		switch {
		case strings.HasPrefix(line, "GET /quit"):
			// Orderly worker suicide: the parent reaps status 1 and forks
			// a replacement.
			sendAll(w, fd, []byte("bye"))
			w.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
			w.Exit(quitExit)
		case strings.HasPrefix(line, "GET /killme"):
			// Signal-path worker death: the worker SIGTERMs itself. The
			// kill syscall's own boundary delivers the (unhandled,
			// terminating) signal, so the process exits with 128+SIGTERM
			// and the parent re-forks — the whole path runs through the
			// replicated signal schedule.
			sendAll(w, fd, []byte("bye"))
			w.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
			w.Kill(w.Getpid(), kernel.SIGTERM)
		default:
			respond(w, cfg, fd, line, response, handlerPtr, served)
			w.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
		}
	}
}
