package webserver

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/fleet"
)

// The evented mode must pass the same serving/divergence/leak suite the
// thread-pool mode does: the only change is the concurrency model (one
// thread multiplexing connections through replicated SysPoll).

func TestEventedServesStaticPageUnderMVEE(t *testing.T) {
	cfg := Config{Port: 8180, PageSize: 4096, Evented: true, InstrumentCustomSync: true}
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	res := GenerateLoad(s.Kernel(), cfg.Port, 4, 25)
	if res.Errors > 0 || res.Responses != res.Requests {
		t.Fatalf("load: %+v", res)
	}
	if res.Bytes < res.Responses*4096 {
		t.Fatalf("short responses: %d bytes over %d responses", res.Bytes, res.Responses)
	}
	final := shutdown()
	if final.Divergence != nil {
		t.Fatalf("evented server diverged under benign load: %v", final.Divergence)
	}
}

func TestEventedCountEndpointIsConsistent(t *testing.T) {
	// The event loop is single-threaded, so the /count endpoint is
	// deterministic by construction — across variants it must never
	// diverge, with no custom lock involved at all.
	cfg := Config{Port: 8181, Evented: true}
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	for round := 0; round < 25; round++ {
		if _, err := CountProbe(s.Kernel(), cfg.Port); err != nil {
			t.Fatalf("count probe %d: %v", round, err)
		}
	}
	res := shutdown()
	if res.Divergence != nil {
		t.Fatalf("evented /count diverged: %v", res.Divergence)
	}
}

func TestEventedAttackDetectedWithTwoVariants(t *testing.T) {
	// The §5.5 security result holds unchanged in the evented mode: the
	// divergent send is caught before the leak escapes, whichever
	// concurrency model produced it.
	for _, target := range []int{0, 1} {
		cfg := Config{Port: uint16(8182 + target), Evented: true, Vulnerable: true}
		s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
		resp, err := Attack(s.Kernel(), cfg.Port, attackGadget(target, 77))
		if err == nil && strings.Contains(resp, "PWNED") {
			t.Fatalf("target=%d: leak escaped the MVEE: %q", target, resp)
		}
		res := shutdown()
		if res.Divergence == nil {
			t.Fatalf("target=%d: attack not detected", target)
		}
		if res.Divergence.Reason != "payload mismatch" {
			t.Fatalf("target=%d: unexpected reason %q", target, res.Divergence.Reason)
		}
	}
}

func TestEventedBenignTrafficWithVulnerableEndpointDoesNotDiverge(t *testing.T) {
	cfg := Config{Port: 8190, Evented: true, Vulnerable: true, InstrumentCustomSync: true}
	s, shutdown := startServer(t, cfg, 2, agent.WallOfClocks)
	res := GenerateLoad(s.Kernel(), cfg.Port, 4, 20)
	if res.Errors > 0 {
		t.Fatalf("benign load errored: %+v", res)
	}
	final := shutdown()
	if final.Divergence != nil {
		t.Fatalf("false positive: %v", final.Divergence)
	}
}

func TestEventedFleetServes(t *testing.T) {
	// The fleet gateway drives the evented mode exactly like the threaded
	// one: warm spawn probes, watchdog closes, and divergence quarantine
	// all ride the same ClientConn surface.
	cfg := Config{Port: 8191, PageSize: 512, Evented: true, Vulnerable: true, InstrumentCustomSync: true}
	f, err := fleet.New(FleetConfig(cfg, core.Options{
		Variants: 2, Agent: agent.WallOfClocks, ASLR: true, DCL: true, Seed: 11, MaxThreads: 64,
	}, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 32; i++ {
		resp, err := f.Do([]byte("GET /"))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !strings.Contains(string(resp), "200 OK") {
			t.Fatalf("request %d: %q", i, resp)
		}
	}
	// Burn one member with a layout-targeted exploit; the fleet must
	// quarantine and keep serving through the evented pool.
	f.Do([]byte(fmt.Sprintf("POST /upload %x", attackGadget(0, 11))))
	for i := 0; i < 16; i++ {
		if _, err := f.Do([]byte("GET /")); err != nil {
			t.Fatalf("post-attack request %d: %v", i, err)
		}
	}
	s := f.Stats()
	if s.Divergences == 0 {
		t.Fatal("exploit did not burn a session")
	}
	if s.Recycled == 0 {
		t.Fatal("burned session was not hot-replaced")
	}
}
