package webserver

import (
	"repro/internal/core"
	"repro/internal/fleet"
)

// FleetConfig is the fleet-backed serving mode for the §5.5 nginx model:
// it wires this server program into a fleet.Config so the workload can be
// served from a pool of `size` concurrent MVEE sessions behind a gateway
// instead of one session per mvee.Run. Each pool member runs its own
// kernel, so every member listens on cfg.Port without colliding; sess is
// the per-session MVEE template (variants, agent, policy, diversity).
//
// Tune the remaining fleet.Config fields (dispatch policy, queue bound,
// forensics) on the returned value before passing it to fleet.New.
func FleetConfig(cfg Config, sess core.Options, size int) fleet.Config {
	cfg.fill()
	return fleet.Config{
		Size:    size,
		Session: sess,
		Program: Program(cfg),
		Port:    cfg.Port,
	}
}
