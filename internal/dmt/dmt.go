// Package dmt implements a token-passing deterministic multithreading
// (DMT) scheduler in the style of Kendo [32]: threads take turns holding a
// token; a thread may perform communicating operations only while holding
// the token, and passes it on once its quantum of *logical progress*
// (retired instructions, modelled as abstract cost units) is exhausted.
//
// The package exists to reproduce the paper's §2.1 argument for why DMT is
// the wrong tool for an MVEE over *diversified* variants: logical progress
// is measured in instructions, and diversity transformations (NOP
// insertion, substitution, inlining differences) change instruction
// counts. Each variant is then perfectly deterministic in isolation — but
// deterministic with a *different* schedule, so the variants still diverge
// from each other. The record/replay agents sidestep this by replaying one
// variant's (nondeterministic) order in the others instead of making each
// variant independently deterministic.
package dmt

import "sync"

// Scheduler serializes the communicating sections of a fixed set of
// threads with a deterministic round-robin token.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	holder  int // thread currently holding the token
	quantum uint64
	used    uint64
	live    []bool
	nlive   int
}

// New creates a scheduler for threads 0..threads-1 with the given quantum
// of cost units per turn. Thread 0 holds the token first.
func New(threads int, quantum uint64) *Scheduler {
	s := &Scheduler{quantum: quantum, live: make([]bool, threads), nlive: threads}
	for i := range s.live {
		s.live[i] = true
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire blocks until tid holds the token. Communicating operations may
// only run between Acquire and the token passing on.
func (s *Scheduler) Acquire(tid int) {
	s.mu.Lock()
	for s.holder != tid {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Charge adds cost units of logical progress to the current holder and
// passes the token when the quantum is exhausted. cost models the retired
// instruction count of the code just executed — the quantity hardware
// performance counters measure in real DMT systems, and exactly what
// diversity perturbs.
func (s *Scheduler) Charge(tid int, cost uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.holder != tid {
		panic("dmt: Charge without token")
	}
	s.used += cost
	if s.used >= s.quantum {
		s.passLocked()
	}
}

// Yield passes the token voluntarily (e.g. before blocking).
func (s *Scheduler) Yield(tid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.holder == tid {
		s.passLocked()
	}
}

// Exit removes tid from the rotation, passing the token if it holds it.
func (s *Scheduler) Exit(tid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live[tid] = false
	s.nlive--
	if s.holder == tid && s.nlive > 0 {
		s.passLocked()
	}
}

func (s *Scheduler) passLocked() {
	s.used = 0
	if s.nlive == 0 {
		return
	}
	next := s.holder
	for {
		next = (next + 1) % len(s.live)
		if s.live[next] {
			break
		}
	}
	s.holder = next
	s.cond.Broadcast()
}

// Holder reports the current token holder (for tests).
func (s *Scheduler) Holder() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.holder
}
