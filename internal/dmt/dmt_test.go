package dmt

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
)

// schedule runs `threads` workers that each append their tid to a trace on
// every token turn, with per-thread instruction costs scaled by costFactor
// (the diversity knob). The returned trace is the DMT schedule.
func schedule(threads int, iters int, quantum uint64, costFactor []uint64) []int {
	s := New(threads, quantum)
	var mu sync.Mutex
	var trace []int
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Acquire(tid)
				mu.Lock()
				trace = append(trace, tid)
				mu.Unlock()
				s.Charge(tid, costFactor[tid])
			}
			s.Exit(tid)
		}(tid)
	}
	wg.Wait()
	return trace
}

func TestScheduleIsDeterministic(t *testing.T) {
	costs := []uint64{10, 10, 10}
	a := schedule(3, 50, 25, costs)
	b := schedule(3, 50, 25, costs)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a[:i+1], b[:i+1])
		}
	}
}

func TestDiversityChangesTheSchedule(t *testing.T) {
	// §2.1: diversified variants retire different instruction counts for
	// the same source operations, so quantum exhaustion lands at
	// different points and the (individually deterministic) schedules
	// differ between variants.
	base := schedule(3, 50, 25, []uint64{10, 10, 10})
	diversified := schedule(3, 50, 25, []uint64{13, 10, 10}) // variant with NOP-inflated thread 0
	same := true
	for i := range base {
		if base[i] != diversified[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("instruction-count diversity did not perturb the DMT schedule; the §2.1 incompatibility argument needs it to")
	}
}

func TestTokenSerializesHolders(t *testing.T) {
	s := New(4, 5)
	var inside, maxInside int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Acquire(tid)
				mu.Lock()
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				mu.Unlock()
				// Still holding the token here: nobody else may be inside.
				mu.Lock()
				inside--
				mu.Unlock()
				s.Charge(tid, 5)
			}
			s.Exit(tid)
		}(tid)
	}
	wg.Wait()
	if maxInside != 1 {
		t.Fatalf("token failed to serialize: %d holders at once", maxInside)
	}
}

func TestExitPassesToken(t *testing.T) {
	s := New(2, 100)
	done := make(chan struct{})
	go func() {
		s.Acquire(1)
		s.Exit(1)
		close(done)
	}()
	// Thread 0 holds the token; exiting must hand it over.
	s.Acquire(0)
	s.Exit(0)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("token never passed to thread 1")
	}
}

func TestChargeWithoutTokenPanics(t *testing.T) {
	s := New(2, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("Charge without token did not panic")
		}
	}()
	s.Charge(1, 5) // thread 0 holds the token
}

// dmtProgram runs a DMT-scheduled two-thread interleaving under the MVEE.
// The per-variant cost factor models diversity: variant v's thread 0
// retires cost0(v) units per iteration. Each turn's (thread, value) pair
// feeds a rolling hash that is written out at the end, so schedule
// differences between variants become payload divergence.
func dmtProgram(quantum uint64, cost0 func(variantID int) uint64) core.Program {
	return core.Program{Name: "dmt-under-mvee", Main: func(t *core.Thread) {
		v := t.Variant()
		costs := []uint64{cost0(v), 10}
		s := New(2, quantum)
		var mu sync.Mutex
		var hash uint64
		var order []int
		hs := make([]*core.ThreadHandle, 2)
		for tid := 0; tid < 2; tid++ {
			tid := tid
			hs[tid] = t.Spawn(func(tt *core.Thread) {
				for i := 0; i < 40; i++ {
					s.Acquire(tid)
					mu.Lock()
					hash = hash*31 + uint64(tid) + 1
					order = append(order, tid)
					mu.Unlock()
					s.Charge(tid, costs[tid])
				}
				s.Exit(tid)
			})
		}
		for _, h := range hs {
			h.Join()
		}
		fd := t.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/dmt")).Val
		t.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("%x", hash)))
	}}
}

func runDMT(t *testing.T, prog core.Program) *core.Result {
	t.Helper()
	s := core.NewSession(core.Options{Variants: 2, ASLR: true, Seed: 3, MaxThreads: 8}, prog)
	done := make(chan *core.Result, 1)
	go func() { done <- s.Run() }()
	select {
	case res := <-done:
		return res
	case <-time.After(60 * time.Second):
		s.Kill()
		t.Fatal("deadlock")
		return nil
	}
}

func TestDMTIdenticalVariantsLockstepFine(t *testing.T) {
	// Without diversity, DMT gives all variants the same schedule: the
	// MVEE sees no divergence even with no synchronization agent.
	res := runDMT(t, dmtProgram(25, func(int) uint64 { return 10 }))
	if res.Divergence != nil {
		t.Fatalf("identical DMT variants diverged: %v", res.Divergence)
	}
}

func TestDMTDivergesUnderDiversity(t *testing.T) {
	// The §2.1 result: with per-variant instruction counts, each variant
	// has a fixed but different schedule — and the MVEE flags divergence.
	res := runDMT(t, dmtProgram(25, func(v int) uint64 {
		return 10 + 3*uint64(v) // diversity inflates variant 1's thread 0
	}))
	if res.Divergence == nil {
		t.Fatal("diversified DMT variants did not diverge; the paper's incompatibility argument expects divergence")
	}
}
