// Package trace serializes MVEE execution traces for offline record/replay
// (the RecPlay [35] mode of operation discussed in §6): a recorded session
// captures everything nondeterministic about the master's execution — the
// per-thread synchronization tickets and the per-thread system-call
// records — and a later session can replay it deterministically without a
// live master. Typical use: capture a failing production run, replay it
// under instrumentation.
package trace

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/agent"
	"repro/internal/monitor"
)

// Format version; bump on incompatible changes to the encoded layout.
// Version 2: monitor.Record stores its input payload inline/spilled
// (PayloadLen/Inline/Spill) instead of a single Data slice.
// Version 3: Record carries Ret.Sig — the signal delivered at the
// record's syscall boundary — so recorded signal schedules replay.
// Version 4: Record carries Ret.Inj — the fault-injection marker — so a
// session recorded under a chaos plan replays its injected faults
// byte-identically instead of re-rolling them.
// Version 5: two Sysno values appended — SysWritev and SysSendfile (the
// vectored/zero-copy transfer calls). The record layout is unchanged; the
// bump exists because Sysno values ARE the wire format, and a v4 reader
// would render the new numbers as unknown syscalls.
const Version = 5

// Trace is one recorded execution.
type Trace struct {
	Version    int
	Program    string
	MaxThreads int
	WallSize   int
	// SyncOps[tid] is the stream of wall-of-clocks tickets thread tid's
	// sync ops consumed, in program order.
	SyncOps [][]agent.WEntry
	// Syscalls[tid] is the stream of monitored syscall records of thread
	// tid, including the final thread-exit markers.
	Syscalls [][]monitor.Record
}

// Ops returns the total number of recorded sync ops.
func (t *Trace) Ops() int {
	n := 0
	for _, s := range t.SyncOps {
		n += len(s)
	}
	return n
}

// Calls returns the total number of recorded syscall records (excluding
// exit markers).
func (t *Trace) Calls() int {
	n := 0
	for _, s := range t.Syscalls {
		for _, r := range s {
			if !r.Exit {
				n++
			}
		}
	}
	return n
}

// Encode writes the trace to w in gob format.
func (t *Trace) Encode(w io.Writer) error {
	t.Version = Version
	if err := gob.NewEncoder(w).Encode(t); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// Decode reads a trace from r.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if t.Version != Version {
		return nil, fmt.Errorf("trace: version %d, want %d", t.Version, Version)
	}
	return &t, nil
}
