package trace_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/trace"
)

// counterProgram is the recorded workload: contended mutex, syscalls, and
// a published total.
func counterProgram(threads, iters int) core.Program {
	return core.Program{Name: "rec-counter", Main: func(th *core.Thread) {
		mu := newMutex(th)
		n := 0
		hs := make([]*core.ThreadHandle, threads)
		for i := range hs {
			hs[i] = th.Spawn(func(tt *core.Thread) {
				for j := 0; j < iters; j++ {
					mu.lock(tt)
					n++
					mu.unlock(tt)
					if j%50 == 0 {
						tt.Syscall(kernel.SysGetpid, [6]uint64{}, nil)
					}
				}
			})
		}
		for _, h := range hs {
			h.Join()
		}
		fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/total")).Val
		th.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("%d", n)))
	}}
}

type mutex struct{ w *core.SyncVar }

func newMutex(t *core.Thread) *mutex { return &mutex{w: t.NewSyncVar()} }
func (m *mutex) lock(t *core.Thread) {
	if t.CAS(m.w, 0, 1) {
		return
	}
	for t.Xchg(m.w, 2) != 0 {
		t.FutexWait(m.w, 2)
	}
}
func (m *mutex) unlock(t *core.Thread) {
	if t.Xchg(m.w, 0) == 2 {
		t.FutexWake(m.w, 1<<30)
	}
}

func runGuarded(t *testing.T, s *core.Session) *core.Result {
	t.Helper()
	done := make(chan *core.Result, 1)
	go func() { done <- s.Run() }()
	select {
	case res := <-done:
		return res
	case <-time.After(60 * time.Second):
		s.Kill()
		t.Fatal("deadlock")
		return nil
	}
}

// record runs the program with tracing on and returns the trace.
func record(t *testing.T, prog core.Program, variants int) *trace.Trace {
	t.Helper()
	s := core.NewSession(core.Options{
		Variants: variants, Record: true, ASLR: true, Seed: 8, MaxThreads: 16,
	}, prog)
	res := runGuarded(t, s)
	if res.Divergence != nil {
		t.Fatalf("recording diverged: %v", res.Divergence)
	}
	if res.Trace == nil {
		t.Fatal("no trace produced")
	}
	return res.Trace
}

func TestRecordCapturesEverything(t *testing.T) {
	tr := record(t, counterProgram(4, 100), 1)
	if tr.Ops() == 0 {
		t.Fatal("no sync ops recorded")
	}
	if tr.Calls() == 0 {
		t.Fatal("no syscalls recorded")
	}
	// Thread 0 (main) plus 4 workers leave exit markers.
	exits := 0
	for _, stream := range tr.Syscalls {
		for _, r := range stream {
			if r.Exit {
				exits++
			}
		}
	}
	if exits != 5 {
		t.Fatalf("exit markers = %d, want 5", exits)
	}
}

func TestRecordWorksAlongsideLiveSlaves(t *testing.T) {
	// Recording with 2 live variants: the tape is a third consumer and
	// must not disturb lockstep.
	tr := record(t, counterProgram(2, 50), 2)
	if tr.Ops() == 0 || tr.Calls() == 0 {
		t.Fatal("empty trace")
	}
}

func TestReplayReproducesRecordedRun(t *testing.T) {
	prog := counterProgram(4, 100)
	tr := record(t, prog, 1)

	s := core.NewSession(core.Options{
		Replay: tr, ASLR: true, Seed: 999, // different layout: replay is positional
	}, prog)
	res := runGuarded(t, s)
	if res.Divergence != nil {
		t.Fatalf("replay diverged: %v", res.Divergence)
	}
	if res.Syscalls != uint64(tr.Calls()) {
		t.Fatalf("replayed %d syscalls, trace has %d", res.Syscalls, tr.Calls())
	}
	if res.SyncOps != uint64(tr.Ops()) {
		t.Fatalf("replayed %d sync ops, trace has %d", res.SyncOps, tr.Ops())
	}
}

func TestReplayIsDeterministicAcrossRuns(t *testing.T) {
	prog := counterProgram(3, 80)
	tr := record(t, prog, 1)
	for i := 0; i < 3; i++ {
		s := core.NewSession(core.Options{Replay: tr, Seed: int64(i)}, prog)
		res := runGuarded(t, s)
		if res.Divergence != nil {
			t.Fatalf("replay %d diverged: %v", i, res.Divergence)
		}
	}
}

func TestReplayDetectsMutatedProgram(t *testing.T) {
	tr := record(t, counterProgram(2, 50), 1)
	// Replay a DIFFERENT program against the trace: an extra syscall must
	// be flagged as divergence from the recorded behavior.
	mutated := core.Program{Name: "mutated", Main: func(th *core.Thread) {
		th.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil) // not in trace position 0
	}}
	s := core.NewSession(core.Options{Replay: tr}, mutated)
	res := runGuarded(t, s)
	if res.Divergence == nil {
		t.Fatal("mutated program replayed without divergence")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := record(t, counterProgram(2, 40), 1)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ops() != tr.Ops() || back.Calls() != tr.Calls() {
		t.Fatalf("round-trip lost data: %d/%d vs %d/%d",
			back.Ops(), back.Calls(), tr.Ops(), tr.Calls())
	}
	if back.Program != "rec-counter" {
		t.Fatalf("program name = %q", back.Program)
	}
	// A decoded trace replays.
	s := core.NewSession(core.Options{Replay: back}, counterProgram(2, 40))
	res := runGuarded(t, s)
	if res.Divergence != nil {
		t.Fatalf("decoded trace failed to replay: %v", res.Divergence)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := trace.Decode(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage decoded")
	}
}
