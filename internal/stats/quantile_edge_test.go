package stats

import "testing"

// Quantile edge cases on the atomic histogram, through the same Snapshot
// path the telemetry matrix uses: an empty histogram, a population that
// lands entirely in one bucket, and a merge of shards with disjoint value
// ranges (the per-thread-shard layout of telemetry.Matrix).

func TestAtomicHistogramQuantileEmpty(t *testing.T) {
	var h AtomicHistogram
	s := h.Snapshot()
	if s.Count() != 0 {
		t.Fatalf("empty count = %d", s.Count())
	}
	for _, p := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if q := s.Quantile(p); q != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", p, q)
		}
	}
	if s.MinValue() != 0 || s.MaxValue() != 0 || s.MeanValue() != 0 {
		t.Fatalf("empty extrema/mean nonzero: min=%d max=%d mean=%v",
			s.MinValue(), s.MaxValue(), s.MeanValue())
	}
	if s.String() != "no samples" {
		t.Fatalf("empty String = %q", s.String())
	}
}

func TestAtomicHistogramQuantileSingleBucket(t *testing.T) {
	// Every observation identical: whatever the bucket midpoint says, the
	// [min, max] clamp must force every quantile to the exact value.
	var h AtomicHistogram
	const v = 777
	for i := 0; i < 100; i++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.MinValue() != v || s.MaxValue() != v {
		t.Fatalf("min=%d max=%d, want both %d", s.MinValue(), s.MaxValue(), v)
	}
	for _, p := range []float64{0, 0.01, 0.5, 0.9, 0.99, 1} {
		if q := s.Quantile(p); q != v {
			t.Fatalf("Quantile(%v) = %d, want %d", p, q, v)
		}
	}
	// Same for an all-zero population (bucket 0 is special-cased).
	var z AtomicHistogram
	for i := 0; i < 10; i++ {
		z.Observe(0)
	}
	zs := z.Snapshot()
	if zs.Count() != 10 || zs.Quantile(0.5) != 0 || zs.Quantile(1) != 0 {
		t.Fatalf("zero bucket: count=%d p50=%d p100=%d", zs.Count(), zs.Quantile(0.5), zs.Quantile(1))
	}
}

func TestAtomicHistogramMergeDisjointShards(t *testing.T) {
	// Two shards observing disjoint ranges — the layout of a sharded
	// telemetry matrix where different threads see different latencies.
	// The merged snapshot must behave like one observer saw both ranges:
	// min from one shard, max from the other, and the median sitting at
	// the boundary between them.
	var lo, hi AtomicHistogram
	for i := 0; i < 100; i++ {
		lo.Observe(10) // all of [shard lo] in bucket 4
		hi.Observe(1 << 20)
	}
	merged := lo.Snapshot()
	hs := hi.Snapshot()
	merged.Merge(&hs)
	if merged.Count() != 200 {
		t.Fatalf("merged count = %d", merged.Count())
	}
	if merged.MinValue() != 10 || merged.MaxValue() != 1<<20 {
		t.Fatalf("merged extrema = [%d, %d], want [10, %d]",
			merged.MinValue(), merged.MaxValue(), 1<<20)
	}
	// The 100th observation (p50 by nearest rank) is the last of the low
	// shard: the quantile must report the low bucket (within resolution,
	// i.e. under 2x the true value of 10), not leak into the high range.
	if q := merged.Quantile(0.5); q < 10 || q >= 20 {
		t.Fatalf("merged p50 = %d, want a low-shard value in [10, 20)", q)
	}
	if q := merged.Quantile(0.51); q != 1<<20 {
		t.Fatalf("merged p51 = %d, want %d (first high-shard observation)", q, 1<<20)
	}
	// Merging an empty shard is the identity.
	var empty AtomicHistogram
	es := empty.Snapshot()
	before := merged
	merged.Merge(&es)
	if merged != before {
		t.Fatal("merging an empty snapshot changed the histogram")
	}
}
