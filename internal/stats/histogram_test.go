package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.MeanValue() != 0 || h.String() != "no samples" {
		t.Fatal("empty histogram not zero-valued")
	}
	for _, v := range []uint64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 100 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.MinValue() != 10 || h.MaxValue() != 40 {
		t.Fatalf("min=%d max=%d", h.MinValue(), h.MaxValue())
	}
	if !approx(h.MeanValue(), 25) {
		t.Fatalf("mean=%v", h.MeanValue())
	}
}

func TestHistogramQuantileWithinBucket(t *testing.T) {
	// A quantile must land within a factor of 2 of the true quantile (the
	// bucket resolution guarantee), and within [min, max] exactly.
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(uint64(i))
	}
	for _, tc := range []struct{ p, exact float64 }{
		{0.5, 500}, {0.9, 900}, {0.99, 990}, {1.0, 1000},
	} {
		got := float64(h.Quantile(tc.p))
		if got < tc.exact/2 || got > tc.exact*2 {
			t.Fatalf("p%v = %v, exact %v: outside bucket resolution", tc.p, got, tc.exact)
		}
	}
	if h.Quantile(0) < h.MinValue() || h.Quantile(1) > h.MaxValue() {
		t.Fatal("quantile escaped [min, max]")
	}
}

func TestHistogramMergeEqualsPooled(t *testing.T) {
	// The aggregation contract: merging per-session histograms must be
	// indistinguishable from one observer seeing every sample.
	rng := rand.New(rand.NewSource(42))
	var pooled Histogram
	parts := make([]Histogram, 7)
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(1 << 20))
		pooled.Observe(v)
		parts[rng.Intn(len(parts))].Observe(v)
	}
	var merged Histogram
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != pooled {
		t.Fatalf("merged != pooled:\n  merged %v\n  pooled %v", merged.String(), pooled.String())
	}
}

func TestHistogramMergeCommutes(t *testing.T) {
	f := func(a, b []uint16) bool {
		var ha, hb Histogram
		for _, v := range a {
			ha.Observe(uint64(v))
		}
		for _, v := range b {
			hb.Observe(uint64(v))
		}
		ab, ba := ha, hb
		ab.Merge(&hb)
		ba.Merge(&ha)
		return ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
