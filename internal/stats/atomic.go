package stats

import (
	"sync/atomic"
	"time"
)

// AtomicHistogram is the internally synchronized sibling of Histogram: the
// same power-of-two buckets and exact count/sum/min/max, but every Observe
// is lock-free — a handful of atomic adds plus (rarely) a min/max
// compare-and-swap. It exists for hot paths where a mutex around a plain
// Histogram would put lock traffic on every request (see internal/fleet's
// gateway): concurrent observers never block each other, and a slow reader
// can never hold a recording goroutine up.
//
// Observations are totally ordered per field but not across fields, so a
// concurrent Snapshot may see a count that includes an observation whose
// sum does not (and vice versa). For latency telemetry that skew is
// harmless and momentary; quantiles remain correct to bucket resolution.
//
// The zero value is an empty histogram, ready to use.
type AtomicHistogram struct {
	count atomic.Uint64
	sum   atomic.Uint64
	// Extrema are stored shifted by one (0 means "unset") so the zero
	// value needs no initialization and a genuine 0 observation is still
	// distinguishable.
	minP1   atomic.Uint64
	maxP1   atomic.Uint64
	buckets [65]atomic.Uint64
}

// Observe records one value (nanoseconds for latency use). Safe for
// concurrent use; never blocks.
func (h *AtomicHistogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.minP1.Load()
		if cur != 0 && cur-1 <= v {
			break
		}
		if h.minP1.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.maxP1.Load()
		if cur != 0 && cur-1 >= v {
			break
		}
		if h.maxP1.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// ObserveDuration records a duration (negative durations count as zero).
func (h *AtomicHistogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations so far.
func (h *AtomicHistogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy as a plain Histogram, suitable for
// Merge-based aggregation and quantile queries. See the type comment for
// the (benign) cross-field skew a concurrent snapshot can observe.
func (h *AtomicHistogram) Snapshot() Histogram {
	var s Histogram
	s.count = h.count.Load()
	s.sum = h.sum.Load()
	if m := h.minP1.Load(); m > 0 {
		s.min = m - 1
	}
	if m := h.maxP1.Load(); m > 0 {
		s.max = m - 1
	}
	for i := range s.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}
