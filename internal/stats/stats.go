// Package stats provides the small statistical helpers the benchmark
// harness uses to aggregate results into the paper's tables: means,
// geometric means, rates, and formatted slowdown tables.
//
// For fleet-level aggregation (internal/fleet), the package also provides
// Histogram: a power-of-two-bucketed latency histogram designed to be
// collected per session (or per gateway worker) without locking and then
// folded together with Merge. Merge is exact bucket-wise addition —
// commutative and associative — so the merged histogram of N sessions is
// identical to the histogram a single global observer would have recorded
// over the pooled samples, and its Quantile answers are the pooled
// population's quantiles at bucket resolution. See the Histogram type for
// the full contract.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input; panics on
// non-positive values, which would indicate a broken measurement).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Min and Max return the extrema of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Rate converts a count over a duration in seconds into a per-second rate
// (0 if the duration is not positive).
func Rate(count uint64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(count) / seconds
}

// Table renders rows of labelled values as an aligned text table, in the
// style of the paper's tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
