package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !approx(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty not 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !approx(GeoMean([]float64{1, 4}), 2) {
		t.Fatalf("geomean = %v", GeoMean([]float64{1, 4}))
	}
	if GeoMean(nil) != 0 {
		t.Fatal("geomean of empty not 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("geomean of non-positive did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMedian(t *testing.T) {
	if !approx(Median([]float64{5, 1, 3}), 3) {
		t.Fatal("odd median wrong")
	}
	if !approx(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Fatal("even median wrong")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
}

func TestRate(t *testing.T) {
	if !approx(Rate(100, 2), 50) {
		t.Fatal("rate wrong")
	}
	if Rate(100, 0) != 0 {
		t.Fatal("rate with zero duration not 0")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.Add("dedup", "1.78x")
	tbl.Add("blackscholes", "1.01x")
	out := tbl.String()
	if !strings.Contains(out, "dedup") || !strings.Contains(out, "blackscholes") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: every line starts the second column at the same offset.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[3][idx:], "1.01x") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

// Properties: GeoMean <= Mean (AM-GM), both bounded by min/max.
func TestAggregateProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1 // positive
		}
		g, m := GeoMean(xs), Mean(xs)
		return g <= m+1e-9 && g >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
