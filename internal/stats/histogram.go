package stats

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Histogram is a fixed-size, power-of-two-bucketed latency histogram.
// Bucket b (b >= 1) counts observations in [2^(b-1), 2^b) nanoseconds;
// bucket 0 counts zero observations. Count, Sum, Min and Max are tracked
// exactly, so Mean is exact and only quantiles are subject to bucket
// resolution (a quantile is off by at most a factor of 2, and in practice
// by much less because the bucket midpoint is reported).
//
// Merge semantics (fleet-level aggregation): histograms form a commutative
// monoid under Merge — bucket counts, Count and Sum add; Min and Max take
// the extrema. Merging the per-session (or per-worker) histograms of a
// fleet therefore yields exactly the histogram that a single global
// observer would have recorded over the pooled samples, regardless of
// merge order or grouping; quantiles of the merged histogram are the
// quantiles of the pooled population at bucket resolution. This is what
// makes per-session collection safe: each session observes into its own
// unsynchronized Histogram and the fleet folds them together only when
// stats are read.
//
// A Histogram is NOT internally synchronized. The intended pattern is one
// Histogram per producer goroutine, merged into a fresh Histogram by the
// reader (see internal/fleet's Stats).
type Histogram struct {
	count uint64
	sum   uint64
	min   uint64
	max   uint64
	// buckets[bits.Len64(v)] counts v; index 0 holds exact zeros and the
	// last index holds everything with the top bit set.
	buckets [65]uint64
}

// Observe records one value (nanoseconds for latency use).
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// bucketOf returns the bucket index for value v (shared with
// AtomicHistogram so both histograms agree on bucketing).
func bucketOf(v uint64) int { return bits.Len64(v) }

// ObserveDuration records a duration (negative durations count as zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Merge folds o into h (bucket-wise addition; see the type comment for
// the aggregation semantics). o is unchanged.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// MinValue and MaxValue return the exact extrema (0 for empty).
func (h *Histogram) MinValue() uint64 { return h.min }

// MaxValue returns the exact maximum observation (0 for empty).
func (h *Histogram) MaxValue() uint64 { return h.max }

// MeanValue returns the exact arithmetic mean (0 for empty).
func (h *Histogram) MeanValue() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value below which a fraction p (0..1) of the
// observations fall, at bucket resolution: the midpoint of the bucket
// containing the p-th observation, clamped to the exact [min, max] range.
func (h *Histogram) Quantile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Nearest-rank: the smallest observation with at least ceil(p*n)
	// observations at or below it, so small samples don't bias the upper
	// quantiles low (p99 of 10 samples is the maximum, not the 9th).
	target := uint64(math.Ceil(p * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum >= target {
			v := bucketMid(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// bucketMid returns the representative value of bucket b: the midpoint of
// [2^(b-1), 2^b).
func bucketMid(b int) uint64 {
	if b == 0 {
		return 0
	}
	lo := uint64(1) << (b - 1)
	return lo + lo/2
}

// String renders a compact latency summary, reading the values as
// nanoseconds.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "no samples"
	}
	d := func(v uint64) time.Duration { return time.Duration(v) }
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		h.count, time.Duration(h.MeanValue()),
		d(h.Quantile(0.50)), d(h.Quantile(0.90)), d(h.Quantile(0.99)), d(h.max))
}
