package stats

import (
	"sync"
	"testing"
)

func TestAtomicHistogramMatchesPlainHistogram(t *testing.T) {
	var a AtomicHistogram
	var p Histogram
	vals := []uint64{0, 1, 5, 17, 1000, 1 << 40, 3, 3, 3}
	for _, v := range vals {
		a.Observe(v)
		p.Observe(v)
	}
	s := a.Snapshot()
	if s.Count() != p.Count() || s.Sum() != p.Sum() ||
		s.MinValue() != p.MinValue() || s.MaxValue() != p.MaxValue() {
		t.Fatalf("snapshot %v != plain %v", s.String(), p.String())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if s.Quantile(q) != p.Quantile(q) {
			t.Fatalf("q%.2f: %d != %d", q, s.Quantile(q), p.Quantile(q))
		}
	}
}

func TestAtomicHistogramZeroObservation(t *testing.T) {
	var a AtomicHistogram
	a.Observe(0)
	s := a.Snapshot()
	if s.Count() != 1 || s.MinValue() != 0 || s.MaxValue() != 0 {
		t.Fatalf("after Observe(0): %s", s.String())
	}
}

func TestAtomicHistogramEmptySnapshot(t *testing.T) {
	var a AtomicHistogram
	s := a.Snapshot()
	if s.Count() != 0 || s.MinValue() != 0 || s.MaxValue() != 0 {
		t.Fatalf("empty snapshot: %s", s.String())
	}
	// Merging an empty snapshot must be a no-op.
	var into Histogram
	into.Observe(7)
	into.Merge(&s)
	if into.Count() != 1 || into.MinValue() != 7 {
		t.Fatalf("merge of empty snapshot changed target: %s", into.String())
	}
}

// Concurrent observers: exact count/sum and correct extrema, under -race.
func TestAtomicHistogramConcurrent(t *testing.T) {
	var a AtomicHistogram
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Observe(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := a.Snapshot()
	n := uint64(workers * per)
	if s.Count() != n {
		t.Fatalf("count = %d, want %d", s.Count(), n)
	}
	if s.Sum() != n*(n-1)/2 {
		t.Fatalf("sum = %d, want %d", s.Sum(), n*(n-1)/2)
	}
	if s.MinValue() != 0 || s.MaxValue() != n-1 {
		t.Fatalf("extrema [%d, %d], want [0, %d]", s.MinValue(), s.MaxValue(), n-1)
	}
}
