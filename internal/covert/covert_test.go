package covert

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/variant"
)

// masterSecret computes the secret of the master variant via the layout
// oracle: the first 8-byte data allocation in variant 0's space under the
// session's seed — the value the slave has no legitimate way to know.
func masterSecret(seed int64) uint64 {
	space := variant.NewSpace(0, variant.Options{ASLR: true, Seed: seed})
	return space.AllocData(8) >> 3 & (1<<SecretBits - 1)
}

// slaveSecret is the slave's own value, to prove the channels transmit the
// master's value rather than echoing local state.
func slaveSecret(seed int64) uint64 {
	space := variant.NewSpace(1, variant.Options{ASLR: true, Seed: seed})
	return space.AllocData(8) >> 3 & (1<<SecretBits - 1)
}

func runChannel(t *testing.T, prog core.Program, seed int64) (*core.Session, *core.Result) {
	t.Helper()
	s := core.NewSession(core.Options{
		Variants: 2, Agent: agent.WallOfClocks, ASLR: true, Seed: seed, MaxThreads: 8,
	}, prog)
	done := make(chan *core.Result, 1)
	go func() { done <- s.Run() }()
	select {
	case res := <-done:
		return s, res
	case <-time.After(120 * time.Second):
		s.Kill()
		t.Fatal("covert channel program deadlocked")
		return nil, nil
	}
}

func TestTimestampChannelLeaksBothSecrets(t *testing.T) {
	// Find a seed where the two variants hash to opposite roles, so each
	// phase carries exactly one variant's secret (the paper's exchange).
	seed := int64(0)
	for s := int64(1); s < 200; s++ {
		if Role(masterSecret(s)) != Role(slaveSecret(s)) && masterSecret(s) != slaveSecret(s) {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no seed with opposite roles found")
	}
	want := [2]uint64{}
	want[Role(masterSecret(seed))] = masterSecret(seed)
	want[Role(slaveSecret(seed))] = slaveSecret(seed)

	s, res := runChannel(t, TimestampChannel(), seed)
	// The leak must escape WITHOUT divergence: that is the point of the
	// PoC (§5.4) — the monitor cannot tell.
	if res.Divergence != nil {
		t.Fatalf("channel caused divergence: %v", res.Divergence)
	}
	got, ok := s.Kernel().ReadFile("/covert-ts")
	if !ok {
		t.Fatal("no leak written")
	}
	if string(got) != fmt.Sprintf("%04x-%04x", want[0], want[1]) {
		t.Fatalf("recovered %s, want %04x-%04x (both variants' secrets)", got, want[0], want[1])
	}
}

func TestTrylockChannelLeaksMasterSecret(t *testing.T) {
	const seed = 5678
	want := masterSecret(seed)
	if other := slaveSecret(seed); other == want {
		t.Fatalf("test is vacuous: both variants share secret %04x", want)
	}
	s, res := runChannel(t, TrylockChannel(), seed)
	if res.Divergence != nil {
		t.Fatalf("channel caused divergence: %v", res.Divergence)
	}
	got, ok := s.Kernel().ReadFile("/covert-lock")
	if !ok {
		t.Fatal("no leak written")
	}
	if string(got) != fmt.Sprintf("%04x", want) {
		t.Fatalf("recovered %s, master secret %04x", got, want)
	}
}

func TestChannelsWorkWithThreeVariants(t *testing.T) {
	// All slaves recover the same (master's) value; the write payloads
	// agree everywhere.
	const seed = 42
	s := core.NewSession(core.Options{
		Variants: 3, Agent: agent.WallOfClocks, ASLR: true, Seed: seed, MaxThreads: 8,
	}, TrylockChannel())
	done := make(chan *core.Result, 1)
	go func() { done <- s.Run() }()
	select {
	case res := <-done:
		if res.Divergence != nil {
			t.Fatalf("divergence: %v", res.Divergence)
		}
	case <-time.After(120 * time.Second):
		s.Kill()
		t.Fatal("deadlock")
	}
	got, _ := s.Kernel().ReadFile("/covert-lock")
	if string(got) != fmt.Sprintf("%04x", masterSecret(seed)) {
		t.Fatalf("recovered %s", got)
	}
}

func TestSecretIsVariantSpecific(t *testing.T) {
	// Precondition of both PoCs: the secret really differs per variant.
	seen := map[uint64]int{}
	for v := 0; v < 4; v++ {
		space := variant.NewSpace(v, variant.Options{ASLR: true, Seed: 7})
		seen[space.AllocData(8)>>3&(1<<SecretBits-1)] = v
	}
	if len(seen) < 3 {
		t.Fatalf("secrets collide too much across variants: %v", seen)
	}
}
