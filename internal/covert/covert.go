// Package covert implements the paper's two proof-of-concept covert
// channels (§5.4). Both abuse the MVEE's own replication machinery to move
// variant-private data (randomized pointer values) from the master variant
// into the slave variants, after which all variants can emit the value
// through ordinary output *without* causing divergence — undermining the
// assumption that a monitor catches any leak of variant-specific data.
//
//   - The timestamp channel exploits replication of sys_gettimeofday
//     results: the master delays data-dependently between two clock reads;
//     the slaves receive the master's timestamps and recover the data from
//     the delta.
//   - The trylock channel exploits replication of synchronization
//     operations: whether a pthread_mutex_trylock succeeds in the master is
//     faithfully replayed in the slaves, so lock-hold durations transmit
//     bits.
//
// As in the paper, these are demonstrations of an MVEE-generic issue, not
// of a flaw introduced by the synchronization agents.
package covert

import (
	"fmt"
	"math/bits"
	"runtime"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/synclib"
)

// SecretBits is the number of low pointer bits each PoC transmits.
const SecretBits = 16

// Secret returns the variant-private value the PoCs leak: the low bits of
// a (diversified) data address, which differ across variants under ASLR.
func Secret(t *core.Thread) uint64 {
	return t.DataAddr(8) >> 3 & (1<<SecretBits - 1)
}

// spin busywaits for roughly n iterations of arithmetic, yielding the
// processor periodically so that the peer thread can run even on a single
// CPU (the delay loops of real PoCs call sched_yield for the same reason).
// Yields are unmonitored, so the data-dependent iteration count never
// changes the instruction sequence the agents see.
func spin(n int) uint32 {
	x := uint32(88172645)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		if i&4095 == 4095 {
			runtime.Gosched()
		}
	}
	return x
}

// delayIterations tunes the timestamp channel's "1" delay. It must be long
// enough to dominate scheduling noise in the replicated timestamp deltas.
const delayIterations = 800000

// tsTrials is the per-bit repetition count of the timestamp channel.
// Scheduling noise only ever ADDS to a measured delta, so the minimum of a
// few trials is a robust estimator even on a loaded single-CPU host.
const tsTrials = 3

// Role derives a variant's send phase from its secret, modelling the
// paper's "probabilistically decide whether a variant is the master or
// slave by having each variant hash a pointer value": a variant sends in
// phase Role and listens in the other phase. The hash is the pointer's
// parity, which is unbiased across ASLR layouts (the low bits of an
// allocation address are alignment-constant, so they would not do).
func Role(secret uint64) int { return bits.OnesCount64(secret) & 1 }

// TimestampChannel builds the §5.4 timestamp-delta PoC program.
//
// The exchange runs in two phases. In phase p, every variant whose hashed
// pointer ("role") equals p delays data-dependently between two
// gettimeofday calls; the others only measure. Because the variants run in
// lockstep and the master's timestamps are replicated, the measured delta
// reflects the slowest variant in the round, i.e. the senders' delays —
// regardless of which variant is the MVEE master. At the end, every
// variant knows the union of the senders' secrets for each phase ("both
// variants have the randomized pointer values of both themselves and the
// other variant"), and writes them out identically: the leak escapes
// without divergence. The result lands in /covert-ts as "phase0-phase1".
func TimestampChannel() core.Program {
	return core.Program{Name: "covert-timestamp", Main: func(t *core.Thread) {
		secret := Secret(t)
		role := Role(secret)
		var results [2]uint64
		for phase := 0; phase < 2; phase++ {
			sending := role == phase
			var deltas [SecretBits]uint64
			for bit := 0; bit < SecretBits; bit++ {
				minDelta := ^uint64(0)
				for trial := 0; trial < tsTrials; trial++ {
					t1 := t.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil).Val
					if sending && secret>>uint(bit)&1 == 1 {
						spin(delayIterations)
					}
					t2 := t.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil).Val
					if d := t2 - t1; d < minDelta {
						minDelta = d
					}
				}
				deltas[bit] = minDelta
			}
			// Decode with a threshold at a quarter of the largest
			// per-bit minimum: a "1" bit's minimum is never below the
			// spin time; a "0" bit's minimum sheds scheduling noise.
			var max uint64
			for _, d := range deltas {
				if d > max {
					max = d
				}
			}
			threshold := max / 4
			if threshold == 0 {
				threshold = 1
			}
			for bit := 0; bit < SecretBits; bit++ {
				if deltas[bit] > threshold {
					results[phase] |= 1 << uint(bit)
				}
			}
		}
		// The deltas derive from replicated timestamps, so every variant
		// computed identical results: this write does not diverge.
		fd := t.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/covert-ts")).Val
		t.Syscall(kernel.SysWrite, [6]uint64{fd},
			[]byte(fmt.Sprintf("%04x-%04x", results[0], results[1])))
		t.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
	}}
}

// Trylock channel tuning. The sender's lock-hold time is either ~0 (bit 0)
// or holdIterations of spinning (bit 1); the receiver probes after
// probeDelayIterations, which must land between the two.
const (
	holdIterations       = 2000000
	probeDelayIterations = 50000
)

// TrylockChannel builds the §5.4 trylock PoC program: per bit, thread 1
// (sender) takes a mutex, announces the round, and delays its unlock for a
// data-dependent duration ("the unlocking happens after a data-dependent
// loop"); thread 2 (receiver) probes with a single TryLock after a fixed
// delay. The instruction sequence is identical in every variant — only the
// master's *timing* decides the outcomes, and the replication of sync ops
// forces the slaves' TryLock outcomes to match the master's. The recovered
// value lands in /covert-lock.
func TrylockChannel() core.Program {
	return core.Program{Name: "covert-trylock", Main: func(t *core.Thread) {
		secret := Secret(t)
		m := synclib.NewMutex(t)
		round := t.NewSyncVar() // sender announces round r as value r+1
		ack := t.NewSyncVar()   // receiver acknowledges with r+1

		recv := t.Spawn(func(tt *core.Thread) {
			var recovered uint64
			for bit := 0; bit < SecretBits; bit++ {
				// Wait for the sender's announcement (made while the
				// sender holds the lock).
				for tt.Load(round) != uint32(bit+1) {
					tt.Yield()
				}
				// Probe once, after the fixed delay: long past a bit-0
				// unlock, well inside a bit-1 hold. The outcome branch is
				// taken identically in every variant because the CAS
				// outcome is dictated by the recorded sync-op order.
				spin(probeDelayIterations)
				if !m.TryLock(tt) {
					recovered |= 1 << uint(bit)
				} else {
					m.Unlock(tt)
				}
				tt.Store(ack, uint32(bit+1))
			}
			fd := tt.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/covert-lock")).Val
			tt.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("%04x", recovered)))
			tt.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
		})

		for bit := 0; bit < SecretBits; bit++ {
			m.Lock(t)
			t.Store(round, uint32(bit+1))
			// The data-dependent delay: timing only, never a different
			// instruction sequence — slaves replay the same ops.
			if secret>>uint(bit)&1 == 1 {
				spin(holdIterations)
			}
			m.Unlock(t)
			for t.Load(ack) != uint32(bit+1) {
				t.Yield()
			}
		}
		recv.Join()
	}}
}
