package agent

import (
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/futex"
	"repro/internal/ring"
)

// WEntry is one recorded sync op in a wall-of-clocks per-thread buffer: the
// logical clock the op's variable hashed to, and that clock's time when the
// master executed the op (Figure 4(c)).
type WEntry struct {
	Clock uint32
	Time  uint64
}

// wocExchange implements the wall-of-clocks strategy (§4.5):
//
//   - Synchronization variables are hashed onto a fixed wall of logical
//     clocks (the agents may not allocate memory dynamically, §3.3, so the
//     wall is pre-allocated and collisions are accepted).
//   - There is one sync buffer per master thread, so every buffer has a
//     single producer; corresponding slave threads are its only consumers.
//     No buffer-position word is shared between threads — the design's
//     whole point is eliminating that cache contention.
//   - Slaves keep local copies of every clock and replay the recorded
//     (clock, time) tickets against them; the master's clocks are never
//     read by slaves.
type wocExchange struct {
	cfg  Config
	wall *clock.Wall
	// locks[c] makes (op, record, tick) atomic per master clock. Master
	// threads contend here only if the original program already contended
	// on variables hashing to c.
	locks []sync.Mutex
	// bufs[tid] is master thread tid's sync buffer, created lazily on its
	// first sync op (see buf): sessions sized for MaxThreads rarely run
	// them all, and eager allocation of every buffer dominates exchange
	// construction.
	bufs  []atomic.Pointer[ring.Log[WEntry]]
	walls []*clock.Wall // one local wall per slave group
	// wallParks[g] parks slave group g's threads once a wall-time wait has
	// spun past the pause phase; every local Tick by a sibling thread
	// wakes it. One wait set per wall (not per clock): 4096 parkers per
	// group would bloat the exchange, and a broadcast only costs the
	// (rare) parked waiters a re-check.
	wallParks []futex.Parker
	stop      stopFlag
}

func newWoCExchange(cfg Config) *wocExchange {
	ex := &wocExchange{
		cfg:       cfg,
		wall:      clock.NewWall(cfg.WallSize),
		locks:     make([]sync.Mutex, cfg.WallSize),
		bufs:      make([]atomic.Pointer[ring.Log[WEntry]], cfg.MaxThreads),
		walls:     make([]*clock.Wall, cfg.Slaves),
		wallParks: make([]futex.Parker, cfg.Slaves),
	}
	for g := range ex.walls {
		ex.walls[g] = clock.NewWall(cfg.WallSize)
	}
	publishBuffers(cfg, ex.bufs, cfg.MaxThreads*cfg.BufCap*12)
	return ex
}

// buf returns thread tid's sync buffer, creating it on first use. The fast
// path is one atomic load; the master-records vs slave-replays creation
// race is settled by a compare-and-swap.
func (ex *wocExchange) buf(tid int) *ring.Log[WEntry] {
	if b := ex.bufs[tid].Load(); b != nil {
		return b
	}
	b := ring.NewLog[WEntry](ex.cfg.BufCap, max(ex.cfg.Slaves, 1))
	b.SetStop(ex.stop.stopped.Load)
	if !ex.bufs[tid].CompareAndSwap(nil, b) {
		return ex.bufs[tid].Load()
	}
	return b
}

func (ex *wocExchange) Kind() Kind { return WallOfClocks }

func (ex *wocExchange) Stop() {
	ex.stop.stopped.Store(true)
	// Wake everything parked on a sync buffer or a wall so it re-checks
	// the stop flag and unwinds (see ring.Log.SetStop's contract).
	for i := range ex.bufs {
		if b := ex.bufs[i].Load(); b != nil {
			b.Interrupt()
		}
	}
	for g := range ex.wallParks {
		ex.wallParks[g].Wake()
	}
}

func (ex *wocExchange) MasterAgent() Agent {
	return &wocMaster{ex: ex, held: make([]int32, ex.cfg.MaxThreads)}
}

func (ex *wocExchange) SlaveAgent(g int) Agent {
	return &wocSlave{
		ex:       ex,
		group:    g,
		wall:     ex.walls[g],
		wallPark: &ex.wallParks[g],
		cur:      make([]WEntry, ex.cfg.MaxThreads),
		pre:      make([]WEntry, ex.cfg.MaxThreads*wocBatch),
		bi:       make([]int, ex.cfg.MaxThreads),
		bn:       make([]int, ex.cfg.MaxThreads),
	}
}

// wocMaster records (clock, time) tickets into its per-thread buffers.
type wocMaster struct {
	ex   *wocExchange
	held []int32 // per tid: clock locked in Before
	ops  atomic.Uint64
}

func (m *wocMaster) Before(tid int, addr uint64) {
	m.ex.stop.check()
	cid := m.ex.wall.ClockOf(addr)
	m.ex.locks[cid].Lock()
	m.held[tid] = int32(cid)
}

func (m *wocMaster) After(tid int, addr uint64) {
	cid := int(m.held[tid])
	t := m.ex.wall.Tick(cid) // returns pre-increment time, i.e. the ticket
	m.ex.buf(tid).Append(WEntry{Clock: uint32(cid), Time: t})
	m.ex.locks[cid].Unlock()
	m.ops.Add(1)
}

func (m *wocMaster) Ops() uint64    { return m.ops.Load() }
func (m *wocMaster) Stalls() uint64 { return 0 }

// wocBatch is how many tickets a slave thread prefetches from its
// per-thread buffer in one consume: one cursor move per batch instead of
// one per sync op. Prefetching is safe precisely because each buffer is
// SPSC per (group, thread): tickets are pure values consumed strictly in
// program order by their one thread, so eager cursor advancement only
// hands the master a little extra ring slack.
const wocBatch = 16

// wocSlave replays tickets: thread tid reads the next entry from its own
// buffer and waits until the slave's local copy of that clock reaches the
// recorded time. Threads whose variables hash to different clocks never
// wait on one another.
type wocSlave struct {
	ex       *wocExchange
	group    int
	wall     *clock.Wall
	wallPark *futex.Parker // this group's wall wait set (see wocExchange)
	cur      []WEntry      // per tid: entry claimed in Before
	// pre[tid*wocBatch:] is thread tid's prefetched ticket batch;
	// bi/bn[tid] is the consumption window into it.
	pre    []WEntry
	bi, bn []int
	ops    atomic.Uint64
	stalls atomic.Uint64
}

func (s *wocSlave) Before(tid int, addr uint64) {
	// Refill this thread's ticket batch if it ran dry.
	if s.bi[tid] >= s.bn[tid] {
		buf := s.ex.buf(tid)
		batch := s.pre[tid*wocBatch : (tid+1)*wocBatch]
		for spins := 0; ; spins++ {
			s.ex.stop.check()
			if n := buf.TryConsumeBatch(s.group, batch); n > 0 {
				s.bi[tid], s.bn[tid] = 0, n
				break
			}
			if spins == 0 {
				s.stalls.Add(1)
			}
			// A slave thread far behind its master counterpart parks on
			// the (SPSC) buffer's wait set; the master's next append wakes
			// it.
			if ring.ParkDue(spins) {
				pk := buf.Parker()
				g := pk.Prepare()
				if buf.Ready(buf.Cursor(s.group)) || s.ex.stop.stopped.Load() {
					pk.Cancel()
					continue
				}
				pk.Park(g)
				continue
			}
			ring.Backoff(spins)
		}
	}
	e := s.pre[tid*wocBatch+s.bi[tid]]
	// Wait for the local clock to reach the ticket's time. Inline wait (no
	// closure: this runs per sync op and must not allocate). Past the
	// spin/pause/yield phases the thread parks on the group's wall wait
	// set; each sibling Tick (After) wakes it.
	if s.wall.Now(int(e.Clock)) < e.Time {
		s.stalls.Add(1)
	}
	for spins := 0; s.wall.Now(int(e.Clock)) < e.Time; spins++ {
		s.ex.stop.check()
		if ring.ParkDue(spins) {
			g := s.wallPark.Prepare()
			if s.wall.Now(int(e.Clock)) >= e.Time || s.ex.stop.stopped.Load() {
				s.wallPark.Cancel()
				continue
			}
			s.wallPark.Park(g)
			continue
		}
		ring.Backoff(spins)
	}
	s.cur[tid] = e
}

func (s *wocSlave) After(tid int, addr uint64) {
	e := s.cur[tid]
	s.bi[tid]++
	s.wall.Tick(int(e.Clock))
	// The tick may be exactly the time a parked sibling is waiting for.
	s.wallPark.Wake()
	s.ops.Add(1)
}

func (s *wocSlave) Ops() uint64    { return s.ops.Load() }
func (s *wocSlave) Stalls() uint64 { return s.stalls.Load() }
