package agent

import (
	"sync"
	"sync/atomic"

	"repro/internal/ring"
)

// Entry is one recorded sync op in the shared TO/PO sync buffer: which
// master thread performed it, and on which (master-local) address. Slaves
// never interpret the address as a pointer — it only serves as the
// dependence key for the partial-order agent.
type Entry struct {
	Tid  int32
	Addr uint64
}

// orderExchange backs both the total-order and the partial-order agents:
// the two strategies share the single shared sync buffer and the master
// recording protocol (§4.5); they differ only in how slaves consume it.
//
// Unlike the wall-of-clocks agent, the TO/PO slaves deliberately do NOT use
// the ring's batched consumption: both must inspect the shared buffer's
// head under the group mutex (an op is claimable only relative to what the
// whole variant has consumed so far), so per-op head traffic is inherent to
// the single-buffer design — the very scalability pathology §4.5 describes
// and the WoC agent exists to avoid.
type orderExchange struct {
	partial bool
	cfg     Config
	log     *ring.Log[Entry]
	stop    stopFlag

	groups []*poGroup // per slave: PO consumption state (also used by TO for bookkeeping symmetry)
}

func newTOExchange(cfg Config, partial bool) *orderExchange {
	ex := &orderExchange{
		partial: partial,
		cfg:     cfg,
		log:     ring.NewLog[Entry](cfg.BufCap, max(cfg.Slaves, 1)),
	}
	ex.log.SetStop(ex.stop.stopped.Load)
	ex.groups = make([]*poGroup, cfg.Slaves)
	for g := range ex.groups {
		ex.groups[g] = &poGroup{consumed: make(map[uint64]bool)}
	}
	publishBuffers(cfg, ex.log, cfg.BufCap*16)
	return ex
}

func (ex *orderExchange) Kind() Kind {
	if ex.partial {
		return PartialOrder
	}
	return TotalOrder
}

func (ex *orderExchange) Stop() {
	ex.stop.stopped.Store(true)
	// Wake anything parked on the shared buffer so it re-checks the stop
	// flag and unwinds (see ring.Log.SetStop's contract).
	ex.log.Interrupt()
}

func (ex *orderExchange) MasterAgent() Agent {
	return &orderMaster{ex: ex}
}

func (ex *orderExchange) SlaveAgent(g int) Agent {
	if ex.partial {
		return &poSlave{ex: ex, group: g, st: ex.groups[g],
			pending: make([]uint64, ex.cfg.MaxThreads)}
	}
	return &toSlave{ex: ex, group: g, st: ex.groups[g],
		pending: make([]uint64, ex.cfg.MaxThreads)}
}

// orderMaster records sync ops into the shared buffer. The global record
// lock makes (op, append) atomic; it is also the shared cache line whose
// read-write sharing the paper blames for the TO/PO agents' poor
// scalability — the contention is inherent to the single-buffer design.
type orderMaster struct {
	ex  *orderExchange
	mu  sync.Mutex
	ops atomic.Uint64
}

func (m *orderMaster) Before(tid int, addr uint64) {
	m.ex.stop.check()
	m.mu.Lock()
}

func (m *orderMaster) After(tid int, addr uint64) {
	m.ex.log.Append(Entry{Tid: int32(tid), Addr: addr})
	m.mu.Unlock()
	m.ops.Add(1)
}

func (m *orderMaster) Ops() uint64    { return m.ops.Load() }
func (m *orderMaster) Stalls() uint64 { return 0 }

// toSlave replays the recorded total order: a thread may execute its next
// sync op only when that op is at the head of the buffer. Unrelated ops
// therefore stall each other — Figure 4(a)'s red bar.
//
// All head inspection and cursor advancement happens under the group's
// mutex: a slot may only be read while the cursor still points at it (once
// any thread advances the cursor, the producer may recycle the slot).
type toSlave struct {
	ex      *orderExchange
	group   int
	st      *poGroup // only its mutex is used
	pending []uint64 // per tid: seq claimed in Before, consumed in After
	ops     atomic.Uint64
	stalls  atomic.Uint64
}

// tryClaim claims the head entry for tid if it is published and addressed
// to this thread, recording the claimed sequence in pending.
func (s *toSlave) tryClaim(tid int) bool {
	s.st.mu.Lock()
	seq := s.ex.log.Cursor(s.group)
	e, ok := s.ex.log.TryGet(seq)
	claimed := ok && int(e.Tid) == tid
	if claimed {
		s.pending[tid] = seq
	}
	s.st.mu.Unlock()
	return claimed
}

func (s *toSlave) Before(tid int, addr uint64) {
	first := true
	pk := s.ex.log.Parker()
	for spins := 0; ; spins++ {
		s.ex.stop.check()
		if s.tryClaim(tid) {
			return
		}
		if first {
			s.stalls.Add(1)
			first = false
		}
		// A thread whose turn is far off (the total order stalls unrelated
		// threads by design — Figure 4(a)) parks on the buffer's wait set;
		// the master's next append and every sibling's head advance wake
		// it.
		if ring.ParkDue(spins) {
			g := pk.Prepare()
			if s.ex.stop.stopped.Load() {
				pk.Cancel()
				continue
			}
			if s.tryClaim(tid) {
				pk.Cancel()
				return
			}
			pk.Park(g)
			continue
		}
		ring.Backoff(spins)
	}
}

func (s *toSlave) After(tid int, addr uint64) {
	s.st.mu.Lock()
	s.ex.log.Advance(s.group, s.pending[tid])
	s.st.mu.Unlock()
	s.ops.Add(1)
}

func (s *toSlave) Ops() uint64    { return s.ops.Load() }
func (s *toSlave) Stalls() uint64 { return s.stalls.Load() }

// poGroup is one slave variant's out-of-order consumption window over the
// shared buffer: entries before head are consumed; entries in the window
// may be consumed out of order as long as same-address order is respected.
type poGroup struct {
	mu       sync.Mutex
	head     uint64
	consumed map[uint64]bool
}

// poSlave replays a partial order: a thread's next op (the earliest
// unconsumed entry recorded for it) may run as soon as no earlier
// unconsumed entry touches the same address. Scanning the window costs
// memory traffic — the paper's stated downside of the PO agent.
type poSlave struct {
	ex      *orderExchange
	group   int
	st      *poGroup
	pending []uint64
	ops     atomic.Uint64
	stalls  atomic.Uint64
}

func (s *poSlave) Before(tid int, addr uint64) {
	first := true
	pk := s.ex.log.Parker()
	for spins := 0; ; spins++ {
		s.ex.stop.check()
		if seq, ok := s.tryClaim(tid); ok {
			s.pending[tid] = seq
			return
		}
		if first {
			s.stalls.Add(1)
			first = false
		}
		// Park once spinning stops paying off. Wakes come from the
		// master's appends (ring publish) and from sibling consumption
		// (After wakes the set explicitly — see the comment there).
		if ring.ParkDue(spins) {
			g := pk.Prepare()
			if s.ex.stop.stopped.Load() {
				pk.Cancel()
				continue
			}
			if seq, ok := s.tryClaim(tid); ok {
				pk.Cancel()
				s.pending[tid] = seq
				return
			}
			pk.Park(g)
			continue
		}
		ring.Backoff(spins)
	}
}

// tryClaim scans the window for tid's next op and checks its dependences.
func (s *poSlave) tryClaim(tid int) (uint64, bool) {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	var blockers []uint64 // unconsumed seqs before the candidate
	for seq := s.st.head; ; seq++ {
		e, ok := s.ex.log.TryGet(seq)
		if !ok {
			return 0, false // candidate not yet recorded
		}
		if s.st.consumed[seq] {
			continue
		}
		if int(e.Tid) == tid {
			// Candidate found: executable iff no earlier unconsumed
			// entry operates on the same address.
			for _, b := range blockers {
				be, _ := s.ex.log.TryGet(b)
				if be.Addr == e.Addr {
					return 0, false
				}
			}
			return seq, true
		}
		blockers = append(blockers, seq)
	}
}

func (s *poSlave) After(tid int, addr uint64) {
	seq := s.pending[tid]
	s.st.mu.Lock()
	s.st.consumed[seq] = true
	for s.st.consumed[s.st.head] {
		delete(s.st.consumed, s.st.head)
		s.st.head++
	}
	head := s.st.head
	s.st.mu.Unlock()
	s.ex.log.AdvanceTo(s.group, head)
	// Wake parked siblings even when the head did not move (AdvanceTo
	// no-ops then, so the ring wakes nobody): consuming a mid-window entry
	// can clear another thread's same-address dependence, and that thread
	// may be parked waiting for exactly this.
	s.ex.log.Parker().Wake()
	s.ops.Add(1)
}

func (s *poSlave) Ops() uint64    { return s.ops.Load() }
func (s *poSlave) Stalls() uint64 { return s.stalls.Load() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
