package agent

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestWoCTicketInvariants records a random multi-threaded op mix with a
// master-only WoC exchange and validates the DESIGN.md invariants directly
// on the buffers:
//
//   - per clock, the recorded times are exactly 0..n-1 (no gaps, no dups);
//   - within each per-thread buffer, times of any one clock are strictly
//     increasing (program order respects clock order).
func TestWoCTicketInvariants(t *testing.T) {
	f := func(seed int64, threadsRaw, opsRaw uint8) bool {
		threads := 1 + int(threadsRaw%4)
		ops := 1 + int(opsRaw%64)
		ex := newWoCExchange(Config{Slaves: 1, MaxThreads: threads, BufCap: 1024, WallSize: 16})
		defer ex.Stop()
		m := ex.MasterAgent()
		rng := rand.New(rand.NewSource(seed))
		addrs := make([][]uint64, threads)
		for tid := range addrs {
			for i := 0; i < ops; i++ {
				addrs[tid] = append(addrs[tid], uint64(0x1000*(1+rng.Intn(8))))
			}
		}
		var wg sync.WaitGroup
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for _, a := range addrs[tid] {
					m.Before(tid, a)
					m.After(tid, a)
				}
			}(tid)
		}
		wg.Wait()

		// Walk the buffers.
		perClock := map[uint32][]uint64{}
		for tid := 0; tid < threads; tid++ {
			lastPerClock := map[uint32]uint64{}
			buf := ex.buf(tid)
			for seq := uint64(0); seq < buf.Produced(); seq++ {
				e, ok := buf.TryGet(seq)
				if !ok {
					return false
				}
				if last, seen := lastPerClock[e.Clock]; seen && e.Time <= last {
					return false // per-thread, per-clock times must increase
				}
				lastPerClock[e.Clock] = e.Time
				perClock[e.Clock] = append(perClock[e.Clock], e.Time)
			}
		}
		for _, times := range perClock {
			seen := make([]bool, len(times))
			for _, ti := range times {
				if ti >= uint64(len(times)) || seen[ti] {
					return false // not a permutation of 0..n-1
				}
				seen[ti] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderBufferIsSerializationOfMaster validates the TO/PO shared
// buffer invariant: the recorded entries per thread appear in that thread's
// program order.
func TestOrderBufferIsSerializationOfMaster(t *testing.T) {
	f := func(seed int64, threadsRaw uint8) bool {
		threads := 1 + int(threadsRaw%4)
		const ops = 32
		ex := newTOExchange(Config{Slaves: 1, MaxThreads: threads, BufCap: 4096}, false)
		defer ex.Stop()
		m := ex.MasterAgent()
		rng := rand.New(rand.NewSource(seed))
		scripts := make([][]uint64, threads)
		for tid := range scripts {
			for i := 0; i < ops; i++ {
				scripts[tid] = append(scripts[tid], uint64(0x40*(1+rng.Intn(6))))
			}
		}
		var wg sync.WaitGroup
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for _, a := range scripts[tid] {
					m.Before(tid, a)
					m.After(tid, a)
				}
			}(tid)
		}
		wg.Wait()
		// Per-thread order in the buffer == script order.
		idx := make([]int, threads)
		for seq := uint64(0); seq < ex.log.Produced(); seq++ {
			e, ok := ex.log.TryGet(seq)
			if !ok {
				return false
			}
			tid := int(e.Tid)
			if idx[tid] >= len(scripts[tid]) || scripts[tid][idx[tid]] != e.Addr {
				return false
			}
			idx[tid]++
		}
		for tid := range idx {
			if idx[tid] != len(scripts[tid]) {
				return false // lost entries
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayEquivalenceQuick is the randomized version of the replay
// harness: arbitrary scripts, all three agents, exact per-thread
// observation equality.
func TestReplayEquivalenceQuick(t *testing.T) {
	for _, k := range agentKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			f := func(seed int64, threadsRaw, varsRaw uint8) bool {
				threads := 1 + int(threadsRaw%4)
				nvars := 1 + int(varsRaw%3)
				rng := rand.New(rand.NewSource(seed))
				vars := make([]uint64, nvars)
				for i := range vars {
					vars[i] = uint64(0x100 * (i + 1))
				}
				script := make(opScript, threads)
				for tid := range script {
					n := 1 + rng.Intn(24)
					for i := 0; i < n; i++ {
						script[tid] = append(script[tid], rng.Intn(nvars))
					}
				}
				h := &replayHarness{kind: k, threads: threads, slaves: 1, vars: vars}
				res := h.run(t, script)
				for tid := range res[0] {
					if len(res[0][tid]) != len(res[1][tid]) {
						return false
					}
					for i := range res[0][tid] {
						if res[0][tid][i] != res[1][tid][i] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
