package agent

import (
	"sync"
	"time"
)

// This file adds offline record/replay support to the wall-of-clocks
// exchange, in the spirit of RecPlay [35] (§6): the same (clock, time)
// tickets that drive online replication can be drained to a trace during
// recording and replayed later against a fresh run — deterministic
// re-execution for debugging, without a live master.

// Capture continuously drains a dedicated consumer group of a WoC exchange
// into memory. Create it with NewCapturingExchange; call Stop after the
// session finished to collect the per-thread ticket streams.
type Capture struct {
	ex    *wocExchange
	group int
	mu    sync.Mutex
	ops   [][]WEntry
	stop  chan struct{}
	done  sync.WaitGroup
}

// NewCapturingExchange returns a wall-of-clocks exchange for cfg.Slaves
// live slaves plus a Capture that records every ticket the master logs.
// The capture behaves like one more (invisible) slave variant: it has its
// own consumer group, so it applies the same back-pressure a slow slave
// would.
func NewCapturingExchange(cfg Config) (Exchange, *Capture) {
	cfg.fill()
	live := cfg.Slaves
	cfg.Slaves = live + 1 // the tape is the last consumer group
	ex := newWoCExchange(cfg)
	c := &Capture{
		ex:    ex,
		group: live,
		ops:   make([][]WEntry, cfg.MaxThreads),
		stop:  make(chan struct{}),
	}
	for tid := 0; tid < cfg.MaxThreads; tid++ {
		c.done.Add(1)
		go c.drain(tid)
	}
	return ex, c
}

// drain consumes buffer tid on the tape group as entries appear.
func (c *Capture) drain(tid int) {
	defer c.done.Done()
	// Batched consumption: one cursor move per run of published tickets.
	// Buffers are created lazily by the variants; until thread tid's first
	// sync op there is nothing to drain.
	var batch [wocBatch]WEntry
	var local []WEntry
	take := func() bool {
		buf := c.ex.bufs[tid].Load()
		if buf == nil {
			return false
		}
		n := buf.TryConsumeBatch(c.group, batch[:])
		if n == 0 {
			return false
		}
		local = append(local, batch[:n]...)
		return true
	}
	for {
		if take() {
			continue
		}
		select {
		case <-c.stop:
			// Final sweep: collect anything published after the last poll.
			for take() {
			}
			c.mu.Lock()
			c.ops[tid] = local
			c.mu.Unlock()
			return
		default:
			// Poll gently: the tape must not steal the (possibly
			// single) CPU from the variants it is recording.
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// Stop ends the capture and returns the recorded per-thread ticket
// streams. Call it only after the recorded session has finished.
func (c *Capture) Stop() [][]WEntry {
	close(c.stop)
	c.done.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// NewReplayExchange builds an exchange whose recorded side is pre-filled
// from a captured trace. Only SlaveAgent(0) is meaningful: the replayed
// variant consumes the trace exactly as an online slave consumes a live
// master. MasterAgent must not be used.
func NewReplayExchange(ops [][]WEntry, cfg Config) Exchange {
	cfg.fill()
	cfg.Slaves = 1
	// Size the buffers to hold the whole trace: replay has no live
	// producer to apply back-pressure to.
	maxLen := 2
	for _, stream := range ops {
		if len(stream) > maxLen {
			maxLen = len(stream)
		}
	}
	cfg.BufCap = maxLen
	ex := newWoCExchange(cfg)
	for tid, stream := range ops {
		if tid >= len(ex.bufs) {
			break
		}
		// The buffers were sized to hold the whole trace, so this is one
		// batched append (one sequence claim) per stream.
		ex.buf(tid).AppendBatch(stream)
	}
	return ex
}
