package agent

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// replayHarness drives a master and N slave variants through a scripted or
// randomized sequence of sync ops and checks replay equivalence.
//
// The shared state is a bank of counters, one per "synchronization
// variable". Each op is modelled as a read-modify-write on one counter;
// after the run, every variant's observation log per variable must match
// the master's — which holds iff the agent enforced the same per-variable
// order.
type replayHarness struct {
	kind    Kind
	threads int
	slaves  int
	vars    []uint64 // master-local addresses of the variables
}

// opScript: per thread, the sequence of variable indices it touches.
type opScript [][]int

// run executes the script in the master and all slaves concurrently and
// returns, per variant and per thread, the sequence of values each of the
// thread's ops observed before incrementing. If replay is equivalent, the
// per-thread observation sequences match the master's exactly: thread t's
// k-th op on a variable saw the same predecessor count in every variant.
func (h *replayHarness) run(t *testing.T, script opScript) [][][]uint64 {
	t.Helper()
	ex := NewExchange(h.kind, Config{Slaves: h.slaves, MaxThreads: h.threads, BufCap: 64, WallSize: 64})
	defer ex.Stop()

	results := make([][][]uint64, 1+h.slaves)
	var wg sync.WaitGroup
	runVariant := func(vi int, ag Agent, addrBase uint64) {
		defer wg.Done()
		counters := make([]atomic.Uint64, len(h.vars))
		obs := make([][]uint64, h.threads)
		var tw sync.WaitGroup
		for tid := 0; tid < h.threads; tid++ {
			tw.Add(1)
			go func(tid int) {
				defer tw.Done()
				for _, v := range script[tid] {
					addr := addrBase + h.vars[v]
					ag.Before(tid, addr)
					old := counters[v].Load()  // the "atomic instruction":
					counters[v].Store(old + 1) // RMW made atomic by the agent's ordering
					ag.After(tid, addr)
					obs[tid] = append(obs[tid], old)
				}
			}(tid)
		}
		tw.Wait()
		results[vi] = obs
	}

	wg.Add(1 + h.slaves)
	go runVariant(0, ex.MasterAgent(), 0)
	for g := 0; g < h.slaves; g++ {
		// Slaves get different address bases: replay must be positional,
		// never address-based (ASLR property, §4.5.1).
		go runVariant(1+g, ex.SlaveAgent(g), uint64(1+g)*0x1000_0000)
	}
	wg.Wait()
	return results
}

// checkEquivalent asserts every slave's per-thread observation sequence is
// exactly the master's.
func checkEquivalent(t *testing.T, res [][][]uint64) {
	t.Helper()
	master := res[0]
	for g := 1; g < len(res); g++ {
		for tid := range master {
			if len(master[tid]) != len(res[g][tid]) {
				t.Fatalf("variant %d thread %d: %d ops vs master %d",
					g, tid, len(res[g][tid]), len(master[tid]))
			}
			for k := range master[tid] {
				if master[tid][k] != res[g][tid][k] {
					t.Fatalf("variant %d thread %d op %d observed %d, master observed %d\nmaster %v\nslave  %v",
						g, tid, k, res[g][tid][k], master[tid][k], master[tid], res[g][tid])
				}
			}
		}
	}
}

func agentKinds() []Kind { return []Kind{TotalOrder, PartialOrder, WallOfClocks} }

func TestReplayEquivalenceScripted(t *testing.T) {
	// Two threads, two variables, interleaved accesses: the Figure 4
	// scenario shape.
	script := opScript{
		{0, 0, 1, 1, 0}, // thread 0: A A B B A
		{1, 1, 0, 0, 1}, // thread 1: B B A A B
	}
	for _, k := range agentKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			h := &replayHarness{kind: k, threads: 2, slaves: 2,
				vars: []uint64{0x1000, 0x2000}}
			checkEquivalent(t, h.run(t, script))
		})
	}
}

func TestReplayEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, k := range agentKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				threads := 2 + rng.Intn(3)
				nvars := 1 + rng.Intn(4)
				vars := make([]uint64, nvars)
				for i := range vars {
					vars[i] = uint64(0x1000 * (i + 1))
				}
				script := make(opScript, threads)
				for tid := range script {
					n := 5 + rng.Intn(20)
					for i := 0; i < n; i++ {
						script[tid] = append(script[tid], rng.Intn(nvars))
					}
				}
				h := &replayHarness{kind: k, threads: threads, slaves: 2, vars: vars}
				checkEquivalent(t, h.run(t, script))
			}
		})
	}
}

// TestTotalOrderIsExact verifies the TO agent's defining property: slaves
// replay the *global* recorded order, not merely per-variable orders. We
// record a known global order by running master threads one at a time.
func TestTotalOrderIsExact(t *testing.T) {
	ex := NewExchange(TotalOrder, Config{Slaves: 1, MaxThreads: 2, BufCap: 16})
	defer ex.Stop()
	m := ex.MasterAgent()
	// Master: t0 op on A, then t1 op on B (sequential, so the recorded
	// global order is exactly [t0/A, t1/B]).
	m.Before(0, 0xA0)
	m.After(0, 0xA0)
	m.Before(1, 0xB0)
	m.After(1, 0xB0)

	s := ex.SlaveAgent(0)
	// Slave: thread 1 arrives first. Under TO it must stall until thread
	// 0 consumed its entry, even though the ops are unrelated.
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	t1Started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(t1Started)
		s.Before(1, 0xB1) // different address than master: positional replay
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
		s.After(1, 0xB1)
	}()
	go func() {
		defer wg.Done()
		<-t1Started
		s.Before(0, 0xA1)
		mu.Lock()
		order = append(order, 0)
		mu.Unlock()
		s.After(0, 0xA1)
	}()
	wg.Wait()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("TO replay order = %v, want [0 1]", order)
	}
	if s.Stalls() == 0 {
		t.Fatal("TO slave reported no stalls; thread 1 must have stalled")
	}
}

// TestPartialOrderAllowsIndependentReorder verifies Figure 4(b): under PO a
// slave thread may enter an unrelated critical section without waiting for
// recorded-earlier independent ops.
func TestPartialOrderAllowsIndependentReorder(t *testing.T) {
	ex := NewExchange(PartialOrder, Config{Slaves: 1, MaxThreads: 2, BufCap: 16})
	defer ex.Stop()
	m := ex.MasterAgent()
	// Recorded order: t0/A then t1/B.
	m.Before(0, 0xA0)
	m.After(0, 0xA0)
	m.Before(1, 0xB0)
	m.After(1, 0xB0)

	s := ex.SlaveAgent(0)
	// Slave thread 1 (the later, independent op) must proceed immediately
	// even though thread 0 has not replayed yet.
	done := make(chan struct{})
	go func() {
		s.Before(1, 0xB1)
		s.After(1, 0xB1)
		close(done)
	}()
	<-done // would deadlock under TO semantics; PO must not stall here
	// Thread 0 still replays fine afterwards.
	s.Before(0, 0xA1)
	s.After(0, 0xA1)
	if got := s.Ops(); got != 2 {
		t.Fatalf("slave ops = %d, want 2", got)
	}
}

// TestPartialOrderBlocksDependentOps verifies that PO still serializes ops
// on the same variable in recorded order.
func TestPartialOrderBlocksDependentOps(t *testing.T) {
	ex := NewExchange(PartialOrder, Config{Slaves: 1, MaxThreads: 2, BufCap: 16})
	defer ex.Stop()
	m := ex.MasterAgent()
	// Recorded order on the SAME variable: t0 then t1.
	m.Before(0, 0xA0)
	m.After(0, 0xA0)
	m.Before(1, 0xA0)
	m.After(1, 0xA0)

	s := ex.SlaveAgent(0)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	t1Started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(t1Started)
		s.Before(1, 0xA1)
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
		s.After(1, 0xA1)
	}()
	go func() {
		defer wg.Done()
		<-t1Started
		s.Before(0, 0xA1)
		mu.Lock()
		order = append(order, 0)
		mu.Unlock()
		s.After(0, 0xA1)
	}()
	wg.Wait()
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("PO dependent replay order = %v, want [0 1]", order)
	}
}

// TestWoCIndependentClocksDoNotStall verifies Figure 4(c): ops on variables
// assigned to different clocks replay without cross-thread waiting.
func TestWoCIndependentClocksDoNotStall(t *testing.T) {
	ex := newWoCExchange(Config{Slaves: 1, MaxThreads: 2, BufCap: 16, WallSize: 4096})
	defer ex.Stop()
	// Find two addresses on distinct clocks.
	a, b := uint64(0x1000), uint64(0x2000)
	for ex.wall.ClockOf(a) == ex.wall.ClockOf(b) {
		b += 0x1000
	}
	m := ex.MasterAgent()
	m.Before(0, a)
	m.After(0, a)
	m.Before(1, b)
	m.After(1, b)

	s := ex.SlaveAgent(0)
	done := make(chan struct{})
	go func() {
		s.Before(1, b+1) // independent clock: must not wait for thread 0
		s.After(1, b+1)
		close(done)
	}()
	<-done
	s.Before(0, a+1)
	s.After(0, a+1)
}

// TestWoCSameClockOrder verifies the t8..t10 scenario of Figure 4(c): a
// thread whose ticket demands clock time 2 waits until other threads have
// advanced that clock.
func TestWoCSameClockOrder(t *testing.T) {
	ex := newWoCExchange(Config{Slaves: 1, MaxThreads: 2, BufCap: 16, WallSize: 4096})
	defer ex.Stop()
	b := uint64(0x2000)
	m := ex.MasterAgent()
	// Master: t1 enters+leaves section on B (times 0,1), then t0 enters B
	// (time 2).
	m.Before(1, b)
	m.After(1, b)
	m.Before(1, b)
	m.After(1, b)
	m.Before(0, b)
	m.After(0, b)

	s := ex.SlaveAgent(0)
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	t0Started := make(chan struct{})
	go func() { // slave thread 0 arrives first but needs clock time 2
		defer wg.Done()
		close(t0Started)
		s.Before(0, b+7)
		mu.Lock()
		order = append(order, "t0")
		mu.Unlock()
		s.After(0, b+7)
	}()
	go func() {
		defer wg.Done()
		<-t0Started
		for i := 0; i < 2; i++ {
			s.Before(1, b+7)
			mu.Lock()
			order = append(order, "t1")
			mu.Unlock()
			s.After(1, b+7)
		}
	}()
	wg.Wait()
	want := []string{"t1", "t1", "t0"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("WoC same-clock order = %v, want %v", order, want)
		}
	}
}

// TestStopUnblocksWaiters ensures a stalled slave panics with ErrStopped
// after Stop — the mechanism the monitor uses to tear down variants on
// divergence.
func TestStopUnblocksWaiters(t *testing.T) {
	for _, k := range agentKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			ex := NewExchange(k, Config{Slaves: 1, MaxThreads: 1, BufCap: 8, WallSize: 64})
			s := ex.SlaveAgent(0)
			unblocked := make(chan any, 1)
			go func() {
				defer func() { unblocked <- recover() }()
				s.Before(0, 0x1000) // nothing recorded: blocks forever
			}()
			ex.Stop()
			if got := <-unblocked; got != ErrStopped {
				t.Fatalf("recovered %v, want ErrStopped", got)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", TotalOrder: "total-order",
		PartialOrder: "partial-order", WallOfClocks: "wall-of-clocks",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestOpsCounting(t *testing.T) {
	ex := NewExchange(WallOfClocks, Config{Slaves: 1, MaxThreads: 1, BufCap: 8, WallSize: 64})
	defer ex.Stop()
	m := ex.MasterAgent()
	for i := 0; i < 5; i++ {
		m.Before(0, 0x1000)
		m.After(0, 0x1000)
	}
	if m.Ops() != 5 {
		t.Fatalf("master ops = %d, want 5", m.Ops())
	}
	s := ex.SlaveAgent(0)
	for i := 0; i < 5; i++ {
		s.Before(0, 0x9000)
		s.After(0, 0x9000)
	}
	if s.Ops() != 5 {
		t.Fatalf("slave ops = %d, want 5", s.Ops())
	}
}

// Heavier soak: many threads hammering few variables through each agent,
// with two slave variants, checking final counter equality.
func TestReplaySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, k := range agentKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			script := make(opScript, 4)
			for tid := range script {
				for i := 0; i < 200; i++ {
					script[tid] = append(script[tid], rng.Intn(3))
				}
			}
			h := &replayHarness{kind: k, threads: 4, slaves: 2,
				vars: []uint64{0x10, 0x20, 0x30}}
			checkEquivalent(t, h.run(t, script))
		})
	}
}

func ExampleKind_String() {
	fmt.Println(WallOfClocks)
	// Output: wall-of-clocks
}
