// Package agent implements the paper's three synchronization agents (§4.5):
// total-order (TO), partial-order (PO), and wall-of-clocks (WoC). An agent
// is injected into every variant; the master variant's agent records the
// order in which the variant executes synchronization operations into
// shared sync buffers, and each slave variant's agent replays an equivalent
// order, stalling slave threads that run ahead.
//
// A synchronization operation ("sync op") is a single atomic instruction on
// a synchronization variable. The instrumented synchronization library
// (internal/synclib) brackets every such instruction with Before/After
// calls, exactly like the before_sync_op/after_sync_op wrappers the paper
// compiles into variants (Listing 3).
//
// Recording and the operation itself must appear atomic — otherwise two
// master threads racing on one variable could log an order that differs
// from the order the hardware actually executed, and replaying that log
// would produce different CAS outcomes in the slaves. The master agents
// therefore hold a record lock across the Before→op→After window: a single
// global lock for TO and PO (the paper's single shared buffer, whose
// cache-line contention is the very scalability problem §4.5 describes),
// and a per-clock lock for WoC (contention only where the original program
// already contended, as the paper argues).
package agent

import (
	"fmt"
	"sync/atomic"

	"repro/internal/shm"
)

// Kind selects a replication strategy.
type Kind int

const (
	// None disables sync-op replication (native or single-variant runs).
	None Kind = iota
	// TotalOrder replays all sync ops in exactly the recorded order.
	TotalOrder
	// PartialOrder only orders dependent sync ops (same variable).
	PartialOrder
	// WallOfClocks hashes variables onto a fixed wall of logical clocks
	// and replays per-clock orders through per-thread buffers.
	WallOfClocks
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case TotalOrder:
		return "total-order"
	case PartialOrder:
		return "partial-order"
	case WallOfClocks:
		return "wall-of-clocks"
	}
	return fmt.Sprintf("agent(%d)", int(k))
}

// Agent is the per-variant interface the instrumented program calls around
// every sync op. tid is the logical thread id (equal across variants); addr
// is the variant-local virtual address of the synchronization variable.
type Agent interface {
	// Before is called immediately before the atomic instruction. In the
	// master it acquires the record lock; in a slave it blocks until the
	// recorded order allows this thread's next op to proceed.
	Before(tid int, addr uint64)
	// After is called immediately after the atomic instruction. In the
	// master it logs the op and releases the record lock; in a slave it
	// marks the op consumed.
	After(tid int, addr uint64)
	// Ops returns the number of sync ops recorded or replayed so far.
	Ops() uint64
	// Stalls returns how many times a slave thread had to wait before a
	// sync op (always 0 for masters). It is a coarse efficiency signal:
	// the TO agent stalls more than PO, which stalls more than WoC.
	Stalls() uint64
}

// ErrStopped is panicked by agents when the exchange is shut down (e.g. on
// divergence) while a thread is blocked inside Before. The MVEE core
// recovers it at the top of every variant thread.
var ErrStopped = fmt.Errorf("agent: exchange stopped")

// Exchange is the shared state (the "sync buffers") connecting one master
// agent to its slave agents. Create one per MVEE session via NewExchange,
// then mint one Agent per variant with MasterAgent/SlaveAgent.
type Exchange interface {
	// Kind reports the replication strategy.
	Kind() Kind
	// MasterAgent returns the recording agent for the master variant.
	MasterAgent() Agent
	// SlaveAgent returns the replaying agent for slave group g,
	// 0 <= g < slaves.
	SlaveAgent(g int) Agent
	// Stop aborts all blocked agent calls; they panic with ErrStopped.
	Stop()
}

// Config sizes an exchange.
type Config struct {
	Slaves     int // number of slave variants
	MaxThreads int // maximum logical threads per variant
	BufCap     int // sync buffer capacity (entries)
	WallSize   int // number of clocks for WallOfClocks (power of two)
	// Registry, if non-nil, is the System-V-style shared memory namespace
	// the sync buffers are published in: the monitor creates the
	// segments, each variant's agent attaches (§4.5), and the segments
	// are mapped at non-overlapping addresses per variant (§5.4).
	Registry *shm.Registry
}

// SyncBufferKey is the IPC key under which an exchange publishes its sync
// buffers.
const SyncBufferKey shm.Key = 0x53594e43 // "SYNC"

// publishBuffers registers the exchange's shared state in the registry and
// attaches every variant at a distinct address.
func publishBuffers(cfg Config, payload any, size int) {
	if cfg.Registry == nil {
		return
	}
	if _, err := cfg.Registry.Create(SyncBufferKey, size, payload); err != nil {
		return // already published (exchange recreated on same registry)
	}
	for v := 0; v <= cfg.Slaves; v++ {
		// Non-overlapping mappings: the monitor "does ensure that each
		// buffer is mapped at different, non-overlapping addresses in
		// all variants" (§5.4).
		cfg.Registry.Attach(SyncBufferKey, v, 0x7f00_0000_0000+uint64(v)*0x10_0000_0000)
	}
}

func (c *Config) fill() {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 64
	}
	if c.BufCap <= 0 {
		c.BufCap = 1024
	}
	if c.WallSize <= 0 {
		c.WallSize = 4096
	}
}

// NewExchange builds the shared buffers for the chosen strategy. kind None
// returns an exchange whose agents do nothing.
func NewExchange(kind Kind, cfg Config) Exchange {
	cfg.fill()
	switch kind {
	case None:
		return noopExchange{}
	case TotalOrder:
		return newTOExchange(cfg, false)
	case PartialOrder:
		return newTOExchange(cfg, true)
	case WallOfClocks:
		return newWoCExchange(cfg)
	default:
		panic(fmt.Sprintf("agent: unknown kind %d", kind))
	}
}

// stopFlag is shared by all agents of an exchange.
type stopFlag struct{ stopped atomic.Bool }

func (s *stopFlag) check() {
	if s.stopped.Load() {
		panic(ErrStopped)
	}
}

// noop agent/exchange.

type noopExchange struct{}

func (noopExchange) Kind() Kind           { return None }
func (noopExchange) MasterAgent() Agent   { return &noopAgent{} }
func (noopExchange) SlaveAgent(int) Agent { return &noopAgent{} }
func (noopExchange) Stop()                {}

type noopAgent struct{ ops atomic.Uint64 }

func (a *noopAgent) Before(int, uint64) {}
func (a *noopAgent) After(int, uint64)  { a.ops.Add(1) }
func (a *noopAgent) Ops() uint64        { return a.ops.Load() }
func (a *noopAgent) Stalls() uint64     { return 0 }
