package agent

import (
	"sync"
	"testing"
)

func TestCaptureCollectsMasterTickets(t *testing.T) {
	ex, cap := NewCapturingExchange(Config{Slaves: 0, MaxThreads: 2, BufCap: 64, WallSize: 64})
	m := ex.MasterAgent()
	var wg sync.WaitGroup
	for tid := 0; tid < 2; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				m.Before(tid, uint64(0x100*(tid+1)))
				m.After(tid, uint64(0x100*(tid+1)))
			}
		}(tid)
	}
	wg.Wait()
	ops := cap.Stop()
	ex.Stop()
	if len(ops[0]) != 20 || len(ops[1]) != 20 {
		t.Fatalf("captured %d/%d tickets, want 20/20", len(ops[0]), len(ops[1]))
	}
	// Per-thread tickets on one clock must be strictly increasing.
	for tid := 0; tid < 2; tid++ {
		for i := 1; i < len(ops[tid]); i++ {
			if ops[tid][i].Clock == ops[tid][i-1].Clock && ops[tid][i].Time <= ops[tid][i-1].Time {
				t.Fatalf("thread %d tickets not increasing: %+v", tid, ops[tid][i-1:i+1])
			}
		}
	}
}

func TestCaptureAlongsideLiveSlave(t *testing.T) {
	ex, cap := NewCapturingExchange(Config{Slaves: 1, MaxThreads: 1, BufCap: 64, WallSize: 64})
	m := ex.MasterAgent()
	s := ex.SlaveAgent(0)
	const ops = 30
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < ops; i++ {
			s.Before(0, 0x9000)
			s.After(0, 0x9000)
		}
	}()
	for i := 0; i < ops; i++ {
		m.Before(0, 0x1000)
		m.After(0, 0x1000)
	}
	<-done
	got := cap.Stop()
	ex.Stop()
	if len(got[0]) != ops {
		t.Fatalf("captured %d tickets alongside a live slave, want %d", len(got[0]), ops)
	}
}

func TestReplayExchangeReplaysTrace(t *testing.T) {
	// Record a 2-thread interleaving, then replay it and verify the same
	// per-variable serialization (the replay harness invariant).
	ex, cap := NewCapturingExchange(Config{Slaves: 0, MaxThreads: 2, BufCap: 256, WallSize: 64})
	m := ex.MasterAgent()
	// Interleave two threads on one variable with a known master order.
	var counter uint32
	var masterObs [2][]uint32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for tid := 0; tid < 2; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				m.Before(tid, 0x500)
				mu.Lock()
				masterObs[tid] = append(masterObs[tid], counter)
				counter++
				mu.Unlock()
				m.After(tid, 0x500)
			}
		}(tid)
	}
	wg.Wait()
	ops := cap.Stop()
	ex.Stop()

	rex := NewReplayExchange(ops, Config{MaxThreads: 2, WallSize: 64})
	defer rex.Stop()
	slave := rex.SlaveAgent(0)
	var rcounter uint32
	var replayObs [2][]uint32
	var rmu sync.Mutex
	var rwg sync.WaitGroup
	for tid := 0; tid < 2; tid++ {
		rwg.Add(1)
		go func(tid int) {
			defer rwg.Done()
			for i := 0; i < 25; i++ {
				slave.Before(tid, 0x999) // different address: positional replay
				rmu.Lock()
				replayObs[tid] = append(replayObs[tid], rcounter)
				rcounter++
				rmu.Unlock()
				slave.After(tid, 0x999)
			}
		}(tid)
	}
	rwg.Wait()
	for tid := 0; tid < 2; tid++ {
		for i := range masterObs[tid] {
			if masterObs[tid][i] != replayObs[tid][i] {
				t.Fatalf("thread %d op %d: replay observed %d, recording observed %d",
					tid, i, replayObs[tid][i], masterObs[tid][i])
			}
		}
	}
}
