package qualifier

import "testing"

// listing1Source models the Listing 1 spinlock at source level: a global
// lock object, a pointer parameter in lock/unlock, and a second pointer
// the lock's address flows through.
func listing1Source() *Program {
	return NewProgram(
		[]Var{
			{Name: "spinlock", Type: Type{}},
			{Name: "other", Type: Type{}},
			{Name: "lock_ptr", Type: Type{Pointer: true}},   // spinlock_lock's parameter
			{Name: "unlock_ptr", Type: Type{Pointer: true}}, // spinlock_unlock's parameter
			{Name: "tmp", Type: Type{Pointer: true}},        // local alias
			{Name: "other_ptr", Type: Type{Pointer: true}},  // unrelated pointer
		},
		[]Stmt{
			AddrOf{Dst: "tmp", Src: "spinlock", Line: 12},
			PtrAssign{Dst: "lock_ptr", Src: "tmp", Line: 12},
			PtrAssign{Dst: "unlock_ptr", Src: "tmp", Line: 14},
			AddrOf{Dst: "other_ptr", Src: "other", Line: 13},
		},
	)
}

func TestUnqualifiedProgramIsClean(t *testing.T) {
	if ds := Check(listing1Source()); len(ds) != 0 {
		t.Fatalf("stock program has diagnostics: %v", ds)
	}
}

func TestRefactorReachesFixpoint(t *testing.T) {
	// The Figure 3 loop: qualify the analysis-reported sync variable,
	// then iterate until all pointers to it are qualified too.
	p := listing1Source()
	Qualify(p, "spinlock") // fed by the stage-1 report
	iters, remaining := Refactor(p)
	if len(remaining) != 0 {
		t.Fatalf("diagnostics remain after fixpoint: %v", remaining)
	}
	if iters < 2 {
		t.Fatalf("fixpoint after %d iterations; propagation through the def-use chain needs several", iters)
	}
	got := QualifiedVars(p)
	want := []string{"lock_ptr", "spinlock", "tmp", "unlock_ptr"}
	if len(got) != len(want) {
		t.Fatalf("qualified vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("qualified vars = %v, want %v", got, want)
		}
	}
	// The unrelated pointer chain must stay untouched.
	if p.Vars["other"].Type.Atomic || p.Vars["other_ptr"].Type.Atomic {
		t.Fatal("qualifier leaked to unrelated variables")
	}
	// The refactored program compiles cleanly.
	if ds := Check(p); len(ds) != 0 {
		t.Fatalf("refactored program has diagnostics: %v", ds)
	}
}

func TestRuleIWarningOnUnqualifiedToQualified(t *testing.T) {
	p := NewProgram(
		[]Var{
			{Name: "x", Type: Type{}},
			{Name: "ap", Type: Type{Pointer: true, Atomic: true}},
		},
		[]Stmt{AddrOf{Dst: "ap", Src: "x", Line: 3}},
	)
	ds := Check(p)
	if len(ds) != 1 || ds[0].Severity != Warning || ds[0].FixVar != "x" {
		t.Fatalf("diagnostics = %v, want one warning fixing x", ds)
	}
}

func TestRuleIIErrorOnDiscardedQualifier(t *testing.T) {
	p := NewProgram(
		[]Var{
			{Name: "lock", Type: Type{Atomic: true}},
			{Name: "vp", Type: Type{Pointer: true}}, // e.g. a void* detour
		},
		[]Stmt{AddrOf{Dst: "vp", Src: "lock", Line: 9}},
	)
	ds := Check(p)
	if len(ds) != 1 || ds[0].Severity != Error {
		t.Fatalf("diagnostics = %v, want one error", ds)
	}
}

func TestRuleIIErrorOnPointerCast(t *testing.T) {
	p := NewProgram(
		[]Var{
			{Name: "ap", Type: Type{Pointer: true, Atomic: true}},
			{Name: "np", Type: Type{Pointer: true}},
		},
		[]Stmt{PtrAssign{Dst: "np", Src: "ap", Line: 4}},
	)
	ds := Check(p)
	if len(ds) != 1 || ds[0].Severity != Error {
		t.Fatalf("diagnostics = %v, want one error (cast discards _Atomic)", ds)
	}
}

func TestRuleIIIErrorOnAtomicInInlineAsm(t *testing.T) {
	p := NewProgram(
		[]Var{{Name: "lock", Type: Type{Atomic: true}}},
		[]Stmt{AsmUse{Var: "lock", Line: 7}},
	)
	ds := Check(p)
	if len(ds) != 1 || ds[0].Severity != Error || ds[0].FixVar != "" {
		t.Fatalf("diagnostics = %v, want one unfixable error", ds)
	}
}

func TestRefactorStopsOnGenuineErrors(t *testing.T) {
	// A sync variable that is also used in inline assembly: the fixpoint
	// loop must terminate and surface the error instead of spinning.
	p := NewProgram(
		[]Var{
			{Name: "lock", Type: Type{}},
			{Name: "p", Type: Type{Pointer: true}},
		},
		[]Stmt{
			AddrOf{Dst: "p", Src: "lock", Line: 2},
			AsmUse{Var: "lock", Line: 5},
		},
	)
	Qualify(p, "lock")
	_, remaining := Refactor(p)
	if len(remaining) != 1 || remaining[0].Severity != Error {
		t.Fatalf("remaining = %v, want the inline-asm error", remaining)
	}
}

func TestRefactorPropagatesThroughChains(t *testing.T) {
	// a = &lock; b = a; c = b — qualifying lock must ripple to all three.
	p := NewProgram(
		[]Var{
			{Name: "lock", Type: Type{}},
			{Name: "a", Type: Type{Pointer: true}},
			{Name: "b", Type: Type{Pointer: true}},
			{Name: "c", Type: Type{Pointer: true}},
		},
		[]Stmt{
			AddrOf{Dst: "a", Src: "lock", Line: 1},
			PtrAssign{Dst: "b", Src: "a", Line: 2},
			PtrAssign{Dst: "c", Src: "b", Line: 3},
		},
	)
	Qualify(p, "lock")
	iters, remaining := Refactor(p)
	if len(remaining) != 0 {
		t.Fatalf("remaining: %v", remaining)
	}
	for _, n := range []string{"a", "b", "c"} {
		if !p.Vars[n].Type.Atomic {
			t.Fatalf("%s not qualified after %d iterations", n, iters)
		}
	}
}

func TestTypeAndSeverityStrings(t *testing.T) {
	if (Type{Pointer: true, Atomic: true}).String() != "_Atomic int*" {
		t.Fatal("type string wrong")
	}
	if Warning.String() != "warning" || Error.String() != "error" {
		t.Fatal("severity strings wrong")
	}
	d := Diagnostic{Severity: Warning, Line: 3, Message: "m"}
	if d.String() != "warning: line 3: m" {
		t.Fatalf("diagnostic string = %q", d.String())
	}
}
