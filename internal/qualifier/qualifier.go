// Package qualifier implements the paper's explicit type-qualification
// workflow (§4.3.1, Figure 3): a miniature of the modified clang that
// drives source refactoring until every synchronization variable — and
// every pointer through which one is reached — carries the C11 _Atomic
// qualifier.
//
// The workflow:
//
//  1. Compile the unmodified source and run the stage-1 analysis
//     (internal/analysis) to find synchronization variables.
//  2. Qualify those variables (Qualify).
//  3. Repeatedly "recompile": the checker (Check) emits
//     - a WARNING when a pointer to a non-qualified object is assigned to
//     a pointer to an _Atomic-qualified object,
//     - an ERROR when a pointer to an _Atomic-qualified object is cast to
//     a pointer to a non-qualified object (discarding the qualifier),
//     - an ERROR when an _Atomic-qualified variable is used in inline
//     assembly.
//     Propagate applies the refactorings the warnings suggest, walking the
//     def-use chains up and down until a fixpoint (Refactor drives the
//     loop).
//
// The source model is deliberately tiny: integer objects, pointers to
// integers, address-of, pointer copies (assignments/casts/argument
// passing), and inline-asm uses — the constructs the paper's rules talk
// about.
package qualifier

import "fmt"

// Type is an int or a pointer-to-int type, with an Atomic qualifier on the
// pointee (the only position that matters for the workflow).
type Type struct {
	Pointer bool
	// Atomic marks the object (for int objects) or the pointee (for
	// pointers) as _Atomic-qualified.
	Atomic bool
}

func (t Type) String() string {
	q := ""
	if t.Atomic {
		q = "_Atomic "
	}
	if t.Pointer {
		return q + "int*"
	}
	return q + "int"
}

// Var is a declared variable.
type Var struct {
	Name string
	Type Type
}

// Stmt is one statement in the toy source language.
type Stmt interface{ stmt() }

// AddrOf is "dst = &src": dst must be a pointer, src an int object.
type AddrOf struct {
	Dst, Src string
	Line     int
}

// PtrAssign is "dst = src" between pointers (covers plain assignment,
// argument passing, and explicit casts — the C standard lets casts discard
// qualifiers, which is exactly what the checker must flag).
type PtrAssign struct {
	Dst, Src string
	Line     int
}

// AsmUse is "asm volatile(... : ... (var))": the variable appears in an
// inline assembly block.
type AsmUse struct {
	Var  string
	Line int
}

func (AddrOf) stmt()    {}
func (PtrAssign) stmt() {}
func (AsmUse) stmt()    {}

// Program is a toy translation unit.
type Program struct {
	Vars  map[string]*Var
	Stmts []Stmt
}

// NewProgram builds a program from declarations and statements.
func NewProgram(vars []Var, stmts []Stmt) *Program {
	p := &Program{Vars: map[string]*Var{}, Stmts: stmts}
	for i := range vars {
		v := vars[i]
		p.Vars[v.Name] = &v
	}
	return p
}

// Severity of a diagnostic.
type Severity int

const (
	// Warning suggests a refactoring (rule i).
	Warning Severity = iota
	// Error terminates compilation (rules ii and iii).
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one checker finding.
type Diagnostic struct {
	Severity Severity
	Line     int
	Message  string
	// FixVar names the variable whose type the suggested refactoring
	// would qualify ("" when no fix applies, i.e. errors).
	FixVar string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: line %d: %s", d.Severity, d.Line, d.Message)
}

// Check runs the modified-clang rules over the program.
func Check(p *Program) []Diagnostic {
	var ds []Diagnostic
	typ := func(name string) Type {
		if v, ok := p.Vars[name]; ok {
			return v.Type
		}
		return Type{}
	}
	for _, s := range p.Stmts {
		switch s := s.(type) {
		case AddrOf:
			dst, src := typ(s.Dst), typ(s.Src)
			if src.Atomic && !dst.Atomic {
				// &atomic object flowing into a non-qualified pointer:
				// the qualifier is about to be discarded — rule (ii).
				ds = append(ds, Diagnostic{Severity: Error, Line: s.Line,
					Message: fmt.Sprintf("address of _Atomic %q assigned to non-qualified pointer %q", s.Src, s.Dst),
					FixVar:  s.Dst})
			}
			if !src.Atomic && dst.Atomic {
				// Non-qualified object behind a qualified pointer:
				// rule (i), fix by qualifying the object.
				ds = append(ds, Diagnostic{Severity: Warning, Line: s.Line,
					Message: fmt.Sprintf("pointer to non-qualified %q cast to pointer to _Atomic (%q)", s.Src, s.Dst),
					FixVar:  s.Src})
			}
		case PtrAssign:
			dst, src := typ(s.Dst), typ(s.Src)
			if src.Atomic && !dst.Atomic {
				ds = append(ds, Diagnostic{Severity: Error, Line: s.Line,
					Message: fmt.Sprintf("cast discards _Atomic qualifier: %q = %q", s.Dst, s.Src),
					FixVar:  s.Dst})
			}
			if !src.Atomic && dst.Atomic {
				ds = append(ds, Diagnostic{Severity: Warning, Line: s.Line,
					Message: fmt.Sprintf("pointer to non-qualified cast to pointer to _Atomic: %q = %q", s.Dst, s.Src),
					FixVar:  s.Src})
			}
		case AsmUse:
			if typ(s.Var).Atomic {
				ds = append(ds, Diagnostic{Severity: Error, Line: s.Line,
					Message: fmt.Sprintf("_Atomic-qualified %q used in inline assembly", s.Var)})
			}
		}
	}
	return ds
}

// Qualify adds the _Atomic qualifier to the named variables (the output of
// the stage-1 analysis feeding the refactoring, Figure 3).
func Qualify(p *Program, names ...string) {
	for _, n := range names {
		if v, ok := p.Vars[n]; ok {
			v.Type.Atomic = true
		}
	}
}

// Refactor drives the Figure 3 loop: check, apply every suggested fix
// (qualify the FixVar of each diagnostic that has one), repeat until the
// checker emits no further fixable diagnostics. It returns the number of
// compile iterations and the diagnostics of the final pass (empty when the
// program reached the fully-qualified fixpoint; non-empty when genuine
// errors remain, e.g. _Atomic variables in inline assembly).
func Refactor(p *Program) (iterations int, remaining []Diagnostic) {
	for {
		iterations++
		ds := Check(p)
		fixed := false
		var rest []Diagnostic
		for _, d := range ds {
			if d.FixVar != "" {
				if v, ok := p.Vars[d.FixVar]; ok && !v.Type.Atomic {
					v.Type.Atomic = true
					fixed = true
					continue
				}
			}
			rest = append(rest, d)
		}
		if !fixed {
			return iterations, rest
		}
	}
}

// QualifiedVars returns the names of all _Atomic-qualified variables,
// for assertions and reporting.
func QualifiedVars(p *Program) []string {
	var out []string
	for name, v := range p.Vars {
		if v.Type.Atomic {
			out = append(out, name)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
