package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/kernel"
)

// Failure-injection coverage: sessions must tear down cleanly no matter
// where a variant is parked when things go wrong.

func TestProgramPanicIsCapturedNotFatal(t *testing.T) {
	prog := Program{Name: "panics", Main: func(th *Thread) {
		if th.Variant() == 0 {
			panic("boom")
		}
		// The other variant parks in a rendezvous that will never
		// complete; the kill must unwind it.
		th.Syscall(kernel.SysGetpid, [6]uint64{}, nil)
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks}, prog)
	if res.Panic != "boom" {
		t.Fatalf("Panic = %v, want boom", res.Panic)
	}
}

func TestExternalKillUnblocksKernelWaiters(t *testing.T) {
	// A thread blocked in a pipe read with no writer is only freed by the
	// session kill interrupting the kernel.
	started := make(chan struct{})
	prog := Program{Name: "stuck-in-kernel", Main: func(th *Thread) {
		p := th.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
		close(started)
		th.Syscall(kernel.SysRead, [6]uint64{p.Val, 16}, nil) // blocks forever
	}}
	s := NewSession(Options{Variants: 1}, prog)
	done := make(chan *Result, 1)
	go func() { done <- s.Run() }()
	<-started
	time.Sleep(5 * time.Millisecond)
	s.Kill()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("kill did not unblock the kernel read")
	}
}

func TestExternalKillUnblocksFutexWaiters(t *testing.T) {
	started := make(chan struct{})
	prog := Program{Name: "stuck-in-futex", Main: func(th *Thread) {
		v := th.NewSyncVar()
		close(started)
		th.FutexWait(v, 0) // no waker exists
	}}
	s := NewSession(Options{Variants: 1}, prog)
	done := make(chan *Result, 1)
	go func() { done <- s.Run() }()
	<-started
	time.Sleep(5 * time.Millisecond)
	s.Kill()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("kill did not unblock the futex wait")
	}
}

func TestExternalKillUnblocksAgentWaiters(t *testing.T) {
	// A slave thread stalled at a sync-op ticket that the (diverged-away)
	// master never produces.
	prog := Program{Name: "stuck-in-agent", Main: func(th *Thread) {
		v := th.NewSyncVar()
		if th.Variant() == 1 {
			th.Store(v, 1) // master records nothing: slave stalls in Before
		}
	}}
	s := NewSession(Options{Variants: 2, Agent: agent.WallOfClocks}, prog)
	done := make(chan *Result, 1)
	go func() { done <- s.Run() }()
	time.Sleep(10 * time.Millisecond)
	s.Kill()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("kill did not unblock the agent stall")
	}
}

func TestSmallSyncBufferBackpressure(t *testing.T) {
	// A sync buffer far smaller than the op count: the master must be
	// throttled by slave consumption, not crash or deadlock.
	prog := Program{Name: "backpressure", Main: func(th *Thread) {
		mu := newMutexForTest(th)
		n := 0
		hs := make([]*ThreadHandle, 2)
		for i := range hs {
			hs[i] = th.Spawn(func(tt *Thread) {
				for j := 0; j < 500; j++ {
					mu.lock(tt)
					n++
					mu.unlock(tt)
				}
			})
		}
		for _, h := range hs {
			h.Join()
		}
		fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/n")).Val
		th.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("%d", n)))
	}}
	for _, k := range allAgents() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			s := NewSession(Options{Variants: 2, Agent: k, SyncBufCap: 8, RingCap: 4}, prog)
			done := make(chan *Result, 1)
			go func() { done <- s.Run() }()
			var res *Result
			select {
			case res = <-done:
			case <-time.After(60 * time.Second):
				s.Kill()
				t.Fatal("backpressure deadlocked")
			}
			if res.Divergence != nil {
				t.Fatalf("divergence: %v", res.Divergence)
			}
			got, _ := s.Kernel().ReadFile("/n")
			if string(got) != "1000" {
				t.Fatalf("n = %q", got)
			}
		})
	}
}

func TestSpawnBeyondMaxThreadsPanicsCleanly(t *testing.T) {
	prog := Program{Name: "too-many-threads", Main: func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Spawn(func(tt *Thread) {}).Join()
		}
	}}
	res := runWithTimeout(t, Options{Variants: 1, MaxThreads: 4}, prog)
	if res.Panic == nil {
		t.Fatal("exceeding MaxThreads did not surface")
	}
}

func TestKillIsIdempotentFromResultSide(t *testing.T) {
	prog := Program{Name: "noop", Main: func(th *Thread) {}}
	s := NewSession(Options{Variants: 2, Agent: agent.WallOfClocks}, prog)
	res := s.Run()
	s.Kill() // after completion: must be harmless
	s.Kill()
	if res.Divergence != nil {
		t.Fatalf("divergence: %v", res.Divergence)
	}
}
