// Package core is the MVEE engine: it launches N diversified variants of a
// program, wires each variant to the monitor (system calls) and to a
// synchronization agent (sync ops), and collects the outcome.
//
// A "variant" is a set of goroutines ("vthreads") executing the same
// Program against its own diversified address space and kernel process.
// Thread i of every variant corresponds to thread i of every other variant;
// the Go scheduler supplies the real scheduling nondeterminism that the
// paper's machinery exists to tame.
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/futex"
	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/ring"
	"repro/internal/shm"
	"repro/internal/trace"
	"repro/internal/variant"
)

// Program is the unit of execution: Main runs as thread 0 (the initial
// thread) of every variant and may spawn further threads.
type Program struct {
	Name string
	Main func(t *Thread)
}

// Options configures a session.
type Options struct {
	// Variants is the number of variants to run in lockstep (>= 1).
	Variants int
	// Agent selects the sync-op replication strategy.
	Agent agent.Kind
	// Policy selects the monitor's comparison policy.
	Policy monitor.Policy
	// ASLR / DCL enable the diversity techniques (§5.1 Correctness).
	ASLR bool
	DCL  bool
	// Seed drives layout randomization.
	Seed int64
	// MaxThreads bounds logical threads per variant.
	MaxThreads int
	// SyncBufCap / RingCap size the sync and syscall buffers.
	SyncBufCap int
	RingCap    int
	// WallSize is the wall-of-clocks size (power of two).
	WallSize int
	// Kernel optionally supplies a pre-populated kernel (input files,
	// listening clients). If nil a fresh kernel is created.
	Kernel *kernel.Kernel
	// Record captures the session's nondeterminism (sync-op tickets and
	// syscall records) into Result.Trace for later offline replay. It
	// forces the wall-of-clocks agent.
	Record bool
	// Replay re-executes a recorded trace deterministically in a single
	// variant; Variants, Agent and diversity options are taken from the
	// session that produced the trace where relevant.
	Replay *trace.Trace
}

func (o *Options) fill() {
	if o.Variants <= 0 {
		o.Variants = 2
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 64
	}
	if o.SyncBufCap <= 0 {
		// Per-thread WoC sync buffers (and the shared TO/PO buffer). 1024
		// tickets of run-ahead per thread is far beyond what the slaves
		// ever lag in practice; larger buffers only add creation cost and
		// GC-scanned memory.
		o.SyncBufCap = 1024
	}
	if o.RingCap <= 0 {
		// Per-thread syscall rings. Under strict lockstep the in-flight
		// depth is ~1 and even the relaxed run-ahead protocol stays within
		// a few dozen records; 256 leaves ample slack while keeping lazy
		// ring creation (a zeroing of cap × sizeof(Record)) off the
		// first-request latency path.
		o.RingCap = 256
	}
	if o.WallSize <= 0 {
		o.WallSize = 4096
	}
}

// Result summarizes a finished session.
type Result struct {
	// Divergence is non-nil if the monitor shut the session down because
	// the variants diverged.
	Divergence *monitor.Divergence
	// Panic carries the first panic value raised by program code, if any;
	// the session is killed and all variants unwound when that happens.
	Panic any
	// Duration is the wall-clock time of the whole session.
	Duration time.Duration
	// Syscalls is the master variant's monitored syscall count.
	Syscalls uint64
	// SyncOps is the master variant's recorded sync-op count.
	SyncOps uint64
	// Stalls is the summed slave stall count (0 for 1 variant).
	Stalls uint64
	// Variants echoes the variant count.
	Variants int
	// Trace is the recorded execution when Options.Record was set.
	Trace *trace.Trace
}

// Session is one MVEE run in progress.
type Session struct {
	opts Options
	prog Program

	kern  *kernel.Kernel
	mon   *monitor.Monitor
	ex    agent.Exchange
	ipc   *shm.Registry
	cap   *agent.Capture
	vars  []*variantState
	start time.Time

	// Lifecycle: Start launches the variants exactly once; done closes
	// after every variant thread unwound and result is populated.
	startOnce sync.Once
	done      chan struct{}
	result    *Result
	hooks     hooks

	panicMu  sync.Mutex
	panicVal any // first program panic, if any
}

// hooks are the session-lifecycle callbacks. They must be registered
// before Start; registration is not synchronized against a running
// session.
type hooks struct {
	start      []func()
	finish     []func(*Result)
	divergence []func(*monitor.Divergence)
}

// variantState is the per-variant runtime: its address space, kernel
// process, agent, futex namespace, and thread accounting.
type variantState struct {
	id    int
	space *variant.Space
	proc  *kernel.Proc
	agent agent.Agent
	futex *futex.Table
	wg    sync.WaitGroup
}

// NewSession prepares (but does not start) a session.
func NewSession(opts Options, prog Program) *Session {
	opts.fill()
	if opts.Replay != nil {
		opts.Variants = 1
		if opts.Replay.MaxThreads > opts.MaxThreads {
			opts.MaxThreads = opts.Replay.MaxThreads
		}
		if opts.Replay.WallSize > 0 {
			opts.WallSize = opts.Replay.WallSize
		}
	}
	if opts.Record {
		opts.Agent = agent.WallOfClocks
	}
	kern := opts.Kernel
	if kern == nil {
		kern = kernel.New()
	}
	s := &Session{opts: opts, prog: prog, kern: kern, done: make(chan struct{})}

	procs := make([]*kernel.Proc, opts.Variants)
	s.vars = make([]*variantState, opts.Variants)
	for v := 0; v < opts.Variants; v++ {
		space := variant.NewSpace(v, variant.Options{ASLR: opts.ASLR, DCL: opts.DCL, Seed: opts.Seed})
		proc := kern.NewProc(space.BrkBase(), space.MmapBase())
		procs[v] = proc
		s.vars[v] = &variantState{
			id:    v,
			space: space,
			proc:  proc,
			futex: kern.FutexTable(proc.Pid),
		}
	}
	mcfg := monitor.Config{
		MaxThreads: opts.MaxThreads,
		RingCap:    opts.RingCap,
		Policy:     opts.Policy,
		Capture:    opts.Record,
	}
	if opts.Replay != nil {
		mcfg.Replay = opts.Replay.Syscalls
	}
	s.mon = monitor.New(kern, procs, mcfg)
	s.ipc = &shm.Registry{}
	acfg := agent.Config{
		Slaves:     opts.Variants - 1,
		MaxThreads: opts.MaxThreads,
		BufCap:     opts.SyncBufCap,
		WallSize:   opts.WallSize,
		Registry:   s.ipc,
	}
	switch {
	case opts.Replay != nil:
		s.ex = agent.NewReplayExchange(opts.Replay.SyncOps, acfg)
		s.vars[0].agent = s.ex.SlaveAgent(0)
	case opts.Record:
		s.ex, s.cap = agent.NewCapturingExchange(acfg)
		for v := 0; v < opts.Variants; v++ {
			if v == 0 {
				s.vars[v].agent = s.ex.MasterAgent()
			} else {
				s.vars[v].agent = s.ex.SlaveAgent(v - 1)
			}
		}
	default:
		s.ex = agent.NewExchange(s.agentKind(), acfg)
		for v := 0; v < opts.Variants; v++ {
			if v == 0 {
				s.vars[v].agent = s.ex.MasterAgent()
			} else {
				s.vars[v].agent = s.ex.SlaveAgent(v - 1)
			}
		}
	}
	// Teardown: when the monitor kills the session, stop the agent
	// exchange and release futex waiters so every vthread unwinds. If the
	// kill was a divergence, notify the divergence hooks immediately —
	// before the variants finish unwinding — so an embedding pool can stop
	// routing work to this session as early as possible.
	s.mon.OnKill(func() {
		s.ex.Stop()
		for _, vs := range s.vars {
			vs.futex.InterruptAll()
		}
		if d := s.mon.Divergence(); d != nil {
			for _, f := range s.hooks.divergence {
				f(d)
			}
		}
	})
	return s
}

// OnStart registers f to run on the Start goroutine just before the
// variants launch. Register hooks before calling Start or Run.
func (s *Session) OnStart(f func()) { s.hooks.start = append(s.hooks.start, f) }

// OnFinish registers f to run with the session result once every variant
// thread has finished, before Wait unblocks.
func (s *Session) OnFinish(f func(*Result)) { s.hooks.finish = append(s.hooks.finish, f) }

// OnDivergence registers f to run as soon as the monitor kills the session
// because the variants diverged — that is, while the variants are still
// unwinding, ahead of OnFinish. External kills (Session.Kill) do not fire
// it.
func (s *Session) OnDivergence(f func(*monitor.Divergence)) {
	s.hooks.divergence = append(s.hooks.divergence, f)
}

// agentKind degrades the agent to None for single-variant sessions: with no
// slaves there is nothing to replicate.
func (s *Session) agentKind() agent.Kind {
	if s.opts.Variants <= 1 {
		return agent.None
	}
	return s.opts.Agent
}

// Kernel exposes the session's kernel so tests and load generators can
// interact with the "outside world" (files, client connections).
func (s *Session) Kernel() *kernel.Kernel { return s.kern }

// Monitor exposes the monitor (for policy inspection in tests).
func (s *Session) Monitor() *monitor.Monitor { return s.mon }

// IPC exposes the session's shared-memory namespace, where the agent
// exchange publishes its sync buffers (§4.5).
func (s *Session) IPC() *shm.Registry { return s.ipc }

// Start launches the program in all variants and returns immediately;
// Wait collects the outcome. Calling Start more than once is a no-op.
func (s *Session) Start() {
	s.startOnce.Do(func() {
		s.start = time.Now()
		for _, f := range s.hooks.start {
			f()
		}
		for _, vs := range s.vars {
			vs.wg.Add(1)
			t := &Thread{ID: 0, sess: s, vs: vs}
			go t.run(s.prog.Main)
		}
		go s.collect()
	})
}

// collect joins every variant, assembles the Result, fires the finish
// hooks, and releases Wait.
func (s *Session) collect() {
	for _, vs := range s.vars {
		vs.wg.Wait()
	}
	s.panicMu.Lock()
	pv := s.panicVal
	s.panicMu.Unlock()
	res := &Result{
		Divergence: s.mon.Divergence(),
		Panic:      pv,
		Duration:   time.Since(s.start),
		Syscalls:   s.mon.Syscalls(0),
		SyncOps:    s.vars[0].agent.Ops(),
		Variants:   s.opts.Variants,
	}
	for _, vs := range s.vars[1:] {
		res.Stalls += vs.agent.Stalls()
	}
	if s.opts.Record {
		res.Trace = &trace.Trace{
			Program:    s.prog.Name,
			MaxThreads: s.opts.MaxThreads,
			WallSize:   s.opts.WallSize,
			SyncOps:    s.cap.Stop(),
			Syscalls:   s.mon.StopCapture(),
		}
	}
	s.result = res
	for _, f := range s.hooks.finish {
		f(res)
	}
	close(s.done)
}

// Wait blocks until every variant thread has finished or the session was
// killed, then returns the result. It may be called from any number of
// goroutines; all see the same Result.
func (s *Session) Wait() *Result {
	<-s.done
	return s.result
}

// Run executes the program in all variants and blocks until every variant
// thread has finished or the session was killed.
func (s *Session) Run() *Result {
	s.Start()
	return s.Wait()
}

// Kill aborts the session from outside (e.g. test timeouts).
func (s *Session) Kill() { s.mon.Kill(nil) }

// Run is the convenience one-shot API.
func Run(opts Options, prog Program) *Result {
	return NewSession(opts, prog).Run()
}

// Thread is a vthread: the handle program code uses for system calls, sync
// ops, and thread management. A Thread value is owned by exactly one
// goroutine.
type Thread struct {
	// ID is the logical thread id, identical across variants.
	ID   int
	sess *Session
	vs   *variantState
}

// run is the vthread trampoline: it executes fn and recovers the session's
// control-flow panics (kill, stop) so that teardown is quiet.
func (t *Thread) run(fn func(*Thread)) {
	defer t.vs.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			switch r {
			case monitor.ErrKilled, agent.ErrStopped, ring.ErrStopped, ErrVariantKilled:
				return // session teardown; exit quietly
			default:
				// A genuine program panic: record it, tear the session
				// down, and unwind quietly — a library must not crash
				// the embedding process for a program bug.
				t.sess.panicMu.Lock()
				if t.sess.panicVal == nil {
					t.sess.panicVal = r
				}
				t.sess.panicMu.Unlock()
				t.sess.mon.Kill(nil)
			}
		}
	}()
	fn(t)
	t.sess.mon.ThreadExit(t.vs.id, t.ID)
}

// Syscall traps into the monitor with a full kernel.Call.
func (t *Thread) Syscall(nr kernel.Sysno, args [6]uint64, data []byte) kernel.Ret {
	return t.sess.mon.Invoke(t.vs.id, t.ID, kernel.Call{Nr: nr, Args: args, Data: data})
}

// syscall is shorthand for data-less calls.
func (t *Thread) syscall(nr kernel.Sysno, args ...uint64) kernel.Ret {
	var a [6]uint64
	copy(a[:], args)
	return t.Syscall(nr, a, nil)
}

// Variant returns the variant id this thread belongs to, via the monitor's
// MVEE-awareness syscall (§4.5): 0 means master.
func (t *Thread) Variant() int {
	return int(t.syscall(kernel.SysMVEEAware).Val)
}

// IsMaster reports whether this thread's variant is the master.
func (t *Thread) IsMaster() bool { return t.Variant() == 0 }

// Variants returns the number of variants in the session.
func (t *Thread) Variants() int { return t.sess.opts.Variants }

// Spawn starts fn as a new vthread in this variant. The thread id is
// allocated by the ordered clone syscall, so the spawned threads correspond
// across variants. It returns a handle for joining.
func (t *Thread) Spawn(fn func(*Thread)) *ThreadHandle {
	ret := t.syscall(kernel.SysClone)
	tid := int(ret.Val)
	if tid >= t.sess.opts.MaxThreads {
		panic(fmt.Sprintf("core: thread id %d exceeds MaxThreads %d", tid, t.sess.opts.MaxThreads))
	}
	child := &Thread{ID: tid, sess: t.sess, vs: t.vs}
	h := &ThreadHandle{Tid: tid, done: make(chan struct{})}
	t.vs.wg.Add(1)
	go func() {
		defer close(h.done)
		child.run(fn)
	}()
	return h
}

// ThreadHandle joins a spawned vthread.
type ThreadHandle struct {
	Tid  int
	done chan struct{}
}

// Join blocks until the thread has exited.
func (h *ThreadHandle) Join() { <-h.done }

// Yield cedes the processor (sched_yield; unmonitored).
func (t *Thread) Yield() {
	t.syscall(kernel.SysSchedYield)
}
