// Package core is the MVEE engine: it launches N diversified variants of a
// program, wires each variant to the monitor (system calls) and to a
// synchronization agent (sync ops), and collects the outcome.
//
// A "variant" is a set of goroutines ("vthreads") executing the same
// Program against its own diversified address space and kernel process.
// Thread i of every variant corresponds to thread i of every other variant;
// the Go scheduler supplies the real scheduling nondeterminism that the
// paper's machinery exists to tame.
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/futex"
	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/ring"
	"repro/internal/shm"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/variant"
)

// Program is the unit of execution: Main runs as thread 0 (the initial
// thread) of every variant and may spawn further threads.
type Program struct {
	Name string
	Main func(t *Thread)
}

// Options configures a session.
type Options struct {
	// Variants is the number of variants to run in lockstep (>= 1).
	Variants int
	// Agent selects the sync-op replication strategy.
	Agent agent.Kind
	// Policy selects the monitor's comparison policy.
	Policy monitor.Policy
	// ASLR / DCL enable the diversity techniques (§5.1 Correctness).
	ASLR bool
	DCL  bool
	// Seed drives layout randomization.
	Seed int64
	// MaxThreads bounds logical threads per variant.
	MaxThreads int
	// SyncBufCap / RingCap size the sync and syscall buffers.
	SyncBufCap int
	RingCap    int
	// WallSize is the wall-of-clocks size (power of two).
	WallSize int
	// Telemetry enables the monitor's syscall matrix and per-variant
	// flight recorders (internal/telemetry). Off by default: the matrix
	// adds one atomic add per call and ~6 per replicated record.
	Telemetry bool
	// Kernel optionally supplies a pre-populated kernel (input files,
	// listening clients). If nil a fresh kernel is created.
	Kernel *kernel.Kernel
	// Inject installs a fault injector (internal/chaos) on the session's
	// kernel: the chaos plane. Faults are decided once, in the master's
	// execution of replicated calls, and replicated to every variant.
	Inject kernel.FaultInjector
	// Clock substitutes the kernel's time source (virtual time for
	// deterministic tests). Nil keeps the default.
	Clock kernel.Clock
	// TimeScale, when > 0 and != 1 and Clock is nil, runs the kernel on a
	// clock that passes TimeScale× faster than wall time — the
	// -time-scale knob for latency soaks.
	TimeScale float64
	// Record captures the session's nondeterminism (sync-op tickets and
	// syscall records) into Result.Trace for later offline replay. It
	// forces the wall-of-clocks agent.
	Record bool
	// Replay re-executes a recorded trace deterministically in a single
	// variant; Variants, Agent and diversity options are taken from the
	// session that produced the trace where relevant.
	Replay *trace.Trace
	// DetectDeadlocks arms the deadlock detector (internal/kernel's
	// BlockBoard) on the master variant: when every live master thread is
	// parked at an untimed internal blocking site, the session is killed
	// and Result.Deadlock carries the wait-for snapshot. Detection runs on
	// the master only — slaves replay the master's schedule, so a master
	// deadlock speaks for every variant. Off by default; the armed-but-idle
	// cost is one nil check per blocking kernel path.
	DetectDeadlocks bool
}

func (o *Options) fill() {
	if o.Variants <= 0 {
		o.Variants = 2
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 64
	}
	if o.SyncBufCap <= 0 {
		// Per-thread WoC sync buffers (and the shared TO/PO buffer). 1024
		// tickets of run-ahead per thread is far beyond what the slaves
		// ever lag in practice; larger buffers only add creation cost and
		// GC-scanned memory.
		o.SyncBufCap = 1024
	}
	if o.RingCap <= 0 {
		// Per-thread syscall rings. Under strict lockstep the in-flight
		// depth is ~1 and even the relaxed run-ahead protocol stays within
		// a few dozen records; 256 leaves ample slack while keeping lazy
		// ring creation (a zeroing of cap × sizeof(Record)) off the
		// first-request latency path.
		o.RingCap = 256
	}
	if o.WallSize <= 0 {
		o.WallSize = 4096
	}
}

// Result summarizes a finished session.
type Result struct {
	// Divergence is non-nil if the monitor shut the session down because
	// the variants diverged.
	Divergence *monitor.Divergence
	// Panic carries the first panic value raised by program code, if any;
	// the session is killed and all variants unwound when that happens.
	Panic any
	// Duration is the wall-clock time of the whole session.
	Duration time.Duration
	// Syscalls is the master variant's monitored syscall count.
	Syscalls uint64
	// SyncOps is the master variant's recorded sync-op count.
	SyncOps uint64
	// Stalls is the summed slave stall count (0 for 1 variant).
	Stalls uint64
	// Variants echoes the variant count.
	Variants int
	// Trace is the recorded execution when Options.Record was set.
	Trace *trace.Trace
	// Flight is each variant's flight-recorder tail (oldest first) when
	// Options.Telemetry was set — frozen at kill time if the session was
	// killed, the final live view otherwise.
	Flight [][]telemetry.FlightRecord
	// Deadlock is non-nil if the deadlock detector (Options.DetectDeadlocks)
	// shut the session down: every live master thread was provably parked at
	// an untimed internal blocking site. Distinct from Divergence — the
	// variants agreed perfectly; the program itself stopped making progress.
	Deadlock *DeadlockReport
}

// Session is one MVEE run in progress.
type Session struct {
	opts Options
	prog Program

	kern  *kernel.Kernel
	mon   *monitor.Monitor
	ex    agent.Exchange
	ipc   *shm.Registry
	cap   *agent.Capture
	vars  []*variantState
	dl    *deadlockState
	start time.Time

	// Lifecycle: Start launches the variants exactly once; done closes
	// after every variant thread unwound and result is populated.
	startOnce sync.Once
	done      chan struct{}
	result    *Result
	hooks     hooks

	panicMu  sync.Mutex
	panicVal any // first program panic, if any
}

// hooks are the session-lifecycle callbacks. They must be registered
// before Start; registration is not synchronized against a running
// session.
type hooks struct {
	start      []func()
	finish     []func(*Result)
	divergence []func(*monitor.Divergence)
}

// variantState is the per-variant runtime: its address space, kernel
// process, agent, futex namespace, and thread accounting.
type variantState struct {
	id    int
	space *variant.Space
	proc  *kernel.Proc
	agent agent.Agent
	futex *futex.Table
	wg    sync.WaitGroup
}

// NewSession prepares (but does not start) a session.
func NewSession(opts Options, prog Program) *Session {
	opts.fill()
	if opts.Replay != nil {
		opts.Variants = 1
		if opts.Replay.MaxThreads > opts.MaxThreads {
			opts.MaxThreads = opts.Replay.MaxThreads
		}
		if opts.Replay.WallSize > 0 {
			opts.WallSize = opts.Replay.WallSize
		}
	}
	if opts.Record {
		opts.Agent = agent.WallOfClocks
	}
	kern := opts.Kernel
	if kern == nil {
		kern = kernel.New()
	}
	if opts.Clock != nil {
		kern.SetClock(opts.Clock)
	} else if opts.TimeScale > 0 && opts.TimeScale != 1 {
		kern.SetClock(kernel.NewScaledClock(opts.TimeScale))
	}
	if opts.Inject != nil {
		kern.SetInjector(opts.Inject)
	}
	s := &Session{opts: opts, prog: prog, kern: kern, done: make(chan struct{})}
	if opts.DetectDeadlocks && opts.Replay == nil {
		s.dl = newDeadlockState(opts.MaxThreads)
	}

	procs := make([]*kernel.Proc, opts.Variants)
	s.vars = make([]*variantState, opts.Variants)
	for v := 0; v < opts.Variants; v++ {
		space := variant.NewSpace(v, variant.Options{ASLR: opts.ASLR, DCL: opts.DCL, Seed: opts.Seed})
		proc := kern.NewProc(space.BrkBase(), space.MmapBase())
		procs[v] = proc
		s.vars[v] = &variantState{
			id:    v,
			space: space,
			proc:  proc,
			futex: kern.FutexTable(proc.Pid),
		}
	}
	if s.dl != nil {
		// The board arms the master's root process only; fork children
		// inherit it kernel-side. The callback runs on the board's watcher
		// goroutine after the snapshot validated.
		s.dl.board = kernel.NewBlockBoard(opts.MaxThreads, s.onDeadlock)
		procs[0].SetBlockBoard(s.dl.board)
	}
	mcfg := monitor.Config{
		MaxThreads: opts.MaxThreads,
		RingCap:    opts.RingCap,
		Policy:     opts.Policy,
		Capture:    opts.Record,
		Telemetry:  opts.Telemetry,
	}
	if opts.Replay != nil {
		mcfg.Replay = opts.Replay.Syscalls
	}
	s.mon = monitor.New(kern, procs, mcfg)
	s.ipc = &shm.Registry{}
	acfg := agent.Config{
		Slaves:     opts.Variants - 1,
		MaxThreads: opts.MaxThreads,
		BufCap:     opts.SyncBufCap,
		WallSize:   opts.WallSize,
		Registry:   s.ipc,
	}
	switch {
	case opts.Replay != nil:
		s.ex = agent.NewReplayExchange(opts.Replay.SyncOps, acfg)
		s.vars[0].agent = s.ex.SlaveAgent(0)
	case opts.Record:
		s.ex, s.cap = agent.NewCapturingExchange(acfg)
		for v := 0; v < opts.Variants; v++ {
			if v == 0 {
				s.vars[v].agent = s.ex.MasterAgent()
			} else {
				s.vars[v].agent = s.ex.SlaveAgent(v - 1)
			}
		}
	default:
		s.ex = agent.NewExchange(s.agentKind(), acfg)
		for v := 0; v < opts.Variants; v++ {
			if v == 0 {
				s.vars[v].agent = s.ex.MasterAgent()
			} else {
				s.vars[v].agent = s.ex.SlaveAgent(v - 1)
			}
		}
	}
	// Teardown: when the monitor kills the session, stop the agent
	// exchange and release futex waiters so every vthread unwinds. If the
	// kill was a divergence, notify the divergence hooks immediately —
	// before the variants finish unwinding — so an embedding pool can stop
	// routing work to this session as early as possible.
	s.mon.OnKill(func() {
		s.ex.Stop()
		for _, vs := range s.vars {
			vs.futex.InterruptAll()
		}
		if d := s.mon.Divergence(); d != nil {
			for _, f := range s.hooks.divergence {
				f(d)
			}
		}
	})
	return s
}

// OnStart registers f to run on the Start goroutine just before the
// variants launch. Register hooks before calling Start or Run.
func (s *Session) OnStart(f func()) { s.hooks.start = append(s.hooks.start, f) }

// OnFinish registers f to run with the session result once every variant
// thread has finished, before Wait unblocks.
func (s *Session) OnFinish(f func(*Result)) { s.hooks.finish = append(s.hooks.finish, f) }

// OnDivergence registers f to run as soon as the monitor kills the session
// because the variants diverged — that is, while the variants are still
// unwinding, ahead of OnFinish. External kills (Session.Kill) do not fire
// it.
func (s *Session) OnDivergence(f func(*monitor.Divergence)) {
	s.hooks.divergence = append(s.hooks.divergence, f)
}

// agentKind degrades the agent to None for single-variant sessions: with no
// slaves there is nothing to replicate.
func (s *Session) agentKind() agent.Kind {
	if s.opts.Variants <= 1 {
		return agent.None
	}
	return s.opts.Agent
}

// Kernel exposes the session's kernel so tests and load generators can
// interact with the "outside world" (files, client connections).
func (s *Session) Kernel() *kernel.Kernel { return s.kern }

// Monitor exposes the monitor (for policy inspection in tests).
func (s *Session) Monitor() *monitor.Monitor { return s.mon }

// Telemetry exposes the session's telemetry recorder (nil unless
// Options.Telemetry was set).
func (s *Session) Telemetry() *telemetry.Recorder { return s.mon.Telemetry() }

// IPC exposes the session's shared-memory namespace, where the agent
// exchange publishes its sync buffers (§4.5).
func (s *Session) IPC() *shm.Registry { return s.ipc }

// Start launches the program in all variants and returns immediately;
// Wait collects the outcome. Calling Start more than once is a no-op.
func (s *Session) Start() {
	s.startOnce.Do(func() {
		s.start = time.Now()
		for _, f := range s.hooks.start {
			f()
		}
		for _, vs := range s.vars {
			vs.wg.Add(1)
			t := &Thread{ID: 0, sess: s, vs: vs, proc: vs.proc,
				sigs: newSigTable(), ps: &procState{}}
			t.ps.wg.Add(1)
			go t.run(s.prog.Main)
		}
		go s.collect()
	})
}

// collect joins every variant, assembles the Result, fires the finish
// hooks, and releases Wait.
func (s *Session) collect() {
	for _, vs := range s.vars {
		vs.wg.Wait()
	}
	if s.dl != nil {
		s.dl.board.Close()
	}
	s.panicMu.Lock()
	pv := s.panicVal
	s.panicMu.Unlock()
	res := &Result{
		Divergence: s.mon.Divergence(),
		Panic:      pv,
		Duration:   time.Since(s.start),
		Syscalls:   s.mon.Syscalls(0),
		SyncOps:    s.vars[0].agent.Ops(),
		Variants:   s.opts.Variants,
		Flight:     s.mon.FlightTail(),
		Deadlock:   s.Deadlock(),
	}
	for _, vs := range s.vars[1:] {
		res.Stalls += vs.agent.Stalls()
	}
	if s.opts.Record {
		res.Trace = &trace.Trace{
			Program:    s.prog.Name,
			MaxThreads: s.opts.MaxThreads,
			WallSize:   s.opts.WallSize,
			SyncOps:    s.cap.Stop(),
			Syscalls:   s.mon.StopCapture(),
		}
	}
	s.result = res
	for _, f := range s.hooks.finish {
		f(res)
	}
	close(s.done)
}

// Wait blocks until every variant thread has finished or the session was
// killed, then returns the result. It may be called from any number of
// goroutines; all see the same Result.
func (s *Session) Wait() *Result {
	<-s.done
	return s.result
}

// Run executes the program in all variants and blocks until every variant
// thread has finished or the session was killed.
func (s *Session) Run() *Result {
	s.Start()
	return s.Wait()
}

// Kill aborts the session from outside (e.g. test timeouts).
func (s *Session) Kill() { s.mon.Kill(nil) }

// Signal posts signo to the session's root process from outside the guest —
// the host-side kill(2), and the admin plane's reload trigger. Delivery
// happens at the next monitored syscall boundary reached by any thread of
// the root process, identically in every variant: only the master's pending
// state is consulted (the master stamps Ret.Sig), and slaves learn of the
// delivery from the replicated record. It reports whether the signal was
// accepted (false for an invalid signo or an already-dead root).
func (s *Session) Signal(signo int) bool {
	return s.vars[0].proc.Post(signo)
}

// Run is the convenience one-shot API.
func Run(opts Options, prog Program) *Result {
	return NewSession(opts, prog).Run()
}

// Thread is a vthread: the handle program code uses for system calls, sync
// ops, and thread management. A Thread value is owned by exactly one
// goroutine.
type Thread struct {
	// ID is the logical thread id, identical across variants (and unique
	// across the whole process tree: fork children draw from the same
	// tid space).
	ID   int
	sess *Session
	vs   *variantState
	// proc is the thread's current process: the variant's root, or a
	// fork descendant. All kernel state (descriptors, signals, pid) is
	// per-proc.
	proc *kernel.Proc
	// sigs maps caught signals to their Go handlers, shared by every
	// thread of one process within one variant (fork children get a
	// copy, like Linux inherits dispositions).
	sigs *sigTable
	// ps is the join state of this thread's process in this variant,
	// shared by every sibling vthread (Spawn inherits it; Fork starts a
	// fresh one).
	ps *procState
	// leader marks the initial thread of a forked process: its return
	// (or a terminating signal) ends the process, so the trampoline
	// issues the implicit SysExit.
	leader bool
}

// sigTable is the core-side half of a process's signal table: the actual
// Go handler functions behind the kernel's SigHandler dispositions.
type sigTable struct {
	mu sync.Mutex
	h  map[int]func(*Thread, int)
}

func newSigTable() *sigTable { return &sigTable{h: make(map[int]func(*Thread, int))} }

func (st *sigTable) clone() *sigTable {
	st.mu.Lock()
	defer st.mu.Unlock()
	c := newSigTable()
	for s, h := range st.h {
		c.h[s] = h
	}
	return c
}

// set installs (or, with nil, removes) a handler and returns the previous
// one, for rollback when the registering syscall fails.
func (st *sigTable) set(signo int, h func(*Thread, int)) func(*Thread, int) {
	st.mu.Lock()
	old := st.h[signo]
	if h == nil {
		delete(st.h, signo)
	} else {
		st.h[signo] = h
	}
	st.mu.Unlock()
	return old
}

func (st *sigTable) handler(signo int) func(*Thread, int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.h[signo]
}

// procExit is the control-flow panic that terminates a process: raised by
// Thread.Exit and by the delivery of a terminating signal, recovered by
// the trampoline, which performs the kernel exit.
type procExit struct{ status int }

// threadKill is the control-flow panic that unwinds ONE thread because its
// process entered exit-group: a sibling exited the process (Thread.Exit, a
// terminating signal, or the leader returning) and this thread observed the
// pseudo-signal kernel.SigExitGroup at its next syscall boundary. The
// trampoline recovers it and issues the thread-exit syscall; the last
// sibling out completes the kernel-side zombie transition.
type threadKill struct{}

// procState is the per-(variant, process) join state: a WaitGroup counting
// the process's live vthread trampolines. ProcHandle.Join waits on it, so
// joining a forked child means waiting for the WHOLE process — every
// spawned sibling included — to unwind, not just the initial thread.
// (Add-while-waited is safe: a thread only spawns while holding its own +1,
// so the counter cannot touch zero before the process is really gone.)
type procState struct{ wg sync.WaitGroup }

// run is the vthread trampoline: it executes fn and recovers the session's
// control-flow panics (kill, stop, process exit) so that teardown is quiet.
func (t *Thread) run(fn func(*Thread)) {
	defer t.vs.wg.Done()
	defer t.ps.wg.Done()
	if b := t.board(); b != nil {
		// Master-variant thread accounting for the deadlock detector: the
		// board's live count must cover every vthread that can ever park,
		// and the exit must fire on every unwind path. The defer sits
		// between the WaitGroup defers (so the board is quiesced before
		// collect can Close it) and the recover (which may still issue the
		// exit syscalls — none of which park at instrumented sites).
		b.ThreadStart(t.ID)
		defer b.ThreadExit(t.ID)
	}
	defer func() {
		if r := recover(); r != nil {
			switch r {
			case monitor.ErrKilled, agent.ErrStopped, ring.ErrStopped, ErrVariantKilled:
				return // session teardown; exit quietly
			default:
				switch rv := r.(type) {
				case procExit:
					// Process termination (Thread.Exit, or a terminating
					// signal delivered at a syscall boundary): perform the
					// kernel exit and the thread-exit rendezvous. Both are
					// monitored events at a deterministic position, so
					// master and slaves unwind at the same point.
					t.finishProc(rv.status)
					return
				case threadKill:
					// Exit-group: a sibling ended the process; this thread
					// retires itself without touching the exit status.
					t.finishThread()
					return
				}
				// A genuine program panic: record it, tear the session
				// down, and unwind quietly — a library must not crash
				// the embedding process for a program bug.
				t.sess.panicMu.Lock()
				if t.sess.panicVal == nil {
					t.sess.panicVal = r
				}
				t.sess.panicMu.Unlock()
				t.sess.mon.Kill(nil)
			}
		}
	}()
	fn(t)
	if t.leader {
		// The initial thread of a forked process returning IS the process
		// exiting: zombie + SIGCHLD + waitpid wake, all inside the
		// replicated stream. Sibling threads still running observe the
		// exit-group at their next syscall boundary and unwind.
		t.syscall(kernel.SysExit, 0)
	} else {
		// Any other thread returning retires just itself — uniform for
		// spawned threads and the variant root's initial thread (whose
		// process, like init, never exits from inside).
		t.syscall(kernel.SysThreadExit)
	}
	t.sess.mon.ThreadExit(t.vs.id, t.ID)
}

// finishProc performs the kernel process exit and the thread-exit
// rendezvous from inside the trampoline's recover; session-teardown panics
// raised by either are swallowed (the session is dying anyway, and a panic
// escaping a deferred function would crash the embedder).
func (t *Thread) finishProc(status int) {
	defer func() {
		r := recover()
		switch r {
		case nil, monitor.ErrKilled, agent.ErrStopped, ring.ErrStopped, ErrVariantKilled:
			return
		}
		switch r.(type) {
		case procExit, threadKill:
			// A second terminating signal (or the exit-group marker)
			// delivered at the exit boundary: the process is already dying,
			// so the repeat is moot — and re-panicking here would escape
			// the trampoline's recover and crash the embedder.
			return
		}
		panic(r)
	}()
	t.syscall(kernel.SysExit, uint64(status))
	t.sess.mon.ThreadExit(t.vs.id, t.ID)
}

// finishThread is finishProc for a thread retired by exit-group: it issues
// the thread-exit syscall (the last sibling's completes the process's
// zombie transition kernel-side) and the monitor rendezvous, swallowing
// session-teardown panics like finishProc does.
func (t *Thread) finishThread() {
	defer func() {
		r := recover()
		switch r {
		case nil, monitor.ErrKilled, agent.ErrStopped, ring.ErrStopped, ErrVariantKilled:
			return
		}
		switch r.(type) {
		case procExit, threadKill:
			return
		}
		panic(r)
	}()
	t.syscall(kernel.SysThreadExit)
	t.sess.mon.ThreadExit(t.vs.id, t.ID)
}

// Syscall traps into the monitor with a full kernel.Call. If a signal is
// delivered at this boundary (Ret.Sig), the registered handler runs on
// this thread before Syscall returns — or, for a terminating signal with
// no handler, the process exits. Delivery order is identical across
// variants because Ret.Sig is part of the replicated record.
func (t *Thread) Syscall(nr kernel.Sysno, args [6]uint64, data []byte) kernel.Ret {
	ret := t.sess.mon.InvokeOn(t.vs.id, t.ID, t.proc, kernel.Call{Nr: nr, Args: args, Data: data, Tid: t.ID})
	if ret.Sig != 0 {
		t.deliver(int(ret.Sig))
	}
	return ret
}

// SyscallInto is Syscall with a caller-provided destination buffer for
// input-replicating calls (read/recv): the master's kernel execution fills
// buf directly, slaves copy the replicated record's bytes into their own
// buf, and Ret.Data aliases buf's prefix. This is how a serving loop
// recycles ONE scratch buffer across requests instead of paying the
// exact-sized allocation the bufferless path makes per call.
func (t *Thread) SyscallInto(nr kernel.Sysno, args [6]uint64, buf []byte) kernel.Ret {
	ret := t.sess.mon.InvokeOn(t.vs.id, t.ID, t.proc, kernel.Call{Nr: nr, Args: args, Buf: buf, Tid: t.ID})
	if ret.Sig != 0 {
		t.deliver(int(ret.Sig))
	}
	return ret
}

// SyscallBatch traps into the monitor with a RUN of calls replicated as
// one multi-record (monitor.InvokeBatchOn): one cross-core publication per
// batch instead of one per call. rets must be len(calls); rets[i] receives
// call i's result. Only replicated calls batch (recv/send/poll-style I/O);
// a batch containing anything else transparently falls back to the
// per-call path inside the monitor. The batch is ONE signal-delivery
// boundary: a signal landing mid-batch is stamped on the last record and
// delivered here after every result is in.
func (t *Thread) SyscallBatch(calls []kernel.Call, rets []kernel.Ret) {
	for i := range calls {
		calls[i].Tid = t.ID
	}
	t.sess.mon.InvokeBatchOn(t.vs.id, t.ID, t.proc, calls, rets)
	// A true batch stamps at most the last record's Sig; the fallback path
	// may stamp several. Deliver them in record order either way — the
	// positions are replicated, so every variant runs the same handlers at
	// the same boundaries.
	for i := range rets {
		if rets[i].Sig != 0 {
			t.deliver(int(rets[i].Sig))
		}
	}
}

// deliver runs the handler for a signal popped at a syscall boundary, or
// applies the default action (terminate) when none is registered. Handlers
// run on the interrupted thread and may make syscalls — those nest into
// the replicated stream at the same position in every variant.
func (t *Thread) deliver(signo int) {
	if signo == kernel.SigExitGroup {
		// Not a real signal: the kernel's exit-group marker, stamped at
		// this boundary because a sibling ended the process. No handler
		// can exist for it (it is outside the signal space); unwind.
		panic(threadKill{})
	}
	if h := t.sigs.handler(signo); h != nil {
		h(t, signo)
		return
	}
	if kernel.DefaultTerminates(signo) {
		panic(procExit{status: 128 + signo})
	}
}

// syscall is shorthand for data-less calls.
func (t *Thread) syscall(nr kernel.Sysno, args ...uint64) kernel.Ret {
	var a [6]uint64
	copy(a[:], args)
	return t.Syscall(nr, a, nil)
}

// Variant returns the variant id this thread belongs to, via the monitor's
// MVEE-awareness syscall (§4.5): 0 means master.
func (t *Thread) Variant() int {
	return int(t.syscall(kernel.SysMVEEAware).Val)
}

// IsMaster reports whether this thread's variant is the master.
func (t *Thread) IsMaster() bool { return t.Variant() == 0 }

// Variants returns the number of variants in the session.
func (t *Thread) Variants() int { return t.sess.opts.Variants }

// Spawn starts fn as a new vthread of the calling thread's PROCESS — the
// variant root or any fork descendant. The thread id is allocated by the
// ordered clone syscall, so the spawned threads correspond across variants.
// It returns a handle for joining.
//
// Spawn returns nil when the tree's thread-id space is exhausted (tids are
// never recycled, and the monitor's per-tid rings are sized MaxThreads):
// the clone syscall fails with EAGAIN at the same ordered position in every
// variant, so the degradation is itself deterministic — a worker that
// cannot grow its pool keeps serving with the threads it has instead of
// diverging or dying.
func (t *Thread) Spawn(fn func(*Thread)) *ThreadHandle {
	ret := t.syscall(kernel.SysClone, uint64(t.sess.opts.MaxThreads))
	if !ret.Ok() {
		return nil
	}
	tid := int(ret.Val)
	child := &Thread{ID: tid, sess: t.sess, vs: t.vs, proc: t.proc, sigs: t.sigs, ps: t.ps}
	h := &ThreadHandle{Tid: tid, done: make(chan struct{})}
	t.vs.wg.Add(1)
	t.ps.wg.Add(1)
	go func() {
		defer close(h.done)
		child.run(fn)
	}()
	return h
}

// ThreadHandle joins a spawned vthread.
type ThreadHandle struct {
	Tid  int
	done chan struct{}
}

// Join blocks until the thread has exited.
func (h *ThreadHandle) Join() { <-h.done }

// Yield cedes the processor (sched_yield; unmonitored).
func (t *Thread) Yield() {
	t.syscall(kernel.SysSchedYield)
}

// ProcHandle is the parent-side handle of a forked process.
type ProcHandle struct {
	// Pid is the child's guest-visible pid (identical across variants),
	// the value to pass to Kill and Waitpid.
	Pid int
	// Tid is the child's initial thread id.
	Tid int
	ps  *procState
}

// Join blocks until EVERY thread of the child process has unwound in this
// variant — the initial thread and all its Spawn siblings, through their
// kernel exits, so the process is fully torn down (zombie or reaped, no
// thread still mid-syscall) when Join returns. It is a scheduling
// convenience for tests; the guest-visible way to synchronize with a
// child's death is Waitpid.
func (h *ProcHandle) Join() { h.ps.wg.Wait() }

// Fork creates a child PROCESS running fn as its initial thread: a fresh
// kernel process sharing this thread's open file descriptions (so a
// listening socket accepted on by the parent is accepted on by the child —
// the prefork server shape), inheriting the signal dispositions and
// blocked mask, with its own pid. The pid and the child's thread id are
// allocated inside the ordered fork syscall, so they are identical across
// variants. The child is a full process: fn may Spawn further threads. fn
// returning ends the WHOLE process (implicit exit status 0, exit-group
// unwinding any still-running siblings at their next syscall boundary);
// Thread.Exit ends it early the same way.
//
// Fork returns nil when the tree's thread-id space is exhausted (tids are
// never recycled, and the monitor's per-tid rings are sized MaxThreads):
// the kernel-side child is exited immediately — identically in every
// variant, since the failing tid is itself deterministic — so the parent's
// next waitpid reaps it with status 0 and a long-lived re-forking server
// degrades to a smaller pool instead of dying. Exhaustion hit later, by a
// Spawn inside the child, surfaces as that Spawn returning nil (EAGAIN at
// the same ordered position in every variant) — same clean, deterministic
// degradation, one level down.
func (t *Thread) Fork(fn func(*Thread)) *ProcHandle {
	ret := t.syscall(kernel.SysFork)
	if !ret.Ok() {
		return nil
	}
	pid, tid := int(ret.Val), int(ret.Val2)
	childProc := t.proc.Child(pid)
	if childProc == nil {
		panic(fmt.Sprintf("core: forked child %d not found in this variant's process tree", pid))
	}
	if tid >= t.sess.opts.MaxThreads {
		// Exit the never-to-run child directly against this variant's
		// kernel (deterministic: every variant takes this branch at the
		// same fork). No vthread exists to route it through the monitor.
		t.sess.kern.Do(childProc, kernel.Call{Nr: kernel.SysExit})
		return nil
	}
	ps := &procState{}
	ps.wg.Add(1)
	child := &Thread{ID: tid, sess: t.sess, vs: t.vs,
		proc: childProc, sigs: t.sigs.clone(), ps: ps, leader: true}
	h := &ProcHandle{Pid: pid, Tid: tid, ps: ps}
	t.vs.wg.Add(1)
	go child.run(fn)
	return h
}

// Exit terminates the calling thread's PROCESS with the given status, like
// exit(2): descriptors close, the process turns zombie for its parent's
// waitpid, and SIGCHLD is posted. It does not return.
func (t *Thread) Exit(status int) {
	panic(procExit{status: status})
}

// Getpid returns the guest-visible process id (via the replicated getpid
// syscall, so every variant observes the master's — deterministic — pid).
func (t *Thread) Getpid() int {
	return int(t.syscall(kernel.SysGetpid).Val)
}

// Sigaction installs h as the handler for signo (h runs on whichever
// thread of the process is at a syscall boundary when the signal is
// delivered), or restores the default disposition when h is nil. It
// returns false for an invalid signo (SIGKILL included).
//
// For installs, the Go handler enters the table BEFORE the ordered kernel
// syscall flips the disposition: any delivery that can observe disposition
// SigHandler therefore also finds the handler, in every variant — the
// reverse order opened a window where a concurrent kill terminated one
// variant's process while the other ran the handler. (Removing or
// replacing a handler while another thread may be concurrently receiving
// that same signal remains a guest-program race, exactly as with real
// sigaction.)
func (t *Thread) Sigaction(signo int, h func(*Thread, int)) bool {
	disp := uint64(kernel.SigDfl)
	var old func(*Thread, int)
	if h != nil {
		disp = kernel.SigHandler
		old = t.sigs.set(signo, h)
	}
	if !t.syscall(kernel.SysSigaction, uint64(signo), disp).Ok() {
		if h != nil {
			t.sigs.set(signo, old) // the kernel rejected it; undo
		}
		return false
	}
	if h == nil {
		t.sigs.set(signo, nil)
	}
	return true
}

// IgnoreSignal sets signo's disposition to SIG_IGN: pending and future
// instances are discarded without delivery.
func (t *Thread) IgnoreSignal(signo int) bool {
	if !t.syscall(kernel.SysSigaction, uint64(signo), kernel.SigIgn).Ok() {
		return false
	}
	t.sigs.set(signo, nil)
	return true
}

// Kill posts signo to process pid (of this thread's variant tree). The
// (pid, signo) pair is compared across variants: a variant signalling a
// different target or signal diverges before anything is delivered.
func (t *Thread) Kill(pid, signo int) kernel.Errno {
	return t.syscall(kernel.SysKill, uint64(pid), uint64(signo)).Err
}

// Wait blocks until any child process exits and reaps it, returning its
// pid and exit status. Errno is ECHILD when no children remain, EINTR when
// a deliverable signal interrupted the wait (the handler has already run;
// callers typically retry).
func (t *Thread) Wait() (pid, status int, errno kernel.Errno) {
	return t.Waitpid(-1)
}

// Waitpid is Wait for one specific child pid (or any child when pid < 0).
func (t *Thread) Waitpid(pid int) (int, int, kernel.Errno) {
	sel := kernel.WaitAny
	if pid >= 0 {
		sel = uint64(pid)
	}
	ret := t.syscall(kernel.SysWaitpid, sel)
	if !ret.Ok() {
		return 0, 0, ret.Err
	}
	return int(ret.Val), int(ret.Val2), kernel.OK
}
