package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/kernel"
)

// Deadlock detection, core side (DESIGN.md §11). The kernel's BlockBoard
// proves quiescence — every live master thread parked at an untimed
// internal blocking site. This file owns what the kernel cannot know: which
// lock-like resources each thread HOLDS (synclib's mutexes report
// acquisitions through Thread.NoteAcquire/NoteRelease), turning the
// blocked-site snapshot into a wait-for graph whose cycle names the
// culprits. Detection is master-only by construction: the slaves replay the
// master's sync schedule, so the master blocking forever means every
// variant blocks forever — one verdict speaks for the session.

// DeadlockReport is the detector's verdict, surfaced on Result.Deadlock. It
// is deliberately a different type from monitor.Divergence: a divergence
// means the variants disagreed (possible attack); a deadlock means they
// agreed perfectly on a program that stopped making progress.
type DeadlockReport struct {
	// Threads lists every blocked thread at the moment of detection,
	// sorted by tid.
	Threads []BlockedThread
	// Cycle is the sorted tid set of a wait-for cycle through held sync
	// variables (the mutex-shaped deadlocks: double-lock, AB-BA, reader
	// blocking its own upgrade). Empty when the quiescence is not
	// lock-shaped — a lost cond-var wakeup, a pipe send/recv cycle, an
	// orphaned waitpid — where Threads still records who slept where.
	Cycle []int
}

// BlockedThread is one thread's row in the report.
type BlockedThread struct {
	// Tid is the logical thread id (identical across variants).
	Tid int
	// Kind is the blocking site class: "futex", "pipe-read", "pipe-write",
	// "waitpid", "poll" (kernel.BlockKind strings).
	Kind string
	// Addr is the waited object for futex (the sync variable's master-
	// variant address) and waitpid (the selector); 0 otherwise.
	Addr uint64
	// FD is the blocked descriptor for pipe sites (for poll: the entry
	// count of the fd set); 0 otherwise.
	FD int
	// Holds lists the sync-variable addresses this thread held at
	// detection time, in acquisition order.
	Holds []uint64
}

// String renders a one-line summary suitable for logs and quarantine rows.
func (r *DeadlockReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "deadlock: %d blocked", len(r.Threads))
	if len(r.Cycle) > 0 {
		sb.WriteString(" cycle=")
		for i, tid := range r.Cycle {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "t%d", tid)
		}
	}
	for _, bt := range r.Threads {
		fmt.Fprintf(&sb, "; t%d:%s", bt.Tid, bt.Kind)
		switch bt.Kind {
		case "futex":
			fmt.Fprintf(&sb, "@%#x", bt.Addr)
		case "pipe-read", "pipe-write":
			fmt.Fprintf(&sb, " fd=%d", bt.FD)
		}
		if len(bt.Holds) > 0 {
			fmt.Fprintf(&sb, " holds=%d", len(bt.Holds))
		}
	}
	return sb.String()
}

// deadlockState is the session's detector state: the kernel board, the
// master variant's holder accounting, and the (write-once) report.
type deadlockState struct {
	board *kernel.BlockBoard

	mu sync.Mutex
	// holds[tid] is the stack of sync-variable addresses thread tid
	// currently holds, master variant only. The per-tid slices keep their
	// backing arrays across acquire/release cycles, so steady-state lock
	// traffic allocates nothing after the first few acquisitions.
	holds  [][]uint64
	report *DeadlockReport
}

func newDeadlockState(maxThreads int) *deadlockState {
	return &deadlockState{holds: make([][]uint64, maxThreads)}
}

func (dl *deadlockState) acquire(tid int, addr uint64) {
	if tid < 0 || tid >= len(dl.holds) {
		return
	}
	dl.mu.Lock()
	dl.holds[tid] = append(dl.holds[tid], addr)
	dl.mu.Unlock()
}

func (dl *deadlockState) release(tid int, addr uint64) {
	if tid < 0 || tid >= len(dl.holds) {
		return
	}
	dl.mu.Lock()
	h := dl.holds[tid]
	// Remove the LAST occurrence: recursive-looking double-acquires of
	// distinct vars unwind in LIFO order, like real lock stacks.
	for i := len(h) - 1; i >= 0; i-- {
		if h[i] == addr {
			copy(h[i:], h[i+1:])
			dl.holds[tid] = h[: len(h)-1 : cap(h)]
			break
		}
	}
	dl.mu.Unlock()
}

// noteDeadlock builds (once) the report from the board's validated
// snapshot. All master threads are parked when this runs, so the holder
// stacks are stable; the lock only orders it against late NoteRelease calls
// from other variants' goroutines racing teardown (which never touch holds)
// and against Session.Deadlock readers.
func (dl *deadlockState) noteDeadlock(sites []kernel.BlockedSite) *DeadlockReport {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if dl.report != nil {
		return dl.report
	}
	rep := &DeadlockReport{Threads: make([]BlockedThread, 0, len(sites))}
	for _, site := range sites {
		bt := BlockedThread{Tid: site.Tid, Kind: site.Kind.String(), Addr: site.Addr, FD: site.FD}
		if site.Tid >= 0 && site.Tid < len(dl.holds) && len(dl.holds[site.Tid]) > 0 {
			bt.Holds = append([]uint64(nil), dl.holds[site.Tid]...)
		}
		rep.Threads = append(rep.Threads, bt)
	}
	rep.Cycle = waitForCycle(sites, dl.holds)
	dl.report = rep
	return rep
}

// waitForCycle extracts a cycle from the wait-for graph over futex sites:
// thread A waiting on sync variable X depends on every blocked thread that
// holds X. Pipe and poll sites contribute no edges (ownership of a pipe's
// other end is not a guest-visible notion), so non-lock deadlocks simply
// report an empty cycle. The traversal is deterministic: sites arrive
// sorted by tid and edges are discovered in tid order, so the same blocked
// snapshot always names the same cycle.
func waitForCycle(sites []kernel.BlockedSite, holds [][]uint64) []int {
	adj := make(map[int][]int, len(sites))
	for _, s := range sites {
		if s.Kind != kernel.BlockFutex {
			continue
		}
		for _, o := range sites {
			if o.Tid >= 0 && o.Tid < len(holds) && holdsAddr(holds[o.Tid], s.Addr) {
				adj[s.Tid] = append(adj[s.Tid], o.Tid)
			}
		}
	}
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := make(map[int]int, len(sites))
	var stack, cycle []int
	var dfs func(tid int) bool
	dfs = func(tid int) bool {
		state[tid] = onStack
		stack = append(stack, tid)
		for _, n := range adj[tid] {
			switch state[n] {
			case onStack:
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == n {
						return true
					}
				}
				return true
			case unvisited:
				if dfs(n) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[tid] = done
		return false
	}
	for _, s := range sites {
		if state[s.Tid] == unvisited && dfs(s.Tid) {
			break
		}
	}
	sort.Ints(cycle)
	return cycle
}

func holdsAddr(h []uint64, addr uint64) bool {
	for _, a := range h {
		if a == addr {
			return true
		}
	}
	return false
}

// onDeadlock is the board's callback (watcher goroutine): freeze the
// report, then kill the session like an external shutdown — NOT a
// divergence, so divergence hooks stay silent and Result.Divergence stays
// nil.
func (s *Session) onDeadlock(sites []kernel.BlockedSite) {
	s.dl.noteDeadlock(sites)
	s.mon.Kill(nil)
}

// Deadlock returns the detector's report, or nil when no deadlock was
// detected (or the detector was off). Safe to call concurrently; stable
// once non-nil.
func (s *Session) Deadlock() *DeadlockReport {
	if s.dl == nil {
		return nil
	}
	s.dl.mu.Lock()
	defer s.dl.mu.Unlock()
	return s.dl.report
}

// board returns the kernel BlockBoard for this thread's variant: non-nil
// only on the master with DetectDeadlocks set. One nil check when disarmed.
func (t *Thread) board() *kernel.BlockBoard {
	if dl := t.sess.dl; dl != nil && t.vs.id == 0 {
		return dl.board
	}
	return nil
}

// NoteAcquire records that this thread now holds the lock-like resource
// identified by addr (a sync variable's address in this variant). synclib's
// mutexes call it on every successful acquisition; guests composing their
// own primitives from SyncVars may call it too. No-op on slaves and when
// the detector is disarmed — the holder map feeds only the master's
// wait-for graph.
func (t *Thread) NoteAcquire(addr uint64) {
	if dl := t.sess.dl; dl != nil && t.vs.id == 0 {
		dl.acquire(t.ID, addr)
	}
}

// NoteRelease records that this thread released the resource at addr,
// undoing the matching NoteAcquire.
func (t *Thread) NoteRelease(addr uint64) {
	if dl := t.sess.dl; dl != nil && t.vs.id == 0 {
		dl.release(t.ID, addr)
	}
}
