package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/kernel"
	"repro/internal/monitor"
)

// runWithTimeout guards against replay deadlocks turning into 10-minute
// test-binary timeouts.
func runWithTimeout(t *testing.T, opts Options, prog Program) *Result {
	t.Helper()
	s := NewSession(opts, prog)
	done := make(chan *Result, 1)
	go func() { done <- s.Run() }()
	select {
	case r := <-done:
		return r
	case <-time.After(60 * time.Second):
		s.Kill()
		t.Fatalf("%s: session deadlocked", prog.Name)
		return nil
	}
}

func allAgents() []agent.Kind {
	return []agent.Kind{agent.TotalOrder, agent.PartialOrder, agent.WallOfClocks}
}

func TestSingleVariantSingleThread(t *testing.T) {
	prog := Program{Name: "hello", Main: func(th *Thread) {
		r := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.ORdwr}, []byte("/out"))
		if !r.Ok() {
			t.Errorf("open: %v", r.Err)
			return
		}
		th.Syscall(kernel.SysWrite, [6]uint64{r.Val}, []byte("hi"))
		th.Syscall(kernel.SysClose, [6]uint64{r.Val}, nil)
	}}
	res := runWithTimeout(t, Options{Variants: 1}, prog)
	if res.Divergence != nil {
		t.Fatalf("unexpected divergence: %v", res.Divergence)
	}
	// open + write + close, plus the trampoline's implicit thread_exit
	// when Main returns.
	if res.Syscalls != 4 {
		t.Fatalf("syscalls = %d, want 4", res.Syscalls)
	}
}

func TestOutputWrittenOnceAcrossVariants(t *testing.T) {
	// Core MVEE property: N variants, but each output performed once.
	prog := Program{Name: "write-once", Main: func(th *Thread) {
		fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/f")).Val
		th.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte("once"))
		th.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
	}}
	for variants := 2; variants <= 4; variants++ {
		s := NewSession(Options{Variants: variants, Agent: agent.WallOfClocks, ASLR: true}, prog)
		res := s.Run()
		if res.Divergence != nil {
			t.Fatalf("%d variants: divergence: %v", variants, res.Divergence)
		}
		got, ok := s.Kernel().ReadFile("/f")
		if !ok || string(got) != "once" {
			t.Fatalf("%d variants: file = %q (output duplicated or lost)", variants, got)
		}
	}
}

func TestInputReplicatedToAllVariants(t *testing.T) {
	// Each variant must observe identical input bytes although only the
	// master reads the file.
	kern := kernel.New()
	kern.WriteFile("/in", []byte("shared input"))
	prog := Program{Name: "read-replicate", Main: func(th *Thread) {
		fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.ORdonly}, []byte("/in")).Val
		r := th.Syscall(kernel.SysRead, [6]uint64{fd, 64}, nil)
		// Echo what we read: if any variant read different bytes, the
		// write payloads mismatch and the monitor flags divergence.
		fd2 := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/echo")).Val
		th.Syscall(kernel.SysWrite, [6]uint64{fd2}, r.Data)
	}}
	s := NewSession(Options{Variants: 3, Agent: agent.WallOfClocks, Kernel: kern, ASLR: true}, prog)
	res := s.Run()
	if res.Divergence != nil {
		t.Fatalf("divergence: %v", res.Divergence)
	}
	got, _ := kern.ReadFile("/echo")
	if string(got) != "shared input" {
		t.Fatalf("echo = %q", got)
	}
}

func TestFDConsistencyAcrossVariants(t *testing.T) {
	// §3.1's motivating example: two threads open files concurrently; the
	// assigned FDs must be consistent across variants. The program prints
	// its FDs; payload comparison catches inconsistency.
	for _, k := range allAgents() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			prog := Program{Name: "fd-order", Main: func(th *Thread) {
				hs := make([]*ThreadHandle, 4)
				for i := 0; i < 4; i++ {
					i := i
					hs[i] = th.Spawn(func(tt *Thread) {
						path := fmt.Sprintf("/file-%d", i)
						fd := tt.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.ORdwr}, []byte(path)).Val
						out := fmt.Sprintf("thread %d got fd %d", i, fd)
						logfd := tt.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly | kernel.OAppend}, []byte(fmt.Sprintf("/log-%d", i))).Val
						tt.Syscall(kernel.SysWrite, [6]uint64{logfd}, []byte(out))
					})
				}
				for _, h := range hs {
					h.Join()
				}
			}}
			res := runWithTimeout(t, Options{Variants: 2, Agent: k, ASLR: true}, prog)
			if res.Divergence != nil {
				t.Fatalf("divergence: %v", res.Divergence)
			}
		})
	}
}

func TestMutexCounterAllAgents(t *testing.T) {
	// The canonical shared-state program: 4 threads increment a counter
	// under a mutex, then the main thread writes the total. Any replay
	// error shows up as payload divergence or a wrong total.
	const threads = 4
	const iters = 200
	mkProg := func(t *testing.T) Program {
		return Program{Name: "mutex-counter", Main: func(th *Thread) {
			mu := newMutexForTest(th)
			counter := 0
			hs := make([]*ThreadHandle, threads)
			for i := 0; i < threads; i++ {
				hs[i] = th.Spawn(func(tt *Thread) {
					for j := 0; j < iters; j++ {
						mu.lock(tt)
						counter++
						mu.unlock(tt)
					}
				})
			}
			for _, h := range hs {
				h.Join()
			}
			fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/total")).Val
			th.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("%d", counter)))
		}}
	}
	for _, k := range allAgents() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			s := NewSession(Options{Variants: 2, Agent: k, ASLR: true, Seed: 1}, mkProg(t))
			done := make(chan *Result, 1)
			go func() { done <- s.Run() }()
			var res *Result
			select {
			case res = <-done:
			case <-time.After(60 * time.Second):
				s.Kill()
				t.Fatal("deadlock")
			}
			if res.Divergence != nil {
				t.Fatalf("divergence: %v", res.Divergence)
			}
			got, _ := s.Kernel().ReadFile("/total")
			if string(got) != fmt.Sprintf("%d", threads*iters) {
				t.Fatalf("total = %q, want %d", got, threads*iters)
			}
			if res.SyncOps == 0 {
				t.Fatal("no sync ops recorded")
			}
		})
	}
}

// minimal futex mutex re-implemented here to avoid importing synclib
// (which would create an import cycle in tests: synclib imports core).
type testMutex struct{ w *SyncVar }

func newMutexForTest(t *Thread) *testMutex { return &testMutex{w: t.NewSyncVar()} }
func (m *testMutex) lock(t *Thread) {
	if t.CAS(m.w, 0, 1) {
		return
	}
	for t.Xchg(m.w, 2) != 0 {
		t.FutexWait(m.w, 2)
	}
}
func (m *testMutex) unlock(t *Thread) {
	if t.Xchg(m.w, 0) == 2 {
		t.FutexWake(m.w, 1<<30)
	}
}

func TestDivergenceDetectedOnDifferentPayload(t *testing.T) {
	// A variant-dependent payload is the signature of a (simulated)
	// attack: variants write different bytes, the monitor must kill.
	prog := Program{Name: "diverger", Main: func(th *Thread) {
		payload := fmt.Sprintf("secret=%d", th.Variant())
		fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/leak")).Val
		th.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(payload))
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks, ASLR: true}, prog)
	if res.Divergence == nil {
		t.Fatal("divergence not detected")
	}
	if res.Divergence.Reason != "payload mismatch" {
		t.Fatalf("reason = %q", res.Divergence.Reason)
	}
}

func TestDivergenceDetectedOnDifferentSyscall(t *testing.T) {
	prog := Program{Name: "sysno-diverger", Main: func(th *Thread) {
		if th.Variant() == 0 {
			th.Syscall(kernel.SysGetpid, [6]uint64{}, nil)
		} else {
			th.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil)
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks}, prog)
	if res.Divergence == nil {
		t.Fatal("syscall-number divergence not detected")
	}
}

func TestDivergenceDetectedOnExtraSyscall(t *testing.T) {
	prog := Program{Name: "extra-syscall", Main: func(th *Thread) {
		th.Syscall(kernel.SysGetpid, [6]uint64{}, nil)
		if th.Variant() == 1 {
			th.Syscall(kernel.SysGetpid, [6]uint64{}, nil)
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks}, prog)
	if res.Divergence == nil {
		t.Fatal("extra-syscall divergence not detected")
	}
}

func TestBrkAndMmapDifferPerVariantWithoutDivergence(t *testing.T) {
	// Address-space calls execute per variant and return different
	// addresses; the monitor must mask them, not flag divergence.
	prog := Program{Name: "mem", Main: func(th *Thread) {
		brk := th.Syscall(kernel.SysBrk, [6]uint64{0}, nil).Val
		th.Syscall(kernel.SysBrk, [6]uint64{brk + 65536}, nil)
		m := th.Syscall(kernel.SysMmap, [6]uint64{0, 1 << 20}, nil)
		if !m.Ok() {
			t.Errorf("mmap: %v", m.Err)
		}
		th.Syscall(kernel.SysMunmap, [6]uint64{m.Val, 1 << 20}, nil)
	}}
	res := runWithTimeout(t, Options{Variants: 3, Agent: agent.WallOfClocks, ASLR: true, Seed: 9}, prog)
	if res.Divergence != nil {
		t.Fatalf("address-space calls diverged: %v", res.Divergence)
	}
}

func TestPipelineProducerConsumer(t *testing.T) {
	// Threads communicating through a kernel pipe: exercises blocking
	// (unordered) replicated reads.
	for _, k := range allAgents() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			prog := Program{Name: "pipe", Main: func(th *Thread) {
				p := th.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
				rfd, wfd := p.Val, p.Val2
				cons := th.Spawn(func(tt *Thread) {
					total := 0
					for {
						r := tt.Syscall(kernel.SysRead, [6]uint64{rfd, 4}, nil)
						if r.Val == 0 {
							break
						}
						total += int(r.Val)
					}
					fd := tt.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/count")).Val
					tt.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("%d", total)))
				})
				for i := 0; i < 16; i++ {
					th.Syscall(kernel.SysWrite, [6]uint64{wfd}, []byte("abcd"))
				}
				th.Syscall(kernel.SysClose, [6]uint64{wfd}, nil)
				cons.Join()
			}}
			s := NewSession(Options{Variants: 2, Agent: k, ASLR: true}, prog)
			done := make(chan *Result, 1)
			go func() { done <- s.Run() }()
			var res *Result
			select {
			case res = <-done:
			case <-time.After(60 * time.Second):
				s.Kill()
				t.Fatal("deadlock")
			}
			if res.Divergence != nil {
				t.Fatalf("divergence: %v", res.Divergence)
			}
			got, _ := s.Kernel().ReadFile("/count")
			if string(got) != "64" {
				t.Fatalf("count = %q, want 64", got)
			}
		})
	}
}

func TestVariantSelfAwareness(t *testing.T) {
	// The MVEE-awareness syscall (§4.5) must report distinct roles.
	prog := Program{Name: "aware", Main: func(th *Thread) {
		v := th.Variant()
		if th.IsMaster() != (v == 0) {
			t.Errorf("IsMaster inconsistent with Variant()=%d", v)
		}
	}}
	res := runWithTimeout(t, Options{Variants: 3, Agent: agent.WallOfClocks}, prog)
	if res.Divergence != nil {
		t.Fatalf("divergence: %v", res.Divergence)
	}
}

func TestPolicySecuritySensitiveSkipsBenignMismatch(t *testing.T) {
	// Under the relaxed policy, a non-sensitive argument mismatch (lseek
	// offset) is tolerated; under strict lockstep it is divergence.
	mk := func() Program {
		return Program{Name: "policy", Main: func(th *Thread) {
			fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.ORdwr}, []byte("/p")).Val
			off := uint64(0)
			if th.Variant() == 1 {
				off = 4
			}
			th.Syscall(kernel.SysLseek, [6]uint64{fd, off, kernel.SeekSet}, nil)
		}}
	}
	strict := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks,
		Policy: monitor.PolicyStrictLockstep}, mk())
	if strict.Divergence == nil {
		t.Fatal("strict policy missed the mismatch")
	}
	relaxed := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks,
		Policy: monitor.PolicySecuritySensitive}, mk())
	if relaxed.Divergence != nil {
		t.Fatalf("relaxed policy flagged non-sensitive call: %v", relaxed.Divergence)
	}
}

func TestGettimeofdayReplicated(t *testing.T) {
	// All variants must observe the master's timestamps — the covert
	// channel PoC (§5.4) depends on this replication.
	prog := Program{Name: "time", Main: func(th *Thread) {
		t1 := th.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil).Val
		t2 := th.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil).Val
		if t2 <= t1 {
			t.Errorf("time not increasing: %d then %d", t1, t2)
		}
		// Writing the timestamps: identical across variants iff replicated.
		fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/ts")).Val
		th.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("%d-%d", t1, t2)))
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks}, prog)
	if res.Divergence != nil {
		t.Fatalf("timestamps not replicated: %v", res.Divergence)
	}
}

func TestManyThreadsManyLocks(t *testing.T) {
	// Heavier integration: 8 threads, 4 locks, interleaved critical
	// sections plus occasional ordered syscalls.
	if testing.Short() {
		t.Skip("soak")
	}
	for _, k := range allAgents() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			prog := Program{Name: "soak", Main: func(th *Thread) {
				locks := make([]*testMutex, 4)
				for i := range locks {
					locks[i] = newMutexForTest(th)
				}
				counters := make([]int, 4)
				hs := make([]*ThreadHandle, 8)
				for i := 0; i < 8; i++ {
					i := i
					hs[i] = th.Spawn(func(tt *Thread) {
						for j := 0; j < 100; j++ {
							l := (i + j) % 4
							locks[l].lock(tt)
							counters[l]++
							locks[l].unlock(tt)
							if j%25 == 24 {
								tt.Syscall(kernel.SysGetpid, [6]uint64{}, nil)
							}
						}
					})
				}
				for _, h := range hs {
					h.Join()
				}
				sum := 0
				for _, c := range counters {
					sum += c
				}
				fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/sum")).Val
				th.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("%d", sum)))
			}}
			s := NewSession(Options{Variants: 3, Agent: k, ASLR: true, MaxThreads: 16}, prog)
			done := make(chan *Result, 1)
			go func() { done <- s.Run() }()
			var res *Result
			select {
			case res = <-done:
			case <-time.After(120 * time.Second):
				s.Kill()
				t.Fatal("deadlock")
			}
			if res.Divergence != nil {
				t.Fatalf("divergence: %v", res.Divergence)
			}
			got, _ := s.Kernel().ReadFile("/sum")
			if string(got) != "800" {
				t.Fatalf("sum = %q, want 800", got)
			}
		})
	}
}

func TestSyncBuffersPublishedInSharedMemory(t *testing.T) {
	// §4.5: the agents attach to the sync buffers through the System V
	// interface, and §5.4: the buffer is mapped at different,
	// non-overlapping addresses in all variants.
	prog := Program{Name: "shm-probe", Main: func(th *Thread) {
		v := th.NewSyncVar()
		th.Store(v, 1)
	}}
	s := NewSession(Options{Variants: 3, Agent: agent.WallOfClocks}, prog)
	seg, err := s.IPC().Get(agent.SyncBufferKey)
	if err != nil {
		t.Fatalf("sync buffer segment missing: %v", err)
	}
	if seg.Attached() != 3 {
		t.Fatalf("segment attached %d times, want 3", seg.Attached())
	}
	addrs := map[uint64]bool{}
	for v := 0; v < 3; v++ {
		a := seg.AddrIn(v)
		if a == 0 {
			t.Fatalf("variant %d not attached", v)
		}
		if addrs[a] {
			t.Fatalf("variants share mapping address %#x", a)
		}
		addrs[a] = true
	}
	if res := s.Run(); res.Divergence != nil {
		t.Fatalf("divergence: %v", res.Divergence)
	}
}

func TestWallCollisionsStillCorrect(t *testing.T) {
	// §4.5: hash collisions map unrelated variables onto one clock, which
	// "introduces unnecessary serialization and hence potentially also
	// unnecessary stalls" — but replay must remain correct. Degenerate
	// wall sizes force maximal collision.
	for _, wall := range []int{1, 2, 16, 4096} {
		wall := wall
		t.Run(fmt.Sprintf("wall-%d", wall), func(t *testing.T) {
			prog := Program{Name: "collide", Main: func(th *Thread) {
				locks := make([]*testMutex, 8)
				for i := range locks {
					locks[i] = newMutexForTest(th)
				}
				counters := make([]int, 8)
				hs := make([]*ThreadHandle, 4)
				for i := 0; i < 4; i++ {
					i := i
					hs[i] = th.Spawn(func(tt *Thread) {
						for j := 0; j < 100; j++ {
							l := (i*31 + j) % 8
							locks[l].lock(tt)
							counters[l]++
							locks[l].unlock(tt)
						}
					})
				}
				for _, h := range hs {
					h.Join()
				}
				sum := 0
				for _, c := range counters {
					sum += c
				}
				fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/sum")).Val
				th.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("%d", sum)))
			}}
			s := NewSession(Options{Variants: 2, Agent: agent.WallOfClocks,
				ASLR: true, WallSize: wall}, prog)
			done := make(chan *Result, 1)
			go func() { done <- s.Run() }()
			var res *Result
			select {
			case res = <-done:
			case <-time.After(60 * time.Second):
				s.Kill()
				t.Fatal("deadlock under collisions")
			}
			if res.Divergence != nil {
				t.Fatalf("collisions broke replay: %v", res.Divergence)
			}
			got, _ := s.Kernel().ReadFile("/sum")
			if string(got) != "400" {
				t.Fatalf("sum = %q", got)
			}
		})
	}
}

// TestSessionLifecycleHooks exercises the Start/Wait split and every
// lifecycle callback: OnStart before the variants run, OnFinish with the
// result before Wait unblocks, and OnDivergence only on divergence.
func TestSessionLifecycleHooks(t *testing.T) {
	var order []string
	var mu sync.Mutex
	log := func(ev string) { mu.Lock(); order = append(order, ev); mu.Unlock() }

	ok := NewSession(Options{Variants: 2, Agent: agent.WallOfClocks, ASLR: true, Seed: 1},
		Program{Name: "ok", Main: func(th *Thread) {
			th.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil)
		}})
	ok.OnStart(func() { log("start") })
	ok.OnFinish(func(r *Result) {
		if r == nil {
			t.Error("OnFinish got nil result")
		}
		log("finish")
	})
	ok.OnDivergence(func(*monitor.Divergence) { log("divergence") })
	ok.Start()
	ok.Start() // idempotent
	res := ok.Wait()
	if res2 := ok.Wait(); res2 != res {
		t.Fatal("Wait not stable across calls")
	}
	if res.Divergence != nil {
		t.Fatalf("clean program diverged: %v", res.Divergence)
	}
	mu.Lock()
	got := fmt.Sprint(order)
	mu.Unlock()
	if got != "[start finish]" {
		t.Fatalf("hook order = %v", got)
	}

	// A diverging program fires OnDivergence (before OnFinish).
	div := NewSession(Options{Variants: 2, Agent: agent.WallOfClocks, ASLR: true, Seed: 1},
		Program{Name: "leaky", Main: func(th *Thread) {
			addr := th.DataAddr(8) // layout-dependent under ASLR
			fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/leak")).Val
			th.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("%x", addr)))
		}})
	fired := make(chan *monitor.Divergence, 1)
	div.OnDivergence(func(d *monitor.Divergence) { fired <- d })
	res = div.Run()
	if res.Divergence == nil {
		t.Fatal("leaky program did not diverge")
	}
	select {
	case d := <-fired:
		if d != res.Divergence {
			t.Fatalf("hook saw %v, result has %v", d, res.Divergence)
		}
	default:
		t.Fatal("OnDivergence hook never fired")
	}
}
