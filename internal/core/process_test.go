package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/kernel"
)

// The process-lifecycle suite: fork/wait/kill with deterministic,
// syscall-boundary signal delivery (DESIGN.md §2.5). Everything here runs
// with >= 2 variants under the strict policy — the point is that process
// events are replicated events, so none of it may diverge unless the test
// makes the variants genuinely disagree.

func TestForkWaitReapsChild(t *testing.T) {
	var childPid, waitedPid, status int
	prog := Program{Name: "fork-wait", Main: func(th *Thread) {
		h := th.Fork(func(c *Thread) {
			fd := c.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/child")).Val
			c.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte("from-child"))
			c.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
			c.Exit(7)
		})
		var wp, st int
		var errno kernel.Errno
		for {
			wp, st, errno = th.Wait()
			if errno != kernel.EINTR {
				break
			}
		}
		if errno != kernel.OK {
			t.Errorf("wait: %v", errno)
		}
		// All children reaped: a further wait reports ECHILD.
		if _, _, errno := th.Wait(); errno != kernel.ECHILD {
			t.Errorf("wait after reap: %v, want ECHILD", errno)
		}
		if th.IsMaster() {
			childPid, waitedPid, status = h.Pid, wp, st
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks, ASLR: true, Seed: 5}, prog)
	if res.Divergence != nil {
		t.Fatalf("fork/wait diverged: %v", res.Divergence)
	}
	if childPid != 2 {
		t.Fatalf("child pid = %d, want the deterministic 2", childPid)
	}
	if waitedPid != childPid || status != 7 {
		t.Fatalf("waitpid = (%d, %d), want (%d, 7)", waitedPid, status, childPid)
	}
}

func TestForkPidsAreDeterministic(t *testing.T) {
	// Three sequential forks must hand out pids 2, 3, 4 in every variant
	// (fork is ordered, the namespace counter marches in lockstep).
	var pids []int
	prog := Program{Name: "fork-pids", Main: func(th *Thread) {
		var hs []*ProcHandle
		for i := 0; i < 3; i++ {
			hs = append(hs, th.Fork(func(c *Thread) {}))
		}
		for range hs {
			for {
				if _, _, errno := th.Wait(); errno != kernel.EINTR {
					break
				}
			}
		}
		if th.IsMaster() {
			for _, h := range hs {
				pids = append(pids, h.Pid)
			}
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks}, prog)
	if res.Divergence != nil {
		t.Fatalf("diverged: %v", res.Divergence)
	}
	if fmt.Sprint(pids) != "[2 3 4]" {
		t.Fatalf("pids = %v, want [2 3 4]", pids)
	}
}

func TestKillDuringBlockingReadEINTRsIdentically(t *testing.T) {
	// The acceptance-criteria regression: a signal delivered while a child
	// is parked in a blocking pipe read must EINTR the read, run the
	// handler, and let the retried read complete — identically in every
	// variant, with zero divergence. The handler's write syscall is itself
	// a compared event, so if delivery points differed across variants the
	// monitor would catch it.
	prog := Program{Name: "kill-eintr", Main: func(th *Thread) {
		pr := th.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
		rfd, wfd := pr.Val, pr.Val2
		child := th.Fork(func(c *Thread) {
			c.Sigaction(kernel.SIGUSR1, func(h *Thread, signo int) {
				fd := h.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/handled")).Val
				h.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("sig=%d", signo)))
				h.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
			})
			gotEINTR := false
			for {
				r := c.Syscall(kernel.SysRead, [6]uint64{rfd, 16}, nil)
				if r.Err == kernel.EINTR {
					gotEINTR = true
					continue
				}
				if !r.Ok() {
					c.Exit(3)
				}
				break
			}
			if !gotEINTR {
				c.Exit(2) // compared exit status: variants must agree
			}
			c.Exit(0)
		})
		// The child cannot pass its read before this kill lands (the pipe
		// stays empty until the write below), so the EINTR is guaranteed —
		// deterministically, not probabilistically.
		th.Syscall(kernel.SysNanosleep, [6]uint64{uint64(2e6)}, nil)
		if errno := th.Kill(child.Pid, kernel.SIGUSR1); errno != kernel.OK {
			t.Errorf("kill: %v", errno)
		}
		th.Syscall(kernel.SysWrite, [6]uint64{wfd}, []byte("go"))
		var status int
		for {
			var errno kernel.Errno
			_, status, errno = th.Wait()
			if errno != kernel.EINTR {
				break
			}
		}
		if status != 0 {
			t.Errorf("child status = %d, want 0 (EINTR observed, read retried)", status)
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks, ASLR: true, DCL: true, Seed: 11}, prog)
	if res.Divergence != nil {
		t.Fatalf("kill-during-read diverged: %v", res.Divergence)
	}
}

func TestKillDuringBlockingReadHandlerRan(t *testing.T) {
	// Companion to the EINTR test: prove the handler actually executed by
	// inspecting the session kernel's file system afterwards.
	kern := kernel.New()
	prog := Program{Name: "kill-eintr-handled", Main: func(th *Thread) {
		pr := th.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
		rfd, wfd := pr.Val, pr.Val2
		child := th.Fork(func(c *Thread) {
			c.Sigaction(kernel.SIGUSR1, func(h *Thread, signo int) {
				fd := h.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/handled")).Val
				h.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte("yes"))
				h.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
			})
			for {
				r := c.Syscall(kernel.SysRead, [6]uint64{rfd, 16}, nil)
				if r.Err == kernel.EINTR {
					continue
				}
				break
			}
		})
		th.Syscall(kernel.SysNanosleep, [6]uint64{uint64(2e6)}, nil)
		th.Kill(child.Pid, kernel.SIGUSR1)
		th.Syscall(kernel.SysWrite, [6]uint64{wfd}, []byte("go"))
		for {
			if _, _, errno := th.Wait(); errno != kernel.EINTR {
				break
			}
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks, Kernel: kern}, prog)
	if res.Divergence != nil {
		t.Fatalf("diverged: %v", res.Divergence)
	}
	if data, ok := kern.ReadFile("/handled"); !ok || string(data) != "yes" {
		t.Fatalf("handler did not run: %q %v", data, ok)
	}
}

func TestMismatchedKillSignoDiverges(t *testing.T) {
	// A variant signalling a different signo is an attack, not noise: the
	// compared (pid, signo) args trip divergence before delivery.
	prog := Program{Name: "evil-signo", Main: func(th *Thread) {
		child := th.Fork(func(c *Thread) {
			c.Sigaction(kernel.SIGUSR1, func(*Thread, int) {})
			c.Sigaction(kernel.SIGUSR2, func(*Thread, int) {})
			for i := 0; i < 4; i++ {
				c.Syscall(kernel.SysNanosleep, [6]uint64{uint64(1e6)}, nil)
			}
		})
		signo := kernel.SIGUSR1
		if !th.IsMaster() {
			signo = kernel.SIGUSR2
		}
		th.Kill(child.Pid, signo)
		for {
			if _, _, errno := th.Wait(); errno != kernel.EINTR {
				break
			}
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks}, prog)
	if res.Divergence == nil {
		t.Fatal("mismatched kill signo not detected")
	}
	if !strings.Contains(res.Divergence.Reason, "argument 1 mismatch") {
		t.Fatalf("unexpected reason: %v", res.Divergence)
	}
}

func TestMismatchedKillPidDiverges(t *testing.T) {
	prog := Program{Name: "evil-pid", Main: func(th *Thread) {
		a := th.Fork(func(c *Thread) { c.Sigaction(kernel.SIGUSR1, func(*Thread, int) {}) })
		b := th.Fork(func(c *Thread) { c.Sigaction(kernel.SIGUSR1, func(*Thread, int) {}) })
		target := a.Pid
		if !th.IsMaster() {
			target = b.Pid
		}
		th.Kill(target, kernel.SIGUSR1)
		for {
			if _, _, errno := th.Wait(); errno == kernel.ECHILD {
				break
			}
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks}, prog)
	if res.Divergence == nil {
		t.Fatal("mismatched kill pid not detected")
	}
	if !strings.Contains(res.Divergence.Reason, "argument 0 mismatch") {
		t.Fatalf("unexpected reason: %v", res.Divergence)
	}
}

func TestTerminatingSignalEndsProcess(t *testing.T) {
	// SIGTERM with the default disposition terminates the child at its
	// next syscall boundary; the parent reaps status 128+15.
	var status int
	prog := Program{Name: "sigterm-default", Main: func(th *Thread) {
		child := th.Fork(func(c *Thread) {
			for {
				c.Syscall(kernel.SysNanosleep, [6]uint64{uint64(1e6)}, nil)
			}
		})
		th.Syscall(kernel.SysNanosleep, [6]uint64{uint64(2e6)}, nil)
		th.Kill(child.Pid, kernel.SIGTERM)
		var st int
		for {
			var errno kernel.Errno
			_, st, errno = th.Wait()
			if errno != kernel.EINTR {
				break
			}
		}
		if th.IsMaster() {
			status = st
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks}, prog)
	if res.Divergence != nil {
		t.Fatalf("diverged: %v", res.Divergence)
	}
	if status != 128+kernel.SIGTERM {
		t.Fatalf("status = %d, want %d", status, 128+kernel.SIGTERM)
	}
}

func TestTwoPendingTerminatingSignals(t *testing.T) {
	// Two different terminating signals pending at once: the first is
	// delivered and ends the process; the second must NOT be delivered at
	// the exit boundary (Linux discards a dying process's pending set) —
	// this used to escape the trampoline as a raw panic and crash the
	// embedder.
	var status int
	prog := Program{Name: "double-term", Main: func(th *Thread) {
		child := th.Fork(func(c *Thread) {
			for {
				c.Syscall(kernel.SysNanosleep, [6]uint64{uint64(1e6)}, nil)
			}
		})
		th.Syscall(kernel.SysNanosleep, [6]uint64{uint64(2e6)}, nil)
		th.Kill(child.Pid, kernel.SIGINT)
		th.Kill(child.Pid, kernel.SIGTERM)
		var st int
		for {
			var errno kernel.Errno
			_, st, errno = th.Wait()
			if errno != kernel.EINTR {
				break
			}
		}
		if th.IsMaster() {
			status = st
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks}, prog)
	if res.Panic != nil {
		t.Fatalf("session recorded a program panic: %v", res.Panic)
	}
	if res.Divergence != nil {
		t.Fatalf("diverged: %v", res.Divergence)
	}
	// SIGINT (2) is the lowest pending signal, so it wins the delivery.
	if status != 128+kernel.SIGINT {
		t.Fatalf("status = %d, want %d", status, 128+kernel.SIGINT)
	}
}

func TestSigprocmaskDefersDelivery(t *testing.T) {
	// A blocked signal stays pending across syscall boundaries; unblocking
	// it delivers at the very next boundary (the sigprocmask return).
	kern := kernel.New()
	// Guest-side file polling goes through replicated stat syscalls: the
	// master's branch outcomes replicate, so every variant's loop runs the
	// same number of iterations — polling kern.ReadFile directly from
	// guest code would give each variant its own timing and diverge.
	await := func(th *Thread, path string) {
		for {
			if th.Syscall(kernel.SysStat, [6]uint64{}, []byte(path)).Ok() {
				return
			}
			th.Syscall(kernel.SysNanosleep, [6]uint64{uint64(5e5)}, nil)
		}
	}
	touch := func(th *Thread, path string) {
		fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte(path)).Val
		th.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
	}
	prog := Program{Name: "mask-defer", Main: func(th *Thread) {
		child := th.Fork(func(c *Thread) {
			order := ""
			c.Sigaction(kernel.SIGUSR1, func(h *Thread, _ int) { order += "signal" })
			c.Syscall(kernel.SysSigprocmask, [6]uint64{kernel.SigBlock, 1 << kernel.SIGUSR1}, nil)
			// Tell the parent we are masked; it kills us, then announces.
			touch(c, "/masked")
			// Boundaries pass with the signal blocked and pending: wait
			// until the parent's kill has definitely landed.
			await(c, "/killed")
			order += "work"
			c.Syscall(kernel.SysSigprocmask, [6]uint64{kernel.SigUnblock, 1 << kernel.SIGUSR1}, nil)
			// Delivery happened at the unblock boundary, before this line.
			fd := c.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/order")).Val
			c.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(order))
			c.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
		})
		await(th, "/masked")
		th.Kill(child.Pid, kernel.SIGUSR1)
		touch(th, "/killed")
		for {
			if _, _, errno := th.Wait(); errno != kernel.EINTR {
				break
			}
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks, Kernel: kern}, prog)
	if res.Divergence != nil {
		t.Fatalf("diverged: %v", res.Divergence)
	}
	if data, _ := kern.ReadFile("/order"); string(data) != "worksignal" {
		t.Fatalf("order = %q, want \"worksignal\" (delivery deferred past the masked region)", data)
	}
}

func TestForkSharesDescriptionsAcrossProcesses(t *testing.T) {
	// The child inherits the parent's descriptors as SHARED descriptions:
	// a read offset moved by the child is observed by the parent, like
	// Linux fork + read.
	kern := kernel.New()
	kern.WriteFile("/shared", []byte("aabb"))
	prog := Program{Name: "fork-fd-share", Main: func(th *Thread) {
		fd := th.Syscall(kernel.SysOpen, [6]uint64{kernel.ORdonly}, []byte("/shared")).Val
		th.Fork(func(c *Thread) {
			c.Syscall(kernel.SysRead, [6]uint64{fd, 2}, nil) // moves the shared offset
		})
		for {
			if _, _, errno := th.Wait(); errno != kernel.EINTR {
				break
			}
		}
		r := th.Syscall(kernel.SysRead, [6]uint64{fd, 2}, nil)
		out := th.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/tail")).Val
		th.Syscall(kernel.SysWrite, [6]uint64{out}, r.Data)
		th.Syscall(kernel.SysClose, [6]uint64{out}, nil)
		th.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks, Kernel: kern}, prog)
	if res.Divergence != nil {
		t.Fatalf("diverged: %v", res.Divergence)
	}
	if data, _ := kern.ReadFile("/tail"); string(data) != "bb" {
		t.Fatalf("parent read %q after child's read, want \"bb\" (shared offset)", data)
	}
}

func TestRecordReplaySignalSchedule(t *testing.T) {
	// A recorded session's signal schedule (EINTR points, deliveries)
	// replays deterministically offline — trace wire format v3 carries
	// Ret.Sig.
	prog := Program{Name: "rec-signals", Main: func(th *Thread) {
		pr := th.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
		rfd, wfd := pr.Val, pr.Val2
		child := th.Fork(func(c *Thread) {
			c.Sigaction(kernel.SIGUSR1, func(h *Thread, _ int) {
				h.Syscall(kernel.SysGetpid, [6]uint64{}, nil)
			})
			for {
				r := c.Syscall(kernel.SysRead, [6]uint64{rfd, 8}, nil)
				if r.Err == kernel.EINTR {
					continue
				}
				break
			}
		})
		th.Syscall(kernel.SysNanosleep, [6]uint64{uint64(2e6)}, nil)
		th.Kill(child.Pid, kernel.SIGUSR1)
		th.Syscall(kernel.SysWrite, [6]uint64{wfd}, []byte("go"))
		for {
			if _, _, errno := th.Wait(); errno != kernel.EINTR {
				break
			}
		}
	}}
	rec := runWithTimeout(t, Options{Variants: 2, Record: true}, prog)
	if rec.Divergence != nil {
		t.Fatalf("record run diverged: %v", rec.Divergence)
	}
	if rec.Trace == nil {
		t.Fatal("no trace captured")
	}
	rep := runWithTimeout(t, Options{Replay: rec.Trace}, prog)
	if rep.Divergence != nil {
		t.Fatalf("replay diverged: %v", rep.Divergence)
	}
}

// --- Multi-threaded forked processes ---------------------------------------
//
// Forked children are full processes: Spawn works inside them, tids come
// from the same per-variant space (so allocation is deterministic across
// variants), exit-group unwinds sibling threads at their next syscall
// boundary, and ProcHandle.Join waits for the whole teardown.

func TestSpawnInForkedChild(t *testing.T) {
	// A forked child grows a thread pool and every thread's syscalls are
	// monitored like the root's. Each thread writes a per-tid file, the
	// leader joins them and exits cleanly.
	kern := kernel.New()
	var status int
	prog := Program{Name: "fork-then-spawn", Main: func(th *Thread) {
		h := th.Fork(func(c *Thread) {
			var sibs []*ThreadHandle
			for i := 0; i < 3; i++ {
				s := c.Spawn(func(s *Thread) {
					fd := s.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly},
						[]byte(fmt.Sprintf("/thread-%d", s.ID))).Val
					s.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte("ran"))
					s.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
				})
				if s == nil {
					t.Error("Spawn in forked child returned nil with tid space to spare")
					return
				}
				sibs = append(sibs, s)
			}
			for _, s := range sibs {
				s.Join()
			}
			c.Exit(0)
		})
		var st int
		for {
			var errno kernel.Errno
			_, st, errno = th.Wait()
			if errno != kernel.EINTR {
				break
			}
		}
		if th.IsMaster() {
			status = st
		}
		_ = h
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks, Kernel: kern, MaxThreads: 16}, prog)
	if res.Divergence != nil {
		t.Fatalf("multi-threaded child diverged: %v", res.Divergence)
	}
	if status != 0 {
		t.Fatalf("child status = %d, want 0", status)
	}
	// The fork leader drew tid 1 from the tree-wide space; its spawns take
	// 2, 3, 4 — deterministically, because clone is an ordered call.
	for tid := 2; tid <= 4; tid++ {
		if data, ok := kern.ReadFile(fmt.Sprintf("/thread-%d", tid)); !ok || string(data) != "ran" {
			t.Fatalf("thread %d left no trace (%q, %v) — tid allocation not deterministic?", tid, data, ok)
		}
	}
}

func TestSpawnExhaustionInForkedChildDegradesIdentically(t *testing.T) {
	// Tid exhaustion inside a forked child is a clean, deterministic
	// degrade: Spawn returns nil at the same ordered position in every
	// variant (the clone's EAGAIN is a replicated result, not a host
	// resource race), and the child keeps running with the threads it got.
	// The spawned count rides the compared exit status, so a variant that
	// degraded at a different point would diverge rather than pass.
	prog := Program{Name: "spawn-exhaustion", Main: func(th *Thread) {
		h := th.Fork(func(c *Thread) {
			spawned := 0
			var sibs []*ThreadHandle
			for i := 0; i < 8; i++ {
				s := c.Spawn(func(s *Thread) {
					s.Syscall(kernel.SysGetpid, [6]uint64{}, nil)
				})
				if s == nil {
					break
				}
				spawned++
				sibs = append(sibs, s)
			}
			// Exhaustion is sticky: the space never shrinks back.
			if c.Spawn(func(*Thread) {}) != nil {
				c.Exit(99)
			}
			for _, s := range sibs {
				s.Join()
			}
			c.Exit(spawned)
		})
		var st int
		for {
			var errno kernel.Errno
			_, st, errno = th.Wait()
			if errno != kernel.EINTR {
				break
			}
		}
		// MaxThreads 5: the fork leader drew tid 1, spawns take 2, 3, 4 —
		// then the space hits the limit and clone returns EAGAIN.
		if st != 3 {
			t.Errorf("child spawned %d threads before exhaustion, want 3", st)
		}
		_ = h
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks, MaxThreads: 5}, prog)
	if res.Divergence != nil {
		t.Fatalf("exhaustion degrade diverged: %v", res.Divergence)
	}
}

func TestProcHandleJoinWaitsForFullTeardown(t *testing.T) {
	// Join's contract: when it returns, EVERY thread of the child — the
	// leader and all Spawn siblings — has unwound through its kernel exit.
	// The siblings here park in an infinite sleep loop, so the only way
	// they die is the leader-return exit-group; Join returning while any
	// of them was still mid-unwind would show live threads below.
	kern := kernel.New()
	var threads int
	state := "missing"
	prog := Program{Name: "join-teardown", Main: func(th *Thread) {
		h := th.Fork(func(c *Thread) {
			for i := 0; i < 3; i++ {
				c.Spawn(func(s *Thread) {
					fd := s.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly},
						[]byte(fmt.Sprintf("/sib-%d", s.ID))).Val
					s.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte("up"))
					s.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
					for {
						s.Syscall(kernel.SysNanosleep, [6]uint64{uint64(1e5)}, nil)
					}
				})
			}
			// Leader return = whole-process exit: the exit-group reaches
			// every parked sibling at its next sleep boundary.
		})
		h.Join()
		// Single variant: the snapshot below is exactly this variant's
		// process table at the instant Join returned.
		for _, p := range kern.Snapshot() {
			if p.Vpid == h.Pid {
				threads, state = p.Threads, p.State
			}
		}
		for {
			if _, _, errno := th.Wait(); errno != kernel.EINTR {
				break
			}
		}
	}}
	res := runWithTimeout(t, Options{Variants: 1, Kernel: kern, MaxThreads: 16}, prog)
	if res.Divergence != nil {
		t.Fatalf("diverged: %v", res.Divergence)
	}
	if threads != 0 || state != "zombie" {
		t.Fatalf("at Join return the child had %d live threads in state %q, want 0/zombie (Join returned early)", threads, state)
	}
	// The siblings really started before dying: their startup writes are
	// sequenced before the parked sleeps.
	for tid := 2; tid <= 4; tid++ {
		if _, ok := kern.ReadFile(fmt.Sprintf("/sib-%d", tid)); !ok {
			t.Fatalf("sibling tid %d never started", tid)
		}
	}
}

func TestSigtermToMultithreadedWorkerUnwindsSiblings(t *testing.T) {
	// The satellite acceptance: SIGTERM with default disposition against a
	// 4-thread process terminates the WHOLE process — the delivery thread
	// dies at its boundary and the exit-group pseudo-signal unwinds every
	// parked sibling at its next syscall boundary, identically in both
	// variants. Afterwards nothing of the child remains: reaped, no
	// zombies, no threads.
	kern := kernel.New()
	var status int
	prog := Program{Name: "sigterm-multithreaded", Main: func(th *Thread) {
		child := th.Fork(func(c *Thread) {
			for i := 0; i < 3; i++ {
				c.Spawn(func(s *Thread) {
					for {
						s.Syscall(kernel.SysNanosleep, [6]uint64{uint64(1e6)}, nil)
					}
				})
			}
			for {
				c.Syscall(kernel.SysNanosleep, [6]uint64{uint64(1e6)}, nil)
			}
		})
		th.Syscall(kernel.SysNanosleep, [6]uint64{uint64(2e6)}, nil)
		th.Kill(child.Pid, kernel.SIGTERM)
		var st int
		for {
			var errno kernel.Errno
			_, st, errno = th.Wait()
			if errno != kernel.EINTR {
				break
			}
		}
		if th.IsMaster() {
			status = st
		}
		if _, _, errno := th.Wait(); errno != kernel.ECHILD {
			t.Errorf("wait after reap: %v, want ECHILD", errno)
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks, Kernel: kern, MaxThreads: 16}, prog)
	if res.Divergence != nil {
		t.Fatalf("multi-threaded SIGTERM diverged: %v", res.Divergence)
	}
	if status != 128+kernel.SIGTERM {
		t.Fatalf("status = %d, want %d", status, 128+kernel.SIGTERM)
	}
	// Only the two variant roots survive: the child and all four of its
	// threads are gone from both variants' tables.
	if n := kern.ProcCount(); n != 2 {
		t.Fatalf("%d processes left, want the 2 roots", n)
	}
}

func TestSignalIntoMultithreadedProcEINTRsOneThreadIdentically(t *testing.T) {
	// Four threads of one forked process park in blocking reads on four
	// separate pipes; a single SIGUSR1 EINTRs exactly ONE of them — and
	// which one is the master's choice, replicated to the slave through the
	// stamped Ret.Sig, so the "/eintr-<tid>" marker the interrupted thread
	// writes is a compared event that would diverge if the variants
	// disagreed on the delivery thread.
	kern := kernel.New()
	prog := Program{Name: "mt-eintr", Main: func(th *Thread) {
		var rfd, wfd [4]uint64
		for i := range rfd {
			pr := th.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
			rfd[i], wfd[i] = pr.Val, pr.Val2
		}
		child := th.Fork(func(c *Thread) {
			c.Sigaction(kernel.SIGUSR1, func(*Thread, int) {})
			park := func(s *Thread, fd uint64) {
				for {
					r := s.Syscall(kernel.SysRead, [6]uint64{fd, 4}, nil)
					if r.Err == kernel.EINTR {
						mfd := s.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly},
							[]byte(fmt.Sprintf("/eintr-%d", s.ID))).Val
						s.Syscall(kernel.SysWrite, [6]uint64{mfd}, []byte("interrupted"))
						s.Syscall(kernel.SysClose, [6]uint64{mfd}, nil)
						continue
					}
					return
				}
			}
			var sibs []*ThreadHandle
			for i := 1; i < 4; i++ {
				fd := rfd[i]
				sibs = append(sibs, c.Spawn(func(s *Thread) { park(s, fd) }))
			}
			park(c, rfd[0])
			for _, s := range sibs {
				s.Join()
			}
			c.Exit(0)
		})
		// All four threads are committed to their reads before the pipes
		// hold any bytes, so the signal can only land as an EINTR.
		th.Syscall(kernel.SysNanosleep, [6]uint64{uint64(2e6)}, nil)
		th.Kill(child.Pid, kernel.SIGUSR1)
		for i := range wfd {
			th.Syscall(kernel.SysWrite, [6]uint64{wfd[i]}, []byte("go"))
		}
		for {
			if _, _, errno := th.Wait(); errno != kernel.EINTR {
				break
			}
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks, Kernel: kern, MaxThreads: 16}, prog)
	if res.Divergence != nil {
		t.Fatalf("multi-threaded EINTR diverged: %v", res.Divergence)
	}
	// Exactly one of the four threads (tids 1..4) observed the interrupt.
	marked := 0
	for tid := 1; tid <= 4; tid++ {
		if _, ok := kern.ReadFile(fmt.Sprintf("/eintr-%d", tid)); ok {
			marked++
		}
	}
	if marked != 1 {
		t.Fatalf("%d threads observed EINTR, want exactly 1", marked)
	}
}

func TestSignalHandlerRunsOnDeterministicThread(t *testing.T) {
	// Process-directed signal into a 4-thread worker: the handler runs on
	// whichever thread's syscall boundary the master stamped — and the
	// handler records that thread's tid through a compared write, so both
	// variants provably agree on the delivery thread.
	kern := kernel.New()
	prog := Program{Name: "mt-handler-tid", Main: func(th *Thread) {
		child := th.Fork(func(c *Thread) {
			c.Sigaction(kernel.SIGUSR1, func(h *Thread, _ int) {
				fd := h.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/sigtid")).Val
				h.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("tid=%d", h.ID)))
				h.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
			})
			spin := func(s *Thread) {
				for i := 0; i < 12; i++ {
					s.Syscall(kernel.SysNanosleep, [6]uint64{uint64(1e6)}, nil)
				}
			}
			var sibs []*ThreadHandle
			for i := 0; i < 3; i++ {
				sibs = append(sibs, c.Spawn(spin))
			}
			spin(c)
			for _, s := range sibs {
				s.Join()
			}
			c.Exit(0)
		})
		th.Syscall(kernel.SysNanosleep, [6]uint64{uint64(3e6)}, nil)
		th.Kill(child.Pid, kernel.SIGUSR1)
		for {
			if _, _, errno := th.Wait(); errno != kernel.EINTR {
				break
			}
		}
	}}
	res := runWithTimeout(t, Options{Variants: 2, Agent: agent.WallOfClocks, Kernel: kern, MaxThreads: 16}, prog)
	if res.Divergence != nil {
		t.Fatalf("handler-thread determinism diverged: %v", res.Divergence)
	}
	data, ok := kern.ReadFile("/sigtid")
	if !ok || !strings.HasPrefix(string(data), "tid=") {
		t.Fatalf("handler never recorded its thread: %q %v", data, ok)
	}
}
