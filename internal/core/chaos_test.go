package core

import (
	"bytes"
	"testing"

	"repro/internal/chaos"
	"repro/internal/kernel"
)

// chaosProg is a single-threaded pipe workload whose control flow depends
// only on syscall results: under a seeded fault plan, the sequence of
// injector decisions — and therefore the recorded trace — must be
// bit-identical run to run.
func chaosProg() Program {
	return Program{Name: "chaos-det", Main: func(th *Thread) {
		pr := th.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
		rfd, wfd := pr.Val, pr.Val2
		payload := []byte("deterministic-chaos-payload!")
		for i := 0; i < 40; i++ {
			sent := 0
			for sent < len(payload) {
				w := th.Syscall(kernel.SysWrite, [6]uint64{wfd}, payload[sent:])
				if !w.Ok() {
					continue // injected EIO/EAGAIN: retry, like a robust guest
				}
				sent += int(w.Val)
			}
			got := 0
			for got < len(payload) {
				r := th.Syscall(kernel.SysRead, [6]uint64{rfd, uint64(len(payload) - got)}, nil)
				if !r.Ok() {
					continue
				}
				got += int(r.Val)
			}
		}
		th.Syscall(kernel.SysClose, [6]uint64{rfd}, nil)
		th.Syscall(kernel.SysClose, [6]uint64{wfd}, nil)
	}}
}

const chaosDetPlan = "target=pipe error=30% short-reads short-writes timeout=10% seed=1234"

func recordChaosTrace(t *testing.T, spec string) ([]byte, int) {
	t.Helper()
	plan, err := chaos.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := runWithTimeout(t, Options{Variants: 2, Record: true, Inject: chaos.New(plan)}, chaosProg())
	if res.Divergence != nil {
		t.Fatalf("record run diverged: %v", res.Divergence)
	}
	if res.Panic != nil {
		t.Fatalf("record run panicked: %v", res.Panic)
	}
	if res.Trace == nil {
		t.Fatal("no trace captured")
	}
	injected := 0
	for _, tid := range res.Trace.Syscalls {
		for _, r := range tid {
			if r.Ret.Inj != 0 {
				injected++
			}
		}
	}
	var buf bytes.Buffer
	if err := res.Trace.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), injected
}

// The chaos contract: same seed, same workload => bit-identical faults.
// Recording the session twice with fresh same-seed injectors must yield
// byte-identical traces; a different seed must not.
func TestFaultInjectionIsDeterministicPerSeed(t *testing.T) {
	a, injA := recordChaosTrace(t, chaosDetPlan)
	b, injB := recordChaosTrace(t, chaosDetPlan)
	if injA == 0 {
		t.Fatal("the 30%/10% plan injected nothing over ~100 pipe calls — injection is dead")
	}
	if injA != injB || !bytes.Equal(a, b) {
		t.Fatalf("same-seed runs diverged: %d vs %d injections, traces equal=%v",
			injA, injB, bytes.Equal(a, b))
	}
	c, _ := recordChaosTrace(t, "target=pipe error=30% short-reads short-writes timeout=10% seed=77")
	if bytes.Equal(a, c) {
		t.Fatal("seed=77 reproduced the seed=1234 trace exactly — the seed is dead")
	}
}

// A trace recorded under a fault plan replays without an injector: the
// faults are data in the records (Ret.Inj, wire v4), not re-rolled dice,
// so the replay observes the identical failures and cannot diverge.
func TestChaosTraceReplaysWithoutInjector(t *testing.T) {
	plan, err := chaos.Parse(chaosDetPlan)
	if err != nil {
		t.Fatal(err)
	}
	rec := runWithTimeout(t, Options{Variants: 2, Record: true, Inject: chaos.New(plan)}, chaosProg())
	if rec.Divergence != nil || rec.Trace == nil {
		t.Fatalf("record run: divergence=%v trace=%v", rec.Divergence, rec.Trace != nil)
	}
	rep := runWithTimeout(t, Options{Replay: rec.Trace}, chaosProg())
	if rep.Divergence != nil {
		t.Fatalf("replay diverged: %v", rep.Divergence)
	}
	if rep.Panic != nil {
		t.Fatalf("replay panicked: %v", rep.Panic)
	}
	if rep.Syscalls != rec.Syscalls {
		t.Fatalf("replay executed %d syscalls, record %d — the fault-driven retry paths differed",
			rep.Syscalls, rec.Syscalls)
	}
}

// Faults injected into the master's replicated execution reach every
// variant identically: a 2-variant session under an aggressive error plan
// must never diverge (divergence would mean a slave observed a different
// fault than the master).
func TestInjectedFaultsNeverDivergeVariants(t *testing.T) {
	plan, err := chaos.Parse("target=pipe latency=+100us error=40% short-reads short-writes seed=9")
	if err != nil {
		t.Fatal(err)
	}
	res := runWithTimeout(t, Options{Variants: 3, Inject: chaos.New(plan), Telemetry: true}, chaosProg())
	if res.Divergence != nil {
		t.Fatalf("replicated faults diverged the variants: %v", res.Divergence)
	}
	if res.Panic != nil {
		t.Fatalf("panic: %v", res.Panic)
	}
}
