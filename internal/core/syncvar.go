package core

import "sync/atomic"

// SyncVar is a synchronization variable: one 32-bit word in the variant's
// diversified address space, accessed only through the instrumented sync
// ops below. Every access is bracketed by the variant's agent, exactly like
// the compile-time instrumentation of Listing 3 brackets each atomic
// instruction with before_sync_op/after_sync_op.
//
// A SyncVar belongs to one variant; corresponding SyncVars in different
// variants live at different addresses (ASLR), which is why the agents
// replay positionally instead of by address (§4.5.1).
type SyncVar struct {
	addr uint64
	word atomic.Uint32
}

// Addr returns the variable's virtual address in this variant.
func (v *SyncVar) Addr() uint64 { return v.addr }

// NewSyncVar allocates a synchronization variable in this thread's
// variant's data segment.
func (t *Thread) NewSyncVar() *SyncVar {
	return &SyncVar{addr: t.vs.space.AllocData(4)}
}

// NewSyncVars allocates n adjacent synchronization variables (modelling a
// struct of sync fields; adjacent 32-bit vars may share a wall clock,
// §4.5).
func (t *Thread) NewSyncVars(n int) []*SyncVar {
	base := t.vs.space.AllocData(uint64(4 * n))
	vars := make([]*SyncVar, n)
	for i := range vars {
		vars[i] = &SyncVar{addr: base + uint64(4*i)}
	}
	return vars
}

// CAS is an instrumented compare-and-swap (a LOCK CMPXCHG, type (i)).
func (t *Thread) CAS(v *SyncVar, old, new uint32) bool {
	t.vs.agent.Before(t.ID, v.addr)
	ok := v.word.CompareAndSwap(old, new)
	t.vs.agent.After(t.ID, v.addr)
	return ok
}

// Load is an instrumented aligned load (type (iii): it aliases variables
// written by type (i)/(ii) ops, so the analysis marks it a sync op).
func (t *Thread) Load(v *SyncVar) uint32 {
	t.vs.agent.Before(t.ID, v.addr)
	x := v.word.Load()
	t.vs.agent.After(t.ID, v.addr)
	return x
}

// Store is an instrumented aligned store (type (iii)); e.g. the
// spinlock_unlock store of Listing 1, line 9.
func (t *Thread) Store(v *SyncVar, x uint32) {
	t.vs.agent.Before(t.ID, v.addr)
	v.word.Store(x)
	t.vs.agent.After(t.ID, v.addr)
}

// Add is an instrumented fetch-and-add (a LOCK XADD, type (i)). It returns
// the new value.
func (t *Thread) Add(v *SyncVar, delta uint32) uint32 {
	t.vs.agent.Before(t.ID, v.addr)
	x := v.word.Add(delta)
	t.vs.agent.After(t.ID, v.addr)
	return x
}

// Xchg is an instrumented exchange (an XCHG, type (ii)). It returns the
// previous value.
func (t *Thread) Xchg(v *SyncVar, x uint32) uint32 {
	t.vs.agent.Before(t.ID, v.addr)
	old := v.word.Swap(x)
	t.vs.agent.After(t.ID, v.addr)
	return old
}

// CodeAddr allocates a function-sized code region in this variant's
// (diversified) code segment and returns its address — the model of "the
// address of function f", which differs across variants under ASLR/DCL.
// The attack-detection experiment leaks such an address.
func (t *Thread) CodeAddr(size uint64) uint64 {
	return t.vs.space.AllocCode(size)
}

// DataAddr allocates a data object and returns its (diversified) address
// without creating a SyncVar; covert-channel PoCs hash such addresses to
// decide their role (§5.4).
func (t *Thread) DataAddr(size uint64) uint64 {
	return t.vs.space.AllocData(size)
}

// RefreshLayout re-randomizes this variant's layout cursors from seed (see
// variant.Space.EpochShift) — the hook a hot-restarting server calls before
// forking a new worker generation, so the new workers' code lands at fresh
// addresses and gadget addresses leaked from the old generation die with
// it. Guest code must call it at the same program position in every variant
// (it is local state, not a monitored syscall).
func (t *Thread) RefreshLayout(seed int64) {
	t.vs.space.EpochShift(seed)
}

// FutexWait blocks until a FutexWake on v, provided v still holds val
// (sys_futex FUTEX_WAIT). Futexes are per variant and unordered — the
// agents already order all the sync ops around them (§4.1, footnote 5).
// After waking, callers must re-check their predicate; the session may be
// tearing down, which the next instrumented op or syscall will surface.
func (t *Thread) FutexWait(v *SyncVar, val uint32) {
	t.checkKilled()
	if b := t.board(); b != nil {
		// Register the blocking site before the wait: the board's watcher
		// validates the registration against the futex table's waiter count,
		// so a Wait that returns immediately (value already changed) is
		// never counted as asleep.
		b.FutexPark(t.ID, v.addr, t.vs.futex, &v.word)
		t.vs.futex.Wait(&v.word, val)
		b.FutexUnpark(t.ID)
	} else {
		t.vs.futex.Wait(&v.word, val)
	}
	t.checkKilled()
}

// FutexWake wakes up to n waiters on v (sys_futex FUTEX_WAKE).
func (t *Thread) FutexWake(v *SyncVar, n int) int {
	return t.vs.futex.Wake(&v.word, n)
}

func (t *Thread) checkKilled() {
	if t.sess.mon.Killed() {
		panic(agentStopPanic())
	}
}

// agentStopPanic centralizes the value used to unwind killed vthreads from
// non-monitor code paths.
func agentStopPanic() any { return ErrVariantKilled }

// ErrVariantKilled unwinds vthreads blocked outside the monitor (futex
// waits) when the session dies. Recovered by the vthread trampoline.
var ErrVariantKilled = errKilledType{}

type errKilledType struct{}

func (errKilledType) Error() string { return "core: variant killed" }
