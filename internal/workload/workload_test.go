package workload

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/monitor"
)

// tinyParams shrinks every benchmark to test scale.
func tinyParams() Params { return Params{Workers: 4, Units: 400, WorkPerUnit: 20} }

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 25 {
		t.Fatalf("registry has %d benchmarks, want 25 (PARSEC 12 + SPLASH 13)", len(all))
	}
	parsec, splash := 0, 0
	for _, b := range all {
		switch b.Suite {
		case "parsec":
			parsec++
		case "splash":
			splash++
		default:
			t.Errorf("%s: unknown suite %q", b.Name, b.Suite)
		}
		if b.PaperRunSec <= 0 {
			t.Errorf("%s: missing paper run time", b.Name)
		}
		if b.build == nil {
			t.Errorf("%s: no builder", b.Name)
		}
	}
	if parsec != 12 || splash != 13 {
		t.Fatalf("parsec=%d splash=%d, want 12/13", parsec, splash)
	}
	for _, excluded := range []string{"canneal", "cholesky"} {
		if _, err := ByName(excluded); err == nil {
			t.Errorf("%s must be excluded (§5.1)", excluded)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("dedup")
	if err != nil || b.Name != "dedup" || b.Shape != "pipeline" {
		t.Fatalf("ByName(dedup) = %+v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
}

func TestNamesMatchRegistryOrder(t *testing.T) {
	names := Names()
	all := All()
	for i := range all {
		if names[i] != all[i].Name {
			t.Fatalf("Names()[%d] = %s, registry %s", i, names[i], all[i].Name)
		}
	}
}

// TestEveryBenchmarkRunsNatively runs each model single-variant at tiny
// scale: no divergence machinery, just sanity of the program structure.
func TestEveryBenchmarkRunsNatively(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			res := runOne(t, b, 1, agent.None)
			if res.Divergence != nil {
				t.Fatalf("single-variant run diverged: %v", res.Divergence)
			}
		})
	}
}

// TestEveryBenchmarkLockstepsUnderWoC is the §5.1 correctness result at
// test scale: every benchmark, 2 variants with ASLR, wall-of-clocks, no
// divergence.
func TestEveryBenchmarkLockstepsUnderWoC(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			res := runOne(t, b, 2, agent.WallOfClocks)
			if res.Divergence != nil {
				t.Fatalf("diverged under WoC: %v", res.Divergence)
			}
		})
	}
}

// TestRepresentativesUnderAllAgents runs one benchmark per shape under all
// three agents and three variants.
func TestRepresentativesUnderAllAgents(t *testing.T) {
	reps := []string{"blackscholes", "dedup", "streamcluster", "radiosity", "fluidanimate", "water_spatial"}
	for _, name := range reps {
		for _, k := range []agent.Kind{agent.TotalOrder, agent.PartialOrder, agent.WallOfClocks} {
			name, k := name, k
			t.Run(fmt.Sprintf("%s/%s", name, k), func(t *testing.T) {
				t.Parallel()
				b, err := ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				res := runOne(t, b, 3, k)
				if res.Divergence != nil {
					t.Fatalf("diverged: %v", res.Divergence)
				}
			})
		}
	}
}

func runOne(t *testing.T, b Benchmark, variants int, kind agent.Kind) *core.Result {
	t.Helper()
	s := core.NewSession(core.Options{
		Variants: variants, Agent: kind, ASLR: true, Seed: 21, MaxThreads: 32,
	}, b.Build(tinyParams()))
	done := make(chan *core.Result, 1)
	go func() { done <- s.Run() }()
	select {
	case res := <-done:
		return res
	case <-time.After(120 * time.Second):
		s.Kill()
		t.Fatalf("%s deadlocked", b.Name)
		return nil
	}
}

func TestChecksumIdenticalAcrossRunsOfSameSeedLayout(t *testing.T) {
	// The computed checksum is a function of the input alone (not the
	// schedule): two independent native runs must agree.
	b, _ := ByName("fluidanimate")
	read := func() string {
		s := core.NewSession(core.Options{Variants: 1}, b.Build(tinyParams()))
		if res := s.Run(); res.Divergence != nil {
			t.Fatalf("diverged: %v", res.Divergence)
		}
		got, ok := s.Kernel().ReadFile("/checksum")
		if !ok {
			t.Fatal("no checksum written")
		}
		return string(got)
	}
	if a, b := read(), read(); a != b {
		t.Fatalf("checksums differ across runs: %s vs %s", a, b)
	}
}

func TestSyncRateOrderingMatchesPaper(t *testing.T) {
	// The models must preserve Table 2's gross ordering: radiosity and
	// fluidanimate are sync-op-dominated; blackscholes/fft/radix are
	// nearly sync-free.
	rate := func(name string) float64 {
		b, _ := ByName(name)
		s := core.NewSession(core.Options{Variants: 1}, b.Build(Params{Workers: 4, Units: 2000, WorkPerUnit: 30}))
		res := s.Run()
		if res.Divergence != nil {
			t.Fatalf("%s diverged", name)
		}
		return float64(res.SyncOps) / res.Duration.Seconds()
	}
	hi := []string{"radiosity", "fluidanimate"}
	lo := []string{"blackscholes", "fft", "radix"}
	for _, h := range hi {
		for _, l := range lo {
			rh, rl := rate(h), rate(l)
			if rh <= rl*10 {
				t.Errorf("sync rate of %s (%.0f/s) not ≫ %s (%.0f/s)", h, rh, l, rl)
			}
		}
	}
}

// TestCorrectnessSweepDiversityAndPolicies is the §5.1 correctness
// experiment at test scale: representative benchmarks under full diversity
// (ASLR + DCL) and both monitoring policies; no divergence anywhere.
func TestCorrectnessSweepDiversityAndPolicies(t *testing.T) {
	reps := []string{"dedup", "fluidanimate", "barnes", "water_spatial"}
	for _, name := range reps {
		for _, policy := range []monitor.Policy{
			monitor.PolicyStrictLockstep, monitor.PolicySecuritySensitive,
		} {
			name, policy := name, policy
			t.Run(fmt.Sprintf("%s/%v", name, policy), func(t *testing.T) {
				t.Parallel()
				b, err := ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				s := core.NewSession(core.Options{
					Variants: 2, Agent: agent.WallOfClocks,
					ASLR: true, DCL: true, Policy: policy,
					Seed: 31, MaxThreads: 32,
				}, b.Build(tinyParams()))
				done := make(chan *core.Result, 1)
				go func() { done <- s.Run() }()
				select {
				case res := <-done:
					if res.Divergence != nil {
						t.Fatalf("diverged: %v", res.Divergence)
					}
				case <-time.After(120 * time.Second):
					s.Kill()
					t.Fatal("deadlock")
				}
			})
		}
	}
}
