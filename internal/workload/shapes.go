// Package workload provides synthetic models of the PARSEC 2.1 and
// SPLASH-2x benchmarks used in the paper's evaluation (§5.1, Table 2,
// Figure 5). The real suites are C/C++ programs that cannot run under this
// Go substrate, so each benchmark is modelled by a program with the same
// *sharing structure* (pipeline, data-parallel, task queue, barrier-phased,
// fine-grained locking, reduction) and parameterized to approximate the
// paper's measured system-call and sync-op rates relative to compute
// (Table 2). The agents' costs are driven by exactly those properties, so
// the models preserve the comparative shapes of Table 1 and Figure 5.
//
// canneal is excluded (intentionally racy — fundamentally incompatible with
// an MVEE) and cholesky is excluded (does not run on the paper's system),
// mirroring §5.1.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/synclib"
)

// Params scales a benchmark run.
type Params struct {
	// Workers is the number of worker threads (the paper uses 4).
	Workers int
	// Units is the total number of work units; it scales run time.
	Units int
	// WorkPerUnit is the busy-loop length per unit.
	WorkPerUnit int
}

func (p *Params) fill(defUnits, defWork int) {
	if p.Workers <= 0 {
		p.Workers = 4
	}
	if p.Units <= 0 {
		p.Units = defUnits
	}
	if p.WorkPerUnit <= 0 {
		p.WorkPerUnit = defWork
	}
}

// busy burns deterministic CPU time with no memory traffic.
func busy(n int) uint32 {
	x := uint32(2463534242)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
	}
	return x
}

// shapeCfg tunes a shape builder for one benchmark.
type shapeCfg struct {
	units        int        // default work units
	work         int        // per-unit difficulty (kernel inner-loop scale)
	syncEvery    int        // one lock/unlock round per this many units (0 = never)
	syscallEvery int        // one monitored syscall per this many units (0 = never)
	stages       int        // pipeline stages / barrier phases
	locks        int        // lock population (fine-grained shapes)
	kernel       kernelFunc // computational core (kernels.go); nil = busy loop
}

// compute runs the benchmark's computational kernel for work unit i.
func (c shapeCfg) compute(i, n int) uint32 {
	if c.kernel != nil {
		return c.kernel(i, n)
	}
	return busy(n)
}

// dataParallel models blackscholes/swaptions/freqmine/bodytrack: workers
// process disjoint chunks; optional shared-lock accesses and syscalls.
func dataParallel(cfg shapeCfg) func(Params) core.Program {
	return func(p Params) core.Program {
		p.fill(cfg.units, cfg.work)
		return core.Program{Name: "data-parallel", Main: func(t *core.Thread) {
			nlocks := cfg.locks
			if nlocks <= 0 {
				nlocks = 1
			}
			locks := make([]*synclib.Mutex, nlocks)
			for i := range locks {
				locks[i] = synclib.NewMutex(t)
			}
			sums := make([]uint32, p.Workers)
			hs := make([]*core.ThreadHandle, p.Workers)
			per := p.Units / p.Workers
			for w := 0; w < p.Workers; w++ {
				w := w
				hs[w] = t.Spawn(func(tt *core.Thread) {
					var acc uint32
					for u := 0; u < per; u++ {
						acc += cfg.compute(w*per+u, p.WorkPerUnit)
						if cfg.syncEvery > 0 && u%cfg.syncEvery == 0 {
							l := locks[(w+u)%nlocks]
							l.Lock(tt)
							acc++
							l.Unlock(tt)
						}
						if cfg.syscallEvery > 0 && u%cfg.syscallEvery == 0 {
							tt.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil)
						}
					}
					sums[w] = acc
				})
			}
			for _, h := range hs {
				h.Join()
			}
			reportChecksum(t, sums)
		}}
	}
}

// pipeline models dedup/ferret/vips/x264: a chain of stages connected by
// bounded queues (mutex+cond), stage 0 reading input via syscalls and the
// last stage writing output.
func pipeline(cfg shapeCfg) func(Params) core.Program {
	return func(p Params) core.Program {
		p.fill(cfg.units, cfg.work)
		stages := cfg.stages
		if stages < 2 {
			stages = 2
		}
		return core.Program{Name: "pipeline", Main: func(t *core.Thread) {
			qs := make([]*queue, stages-1)
			for i := range qs {
				qs[i] = newQueue(t, 64)
			}
			fd := t.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/pipeline-out")).Val
			hs := make([]*core.ThreadHandle, stages)
			for s := 0; s < stages; s++ {
				s := s
				hs[s] = t.Spawn(func(tt *core.Thread) {
					switch {
					case s == 0: // producer
						var acc uint32
						for u := 0; u < p.Units; u++ {
							acc += cfg.compute(u, p.WorkPerUnit)
							if cfg.syscallEvery > 0 && u%cfg.syscallEvery == 0 {
								tt.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil)
							}
							qs[0].put(tt, uint32(u))
						}
						_ = acc
						qs[0].close(tt)
					case s == stages-1: // consumer
						var acc uint32
						for {
							v, ok := qs[s-1].get(tt)
							if !ok {
								break
							}
							acc += v + cfg.compute(int(v), p.WorkPerUnit)
							if cfg.syscallEvery > 0 && int(v)%cfg.syscallEvery == 0 {
								tt.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte{byte(acc)})
							}
						}
					default: // middle stage
						for {
							v, ok := qs[s-1].get(tt)
							if !ok {
								break
							}
							cfg.compute(int(v)+s, p.WorkPerUnit)
							qs[s].put(tt, v+1)
						}
						qs[s].close(tt)
					}
				})
			}
			for _, h := range hs {
				h.Join()
			}
		}}
	}
}

// barrierPhased models streamcluster/ocean/fft/radix/lu/facesim: workers
// alternate compute phases separated by barriers, with optional shared
// accumulations.
func barrierPhased(cfg shapeCfg) func(Params) core.Program {
	return func(p Params) core.Program {
		p.fill(cfg.units, cfg.work)
		phases := cfg.stages
		if phases <= 0 {
			phases = 8
		}
		return core.Program{Name: "barrier-phased", Main: func(t *core.Thread) {
			bar := synclib.NewBarrier(t, p.Workers)
			mu := synclib.NewMutex(t)
			var global uint32
			hs := make([]*core.ThreadHandle, p.Workers)
			perPhase := p.Units / (p.Workers * phases)
			if perPhase == 0 {
				perPhase = 1
			}
			for w := 0; w < p.Workers; w++ {
				hs[w] = t.Spawn(func(tt *core.Thread) {
					for ph := 0; ph < phases; ph++ {
						var acc uint32
						for u := 0; u < perPhase; u++ {
							acc += cfg.compute(ph*perPhase+u, p.WorkPerUnit)
							if cfg.syscallEvery > 0 && u%cfg.syscallEvery == 0 {
								tt.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil)
							}
						}
						if cfg.syncEvery > 0 {
							mu.Lock(tt)
							global += acc
							mu.Unlock(tt)
						}
						bar.Wait(tt)
					}
				})
			}
			for _, h := range hs {
				h.Join()
			}
			reportChecksum(t, []uint32{global})
		}}
	}
}

// taskQueue models radiosity/barnes/fmm/volrend/raytrace: a shared task
// queue with fine-grained locking and work stealing — the highest sync-op
// rates in the suite.
func taskQueue(cfg shapeCfg) func(Params) core.Program {
	return func(p Params) core.Program {
		p.fill(cfg.units, cfg.work)
		return core.Program{Name: "task-queue", Main: func(t *core.Thread) {
			q := newQueue(t, 256)
			mu := synclib.NewMutex(t)
			var done uint32
			hs := make([]*core.ThreadHandle, p.Workers)
			for w := 0; w < p.Workers; w++ {
				hs[w] = t.Spawn(func(tt *core.Thread) {
					var acc uint32
					for {
						v, ok := q.get(tt)
						if !ok {
							break
						}
						acc += cfg.compute(int(v), p.WorkPerUnit)
						if cfg.syncEvery > 0 && int(v)%cfg.syncEvery == 0 {
							mu.Lock(tt)
							done++
							mu.Unlock(tt)
						}
						if cfg.syscallEvery > 0 && int(v)%cfg.syscallEvery == 0 {
							tt.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil)
						}
					}
					_ = acc
				})
			}
			for u := 0; u < p.Units; u++ {
				q.put(t, uint32(u))
			}
			q.close(t)
			for _, h := range hs {
				h.Join()
			}
		}}
	}
}

// fineGrained models fluidanimate: a grid of cells, each protected by its
// own lock; workers lock neighbouring cells at very high rates.
func fineGrained(cfg shapeCfg) func(Params) core.Program {
	return func(p Params) core.Program {
		p.fill(cfg.units, cfg.work)
		nlocks := cfg.locks
		if nlocks <= 0 {
			nlocks = 64
		}
		return core.Program{Name: "fine-grained", Main: func(t *core.Thread) {
			locks := make([]*synclib.SpinLock, nlocks)
			cells := make([]uint32, nlocks)
			for i := range locks {
				locks[i] = synclib.NewSpinLock(t)
			}
			hs := make([]*core.ThreadHandle, p.Workers)
			per := p.Units / p.Workers
			for w := 0; w < p.Workers; w++ {
				w := w
				hs[w] = t.Spawn(func(tt *core.Thread) {
					for u := 0; u < per; u++ {
						cfg.compute(w*per+u, p.WorkPerUnit)
						c := (w*per + u*7) % nlocks
						locks[c].Lock(tt)
						cells[c]++
						locks[c].Unlock(tt)
						if cfg.syscallEvery > 0 && u%cfg.syscallEvery == 0 {
							tt.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil)
						}
					}
				})
			}
			for _, h := range hs {
				h.Join()
			}
			reportChecksum(t, cells)
		}}
	}
}

// reduction models water_nsquared/water_spatial: per-step local compute
// followed by a global accumulation under one lock, plus (for
// water_spatial) a high file-output syscall rate.
func reduction(cfg shapeCfg) func(Params) core.Program {
	return func(p Params) core.Program {
		p.fill(cfg.units, cfg.work)
		return core.Program{Name: "reduction", Main: func(t *core.Thread) {
			mu := synclib.NewMutex(t)
			var global uint32
			fd := t.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/reduce-out")).Val
			hs := make([]*core.ThreadHandle, p.Workers)
			per := p.Units / p.Workers
			for w := 0; w < p.Workers; w++ {
				hs[w] = t.Spawn(func(tt *core.Thread) {
					for u := 0; u < per; u++ {
						acc := cfg.compute(u, p.WorkPerUnit)
						if cfg.syncEvery > 0 && u%cfg.syncEvery == 0 {
							mu.Lock(tt)
							global += acc
							mu.Unlock(tt)
						}
						if cfg.syscallEvery > 0 && u%cfg.syscallEvery == 0 {
							tt.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte{byte(u)})
						}
					}
				})
			}
			for _, h := range hs {
				h.Join()
			}
			reportChecksum(t, []uint32{global})
		}}
	}
}

// queue is a bounded MPMC queue built from instrumented primitives only.
type queue struct {
	mu                *synclib.Mutex
	notEmpty, notFull *synclib.Cond
	buf               []uint32
	cap               int
	closed            bool
}

func newQueue(t *core.Thread, capacity int) *queue {
	return &queue{
		mu:       synclib.NewMutex(t),
		notEmpty: synclib.NewCond(t),
		notFull:  synclib.NewCond(t),
		cap:      capacity,
	}
}

func (q *queue) put(t *core.Thread, v uint32) {
	q.mu.Lock(t)
	for len(q.buf) >= q.cap {
		q.notFull.Wait(t, q.mu)
	}
	q.buf = append(q.buf, v)
	q.notEmpty.Signal(t)
	q.mu.Unlock(t)
}

func (q *queue) get(t *core.Thread) (uint32, bool) {
	q.mu.Lock(t)
	for len(q.buf) == 0 && !q.closed {
		q.notEmpty.Wait(t, q.mu)
	}
	if len(q.buf) == 0 {
		q.mu.Unlock(t)
		return 0, false
	}
	v := q.buf[0]
	q.buf = q.buf[1:]
	q.notFull.Signal(t)
	q.mu.Unlock(t)
	return v, true
}

func (q *queue) close(t *core.Thread) {
	q.mu.Lock(t)
	q.closed = true
	q.notEmpty.Broadcast(t)
	q.mu.Unlock(t)
}

// reportChecksum writes a deterministic digest of the results through a
// monitored syscall, so any cross-variant deviation in computed state is
// caught as divergence.
func reportChecksum(t *core.Thread, vals []uint32) {
	var sum uint64
	for _, v := range vals {
		sum = sum*31 + uint64(v)
	}
	fd := t.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte("/checksum")).Val
	t.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(fmt.Sprintf("%x", sum)))
	t.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
}
