package workload

import "testing"

// allKernels enumerates the computational kernels for table-driven tests.
var allKernels = map[string]kernelFunc{
	"blackscholes":  kernelBlackScholes,
	"swaptions":     kernelSwaptions,
	"fft":           kernelFFT,
	"radix":         kernelRadix,
	"lu":            kernelLU,
	"ocean":         kernelOcean,
	"nbody":         kernelNBody,
	"water":         kernelWater,
	"streamcluster": kernelStreamcluster,
	"dedup":         kernelDedup,
	"ferret":        kernelFerret,
	"bodytrack":     kernelBodytrack,
	"raytrace":      kernelRaytrace,
	"volrend":       kernelVolrend,
	"convolve":      kernelConvolve,
	"freqmine":      kernelFreqmine,
	"facesim":       kernelFacesim,
	"radiosity":     kernelRadiosity,
}

// TestKernelsDeterministic: a kernel must be a pure function of (i, n) —
// the whole MVEE correctness story rests on variants computing identical
// results from identical inputs.
func TestKernelsDeterministic(t *testing.T) {
	for name, k := range allKernels {
		name, k := name, k
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 50; i++ {
				a := k(i, 200)
				b := k(i, 200)
				if a != b {
					t.Fatalf("kernel(%d) nondeterministic: %#x vs %#x", i, a, b)
				}
			}
		})
	}
}

// TestKernelsVaryWithInput: different work units must (almost always)
// produce different digests; a constant kernel would make the checksum
// comparison vacuous.
func TestKernelsVaryWithInput(t *testing.T) {
	for name, k := range allKernels {
		name, k := name, k
		t.Run(name, func(t *testing.T) {
			seen := map[uint32]bool{}
			for i := 0; i < 64; i++ {
				seen[k(i, 200)] = true
			}
			if len(seen) < 16 {
				t.Fatalf("only %d distinct digests over 64 units", len(seen))
			}
		})
	}
}

// TestRadixKernelActuallySorts: spot-check a real algorithmic property
// rather than just a digest.
func TestRadixKernelActuallySorts(t *testing.T) {
	// The kernel digests keys[0]^keys[last]^keys[mid] AFTER sorting; run
	// the same sort here and compare to prove the kernel's sort is real.
	const size = 32
	var keys []uint32
	r := uint32(5)*747796405 + 1
	for k := 0; k < size; k++ {
		r ^= r << 13
		r ^= r >> 17
		r ^= r << 5
		keys = append(keys, r)
	}
	// Reference sort.
	sorted := append([]uint32(nil), keys...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	want := sorted[0] ^ sorted[size-1] ^ sorted[size/2]
	if got := kernelRadix(5, 1); got != want {
		t.Fatalf("radix kernel digest %#x, reference %#x — sort is wrong", got, want)
	}
}

// TestBlackScholesSanity: the closed-form price of a deep-in-the-money call
// approaches S - K e^{-rT}; verify the CNDF behaves (monotone, bounded).
func TestBlackScholesSanity(t *testing.T) {
	if c := cndf(0); c < 0.49 || c > 0.51 {
		t.Fatalf("cndf(0) = %v, want ~0.5", c)
	}
	if c := cndf(6); c < 0.999 {
		t.Fatalf("cndf(6) = %v, want ~1", c)
	}
	if c := cndf(-6); c > 0.001 {
		t.Fatalf("cndf(-6) = %v, want ~0", c)
	}
	prev := 0.0
	for x := -3.0; x <= 3.0; x += 0.25 {
		c := cndf(x)
		if c < prev {
			t.Fatalf("cndf not monotone at %v", x)
		}
		prev = c
	}
}

// TestLUKernelStable: with the diagonally dominant construction the last
// pivot must stay positive (no blow-up).
func TestLUKernelStable(t *testing.T) {
	for i := 0; i < 32; i++ {
		if d := kernelLU(i, 1); d == 0xdead {
			t.Fatalf("LU produced NaN/Inf for unit %d", i)
		}
	}
}

// TestKernelsScaleWithDifficulty: raising n must not change the *structure*
// of results (still deterministic) and must do more work for loop-scaled
// kernels. We only verify determinism at several n.
func TestKernelsScaleWithDifficulty(t *testing.T) {
	for name, k := range allKernels {
		name, k := name, k
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 64, 500, 2000} {
				if k(3, n) != k(3, n) {
					t.Fatalf("nondeterministic at n=%d", n)
				}
			}
		})
	}
}

func TestDigestHandlesNonFinite(t *testing.T) {
	if digest(1.0/zero()) != 0xdead {
		t.Fatal("Inf not caught")
	}
	nan := zero() / zero()
	if digest(nan) != 0xdead {
		t.Fatal("NaN not caught")
	}
}

// zero defeats constant folding so the divisions above happen at run time.
func zero() float64 { return float64(len("")) }
