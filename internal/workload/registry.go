package workload

import (
	"fmt"

	"repro/internal/core"
)

// Benchmark is one modelled PARSEC/SPLASH-2x program.
type Benchmark struct {
	Name  string
	Suite string // "parsec" or "splash"
	// Paper reference values (Table 2): native run time in seconds,
	// system calls per second (thousands), sync ops per second
	// (thousands) — with four worker threads on the paper's testbed.
	PaperRunSec     float64
	PaperSyscallKps float64
	PaperSyncKps    float64
	// Shape names the sharing structure used by the model.
	Shape string
	build func(Params) core.Program
}

// Build instantiates the benchmark program.
func (b Benchmark) Build(p Params) core.Program {
	prog := b.build(p)
	prog.Name = b.Name
	return prog
}

// All returns the 25 modelled benchmarks (canneal and cholesky excluded,
// as in §5.1), in Table 2 order.
func All() []Benchmark {
	return registry
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns all benchmark names in order.
func Names() []string {
	names := make([]string, len(registry))
	for i, b := range registry {
		names[i] = b.Name
	}
	return names
}

// The shape parameters below are tuned so each model's sync-op and syscall
// rates relative to compute approximate the paper's Table 2 ratios: e.g.
// radiosity and fluidanimate are sync-dominated, dedup is both syscall- and
// sync-heavy, blackscholes/fft/radix/lu are nearly communication-free.
// Default Units give native runs of tens of milliseconds; the bench harness
// scales them with Params.
var registry = []Benchmark{
	// PARSEC 2.1
	{Name: "blackscholes", Suite: "parsec", PaperRunSec: 80.83, PaperSyscallKps: 2.55, PaperSyncKps: 0,
		Shape: "data-parallel", build: dataParallel(shapeCfg{units: 8000, work: 400, syncEvery: 0, syscallEvery: 400, kernel: kernelBlackScholes})},
	{Name: "bodytrack", Suite: "parsec", PaperRunSec: 60.06, PaperSyscallKps: 8.59, PaperSyncKps: 202.36,
		Shape: "data-parallel", build: dataParallel(shapeCfg{units: 8000, work: 300, syncEvery: 12, syscallEvery: 300, locks: 8, kernel: kernelBodytrack})},
	{Name: "dedup", Suite: "parsec", PaperRunSec: 18.29, PaperSyscallKps: 134.27, PaperSyncKps: 1052.45,
		Shape: "pipeline", build: pipeline(shapeCfg{units: 4000, work: 120, stages: 4, syscallEvery: 6, kernel: kernelDedup})},
	{Name: "facesim", Suite: "parsec", PaperRunSec: 142.52, PaperSyscallKps: 4.14, PaperSyncKps: 288.75,
		Shape: "barrier-phased", build: barrierPhased(shapeCfg{units: 8000, work: 300, stages: 24, syncEvery: 1, syscallEvery: 400, kernel: kernelFacesim})},
	{Name: "ferret", Suite: "parsec", PaperRunSec: 103.79, PaperSyscallKps: 2.29, PaperSyncKps: 225.10,
		Shape: "pipeline", build: pipeline(shapeCfg{units: 4000, work: 250, stages: 6, syscallEvery: 300, kernel: kernelFerret})},
	{Name: "fluidanimate", Suite: "parsec", PaperRunSec: 93.19, PaperSyscallKps: 0.45, PaperSyncKps: 12746.59,
		Shape: "fine-grained", build: fineGrained(shapeCfg{units: 60000, work: 25, locks: 256, syscallEvery: 8000, kernel: kernelWater})},
	{Name: "freqmine", Suite: "parsec", PaperRunSec: 168.66, PaperSyscallKps: 0.35, PaperSyncKps: 0.24,
		Shape: "data-parallel", build: dataParallel(shapeCfg{units: 8000, work: 400, syncEvery: 2000, syscallEvery: 2000, kernel: kernelFreqmine})},
	{Name: "raytrace", Suite: "parsec", PaperRunSec: 147.54, PaperSyscallKps: 0.78, PaperSyncKps: 88.33,
		Shape: "task-queue", build: taskQueue(shapeCfg{units: 6000, work: 350, syncEvery: 20, syscallEvery: 1500, kernel: kernelRaytrace})},
	{Name: "streamcluster", Suite: "parsec", PaperRunSec: 136.05, PaperSyscallKps: 5.63, PaperSyncKps: 18.78,
		Shape: "barrier-phased", build: barrierPhased(shapeCfg{units: 8000, work: 300, stages: 32, syncEvery: 4, syscallEvery: 250, kernel: kernelStreamcluster})},
	{Name: "swaptions", Suite: "parsec", PaperRunSec: 86.68, PaperSyscallKps: 0.01, PaperSyncKps: 4585.65,
		Shape: "data-parallel", build: dataParallel(shapeCfg{units: 40000, work: 40, syncEvery: 1, syscallEvery: 0, locks: 16, kernel: kernelSwaptions})},
	{Name: "vips", Suite: "parsec", PaperRunSec: 37.09, PaperSyscallKps: 15.76, PaperSyncKps: 428.69,
		Shape: "pipeline", build: pipeline(shapeCfg{units: 5000, work: 150, stages: 3, syscallEvery: 40, kernel: kernelConvolve})},
	{Name: "x264", Suite: "parsec", PaperRunSec: 34.73, PaperSyscallKps: 0.50, PaperSyncKps: 15.98,
		Shape: "pipeline", build: pipeline(shapeCfg{units: 3000, work: 400, stages: 3, syscallEvery: 1200, kernel: kernelConvolve})},

	// SPLASH-2x
	{Name: "barnes", Suite: "splash", PaperRunSec: 61.15, PaperSyscallKps: 19.61, PaperSyncKps: 5115.99,
		Shape: "task-queue", build: taskQueue(shapeCfg{units: 30000, work: 40, syncEvery: 2, syscallEvery: 250, kernel: kernelNBody})},
	{Name: "fft", Suite: "splash", PaperRunSec: 40.26, PaperSyscallKps: 0.01, PaperSyncKps: 1.64,
		Shape: "barrier-phased", build: barrierPhased(shapeCfg{units: 8000, work: 400, stages: 6, syncEvery: 0, syscallEvery: 0, kernel: kernelFFT})},
	{Name: "fmm", Suite: "splash", PaperRunSec: 42.68, PaperSyscallKps: 0.91, PaperSyncKps: 5215.01,
		Shape: "task-queue", build: taskQueue(shapeCfg{units: 30000, work: 40, syncEvery: 2, syscallEvery: 4000, kernel: kernelNBody})},
	{Name: "lu_cb", Suite: "splash", PaperRunSec: 51.16, PaperSyscallKps: 0.08, PaperSyncKps: 0.23,
		Shape: "barrier-phased", build: barrierPhased(shapeCfg{units: 8000, work: 400, stages: 8, syncEvery: 0, syscallEvery: 0, kernel: kernelLU})},
	{Name: "lu_ncb", Suite: "splash", PaperRunSec: 73.55, PaperSyscallKps: 0.05, PaperSyncKps: 0.16,
		Shape: "barrier-phased", build: barrierPhased(shapeCfg{units: 8000, work: 450, stages: 8, syncEvery: 0, syscallEvery: 0, kernel: kernelLU})},
	{Name: "ocean_cp", Suite: "splash", PaperRunSec: 39.39, PaperSyscallKps: 1.21, PaperSyncKps: 5.05,
		Shape: "barrier-phased", build: barrierPhased(shapeCfg{units: 8000, work: 350, stages: 16, syncEvery: 8, syscallEvery: 900, kernel: kernelOcean})},
	{Name: "ocean_ncp", Suite: "splash", PaperRunSec: 41.68, PaperSyscallKps: 1.08, PaperSyncKps: 4.55,
		Shape: "barrier-phased", build: barrierPhased(shapeCfg{units: 8000, work: 350, stages: 16, syncEvery: 8, syscallEvery: 1000, kernel: kernelOcean})},
	{Name: "radiosity", Suite: "splash", PaperRunSec: 45.56, PaperSyscallKps: 33.42, PaperSyncKps: 18252.68,
		Shape: "task-queue", build: taskQueue(shapeCfg{units: 60000, work: 15, syncEvery: 1, syscallEvery: 400, kernel: kernelRadiosity})},
	{Name: "radix", Suite: "splash", PaperRunSec: 18.22, PaperSyscallKps: 0.02, PaperSyncKps: 0.04,
		Shape: "barrier-phased", build: barrierPhased(shapeCfg{units: 6000, work: 400, stages: 4, syncEvery: 0, syscallEvery: 0, kernel: kernelRadix})},
	{Name: "raytrace_sp", Suite: "splash", PaperRunSec: 52.52, PaperSyscallKps: 6.63, PaperSyncKps: 536.79,
		Shape: "task-queue", build: taskQueue(shapeCfg{units: 10000, work: 150, syncEvery: 4, syscallEvery: 250, kernel: kernelRaytrace})},
	{Name: "volrend", Suite: "splash", PaperRunSec: 52.02, PaperSyscallKps: 15.86, PaperSyncKps: 1071.25,
		Shape: "task-queue", build: taskQueue(shapeCfg{units: 15000, work: 90, syncEvery: 2, syscallEvery: 120, kernel: kernelVolrend})},
	{Name: "water_nsquared", Suite: "splash", PaperRunSec: 182.80, PaperSyscallKps: 0.88, PaperSyncKps: 8.61,
		Shape: "reduction", build: reduction(shapeCfg{units: 8000, work: 400, syncEvery: 60, syscallEvery: 900, kernel: kernelWater})},
	{Name: "water_spatial", Suite: "splash", PaperRunSec: 59.84, PaperSyscallKps: 148.27, PaperSyncKps: 9.63,
		Shape: "reduction", build: reduction(shapeCfg{units: 8000, work: 150, syncEvery: 80, syscallEvery: 3, kernel: kernelWater})},
}
