package workload

import "math"

// This file contains the computational kernels of the benchmark models:
// small, allocation-free, deterministic cores of the real PARSEC/SPLASH
// programs. Each kernel maps one work unit (identified by its index) to a
// uint32 digest. The digests flow into the programs' checksums, so the
// monitor's payload comparison validates that every variant computed the
// same *results*, not merely that it burned the same time.
//
// kernelFunc computes work unit i at difficulty n (the WorkPerUnit knob);
// implementations scale their inner loops with n so the bench harness can
// stretch run times without changing results' structure.
type kernelFunc func(i, n int) uint32

// xorshift is the deterministic PRNG all kernels draw parameters from.
func xorshift(x uint32) uint32 {
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	return x
}

// digest folds a float into a checksum-friendly integer, quantizing so the
// result is stable across compilers (all variants run the same binary here,
// but quantization also keeps NaN/rounding surprises out of checksums).
func digest(f float64) uint32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0xdead
	}
	return uint32(int64(f * 1e6)) // fixed-point at 1e-6
}

// cndf is the cumulative normal distribution function via the Abramowitz &
// Stegun polynomial — the same approximation PARSEC's blackscholes uses.
func cndf(x float64) float64 {
	neg := x < 0
	if neg {
		x = -x
	}
	k := 1.0 / (1.0 + 0.2316419*x)
	poly := k * (0.319381530 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	v := 1.0 - 1.0/math.Sqrt(2*math.Pi)*math.Exp(-x*x/2)*poly
	if neg {
		return 1.0 - v
	}
	return v
}

// kernelBlackScholes prices one European option with the closed-form
// Black-Scholes formula (PARSEC blackscholes).
func kernelBlackScholes(i, n int) uint32 {
	r := xorshift(uint32(i + 1))
	spot := 50.0 + float64(r%100)         // S
	strike := 50.0 + float64((r>>8)%100)  // K
	rate := 0.01 + float64((r>>16)%5)/100 // r
	vol := 0.10 + float64((r>>24)%40)/100 // sigma
	tte := 0.25 + float64(r%16)/8         // T
	var acc uint32
	reps := n/64 + 1
	for k := 0; k < reps; k++ {
		d1 := (math.Log(spot/strike) + (rate+vol*vol/2)*tte) / (vol * math.Sqrt(tte))
		d2 := d1 - vol*math.Sqrt(tte)
		call := spot*cndf(d1) - strike*math.Exp(-rate*tte)*cndf(d2)
		acc += digest(call)
		vol += 1e-6 // perturb so reps are not folded away
	}
	return acc
}

// kernelSwaptions runs a miniature HJM Monte-Carlo path simulation
// (PARSEC swaptions): forward-rate paths with deterministic pseudo-random
// shocks, payoff accumulation.
func kernelSwaptions(i, n int) uint32 {
	seed := xorshift(uint32(i)*2654435761 + 1)
	paths := n/32 + 1
	var payoff float64
	for p := 0; p < paths; p++ {
		rate := 0.02
		for step := 0; step < 8; step++ {
			seed = xorshift(seed)
			shock := (float64(seed%2000)/1000 - 1) * 0.002
			rate += 0.0005 + shock
		}
		if rate > 0.02 {
			payoff += rate - 0.02
		}
	}
	return digest(payoff * 1e4)
}

// kernelFFT performs an in-place radix-2 butterfly pass over a small local
// signal (SPLASH fft).
func kernelFFT(i, n int) uint32 {
	const size = 16
	var re, im [size]float64
	r := uint32(i + 7)
	for k := 0; k < size; k++ {
		r = xorshift(r)
		re[k] = float64(r%1000) / 1000
		im[k] = 0
	}
	reps := n/128 + 1
	for rep := 0; rep < reps; rep++ {
		for span := size / 2; span >= 1; span /= 2 {
			for start := 0; start < size; start += 2 * span {
				for k := 0; k < span; k++ {
					angle := -math.Pi * float64(k) / float64(span)
					wr, wi := math.Cos(angle), math.Sin(angle)
					a, b := start+k, start+k+span
					tr := re[a] - re[b]
					ti := im[a] - im[b]
					re[a] += re[b]
					im[a] += im[b]
					re[b] = tr*wr - ti*wi
					im[b] = tr*wi + ti*wr
				}
			}
		}
	}
	return digest(re[0]) ^ digest(im[size-1])
}

// kernelRadix sorts a small local array with LSD radix sort (SPLASH radix).
func kernelRadix(i, n int) uint32 {
	const size = 32
	var keys, tmp [size]uint32
	r := uint32(i)*747796405 + 1
	for k := range keys {
		r = xorshift(r)
		keys[k] = r
	}
	reps := n/96 + 1
	for rep := 0; rep < reps; rep++ {
		for shift := 0; shift < 32; shift += 8 {
			var count [256]int
			for _, k := range keys {
				count[(k>>shift)&0xff]++
			}
			pos := 0
			var starts [256]int
			for d := 0; d < 256; d++ {
				starts[d] = pos
				pos += count[d]
			}
			for _, k := range keys {
				d := (k >> shift) & 0xff
				tmp[starts[d]] = k
				starts[d]++
			}
			keys = tmp
		}
	}
	return keys[0] ^ keys[size-1] ^ keys[size/2]
}

// kernelLU eliminates one column block of a small dense matrix (SPLASH
// lu_cb / lu_ncb).
func kernelLU(i, n int) uint32 {
	const dim = 8
	var m [dim][dim]float64
	r := uint32(i + 3)
	for a := 0; a < dim; a++ {
		for b := 0; b < dim; b++ {
			r = xorshift(r)
			m[a][b] = float64(r%1000)/100 + 1
		}
		m[a][a] += 10 // diagonally dominant: stable elimination
	}
	reps := n/160 + 1
	var acc float64
	for rep := 0; rep < reps; rep++ {
		w := m
		for p := 0; p < dim-1; p++ {
			for a := p + 1; a < dim; a++ {
				f := w[a][p] / w[p][p]
				for b := p; b < dim; b++ {
					w[a][b] -= f * w[p][b]
				}
			}
		}
		acc += w[dim-1][dim-1]
	}
	return digest(acc)
}

// kernelOcean relaxes a small 2D grid with a 5-point Jacobi stencil
// (SPLASH ocean).
func kernelOcean(i, n int) uint32 {
	const dim = 12
	var grid, next [dim][dim]float64
	r := uint32(i + 11)
	for a := 0; a < dim; a++ {
		for b := 0; b < dim; b++ {
			r = xorshift(r)
			grid[a][b] = float64(r % 100)
		}
	}
	sweeps := n/100 + 1
	for s := 0; s < sweeps; s++ {
		for a := 1; a < dim-1; a++ {
			for b := 1; b < dim-1; b++ {
				next[a][b] = 0.25 * (grid[a-1][b] + grid[a+1][b] + grid[a][b-1] + grid[a][b+1])
			}
		}
		grid, next = next, grid
	}
	return digest(grid[dim/2][dim/2])
}

// kernelNBody accumulates gravitational forces over a particle subset
// (SPLASH barnes / fmm: the force kernel without the tree).
func kernelNBody(i, n int) uint32 {
	const bodies = 8
	var x, y, m [bodies]float64
	r := uint32(i + 19)
	for b := 0; b < bodies; b++ {
		r = xorshift(r)
		x[b] = float64(r % 1000)
		r = xorshift(r)
		y[b] = float64(r % 1000)
		m[b] = 1 + float64(r%9)
	}
	reps := n/224 + 1
	var fx, fy, pot float64
	for rep := 0; rep < reps; rep++ {
		// Net force on body 0 plus total potential energy; summing over
		// all ordered pairs would cancel by symmetry.
		for b := 1; b < bodies; b++ {
			dx, dy := x[b]-x[0], y[b]-y[0]
			d2 := dx*dx + dy*dy + 1
			inv := m[0] * m[b] / (d2 * math.Sqrt(d2))
			fx += dx * inv
			fy += dy * inv
		}
		for a := 0; a < bodies; a++ {
			for b := a + 1; b < bodies; b++ {
				dx, dy := x[b]-x[a], y[b]-y[a]
				pot -= m[a] * m[b] / math.Sqrt(dx*dx+dy*dy+1)
			}
		}
	}
	return digest(fx*1e3) ^ digest(fy*1e3) ^ digest(pot)
}

// kernelWater evaluates Lennard-Jones pair potentials over a molecule
// neighborhood (SPLASH water_nsquared / water_spatial).
func kernelWater(i, n int) uint32 {
	const mols = 8
	var px, py, pz [mols]float64
	r := uint32(i + 23)
	for m := 0; m < mols; m++ {
		r = xorshift(r)
		px[m] = float64(r%500) / 10
		r = xorshift(r)
		py[m] = float64(r%500) / 10
		r = xorshift(r)
		pz[m] = float64(r%500) / 10
	}
	reps := n/200 + 1
	var energy float64
	for rep := 0; rep < reps; rep++ {
		for a := 0; a < mols; a++ {
			for b := a + 1; b < mols; b++ {
				dx, dy, dz := px[a]-px[b], py[a]-py[b], pz[a]-pz[b]
				r2 := dx*dx + dy*dy + dz*dz + 0.5
				inv6 := 1 / (r2 * r2 * r2)
				energy += 4 * (inv6*inv6 - inv6)
			}
		}
	}
	return digest(energy * 1e3)
}

// kernelStreamcluster assigns one point to the nearest of k centers
// (PARSEC streamcluster).
func kernelStreamcluster(i, n int) uint32 {
	const dims = 8
	const centers = 4
	var point [dims]float64
	var cs [centers][dims]float64
	r := uint32(i + 29)
	for d := 0; d < dims; d++ {
		r = xorshift(r)
		point[d] = float64(r % 100)
	}
	for c := 0; c < centers; c++ {
		for d := 0; d < dims; d++ {
			r = xorshift(r)
			cs[c][d] = float64(r % 100)
		}
	}
	reps := n/72 + 1
	best := 0
	bestD := math.MaxFloat64
	for rep := 0; rep < reps; rep++ {
		bestD = math.MaxFloat64
		for c := 0; c < centers; c++ {
			var d2 float64
			for d := 0; d < dims; d++ {
				diff := point[d] - cs[c][d]
				d2 += diff * diff
			}
			if d2 < bestD {
				bestD = d2
				best = c
			}
		}
		point[0] += 1e-9
	}
	return uint32(best)<<28 ^ digest(bestD)
}

// kernelDedup chunkifies a pseudo-random buffer with a rolling hash and
// fingerprints each chunk (PARSEC dedup's pipeline payload).
func kernelDedup(i, n int) uint32 {
	size := n/2 + 64
	if size > 1024 {
		size = 1024
	}
	r := uint32(i)*0x9e3779b9 + 1
	var rolling, fp, chunks uint32
	prev := uint32(0)
	for b := 0; b < size; b++ {
		r = xorshift(r)
		octet := r & 0xff
		rolling = rolling<<1 + octet
		fp = fp*31 + octet
		if rolling&0x3f == 0x3f { // chunk boundary
			chunks++
			prev ^= fp
			fp = 0
		}
	}
	return prev ^ chunks<<16
}

// kernelFerret computes an L2 feature distance (PARSEC ferret's similarity
// search payload).
func kernelFerret(i, n int) uint32 {
	const dims = 16
	var a, b [dims]float64
	r := uint32(i + 31)
	for d := 0; d < dims; d++ {
		r = xorshift(r)
		a[d] = float64(r % 256)
		r = xorshift(r)
		b[d] = float64(r % 256)
	}
	reps := n/48 + 1
	var dist float64
	for rep := 0; rep < reps; rep++ {
		dist = 0
		for d := 0; d < dims; d++ {
			diff := a[d] - b[d]
			dist += diff * diff
		}
		a[0] += 1e-9
	}
	return digest(math.Sqrt(dist))
}

// kernelBodytrack updates particle-filter weights (PARSEC bodytrack).
func kernelBodytrack(i, n int) uint32 {
	const particles = 16
	var w [particles]float64
	r := uint32(i + 37)
	for p := 0; p < particles; p++ {
		r = xorshift(r)
		w[p] = float64(r%1000) / 1000
	}
	reps := n/120 + 1
	for rep := 0; rep < reps; rep++ {
		var sum float64
		for p := 0; p < particles; p++ {
			err := w[p] - 0.5
			w[p] = math.Exp(-err * err * 4)
			sum += w[p]
		}
		for p := 0; p < particles; p++ {
			w[p] /= sum
		}
	}
	return digest(w[0]*1e3) ^ digest(w[particles-1]*1e3)
}

// kernelRaytrace intersects a ray with a sphere field (PARSEC raytrace and
// SPLASH raytrace).
func kernelRaytrace(i, n int) uint32 {
	r := uint32(i + 41)
	reps := n/56 + 1
	var hits uint32
	var depth float64
	for rep := 0; rep < reps; rep++ {
		r = xorshift(r)
		ox, oy := float64(r%100)/10, float64((r>>8)%100)/10
		dx, dy, dz := 0.3, 0.2, 1.0
		for s := 0; s < 4; s++ {
			cx, cy, cz := float64(5+s*3), float64(4+s*2), 20.0
			// |o + t d - c|^2 = r^2
			lx, ly, lz := cx-ox, cy-oy, cz
			tca := lx*dx + ly*dy + lz*dz
			d2 := lx*lx + ly*ly + lz*lz - tca*tca
			const rad2 = 9
			if d2 < rad2 {
				hits++
				depth += tca - math.Sqrt(rad2-d2)
			}
		}
	}
	return hits ^ digest(depth)
}

// kernelVolrend marches a ray through a procedural density volume (SPLASH
// volrend).
func kernelVolrend(i, n int) uint32 {
	r := uint32(i + 43)
	steps := n/24 + 8
	x := float64(r%64) / 8
	y := float64((r>>8)%64) / 8
	var acc, trans float64
	trans = 1
	for s := 0; s < steps; s++ {
		z := float64(s) / 4
		density := 0.5 + 0.5*math.Sin(x*0.7+z)*math.Cos(y*0.9-z*0.5)
		acc += trans * density
		trans *= 1 - density*0.1
		if trans < 1e-3 {
			break
		}
	}
	return digest(acc * 100)
}

// kernelConvolve applies a 3x3 convolution to an image tile (PARSEC vips /
// x264's filtering and SAD work).
func kernelConvolve(i, n int) uint32 {
	const dim = 10
	var img [dim][dim]int32
	r := uint32(i + 47)
	for a := 0; a < dim; a++ {
		for b := 0; b < dim; b++ {
			r = xorshift(r)
			img[a][b] = int32(r % 256)
		}
	}
	kern := [3][3]int32{{1, 2, 1}, {2, 4, 2}, {1, 2, 1}}
	reps := n/80 + 1
	var acc int32
	for rep := 0; rep < reps; rep++ {
		acc = 0
		for a := 1; a < dim-1; a++ {
			for b := 1; b < dim-1; b++ {
				var v int32
				for ka := 0; ka < 3; ka++ {
					for kb := 0; kb < 3; kb++ {
						v += kern[ka][kb] * img[a+ka-1][b+kb-1]
					}
				}
				acc += v >> 4
			}
		}
	}
	return uint32(acc)
}

// kernelFreqmine counts itemset intersections over bitsets (PARSEC
// freqmine's FP-growth counting).
func kernelFreqmine(i, n int) uint32 {
	r := uint32(i + 53)
	reps := n/40 + 1
	var support uint32
	for rep := 0; rep < reps; rep++ {
		r = xorshift(r)
		a := uint64(r) | uint64(xorshift(r))<<32
		r = xorshift(r)
		b := uint64(r) | uint64(xorshift(r))<<32
		x := a & b
		// popcount
		for x != 0 {
			x &= x - 1
			support++
		}
	}
	return support
}

// kernelFacesim relaxes a 1D spring-mass chain (PARSEC facesim's implicit
// solver flavor).
func kernelFacesim(i, n int) uint32 {
	const nodes = 16
	var pos, vel [nodes]float64
	r := uint32(i + 59)
	for k := 0; k < nodes; k++ {
		r = xorshift(r)
		pos[k] = float64(k) + float64(r%100)/1000
	}
	steps := n/112 + 1
	for s := 0; s < steps; s++ {
		for k := 1; k < nodes-1; k++ {
			force := (pos[k-1] - pos[k]) + (pos[k+1] - pos[k])
			vel[k] = 0.9*vel[k] + 0.1*force
		}
		for k := 1; k < nodes-1; k++ {
			pos[k] += vel[k] * 0.1
		}
	}
	return digest(pos[nodes/2] * 1e3)
}

// kernelRadiosity computes point-to-patch form factors (SPLASH radiosity).
func kernelRadiosity(i, n int) uint32 {
	r := uint32(i + 61)
	reps := n/36 + 1
	var ff float64
	for rep := 0; rep < reps; rep++ {
		r = xorshift(r)
		dist2 := 1 + float64(r%1000)/10
		cosA := float64(r%90+1) / 100
		cosB := float64((r>>8)%90+1) / 100
		area := 1 + float64((r>>16)%10)
		ff += cosA * cosB * area / (math.Pi * dist2)
	}
	return digest(ff * 1e3)
}
