package synclib

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/kernel"
)

// run executes prog under the MVEE with the given agent and variant count,
// failing the test on divergence or deadlock.
func run(t *testing.T, kind agent.Kind, variants int, prog core.Program) *core.Session {
	t.Helper()
	s := core.NewSession(core.Options{
		Variants: variants, Agent: kind, ASLR: true, Seed: 11, MaxThreads: 32,
	}, prog)
	done := make(chan *core.Result, 1)
	go func() { done <- s.Run() }()
	select {
	case res := <-done:
		if res.Divergence != nil {
			t.Fatalf("%s under %v: divergence: %v", prog.Name, kind, res.Divergence)
		}
	case <-time.After(60 * time.Second):
		s.Kill()
		t.Fatalf("%s under %v: deadlock", prog.Name, kind)
	}
	return s
}

// checkFile asserts the program wrote want into path.
func checkFile(t *testing.T, s *core.Session, path, want string) {
	t.Helper()
	got, ok := s.Kernel().ReadFile(path)
	if !ok || string(got) != want {
		t.Fatalf("%s = %q, want %q", path, got, want)
	}
}

// writeResult is the canonical way test programs export a value: through a
// monitored write, so cross-variant equality is checked by the monitor too.
func writeResult(t *core.Thread, path, val string) {
	fd := t.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly}, []byte(path)).Val
	t.Syscall(kernel.SysWrite, [6]uint64{fd}, []byte(val))
}

func agents() []agent.Kind {
	return []agent.Kind{agent.TotalOrder, agent.PartialOrder, agent.WallOfClocks}
}

func TestMutexMutualExclusion(t *testing.T) {
	for _, k := range agents() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			prog := core.Program{Name: "mutex", Main: func(th *core.Thread) {
				mu := NewMutex(th)
				n := 0
				hs := make([]*core.ThreadHandle, 4)
				for i := range hs {
					hs[i] = th.Spawn(func(tt *core.Thread) {
						for j := 0; j < 250; j++ {
							mu.Lock(tt)
							n++
							mu.Unlock(tt)
						}
					})
				}
				for _, h := range hs {
					h.Join()
				}
				writeResult(th, "/n", fmt.Sprintf("%d", n))
			}}
			s := run(t, k, 2, prog)
			checkFile(t, s, "/n", "1000")
		})
	}
}

func TestSpinLock(t *testing.T) {
	prog := core.Program{Name: "spin", Main: func(th *core.Thread) {
		sl := NewSpinLock(th)
		n := 0
		hs := make([]*core.ThreadHandle, 4)
		for i := range hs {
			hs[i] = th.Spawn(func(tt *core.Thread) {
				for j := 0; j < 100; j++ {
					sl.Lock(tt)
					n++
					sl.Unlock(tt)
				}
			})
		}
		for _, h := range hs {
			h.Join()
		}
		writeResult(th, "/n", fmt.Sprintf("%d", n))
	}}
	s := run(t, agent.WallOfClocks, 2, prog)
	checkFile(t, s, "/n", "400")
}

func TestTryLockOutcomesReplicated(t *testing.T) {
	// TryLock outcomes must be identical across variants: the payload of
	// the result write encodes the outcome pattern, and the monitor
	// compares payloads.
	prog := core.Program{Name: "trylock", Main: func(th *core.Thread) {
		mu := NewMutex(th)
		pattern := make([]byte, 0, 64)
		holder := th.Spawn(func(tt *core.Thread) {
			for i := 0; i < 32; i++ {
				mu.Lock(tt)
				busy(300)
				mu.Unlock(tt)
				tt.Yield()
			}
		})
		for i := 0; i < 64; i++ {
			if mu.TryLock(th) {
				pattern = append(pattern, '1')
				mu.Unlock(th)
			} else {
				pattern = append(pattern, '0')
			}
		}
		holder.Join()
		writeResult(th, "/pattern", string(pattern))
	}}
	run(t, agent.WallOfClocks, 2, prog)
}

func TestCondProducerConsumer(t *testing.T) {
	for _, k := range agents() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			prog := core.Program{Name: "cond", Main: func(th *core.Thread) {
				mu := NewMutex(th)
				cv := NewCond(th)
				queue := 0
				total := 0
				const items = 100
				cons := th.Spawn(func(tt *core.Thread) {
					got := 0
					for got < items {
						mu.Lock(tt)
						for queue == 0 {
							cv.Wait(tt, mu)
						}
						queue--
						got++
						mu.Unlock(tt)
					}
					mu.Lock(tt)
					total += got
					mu.Unlock(tt)
				})
				for i := 0; i < items; i++ {
					mu.Lock(th)
					queue++
					cv.Signal(th)
					mu.Unlock(th)
				}
				cons.Join()
				writeResult(th, "/total", fmt.Sprintf("%d", total))
			}}
			s := run(t, k, 2, prog)
			checkFile(t, s, "/total", "100")
		})
	}
}

func TestBarrierPhases(t *testing.T) {
	for _, k := range agents() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			const workers = 4
			const phases = 10
			prog := core.Program{Name: "barrier", Main: func(th *core.Thread) {
				bar := NewBarrier(th, workers)
				mu := NewMutex(th)
				// phaseSum[p] accumulates contributions; a barrier bug
				// (phase bleed) corrupts the per-phase sums.
				phaseSums := make([]int, phases)
				hs := make([]*core.ThreadHandle, workers)
				for i := 0; i < workers; i++ {
					hs[i] = th.Spawn(func(tt *core.Thread) {
						for p := 0; p < phases; p++ {
							mu.Lock(tt)
							phaseSums[p]++
							mu.Unlock(tt)
							bar.Wait(tt)
						}
					})
				}
				for _, h := range hs {
					h.Join()
				}
				for p := 0; p < phases; p++ {
					if phaseSums[p] != workers {
						writeResult(th, "/bad", fmt.Sprintf("phase %d = %d", p, phaseSums[p]))
						return
					}
				}
				writeResult(th, "/ok", "all phases complete")
			}}
			s := run(t, k, 2, prog)
			checkFile(t, s, "/ok", "all phases complete")
		})
	}
}

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	prog := core.Program{Name: "sem", Main: func(th *core.Thread) {
		sem := NewSemaphore(th, 2)
		mu := NewMutex(th)
		inside, maxInside := 0, 0
		hs := make([]*core.ThreadHandle, 6)
		for i := range hs {
			hs[i] = th.Spawn(func(tt *core.Thread) {
				for j := 0; j < 20; j++ {
					sem.Acquire(tt)
					mu.Lock(tt)
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					mu.Unlock(tt)
					busy(50)
					mu.Lock(tt)
					inside--
					mu.Unlock(tt)
					sem.Release(tt)
				}
			})
		}
		for _, h := range hs {
			h.Join()
		}
		if maxInside > 2 {
			writeResult(th, "/max", fmt.Sprintf("VIOLATION %d", maxInside))
		} else {
			writeResult(th, "/max", "bounded")
		}
	}}
	s := run(t, agent.WallOfClocks, 2, prog)
	checkFile(t, s, "/max", "bounded")
}

func TestRWMutexReadersDoNotExcludeEachOther(t *testing.T) {
	prog := core.Program{Name: "rwmutex", Main: func(th *core.Thread) {
		rw := NewRWMutex(th)
		mu := NewMutex(th)
		data := 0
		sum := 0
		hs := make([]*core.ThreadHandle, 4)
		for i := range hs {
			i := i
			hs[i] = th.Spawn(func(tt *core.Thread) {
				for j := 0; j < 50; j++ {
					if i == 0 { // one writer
						rw.Lock(tt)
						data++
						rw.Unlock(tt)
					} else { // readers
						rw.RLock(tt)
						v := data
						rw.RUnlock(tt)
						mu.Lock(tt)
						sum += v
						mu.Unlock(tt)
					}
				}
			})
		}
		for _, h := range hs {
			h.Join()
		}
		writeResult(th, "/final", fmt.Sprintf("%d", data))
	}}
	s := run(t, agent.WallOfClocks, 2, prog)
	checkFile(t, s, "/final", "50")
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	for _, k := range agents() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			prog := core.Program{Name: "once", Main: func(th *core.Thread) {
				once := NewOnce(th)
				mu := NewMutex(th)
				inits := 0
				hs := make([]*core.ThreadHandle, 4)
				for i := range hs {
					hs[i] = th.Spawn(func(tt *core.Thread) {
						once.Do(tt, func() {
							mu.Lock(tt)
							inits++
							mu.Unlock(tt)
						})
					})
				}
				for _, h := range hs {
					h.Join()
				}
				writeResult(th, "/inits", fmt.Sprintf("%d", inits))
			}}
			s := run(t, k, 2, prog)
			checkFile(t, s, "/inits", "1")
		})
	}
}

func TestWaitGroup(t *testing.T) {
	prog := core.Program{Name: "waitgroup", Main: func(th *core.Thread) {
		wg := NewWaitGroup(th)
		mu := NewMutex(th)
		done := 0
		wg.Add(th, 4)
		for i := 0; i < 4; i++ {
			th.Spawn(func(tt *core.Thread) {
				busy(100)
				mu.Lock(tt)
				done++
				mu.Unlock(tt)
				wg.Done(tt)
			})
		}
		wg.Wait(th)
		writeResult(th, "/done", fmt.Sprintf("%d", done))
	}}
	s := run(t, agent.WallOfClocks, 2, prog)
	checkFile(t, s, "/done", "4")
}

func TestThreeAndFourVariants(t *testing.T) {
	for _, variants := range []int{3, 4} {
		variants := variants
		t.Run(fmt.Sprintf("%d-variants", variants), func(t *testing.T) {
			prog := core.Program{Name: "nvariants", Main: func(th *core.Thread) {
				mu := NewMutex(th)
				n := 0
				hs := make([]*core.ThreadHandle, 4)
				for i := range hs {
					hs[i] = th.Spawn(func(tt *core.Thread) {
						for j := 0; j < 100; j++ {
							mu.Lock(tt)
							n++
							mu.Unlock(tt)
						}
					})
				}
				for _, h := range hs {
					h.Join()
				}
				writeResult(th, "/n", fmt.Sprintf("%d", n))
			}}
			s := run(t, agent.WallOfClocks, variants, prog)
			checkFile(t, s, "/n", "400")
		})
	}
}

// busy burns deterministic CPU work without syscalls or sync ops.
func busy(n int) int {
	x := 1
	for i := 0; i < n; i++ {
		x = x*1103515245 + 12345
		x &= 0x7fffffff
	}
	return x
}

func TestSemaphoreTryAcquire(t *testing.T) {
	prog := core.Program{Name: "try-sem", Main: func(th *core.Thread) {
		sem := NewSemaphore(th, 1)
		pattern := make([]byte, 0, 4)
		record := func(ok bool) {
			if ok {
				pattern = append(pattern, '1')
			} else {
				pattern = append(pattern, '0')
			}
		}
		record(sem.TryAcquire(th)) // 1: count 1 -> 0
		record(sem.TryAcquire(th)) // 0: empty
		sem.Release(th)
		record(sem.TryAcquire(th)) // 1 again
		writeResult(th, "/pattern", string(pattern))
	}}
	s := run(t, agent.WallOfClocks, 2, prog)
	checkFile(t, s, "/pattern", "101")
}

func TestMutexHandoffUnderHeavyContention(t *testing.T) {
	// 8 threads on one lock: the futex slow path (state 2, wake-all) gets
	// exercised constantly; totals and replay must hold.
	prog := core.Program{Name: "contended", Main: func(th *core.Thread) {
		mu := NewMutex(th)
		n := 0
		hs := make([]*core.ThreadHandle, 8)
		for i := range hs {
			hs[i] = th.Spawn(func(tt *core.Thread) {
				for j := 0; j < 100; j++ {
					mu.Lock(tt)
					n++
					busy(20) // hold briefly to force sleeps
					mu.Unlock(tt)
				}
			})
		}
		for _, h := range hs {
			h.Join()
		}
		writeResult(th, "/n", fmt.Sprintf("%d", n))
	}}
	s := run(t, agent.WallOfClocks, 2, prog)
	checkFile(t, s, "/n", "800")
}

func TestCondBroadcastReleasesAllWaiters(t *testing.T) {
	prog := core.Program{Name: "broadcast", Main: func(th *core.Thread) {
		mu := NewMutex(th)
		cv := NewCond(th)
		released := 0
		gate := false
		hs := make([]*core.ThreadHandle, 4)
		for i := range hs {
			hs[i] = th.Spawn(func(tt *core.Thread) {
				mu.Lock(tt)
				for !gate {
					cv.Wait(tt, mu)
				}
				released++
				mu.Unlock(tt)
			})
		}
		// Let the waiters park (they need the lock round-trip first).
		for i := 0; i < 50; i++ {
			th.Yield()
		}
		mu.Lock(th)
		gate = true
		cv.Broadcast(th)
		mu.Unlock(th)
		for _, h := range hs {
			h.Join()
		}
		writeResult(th, "/released", fmt.Sprintf("%d", released))
	}}
	s := run(t, agent.WallOfClocks, 2, prog)
	checkFile(t, s, "/released", "4")
}

func TestBarrierReusableManyPhases(t *testing.T) {
	// 50 phases on one barrier object: generation wrap-around handling.
	prog := core.Program{Name: "barrier-reuse", Main: func(th *core.Thread) {
		bar := NewBarrier(th, 3)
		mu := NewMutex(th)
		sum := 0
		hs := make([]*core.ThreadHandle, 3)
		for i := range hs {
			hs[i] = th.Spawn(func(tt *core.Thread) {
				for p := 0; p < 50; p++ {
					mu.Lock(tt)
					sum++
					mu.Unlock(tt)
					bar.Wait(tt)
				}
			})
		}
		for _, h := range hs {
			h.Join()
		}
		writeResult(th, "/sum", fmt.Sprintf("%d", sum))
	}}
	s := run(t, agent.TotalOrder, 2, prog)
	checkFile(t, s, "/sum", "150")
}
