// Package synclib is the instrumented synchronization library the MVEE
// workloads link against — the stand-in for the instrumented libpthread /
// libgomp / libstdc++ of §5.3. Every primitive is built exclusively from
// the instrumented sync ops on core.SyncVar (CAS / Load / Store / Add /
// Xchg), so every atomic access to a synchronization variable passes
// through the variant's synchronization agent, and blocking slow paths use
// the per-variant futex, mirroring glibc's lowlevellock design.
//
// Primitives provided: Mutex, SpinLock, TryLock support, RWMutex, Cond,
// Barrier, Semaphore, Once, and WaitGroup — the vocabulary PARSEC and
// SPLASH-2x programs actually use.
package synclib

import "repro/internal/core"

// Mutex is a futex-based mutual exclusion lock, shaped like glibc's
// lowlevellock: word states 0 (free), 1 (locked, no waiters),
// 2 (locked, possible waiters).
type Mutex struct {
	w *core.SyncVar
}

// NewMutex allocates a mutex in t's variant.
func NewMutex(t *core.Thread) *Mutex {
	return &Mutex{w: t.NewSyncVar()}
}

// Lock acquires m, blocking on the futex under contention. The slow path
// is Drepper's classic futex mutex: exchange in state 2 ("locked with
// possible waiters") until the previous state was 0.
func (m *Mutex) Lock(t *core.Thread) {
	if t.CAS(m.w, 0, 1) {
		t.NoteAcquire(m.w.Addr())
		return
	}
	for t.Xchg(m.w, 2) != 0 {
		t.FutexWait(m.w, 2)
	}
	t.NoteAcquire(m.w.Addr())
}

// TryLock attempts to acquire m without blocking; it reports success. The
// trylock covert channel PoC (§5.4) is built on the replication of exactly
// this operation's outcome.
func (m *Mutex) TryLock(t *core.Thread) bool {
	if t.CAS(m.w, 0, 1) {
		t.NoteAcquire(m.w.Addr())
		return true
	}
	return false
}

// Unlock releases m and wakes the waiters if contention was announced.
//
// All waiters are woken, not one. Under record/replay, a single wake can be
// consumed by a thread whose replay ticket is not yet due, leaving the
// thread whose ticket IS due asleep with no further wake coming — a replay
// deadlock. Waking everyone keeps the master semantically correct (every
// waiter re-runs the acquire protocol) and guarantees slave liveness: the
// due thread is always among the woken.
func (m *Mutex) Unlock(t *core.Thread) {
	t.NoteRelease(m.w.Addr())
	if t.Xchg(m.w, 0) == 2 {
		t.FutexWake(m.w, 1<<30)
	}
}

// SpinLock is the ad-hoc spinlock of Listing 1: CAS to acquire, plain
// (type (iii)) store to release, sched_yield in the spin loop.
type SpinLock struct {
	w *core.SyncVar
}

// NewSpinLock allocates a spinlock in t's variant.
func NewSpinLock(t *core.Thread) *SpinLock {
	return &SpinLock{w: t.NewSyncVar()}
}

// Lock spins until the lock is acquired.
func (s *SpinLock) Lock(t *core.Thread) {
	for !t.CAS(s.w, 0, 1) {
		t.Yield()
	}
}

// TryLock attempts one acquisition.
func (s *SpinLock) TryLock(t *core.Thread) bool {
	return t.CAS(s.w, 0, 1)
}

// Unlock releases the lock with the Listing 1 line 9 plain store.
func (s *SpinLock) Unlock(t *core.Thread) {
	t.Store(s.w, 0)
}

// Cond is a condition variable built on a sequence word, following the
// futex-based design of glibc: Wait snapshots the sequence, releases the
// mutex, and sleeps until the sequence moves.
type Cond struct {
	seq *core.SyncVar
}

// NewCond allocates a condition variable.
func NewCond(t *core.Thread) *Cond {
	return &Cond{seq: t.NewSyncVar()}
}

// Wait atomically releases m and blocks until a Signal/Broadcast, then
// reacquires m. Spurious wakeups are possible, as with pthreads; callers
// must re-check their predicate in a loop.
func (c *Cond) Wait(t *core.Thread, m *Mutex) {
	seq := t.Load(c.seq)
	m.Unlock(t)
	t.FutexWait(c.seq, seq)
	m.Lock(t)
}

// Signal wakes at least one waiter. At the futex level all sleepers are
// released (see Mutex.Unlock for why); pthreads permits spurious wakeups,
// so callers' predicate loops absorb the extra wakeups.
func (c *Cond) Signal(t *core.Thread) {
	t.Add(c.seq, 1)
	t.FutexWake(c.seq, 1<<30)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast(t *core.Thread) {
	t.Add(c.seq, 1)
	t.FutexWake(c.seq, 1<<30)
}

// Barrier blocks parties threads until all have arrived — the phase
// synchronization SPLASH-2x kernels are built around.
type Barrier struct {
	parties uint32
	count   *core.SyncVar
	gen     *core.SyncVar
}

// NewBarrier allocates a barrier for parties threads.
func NewBarrier(t *core.Thread, parties int) *Barrier {
	return &Barrier{
		parties: uint32(parties),
		count:   t.NewSyncVar(),
		gen:     t.NewSyncVar(),
	}
}

// Wait blocks until all parties have called Wait for the current phase.
func (b *Barrier) Wait(t *core.Thread) {
	gen := t.Load(b.gen)
	if t.Add(b.count, 1) == b.parties {
		// Last arriver: reset the count, advance the generation, wake.
		t.Store(b.count, 0)
		t.Add(b.gen, 1)
		t.FutexWake(b.gen, 1<<30)
		return
	}
	for t.Load(b.gen) == gen {
		t.FutexWait(b.gen, gen)
	}
}

// Semaphore is a counting semaphore (sem_t).
type Semaphore struct {
	v *core.SyncVar
}

// NewSemaphore allocates a semaphore with the given initial count.
func NewSemaphore(t *core.Thread, initial int) *Semaphore {
	s := &Semaphore{v: t.NewSyncVar()}
	if initial > 0 {
		t.Store(s.v, uint32(initial))
	}
	return s
}

// Acquire decrements the semaphore, blocking while it is zero.
func (s *Semaphore) Acquire(t *core.Thread) {
	for {
		c := t.Load(s.v)
		if c > 0 {
			if t.CAS(s.v, c, c-1) {
				return
			}
			continue
		}
		t.FutexWait(s.v, 0)
	}
}

// TryAcquire attempts one decrement without blocking.
func (s *Semaphore) TryAcquire(t *core.Thread) bool {
	c := t.Load(s.v)
	return c > 0 && t.CAS(s.v, c, c-1)
}

// Release increments the semaphore and wakes the waiters (all, for replay
// liveness; see Mutex.Unlock).
func (s *Semaphore) Release(t *core.Thread) {
	t.Add(s.v, 1)
	t.FutexWake(s.v, 1<<30)
}

// RWMutex is a writer-preference-free read-write lock built from a mutex
// and a reader count (the classic pthreads construction).
type RWMutex struct {
	m       *Mutex
	readers *core.SyncVar
	rzero   *core.SyncVar // kicked when the last reader leaves
}

// NewRWMutex allocates a read-write lock.
func NewRWMutex(t *core.Thread) *RWMutex {
	return &RWMutex{m: NewMutex(t), readers: t.NewSyncVar(), rzero: t.NewSyncVar()}
}

// RLock acquires the lock for reading.
func (rw *RWMutex) RLock(t *core.Thread) {
	rw.m.Lock(t)
	t.Add(rw.readers, 1)
	rw.m.Unlock(t)
	// A reader "holds" rzero in wait-for terms: writers sleep on rzero
	// until the last reader leaves, so the read side is what a blocked
	// writer depends on (and a reader upgrading in place depends on
	// itself — the classic self-deadlock).
	t.NoteAcquire(rw.rzero.Addr())
}

// RUnlock releases a read acquisition.
func (rw *RWMutex) RUnlock(t *core.Thread) {
	t.NoteRelease(rw.rzero.Addr())
	if t.Add(rw.readers, ^uint32(0)) == 0 { // decrement
		t.Add(rw.rzero, 1)
		t.FutexWake(rw.rzero, 1<<30)
	}
}

// Lock acquires the lock for writing: takes the mutex (excluding new
// readers) and waits for in-flight readers to drain.
func (rw *RWMutex) Lock(t *core.Thread) {
	rw.m.Lock(t)
	for t.Load(rw.readers) != 0 {
		z := t.Load(rw.rzero)
		if t.Load(rw.readers) == 0 {
			break
		}
		t.FutexWait(rw.rzero, z)
	}
}

// Unlock releases a write acquisition.
func (rw *RWMutex) Unlock(t *core.Thread) {
	rw.m.Unlock(t)
}

// Once runs a function exactly once across the variant's threads
// (pthread_once).
type Once struct {
	state *core.SyncVar // 0 new, 1 running, 2 done
}

// NewOnce allocates a Once.
func NewOnce(t *core.Thread) *Once {
	return &Once{state: t.NewSyncVar()}
}

// Do runs fn if no other thread has; otherwise it waits for completion.
func (o *Once) Do(t *core.Thread, fn func()) {
	if t.Load(o.state) == 2 {
		return
	}
	if t.CAS(o.state, 0, 1) {
		// The winner owns the Once until completion: threads that lose the
		// race sleep on state, so a winner that re-enters Do (or never
		// finishes fn) is a holder in the wait-for graph.
		t.NoteAcquire(o.state.Addr())
		fn()
		t.NoteRelease(o.state.Addr())
		t.Store(o.state, 2)
		t.FutexWake(o.state, 1<<30)
		return
	}
	for t.Load(o.state) != 2 {
		t.FutexWait(o.state, 1)
	}
}

// WaitGroup counts outstanding work (the join side of fork/join loops).
type WaitGroup struct {
	n *core.SyncVar
}

// NewWaitGroup allocates a WaitGroup.
func NewWaitGroup(t *core.Thread) *WaitGroup {
	return &WaitGroup{n: t.NewSyncVar()}
}

// Add increments the counter by delta.
func (wg *WaitGroup) Add(t *core.Thread, delta int) {
	t.Add(wg.n, uint32(delta))
}

// Done decrements the counter, waking waiters at zero.
func (wg *WaitGroup) Done(t *core.Thread) {
	if t.Add(wg.n, ^uint32(0)) == 0 {
		t.FutexWake(wg.n, 1<<30)
	}
}

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait(t *core.Thread) {
	for {
		c := t.Load(wg.n)
		if c == 0 {
			return
		}
		t.FutexWait(wg.n, c)
	}
}
