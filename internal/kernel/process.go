package kernel

import "sync"

// Process lifecycle (DESIGN.md §2.5). Each variant's root Proc anchors a
// tree of forked processes sharing one pid namespace and one thread-id
// space. Both are allocated inside the monitor's ORDERED sections (fork is
// an ordered syscall), which is what makes pids and tids deterministic:
// every variant executes its ordered calls in the same total order, so the
// i-th fork of every variant draws the same pid and the same initial tid.
//
// Tree state (parent/children links, zombie status, the pid map) is
// guarded by the kernel-wide treeMu: process events are orders of
// magnitude rarer than I/O, so one lock for all trees is simpler than
// per-tree locks and cannot deadlock against the per-object locks (no
// kernel path acquires treeMu while holding a pipe or proc lock).

// Proc states.
const (
	procRunning = iota
	// procZombie: the process exited (its status is retained) but the
	// parent has not reaped it yet.
	procZombie
	// procReaped: waitpid consumed the zombie; the pid is gone from the
	// namespace and kill/waitpid on it return ESRCH/ECHILD.
	procReaped
)

// pidNamespace is one variant tree's pid allocator and lookup table. The
// root process is pid 1; children take 2, 3, … in fork order, which the
// ordered fork syscall makes identical across variants.
type pidNamespace struct {
	nextVpid int
	byVpid   map[int]*Proc
}

// tidSpace is one variant tree's thread-id allocator, shared by every
// process of the tree so the monitor's per-tid syscall rings stay unique
// across processes. Clone draws the spawning thread's tid from it; fork
// draws the child's initial tid. Both happen inside ordered sections.
type tidSpace struct {
	mu   sync.Mutex
	next int
}

func (ts *tidSpace) take() int {
	tid, _ := ts.takeLimited(0)
	return tid
}

// takeLimited allocates the next tid unless limit is nonzero and the space
// is exhausted (tids are never recycled — the monitor's per-tid rings are
// sized MaxThreads, which is the limit callers pass). Exhaustion is itself
// deterministic: allocation happens inside ordered sections, so the same
// clone of every variant is the one that fails.
func (ts *tidSpace) takeLimited(limit int) (int, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if limit > 0 && ts.next >= limit {
		return 0, false
	}
	tid := ts.next
	ts.next++
	return tid, true
}

// Parent returns the pid of p's parent process, or 0 for a root process.
func (p *Proc) Parent() int {
	if p.parent == nil {
		return 0
	}
	return p.parent.vpid
}

// Child resolves a pid in p's namespace to the live child process — the
// handle the core layer needs to run the forked child's threads against.
// Returns nil if the pid is unknown or already reaped.
func (p *Proc) Child(pid int) *Proc {
	kern := p.kern
	if kern == nil {
		return nil
	}
	kern.treeMu.Lock()
	defer kern.treeMu.Unlock()
	c := p.ns.byVpid[pid]
	if c == nil || c.state != procRunning {
		return nil
	}
	return c
}

// doFork implements SysFork: create a child process under a fresh
// deterministic pid, sharing the parent's open file descriptions (Linux
// fork semantics: the child's descriptors reference the SAME descriptions,
// so offsets, flags, and — crucially for prefork servers — the listening
// socket are shared; the object is released when the last descriptor
// across both processes closes). The child inherits the parent's blocked
// mask and dispositions with an empty pending set, and its own address
// space at the parent's diversified bases (fork does not re-randomize).
//
// Val is the child's pid, Val2 the child's initial thread id (drawn from
// the tree-wide tid space, inside this ordered call, so it matches across
// variants). The caller (core.Thread.Fork) looks the child Proc up via
// Proc.Child and launches its main vthread.
func (k *Kernel) doFork(parent *Proc) Ret {
	k.procMu.Lock()
	ipid := k.nextPid
	k.nextPid++
	k.procMu.Unlock()

	child := NewProc(ipid, NewAddressSpace(parent.AS.brkBase, parent.AS.mmapBase))
	child.kern = k
	child.tids = parent.tids
	// The detector covers the whole master tree: a forked child's threads
	// park at the same instrumented sites, on the same board.
	child.board = parent.board

	k.treeMu.Lock()
	child.ns = parent.ns
	child.vpid = parent.ns.nextVpid
	parent.ns.nextVpid++
	parent.ns.byVpid[child.vpid] = child
	child.parent = parent
	parent.children = append(parent.children, child)
	k.treeMu.Unlock()

	// Inherit the signal table: mask and dispositions copy, pending does
	// not (Linux fork semantics).
	parent.sigMu.Lock()
	child.sigBlocked.Store(parent.sigBlocked.Load())
	child.sigDisp = parent.sigDisp
	child.sigIgnored.Store(parent.sigIgnored.Load())
	parent.sigMu.Unlock()

	// Share the descriptor table: same descriptions, one more reference
	// each. The child is not yet visible to any other goroutine, so only
	// the parent's table needs its lock.
	parent.mu.Lock()
	for fd := 3; fd < len(parent.fdt.slots); fd++ {
		e := parent.fdt.get(fd)
		if e == nil {
			continue
		}
		e.refs.Add(1)
		child.fdt.install(fd, e)
	}
	parent.mu.Unlock()

	k.procMu.Lock()
	k.procs[ipid] = child
	k.procMu.Unlock()

	tid := parent.tids.take()
	return Ret{Val: uint64(child.vpid), Val2: uint64(tid)}
}

// doClone implements SysClone: allocate the new thread's tid from the
// tree-wide space and count the thread against the calling process. Both
// happen inside the monitor's ordered critical section, so corresponding
// threads get identical tids in every variant. Args[0] (optional, 0 = no
// limit) caps the tid space at the session's MaxThreads: exhaustion returns
// EAGAIN instead of allocating a tid the monitor has no ring for, and —
// because the failing clone occupies the same position in every variant's
// ordered stream — the degradation is identical across variants.
func (k *Kernel) doClone(p *Proc, c Call) Ret {
	tid, ok := p.tids.takeLimited(int(c.Args[0]))
	if !ok {
		return Ret{Err: EAGAIN}
	}
	k.treeMu.Lock()
	p.threads++
	k.treeMu.Unlock()
	return Ret{Val: uint64(tid)}
}

// doExit implements SysExit for a process — in two phases now that forked
// processes can be multi-threaded. The FIRST exiting thread raises the
// exit-group flag, records the status, and kicks every blocking site its
// siblings could be parked in: each sibling observes SigExitGroup at its
// next syscall boundary (or EINTRs out of a blocked op and then observes
// it) and unwinds through SysThreadExit. The LAST thread out — whichever
// of SysExit/SysThreadExit drops the live count to zero — performs the
// actual teardown (finishExit): descriptors close, the process turns
// zombie, SIGCHLD posts. Exit is idempotent: a call on a dead process is a
// no-op, and a second thread calling SysExit while the group is already
// exiting just retires itself.
func (k *Kernel) doExit(p *Proc, c Call) Ret {
	k.treeMu.Lock()
	if p.state != procRunning {
		k.treeMu.Unlock()
		return Ret{}
	}
	first := !p.exitGroup.Load()
	if first {
		p.exitGroup.Store(true)
		p.status = int(c.Args[0])
	}
	p.threads--
	last := p.threads <= 0
	k.treeMu.Unlock()

	if first && !last {
		// Interrupt siblings parked in blocking kernel ops so the
		// exit-group reaches them: they wake, their op returns EINTR, and
		// the boundary hands them SigExitGroup.
		k.signalKick(p)
	}
	if last {
		k.finishExit(p)
	}
	return Ret{}
}

// doThreadExit implements SysThreadExit: retire one thread. If the process
// is mid exit-group and this was the last live thread, complete the zombie
// transition.
func (k *Kernel) doThreadExit(p *Proc) Ret {
	k.treeMu.Lock()
	if p.state != procRunning {
		k.treeMu.Unlock()
		return Ret{}
	}
	p.threads--
	last := p.threads <= 0 && p.exitGroup.Load()
	k.treeMu.Unlock()
	if last {
		k.finishExit(p)
	}
	return Ret{}
}

// finishExit is the second phase of process exit, run by the last thread
// out: close every descriptor (shared descriptions decrement; the last
// reference releases the object, so a worker's exit never closes the
// listener its siblings still accept on), turn the process into a zombie
// carrying the recorded status, post SIGCHLD to the parent, and wake
// waiters. A process with no parent (the root, or an orphan) is reaped
// immediately — there is nobody to wait for it.
func (k *Kernel) finishExit(p *Proc) {
	k.treeMu.Lock()
	if p.state != procRunning {
		k.treeMu.Unlock()
		return
	}
	p.state = procZombie
	k.treeMu.Unlock()

	// Close descriptors outside treeMu (closing may release pipes, which
	// takes object locks).
	p.closeAllFDs()

	k.treeMu.Lock()
	// Orphan the children: init-style, their own exits self-reap.
	for _, c := range p.children {
		c.parent = nil
		if c.state == procZombie {
			k.reapLocked(c)
		}
	}
	p.children = p.children[:0]
	parent := p.parent
	if parent == nil || p.autoReap {
		k.reapLocked(p)
	}
	k.treeWake()
	k.treeMu.Unlock()

	if parent != nil {
		if parent.sendSignal(SIGCHLD) {
			// Only worth a kick if SIGCHLD is actually deliverable (a
			// handler is registered); the default disposition ignores it
			// and the treeCond broadcast above already wakes waitpid.
			if parent.signalPending() {
				k.signalKick(parent)
			}
		}
	}
}

// closeAllFDs releases every live descriptor of p (process exit).
func (p *Proc) closeAllFDs() {
	for fd := 3; fd < maxFDs; fd++ {
		p.closeFD(fd)
	}
}

// reapLocked erases a zombie from the namespace and the kernel's process
// table. Callers hold k.treeMu.
func (k *Kernel) reapLocked(z *Proc) {
	z.state = procReaped
	delete(z.ns.byVpid, z.vpid)
	if z.parent != nil {
		sibs := z.parent.children
		for i, c := range sibs {
			if c == z {
				sibs[i] = sibs[len(sibs)-1]
				z.parent.children = sibs[:len(sibs)-1]
				break
			}
		}
		z.parent = nil
	}
	k.procMu.Lock()
	delete(k.procs, z.Pid)
	k.procMu.Unlock()
}

// doWaitpid implements SysWaitpid: block until the selected child (Args[0];
// WaitAny for any) is a zombie, reap it, and return its pid (Val) and exit
// status (Val2). ECHILD when no matching child exists; EINTR when a
// deliverable signal arrives while blocked; EINTR also on session teardown
// (the caller's retry hits the monitor's kill check and unwinds).
//
// Only the master executes waitpid (it is a blocking replicated call); the
// slaves apply the master's reap through ApplySlaveWait so their process
// trees march in step.
func (k *Kernel) doWaitpid(p *Proc, c Call) Ret {
	sel := c.Args[0]
	k.treeMu.Lock()
	defer k.treeMu.Unlock()
	for {
		matched := false
		for _, child := range p.children {
			if sel != WaitAny && child.vpid != int(sel) {
				continue
			}
			matched = true
			if child.state == procZombie {
				pid, status := child.vpid, child.status
				k.reapLocked(child)
				return Ret{Val: uint64(pid), Val2: uint64(status)}
			}
		}
		if !matched {
			return Ret{Err: ECHILD}
		}
		if p.interrupted() {
			return Ret{Err: EINTR}
		}
		// Session teardown also surfaces as EINTR: the caller's retry hits
		// the monitor's kill check. (stopped takes intMu under treeMu;
		// safe, since nothing acquires treeMu while holding intMu.)
		if k.stopped() {
			return Ret{Err: EINTR}
		}
		if p.board != nil {
			// Register the deadlock cell under treeMu — the same lock
			// treeWake bumps the sequence under, so the sampled sequence
			// and the park are atomic with respect to wakes.
			p.board.park(cell{
				site: BlockedSite{Tid: c.Tid, Kind: BlockWaitpid, Addr: sel},
				seqw: &k.treeSeq, seq: k.treeSeq.Load(),
			})
			k.treeCond.Wait()
			p.board.unpark(c.Tid)
		} else {
			k.treeCond.Wait()
		}
	}
}

// ApplySlaveWait applies the master's waitpid result to a slave's process
// tree: reap child pid if it is already a zombie locally, or mark it for
// self-reaping at its exit. The marking handles the cross-ring skew the
// replication protocol allows — the slave's parent thread can consume the
// waitpid record before the slave's child thread has executed its own
// (per-variant) exit. The monitor calls this on every successfully
// replicated waitpid.
func (k *Kernel) ApplySlaveWait(p *Proc, pid int) {
	k.treeMu.Lock()
	defer k.treeMu.Unlock()
	child := p.ns.byVpid[pid]
	if child == nil {
		return
	}
	if child.state == procZombie {
		k.reapLocked(child)
		return
	}
	child.autoReap = true
}

// Zombies reports how many unreaped zombies p currently has (for tests).
func (p *Proc) Zombies() int {
	p.kern.treeMu.Lock()
	defer p.kern.treeMu.Unlock()
	n := 0
	for _, c := range p.children {
		if c.state == procZombie {
			n++
		}
	}
	return n
}

// Children reports how many live or zombie children p has (for tests).
func (p *Proc) Children() int {
	p.kern.treeMu.Lock()
	defer p.kern.treeMu.Unlock()
	return len(p.children)
}
