package kernel

import "time"

// Fault injection: the kernel-side half of the chaos plane (DESIGN.md §8).
// The kernel owns every descriptor and every blocking call, so faults that a
// real-kernel MVEE could only observe non-deterministically — a slow NIC, a
// reset connection, a short read — can be injected here as decisions made
// exactly once, in the master's execution of a replicated call. The decision
// rides the replicated Record (Ret.Inj), so every variant observes the
// identical fault and lockstep never breaks.
//
// The kernel deliberately knows nothing about plans, rates, or seeds: it
// defines the FaultOp/FaultDecision vocabulary and asks an installed
// FaultInjector (internal/chaos implements one) to decide. With no injector
// installed the cost is a single nil check in Do.

// FaultTarget classifies the object a fault-eligible call is about to touch,
// the vocabulary fault plans select on (target=pipe, target=listener:80, …).
type FaultTarget uint8

const (
	// FaultNone marks a call that is not fault-eligible.
	FaultNone FaultTarget = iota
	// FaultPipe: reads/writes on pipe descriptors from pipe2.
	FaultPipe
	// FaultSocket: reads/writes/recv/send on connected sockets.
	FaultSocket
	// FaultListener: accepts on listening sockets (Port carries the bound
	// port, so plans can single out listener:80).
	FaultListener
	// FaultPoll: poll calls. Poll watches many descriptors at once, so it
	// gets its own class instead of inheriting one fd's.
	FaultPoll
	// FaultSleep: nanosleep. Only added latency is meaningful here.
	FaultSleep
)

var faultTargetNames = map[FaultTarget]string{
	FaultNone: "none", FaultPipe: "pipe", FaultSocket: "socket",
	FaultListener: "listener", FaultPoll: "poll", FaultSleep: "sleep",
}

// String implements fmt.Stringer.
func (t FaultTarget) String() string {
	if n, ok := faultTargetNames[t]; ok {
		return n
	}
	return "target?"
}

// FaultOp describes one fault-eligible syscall about to execute: what call,
// against what kind of object, and (for listeners) on which port.
type FaultOp struct {
	Nr   Sysno
	Kind FaultTarget
	Port uint16 // listener port; 0 when the object has none
	Len  int    // payload length for writes/sends, 0 otherwise
}

// FaultDecision is an injector's verdict for one FaultOp. The zero value
// means "no fault". Fields compose: a call can be delayed AND then fail.
type FaultDecision struct {
	// Delay is added latency, slept interruptibly (a deliverable signal or
	// session teardown still EINTRs the call) before anything else happens.
	Delay time.Duration
	// Err, when non-zero, fails the call with this errno without executing
	// it (EIO, ECONNRESET, EAGAIN, …).
	Err Errno
	// Timeout forces timeout semantics: poll returns no ready descriptors
	// as if its timeout expired; blocking reads/recvs/accepts return
	// EAGAIN as if the object were non-blocking and idle.
	Timeout bool
	// Short truncates the transfer: reads ask the object for at most half
	// the requested count, writes submit at most half the payload. The
	// guest sees a legitimate short transfer — no bytes are lost from the
	// stream.
	Short bool
}

// FaultInjector decides faults for eligible calls. Implementations must be
// safe for concurrent use and deterministic for a deterministic call
// sequence (internal/chaos uses a seeded counter PRNG). Decide returns
// ok=false for "execute normally".
type FaultInjector interface {
	Decide(op FaultOp) (d FaultDecision, ok bool)
}

// Injection markers carried in Ret.Inj, a bitmask of the fault classes that
// fired on the call. They travel in the replicated record (and in captured
// traces, wire format v4) so slaves and replays observe the master's faults
// bit-for-bit, and so telemetry can count injections without guessing.
const (
	InjLatency uint8 = 1 << 0 // added latency was injected
	InjError   uint8 = 1 << 1 // the errno was injected, not earned
	InjTimeout uint8 = 1 << 2 // timeout semantics were forced
	InjShort   uint8 = 1 << 3 // the transfer was truncated
)

// SetInjector installs a fault injector. Install before the kernel serves
// calls (session construction); a nil injector disables injection.
func (k *Kernel) SetInjector(fi FaultInjector) { k.injector = fi }

// faultOp classifies a call for injection. Only replicated calls that the
// master alone executes are eligible — injecting a per-variant call (mmap,
// fork, kill) would draw from the PRNG once per variant and diverge the
// decision sequence. Descriptor lookups here are advisory: on any lookup
// miss the call is declared ineligible and the normal path reports the
// error.
func (k *Kernel) faultOp(p *Proc, c Call) (FaultOp, bool) {
	switch c.Nr {
	case SysRead, SysWrite, SysRecv, SysSend, SysAccept:
		ref, errno := p.lookupFD(int(c.Args[0]))
		if errno != OK {
			return FaultOp{}, false
		}
		op := FaultOp{Nr: c.Nr, Len: len(c.Data)}
		switch o := ref.obj.(type) {
		case *listener:
			op.Kind, op.Port = FaultListener, o.port
		case *socketObj:
			op.Kind = FaultSocket
		case *readEnd, *writeEnd:
			op.Kind = FaultPipe
		default:
			// Files never block and never fail transiently; leave them out.
			return FaultOp{}, false
		}
		return op, true
	case SysPoll:
		return FaultOp{Nr: c.Nr, Kind: FaultPoll}, true
	case SysNanosleep:
		return FaultOp{Nr: c.Nr, Kind: FaultSleep}, true
	}
	return FaultOp{}, false
}

// injectedDo is Do's slow path when an injector is installed: classify,
// decide, apply. Latency first (interruptibly), then injected errors, then
// forced timeouts; short transfers shrink the request before the real
// dispatch runs, so the byte stream stays intact.
func (k *Kernel) injectedDo(p *Proc, c Call) Ret {
	op, ok := k.faultOp(p, c)
	if !ok {
		return k.dispatch(p, c)
	}
	d, ok := k.injector.Decide(op)
	if !ok {
		return k.dispatch(p, c)
	}
	// Not every fault class makes sense everywhere: a sleep can only be
	// stretched (nanosleep has no errno for EIO, and "timing out" a sleep
	// is just a shorter sleep), and a poll can be delayed or forced to
	// expire but not fail with an I/O errno. Scrub the decision rather
	// than asking every plan to carve out targets.
	switch op.Kind {
	case FaultSleep:
		d = FaultDecision{Delay: d.Delay}
	case FaultPoll:
		d.Err, d.Short = OK, false
	}
	if d == (FaultDecision{}) {
		return k.dispatch(p, c)
	}
	var inj uint8
	if d.Delay > 0 {
		inj |= InjLatency
		if errno := k.sleepFor(p, d.Delay); errno != OK {
			// The injected delay was interrupted: the call reports EINTR at
			// its boundary exactly like an interrupted sleep, so signal
			// delivery semantics survive injection.
			return Ret{Err: errno, Inj: inj}
		}
	}
	if d.Err != OK {
		return Ret{Err: d.Err, Inj: inj | InjError}
	}
	if d.Timeout {
		inj |= InjTimeout
		if c.Nr == SysPoll {
			if n := int(c.Args[0]); n < 0 || n > maxFDs || n*PollFDSize != len(c.Data) {
				return k.dispatch(p, c) // malformed polls keep their EINVAL
			}
			// As-if-expired: every revents field zero. Mirrors doPoll's
			// timeout return shape (a scrubbed copy of the pollfd array).
			out := make([]byte, len(c.Data))
			copy(out, c.Data)
			for i := 0; i+PollFDSize <= len(out); i += PollFDSize {
				out[i+6], out[i+7] = 0, 0
			}
			return Ret{Data: out, Inj: inj}
		}
		return Ret{Err: EAGAIN, Inj: inj}
	}
	if d.Short {
		switch c.Nr {
		case SysRead, SysRecv:
			if c.Args[1] > 1 {
				c.Args[1] = (c.Args[1] + 1) / 2
				inj |= InjShort
			}
		case SysWrite, SysSend:
			if len(c.Data) > 1 {
				c.Data = c.Data[:(len(c.Data)+1)/2]
				inj |= InjShort
			}
		}
	}
	r := k.dispatch(p, c)
	r.Inj |= inj
	return r
}

// sleepFor waits for d on the kernel clock, interruptibly: a deliverable
// signal or session teardown ends the wait with EINTR. It is the single
// deadline loop behind both nanosleep and injected latency, running the
// parker's FUTEX_WAIT protocol (announce, re-check, park with a one-shot
// clock timer).
func (k *Kernel) sleepFor(p *Proc, d time.Duration) Errno {
	deadline := k.clock.Now().Add(d)
	for {
		if p.signalPending() {
			return EINTR
		}
		if k.stopped() {
			return EINTR
		}
		remaining := deadline.Sub(k.clock.Now())
		if remaining <= 0 {
			return OK
		}
		g := p.sigPark.Prepare()
		if p.signalPending() || k.stopped() || !k.clock.Now().Before(deadline) {
			p.sigPark.Cancel()
			continue
		}
		tm := k.clock.AfterFunc(remaining, p.sigPark.Wake)
		p.sigPark.Park(g)
		tm.Stop()
	}
}
