package kernel

import (
	"testing"
	"time"
)

// Linux dup(2) semantics: both descriptors refer to ONE open file
// description, so the offset moved through either is observed by the
// other. (The pre-refactor table gave every descriptor a private offset —
// a documented carve-out this test deletes.)
func TestDupSharesOffset(t *testing.T) {
	k := New()
	p := newTestProc(k)
	k.WriteFile("/f", []byte("abcdefgh"))
	fd := k.Do(p, openCall("/f", ORdwr)).Val
	dup := k.Do(p, Call{Nr: SysDup, Args: [6]uint64{fd}}).Val

	// A read through the original moves the offset the dup sees.
	if r := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{fd, 2}}); string(r.Data) != "ab" {
		t.Fatalf("read via fd: %q", r.Data)
	}
	if r := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{dup, 2}}); string(r.Data) != "cd" {
		t.Fatalf("read via dup = %q, want %q (offset must be shared)", r.Data, "cd")
	}
	// An lseek through the dup moves the offset the original sees.
	if r := k.Do(p, Call{Nr: SysLseek, Args: [6]uint64{dup, 6, SeekSet}}); !r.Ok() || r.Val != 6 {
		t.Fatalf("lseek via dup: %+v", r)
	}
	if r := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{fd, 2}}); string(r.Data) != "gh" {
		t.Fatalf("read via fd after dup's lseek = %q, want %q", r.Data, "gh")
	}
	// Closing one descriptor must not invalidate the shared description.
	k.Do(p, Call{Nr: SysClose, Args: [6]uint64{fd}})
	if r := k.Do(p, Call{Nr: SysLseek, Args: [6]uint64{dup, 0, SeekSet}}); !r.Ok() {
		t.Fatalf("lseek after closing sibling: %v", r.Err)
	}
	if r := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{dup, 8}}); string(r.Data) != "abcdefgh" {
		t.Fatalf("read after closing sibling: %q", r.Data)
	}
	k.Do(p, Call{Nr: SysClose, Args: [6]uint64{dup}})
	if n := p.OpenFDs(); n != 0 {
		t.Fatalf("%d descriptors left open", n)
	}
}

// fillFDs opens files until the table reports EMFILE, returning the fds.
func fillFDs(t *testing.T, k *Kernel, p *Proc) []uint64 {
	t.Helper()
	var fds []uint64
	for {
		r := k.Do(p, openCall("/filler", OCreat|ORdwr))
		if r.Err == EMFILE {
			return fds
		}
		if !r.Ok() {
			t.Fatalf("open: %v", r.Err)
		}
		fds = append(fds, r.Val)
	}
}

// Regression for the dupFD refcount leak: dup used to bump the shared
// object's reference count BEFORE scanning for a free slot, so an EMFILE
// failure left a pooled socket endpoint with a phantom descriptor
// reference — its last real close never reached zero and the connection
// (and its pipes) stayed pinned forever. The observable contract: after a
// failed dup, closing the one real descriptor must still tear the
// connection down (the server sees EOF).
func TestDupEMFILEDoesNotLeakReference(t *testing.T) {
	k := New()
	stop := startEchoServer(t, k, 87)
	defer stop()
	p := k.NewProc(0x3000_0000, 0x7200_0000)
	sfd := k.Do(p, Call{Nr: SysSocket})
	if r := k.Do(p, Call{Nr: SysConnect, Args: [6]uint64{sfd.Val, 87}}); !r.Ok() {
		t.Fatalf("connect: %v", r.Err)
	}
	// Exhaust the descriptor table, then fail the dup.
	fillers := fillFDs(t, k, p)
	if r := k.Do(p, Call{Nr: SysDup, Args: [6]uint64{sfd.Val}}); r.Err != EMFILE {
		t.Fatalf("dup on a full table: %v, want EMFILE", r.Err)
	}
	// The failed dup must not have added a reference: this close is the
	// last one, so the server's recv must see EOF promptly. With the leak,
	// the endpoint kept a phantom ref and the server hung in recv until
	// the suite timed out.
	if r := k.Do(p, Call{Nr: SysClose, Args: [6]uint64{sfd.Val}}); !r.Ok() {
		t.Fatalf("close: %v", r.Err)
	}
	for _, fd := range fillers {
		k.Do(p, Call{Nr: SysClose, Args: [6]uint64{fd}})
	}
	done := make(chan struct{})
	go func() {
		stop() // joins the echo server; hangs if the connection leaked
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("echo server wedged: the failed dup leaked a descriptor reference")
	}
}

// trackedBlockables reports how many objects the kernel's interrupt list
// currently pins (test helper; the list is the leak surface for failed
// syscalls that built blockable objects).
func trackedBlockables(k *Kernel) int {
	k.intMu.Lock()
	defer k.intMu.Unlock()
	return len(k.blockables)
}

// A pipe2 that fails with EMFILE must not pin its pipe on the interrupt
// list: a process stuck at the fd limit would otherwise leak one pipe
// (64 KiB buffer included) per failed call — both when no descriptor fits
// and when only the read end fit.
func TestPipe2EMFILEDoesNotPinInterruptList(t *testing.T) {
	k := New()
	p := newTestProc(k)
	fillFDs(t, k, p)
	before := trackedBlockables(k)
	// Zero slots free: the read-end alloc fails.
	if r := k.Do(p, Call{Nr: SysPipe2}); r.Err != EMFILE {
		t.Fatalf("pipe2 on a full table: %v, want EMFILE", r.Err)
	}
	if got := trackedBlockables(k); got != before {
		t.Fatalf("failed pipe2 pinned %d object(s) on the interrupt list", got-before)
	}
	// Exactly one slot free: the read end installs, the write end fails.
	if r := k.Do(p, Call{Nr: SysClose, Args: [6]uint64{3}}); !r.Ok() {
		t.Fatalf("close: %v", r.Err)
	}
	if r := k.Do(p, Call{Nr: SysPipe2}); r.Err != EMFILE {
		t.Fatalf("pipe2 with one free slot: %v, want EMFILE", r.Err)
	}
	if got := trackedBlockables(k); got != before {
		t.Fatalf("partially-failed pipe2 pinned %d object(s) on the interrupt list", got-before)
	}
	if n := p.OpenFDs(); n != maxFDs-3-1 {
		t.Fatalf("descriptor count %d after failed pipe2, want %d", n, maxFDs-3-1)
	}
}

// After EMFILE, closing a descriptor must make alloc succeed again at the
// freed (lowest) slot — the bitmap scan end to end.
func TestFDTableRefillsAfterEMFILE(t *testing.T) {
	k := New()
	p := newTestProc(k)
	fds := fillFDs(t, k, p)
	if len(fds) != maxFDs-3 {
		t.Fatalf("table filled at %d fds, want %d", len(fds), maxFDs-3)
	}
	victim := fds[len(fds)/2]
	k.Do(p, Call{Nr: SysClose, Args: [6]uint64{victim}})
	r := k.Do(p, openCall("/refill", OCreat|ORdwr))
	if !r.Ok() || r.Val != victim {
		t.Fatalf("reopen after close: fd=%d err=%v, want lowest-free %d", r.Val, r.Err, victim)
	}
}

// A descriptor snapshot taken before a close must read as stale once the
// close retires the object — the guard that keeps a reader racing a
// sibling thread's close(2) from following a pooled socket endpoint into
// its next connection (the header-generation half of the fd contract).
func TestStaleSnapshotDetectedAfterClose(t *testing.T) {
	k := New()
	stop := startEchoServer(t, k, 89)
	defer stop()
	p := k.NewProc(0x3000_0000, 0x7200_0000)
	sfd := k.Do(p, Call{Nr: SysSocket})
	if r := k.Do(p, Call{Nr: SysConnect, Args: [6]uint64{sfd.Val, 89}}); !r.Ok() {
		t.Fatalf("connect: %v", r.Err)
	}
	ref, errno := p.lookupFD(int(sfd.Val))
	if errno != OK {
		t.Fatalf("lookup: %v", errno)
	}
	if ref.stale() {
		t.Fatal("fresh snapshot reads as stale")
	}
	if r := k.Do(p, Call{Nr: SysClose, Args: [6]uint64{sfd.Val}}); !r.Ok() {
		t.Fatalf("close: %v", r.Err)
	}
	if !ref.stale() {
		t.Fatal("snapshot not stale after close retired the endpoint: a racing read could follow the pooled object into a successor connection")
	}
}

// The serving connect path must stay at <= 1 allocation per
// connect/request/response/close cycle (the exact-sized recv result) —
// hard-asserted like the replication hot path, so a regression fails the
// suite rather than only drifting a benchmark number.
func TestConnectPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool puts by design; alloc bound holds without -race")
	}
	k := New()
	stop := startEchoServer(t, k, 88)
	defer stop()
	req := []byte("GET /bench")
	buf := make([]byte, 256)
	cycle := func() {
		cc, errno := k.Connect(88)
		if errno != OK {
			t.Fatalf("connect: %v", errno)
		}
		cc.Write(req)
		if n, err := cc.Read(buf); err != nil || n == 0 {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
		cc.Close()
	}
	for i := 0; i < 500; i++ {
		cycle() // warm the pipe/socket/fd-entry pools and the backlog array
	}
	allocs := testing.AllocsPerRun(500, cycle)
	if allocs > 1 {
		t.Fatalf("connect path allocates %.2f/op, want <= 1 (the recv result)", allocs)
	}
}
