package kernel

import "sync"

// pipeBufSize matches Linux's default pipe capacity (64 KiB).
const pipeBufSize = 64 * 1024

// pipe is a bounded unidirectional byte stream with blocking reads and
// writes, shared by pipe2 and by each direction of a socket connection.
type pipe struct {
	mu          sync.Mutex
	cond        *sync.Cond
	buf         []byte
	readClosed  bool
	writeClosed bool
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// readEnd / writeEnd adapt the two ends of a pipe to the object interface.
type readEnd struct{ p *pipe }
type writeEnd struct{ p *pipe }

func (r *readEnd) read(b []byte, _ int64) (int, Errno) { return r.p.read(b) }
func (r *readEnd) write([]byte, int64) (int, Errno)    { return 0, EBADF }
func (r *readEnd) size() (int64, Errno)                { return 0, ESPIPE }
func (r *readEnd) close() Errno                        { r.p.closeRead(); return OK }
func (r *readEnd) seekable() bool                      { return false }

func (w *writeEnd) read([]byte, int64) (int, Errno)      { return 0, EBADF }
func (w *writeEnd) write(b []byte, _ int64) (int, Errno) { return w.p.write(b) }
func (w *writeEnd) size() (int64, Errno)                 { return 0, ESPIPE }
func (w *writeEnd) close() Errno                         { w.p.closeWrite(); return OK }
func (w *writeEnd) seekable() bool                       { return false }

func (p *pipe) read(b []byte) (int, Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 {
		if p.writeClosed {
			return 0, OK // EOF
		}
		if p.readClosed {
			return 0, EBADF
		}
		p.cond.Wait()
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	p.cond.Broadcast() // wake writers waiting for space
	return n, OK
}

func (p *pipe) write(b []byte) (int, Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	written := 0
	for written < len(b) {
		if p.readClosed {
			return written, EPIPE
		}
		if p.writeClosed {
			return written, EBADF
		}
		space := pipeBufSize - len(p.buf)
		if space == 0 {
			p.cond.Wait()
			continue
		}
		chunk := b[written:]
		if len(chunk) > space {
			chunk = chunk[:space]
		}
		p.buf = append(p.buf, chunk...)
		written += len(chunk)
		p.cond.Broadcast() // wake readers
	}
	return written, OK
}

func (p *pipe) closeRead() {
	p.mu.Lock()
	p.readClosed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *pipe) closeWrite() {
	p.mu.Lock()
	p.writeClosed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}
