package kernel

import "sync"

// pipeBufSize matches Linux's default pipe capacity (64 KiB).
const pipeBufSize = 64 * 1024

// pipe is a bounded unidirectional byte stream with blocking reads and
// writes, shared by pipe2 and by each direction of a socket connection.
//
// Data is kept in a compacting buffer: reads consume from the front (r is
// the read offset into buf) and the buffer is rewound to offset 0 whenever
// it drains, so the backing array is reused across the request/response
// exchanges of a connection instead of append() abandoning a prefix per
// read and reallocating per write — connection churn is the serving hot
// path, and the old behavior made every request leave a trail of dead
// buffers for the collector.
type pipe struct {
	mu          sync.Mutex
	cond        *sync.Cond
	buf         []byte
	r           int // read offset into buf; len(buf)-r bytes are unread
	readClosed  bool
	writeClosed bool
	// onDead is invoked exactly once, outside the dead-state transition's
	// critical section, when both directions are closed. The kernel uses
	// it to drop the pipe from its interrupt list, so finished connections
	// do not accumulate for the lifetime of the session.
	onDead func()
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// readEnd / writeEnd adapt the two ends of a pipe to the object interface.
type readEnd struct{ p *pipe }
type writeEnd struct{ p *pipe }

func (r *readEnd) read(b []byte, _ int64) (int, Errno)   { return r.p.read(b) }
func (r *readEnd) readAvailable(max int) ([]byte, Errno) { return r.p.readAvailable(max) }
func (r *readEnd) write([]byte, int64) (int, Errno)      { return 0, EBADF }
func (r *readEnd) size() (int64, Errno)                  { return 0, ESPIPE }
func (r *readEnd) close() Errno                          { r.p.closeRead(); return OK }
func (r *readEnd) seekable() bool                        { return false }

func (w *writeEnd) read([]byte, int64) (int, Errno)      { return 0, EBADF }
func (w *writeEnd) write(b []byte, _ int64) (int, Errno) { return w.p.write(b) }
func (w *writeEnd) size() (int64, Errno)                 { return 0, ESPIPE }
func (w *writeEnd) close() Errno                         { w.p.closeWrite(); return OK }
func (w *writeEnd) seekable() bool                       { return false }

// unread returns the pending byte count. Callers hold p.mu.
func (p *pipe) unread() int { return len(p.buf) - p.r }

// waitReadableLocked blocks until data is pending or the stream ended.
// ok=false means "stop with errno": OK is EOF, EBADF a closed read side.
// Callers hold p.mu.
func (p *pipe) waitReadableLocked() (errno Errno, ok bool) {
	for p.unread() == 0 {
		if p.writeClosed {
			return OK, false // EOF
		}
		if p.readClosed {
			return EBADF, false
		}
		p.cond.Wait()
	}
	return OK, true
}

// consumeLocked advances the read offset past n delivered bytes, rewinding
// the buffer when it drains (so the backing array is reused), and wakes
// writers waiting for space. Callers hold p.mu.
func (p *pipe) consumeLocked(n int) {
	p.r += n
	if p.r == len(p.buf) {
		p.buf = p.buf[:0]
		p.r = 0
	}
	p.cond.Broadcast()
}

func (p *pipe) read(b []byte) (int, Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if errno, ok := p.waitReadableLocked(); !ok {
		return 0, errno
	}
	n := copy(b, p.buf[p.r:])
	p.consumeLocked(n)
	return n, OK
}

// readAvailable blocks like read, but returns a freshly allocated slice
// sized to the data actually pending (capped at max) instead of filling a
// caller buffer. The kernel's read/recv handlers use it so that a request
// asking for N bytes costs an allocation proportional to the bytes
// delivered, not to N.
func (p *pipe) readAvailable(max int) ([]byte, Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if errno, ok := p.waitReadableLocked(); !ok {
		return nil, errno
	}
	n := p.unread()
	if n > max {
		n = max
	}
	out := make([]byte, n)
	copy(out, p.buf[p.r:])
	p.consumeLocked(n)
	return out, OK
}

func (p *pipe) write(b []byte) (int, Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	written := 0
	for written < len(b) {
		if p.readClosed {
			return written, EPIPE
		}
		if p.writeClosed {
			return written, EBADF
		}
		space := pipeBufSize - p.unread()
		if space == 0 {
			p.cond.Wait()
			continue
		}
		chunk := b[written:]
		if len(chunk) > space {
			chunk = chunk[:space]
		}
		// Compact before growing: if the dead prefix alone makes room,
		// reuse it rather than extending the backing array.
		if p.r > 0 && len(p.buf)+len(chunk) > cap(p.buf) {
			n := copy(p.buf, p.buf[p.r:])
			p.buf = p.buf[:n]
			p.r = 0
		}
		p.buf = append(p.buf, chunk...)
		written += len(chunk)
		p.cond.Broadcast() // wake readers
	}
	return written, OK
}

func (p *pipe) closeRead() {
	p.mu.Lock()
	p.readClosed = true
	dead := p.deadLocked()
	p.cond.Broadcast()
	p.mu.Unlock()
	if dead != nil {
		dead()
	}
}

func (p *pipe) closeWrite() {
	p.mu.Lock()
	p.writeClosed = true
	dead := p.deadLocked()
	p.cond.Broadcast()
	p.mu.Unlock()
	if dead != nil {
		dead()
	}
}

// deadLocked returns the onDead hook (clearing it, so it fires once) when
// both directions have closed. Callers hold p.mu and invoke the hook after
// unlocking.
func (p *pipe) deadLocked() func() {
	if p.readClosed && p.writeClosed && p.onDead != nil {
		f := p.onDead
		p.onDead = nil
		return f
	}
	return nil
}
