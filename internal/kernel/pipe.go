package kernel

import (
	"sync"
	"sync/atomic"
)

// pipeBufSize matches Linux's default pipe capacity (64 KiB).
const pipeBufSize = 64 * 1024

// pipe is a bounded unidirectional byte stream with blocking reads and
// writes, shared by pipe2 and by each direction of a socket connection.
//
// Data is kept in a compacting buffer: reads consume from the front (r is
// the read offset into buf) and the buffer is rewound to offset 0 whenever
// it drains, so the backing array is reused across the request/response
// exchanges of a connection instead of append() abandoning a prefix per
// read and reallocating per write — connection churn is the serving hot
// path, and the old behavior made every request leave a trail of dead
// buffers for the collector.
//
// Lifecycle: pipes handed out by Kernel.getPipe return to the kernel's
// per-kernel pool — backing buffer included — once they are dead (both
// directions closed) AND drained (no goroutine still blocked in a
// cond.Wait). The waiting count is what makes the drain sound: a woken
// waiter re-acquires mu and re-reads the closed flags before anything can
// reset them, because release cannot happen until the count returns to
// zero.
//
// Generations are what make the *handles* sound. Every holder of a pipe
// (a descriptor end, a socket endpoint, a ClientConn) captures the pipe's
// generation when it acquires it, and every operation validates that
// generation under mu before touching pipe state. A handle that calls in
// late — a gateway watchdog's Close racing the request path, a thread
// reading a descriptor another thread closed — finds the generation moved
// and gets EBADF, exactly what the dead pipe would have returned, instead
// of reading a successor connection's bytes out of the recycled object.
// Once the check passes, the caller's presence (holding mu, or counted in
// waiting while parked) blocks release, so the generation cannot move
// mid-operation.
type pipe struct {
	// hdr is the uniform object header: hdr.kern, when non-nil, recycles
	// the pipe (and untracks it from the interrupt list) once it is dead
	// and drained, and routes poll wakeups; pipes made by the bare newPipe
	// (tests) have no kernel and are simply garbage-collected. hdr.gen is
	// the reuse generation, bumped under mu by getPipe; being atomic it is
	// also readable without mu (generation, poll readiness).
	hdr objHeader

	mu          sync.Mutex
	cond        sync.Cond // L bound to mu at construction; recycled with the pipe
	buf         []byte
	r           int // read offset into buf; len(buf)-r bytes are unread
	waiting     int // goroutines inside cond.Wait
	readClosed  bool
	writeClosed bool
	released    bool // returned to the pool (or due to be); fires once

	// wakeSeq counts cond broadcasts (bumped under mu by wakeLocked). A
	// sleeper registers its deadlock-detector cell with the sequence it saw
	// at park time; the detector treats a moved sequence as a wake in
	// flight and refuses to call the sleeper deadlocked. Monotonic across
	// recycles — only equality with the parked snapshot matters.
	wakeSeq atomic.Uint64

	// external marks a pipe with a host-side end (Kernel.Connect's
	// ClientConn pipes): a guest thread sleeping on it can be woken from
	// outside the guest, so its sleeps never register deadlock cells.
	// Guarded by mu; reset by getPipe.
	external bool
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond.L = &p.mu
	return p
}

// generation returns the pipe's current reuse generation, for a holder to
// stamp its handle with at acquisition time.
func (p *pipe) generation() uint64 { return p.hdr.generation() }

// markExternal flags the pipe as host-wakeable for this lifetime; cleared
// by getPipe at the next recycle.
func (p *pipe) markExternal() {
	p.mu.Lock()
	p.external = true
	p.mu.Unlock()
}

// isInternal reports whether sleeps on this pipe are deadlock-detectable
// (no host-side end).
func (p *pipe) isInternal() bool {
	p.mu.Lock()
	ext := p.external
	p.mu.Unlock()
	return !ext
}

// checkGenLocked validates a handle's generation. Callers hold p.mu.
func (p *pipe) checkGenLocked(gen uint64) bool { return p.hdr.gen.Load() == gen }

// getPipe returns a fresh or recycled pipe owned by this kernel. The
// recycled case reuses the pipe struct, its cond (sync.Cond carries no
// waiter state once drained), and its backing buffer — the allocations
// that used to dominate the per-connection cost of Connect/Accept. The
// reset happens under mu and bumps the generation, so a stale handle
// racing in sees either the old dead state or a generation mismatch,
// never a half-reset pipe.
func (k *Kernel) getPipe() *pipe {
	if v := k.pipePool.Get(); v != nil {
		p := v.(*pipe)
		p.mu.Lock()
		p.hdr.gen.Add(1)
		p.readClosed, p.writeClosed, p.released = false, false, false
		p.external = false
		p.mu.Unlock()
		return p
	}
	p := newPipe()
	p.hdr.kern = k
	return p
}

// releasePipe drops a dead, drained pipe from the interrupt list and
// returns it to the pool. Called exactly once per pipe lifetime (the
// released flag), outside p.mu.
func (k *Kernel) releasePipe(p *pipe) {
	k.untrack(p)
	k.pipePool.Put(p)
}

// readEnd / writeEnd adapt the two ends of a pipe to the object
// interface, stamped with the generation they were created at.
type readEnd struct {
	p   *pipe
	gen uint64
}
type writeEnd struct {
	p   *pipe
	gen uint64
}

func (r *readEnd) header() *objHeader                  { return &r.p.hdr }
func (r *readEnd) read(b []byte, _ int64) (int, Errno) { return r.p.read(r.gen, b, blocker{}) }
func (r *readEnd) readAvailable(max int, w blocker) ([]byte, Errno) {
	return r.p.readAvailable(r.gen, max, w)
}
func (r *readEnd) readInto(dst []byte, w blocker) (int, Errno) {
	return r.p.read(r.gen, dst, w)
}
func (r *readEnd) write([]byte, int64) (int, Errno) { return 0, EBADF }
func (r *readEnd) size() (int64, Errno)             { return 0, ESPIPE }
func (r *readEnd) close() Errno                     { r.p.closeRead(r.gen); return OK }
func (r *readEnd) seekable() bool                   { return false }
func (r *readEnd) poll() uint32                     { return r.p.pollReadable(r.gen) }

func (w *writeEnd) header() *objHeader                   { return &w.p.hdr }
func (w *writeEnd) read([]byte, int64) (int, Errno)      { return 0, EBADF }
func (w *writeEnd) write(b []byte, _ int64) (int, Errno) { return w.p.write(w.gen, b, blocker{}) }
func (w *writeEnd) writeIntr(b []byte, blk blocker) (int, Errno) {
	return w.p.write(w.gen, b, blk)
}
func (w *writeEnd) sendFromFile(ino *inode, off int64, n int, blk blocker) (int, Errno) {
	return w.p.writeFromFile(w.gen, ino, off, n, blk)
}
func (w *writeEnd) size() (int64, Errno) { return 0, ESPIPE }
func (w *writeEnd) close() Errno         { w.p.closeWrite(w.gen); return OK }
func (w *writeEnd) seekable() bool       { return false }
func (w *writeEnd) poll() uint32         { return w.p.pollWritable(w.gen) }

// pollReadable snapshots the read-side readiness of the pipe for a handle
// stamped with gen: PollIn when a read would not block (pending bytes, or
// EOF because the write side closed), PollHup at EOF, PollNval when the
// handle's pipe lifetime has ended (the pipe was recycled).
func (p *pipe) pollReadable(gen uint64) uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.checkGenLocked(gen) {
		return PollNval
	}
	var ev uint32
	if p.unread() > 0 || p.writeClosed {
		ev |= PollIn
	}
	if p.writeClosed {
		ev |= PollHup
	}
	if p.readClosed {
		ev |= PollErr
	}
	return ev
}

// pollWritable snapshots the write-side readiness: PollOut when buffer
// space is available, PollErr when a write would fail (broken pipe or a
// closed write side), PollNval on a recycled pipe.
func (p *pipe) pollWritable(gen uint64) uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.checkGenLocked(gen) {
		return PollNval
	}
	var ev uint32
	if p.readClosed || p.writeClosed {
		ev |= PollErr
	} else if p.unread() < pipeBufSize {
		ev |= PollOut
	}
	return ev
}

// unread returns the pending byte count. Callers hold p.mu.
func (p *pipe) unread() int { return len(p.buf) - p.r }

// waitLocked parks on the pipe's cond, keeping the waiting count that
// gates recycling. Callers hold p.mu.
func (p *pipe) waitLocked() {
	p.waiting++
	p.cond.Wait()
	p.waiting--
}

// wakeLocked is the only way pipe code broadcasts: it bumps the wake
// sequence first, so a deadlock-detector cell registered before this wake
// is provably stale. Both happen under p.mu — registration also samples
// the sequence under p.mu — so a cell and a wake can never interleave
// half-observed. Callers hold p.mu.
func (p *pipe) wakeLocked() {
	p.wakeSeq.Add(1)
	p.cond.Broadcast()
}

// sleepLocked parks like waitLocked but, for a board-armed caller on an
// internal pipe, registers a deadlock cell for the duration of the sleep.
// External pipes (host-wakeable) skip registration: the detector must
// never count a sleep the host could end. Callers hold p.mu.
func (p *pipe) sleepLocked(w blocker, kind BlockKind) {
	if w.board != nil && !p.external {
		w.pipePark(kind, &p.wakeSeq, p.wakeSeq.Load())
		p.waitLocked()
		w.unpark()
		return
	}
	p.waitLocked()
}

// kick wakes every waiter parked on the pipe without changing pipe state:
// the signal-delivery path. A woken waiter whose proc has a deliverable
// signal pending unwinds with EINTR; everyone else re-checks their
// predicate and parks again.
func (p *pipe) kick() {
	p.mu.Lock()
	p.wakeLocked()
	p.mu.Unlock()
}

// releaseDueLocked marks the pipe released when it is dead and drained,
// clearing any leftover bytes so nothing of this connection survives into
// the next use. It returns whether the caller must invoke
// kern.releasePipe after unlocking. Callers hold p.mu.
func (p *pipe) releaseDueLocked() bool {
	if p.hdr.kern == nil || p.released || !p.readClosed || !p.writeClosed || p.waiting > 0 {
		return false
	}
	p.released = true
	p.buf = p.buf[:0]
	p.r = 0
	return true
}

// waitReadableLocked blocks until data is pending, the stream ended, or —
// when the caller supplied an interrupt predicate — a deliverable signal
// arrived (EINTR). ok=false means "stop with errno": OK is EOF, EBADF a
// closed read side. The predicate is checked before the first wait too, so
// a read entered with a signal already pending EINTRs deterministically
// instead of racing the data. Callers hold p.mu.
func (p *pipe) waitReadableLocked(w blocker) (errno Errno, ok bool) {
	for p.unread() == 0 {
		if p.writeClosed {
			return OK, false // EOF
		}
		if p.readClosed {
			return EBADF, false
		}
		if w.interrupted() {
			return EINTR, false
		}
		p.sleepLocked(w, BlockPipeRead)
	}
	return OK, true
}

// consumeLocked advances the read offset past n delivered bytes, rewinding
// the buffer when it drains (so the backing array is reused), and wakes
// writers waiting for space. Callers hold p.mu.
func (p *pipe) consumeLocked(n int) {
	p.r += n
	if p.r == len(p.buf) {
		p.buf = p.buf[:0]
		p.r = 0
	}
	p.wakeLocked()
	// Callers issue the poll wake (space freed: writers polling PollOut
	// may be ready) after releasing p.mu.
}

func (p *pipe) read(gen uint64, b []byte, w blocker) (int, Errno) {
	p.mu.Lock()
	if !p.checkGenLocked(gen) {
		p.mu.Unlock()
		return 0, EBADF
	}
	errno, ok := p.waitReadableLocked(w)
	if !ok {
		// This reader may have been the last waiter holding a dead pipe
		// back from recycling.
		rel := p.releaseDueLocked()
		p.mu.Unlock()
		if rel {
			p.hdr.kern.releasePipe(p)
		}
		return 0, errno
	}
	n := copy(b, p.buf[p.r:])
	p.consumeLocked(n)
	p.mu.Unlock()
	p.hdr.pollWake()
	return n, OK
}

// readAvailable blocks like read, but returns a freshly allocated slice
// sized to the data actually pending (capped at max) instead of filling a
// caller buffer. The kernel's read/recv handlers use it so that a request
// asking for N bytes costs an allocation proportional to the bytes
// delivered, not to N.
func (p *pipe) readAvailable(gen uint64, max int, w blocker) ([]byte, Errno) {
	p.mu.Lock()
	if !p.checkGenLocked(gen) {
		p.mu.Unlock()
		return nil, EBADF
	}
	errno, ok := p.waitReadableLocked(w)
	if !ok {
		rel := p.releaseDueLocked()
		p.mu.Unlock()
		if rel {
			p.hdr.kern.releasePipe(p)
		}
		return nil, errno
	}
	n := p.unread()
	if n > max {
		n = max
	}
	out := make([]byte, n)
	copy(out, p.buf[p.r:])
	p.consumeLocked(n)
	p.mu.Unlock()
	p.hdr.pollWake()
	return out, OK
}

func (p *pipe) write(gen uint64, b []byte, w blocker) (int, Errno) {
	p.mu.Lock()
	if !p.checkGenLocked(gen) {
		p.mu.Unlock()
		return 0, EBADF
	}
	written := 0
	for written < len(b) {
		if p.readClosed {
			rel := p.releaseDueLocked()
			p.mu.Unlock()
			if written > 0 {
				p.hdr.pollWake()
			}
			if rel {
				p.hdr.kern.releasePipe(p)
			}
			return written, EPIPE
		}
		if p.writeClosed {
			rel := p.releaseDueLocked()
			p.mu.Unlock()
			if written > 0 {
				p.hdr.pollWake()
			}
			if rel {
				p.hdr.kern.releasePipe(p)
			}
			return written, EBADF
		}
		space := pipeBufSize - p.unread()
		if space == 0 {
			// Like the read side, the interrupt predicate only bites when
			// the write would otherwise sleep — and per POSIX, a write
			// that already transferred bytes returns the short count with
			// NO error (EINTR is only for zero-progress interruptions):
			// the standard retry-on-EINTR idiom assumes nothing was
			// written, and handing it (n>0, EINTR) would make it resend
			// and duplicate bytes in the stream.
			if w.interrupted() {
				p.mu.Unlock()
				if written > 0 {
					p.hdr.pollWake()
					return written, OK
				}
				return 0, EINTR
			}
			// Announce what this call already buffered BEFORE sleeping:
			// a poller parked on the kernel wait set is the only thing
			// that can drain the pipe in the evented mode, and the
			// end-of-write wake below never happens while we wait here —
			// skipping this is a writer/poller deadlock on any write
			// larger than the pipe capacity.
			if written > 0 {
				p.hdr.pollWake()
			}
			p.sleepLocked(w, BlockPipeWrite)
			continue
		}
		chunk := b[written:]
		if len(chunk) > space {
			chunk = chunk[:space]
		}
		// Compact before growing: if the dead prefix alone makes room,
		// reuse it rather than extending the backing array.
		if p.r > 0 && len(p.buf)+len(chunk) > cap(p.buf) {
			n := copy(p.buf, p.buf[p.r:])
			p.buf = p.buf[:n]
			p.r = 0
		}
		p.buf = append(p.buf, chunk...)
		written += len(chunk)
		p.wakeLocked() // wake readers
	}
	p.mu.Unlock()
	// One poll wake per write, outside the lock (readers polling PollIn
	// are ready): per-chunk wakes under p.mu would stampede every poller
	// in the kernel straight into the lock the writer still holds.
	p.hdr.pollWake()
	return written, OK
}

// writeFromFile is sendfile's sink half: it fills the pipe buffer straight
// from the inode, so the file bytes are copied exactly once (inode → pipe)
// and never materialize in a guest- or monitor-visible buffer. Blocking,
// EPIPE/EBADF, short-count-on-progress, EINTR-only-on-zero-progress, and
// poll-wake placement all mirror write() — this IS a write as far as the
// stream's semantics are concerned; only the source of the bytes differs.
// The inode's read lock is taken per copied chunk (inside readAt), never
// held while sleeping for pipe space.
func (p *pipe) writeFromFile(gen uint64, ino *inode, off int64, total int, w blocker) (int, Errno) {
	p.mu.Lock()
	if !p.checkGenLocked(gen) {
		p.mu.Unlock()
		return 0, EBADF
	}
	written := 0
	for written < total {
		if p.readClosed {
			rel := p.releaseDueLocked()
			p.mu.Unlock()
			if written > 0 {
				p.hdr.pollWake()
			}
			if rel {
				p.hdr.kern.releasePipe(p)
			}
			return written, EPIPE
		}
		if p.writeClosed {
			rel := p.releaseDueLocked()
			p.mu.Unlock()
			if written > 0 {
				p.hdr.pollWake()
			}
			if rel {
				p.hdr.kern.releasePipe(p)
			}
			return written, EBADF
		}
		space := pipeBufSize - p.unread()
		if space == 0 {
			if w.interrupted() {
				p.mu.Unlock()
				if written > 0 {
					p.hdr.pollWake()
					return written, OK
				}
				return 0, EINTR
			}
			// Announce buffered progress before sleeping — same
			// writer/poller deadlock avoidance as write().
			if written > 0 {
				p.hdr.pollWake()
			}
			p.sleepLocked(w, BlockPipeWrite)
			continue
		}
		chunk := total - written
		if chunk > space {
			chunk = space
		}
		// Compact before growing, like write(); then extend the buffer and
		// let the inode copy directly into the new tail.
		if p.r > 0 && len(p.buf)+chunk > cap(p.buf) {
			n := copy(p.buf, p.buf[p.r:])
			p.buf = p.buf[:n]
			p.r = 0
		}
		old := len(p.buf)
		if cap(p.buf) < old+chunk {
			grown := make([]byte, old, old+chunk)
			copy(grown, p.buf)
			p.buf = grown
		}
		p.buf = p.buf[:old+chunk]
		n := ino.readAt(p.buf[old:], off+int64(written))
		p.buf = p.buf[:old+n]
		if n == 0 {
			break // file ended early (shrank under us): short count
		}
		written += n
		p.wakeLocked() // wake readers
	}
	p.mu.Unlock()
	p.hdr.pollWake()
	return written, OK
}

func (p *pipe) closeRead(gen uint64) {
	p.mu.Lock()
	if !p.checkGenLocked(gen) {
		p.mu.Unlock()
		return // the handle's pipe lifetime already ended
	}
	p.readClosed = true
	rel := p.releaseDueLocked()
	p.wakeLocked()
	p.mu.Unlock()
	p.hdr.pollWake() // writers polling the peer see PollErr now
	if rel {
		p.hdr.kern.releasePipe(p)
	}
}

func (p *pipe) closeWrite(gen uint64) {
	p.mu.Lock()
	if !p.checkGenLocked(gen) {
		p.mu.Unlock()
		return
	}
	p.writeClosed = true
	rel := p.releaseDueLocked()
	p.wakeLocked()
	p.mu.Unlock()
	p.hdr.pollWake() // readers polling PollIn see EOF (PollIn|PollHup) now
	if rel {
		p.hdr.kern.releasePipe(p)
	}
}

// interruptNow force-closes both directions regardless of generation —
// the kernel teardown path, where closing a just-recycled pipe of the
// dying session is acceptable (every connection in it is doomed anyway).
func (p *pipe) interruptNow() {
	p.mu.Lock()
	p.readClosed, p.writeClosed = true, true
	rel := p.releaseDueLocked()
	p.wakeLocked()
	p.mu.Unlock()
	p.hdr.pollWake()
	if rel {
		p.hdr.kern.releasePipe(p)
	}
}
