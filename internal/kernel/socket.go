package kernel

import "sync"

// The socket layer provides loopback stream sockets: enough for the nginx
// use case (§5.5), where a client load generator connects to the
// multithreaded server running under the MVEE.

// conn is one established connection: two pipes, one per direction.
type conn struct {
	toServer   *pipe
	fromServer *pipe
}

// socketObj is the server- or client-side endpoint of a connection.
type socketObj struct {
	rx *pipe
	tx *pipe
}

func (s *socketObj) read(b []byte, _ int64) (int, Errno) {
	if s.rx == nil {
		return 0, EINVAL // unconnected placeholder (see SysSocket)
	}
	return s.rx.read(b)
}

func (s *socketObj) readAvailable(max int) ([]byte, Errno) {
	if s.rx == nil {
		return nil, EINVAL
	}
	return s.rx.readAvailable(max)
}

func (s *socketObj) write(b []byte, _ int64) (int, Errno) {
	if s.tx == nil {
		return 0, EINVAL
	}
	return s.tx.write(b)
}
func (s *socketObj) size() (int64, Errno) { return 0, ESPIPE }
func (s *socketObj) seekable() bool       { return false }
func (s *socketObj) close() Errno {
	if s.rx != nil {
		s.rx.closeRead()
	}
	if s.tx != nil {
		s.tx.closeWrite()
	}
	return OK
}

// listener is a bound, listening socket with an accept queue.
type listener struct {
	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*conn
	max     int
	closed  bool
	port    uint16
}

func newListener(port uint16, backlog int) *listener {
	l := &listener{max: backlog, port: port}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *listener) read([]byte, int64) (int, Errno)  { return 0, EINVAL }
func (l *listener) write([]byte, int64) (int, Errno) { return 0, EINVAL }
func (l *listener) size() (int64, Errno)             { return 0, ESPIPE }
func (l *listener) seekable() bool                   { return false }

func (l *listener) close() Errno {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	return OK
}

// enqueue adds a connection attempt; it fails if the backlog is full or the
// listener is closed.
func (l *listener) enqueue(c *conn) Errno {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ECONNREFUSED
	}
	if len(l.backlog) >= l.max {
		return EAGAIN
	}
	l.backlog = append(l.backlog, c)
	l.cond.Broadcast()
	return OK
}

// accept blocks until a connection is available or the listener closes.
func (l *listener) accept() (*conn, Errno) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.backlog) == 0 {
		if l.closed {
			return nil, EINVAL
		}
		l.cond.Wait()
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, OK
}

// netStack is the kernel's loopback network: a port table of listeners.
type netStack struct {
	mu        sync.Mutex
	listeners map[uint16]*listener
}

func newNetStack() *netStack {
	return &netStack{listeners: make(map[uint16]*listener)}
}

func (ns *netStack) bind(port uint16, l *listener) Errno {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.listeners[port]; ok {
		return EADDRINUSE
	}
	ns.listeners[port] = l
	return OK
}

func (ns *netStack) lookup(port uint16) (*listener, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	l, ok := ns.listeners[port]
	return l, ok
}

func (ns *netStack) unbind(port uint16) {
	ns.mu.Lock()
	delete(ns.listeners, port)
	ns.mu.Unlock()
}
