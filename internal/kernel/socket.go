package kernel

import (
	"sync"
	"sync/atomic"
)

// The socket layer provides loopback stream sockets: enough for the nginx
// use case (§5.5), where a client load generator connects to the
// multithreaded server running under the MVEE.

// conn is one established connection: two pipes, one per direction. It is
// a value type — connections travel through the listener backlog and into
// ClientConn by copy, which keeps the connect path free of a per-connection
// heap object (the pipes themselves are the long-lived, pooled state).
type conn struct {
	toServer   *pipe
	fromServer *pipe
}

// socketObj is the server- or client-side endpoint of a connection.
//
// Endpoints are recycled through the kernel's per-kernel pool: close
// returns the object after closing its pipes, and Kernel.getSock hands it
// to the next socket()/accept(). Descriptor sharing is NOT the endpoint's
// problem anymore: dup(2)'d descriptors share one open file description
// (see openFile), and only the last descriptor's close reaches the object
// — the struct-file f_count bookkeeping lives one layer up, where Linux
// keeps it.
//
// Each endpoint is a generation-stamped pipe handle: a thread that kept
// the object past its fd's close — a reader racing another thread's
// close(2) on the same descriptor — finds the pipes' generations moved
// and gets EBADF, never a successor connection's data. The endpoint
// OBJECT being recycled and re-attached while such a stale reference
// still exists is caught one layer up: close retires the header
// generation, and the kernel's stream handlers check the fdRef's
// snapshot against it (fdRef.stale) before every operation. What remains
// is the few-instruction check-then-act window, which only opens when a
// guest uses an fd after closing it (a program bug no in-repo workload
// commits) and costs at worst a misdirected read within the same
// simulated kernel, i.e. the same process boundary the fd table already
// spans.
type socketObj struct {
	// hdr.kern is the pool owner (nil for objects built outside a
	// kernel); hdr.gen is bumped at retirement, like every pooled object.
	hdr objHeader
	// attach stores the generations BEFORE the pipe pointers; a reader
	// loads the pipe and then its generation, so (sequentially consistent
	// atomics) seeing a pipe implies seeing the generation it was
	// attached at — no allocation needed to publish the pair.
	rx, tx       atomic.Pointer[pipe]
	rxGen, txGen atomic.Uint64
}

// getSock returns a fresh or recycled, unconnected socket endpoint.
func (k *Kernel) getSock() *socketObj {
	if v := k.sockPool.Get(); v != nil {
		return v.(*socketObj)
	}
	s := &socketObj{}
	s.hdr.kern = k
	return s
}

func (s *socketObj) header() *objHeader { return &s.hdr }

// attach connects the endpoint to its two pipes. Called at most once per
// object lifetime (accept, or connect on the socket() placeholder).
func (s *socketObj) attach(rx, tx *pipe) {
	s.rxGen.Store(rx.generation())
	s.txGen.Store(tx.generation())
	s.rx.Store(rx)
	s.tx.Store(tx)
}

func (s *socketObj) read(b []byte, _ int64) (int, Errno) {
	rx := s.rx.Load()
	if rx == nil {
		return 0, EINVAL // unconnected placeholder (see SysSocket)
	}
	return rx.read(s.rxGen.Load(), b, blocker{})
}

func (s *socketObj) readAvailable(max int, w blocker) ([]byte, Errno) {
	rx := s.rx.Load()
	if rx == nil {
		return nil, EINVAL
	}
	return rx.readAvailable(s.rxGen.Load(), max, w)
}

func (s *socketObj) readInto(dst []byte, w blocker) (int, Errno) {
	rx := s.rx.Load()
	if rx == nil {
		return 0, EINVAL
	}
	return rx.read(s.rxGen.Load(), dst, w)
}

func (s *socketObj) write(b []byte, _ int64) (int, Errno) {
	tx := s.tx.Load()
	if tx == nil {
		return 0, EINVAL
	}
	return tx.write(s.txGen.Load(), b, blocker{})
}

func (s *socketObj) writeIntr(b []byte, w blocker) (int, Errno) {
	tx := s.tx.Load()
	if tx == nil {
		return 0, EINVAL
	}
	return tx.write(s.txGen.Load(), b, w)
}
func (s *socketObj) sendFromFile(ino *inode, off int64, n int, w blocker) (int, Errno) {
	tx := s.tx.Load()
	if tx == nil {
		return 0, EINVAL
	}
	return tx.writeFromFile(s.txGen.Load(), ino, off, n, w)
}
func (s *socketObj) size() (int64, Errno) { return 0, ESPIPE }
func (s *socketObj) seekable() bool       { return false }

// poll combines the receive pipe's read readiness with the transmit
// pipe's write readiness; an unconnected placeholder reports nothing.
func (s *socketObj) poll() uint32 {
	rx, tx := s.rx.Load(), s.tx.Load()
	if rx == nil || tx == nil {
		return 0
	}
	return rx.pollReadable(s.rxGen.Load()) | tx.pollWritable(s.txGen.Load())
}

func (s *socketObj) close() Errno {
	if rx := s.rx.Load(); rx != nil {
		rx.closeRead(s.rxGen.Load())
	}
	if tx := s.tx.Load(); tx != nil {
		tx.closeWrite(s.txGen.Load())
	}
	if s.hdr.kern != nil {
		s.hdr.retire() // stale holders fail the header generation check
		s.rx.Store(nil)
		s.tx.Store(nil)
		s.hdr.kern.sockPool.Put(s)
	}
	return OK
}

// listener is a bound, listening socket with an accept queue.
//
// The backlog is a head-indexed queue over a retained array (compacted
// like the pipe buffer): accept consumes from the front and the array
// rewinds when it drains, so steady-state connection churn enqueues into
// existing capacity instead of re-allocating the slice every cycle — the
// old `backlog = backlog[1:]` walked the array forward and forced one
// append allocation per accepted connection.
type listener struct {
	hdr     objHeader
	mu      sync.Mutex
	cond    sync.Cond // L bound to mu at construction
	backlog []conn
	head    int
	max     int
	closed  bool
	port    uint16
}

func newListener(k *Kernel, port uint16, backlog int) *listener {
	l := &listener{max: backlog, port: port}
	l.hdr.kern = k
	l.cond.L = &l.mu
	return l
}

func (l *listener) header() *objHeader               { return &l.hdr }
func (l *listener) read([]byte, int64) (int, Errno)  { return 0, EINVAL }
func (l *listener) write([]byte, int64) (int, Errno) { return 0, EINVAL }
func (l *listener) size() (int64, Errno)             { return 0, ESPIPE }
func (l *listener) seekable() bool                   { return false }

// poll: PollIn when an accept would not block (pending connection),
// PollHup once the listener closed.
func (l *listener) poll() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var ev uint32
	if len(l.backlog)-l.head > 0 {
		ev |= PollIn
	}
	if l.closed {
		ev |= PollHup
	}
	return ev
}

// kick wakes accept waiters without closing the listener (signal
// delivery; see pipe.kick).
func (l *listener) kick() {
	l.mu.Lock()
	l.cond.Broadcast()
	l.mu.Unlock()
}

func (l *listener) close() Errno {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.hdr.pollWake()
	return OK
}

// enqueue adds a connection attempt; it fails if the backlog is full or the
// listener is closed.
func (l *listener) enqueue(c conn) Errno {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ECONNREFUSED
	}
	if len(l.backlog)-l.head >= l.max {
		l.mu.Unlock()
		return EAGAIN
	}
	// Compact before growing: if the consumed prefix alone makes room,
	// reuse it rather than extending the backing array. Clear the vacated
	// tail — like accept's consumed-slot zeroing below, the retained array
	// must not pin finished connections' pipes against reclamation.
	if l.head > 0 && len(l.backlog) == cap(l.backlog) {
		n := copy(l.backlog, l.backlog[l.head:])
		for i := n; i < len(l.backlog); i++ {
			l.backlog[i] = conn{}
		}
		l.backlog = l.backlog[:n]
		l.head = 0
	}
	l.backlog = append(l.backlog, c)
	l.cond.Broadcast()
	l.mu.Unlock()
	l.hdr.pollWake()
	return OK
}

// accept blocks until a connection is available, the listener closes, or —
// with a non-nil interrupt predicate — a deliverable signal arrives
// (EINTR), checked before the first wait so a pre-pended signal interrupts
// deterministically.
func (l *listener) accept(intr func() bool) (conn, Errno) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.backlog)-l.head == 0 {
		if l.closed {
			return conn{}, EINVAL
		}
		if intr != nil && intr() {
			return conn{}, EINTR
		}
		l.cond.Wait()
	}
	c := l.backlog[l.head]
	l.backlog[l.head] = conn{} // don't pin the pipes in the retained array
	l.head++
	if l.head == len(l.backlog) {
		l.backlog = l.backlog[:0]
		l.head = 0
	}
	return c, OK
}

// netStack is the kernel's loopback network: a port table of listeners.
type netStack struct {
	mu        sync.Mutex
	listeners map[uint16]*listener
}

func newNetStack() *netStack {
	return &netStack{listeners: make(map[uint16]*listener)}
}

func (ns *netStack) bind(port uint16, l *listener) Errno {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.listeners[port]; ok {
		return EADDRINUSE
	}
	ns.listeners[port] = l
	return OK
}

// rebind atomically replaces the listener bound at port with l and returns
// the displaced one (nil if the port was free) — the hot-restart handoff: a
// connect that looked the old listener up before the swap and enqueues
// after it is refused and re-chases the port (see doConnect), so no
// connection is dropped across the swap.
func (ns *netStack) rebind(port uint16, l *listener) *listener {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	old := ns.listeners[port]
	ns.listeners[port] = l
	return old
}

func (ns *netStack) lookup(port uint16) (*listener, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	l, ok := ns.listeners[port]
	return l, ok
}

func (ns *netStack) unbind(port uint16) {
	ns.mu.Lock()
	delete(ns.listeners, port)
	ns.mu.Unlock()
}
