package kernel

import (
	"sync"
	"sync/atomic"
)

// The socket layer provides loopback stream sockets: enough for the nginx
// use case (§5.5), where a client load generator connects to the
// multithreaded server running under the MVEE.

// conn is one established connection: two pipes, one per direction.
type conn struct {
	toServer   *pipe
	fromServer *pipe
}

// socketObj is the server- or client-side endpoint of a connection.
//
// Endpoints are recycled through the kernel's per-kernel pool: the LAST
// close returns the object after closing its pipes (refs counts the
// descriptor-table references — dup(2) shares the object, and each
// descriptor's close drops one reference, so a dup'd socket is torn down
// and pooled exactly once, like the kernel's struct-file f_count), and
// Kernel.getSock hands it to the next socket()/accept(). The endpoint
// pipes are atomic pointers because connect() attaches them to the
// placeholder socket() already installed in the descriptor table, instead
// of allocating a replacement object.
//
// Each endpoint is a generation-stamped pipe handle: a thread that kept
// the object past its fd's close — a reader racing another thread's
// close(2) on the same descriptor — finds the pipes' generations moved
// and gets EBADF, never a successor connection's data. The residual
// hazard is the endpoint OBJECT being recycled and re-attached while such
// a stale reference still exists; that requires a guest to use an fd
// after closing it (a program bug no in-repo workload commits, per the
// descriptor contract pipe's doc comment spells out), and costs at worst
// a misdirected read within the same simulated kernel, i.e. the same
// process boundary the fd table already spans.
type socketObj struct {
	kern *Kernel // pool owner; nil for objects built outside a kernel
	// attach stores the generations BEFORE the pipe pointers; a reader
	// loads the pipe and then its generation, so (sequentially consistent
	// atomics) seeing a pipe implies seeing the generation it was
	// attached at — no allocation needed to publish the pair.
	rx, tx       atomic.Pointer[pipe]
	rxGen, txGen atomic.Uint64
	refs         atomic.Int32 // descriptor-table references; see dup/close
}

// getSock returns a fresh or recycled, unconnected socket endpoint.
func (k *Kernel) getSock() *socketObj {
	if v := k.sockPool.Get(); v != nil {
		s := v.(*socketObj)
		s.refs.Store(1)
		return s
	}
	s := &socketObj{kern: k}
	s.refs.Store(1)
	return s
}

// dup adds a descriptor-table reference (proc.dupFD calls it through the
// duppable interface).
func (s *socketObj) dup() { s.refs.Add(1) }

// attach connects the endpoint to its two pipes. Called at most once per
// object lifetime (accept, or connect on the socket() placeholder).
func (s *socketObj) attach(rx, tx *pipe) {
	s.rxGen.Store(rx.generation())
	s.txGen.Store(tx.generation())
	s.rx.Store(rx)
	s.tx.Store(tx)
}

func (s *socketObj) read(b []byte, _ int64) (int, Errno) {
	rx := s.rx.Load()
	if rx == nil {
		return 0, EINVAL // unconnected placeholder (see SysSocket)
	}
	return rx.read(s.rxGen.Load(), b)
}

func (s *socketObj) readAvailable(max int) ([]byte, Errno) {
	rx := s.rx.Load()
	if rx == nil {
		return nil, EINVAL
	}
	return rx.readAvailable(s.rxGen.Load(), max)
}

func (s *socketObj) write(b []byte, _ int64) (int, Errno) {
	tx := s.tx.Load()
	if tx == nil {
		return 0, EINVAL
	}
	return tx.write(s.txGen.Load(), b)
}
func (s *socketObj) size() (int64, Errno) { return 0, ESPIPE }
func (s *socketObj) seekable() bool       { return false }
func (s *socketObj) close() Errno {
	if s.refs.Add(-1) > 0 {
		return OK // a dup'd descriptor still references the endpoint
	}
	if rx := s.rx.Load(); rx != nil {
		rx.closeRead(s.rxGen.Load())
	}
	if tx := s.tx.Load(); tx != nil {
		tx.closeWrite(s.txGen.Load())
	}
	if s.kern != nil {
		s.rx.Store(nil)
		s.tx.Store(nil)
		s.kern.sockPool.Put(s)
	}
	return OK
}

// listener is a bound, listening socket with an accept queue.
type listener struct {
	mu      sync.Mutex
	cond    sync.Cond // L bound to mu at construction
	backlog []*conn
	max     int
	closed  bool
	port    uint16
}

func newListener(port uint16, backlog int) *listener {
	l := &listener{max: backlog, port: port}
	l.cond.L = &l.mu
	return l
}

func (l *listener) read([]byte, int64) (int, Errno)  { return 0, EINVAL }
func (l *listener) write([]byte, int64) (int, Errno) { return 0, EINVAL }
func (l *listener) size() (int64, Errno)             { return 0, ESPIPE }
func (l *listener) seekable() bool                   { return false }

func (l *listener) close() Errno {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	return OK
}

// enqueue adds a connection attempt; it fails if the backlog is full or the
// listener is closed.
func (l *listener) enqueue(c *conn) Errno {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ECONNREFUSED
	}
	if len(l.backlog) >= l.max {
		return EAGAIN
	}
	l.backlog = append(l.backlog, c)
	l.cond.Broadcast()
	return OK
}

// accept blocks until a connection is available or the listener closes.
func (l *listener) accept() (*conn, Errno) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.backlog) == 0 {
		if l.closed {
			return nil, EINVAL
		}
		l.cond.Wait()
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, OK
}

// netStack is the kernel's loopback network: a port table of listeners.
type netStack struct {
	mu        sync.Mutex
	listeners map[uint16]*listener
}

func newNetStack() *netStack {
	return &netStack{listeners: make(map[uint16]*listener)}
}

func (ns *netStack) bind(port uint16, l *listener) Errno {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.listeners[port]; ok {
		return EADDRINUSE
	}
	ns.listeners[port] = l
	return OK
}

func (ns *netStack) lookup(port uint16) (*listener, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	l, ok := ns.listeners[port]
	return l, ok
}

func (ns *netStack) unbind(port uint16) {
	ns.mu.Lock()
	delete(ns.listeners, port)
	ns.mu.Unlock()
}
