package kernel

import "encoding/binary"

// Vectored and zero-copy transfer syscalls (writev, sendfile). Both exist
// to shrink the number of monitored records a served request costs: writev
// folds a header+body pair into one gather-write record, and sendfile moves
// file bytes straight into the destination stream's buffer so the page
// never rides a record payload at all.

// iovLenSize is the wire size of one iovec length prefix.
const iovLenSize = 4

// EncodeIovec appends the writev wire format for segs to dst and returns
// the extended slice: one little-endian u32 length per segment, followed by
// the segments' bytes concatenated. The caller passes the result as
// Call.Data with Args[1] = len(segs). Guests serving a constant response
// encode it once and reuse the buffer.
func EncodeIovec(dst []byte, segs ...[]byte) []byte {
	for _, s := range segs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	}
	for _, s := range segs {
		dst = append(dst, s...)
	}
	return dst
}

// decodeIovec validates the iovec wire format against the declared segment
// count and returns the flat payload (the concatenated segment bytes). The
// segment lengths must sum exactly to the remaining bytes — a trailing gap
// or overhang is EINVAL, not silence.
func decodeIovec(data []byte, cnt int) ([]byte, Errno) {
	// Bound by division, not cnt*iovLenSize: the count arrives as a raw
	// guest-controlled Args word, and the multiplication would wrap for
	// huge counts, sailing past the length check into the prefix loop.
	if cnt < 0 || cnt > len(data)/iovLenSize {
		return nil, EINVAL
	}
	sum := 0
	for i := 0; i < cnt; i++ {
		sum += int(binary.LittleEndian.Uint32(data[i*iovLenSize:]))
	}
	payload := data[cnt*iovLenSize:]
	if sum != len(payload) {
		return nil, EINVAL
	}
	return payload, OK
}

// doWritev implements SysWritev: Args[0] fd, Args[1] iovec count, Data the
// iovec wire format. The segments are contiguous on the wire, so once the
// vector is validated the transfer is a single gather-write of the flat
// payload — through the same stream/seekable paths (and the same
// EINTR/short-count semantics) as SysWrite. Val is the payload bytes
// written, excluding the length prefixes.
func (k *Kernel) doWritev(p *Proc, c Call) Ret {
	payload, errno := decodeIovec(c.Data, int(c.Args[1]))
	if errno != OK {
		return Ret{Err: errno}
	}
	return k.doWrite(p, Call{Nr: SysWrite, Args: c.Args, Data: payload, Tid: c.Tid})
}

// fileSender is implemented by stream objects that can pull bytes straight
// out of an inode into their own buffer — the zero-copy half of sendfile:
// the file bytes are copied exactly once (inode → pipe buffer), never
// through a guest-visible intermediate.
type fileSender interface {
	sendFromFile(ino *inode, off int64, n int, w blocker) (int, Errno)
}

// doSendfile implements SysSendfile: transfer Args[3] bytes of the regular
// file Args[1] into the stream Args[0], starting at file offset Args[2] —
// or, when Args[2] is SendfileCurOffset, at the in-fd's open-file-
// description offset, which is then advanced by the bytes sent UNDER THE
// DESCRIPTION LOCK. The lock is held across the transfer, serializing
// concurrent current-offset senders on the same description exactly like
// Linux serializes f_pos — which is what makes fork'd workers sharing one
// inherited descriptor carve the file into disjoint ranges. An explicit
// offset leaves the description offset untouched (Linux sendfile(2) with a
// non-NULL offset pointer). Val is the byte count actually sent; a transfer
// interrupted after partial progress returns the short count with no error,
// and EINTR only on zero progress, like every stream write here.
func (k *Kernel) doSendfile(p *Proc, c Call) Ret {
	outRef, errno := p.lookupFD(int(c.Args[0]))
	if errno != OK {
		return Ret{Err: errno}
	}
	inRef, errno := p.lookupFD(int(c.Args[1]))
	if errno != OK {
		return Ret{Err: errno}
	}
	snd, ok := outRef.obj.(fileSender)
	if !ok {
		return Ret{Err: EINVAL} // out-fd must be a stream (pipe/socket)
	}
	if outRef.stale() {
		return Ret{Err: EBADF}
	}
	f, ok := inRef.obj.(*fileObj)
	if !ok {
		return Ret{Err: EINVAL} // in-fd must be a regular file
	}
	if inRef.accessMode() == OWronly {
		return Ret{Err: EBADF}
	}
	count := int(c.Args[3])
	if count < 0 {
		return Ret{Err: EINVAL}
	}
	clamp := func(off int64) int {
		if rem := f.ino.size() - off; rem < int64(count) {
			return int(max(rem, 0))
		}
		return count
	}
	if c.Args[2] != SendfileCurOffset {
		off := int64(c.Args[2])
		if off < 0 {
			// A "negative" offset (any uint64 in int64's negative range
			// other than the SendfileCurOffset sentinel) is EINVAL, like
			// Linux — and it must be refused here: clamp() would pass it
			// through and readAt would slice the inode at a negative index.
			return Ret{Err: EINVAL}
		}
		n, werrno := snd.sendFromFile(f.ino, off, clamp(off), p.blk(c.Tid, int(c.Args[0])))
		if n == 0 && werrno != OK {
			return Ret{Err: werrno}
		}
		return Ret{Val: uint64(n)}
	}
	// Shared-offset commit: read-and-advance the description offset under
	// its lock, with the generation check that turns a sendfile racing the
	// descriptor's close into EBADF. Holding e.mu across the (possibly
	// blocking) stream write serializes f_pos movement, so two workers'
	// current-offset sendfiles never overlap ranges.
	e := inRef.ent
	e.mu.Lock()
	if e.gen.Load() != inRef.gen {
		e.mu.Unlock()
		return Ret{Err: EBADF}
	}
	off := e.offset
	n, werrno := snd.sendFromFile(f.ino, off, clamp(off), p.blk(c.Tid, int(c.Args[0])))
	e.offset = off + int64(n)
	e.mu.Unlock()
	if n == 0 && werrno != OK {
		return Ret{Err: werrno}
	}
	return Ret{Val: uint64(n)}
}
