package kernel

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/futex"
)

// Deadlock detection (DESIGN.md §11). The lockstep machinery already knows
// when a master guest thread goes to sleep: every internal blocking site —
// a futex wait, an internal pipe read/write, a waitpid, an infinite poll
// over internal descriptors — parks through code the kernel or core owns.
// A BlockBoard turns that knowledge into a detector: each such site
// registers a cell (thread → what it sleeps on) for exactly the duration of
// the sleep, and when every live master thread has a cell AND every cell
// can be proven genuinely asleep, no internal wake can ever arrive — the
// guest is deadlocked.
//
// The soundness argument is by omission: only sites that cannot be woken
// from outside the guest register cells. Timed sleeps (nanosleep, poll with
// a timeout, injected chaos delays), accept (a host Connect wakes it),
// reads on host-visible connection pipes, and monitor-internal waits never
// register — so whenever one of those could still wake a thread, the board
// sees fewer cells than live threads and stays silent. Missing
// instrumentation therefore produces false NEGATIVES only, never a false
// positive on a live workload.
//
// "Genuinely asleep" closes the wake-in-flight race: a thread that has
// been woken but not yet rescheduled still has its cell registered, so
// cell-count alone would misfire. Each site carries a proof:
//
//   - futex: the waiter count registered on the word must equal the cells
//     parked on it. Wake removes woken waiters from the queue immediately,
//     so a woken-but-running thread's cell no longer matches.
//   - pipe: every pipe broadcast bumps the pipe's wakeSeq; a cell whose
//     recorded seq is stale has a wake in flight.
//   - waitpid: same scheme against the kernel-wide tree wake sequence.
//   - poll: the poll Parker's generation; any Wake that found waiters
//     bumps it.
//
// All proofs are monotonic while the guest is quiescent, so the detector's
// verdict on a genuinely deadlocked guest is stable and deterministic: the
// same program and seed block at the same sites with the same edges, run
// after run.

// BlockKind classifies the blocking site a cell was registered at.
type BlockKind uint8

const (
	// BlockFutex is a FUTEX_WAIT on a guest sync variable.
	BlockFutex BlockKind = iota + 1
	// BlockPipeRead is a read/recv sleeping on an empty internal pipe.
	BlockPipeRead
	// BlockPipeWrite is a write/send sleeping on a full internal pipe.
	BlockPipeWrite
	// BlockWaitpid is a waitpid sleeping for a child that has not exited.
	BlockWaitpid
	// BlockPoll is an infinite-timeout poll over internal descriptors only.
	BlockPoll
)

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	switch k {
	case BlockFutex:
		return "futex"
	case BlockPipeRead:
		return "pipe-read"
	case BlockPipeWrite:
		return "pipe-write"
	case BlockWaitpid:
		return "waitpid"
	case BlockPoll:
		return "poll"
	}
	return "unknown"
}

// BlockedSite is the public snapshot of one cell: which thread sleeps
// where. Addr identifies the waited object in guest terms (futex: the sync
// variable's virtual address; waitpid: the waited pid or WaitAny; pipe and
// poll: unused — FD carries the descriptor).
type BlockedSite struct {
	Tid  int
	Kind BlockKind
	Addr uint64
	FD   int
}

// cell is one registered sleep. The site-specific proof fields below are
// what validate() checks; exactly one group is populated per kind.
type cell struct {
	site BlockedSite

	// futex proof: word's registered-waiter count via tab.
	tab  *futex.Table
	word *atomic.Uint32

	// pipe / waitpid proof: the site's wake sequence at registration.
	seqw *atomic.Uint64
	seq  uint64

	// poll proof: the poll parker's generation at Prepare.
	pk *futex.Parker
	g  uint64
}

// BlockBoard tracks which live master guest threads are asleep at internal
// blocking sites. One board serves one session's master variant; slave
// variants and unmonitored kernels carry a nil board, which every hook
// checks first — the disarmed cost on the replication hot path is one nil
// compare, preserving its 0 allocs/op invariant.
type BlockBoard struct {
	mu      sync.Mutex
	alive   []bool
	cells   []cell
	parked  []bool
	live    int
	nslots  int
	blocked int

	// onDeadlock fires at most once, with the validated snapshot.
	onDeadlock func([]BlockedSite)
	fired      bool
	closed     bool

	// checkCh nudges the watcher whenever blocked == live becomes true.
	checkCh chan struct{}
}

// NewBlockBoard builds a board for up to maxThreads guest tids and starts
// its watcher. onDeadlock is invoked at most once, from the watcher
// goroutine, with every blocked thread's site (sorted by tid). Close the
// board when the session ends.
func NewBlockBoard(maxThreads int, onDeadlock func([]BlockedSite)) *BlockBoard {
	if maxThreads < 1 {
		maxThreads = 1
	}
	b := &BlockBoard{
		alive:      make([]bool, maxThreads),
		cells:      make([]cell, maxThreads),
		parked:     make([]bool, maxThreads),
		nslots:     maxThreads,
		onDeadlock: onDeadlock,
		checkCh:    make(chan struct{}, 1),
	}
	go b.watch()
	return b
}

// Close stops the watcher. Idempotent.
func (b *BlockBoard) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		select {
		case b.checkCh <- struct{}{}:
		default:
		}
	}
	b.mu.Unlock()
}

// ThreadStart marks tid live. Call when a master guest thread begins
// running; balance with ThreadExit on every unwind path.
func (b *BlockBoard) ThreadStart(tid int) {
	if b == nil || tid < 0 || tid >= b.nslots {
		return
	}
	b.mu.Lock()
	if !b.alive[tid] {
		b.alive[tid] = true
		b.live++
	}
	b.mu.Unlock()
}

// ThreadExit marks tid gone. A thread exit can complete a deadlock (the
// remaining threads were already parked), so it nudges the watcher too.
func (b *BlockBoard) ThreadExit(tid int) {
	if b == nil || tid < 0 || tid >= b.nslots {
		return
	}
	b.mu.Lock()
	if b.alive[tid] {
		b.alive[tid] = false
		b.live--
		if b.parked[tid] {
			b.parked[tid] = false
			b.blocked--
		}
		b.maybeNudgeLocked()
	}
	b.mu.Unlock()
}

// park registers a cell for c.site.Tid and nudges the watcher if the board
// just reached full coverage. Threads register immediately before sleeping
// and deregister (unpark) immediately after returning, so a tid holds at
// most one cell at a time.
func (b *BlockBoard) park(c cell) {
	tid := c.site.Tid
	if b == nil || tid < 0 || tid >= b.nslots {
		return
	}
	b.mu.Lock()
	if !b.parked[tid] {
		b.parked[tid] = true
		b.blocked++
	}
	b.cells[tid] = c
	b.maybeNudgeLocked()
	b.mu.Unlock()
}

// unpark removes tid's cell.
func (b *BlockBoard) unpark(tid int) {
	if b == nil || tid < 0 || tid >= b.nslots {
		return
	}
	b.mu.Lock()
	if b.parked[tid] {
		b.parked[tid] = false
		b.blocked--
	}
	b.mu.Unlock()
}

// maybeNudgeLocked wakes the watcher when every live thread holds a cell.
func (b *BlockBoard) maybeNudgeLocked() {
	if b.fired || b.closed || b.live == 0 || b.blocked != b.live {
		return
	}
	select {
	case b.checkCh <- struct{}{}:
	default:
	}
}

// watch waits for full-coverage nudges and validates them. Validation can
// fail transiently (a woken thread still holds its cell); while coverage
// holds the watcher re-checks on a short backoff — a genuinely deadlocked
// guest validates on the first or second pass, and any transient state is
// broken by the runnable thread deregistering, which drops coverage.
func (b *BlockBoard) watch() {
	for range b.checkCh {
		for {
			b.mu.Lock()
			if b.fired || b.closed {
				b.mu.Unlock()
				return
			}
			if b.live == 0 || b.blocked != b.live {
				b.mu.Unlock()
				break
			}
			if b.validateLocked() {
				b.fired = true
				snap := b.snapshotLocked()
				cb := b.onDeadlock
				b.mu.Unlock()
				if cb != nil {
					cb(snap)
				}
				return
			}
			b.mu.Unlock()
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// validateLocked proves every parked cell is genuinely asleep. Caller
// holds b.mu; the per-site locks taken here (futex table, parker) are
// leaves in the lock order — nothing acquires b.mu while holding them
// except through the registration path, which never calls back in.
func (b *BlockBoard) validateLocked() bool {
	// Futex words are validated collectively: the number of cells parked
	// on a word must equal the word's registered waiter count. A woken
	// waiter is removed from the queue by Wake before it runs, so a stale
	// cell makes the counts disagree. The nested scan is O(threads²) in
	// the worst case, but it runs only at candidate quiescence — never on
	// any per-call path.
	for tid := 0; tid < b.nslots; tid++ {
		if !b.parked[tid] || !b.alive[tid] {
			continue
		}
		c := &b.cells[tid]
		switch c.site.Kind {
		case BlockFutex:
			// Count this word's cells once, at its first (lowest-tid) cell.
			first := true
			cells := 0
			for t2 := 0; t2 < b.nslots; t2++ {
				if !b.parked[t2] || !b.alive[t2] {
					continue
				}
				c2 := &b.cells[t2]
				if c2.site.Kind != BlockFutex || c2.word != c.word {
					continue
				}
				if t2 < tid {
					first = false
					break
				}
				cells++
			}
			if first && c.tab.Waiters(c.word) != cells {
				return false
			}
		case BlockPipeRead, BlockPipeWrite, BlockWaitpid:
			if c.seqw.Load() != c.seq {
				return false
			}
		case BlockPoll:
			if c.pk.Gen() != c.g {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// snapshotLocked copies the blocked sites, ordered by tid.
func (b *BlockBoard) snapshotLocked() []BlockedSite {
	out := make([]BlockedSite, 0, b.blocked)
	for tid := 0; tid < b.nslots; tid++ {
		if b.parked[tid] && b.alive[tid] {
			out = append(out, b.cells[tid].site)
		}
	}
	return out
}

// FutexPark registers a futex sleep: tid is about to Wait on word (guest
// address addr) in tab. Balance with FutexUnpark when the wait returns.
// Exported because the futex slow path lives in core, not the kernel.
func (b *BlockBoard) FutexPark(tid int, addr uint64, tab *futex.Table, word *atomic.Uint32) {
	if b == nil {
		return
	}
	b.park(cell{
		site: BlockedSite{Tid: tid, Kind: BlockFutex, Addr: addr},
		tab:  tab, word: word,
	})
}

// FutexUnpark removes tid's futex cell.
func (b *BlockBoard) FutexUnpark(tid int) { b.unpark(tid) }

// blocker carries a blocking call's identity into the kernel's sleep
// sites: the interrupt predicate every blocking loop already consulted,
// plus — when the calling thread belongs to a board-armed master process —
// the board, tid and fd needed to register a cell. The zero blocker (host
// side ClientConn I/O, unmonitored kernels) blocks exactly as before and
// registers nothing.
type blocker struct {
	intr  func() bool
	board *BlockBoard
	tid   int
	fd    int
}

// interrupted reports whether the blocked call should give up (EINTR).
func (w blocker) interrupted() bool { return w.intr != nil && w.intr() }

// pipePark registers a pipe sleep, reading the pipe's wake sequence the
// caller sampled under the pipe lock.
func (w blocker) pipePark(kind BlockKind, seqw *atomic.Uint64, seq uint64) {
	if w.board == nil {
		return
	}
	w.board.park(cell{
		site: BlockedSite{Tid: w.tid, Kind: kind, FD: w.fd},
		seqw: seqw, seq: seq,
	})
}

// unpark removes the caller's cell after any park.
func (w blocker) unpark() {
	if w.board != nil {
		w.board.unpark(w.tid)
	}
}
