package kernel

import "sync"

// PageSize is the simulated page size.
const PageSize = 4096

// AddressSpace tracks a process's (variant's) virtual memory layout: the
// program break and the mmap regions. Each variant has its own, with its
// own randomized bases, so the addresses returned by brk/mmap differ across
// variants exactly as they do under ASLR — which is why the MVEE must never
// compare raw pointer values across variants.
type AddressSpace struct {
	mu       sync.Mutex
	brkBase  uint64
	brk      uint64
	mmapBase uint64
	mmapNext uint64
	regions  map[uint64]uint64 // start -> length
}

// NewAddressSpace creates an address space with the given (randomized)
// heap and mmap bases.
func NewAddressSpace(brkBase, mmapBase uint64) *AddressSpace {
	return &AddressSpace{
		brkBase:  brkBase,
		brk:      brkBase,
		mmapBase: mmapBase,
		mmapNext: mmapBase,
		regions:  make(map[uint64]uint64),
	}
}

// Brk implements sys_brk: with arg 0 it reports the current break;
// otherwise it moves the break, refusing to go below the base.
func (as *AddressSpace) Brk(addr uint64) uint64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	if addr == 0 {
		return as.brk
	}
	if addr < as.brkBase {
		return as.brk // refused; Linux returns the unchanged break
	}
	as.brk = addr
	return as.brk
}

// Mmap implements an anonymous mapping: it reserves length bytes (rounded
// to pages) and returns the start address.
func (as *AddressSpace) Mmap(length uint64) (uint64, Errno) {
	if length == 0 {
		return 0, EINVAL
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	n := (length + PageSize - 1) &^ uint64(PageSize-1)
	start := as.mmapNext
	as.mmapNext += n + PageSize // guard page between regions
	as.regions[start] = n
	return start, OK
}

// Munmap removes a previously mapped region. Partial unmaps are not
// supported (EINVAL), which the benchmarks never need.
func (as *AddressSpace) Munmap(start, length uint64) Errno {
	as.mu.Lock()
	defer as.mu.Unlock()
	n, ok := as.regions[start]
	if !ok {
		return EINVAL
	}
	want := (length + PageSize - 1) &^ uint64(PageSize-1)
	if want != n {
		return EINVAL
	}
	delete(as.regions, start)
	return OK
}

// Mapped reports whether addr falls inside any live mmap region or the heap.
func (as *AddressSpace) Mapped(addr uint64) bool {
	as.mu.Lock()
	defer as.mu.Unlock()
	if addr >= as.brkBase && addr < as.brk {
		return true
	}
	for start, n := range as.regions {
		if addr >= start && addr < start+n {
			return true
		}
	}
	return false
}

// Regions returns the number of live mmap regions (for tests).
func (as *AddressSpace) Regions() int {
	as.mu.Lock()
	defer as.mu.Unlock()
	return len(as.regions)
}
