package kernel

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// startEchoServer runs a raw-kernel echo server (no monitor): accept, read
// one message, write it back, close. It returns a stop function.
func startEchoServer(t *testing.T, k *Kernel, port uint16) func() {
	t.Helper()
	p := k.NewProc(0x1000_0000, 0x7000_0000)
	sfd := k.Do(p, Call{Nr: SysSocket})
	if !sfd.Ok() {
		t.Fatalf("socket: %v", sfd.Err)
	}
	if r := k.Do(p, Call{Nr: SysListen, Args: [6]uint64{sfd.Val, uint64(port), 64}}); !r.Ok() {
		t.Fatalf("listen: %v", r.Err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c := k.Do(p, Call{Nr: SysAccept, Args: [6]uint64{sfd.Val}})
			if !c.Ok() {
				return // listener closed
			}
			msg := k.Do(p, Call{Nr: SysRecv, Args: [6]uint64{c.Val, 4096}})
			if msg.Ok() && len(msg.Data) > 0 {
				k.Do(p, Call{Nr: SysSend, Args: [6]uint64{c.Val}, Data: msg.Data})
			}
			k.Do(p, Call{Nr: SysClose, Args: [6]uint64{c.Val}})
		}
	}()
	return func() {
		k.CloseListener(port)
		<-done
	}
}

// Connection churn over the pooled pipes/endpoints: every connection must
// see exactly its own bytes. This is the safety property recycling could
// break — a pipe or socket endpoint handed to a new connection while the
// old one still holds a reference would bleed payloads across connections.
func TestConnectionChurnNoCrossTalk(t *testing.T) {
	k := New()
	stop := startEchoServer(t, k, 80)
	defer stop()
	for i := 0; i < 300; i++ {
		cc, errno := k.Connect(80)
		if errno != OK {
			t.Fatalf("connect %d: %v", i, errno)
		}
		want := fmt.Sprintf("payload-%d", i)
		if _, err := cc.Write([]byte(want)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		buf := make([]byte, 64)
		n, err := cc.Read(buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(buf[:n]) != want {
			t.Fatalf("connection %d echoed %q, want %q (cross-connection bleed)", i, buf[:n], want)
		}
		cc.Close()
		cc.Close() // idempotent: the watchdog/defer double-close pattern
	}
}

// The same property under concurrency, for the race detector: pooled
// objects must never be visible to two connections at once.
func TestConnectionChurnConcurrent(t *testing.T) {
	k := New()
	stop := startEchoServer(t, k, 81)
	defer stop()
	const clients, rounds = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < rounds; i++ {
				cc, errno := k.Connect(81)
				if errno != OK {
					errs <- fmt.Errorf("client %d connect %d: %v", c, i, errno)
					return
				}
				want := fmt.Sprintf("c%d-r%d", c, i)
				cc.Write([]byte(want))
				n, err := cc.Read(buf)
				if err != nil || string(buf[:n]) != want {
					cc.Close()
					errs <- fmt.Errorf("client %d round %d: got %q err %v, want %q", c, i, buf[:n], err, want)
					return
				}
				cc.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// pipe2 descriptors recycle through the same pool; closing both ends must
// return the pipe without disturbing a later pipe's data.
func TestPipe2Recycling(t *testing.T) {
	k := New()
	p := k.NewProc(0x1000_0000, 0x7000_0000)
	for i := 0; i < 50; i++ {
		r := k.Do(p, Call{Nr: SysPipe2})
		if !r.Ok() {
			t.Fatalf("pipe2 %d: %v", i, r.Err)
		}
		rfd, wfd := r.Val, r.Val2
		msg := fmt.Sprintf("pipe-%d", i)
		if w := k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{wfd}, Data: []byte(msg)}); !w.Ok() {
			t.Fatalf("write %d: %v", i, w.Err)
		}
		rd := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, 64}})
		if !rd.Ok() || string(rd.Data) != msg {
			t.Fatalf("pipe %d read %q (err %v), want %q", i, rd.Data, rd.Err, msg)
		}
		k.Do(p, Call{Nr: SysClose, Args: [6]uint64{rfd}})
		k.Do(p, Call{Nr: SysClose, Args: [6]uint64{wfd}})
	}
	if n := p.OpenFDs(); n != 0 {
		t.Fatalf("%d descriptors left open, want 0 (none leaked)", n)
	}
}

// A ClientConn operation arriving after its pipes were recycled into a
// new connection must get EBADF, not the new connection's bytes — the
// gateway-watchdog race the generation stamps exist for.
func TestStaleClientConnHandleGetsEBADF(t *testing.T) {
	k := New()
	stop := startEchoServer(t, k, 82)
	defer stop()
	do := func(payload string) ClientConn {
		cc, errno := k.Connect(82)
		if errno != OK {
			t.Fatalf("connect: %v", errno)
		}
		cc.Write([]byte(payload))
		buf := make([]byte, 64)
		if n, err := cc.Read(buf); err != nil || string(buf[:n]) != payload {
			t.Fatalf("echo: got %q err %v", buf[:n], err)
		}
		return cc
	}
	stale := do("first")
	stale.Close()
	// Churn fresh connections so the stale conn's pipes recycle into new
	// connections (per-kernel pool; if the pool happened to drop them,
	// the dead pipe's EOF/EBADF is equally acceptable below).
	for i := 0; i < 8; i++ {
		do(fmt.Sprintf("churn-%d", i)).Close()
	}
	buf := make([]byte, 64)
	// The one outcome that must never happen is the stale handle touching
	// a successor connection: Read must yield no bytes (EBADF on a
	// recycled pipe, EOF on a merely dead one), Write must not land.
	if n, err := stale.Read(buf); n != 0 || (err != nil && err != EBADF) {
		t.Fatalf("stale Read returned (%d, %v) with %q, want no data", n, err, buf[:n])
	}
	if n, err := stale.Write([]byte("intruder")); n != 0 || (err != EBADF && err != EPIPE) {
		t.Fatalf("stale Write returned (%d, %v), want (0, EBADF|EPIPE)", n, err)
	}
	stale.Close() // late double-close (the watchdog pattern): must be a no-op
	// The pool still serves clean connections afterwards.
	do("after").Close()
}

// dup(2)'d sockets share one pooled endpoint; closing one descriptor must
// neither tear down the connection nor recycle the object while the other
// descriptor still references it — only the last close finalizes (struct
// file f_count semantics).
func TestDupSocketCloseOncePooled(t *testing.T) {
	k := New()
	stop := startEchoServer(t, k, 83)
	defer stop()
	p := k.NewProc(0x3000_0000, 0x7200_0000)
	sfd := k.Do(p, Call{Nr: SysSocket})
	if r := k.Do(p, Call{Nr: SysConnect, Args: [6]uint64{sfd.Val, 83}}); !r.Ok() {
		t.Fatalf("connect: %v", r.Err)
	}
	dup := k.Do(p, Call{Nr: SysDup, Args: [6]uint64{sfd.Val}})
	if !dup.Ok() {
		t.Fatalf("dup: %v", dup.Err)
	}
	// Close the ORIGINAL descriptor; the dup must keep the connection
	// alive and usable.
	if r := k.Do(p, Call{Nr: SysClose, Args: [6]uint64{sfd.Val}}); !r.Ok() {
		t.Fatalf("close original: %v", r.Err)
	}
	if w := k.Do(p, Call{Nr: SysSend, Args: [6]uint64{dup.Val}, Data: []byte("via-dup")}); !w.Ok() {
		t.Fatalf("send via dup after closing original: %v", w.Err)
	}
	rd := k.Do(p, Call{Nr: SysRecv, Args: [6]uint64{dup.Val, 64}})
	if !rd.Ok() || string(rd.Data) != "via-dup" {
		t.Fatalf("recv via dup: %q (err %v)", rd.Data, rd.Err)
	}
	// Last close finalizes; afterwards churn must still be clean (the
	// endpoint recycles exactly once — a premature pool-put here used to
	// let this close tear down a successor connection).
	if r := k.Do(p, Call{Nr: SysClose, Args: [6]uint64{dup.Val}}); !r.Ok() {
		t.Fatalf("close dup: %v", r.Err)
	}
	for i := 0; i < 4; i++ {
		cc, errno := k.Connect(83)
		if errno != OK {
			t.Fatalf("post-dup connect %d: %v", i, errno)
		}
		cc.Write([]byte("after"))
		buf := make([]byte, 16)
		if n, err := cc.Read(buf); err != nil || string(buf[:n]) != "after" {
			t.Fatalf("post-dup echo %d: %q err %v", i, buf[:n], err)
		}
		cc.Close()
	}
}

// connect(2) with a bad descriptor must fail WITHOUT leaving a ghost
// connection in the listener backlog: the ghost used to wedge the
// server's accept loop in a recv nobody would ever satisfy, pinning the
// pipes forever.
func TestConnectBadFDLeavesNoGhostConnection(t *testing.T) {
	k := New()
	stop := startEchoServer(t, k, 84)
	p := k.NewProc(0x3000_0000, 0x7200_0000)
	if r := k.Do(p, Call{Nr: SysConnect, Args: [6]uint64{9999, 84}}); r.Err != EBADF {
		t.Fatalf("connect with bad fd: %v, want EBADF", r.Err)
	}
	// A real request must be served (a ghost ahead of it would absorb the
	// accept), and the server must wind down cleanly (a ghost would leave
	// it stuck in recv, hanging stop()).
	cc, errno := k.Connect(84)
	if errno != OK {
		t.Fatalf("connect: %v", errno)
	}
	cc.Write([]byte("real"))
	buf := make([]byte, 16)
	if n, err := cc.Read(buf); err != nil || string(buf[:n]) != "real" {
		t.Fatalf("echo after bad-fd connect: %q err %v", buf[:n], err)
	}
	cc.Close()
	done := make(chan struct{})
	go func() {
		stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server wedged on a ghost connection from the failed connect")
	}
}
