package kernel

import "sync/atomic"

// objHeader is the uniform header every descriptor-visible object embeds
// (files, pipes, sockets, listeners). It carries the two pieces of state
// the descriptor layer needs to treat all objects alike:
//
//   - kern: the owning kernel, through which pooled objects recycle and
//     through which readiness changes reach parked pollers (pollWake).
//     Nil for objects built outside a kernel (bare newPipe in tests).
//   - gen: the object's reuse generation. Pooled objects bump it when
//     their lifetime moves on (pipes at re-acquisition, sockets and fd
//     entries at retirement); holders stamp themselves with the
//     generation at acquisition and revalidate it per operation, so a
//     stale handle gets EBADF instead of a successor's state.
//
// The header is what SysPoll multiplexes over: every object answers
// poll() with a readiness set, and every state change that could flip
// readiness routes a wakeup through the header's kernel to the pollers
// parked on the kernel's poll wait set.
type objHeader struct {
	kern *Kernel
	gen  atomic.Uint64
}

// header returns the embedded header; objects expose it through the
// object interface by delegation.
func (h *objHeader) header() *objHeader { return h }

// generation returns the current reuse generation.
func (h *objHeader) generation() uint64 { return h.gen.Load() }

// retire advances the reuse generation, invalidating every handle stamped
// with an earlier one.
func (h *objHeader) retire() { h.gen.Add(1) }

// pollWake notifies pollers parked on the owning kernel's poll wait set
// that this object's readiness may have changed. One atomic load when
// nobody is polling — cheap enough to call on every pipe/listener state
// change.
func (h *objHeader) pollWake() {
	if h.kern != nil {
		h.kern.pollPark.Wake()
	}
}

// object is anything a file descriptor can refer to.
type object interface {
	// header exposes the uniform object header (generation + kernel).
	header() *objHeader
	// read blocks until data is available (pipes/sockets) or returns
	// immediately (files). n==0 with OK means end of stream.
	read(p []byte, off int64) (n int, errno Errno)
	write(p []byte, off int64) (n int, errno Errno)
	size() (int64, Errno)
	close() Errno
	seekable() bool
	// poll reports the object's current readiness set (Poll* bits),
	// without blocking. SysPoll masks it against the caller's interest.
	poll() uint32
}
