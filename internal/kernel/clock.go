package kernel

import (
	"sort"
	"sync"
	"time"
)

// Clock is the kernel's time source. Every deadline site in the kernel —
// nanosleep, poll timeouts, gettimeofday, fault-injection delays — reads
// time and arms timers through this interface instead of the time package,
// so tests and soaks can substitute virtual or accelerated time for wall
// time. The fleet watchdog accepts a Clock too, which is what lets a whole
// chaos soak run at -time-scale 10 without dilating the test's real-time
// budget.
type Clock interface {
	// Now returns the current instant on this clock.
	Now() time.Time
	// AfterFunc arms a one-shot timer that calls f once d has elapsed on
	// this clock. f runs on an unspecified goroutine, like time.AfterFunc.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a stoppable one-shot timer handle, the Clock-level analogue of
// *time.Timer restricted to what the kernel needs.
type Timer interface {
	// Stop cancels the timer; it reports whether the cancellation
	// prevented the callback from firing.
	Stop() bool
}

// realClock is the default Clock: straight delegation to the time package.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return time.AfterFunc(d, f)
}

// RealClock returns the wall-clock time source, the default for every
// kernel.
func RealClock() Clock { return realClock{} }

// NewScaledClock returns a clock on which time passes scale times faster
// than wall time: Now advances at scale× real rate and timers fire after
// d/scale of real time. A 10× clock turns a 2 ms injected latency into
// 200 µs of real delay — the -time-scale knob. Scale values at or below
// zero (and exactly 1) degenerate to the real clock.
func NewScaledClock(scale float64) Clock {
	if scale <= 0 || scale == 1 {
		return realClock{}
	}
	return &scaledClock{base: time.Now(), scale: scale}
}

type scaledClock struct {
	base  time.Time
	scale float64
}

func (c *scaledClock) Now() time.Time {
	return c.base.Add(time.Duration(float64(time.Since(c.base)) * c.scale))
}

func (c *scaledClock) AfterFunc(d time.Duration, f func()) Timer {
	real := time.Duration(float64(d) / c.scale)
	if real <= 0 {
		real = 1
	}
	return time.AfterFunc(real, f)
}

// VirtualClock is a manually advanced clock for deterministic tests: time
// stands perfectly still until Advance moves it, at which point every timer
// whose deadline was reached fires synchronously (in deadline order, on the
// caller's goroutine) before Advance returns. This is what converts "sleep
// 20 ms and hope the poller timed out" tests into exact, flake-free ones.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*virtualTimer
}

// NewVirtualClock returns a virtual clock positioned at an arbitrary fixed
// epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: time.Unix(1000000, 0)}
}

// Now returns the virtual instant; it changes only via Advance.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc registers f to run when the virtual clock reaches now+d. A
// non-positive d fires synchronously, matching time.AfterFunc's semantics
// closely enough for deadline loops.
func (c *VirtualClock) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	t := &virtualTimer{clock: c, when: c.now.Add(d), f: f}
	if d <= 0 {
		t.fired = true
		c.mu.Unlock()
		f()
		return t
	}
	c.timers = append(c.timers, t)
	c.mu.Unlock()
	return t
}

// Timers reports how many timers are currently armed (registered, not yet
// fired or stopped). Deterministic tests use it to know a deadline loop
// has armed its wake before Advancing past the deadline — advancing
// earlier could fire into the void while the sleeper is still computing
// its remaining time. (A wake landing between the sleeper's Prepare and
// Park is safe: the parker protocol absorbs it.)
func (c *VirtualClock) Timers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// Advance moves the clock forward by d and fires every timer whose deadline
// is now due, in deadline order, before returning.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []*virtualTimer
	remaining := c.timers[:0]
	for _, t := range c.timers {
		if !t.when.After(now) {
			t.fired = true
			due = append(due, t)
		} else {
			remaining = append(remaining, t)
		}
	}
	// Zero the freed tail so fired timers don't stay pinned by the
	// backing array.
	for i := len(remaining); i < len(c.timers); i++ {
		c.timers[i] = nil
	}
	c.timers = remaining
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].when.Before(due[j].when) })
	for _, t := range due {
		t.f()
	}
}

type virtualTimer struct {
	clock *VirtualClock
	when  time.Time
	f     func()
	fired bool
}

// Stop deregisters the timer; it reports whether the timer had not yet
// fired.
func (t *virtualTimer) Stop() bool {
	c := t.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.fired {
		return false
	}
	t.fired = true
	for i, x := range c.timers {
		if x == t {
			last := len(c.timers) - 1
			c.timers[i] = c.timers[last]
			c.timers[last] = nil
			c.timers = c.timers[:last]
			break
		}
	}
	return true
}
