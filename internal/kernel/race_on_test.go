//go:build race

package kernel

// raceEnabled reports whether the race detector is active. Alloc-count
// assertions over sync.Pool-backed paths are skipped under -race: the
// runtime deliberately drops a fraction of Pool.Put calls in race mode,
// so pooled objects re-allocate by design there.
const raceEnabled = true
