package kernel

import (
	"sync"
)

// inode is a regular file's storage. The file system is flat (path ->
// inode), which covers everything the benchmarks and the web server need.
type inode struct {
	mu   sync.RWMutex
	path string
	data []byte
}

func (ino *inode) size() int64 {
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	return int64(len(ino.data))
}

func (ino *inode) readAt(p []byte, off int64) int {
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	if off >= int64(len(ino.data)) {
		return 0
	}
	return copy(p, ino.data[off:])
}

func (ino *inode) writeAt(p []byte, off int64) int {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(ino.data)) {
		grown := make([]byte, end)
		copy(grown, ino.data)
		ino.data = grown
	}
	copy(ino.data[off:], p)
	return len(p)
}

func (ino *inode) truncate(n int64) {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	if n <= int64(len(ino.data)) {
		ino.data = ino.data[:n]
		return
	}
	grown := make([]byte, n)
	copy(grown, ino.data)
	ino.data = grown
}

// fileSystem is the shared, in-memory file system: the "outside world" that
// all variants observe through the master's I/O.
type fileSystem struct {
	mu     sync.Mutex
	inodes map[string]*inode
}

func newFileSystem() *fileSystem {
	return &fileSystem{inodes: make(map[string]*inode)}
}

func (fs *fileSystem) lookup(path string) (*inode, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, ok := fs.inodes[path]
	return ino, ok
}

func (fs *fileSystem) create(path string, excl bool) (*inode, Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if ino, ok := fs.inodes[path]; ok {
		if excl {
			return nil, EEXIST
		}
		return ino, OK
	}
	ino := &inode{path: path}
	fs.inodes[path] = ino
	return ino, OK
}

func (fs *fileSystem) unlink(path string) Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.inodes[path]; !ok {
		return ENOENT
	}
	delete(fs.inodes, path)
	return OK
}

// object is anything a file descriptor can refer to.
type object interface {
	// read blocks until data is available (pipes/sockets) or returns
	// immediately (files). n==0 with OK means end of stream.
	read(p []byte, off int64) (n int, errno Errno)
	write(p []byte, off int64) (n int, errno Errno)
	size() (int64, Errno)
	close() Errno
	seekable() bool
}

// fileObj adapts an inode to the object interface.
type fileObj struct {
	ino   *inode
	flags int
}

func (f *fileObj) read(p []byte, off int64) (int, Errno) {
	if f.flags&0x3 == OWronly {
		return 0, EBADF
	}
	return f.ino.readAt(p, off), OK
}

func (f *fileObj) write(p []byte, off int64) (int, Errno) {
	if f.flags&0x3 == ORdonly {
		return 0, EBADF
	}
	return f.ino.writeAt(p, off), OK
}

func (f *fileObj) size() (int64, Errno) { return f.ino.size(), OK }
func (f *fileObj) close() Errno         { return OK }
func (f *fileObj) seekable() bool       { return true }
