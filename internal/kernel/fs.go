package kernel

import (
	"sync"
)

// inode is a regular file's storage. The file system is flat (path ->
// inode), which covers everything the benchmarks and the web server need.
type inode struct {
	mu   sync.RWMutex
	path string
	data []byte
}

func (ino *inode) size() int64 {
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	return int64(len(ino.data))
}

func (ino *inode) readAt(p []byte, off int64) int {
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	if off >= int64(len(ino.data)) {
		return 0
	}
	return copy(p, ino.data[off:])
}

func (ino *inode) writeAt(p []byte, off int64) int {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(ino.data)) {
		grown := make([]byte, end)
		copy(grown, ino.data)
		ino.data = grown
	}
	copy(ino.data[off:], p)
	return len(p)
}

func (ino *inode) truncate(n int64) {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	if n <= int64(len(ino.data)) {
		ino.data = ino.data[:n]
		return
	}
	grown := make([]byte, n)
	copy(grown, ino.data)
	ino.data = grown
}

// fileSystem is the shared, in-memory file system: the "outside world" that
// all variants observe through the master's I/O.
type fileSystem struct {
	mu     sync.Mutex
	inodes map[string]*inode
}

func newFileSystem() *fileSystem {
	return &fileSystem{inodes: make(map[string]*inode)}
}

func (fs *fileSystem) lookup(path string) (*inode, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, ok := fs.inodes[path]
	return ino, ok
}

func (fs *fileSystem) create(path string, excl bool) (*inode, Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if ino, ok := fs.inodes[path]; ok {
		if excl {
			return nil, EEXIST
		}
		return ino, OK
	}
	ino := &inode{path: path}
	fs.inodes[path] = ino
	return ino, OK
}

func (fs *fileSystem) unlink(path string) Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.inodes[path]; !ok {
		return ENOENT
	}
	delete(fs.inodes, path)
	return OK
}

// fileObj adapts an inode to the object interface. It embeds the same
// uniform header pipes and sockets carry; file operations never block, so
// its poll readiness is constant. Access-mode enforcement does not live
// here: the open flags belong to the open file description (openFile),
// the state dup'd descriptors share, and the kernel's read/write handlers
// check them there.
type fileObj struct {
	hdr objHeader
	ino *inode
}

func (f *fileObj) header() *objHeader { return &f.hdr }

func (f *fileObj) read(p []byte, off int64) (int, Errno) {
	return f.ino.readAt(p, off), OK
}

func (f *fileObj) write(p []byte, off int64) (int, Errno) {
	return f.ino.writeAt(p, off), OK
}

func (f *fileObj) size() (int64, Errno) { return f.ino.size(), OK }
func (f *fileObj) close() Errno         { return OK }
func (f *fileObj) seekable() bool       { return true }

// poll: regular files are always readable and writable (reads and writes
// never block), matching Linux poll(2) on regular files.
func (f *fileObj) poll() uint32 { return PollIn | PollOut }
