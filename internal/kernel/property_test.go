package kernel

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: a pipe is a faithful FIFO byte stream for any chunking of
// writes and reads.
func TestPipeFIFOProperty(t *testing.T) {
	f := func(chunks [][]byte, readSizes []uint8) bool {
		p := newPipe()
		gen := p.generation()
		var want []byte
		total := 0
		for _, c := range chunks {
			if total+len(c) > pipeBufSize/2 {
				break // stay below capacity: this test is single-threaded
			}
			n, errno := p.write(gen, c, blocker{})
			if errno != OK || n != len(c) {
				return false
			}
			want = append(want, c...)
			total += len(c)
		}
		p.closeWrite(gen)
		var got []byte
		i := 0
		for {
			size := 1
			if len(readSizes) > 0 {
				size = int(readSizes[i%len(readSizes)])%64 + 1
			}
			buf := make([]byte, size)
			n, errno := p.read(gen, buf, blocker{})
			if errno != OK {
				return false
			}
			if n == 0 {
				break // EOF
			}
			got = append(got, buf[:n]...)
			i++
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: file write-then-read round-trips at any offset.
func TestInodeReadWriteProperty(t *testing.T) {
	f := func(data []byte, offRaw uint16) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(offRaw % 4096)
		ino := &inode{}
		if n := ino.writeAt(data, off); n != len(data) {
			return false
		}
		if ino.size() != off+int64(len(data)) {
			return false
		}
		buf := make([]byte, len(data))
		if n := ino.readAt(buf, off); n != len(data) {
			return false
		}
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: descriptor allocation always picks the lowest free fd >= 3.
func TestLowestFreeFDProperty(t *testing.T) {
	f := func(closesRaw []uint8) bool {
		k := New()
		p := k.NewProc(0x1000, 0x7000_0000)
		// Open 16 files: fds 3..18.
		for i := 0; i < 16; i++ {
			r := k.Do(p, Call{Nr: SysOpen, Args: [6]uint64{OCreat | ORdwr},
				Data: []byte{'/', byte('a' + i)}})
			if !r.Ok() {
				return false
			}
		}
		// Close an arbitrary subset.
		closed := map[int]bool{}
		for _, c := range closesRaw {
			fd := 3 + int(c%16)
			if !closed[fd] {
				k.Do(p, Call{Nr: SysClose, Args: [6]uint64{uint64(fd)}})
				closed[fd] = true
			}
		}
		// Reopen one file: must land on the lowest closed fd (or 19).
		lowest := 19
		for fd := 3; fd < 19; fd++ {
			if closed[fd] {
				lowest = fd
				break
			}
		}
		r := k.Do(p, Call{Nr: SysOpen, Args: [6]uint64{OCreat | ORdwr}, Data: []byte("/zz")})
		return r.Ok() && int(r.Val) == lowest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Brk never returns a value below the base, and Mmap regions
// never overlap.
func TestAddressSpaceProperties(t *testing.T) {
	f := func(reqs []uint32) bool {
		as := NewAddressSpace(0x10000, 0x7000_0000)
		type region struct{ start, end uint64 }
		var regions []region
		for _, r := range reqs {
			n := uint64(r%(1<<20) + 1)
			addr, errno := as.Mmap(n)
			if errno != OK {
				return false
			}
			end := addr + ((n + PageSize - 1) &^ uint64(PageSize-1))
			for _, x := range regions {
				if addr < x.end && x.start < end {
					return false // overlap
				}
			}
			regions = append(regions, region{addr, end})
		}
		return as.Brk(0) >= 0x10000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
