package kernel

import "testing"

// Unit coverage for the EINTR surfaces of the blocking primitives: the
// interrupt predicate only bites when the call would otherwise sleep, and
// a write that already transferred bytes returns the short count with NO
// error (POSIX partial-write semantics — (n>0, EINTR) would make the
// standard retry idiom resend and duplicate bytes).

func TestPipeWriteEINTROnlyAtZeroProgress(t *testing.T) {
	p := newPipe()
	gen := p.generation()
	always := blocker{intr: func() bool { return true }}

	// A write that fits completes fully even with a signal pending.
	if n, errno := p.write(gen, make([]byte, 2048), always); errno != OK || n != 2048 {
		t.Fatalf("fitting write = (%d, %v), want (2048, OK)", n, errno)
	}
	// Fill to capacity, then write more: partial progress → short count, OK.
	if n, errno := p.write(gen, make([]byte, pipeBufSize), always); errno != OK || n != pipeBufSize-2048 {
		t.Fatalf("partial write = (%d, %v), want (%d, OK)", n, errno, pipeBufSize-2048)
	}
	// Full pipe, zero progress → EINTR.
	if n, errno := p.write(gen, []byte("x"), always); errno != EINTR || n != 0 {
		t.Fatalf("blocked write = (%d, %v), want (0, EINTR)", n, errno)
	}
}

func TestPipeReadEINTRBeforeBlocking(t *testing.T) {
	p := newPipe()
	gen := p.generation()
	always := blocker{intr: func() bool { return true }}

	// Empty pipe + pending signal: EINTR, deterministically, before any wait.
	if _, errno := p.readAvailable(gen, 16, always); errno != EINTR {
		t.Fatalf("empty read = %v, want EINTR", errno)
	}
	// Data pending beats the signal (poll-with-ready-fds semantics).
	p.write(gen, []byte("data"), blocker{})
	if out, errno := p.readAvailable(gen, 16, always); errno != OK || string(out) != "data" {
		t.Fatalf("ready read = (%q, %v), want (\"data\", OK)", out, errno)
	}
}

func TestTakeSignalOrderAndMasks(t *testing.T) {
	p := NewProc(1, NewAddressSpace(0, 0))
	if got := p.TakeSignal(); got != 0 {
		t.Fatalf("TakeSignal on empty set = %d", got)
	}
	p.sendSignal(SIGTERM)
	p.sendSignal(SIGINT)
	if got := p.TakeSignal(); got != SIGINT {
		t.Fatalf("first delivery = %d, want SIGINT (lowest wins)", got)
	}
	if got := p.TakeSignal(); got != SIGTERM {
		t.Fatalf("second delivery = %d, want SIGTERM", got)
	}
	// SIGCHLD is default-ignored: discarded at send time.
	p.sendSignal(SIGCHLD)
	if got := p.TakeSignal(); got != 0 {
		t.Fatalf("default-ignored SIGCHLD delivered as %d", got)
	}
	// A blocked signal stays pending but undeliverable; AckSignal clears it.
	p.sigBlocked.Store(sigBit(SIGUSR1))
	p.sendSignal(SIGUSR1)
	if p.signalPending() {
		t.Fatal("blocked signal reported deliverable")
	}
	p.AckSignal(SIGUSR1)
	p.sigBlocked.Store(0)
	if p.signalPending() {
		t.Fatal("acked signal still pending")
	}
}
