package kernel

import "sort"

// ProcInfo is one process's admin-plane view: identity, tree position,
// lifecycle state, and descriptor pressure. Values are copies; the snapshot
// stays valid after the process exits.
type ProcInfo struct {
	// Pid is the kernel-internal id (globally unique across variants).
	Pid int `json:"pid"`
	// Vpid is the guest-visible pid (deterministic across variants).
	Vpid int `json:"vpid"`
	// Parent is the guest-visible parent pid, 0 for a variant's root.
	Parent int `json:"parent,omitempty"`
	// State is "running", "exiting" (exit-group in progress, sibling
	// threads still unwinding), "zombie", or "reaped".
	State string `json:"state"`
	// Threads counts live threads (0 once the process exited).
	Threads int `json:"threads,omitempty"`
	// OpenFDs counts live descriptors.
	OpenFDs int `json:"open_fds"`
}

func procStateName(s int) string {
	switch s {
	case procRunning:
		return "running"
	case procZombie:
		return "zombie"
	case procReaped:
		return "reaped"
	}
	return "unknown"
}

// Snapshot returns every tracked process's ProcInfo, ordered by kernel pid.
// Consistency matches the lock structure: the proc list is copied under
// procMu, tree state is read under treeMu, descriptor counts under each
// proc's own lock — three separate acquisitions (the documented lock order
// forbids nesting them), so a snapshot racing a fork may see the child
// without its tree link for one read. Monitoring tolerates that.
func (k *Kernel) Snapshot() []ProcInfo {
	k.procMu.Lock()
	procs := make([]*Proc, 0, len(k.procs))
	for _, p := range k.procs {
		procs = append(procs, p)
	}
	k.procMu.Unlock()
	sort.Slice(procs, func(i, j int) bool { return procs[i].Pid < procs[j].Pid })

	out := make([]ProcInfo, len(procs))
	k.treeMu.Lock()
	for i, p := range procs {
		state := procStateName(p.state)
		if p.state == procRunning && p.exitGroup.Load() {
			state = "exiting"
		}
		out[i] = ProcInfo{Pid: p.Pid, Vpid: p.vpid, Parent: p.Parent(),
			State: state, Threads: max(p.threads, 0)}
	}
	k.treeMu.Unlock()
	for i, p := range procs {
		out[i].OpenFDs = p.OpenFDs()
	}
	return out
}
