package kernel

import "math/bits"

// Signals (DESIGN.md §2.5). The simulated kernel keeps a Linux-shaped
// per-process signal table — a pending set, a blocked mask, and per-signal
// dispositions — but delivery is deliberately NOT asynchronous: a pending
// signal is only ever taken at a monitored syscall boundary, by the
// monitor, so that "when did the signal land" is a position in the
// replicated syscall stream rather than a race. Blocking calls observe
// pending deliverable signals through Proc.sigIntr and return EINTR, which
// is what makes a kill able to interrupt a parked read/accept/poll/
// waitpid/nanosleep without tearing the object down.

// Signal numbers, matching Linux's x86-64 values for the subset the
// simulation supports.
const (
	SIGHUP  = 1
	SIGINT  = 2
	SIGQUIT = 3
	SIGKILL = 9
	SIGUSR1 = 10
	SIGUSR2 = 12
	SIGTERM = 15
	SIGCHLD = 17

	// maxSig bounds the signal number space (bits in the pending/blocked
	// masks; signal 0 is the kill(2) existence probe and never pending).
	maxSig = 31

	// SigExitGroup is the pseudo-signal the monitor stamps on a thread's
	// syscall boundary while its process is mid exit-group: the first
	// thread to exit set the flag, and every sibling observes it at its
	// next boundary and unwinds (core panics the thread out and issues
	// SysThreadExit). It deliberately lives OUTSIDE the real signal space
	// (> maxSig): it cannot be sent, blocked, ignored, or caught, and a
	// slave's AckSignal of it is a no-op by construction (sigBit returns
	// 0) — the slave's own exit-group flag is raised by its per-variant
	// execution of the same ordered exit.
	SigExitGroup = maxSig + 1
)

// Signal dispositions, as stored by SysSigaction's Args[1].
const (
	// SigDfl restores the default action: terminate the process for most
	// signals, ignore for SIGCHLD.
	SigDfl = 0
	// SigIgn discards the signal at delivery (and at send time: a signal
	// posted to a process that ignores it is never queued).
	SigIgn = 1
	// SigHandler marks the signal as caught: delivery surfaces it in
	// Ret.Sig and the core layer runs the registered handler.
	SigHandler = 2
)

// SysSigprocmask how values (Args[0]).
const (
	SigBlock   = 0 // add Args[1]'s bits to the blocked mask
	SigUnblock = 1 // remove Args[1]'s bits
	SigSetmask = 2 // replace the mask with Args[1]
)

// WaitAny as SysWaitpid's Args[0] waits for any child (Linux's pid -1).
const WaitAny = ^uint64(0)

// defaultIgnored is the mask of signals whose default disposition is
// "ignore" (SIGCHLD; everything else in the supported set terminates).
const defaultIgnored uint64 = 1 << SIGCHLD

// DefaultTerminates reports whether signo's default action ends the
// process. The core layer consults it when a delivered signal has no
// registered handler.
func DefaultTerminates(signo int) bool {
	if signo <= 0 || signo > maxSig {
		return false
	}
	return defaultIgnored&(1<<uint(signo)) == 0
}

// sigBit returns signo's mask bit, or 0 for an out-of-range signo.
func sigBit(signo int) uint64 {
	if signo <= 0 || signo > maxSig {
		return 0
	}
	return 1 << uint(signo)
}

// deliverableMask returns the set of pending signals that would be
// delivered at the next syscall boundary: pending, not blocked, not
// ignored. Lock-free — three atomic loads — so blocking kernel loops can
// poll it per wakeup without contending the signal table.
func (p *Proc) deliverableMask() uint64 {
	return p.sigPending.Load() &^ p.sigBlocked.Load() &^ p.sigIgnored.Load()
}

// signalPending is true when a deliverable signal is pending, meaning a
// blocked op must unwind with EINTR so the boundary can deliver it.
func (p *Proc) signalPending() bool { return p.deliverableMask() != 0 }

// interrupted is the interrupt predicate blocking kernel ops poll (via
// Proc.sigIntr): a deliverable signal OR an exit-group in progress. The
// latter is what lets the first exiting thread of a multi-threaded process
// yank its siblings out of parked reads/accepts — they return EINTR and the
// boundary hands them SigExitGroup.
func (p *Proc) interrupted() bool { return p.exitGroup.Load() || p.signalPending() }

// sendSignal posts signo to p. A signal the process currently ignores is
// discarded at send time (matching the usual Linux shortcut); SIGKILL can
// be neither blocked nor ignored. Returns false for an out-of-range signo.
func (p *Proc) sendSignal(signo int) bool {
	bit := sigBit(signo)
	if bit == 0 {
		return false
	}
	p.sigMu.Lock()
	if p.sigIgnored.Load()&bit == 0 {
		p.sigPending.Or(bit)
	}
	p.sigMu.Unlock()
	return true
}

// Post delivers signo to p from OUTSIDE the MVEE — the operator surface
// behind the fleet's hot-reload trigger. Callers post to the MASTER
// variant's process only (core.Session.Signal): the master observes the
// signal at its next syscall boundary and the delivery then rides the
// replicated record stream into every variant, exactly like an in-guest
// kill. Returns false for an out-of-range signo.
func (p *Proc) Post(signo int) bool {
	if !p.sendSignal(signo) {
		return false
	}
	if p.kern != nil {
		p.kern.signalKick(p)
	}
	return true
}

// TakeSignal pops the lowest-numbered deliverable signal from p's pending
// set, or returns 0. The monitor calls it on the MASTER after executing
// every monitored syscall — that call site, and the replication of its
// result through Ret.Sig, is the whole delivery model: signals land at
// syscall boundaries, in an order the slaves replay. The no-signal fast
// path is three atomic loads and must stay allocation-free (it sits on the
// replication hot path).
func (p *Proc) TakeSignal() uint32 {
	if p.deliverableMask() == 0 {
		return 0
	}
	p.sigMu.Lock()
	m := p.deliverableMask()
	if m == 0 {
		p.sigMu.Unlock()
		return 0
	}
	signo := bits.TrailingZeros64(m)
	p.sigPending.And(^sigBit(signo))
	p.sigMu.Unlock()
	return uint32(signo)
}

// BoundarySig is the monitor's per-boundary delivery probe: an exit-group
// in progress outranks every ordinary signal (the thread is already dead
// from the process's point of view; Linux discards its pending set), so the
// flag is checked first. The no-signal fast path is one extra atomic load
// on top of TakeSignal's three and stays allocation-free — it sits on the
// replication hot path.
func (p *Proc) BoundarySig() uint32 {
	if p.exitGroup.Load() {
		return SigExitGroup
	}
	return p.TakeSignal()
}

// AckSignal consumes signo from p's pending set without delivering it
// locally. Slaves call it (through the monitor) when the master's record
// says a signal was delivered at this boundary: the slave's own pending
// bit — set by its per-variant execution of the same ordered kill — must
// be cleared so it is not delivered twice.
func (p *Proc) AckSignal(signo uint32) {
	bit := sigBit(int(signo))
	if bit == 0 {
		return
	}
	p.sigMu.Lock()
	p.sigPending.And(^bit)
	p.sigMu.Unlock()
}

// recomputeIgnoredLocked refreshes the cached ignored mask from the
// disposition table. Callers hold p.sigMu.
func (p *Proc) recomputeIgnoredLocked() {
	var m uint64
	for s := 1; s <= maxSig; s++ {
		switch p.sigDisp[s] {
		case SigIgn:
			m |= 1 << uint(s)
		case SigDfl:
			m |= defaultIgnored & (1 << uint(s))
		}
	}
	p.sigIgnored.Store(m)
}

// doSigaction implements SysSigaction: set the disposition of Args[0] to
// Args[1]. SIGKILL's disposition is immutable, like Linux.
func (k *Kernel) doSigaction(p *Proc, c Call) Ret {
	signo := int(c.Args[0])
	disp := int(c.Args[1])
	if sigBit(signo) == 0 || signo == SIGKILL ||
		(disp != SigDfl && disp != SigIgn && disp != SigHandler) {
		return Ret{Err: EINVAL}
	}
	p.sigMu.Lock()
	old := p.sigDisp[signo]
	p.sigDisp[signo] = uint8(disp)
	p.recomputeIgnoredLocked()
	if disp == SigIgn {
		// Ignoring a signal discards any pending instance (Linux does the
		// same); without this a later handler registration would deliver a
		// signal sent while it was ignored.
		p.sigPending.And(^sigBit(signo))
	}
	p.sigMu.Unlock()
	return Ret{Val: uint64(old)}
}

// doSigprocmask implements SysSigprocmask. SIGKILL is silently kept
// unblockable. Unblocking a pending signal does NOT deliver it here — the
// return from this very call is a syscall boundary, so the monitor's
// TakeSignal picks it up immediately after.
func (k *Kernel) doSigprocmask(p *Proc, c Call) Ret {
	how := int(c.Args[0])
	bits := c.Args[1] &^ sigBit(SIGKILL)
	p.sigMu.Lock()
	old := p.sigBlocked.Load()
	switch how {
	case SigBlock:
		p.sigBlocked.Store(old | bits)
	case SigUnblock:
		p.sigBlocked.Store(old &^ bits)
	case SigSetmask:
		p.sigBlocked.Store(bits)
	default:
		p.sigMu.Unlock()
		return Ret{Err: EINVAL}
	}
	p.sigMu.Unlock()
	return Ret{Val: old}
}

// doKill implements SysKill: post signal Args[1] to the process whose pid
// is Args[0], then kick every blocking site a thread of the target could
// be parked in. Signal 0 is the existence probe. The target is resolved in
// the CALLER's pid namespace (its variant's process tree), so the pid
// argument is deterministic across variants and participates in divergence
// detection — a variant signalling a different pid or signo mismatches on
// the compared args before anything is delivered.
func (k *Kernel) doKill(p *Proc, c Call) Ret {
	pid := int(c.Args[0])
	signo := int(c.Args[1])
	if signo < 0 || signo > maxSig {
		return Ret{Err: EINVAL}
	}
	k.treeMu.Lock()
	target := p.ns.byVpid[pid]
	dead := target == nil || target.state != procRunning
	k.treeMu.Unlock()
	if dead {
		return Ret{Err: ESRCH}
	}
	if signo == 0 {
		return Ret{}
	}
	if !target.sendSignal(signo) {
		return Ret{Err: EINVAL}
	}
	k.signalKick(target)
	return Ret{}
}

// signalKick wakes every blocking site a thread of target could be parked
// in, so it re-checks the deliverable-signal predicate and unwinds with
// EINTR. The sites are: the target's own parker (nanosleep), the tree cond
// (waitpid), the kernel poll wait set, and every tracked pipe/listener
// cond. Kicking ALL blockables instead of tracking which objects the
// target's threads are inside keeps the bookkeeping out of the blocking
// hot paths — kills are orders of magnitude rarer than reads, and a
// spurious wake costs one predicate re-check.
func (k *Kernel) signalKick(target *Proc) {
	target.sigPark.Wake()
	k.treeMu.Lock()
	k.treeWake()
	k.treeMu.Unlock()
	k.pollPark.Wake()
	k.intMu.Lock()
	for x := range k.blockables {
		x.kick()
	}
	k.intMu.Unlock()
}
