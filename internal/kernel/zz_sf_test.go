package kernel

import "testing"

func TestSendfileNegativeOffset(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panicked: %v", r)
		}
	}()
	k := NewKernel()
	p := k.InitProc()
	w := k.Syscall(p, Call{Nr: SysOpen, Args: [6]uint64{OCreat | OWronly}, Data: []byte("/f")})
	k.Syscall(p, Call{Nr: SysWrite, Args: [6]uint64{w.Val}, Data: []byte("hello world")})
	k.Syscall(p, Call{Nr: SysClose, Args: [6]uint64{w.Val}})
	rfd := k.Syscall(p, Call{Nr: SysOpen, Args: [6]uint64{ORdonly}, Data: []byte("/f")}).Val
	// a socketpair-ish stream: use a pipe
	pr := k.Syscall(p, Call{Nr: SysPipe})
	_ = pr
	outfd := pr.Val // read end? need write end
	_ = outfd
	// Args[2] = ^uint64(0) - 99 → off = -100 (not SendfileCurOffset)
	ret := k.Syscall(p, Call{Nr: SysSendfile, Args: [6]uint64{pr.Val2(), rfd, ^uint64(0) - 99, 5}})
	t.Logf("ret=%+v", ret)
}
