package kernel

import "testing"

// Sendfile offset edge cases: an offset at or past EOF transfers nothing
// (clamp floors the count at zero), and a negative offset — Args[2] is
// uint64, so int64(-100) arrives as a huge value distinct from the
// SendfileCurOffset sentinel — is EINVAL, not a panic (it used to reach
// inode.readAt and slice at a negative index).
func TestSendfileOffsetOutOfRange(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panicked: %v", r)
		}
	}()
	k := New()
	p := k.NewProc(0x10000, 0x20000)
	k.WriteFile("/f", []byte("hello world"))
	rfd := k.Do(p, Call{Nr: SysOpen, Data: []byte("/f")})
	if rfd.Err != OK {
		t.Fatalf("open: %v", rfd.Err)
	}
	pr := k.Do(p, Call{Nr: SysPipe2})
	if pr.Err != OK {
		t.Fatalf("pipe2: %v", pr.Err)
	}
	wfd := pr.Val2
	if ret := k.Do(p, Call{Nr: SysSendfile, Args: [6]uint64{wfd, rfd.Val, 100, 5}}); ret.Err != OK || ret.Val != 0 {
		t.Fatalf("sendfile(off=100) = (%d, %v), want (0, OK)", ret.Val, ret.Err)
	}
	if ret := k.Do(p, Call{Nr: SysSendfile, Args: [6]uint64{wfd, rfd.Val, ^uint64(0) - 99, 5}}); ret.Err != EINVAL {
		t.Fatalf("sendfile(off=-100) = %v, want EINVAL", ret.Err)
	}
}
