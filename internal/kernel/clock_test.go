package kernel

import (
	"runtime"
	"testing"
	"time"
)

func TestVirtualClockStandsStillWithoutAdvance(t *testing.T) {
	vc := NewVirtualClock()
	a := vc.Now()
	b := vc.Now()
	if !a.Equal(b) {
		t.Fatalf("virtual time moved on its own: %v -> %v", a, b)
	}
	vc.Advance(time.Second)
	if got := vc.Now().Sub(a); got != time.Second {
		t.Fatalf("advanced %v, want 1s", got)
	}
}

func TestVirtualClockFiresTimersInDeadlineOrder(t *testing.T) {
	vc := NewVirtualClock()
	var order []int
	vc.AfterFunc(30*time.Millisecond, func() { order = append(order, 30) })
	vc.AfterFunc(10*time.Millisecond, func() { order = append(order, 10) })
	vc.AfterFunc(20*time.Millisecond, func() { order = append(order, 20) })
	vc.Advance(15 * time.Millisecond)
	if len(order) != 1 || order[0] != 10 {
		t.Fatalf("after 15ms fired %v, want [10]", order)
	}
	vc.Advance(20 * time.Millisecond)
	if len(order) != 3 || order[1] != 20 || order[2] != 30 {
		t.Fatalf("after 35ms fired %v, want [10 20 30]", order)
	}
	if vc.Timers() != 0 {
		t.Fatalf("%d timers still armed after all fired", vc.Timers())
	}
}

func TestVirtualClockStop(t *testing.T) {
	vc := NewVirtualClock()
	fired := false
	tm := vc.AfterFunc(10*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on an armed timer reported already-fired")
	}
	vc.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported the timer as still armed")
	}
}

func TestScaledClockAcceleratesTime(t *testing.T) {
	c := NewScaledClock(100)
	start := c.Now()
	fired := make(chan struct{})
	// 500ms of scaled time is 5ms of real time.
	c.AfterFunc(500*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(10 * time.Second):
		t.Fatal("scaled timer never fired")
	}
	if el := c.Now().Sub(start); el < 100*time.Millisecond {
		t.Fatalf("scaled clock advanced only %v of virtual time over a 500ms timer", el)
	}
}

func TestScaledClockDegenerateScales(t *testing.T) {
	for _, scale := range []float64{0, -3, 1} {
		if _, ok := NewScaledClock(scale).(realClock); !ok {
			t.Fatalf("scale %v should degenerate to the real clock", scale)
		}
	}
}

// Nanosleep on a virtual clock: the sleeper parks forever until Advance
// crosses its deadline — kernel time is fully decoupled from wall time.
func TestNanosleepOnVirtualClock(t *testing.T) {
	k := New()
	vc := NewVirtualClock()
	k.SetClock(vc)
	p := newTestProc(k)
	done := make(chan Ret, 1)
	go func() {
		done <- k.Do(p, Call{Nr: SysNanosleep, Args: [6]uint64{uint64(time.Hour)}})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for vc.Timers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sleeper never armed its timer")
		}
		runtime.Gosched()
	}
	select {
	case r := <-done:
		t.Fatalf("1h virtual nanosleep returned early: %+v", r)
	default:
	}
	vc.Advance(time.Hour + time.Millisecond)
	select {
	case r := <-done:
		if !r.Ok() {
			t.Fatalf("nanosleep: %v", r.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nanosleep still parked after its virtual deadline passed")
	}
	if k.Sleeps() != 1 {
		t.Fatalf("sleeps = %d, want 1", k.Sleeps())
	}
}

// Gettimeofday reads the kernel clock: on virtual time it advances only
// with Advance (plus the strictly-increasing logical component).
func TestGettimeofdayOnVirtualClock(t *testing.T) {
	k := New()
	vc := NewVirtualClock()
	k.SetClock(vc)
	p := newTestProc(k)
	t0 := k.Do(p, Call{Nr: SysGettimeofday}).Val
	t1 := k.Do(p, Call{Nr: SysGettimeofday}).Val
	if t1 <= t0 {
		t.Fatalf("clock not strictly increasing: %d then %d", t0, t1)
	}
	if t1-t0 > 1000 {
		t.Fatalf("virtual clock drifted %dns between reads without an Advance", t1-t0)
	}
	vc.Advance(time.Second)
	t2 := k.Do(p, Call{Nr: SysGettimeofday}).Val
	if t2-t1 < uint64(time.Second) {
		t.Fatalf("Advance(1s) moved gettimeofday by only %dns", t2-t1)
	}
}
