package kernel

import (
	"bytes"
	"testing"
)

// mkFile creates /path with the given contents and returns a read-only fd
// over it.
func mkFile(t *testing.T, k *Kernel, p *Proc, path string, contents []byte) uint64 {
	t.Helper()
	w := k.Do(p, openCall(path, OCreat|OWronly|OTrunc))
	if !w.Ok() {
		t.Fatalf("open %s for write: %v", path, w.Err)
	}
	if r := k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{w.Val}, Data: contents}); !r.Ok() || r.Val != uint64(len(contents)) {
		t.Fatalf("write %s: %+v", path, r)
	}
	k.Do(p, Call{Nr: SysClose, Args: [6]uint64{w.Val}})
	rd := k.Do(p, openCall(path, ORdonly))
	if !rd.Ok() {
		t.Fatalf("reopen %s: %v", path, rd.Err)
	}
	return rd.Val
}

func TestWritevGatherToPipe(t *testing.T) {
	k := New()
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	if !pr.Ok() {
		t.Fatalf("pipe2: %v", pr.Err)
	}
	segs := [][]byte{[]byte("HTTP/1.1 200 OK\r\n\r\n"), []byte("hello, "), []byte("world")}
	iov := EncodeIovec(nil, segs...)
	want := bytes.Join(segs, nil)
	w := k.Do(p, Call{Nr: SysWritev, Args: [6]uint64{pr.Val2, uint64(len(segs))}, Data: iov})
	if !w.Ok() || w.Val != uint64(len(want)) {
		t.Fatalf("writev: %+v, want Val=%d (prefixes excluded from the count)", w, len(want))
	}
	rd := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{pr.Val, 256}})
	if !rd.Ok() || !bytes.Equal(rd.Data, want) {
		t.Fatalf("read back %q, want %q (err %v)", rd.Data, want, rd.Err)
	}
}

func TestWritevGatherToSeekableFile(t *testing.T) {
	k := New()
	p := newTestProc(k)
	fd := k.Do(p, openCall("/gather", OCreat|ORdwr))
	if !fd.Ok() {
		t.Fatalf("open: %v", fd.Err)
	}
	iov := EncodeIovec(nil, []byte("aaa"), []byte("bb"), []byte("c"))
	if w := k.Do(p, Call{Nr: SysWritev, Args: [6]uint64{fd.Val, 3}, Data: iov}); !w.Ok() || w.Val != 6 {
		t.Fatalf("writev: %+v", w)
	}
	// The gather-write moved the file offset by the payload size, exactly
	// like the equivalent plain write.
	if s := k.Do(p, Call{Nr: SysLseek, Args: [6]uint64{fd.Val, 0, SeekCur}}); !s.Ok() || s.Val != 6 {
		t.Fatalf("offset after writev: %+v, want 6", s)
	}
	k.Do(p, Call{Nr: SysLseek, Args: [6]uint64{fd.Val, 0, SeekSet}})
	rd := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{fd.Val, 64}})
	if string(rd.Data) != "aaabbc" {
		t.Fatalf("read back %q, want %q", rd.Data, "aaabbc")
	}
}

func TestWritevMalformedIovecIsEINVAL(t *testing.T) {
	k := New()
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	good := EncodeIovec(nil, []byte("abc"), []byte("de"))
	for _, tc := range []struct {
		name string
		cnt  uint64
		data []byte
	}{
		// Declared count disagrees with the encoded prefixes: the extra
		// "length" word is read out of the payload, so the sum check fails.
		{"count-overstates", 3, good},
		{"count-understates", 1, good},
		// Payload shorter/longer than the prefixes promise.
		{"payload-truncated", 2, good[:len(good)-1]},
		{"payload-overhang", 2, append(append([]byte(nil), good...), 'x')},
		// Not even room for the prefixes.
		{"header-truncated", 2, good[:7]},
	} {
		r := k.Do(p, Call{Nr: SysWritev, Args: [6]uint64{pr.Val2, tc.cnt}, Data: tc.data})
		if r.Err != EINVAL {
			t.Errorf("%s: err = %v, want EINVAL", tc.name, r.Err)
		}
	}
	// The pipe saw none of the rejected bytes.
	if probe := k.Do(p, Call{Nr: SysWritev, Args: [6]uint64{pr.Val2, 2}, Data: good}); !probe.Ok() || probe.Val != 5 {
		t.Fatalf("valid writev after rejections: %+v", probe)
	}
	rd := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{pr.Val, 64}})
	if string(rd.Data) != "abcde" {
		t.Fatalf("pipe contents %q, want only the valid writev's payload", rd.Data)
	}
}

func TestSendfileExplicitOffsets(t *testing.T) {
	k := New()
	p := newTestProc(k)
	contents := []byte("0123456789abcdef")
	src := mkFile(t, k, p, "/page", contents)
	pr := k.Do(p, Call{Nr: SysPipe2})

	// Middle slice.
	if r := k.Do(p, Call{Nr: SysSendfile, Args: [6]uint64{pr.Val2, src, 4, 6}}); !r.Ok() || r.Val != 6 {
		t.Fatalf("sendfile(off=4,count=6): %+v", r)
	}
	rd := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{pr.Val, 64}})
	if string(rd.Data) != "456789" {
		t.Fatalf("pipe got %q, want %q", rd.Data, "456789")
	}
	// Count clamps at EOF; offset at/past EOF transfers zero bytes.
	if r := k.Do(p, Call{Nr: SysSendfile, Args: [6]uint64{pr.Val2, src, 12, 100}}); !r.Ok() || r.Val != 4 {
		t.Fatalf("sendfile past-EOF count: %+v, want Val=4 (clamped)", r)
	}
	if r := k.Do(p, Call{Nr: SysSendfile, Args: [6]uint64{pr.Val2, src, 99, 5}}); !r.Ok() || r.Val != 0 {
		t.Fatalf("sendfile at EOF: %+v, want Val=0", r)
	}
	// Explicit offsets never move the description offset: a read through
	// the same descriptor still starts at 0... except src is the in-fd;
	// verify via its own read cursor.
	if rd2 := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{src, 4}}); string(rd2.Data) != "0123" {
		t.Fatalf("description offset moved by explicit-offset sendfile: read %q", rd2.Data)
	}
}

func TestSendfileToSocket(t *testing.T) {
	k := New()
	p := newTestProc(k)
	contents := bytes.Repeat([]byte("page"), 256)
	src := mkFile(t, k, p, "/page", contents)
	sfd := k.Do(p, Call{Nr: SysSocket}).Val
	if r := k.Do(p, Call{Nr: SysListen, Args: [6]uint64{sfd, 8070, 16}}); !r.Ok() {
		t.Fatalf("listen: %v", r.Err)
	}
	got := make(chan []byte, 1)
	go func() {
		cc, errno := k.Connect(8070)
		if errno != OK {
			t.Errorf("connect: %v", errno)
			got <- nil
			return
		}
		defer cc.Close()
		cc.Write([]byte("GET /"))
		buf := make([]byte, 4096)
		var all []byte
		for len(all) < len(contents) {
			n, err := cc.Read(buf)
			if err != nil || n == 0 {
				break
			}
			all = append(all, buf[:n]...)
		}
		got <- all
	}()
	acc := k.Do(p, Call{Nr: SysAccept, Args: [6]uint64{sfd}})
	if !acc.Ok() {
		t.Fatalf("accept: %v", acc.Err)
	}
	k.Do(p, Call{Nr: SysRecv, Args: [6]uint64{acc.Val, 64}})
	sent := uint64(0)
	for sent < uint64(len(contents)) {
		r := k.Do(p, Call{Nr: SysSendfile,
			Args: [6]uint64{acc.Val, src, sent, uint64(len(contents)) - sent}})
		if !r.Ok() || r.Val == 0 {
			t.Fatalf("sendfile at %d: %+v", sent, r)
		}
		sent += r.Val
	}
	if body := <-got; !bytes.Equal(body, contents) {
		t.Fatalf("client received %d bytes, want %d identical", len(body), len(contents))
	}
}

func TestSendfileArgumentErrors(t *testing.T) {
	k := New()
	p := newTestProc(k)
	src := mkFile(t, k, p, "/page", []byte("data"))
	pr := k.Do(p, Call{Nr: SysPipe2})
	fileFD := k.Do(p, openCall("/sink", OCreat|ORdwr)).Val
	wonly := k.Do(p, openCall("/page", OWronly)).Val

	for _, tc := range []struct {
		name string
		args [6]uint64
		want Errno
	}{
		// A regular file cannot be the OUT side: sendfile targets streams.
		{"out-is-file", [6]uint64{fileFD, src, 0, 4}, EINVAL},
		// A pipe cannot be the IN side: the source must be a regular file.
		{"in-is-pipe", [6]uint64{pr.Val2, pr.Val, 0, 4}, EINVAL},
		// A write-only in-fd cannot be read from.
		{"in-write-only", [6]uint64{pr.Val2, wonly, 0, 4}, EBADF},
		// Negative count (a u64 that does not fit an int).
		{"negative-count", [6]uint64{pr.Val2, src, 0, ^uint64(7)}, EINVAL},
		{"bad-out-fd", [6]uint64{99, src, 0, 4}, EBADF},
		{"bad-in-fd", [6]uint64{pr.Val2, 99, 0, 4}, EBADF},
	} {
		if r := k.Do(p, Call{Nr: SysSendfile, Args: tc.args}); r.Err != tc.want {
			t.Errorf("%s: err = %v, want %v", tc.name, r.Err, tc.want)
		}
	}
}

// TestSendfileSharedOffsetAcrossFork is the prefork-inheritance contract:
// fork shares open file DESCRIPTIONS, so two processes issuing
// current-offset sendfiles through inherited copies of one descriptor
// advance ONE shared cursor under the description lock — each transfer
// claims a disjoint range, exactly like Linux f_pos serialization.
func TestSendfileSharedOffsetAcrossFork(t *testing.T) {
	k := New()
	parent := newTestProc(k)
	contents := []byte("AAAABBBBCCCCDDDD")
	src := mkFile(t, k, parent, "/page", contents)
	pr := k.Do(parent, Call{Nr: SysPipe2})

	f := k.Do(parent, Call{Nr: SysFork})
	if !f.Ok() {
		t.Fatalf("fork: %v", f.Err)
	}
	child := parent.Child(int(f.Val))
	if child == nil {
		t.Fatal("child proc not found")
	}

	// Alternate current-offset transfers between the two processes; the
	// shared description offset must hand out consecutive 4-byte ranges.
	for i, pp := range []*Proc{parent, child, parent, child} {
		r := k.Do(pp, Call{Nr: SysSendfile,
			Args: [6]uint64{pr.Val2, src, SendfileCurOffset, 4}})
		if !r.Ok() || r.Val != 4 {
			t.Fatalf("transfer %d: %+v", i, r)
		}
	}
	rd := k.Do(parent, Call{Nr: SysRead, Args: [6]uint64{pr.Val, 64}})
	if !bytes.Equal(rd.Data, contents) {
		t.Fatalf("interleaved transfers produced %q, want %q (shared offset not advancing)", rd.Data, contents)
	}
	// The cursor sits at EOF now: one more current-offset transfer moves
	// nothing.
	if r := k.Do(parent, Call{Nr: SysSendfile,
		Args: [6]uint64{pr.Val2, src, SendfileCurOffset, 4}}); !r.Ok() || r.Val != 0 {
		t.Fatalf("post-EOF transfer: %+v, want Val=0", r)
	}
}
