// Package kernel implements the simulated Linux kernel that MVEE variants
// make their system calls against. It is the substitute for the real kernel
// underneath ReMon (see DESIGN.md §2): an in-memory file system, per-process
// file-descriptor tables, pipes, loopback sockets, a brk/mmap address-space
// allocator, clocks, and a futex service.
//
// The monitor interposes between variants and this kernel exactly like the
// paper's monitor interposes on real system calls: I/O calls are executed
// once (by the master variant) and their results replicated, while
// address-space calls execute in every variant against that variant's own
// process state.
package kernel

import "fmt"

// Sysno enumerates the simulated system calls.
type Sysno uint32

const (
	SysInvalid Sysno = iota
	SysOpen
	SysClose
	SysRead
	SysWrite
	SysPread
	SysPwrite
	SysLseek
	SysStat
	SysUnlink
	SysDup
	SysPipe2
	SysFtruncate
	SysBrk
	SysMmap
	SysMunmap
	SysMprotect
	SysClone
	SysExit
	SysGettimeofday
	SysClockGettime
	SysNanosleep
	SysSchedYield
	SysGetpid
	SysGettid
	SysSocket
	SysBind
	SysListen
	SysAccept
	SysConnect
	SysSend
	SysRecv
	SysShutdown
	SysFutex
	// SysMVEEAware is the paper's added "self-awareness" system call
	// (§4.5): it does not exist in the kernel; the monitor intercepts it
	// and tells the variant whether it is the master or a slave.
	SysMVEEAware
	// SysPoll sits AFTER SysMVEEAware deliberately: Sysno values are part
	// of the recorded-trace wire format (monitor.Record gob-encodes them),
	// so new syscalls append to the enum rather than renumbering the
	// existing ones out from under previously captured traces.
	SysPoll
	// SysFork creates a child process: a copy of the caller's descriptor
	// table (Linux semantics: shared open file descriptions) under a fresh,
	// deterministically allocated pid. Like SysPoll and everything after
	// it, it appends to the enum — the values are trace wire format.
	SysFork
	// SysWaitpid reaps a zombie child, blocking until one exits. Args[0]
	// selects the child (WaitAny for "any child"); Val is the reaped
	// child's pid and Val2 its exit status.
	SysWaitpid
	// SysKill posts a signal (Args[1]) to the process named by Args[0].
	SysKill
	// SysSigaction sets the disposition of signal Args[0] to Args[1]
	// (SigDfl, SigIgn, or SigHandler).
	SysSigaction
	// SysSigprocmask manipulates the caller's blocked-signal mask:
	// Args[0] is the how (SigBlock/SigUnblock/SigSetmask), Args[1] the
	// bit mask; Val returns the previous mask.
	SysSigprocmask
	// SysThreadExit retires ONE thread of a process without ending the
	// process — the kernel-side half of a vthread unwinding now that
	// forked children can be multi-threaded. The last thread of a process
	// already in exit-group completes the zombie transition. Appended to
	// the enum (trace wire format), like everything after SysMVEEAware.
	SysThreadExit
	// SysWritev is the vectored gather-write (writev(2)): Args[0] is the
	// fd, Args[1] the iovec count, and Data carries the iovec wire format
	// (see EncodeIovec) — per-segment u32 lengths followed by the
	// concatenated segment bytes. One replicated record covers what would
	// otherwise be one write record per segment (a static page's header +
	// body). Appended to the enum (trace wire format, Version 5).
	SysWritev
	// SysSendfile transfers Args[3] bytes from the seekable in-fd Args[1]
	// to the stream out-fd Args[0], file→socket, without the bytes ever
	// entering the guest: the kernel copies straight from the inode into
	// the destination pipe buffer, and the replicated record carries only
	// the byte count — the zero-copy serving path. Args[2] is the file
	// offset, or SendfileCurOffset to use-and-advance the shared
	// open-file-description offset under its lock (visible across dup'd
	// and fork-inherited descriptors, like Linux f_pos). Appended to the
	// enum (trace wire format, Version 5).
	SysSendfile
	sysnoMax
)

// SendfileCurOffset, passed as SysSendfile's Args[2], selects the shared
// open-file-description offset: the transfer starts at the description's
// current offset and advances it by the bytes sent, under the description
// lock — so fork'd workers sendfiling from one inherited descriptor carve
// up the file without overlap.
const SendfileCurOffset = ^uint64(0)

// SysnoMax is the exclusive upper bound of the Sysno enum. Guard tests
// iterate [SysOpen, SysnoMax) to prove every simulated syscall has a name,
// a deliberate monitor classification, and an argument-mask decision.
const SysnoMax = sysnoMax

var sysnoNames = map[Sysno]string{
	SysOpen: "open", SysClose: "close", SysRead: "read", SysWrite: "write",
	SysPread: "pread", SysPwrite: "pwrite", SysLseek: "lseek", SysStat: "stat",
	SysUnlink: "unlink", SysDup: "dup", SysPipe2: "pipe2", SysFtruncate: "ftruncate",
	SysBrk: "brk", SysMmap: "mmap", SysMunmap: "munmap", SysMprotect: "mprotect",
	SysClone: "clone", SysExit: "exit", SysGettimeofday: "gettimeofday",
	SysClockGettime: "clock_gettime", SysNanosleep: "nanosleep",
	SysSchedYield: "sched_yield", SysGetpid: "getpid", SysGettid: "gettid",
	SysSocket: "socket", SysBind: "bind", SysListen: "listen", SysAccept: "accept",
	SysConnect: "connect", SysSend: "send", SysRecv: "recv", SysShutdown: "shutdown",
	SysFutex: "futex", SysPoll: "poll", SysMVEEAware: "mvee_aware",
	SysFork: "fork", SysWaitpid: "waitpid", SysKill: "kill",
	SysSigaction: "sigaction", SysSigprocmask: "sigprocmask",
	SysThreadExit: "thread_exit", SysWritev: "writev", SysSendfile: "sendfile",
}

// String implements fmt.Stringer.
func (s Sysno) String() string {
	if n, ok := sysnoNames[s]; ok {
		return n
	}
	return fmt.Sprintf("sys#%d", uint32(s))
}

// Errno models Linux error numbers. Zero means success.
type Errno uint32

const (
	OK     Errno = 0
	EPERM  Errno = 1
	ENOENT Errno = 2
	// ESRCH: no such process (kill/waitpid on a pid that was never
	// allocated or has already been reaped).
	ESRCH Errno = 3
	// EINTR: a blocking call (read, accept, poll, waitpid, nanosleep) was
	// interrupted because a deliverable signal arrived for the calling
	// process. The signal itself travels in Ret.Sig; the caller is
	// expected to run its handler and retry.
	EINTR Errno = 4
	// EIO: low-level I/O failure. The simulated kernel never earns one on
	// its own; it exists as a fault-injection errno (chaos plans default
	// to it), so a guest's error paths can be exercised deterministically.
	EIO   Errno = 5
	EBADF Errno = 9
	// ECHILD: waitpid with no children left to wait for.
	ECHILD     Errno = 10
	EAGAIN     Errno = 11
	ENOMEM     Errno = 12
	EACCES     Errno = 13
	EFAULT     Errno = 14
	EBUSY      Errno = 16
	EEXIST     Errno = 17
	ENOTDIR    Errno = 20
	EINVAL     Errno = 22
	EMFILE     Errno = 24
	ESPIPE     Errno = 29
	EPIPE      Errno = 32
	ENOSYS     Errno = 38
	ENOTSOCK   Errno = 88
	EADDRINUSE Errno = 98
	// ECONNRESET: connection reset by peer. Like EIO, only fault injection
	// produces it here — the loopback stack itself reports closes as EOF
	// or EPIPE.
	ECONNRESET   Errno = 104
	ECONNREFUSED Errno = 111
)

var errnoNames = map[Errno]string{
	OK: "OK", EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH", EINTR: "EINTR",
	EIO: "EIO", ECHILD: "ECHILD", EBADF: "EBADF", EAGAIN: "EAGAIN",
	ENOMEM: "ENOMEM", EACCES: "EACCES", EFAULT: "EFAULT", EBUSY: "EBUSY",
	EEXIST: "EEXIST", ENOTDIR: "ENOTDIR", EINVAL: "EINVAL", EMFILE: "EMFILE",
	ESPIPE: "ESPIPE", EPIPE: "EPIPE", ENOSYS: "ENOSYS", ENOTSOCK: "ENOTSOCK",
	EADDRINUSE: "EADDRINUSE", ECONNRESET: "ECONNRESET",
	ECONNREFUSED: "ECONNREFUSED",
}

// Error implements the error interface so Errno values can travel as errors.
func (e Errno) Error() string {
	if n, ok := errnoNames[e]; ok {
		return n
	}
	return fmt.Sprintf("errno %d", uint32(e))
}

// Open flags, a subset of Linux's.
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreat  = 0x40
	OExcl   = 0x80
	OTrunc  = 0x200
	OAppend = 0x400
)

// Lseek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Call is one system call as submitted by a variant thread. Pointer
// arguments never appear: buffers travel in Data (the monitor deep-copies
// buffers in the real system too, so this is the natural representation).
type Call struct {
	Nr   Sysno
	Args [6]uint64
	Data []byte // payload for write/send/…
	// Buf, when non-nil on read/recv, is the caller's destination buffer:
	// the kernel copies the pending bytes into it and Ret.Data aliases
	// Buf's prefix, so a steady-state receive loop allocates nothing. Buf
	// is VARIANT-LOCAL state, like the address a real recv(2) writes
	// through: it is never compared, never published, and never encoded
	// into traces. Under the monitor each variant must own its Buf (the
	// master's result bytes are copied into a stable record payload before
	// publication, and each slave copies them back out into its own Buf),
	// and guests must supply Buf uniformly across variants — SPMD guest
	// code does so by construction.
	Buf []byte
	// Tid is the calling guest thread's id, VARIANT-LOCAL like Buf: never
	// compared, never encoded. The deadlock detector keys its blocked-site
	// cells on it; callers that don't arm a BlockBoard may leave it zero.
	Tid int
}

// Ret is the kernel's (or the monitor's replicated) reply to a Call.
type Ret struct {
	Val  uint64 // primary return value (fd, byte count, address, …)
	Val2 uint64 // secondary value (pipe2's second fd)
	Data []byte // payload for read/recv/…
	Err  Errno
	// Sig is the signal delivered at this syscall boundary (0 = none).
	// The kernel never sets it: the MONITOR stamps it onto the master's
	// record after executing the call, which is what makes signal
	// delivery a replicable event — the slaves consume the master's
	// delivery schedule instead of racing their own (DESIGN.md §2.5).
	Sig uint32
	// Inj marks injected faults (bitmask of InjLatency/InjError/
	// InjTimeout/InjShort, see fault.go). The KERNEL sets it when a fault
	// plan fires on the master's execution; because it rides the
	// replicated record (trace wire format v4), slaves and replays
	// observe the identical fault, and telemetry counts injections
	// without re-deciding them.
	Inj uint8
}

// Ok reports whether the call succeeded.
func (r Ret) Ok() bool { return r.Err == OK }
