package kernel

import (
	"encoding/binary"
	"time"
)

// SysPoll: fd-set readiness over the uniform object header (see object.go).
//
// The call's Data payload is the pollfd array in a fixed wire layout, so
// the fd set is an ordinary compared payload for the monitor — two
// variants polling different descriptor sets diverge exactly like two
// variants writing different bytes. Args[0] is the entry count, Args[1]
// the timeout in nanoseconds (PollNoTimeout blocks indefinitely, 0 never
// blocks). The result's Data is a copy of the input array with revents
// filled in; Val is the number of entries with a non-zero revents.
//
// Blocking pollers park on the kernel's poll wait set (a futex.Parker):
// every pipe/listener state change that could flip readiness calls
// pollWake through the object header, so a parked poller costs zero CPU
// and the wake is one atomic load when nobody polls. Parking is
// allocation-free; only a finite timeout arms a timer.

// Poll event bits, matching Linux's poll(2) values.
const (
	PollIn   = 0x0001 // readable without blocking (data, EOF, or pending accept)
	PollOut  = 0x0004 // writable without blocking
	PollErr  = 0x0008 // error condition (broken pipe)
	PollHup  = 0x0010 // hang-up (peer closed / listener closed)
	PollNval = 0x0020 // invalid descriptor, or a handle whose object was recycled
)

// PollNoTimeout as Args[1] blocks the poll until an event arrives.
const PollNoTimeout = ^uint64(0)

// PollFDSize is the wire size of one pollfd entry in the Data payload:
// fd uint32 | events uint16 | revents uint16, little-endian.
const PollFDSize = 8

// EncodePollFD writes entry i of a pollfd array (revents zeroed). The
// caller supplies the buffer — sized n*PollFDSize — so a poll loop reuses
// one array across calls instead of allocating per poll.
func EncodePollFD(b []byte, i int, fd int, events uint16) {
	e := b[i*PollFDSize:]
	binary.LittleEndian.PutUint32(e, uint32(fd))
	binary.LittleEndian.PutUint16(e[4:], events)
	binary.LittleEndian.PutUint16(e[6:], 0)
}

// DecodePollFD reads entry i of a pollfd array.
func DecodePollFD(b []byte, i int) (fd int, events, revents uint16) {
	e := b[i*PollFDSize:]
	return int(binary.LittleEndian.Uint32(e)),
		binary.LittleEndian.Uint16(e[4:]),
		binary.LittleEndian.Uint16(e[6:])
}

// DecodeRevents reads entry i's revents from a poll result payload.
func DecodeRevents(b []byte, i int) uint16 {
	return binary.LittleEndian.Uint16(b[i*PollFDSize+6:])
}

func putRevents(b []byte, i int, ev uint16) {
	binary.LittleEndian.PutUint16(b[i*PollFDSize+6:], ev)
}

// pollScan fills out's revents from the current readiness of each entry's
// descriptor and returns how many entries are ready. A dead descriptor
// reports PollNval (and counts as ready: the caller must be told, not
// parked forever on an fd that cannot produce events).
//
// The whole scan runs under one Proc.mu hold — the scan re-runs on every
// wake, and a per-fd lookupFD would pay two lock round-trips per entry
// per wake on the evented serving path. Object poll() methods take their
// own pipe/listener locks inside; the p.mu → object-lock order matches
// every other kernel path (nothing acquires p.mu while holding an object
// lock).
func (k *Kernel) pollScan(p *Proc, out []byte, n int) int {
	ready := 0
	p.mu.Lock()
	for i := 0; i < n; i++ {
		fd, events, _ := DecodePollFD(out, i)
		e := p.fdt.get(fd)
		var rev uint16
		if e == nil {
			rev = PollNval
		} else {
			// Errors and hang-ups are always reported, like poll(2);
			// everything else is masked by the caller's interest set.
			rev = uint16(e.obj.poll()) & (events | PollErr | PollHup | PollNval)
		}
		putRevents(out, i, rev)
		if rev != 0 {
			ready++
		}
	}
	p.mu.Unlock()
	return ready
}

// doPoll implements SysPoll. It may block; the monitor classifies poll as
// a blocking replicated call (master executes, result replicated), so only
// the master's thread ever parks here.
func (k *Kernel) doPoll(p *Proc, c Call) Ret {
	n := int(c.Args[0])
	if n < 0 || n > maxFDs || n*PollFDSize != len(c.Data) {
		return Ret{Err: EINVAL}
	}
	// The result is a fresh copy: the input payload is compared across
	// variants (and may sit in a replication ring slot), so revents must
	// never be written into the caller's buffer in place.
	out := make([]byte, len(c.Data))
	copy(out, c.Data)
	timeout := c.Args[1]
	if timeout > uint64(1<<63-1) {
		// Clamp: a nanosecond count past time.Duration's range (292 years)
		// would overflow negative and turn the poll into a busy return.
		timeout = PollNoTimeout
	}
	var deadline time.Time
	if timeout != PollNoTimeout && timeout != 0 {
		deadline = k.clock.Now().Add(time.Duration(timeout))
		// One wake at the deadline for the whole call (the parked poller
		// re-checks and returns 0 events), armed up front: the wait set is
		// kernel-wide, so a busy kernel wakes the loop spuriously many
		// times, and re-arming per park would allocate a timer per wake.
		// The timer allocates once; event loops that must stay
		// allocation-free poll with PollNoTimeout and rely on wakeups.
		tm := k.clock.AfterFunc(time.Duration(timeout), k.pollPark.Wake)
		defer tm.Stop()
	}
	for {
		if ready := k.pollScan(p, out, n); ready > 0 {
			return Ret{Val: uint64(ready), Data: out}
		}
		if timeout == 0 || (timeout != PollNoTimeout && !k.clock.Now().Before(deadline)) {
			return Ret{Data: out}
		}
		if k.stopped() {
			// Session teardown: report the scan as-is rather than parking
			// on a dying kernel (an empty fd set would never wake).
			return Ret{Data: out, Err: EBADF}
		}
		if p.signalPending() {
			// A deliverable signal interrupts a poll that would otherwise
			// sleep (a ready scan above already returned, matching Linux:
			// poll with ready fds wins over EINTR). Kill's signalKick wakes
			// the poll wait set, so a parked poller gets here promptly.
			return Ret{Data: out, Err: EINTR}
		}
		// FUTEX_WAIT protocol on the kernel's poll wait set: announce,
		// re-check readiness AND the deadline (a state change — or the
		// deadline timer's one-shot Wake, which is a no-op while nobody
		// has Prepared — landing between the checks above and the
		// announcement would otherwise be a lost wakeup), then park.
		g := k.pollPark.Prepare()
		if k.pollScan(p, out, n) > 0 || k.stopped() || p.signalPending() ||
			(timeout != PollNoTimeout && !k.clock.Now().Before(deadline)) {
			k.pollPark.Cancel()
			continue
		}
		if p.board != nil && timeout == PollNoTimeout && k.pollAllInternal(p, out, n) {
			// An untimed poll over exclusively internal descriptors is a
			// detectable sleep: no timer will end it and no host-side wake
			// can flip its readiness. The proof is the parker generation
			// from Prepare — any Wake that saw us waiting bumps it.
			p.board.park(cell{
				site: BlockedSite{Tid: c.Tid, Kind: BlockPoll, FD: n},
				pk:   &k.pollPark, g: g,
			})
			k.pollPark.Park(g)
			p.board.unpark(c.Tid)
			continue
		}
		k.pollPark.Park(g)
	}
}

// pollAllInternal reports whether every descriptor in the poll set is
// backed by internal (guest-only) pipes — the condition under which a
// parked untimed poller counts toward a deadlock verdict. Anything else —
// a listener (host Connect enqueues into it), an external connection pipe,
// a dead fd, a file — disqualifies the set, erring toward false negatives.
func (k *Kernel) pollAllInternal(p *Proc, out []byte, n int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < n; i++ {
		fd, _, _ := DecodePollFD(out, i)
		e := p.fdt.get(fd)
		if e == nil {
			return false
		}
		ok := false
		switch o := e.obj.(type) {
		case *readEnd:
			ok = o.p.isInternal()
		case *writeEnd:
			ok = o.p.isInternal()
		case *socketObj:
			rx, tx := o.rx.Load(), o.tx.Load()
			ok = rx != nil && tx != nil && rx.isInternal() && tx.isInternal()
		}
		if !ok {
			return false
		}
	}
	return true
}
