package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/futex"
)

// Kernel is one simulated machine: a shared file system and network plus
// per-process state. All variants of one MVEE session run against the same
// Kernel, just as they run on the same host in the paper.
type Kernel struct {
	fs  *fileSystem
	net *netStack

	// Futexes are per process; the table maps pid -> futex namespace.
	futexMu sync.Mutex
	futexes map[int]*futex.Table

	procMu  sync.Mutex
	procs   map[int]*Proc
	nextPid int

	// treeMu guards every process tree's parent/children/zombie state and
	// the pid namespaces; treeCond (bound to it) wakes blocked waitpids on
	// child exits, kills, and teardown. See process.go.
	treeMu   sync.Mutex
	treeCond sync.Cond
	// treeSeq counts treeCond broadcasts (bumped under treeMu by treeWake)
	// — the waitpid analogue of pipe.wakeSeq: a blocked waitpid's deadlock
	// cell records the sequence it parked at, and a moved sequence proves a
	// wake in flight.
	treeSeq atomic.Uint64

	// clock is the kernel's time source (real by default). Every deadline
	// site — nanosleep, poll, injected latency, gettimeofday — goes through
	// it, so tests and soaks can run on virtual or accelerated time.
	clock Clock
	// injector, when non-nil, decides fault injection for eligible calls
	// (see fault.go). The nil check in Do is the entire disabled-path cost.
	injector FaultInjector

	start time.Time
	// logical advances once per clock read so that two gettimeofday calls
	// never return the identical instant — the property the covert
	// channel PoC (§5.4) depends on.
	logical atomic.Uint64
	// sleeps counts executed nanosleeps. Under the monitor only the
	// master's sleep reaches the kernel (slaves consume the replicated
	// result), and tests assert exactly that.
	sleeps atomic.Uint64

	// Interruption support: when the monitor tears the session down (on
	// divergence), every blockable object is force-closed so that threads
	// parked in the kernel unwind.
	intMu       sync.Mutex
	interrupted bool
	blockables  map[interruptible]struct{}

	// pollPark is the kernel-wide poll wait set: SysPoll callers with no
	// ready descriptor park here, and every object state change that could
	// flip readiness wakes it through the object header (objHeader.pollWake
	// — one atomic load when nobody polls). One wait set per kernel is
	// deliberate, mirroring ring.Log's single wait set: wakes broadcast and
	// pollers re-scan, so sharing costs only spurious re-scans, while
	// per-object wait sets would force a poller to park on N queues at
	// once.
	pollPark futex.Parker

	// Per-connection object pools. Serving traffic means two pipes and a
	// socket endpoint per connection; recycling them (buffers included,
	// reset on put) keeps Connect/Accept off the allocator on the serving
	// hot path. The pools are per kernel, not package-global, so a pipe
	// can never migrate between sessions — the interrupt path may close a
	// just-recycled pipe, and that must only ever hit the session being
	// torn down.
	pipePool sync.Pool
	sockPool sync.Pool
}

// interruptible objects can be force-closed at session teardown
// (interrupt) and prodded to re-check their blocking predicates without
// state loss (kick — the signal-delivery path: a woken waiter re-checks
// the deliverable-signal predicate and unwinds with EINTR).
type interruptible interface {
	interrupt()
	kick()
}

func (p *pipe) interrupt()     { p.interruptNow() }
func (l *listener) interrupt() { l.close() }

// track registers a blockable object; if the kernel is already interrupted
// the object is closed immediately.
func (k *Kernel) track(x interruptible) {
	k.intMu.Lock()
	dead := k.interrupted
	if !dead {
		if k.blockables == nil {
			k.blockables = make(map[interruptible]struct{})
		}
		k.blockables[x] = struct{}{}
	}
	k.intMu.Unlock()
	if dead {
		x.interrupt()
	}
}

// untrack forgets a blockable whose lifetime ended on its own. Without it,
// every connection's pipes would stay pinned on the interrupt list (buffers
// included) for the whole session — unbounded live-heap growth that the
// collector re-scans on every cycle while the server is under load.
// Kernel-owned pipes untrack themselves through releasePipe once they are
// dead and drained, on their way back into the pipe pool.
func (k *Kernel) untrack(x interruptible) {
	k.intMu.Lock()
	delete(k.blockables, x)
	k.intMu.Unlock()
}

// stopped reports whether the kernel has been interrupted (session
// teardown). Blocking poll loops check it so they unwind instead of
// re-parking on a dying kernel.
func (k *Kernel) stopped() bool {
	k.intMu.Lock()
	s := k.interrupted
	k.intMu.Unlock()
	return s
}

// Interrupt force-closes every pipe, socket and listener so that any thread
// blocked in the kernel returns with an error or EOF. It is idempotent.
func (k *Kernel) Interrupt() {
	k.intMu.Lock()
	k.interrupted = true
	blockables := k.blockables
	k.blockables = nil
	k.intMu.Unlock()
	for x := range blockables {
		x.interrupt()
	}
	// Closing the blockables flipped their readiness; parked pollers must
	// re-scan (and see the hang-ups, or the stopped flag) to unwind.
	k.pollPark.Wake()
	// Waitpid waiters and nanosleepers park on conds/parkers of their own:
	// wake them so they observe the stopped flag and return EINTR.
	k.treeMu.Lock()
	k.treeWake()
	k.treeMu.Unlock()
	k.procMu.Lock()
	for _, p := range k.procs {
		p.sigPark.Wake()
	}
	k.procMu.Unlock()
}

// treeWake broadcasts the tree cond, bumping the wake sequence first so a
// waitpid deadlock cell registered before this wake is provably stale.
// Callers hold k.treeMu (which is also what orders the bump against cell
// registration — waitpid samples treeSeq under the same lock).
func (k *Kernel) treeWake() {
	k.treeSeq.Add(1)
	k.treeCond.Broadcast()
}

// New creates an empty kernel.
func New() *Kernel {
	k := &Kernel{
		fs:      newFileSystem(),
		net:     newNetStack(),
		futexes: make(map[int]*futex.Table),
		procs:   make(map[int]*Proc),
		nextPid: 1000,
		clock:   realClock{},
		start:   time.Now(),
	}
	k.treeCond.L = &k.treeMu
	return k
}

// SetClock installs an alternative time source and re-anchors the kernel's
// epoch on it. Call it before the kernel serves calls (it is not
// synchronized against in-flight syscalls).
func (k *Kernel) SetClock(c Clock) {
	k.clock = c
	k.start = c.Now()
}

// NewProc registers a new process whose heap and mmap regions start at the
// given (diversified) bases.
func (k *Kernel) NewProc(brkBase, mmapBase uint64) *Proc {
	k.procMu.Lock()
	pid := k.nextPid
	k.nextPid++
	p := NewProc(pid, NewAddressSpace(brkBase, mmapBase))
	p.kern = k
	k.procs[pid] = p
	k.procMu.Unlock()
	return p
}

// FutexTable returns the futex namespace of process pid, creating it on
// first use.
func (k *Kernel) FutexTable(pid int) *futex.Table {
	k.futexMu.Lock()
	defer k.futexMu.Unlock()
	t, ok := k.futexes[pid]
	if !ok {
		t = &futex.Table{}
		k.futexes[pid] = t
	}
	return t
}

// WriteFile creates (or replaces) a file, for test and workload setup.
func (k *Kernel) WriteFile(path string, data []byte) {
	ino, _ := k.fs.create(path, false)
	ino.truncate(0)
	ino.writeAt(data, 0)
}

// ReadFile returns a copy of a file's content, for assertions in tests.
func (k *Kernel) ReadFile(path string) ([]byte, bool) {
	ino, ok := k.fs.lookup(path)
	if !ok {
		return nil, false
	}
	buf := make([]byte, ino.size())
	ino.readAt(buf, 0)
	return buf, true
}

// Listen opens a listener on port from outside the MVEE (used by clients in
// tests); servers under the MVEE use SysSocket/SysBind/SysListen instead.
func (k *Kernel) Listen(port uint16, backlog int) (*listener, Errno) {
	l := newListener(k, port, backlog)
	k.track(l)
	if errno := k.net.bind(port, l); errno != OK {
		k.abortListener(l) // same invariant as doListen: failed binds must not pin the interrupt list
		return nil, errno
	}
	return l, OK
}

// CloseListener shuts down the listener bound to port (from outside the
// MVEE), causing pending and future accepts to fail — the orderly way for
// tests and examples to stop a server program.
func (k *Kernel) CloseListener(port uint16) {
	if l, ok := k.net.lookup(port); ok {
		l.close()
		k.net.unbind(port)
	}
}

// Connect establishes a loopback connection to port and returns the client
// endpoint BY VALUE. Client code in tests and load generators talks to the
// server through the returned ClientConn. The connection's pipes come from
// the kernel's pool and the conn travels into the listener backlog by
// copy, so a connect allocates nothing — the serving connect path's only
// remaining allocation is the exact-sized recv result on the server side.
func (k *Kernel) Connect(port uint16) (ClientConn, Errno) {
	l, ok := k.net.lookup(port)
	if !ok {
		return ClientConn{}, ECONNREFUSED
	}
	c := conn{toServer: k.getPipe(), fromServer: k.getPipe()}
	cc := ClientConn{c: c, toGen: c.toServer.generation(), fromGen: c.fromServer.generation()}
	// The host holds one end of both pipes: a guest thread sleeping on
	// either can be woken from outside the guest, so these sleeps must
	// never count toward a deadlock verdict.
	c.toServer.markExternal()
	c.fromServer.markExternal()
	k.track(c.toServer)
	k.track(c.fromServer)
	if errno := k.enqueueChasing(l, c, port); errno != OK {
		// Close both pipes so they recycle: a refused connect (full
		// backlog under overload) must not pin its pipes on the interrupt
		// list for the session's lifetime.
		c.toServer.interrupt()
		c.fromServer.interrupt()
		return ClientConn{}, errno
	}
	return cc, OK
}

// enqueueChasing enqueues cn on l, chasing the port's current listener if a
// hot-restart handoff (doListen takeover) swapped it between the caller's
// lookup and the enqueue: the old listener refuses (closed), but the
// connection was never dropped by the guest, so it belongs in the
// successor's backlog. The loop terminates because a re-looked-up listener
// that still refuses is only replaced by a DIFFERENT successor; seeing the
// same (or no) listener twice means the refusal is real.
func (k *Kernel) enqueueChasing(l *listener, cn conn, port uint16) Errno {
	errno := l.enqueue(cn)
	for errno == ECONNREFUSED {
		nl, ok := k.net.lookup(port)
		if !ok || nl == l {
			break
		}
		l = nl
		errno = l.enqueue(cn)
	}
	return errno
}

// ClientConn is the client-side view of a loopback connection, used by
// load generators that live outside the MVEE. Every operation carries the
// generation the pipes were acquired at, so a call that arrives after the
// connection's pipes have been recycled — a gateway watchdog's Close
// racing the request path, a Read after Close — gets EBADF instead of
// touching a successor connection. ClientConn is a value type: copies
// share the same pipes and the same generation stamps, so copying is
// harmless, and returning one from Connect costs no heap allocation.
type ClientConn struct {
	c              conn
	toGen, fromGen uint64
}

// Write sends data toward the server.
func (cc ClientConn) Write(p []byte) (int, error) {
	n, errno := cc.c.toServer.write(cc.toGen, p, blocker{})
	if errno != OK {
		return n, errno
	}
	return n, nil
}

// Read receives data from the server; it returns n==0 and nil error at EOF.
func (cc ClientConn) Read(p []byte) (int, error) {
	n, errno := cc.c.fromServer.read(cc.fromGen, p, blocker{})
	if errno != OK {
		return n, errno
	}
	return n, nil
}

// Close shuts down the client side of the connection. It is idempotent
// (the generation check absorbs repeats and late watchdog closes: once
// the pipes' lifetime has moved on, Close is a no-op).
func (cc ClientConn) Close() {
	cc.c.toServer.closeWrite(cc.toGen)
	cc.c.fromServer.closeRead(cc.fromGen)
}

// nowNanos returns a strictly increasing timestamp: real elapsed time mixed
// with a logical increment so that consecutive reads always differ.
//
// Two reads never return the same value even zero time apart, which means
// a gettimeofday executed once per variant would be a guaranteed
// benign-divergence source; the monitor therefore executes wall-clock
// reads in the master only and replicates the value (see
// monitor.classify).
func (k *Kernel) nowNanos() uint64 {
	return uint64(k.clock.Now().Sub(k.start).Nanoseconds()) + k.logical.Add(1)
}

// Sleeps reports how many nanosleeps the kernel actually executed (slept
// for). Tests use it to prove slaves consume the master's replicated
// nanosleep result instead of re-paying the sleep.
func (k *Kernel) Sleeps() uint64 { return k.sleeps.Load() }

// ProcCount reports the number of live (running or zombie, not yet
// reaped) processes across every variant. Tests use it to prove forked
// workers are reaped rather than leaked: after a clean multi-process run
// only the per-variant root processes remain.
func (k *Kernel) ProcCount() int {
	k.procMu.Lock()
	defer k.procMu.Unlock()
	return len(k.procs)
}

// Do executes one system call on behalf of process p. It may block (pipe
// reads, accept, poll, nanosleep) — the monitor is responsible for only
// routing calls here in accordance with its synchronization model.
//
// With a fault injector installed, eligible calls detour through
// injectedDo (fault.go) first; without one, the nil check below is the
// whole cost of having the chaos plane compiled in.
func (k *Kernel) Do(p *Proc, c Call) Ret {
	if k.injector != nil {
		return k.injectedDo(p, c)
	}
	return k.dispatch(p, c)
}

func (k *Kernel) dispatch(p *Proc, c Call) Ret {
	switch c.Nr {
	case SysOpen:
		return k.doOpen(p, c)
	case SysClose:
		return k.doClose(p, c)
	case SysRead:
		return k.doRead(p, c)
	case SysWrite:
		return k.doWrite(p, c)
	case SysPread:
		return k.doPread(p, c)
	case SysPwrite:
		return k.doPwrite(p, c)
	case SysLseek:
		return k.doLseek(p, c)
	case SysStat:
		return k.doStat(c)
	case SysUnlink:
		return retErr(k.fs.unlink(string(c.Data)))
	case SysDup:
		fd, errno := p.dupFD(int(c.Args[0]))
		return Ret{Val: uint64(fd), Err: errno}
	case SysPipe2:
		return k.doPipe(p)
	case SysFtruncate:
		return k.doFtruncate(p, c)
	case SysBrk:
		return Ret{Val: p.AS.Brk(c.Args[0])}
	case SysMmap:
		addr, errno := p.AS.Mmap(c.Args[1])
		return Ret{Val: addr, Err: errno}
	case SysMunmap:
		return retErr(p.AS.Munmap(c.Args[0], c.Args[1]))
	case SysClone:
		return k.doClone(p, c)
	case SysThreadExit:
		return k.doThreadExit(p)
	case SysMprotect:
		if !p.AS.Mapped(c.Args[0]) {
			return Ret{Err: ENOMEM}
		}
		return Ret{}
	case SysGettimeofday, SysClockGettime:
		return Ret{Val: k.nowNanos()}
	case SysNanosleep:
		return k.doNanosleep(p, c)
	case SysSchedYield:
		runtime.Gosched()
		return Ret{}
	case SysGetpid:
		// The guest-visible pid is the deterministic namespace pid, not
		// the kernel-internal one: guests feed it back into kill/waitpid,
		// whose arguments are compared across variants.
		return Ret{Val: uint64(p.vpid)}
	case SysFork:
		return k.doFork(p)
	case SysExit:
		return k.doExit(p, c)
	case SysWaitpid:
		return k.doWaitpid(p, c)
	case SysKill:
		return k.doKill(p, c)
	case SysSigaction:
		return k.doSigaction(p, c)
	case SysSigprocmask:
		return k.doSigprocmask(p, c)
	case SysSocket:
		// The descriptor is allocated at connect/accept/listen time in
		// this simplified stack; socket() reserves a placeholder (the
		// endpoint pipes are attached by connect, so none are created
		// here). The placeholder comes from the endpoint pool.
		fd, errno := p.allocFD(k.getSock(), 0, 0)
		return Ret{Val: uint64(fd), Err: errno}
	case SysBind, SysListen:
		return k.doListen(p, c)
	case SysAccept:
		return k.doAccept(p, c)
	case SysConnect:
		return k.doConnect(p, c)
	case SysSend:
		return k.doWrite(p, c)
	case SysRecv:
		return k.doRead(p, c)
	case SysShutdown:
		return k.doClose(p, c)
	case SysPoll:
		return k.doPoll(p, c)
	case SysWritev:
		return k.doWritev(p, c)
	case SysSendfile:
		return k.doSendfile(p, c)
	default:
		return Ret{Err: ENOSYS}
	}
}

func retErr(errno Errno) Ret { return Ret{Err: errno} }

// doNanosleep sleeps for Args[0] nanoseconds, interruptibly: a deliverable
// signal arriving mid-sleep wakes the sleeper (kill's signalKick wakes the
// proc's parker) and the call returns EINTR so the boundary can deliver
// it. Only the master ever executes this (nanosleep is replicated), so the
// sleeps counter still counts exactly the paid sleeps. The deadline loop
// itself is sleepFor (fault.go) — the same clock-driven wait that injected
// latency uses, so both honor virtual time and kill identically.
func (k *Kernel) doNanosleep(p *Proc, c Call) Ret {
	k.sleeps.Add(1)
	return retErr(k.sleepFor(p, time.Duration(c.Args[0])))
}

// doClose implements SysClose/SysShutdown. A successful close flips the
// fd's poll readiness to PollNval, and not every close path reaches a
// pipe wake (an unconnected socket() placeholder, a file, a non-last
// close of a dup'd descriptor touch no pipe or listener) — so the close
// itself wakes the poll wait set, keeping pollScan's promise that a dead
// fd is reported rather than parked on forever.
func (k *Kernel) doClose(p *Proc, c Call) Ret {
	errno := p.closeFD(int(c.Args[0]))
	if errno == OK {
		k.pollPark.Wake()
	}
	return retErr(errno)
}

func (k *Kernel) doOpen(p *Proc, c Call) Ret {
	path := string(c.Data)
	flags := int(c.Args[0])
	var ino *inode
	if flags&OCreat != 0 {
		var errno Errno
		ino, errno = k.fs.create(path, flags&OExcl != 0)
		if errno != OK {
			return Ret{Err: errno}
		}
	} else {
		var ok bool
		ino, ok = k.fs.lookup(path)
		if !ok {
			return Ret{Err: ENOENT}
		}
	}
	if flags&OTrunc != 0 {
		ino.truncate(0)
	}
	f := &fileObj{ino: ino}
	f.hdr.kern = k
	var off int64
	if flags&OAppend != 0 {
		off = ino.size()
	}
	fd, errno := p.allocFD(f, flags, off)
	if errno != OK {
		return Ret{Err: errno}
	}
	return Ret{Val: uint64(fd)}
}

func (k *Kernel) doRead(p *Proc, c Call) Ret {
	ref, errno := p.lookupFD(int(c.Args[0]))
	if errno != OK {
		return Ret{Err: errno}
	}
	count := int(c.Args[1])
	// Streams (pipes, sockets) return a result sized to the bytes actually
	// pending: a recv asking for 4 KiB costs a 14-byte allocation when 14
	// bytes arrived, not a 4 KiB one. This is the kernel half of keeping
	// the per-request allocation volume proportional to the traffic. The
	// stale check catches an object retired (and possibly re-attached to
	// a successor connection) by a close(2) racing this read.
	if ar, ok := ref.obj.(availableReader); ok {
		if ref.stale() {
			return Ret{Err: EBADF}
		}
		// When the caller supplied a destination buffer (Call.Buf), fill it
		// in place and alias the result — the allocation-free receive path.
		if c.Buf != nil {
			if br, ok := ref.obj.(bufReader); ok {
				dst := c.Buf
				if count < len(dst) {
					dst = dst[:count]
				}
				n, errno := br.readInto(dst, p.blk(c.Tid, int(c.Args[0])))
				if errno != OK {
					return Ret{Err: errno}
				}
				return Ret{Val: uint64(n), Data: dst[:n]}
			}
		}
		data, errno := ar.readAvailable(count, p.blk(c.Tid, int(c.Args[0])))
		if errno != OK {
			return Ret{Err: errno}
		}
		return Ret{Val: uint64(len(data)), Data: data}
	}
	if !ref.obj.seekable() {
		if ref.stale() {
			return Ret{Err: EBADF}
		}
		buf := make([]byte, count)
		n, errno := ref.obj.read(buf, 0)
		if errno != OK {
			return Ret{Err: errno}
		}
		return Ret{Val: uint64(n), Data: buf[:n]}
	}
	// Seekable object: the offset (like the access mode checked here)
	// lives in the shared open file description, moved under its lock —
	// two descriptors from dup(2) observe each other's reads, and the
	// generation check turns a read racing the descriptor's close into
	// EBADF instead of a read through a recycled entry. Files never
	// block, so holding ent.mu across the read is fine. Don't allocate
	// for bytes that cannot arrive.
	if ref.accessMode() == OWronly {
		return Ret{Err: EBADF}
	}
	e := ref.ent
	e.mu.Lock()
	if e.gen.Load() != ref.gen {
		e.mu.Unlock()
		return Ret{Err: EBADF}
	}
	off := e.offset
	if sz, errno := ref.obj.size(); errno == OK {
		if rem := sz - off; rem < int64(count) {
			count = int(max(rem, 0))
		}
	}
	buf := make([]byte, count)
	n, errno := ref.obj.read(buf, off)
	if errno != OK {
		e.mu.Unlock()
		return Ret{Err: errno}
	}
	e.offset = off + int64(n)
	e.mu.Unlock()
	return Ret{Val: uint64(n), Data: buf[:n]}
}

// availableReader is implemented by stream objects that can hand back an
// exactly-sized read result (see pipe.readAvailable). The blocker carries
// the interrupt predicate (EINTR on deliverable signal — the
// signal-delivery hook) and, when armed, the deadlock-cell identity.
type availableReader interface {
	readAvailable(max int, w blocker) ([]byte, Errno)
}

// bufReader is implemented by stream objects that can fill a caller-owned
// destination buffer with the pending bytes — the Call.Buf receive path,
// which makes a steady-state serving loop's recv allocation-free.
type bufReader interface {
	readInto(dst []byte, w blocker) (int, Errno)
}

// streamWriter is implemented by stream objects whose writes can block on
// a full buffer; writeIntr is the interruptible variant of write.
type streamWriter interface {
	writeIntr(p []byte, w blocker) (int, Errno)
}

func (k *Kernel) doWrite(p *Proc, c Call) Ret {
	ref, errno := p.lookupFD(int(c.Args[0]))
	if errno != OK {
		return Ret{Err: errno}
	}
	if !ref.obj.seekable() {
		if ref.stale() {
			return Ret{Err: EBADF}
		}
		var n int
		var werrno Errno
		if sw, ok := ref.obj.(streamWriter); ok {
			// Stream writes can block on a full buffer; route them through
			// the interruptible path so a signal EINTRs them.
			n, werrno = sw.writeIntr(c.Data, p.blk(c.Tid, int(c.Args[0])))
		} else {
			n, werrno = ref.obj.write(c.Data, 0)
		}
		if werrno != OK {
			return Ret{Val: uint64(n), Err: werrno}
		}
		return Ret{Val: uint64(n)}
	}
	if ref.accessMode() == ORdonly {
		return Ret{Err: EBADF}
	}
	e := ref.ent
	e.mu.Lock()
	if e.gen.Load() != ref.gen {
		e.mu.Unlock()
		return Ret{Err: EBADF}
	}
	n, errno := ref.obj.write(c.Data, e.offset)
	if errno != OK {
		e.mu.Unlock()
		return Ret{Err: errno}
	}
	e.offset += int64(n)
	e.mu.Unlock()
	return Ret{Val: uint64(n)}
}

func (k *Kernel) doPread(p *Proc, c Call) Ret {
	ref, errno := p.lookupFD(int(c.Args[0]))
	if errno != OK {
		return Ret{Err: errno}
	}
	if !ref.obj.seekable() {
		return Ret{Err: ESPIPE}
	}
	if ref.accessMode() == OWronly {
		return Ret{Err: EBADF}
	}
	buf := make([]byte, int(c.Args[1]))
	n, errno := ref.obj.read(buf, int64(c.Args[2]))
	if errno != OK {
		return Ret{Err: errno}
	}
	return Ret{Val: uint64(n), Data: buf[:n]}
}

func (k *Kernel) doPwrite(p *Proc, c Call) Ret {
	ref, errno := p.lookupFD(int(c.Args[0]))
	if errno != OK {
		return Ret{Err: errno}
	}
	if !ref.obj.seekable() {
		return Ret{Err: ESPIPE}
	}
	if ref.accessMode() == ORdonly {
		return Ret{Err: EBADF}
	}
	n, errno := ref.obj.write(c.Data, int64(c.Args[1]))
	if errno != OK {
		return Ret{Err: errno}
	}
	return Ret{Val: uint64(n)}
}

func (k *Kernel) doLseek(p *Proc, c Call) Ret {
	ref, errno := p.lookupFD(int(c.Args[0]))
	if errno != OK {
		return Ret{Err: errno}
	}
	if !ref.obj.seekable() {
		return Ret{Err: ESPIPE}
	}
	e := ref.ent
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gen.Load() != ref.gen {
		return Ret{Err: EBADF}
	}
	off := int64(c.Args[1])
	switch c.Args[2] {
	case SeekSet:
		e.offset = off
	case SeekCur:
		e.offset += off
	case SeekEnd:
		sz, _ := ref.obj.size()
		e.offset = sz + off
	default:
		return Ret{Err: EINVAL}
	}
	if e.offset < 0 {
		e.offset = 0
		return Ret{Err: EINVAL}
	}
	return Ret{Val: uint64(e.offset)}
}

func (k *Kernel) doStat(c Call) Ret {
	ino, ok := k.fs.lookup(string(c.Data))
	if !ok {
		return Ret{Err: ENOENT}
	}
	return Ret{Val: uint64(ino.size())}
}

func (k *Kernel) doPipe(p *Proc) Ret {
	pi := k.getPipe()
	gen := pi.generation()
	k.track(pi)
	rfd, errno := p.allocFD(&readEnd{p: pi, gen: gen}, ORdonly, 0)
	if errno != OK {
		// No descriptor will ever close the pipe: close both ends so it
		// recycles instead of pinning the interrupt list (a process stuck
		// at the fd limit must not leak one pipe per failed pipe2).
		pi.interruptNow()
		return Ret{Err: errno}
	}
	wfd, errno := p.allocFD(&writeEnd{p: pi, gen: gen}, OWronly, 0)
	if errno != OK {
		p.closeFD(rfd)     // closes the read side
		pi.closeWrite(gen) // no write descriptor will ever exist
		return Ret{Err: errno}
	}
	return Ret{Val: uint64(rfd), Val2: uint64(wfd)}
}

func (k *Kernel) doFtruncate(p *Proc, c Call) Ret {
	ref, errno := p.lookupFD(int(c.Args[0]))
	if errno != OK {
		return Ret{Err: errno}
	}
	f, ok := ref.obj.(*fileObj)
	if !ok {
		return Ret{Err: EINVAL}
	}
	if ref.accessMode() == ORdonly {
		// Like read/write, the access mode lives on the shared open file
		// description; ftruncate is a write effect (Linux: EINVAL for a
		// descriptor not open for writing).
		return Ret{Err: EINVAL}
	}
	f.ino.truncate(int64(c.Args[1]))
	return Ret{}
}

// doListen binds a fresh listener on the requested port and replaces the
// placeholder socket object behind the descriptor. Bind and listen are
// collapsed into one call; the monitor still sees both syscalls.
//
// Args[3] != 0 requests a TAKEOVER (the hot-restart handoff, SO_REUSEPORT
// in spirit): instead of failing EADDRINUSE, the new listener atomically
// displaces the one currently bound at the port. The displaced listener is
// closed — its parked accepts wake, drain whatever its backlog still holds,
// and then see EINVAL, which is how an old worker epoch learns to stop
// accepting and exit once in-flight requests finish. Backlog entries no old
// worker gets to are migrated into the new listener, so no connection is
// dropped across the swap.
func (k *Kernel) doListen(p *Proc, c Call) Ret {
	if c.Nr == SysBind {
		return Ret{} // recorded for ordering; listen does the work
	}
	fd := int(c.Args[0])
	port := uint16(c.Args[1])
	backlog := int(c.Args[2])
	if backlog <= 0 {
		backlog = 128
	}
	takeover := c.Args[3] != 0
	ref, errno := p.lookupFD(fd)
	if errno != OK {
		return Ret{Err: errno}
	}
	l := newListener(k, port, backlog)
	k.track(l)
	if takeover {
		if old := k.net.rebind(port, l); old != nil {
			// Close first (stops new enqueues and wakes the old epoch's
			// parked accepts), then migrate what the old workers don't
			// drain themselves — both sides pop under the old listener's
			// lock, so every pending connection is served exactly once.
			old.close()
			for {
				cn, errno := old.accept(nil)
				if errno != OK {
					break
				}
				if l.enqueue(cn) != OK {
					cn.toServer.interrupt()
					cn.fromServer.interrupt()
				}
			}
		}
	} else if errno := k.net.bind(port, l); errno != OK {
		k.abortListener(l) // nothing can have enqueued; just untrack
		return Ret{Err: errno}
	}
	// Install the listener only if the descriptor still maps to the same
	// description: a close racing in would otherwise resurrect a retired
	// entry as a listening socket.
	p.mu.Lock()
	if !p.revalidateLocked(fd, ref) {
		p.mu.Unlock()
		// Unbind first so no further connects can enqueue, then tear the
		// orphan down: nobody will ever accept from it, so connections
		// that raced into the backlog must be interrupted (their clients
		// would block forever) and the listener must leave the interrupt
		// list rather than pinning there until session teardown.
		k.net.unbind(port)
		k.abortListener(l)
		return Ret{Err: EBADF}
	}
	// Recycle the socket() placeholder the listener displaces (it is
	// unconnected, so close touches no pipes — it just retires the header
	// and returns the object to the pool, like doAccept's error path).
	if s, ok := ref.ent.obj.(*socketObj); ok {
		s.close()
	}
	ref.ent.obj = l
	p.mu.Unlock()
	return Ret{}
}

// abortListener tears down a listener that will never be accepted from:
// close it, interrupt any connections that raced into its backlog (their
// clients would block forever; accept on a closed listener drains without
// blocking), and drop it from the interrupt-tracking list.
func (k *Kernel) abortListener(l *listener) {
	l.close()
	for {
		cn, errno := l.accept(nil)
		if errno != OK {
			break
		}
		cn.toServer.interrupt()
		cn.fromServer.interrupt()
	}
	k.untrack(l)
}

func (k *Kernel) doAccept(p *Proc, c Call) Ret {
	ref, errno := p.lookupFD(int(c.Args[0]))
	if errno != OK {
		return Ret{Err: errno}
	}
	l, ok := ref.obj.(*listener)
	if !ok {
		return Ret{Err: ENOTSOCK}
	}
	cn, errno := l.accept(p.sigIntr)
	if errno != OK {
		return Ret{Err: errno}
	}
	s := k.getSock()
	s.attach(cn.toServer, cn.fromServer)
	fd, errno := p.allocFD(s, 0, 0)
	if errno != OK {
		s.close() // no descriptor will ever close it; recycle now
		return Ret{Err: errno}
	}
	return Ret{Val: uint64(fd)}
}

func (k *Kernel) doConnect(p *Proc, c Call) Ret {
	// Validate the descriptor BEFORE creating and enqueuing the
	// connection: enqueue-then-validate left a ghost conn in the
	// listener's backlog on a bad fd — the server accepted it and hung in
	// recv forever, and its pipes stayed pinned on the interrupt list
	// instead of returning to the pool.
	fd := int(c.Args[0])
	ref, errno := p.lookupFD(fd)
	if errno != OK {
		return Ret{Err: errno}
	}
	port := uint16(c.Args[1])
	l, ok := k.net.lookup(port)
	if !ok {
		return Ret{Err: ECONNREFUSED}
	}
	cn := conn{toServer: k.getPipe(), fromServer: k.getPipe()}
	k.track(cn.toServer)
	k.track(cn.fromServer)
	if errno := k.enqueueChasing(l, cn, port); errno != OK {
		// See Connect: refused connects must release their pipes.
		cn.toServer.interrupt()
		cn.fromServer.interrupt()
		return Ret{Err: errno}
	}
	// Attach the pipes to the placeholder socket() already installed at
	// the descriptor, rather than allocating a replacement object — but
	// only after re-validating that the descriptor still maps to the same
	// description at the same generation: a concurrent close(2) during the
	// enqueue may have retired and recycled the entry, and attaching
	// through the stale entry would redirect another connection's pipes.
	p.mu.Lock()
	if !p.revalidateLocked(fd, ref) {
		p.mu.Unlock()
		// The fd was closed mid-connect: tear down the just-enqueued conn
		// so the server side sees EOF instead of a ghost, and the pipes
		// recycle.
		cn.toServer.interrupt()
		cn.fromServer.interrupt()
		return Ret{Err: EBADF}
	}
	if s, ok := ref.ent.obj.(*socketObj); ok {
		s.attach(cn.fromServer, cn.toServer)
	} else {
		s := k.getSock()
		s.attach(cn.fromServer, cn.toServer)
		ref.ent.obj = s
	}
	p.mu.Unlock()
	// The attach flipped the fd's readiness (an unconnected placeholder
	// polls as nothing; now it is writable): wake parked pollers, per the
	// object-header contract.
	k.pollPark.Wake()
	return Ret{}
}
