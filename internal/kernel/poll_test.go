package kernel

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitPollParked spins until a goroutine has announced itself on the
// kernel's poll wait set — the condition the fixed time.Sleep calls in
// these tests used to approximate. Once Waiters is non-zero the poller is
// past its readiness re-check, so any subsequent state change's Wake is
// guaranteed to reach it (a Wake landing between Prepare and Park is
// absorbed by the parker protocol).
func waitPollParked(t *testing.T, k *Kernel) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for k.pollPark.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("poller never parked")
		}
		runtime.Gosched()
	}
}

// pollOne runs SysPoll over a single descriptor and returns (revents, Ret).
func pollOne(k *Kernel, p *Proc, fd uint64, events uint16, timeout uint64) (uint16, Ret) {
	buf := make([]byte, PollFDSize)
	EncodePollFD(buf, 0, int(fd), events)
	r := k.Do(p, Call{Nr: SysPoll, Args: [6]uint64{1, timeout}, Data: buf})
	if !r.Ok() || len(r.Data) != PollFDSize {
		return 0, r
	}
	return DecodeRevents(r.Data, 0), r
}

func TestPollPipeReadiness(t *testing.T) {
	k := New()
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	rfd, wfd := pr.Val, pr.Val2

	// Empty pipe, zero timeout: no events, immediate return.
	if rev, r := pollOne(k, p, rfd, PollIn, 0); r.Val != 0 || rev != 0 {
		t.Fatalf("empty pipe: ready=%d revents=%#x", r.Val, rev)
	}
	// Write end of an empty pipe is writable.
	if rev, r := pollOne(k, p, wfd, PollOut, 0); r.Val != 1 || rev&PollOut == 0 {
		t.Fatalf("write end: ready=%d revents=%#x", r.Val, rev)
	}
	// Data pending: readable.
	k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{wfd}, Data: []byte("x")})
	if rev, r := pollOne(k, p, rfd, PollIn, 0); r.Val != 1 || rev&PollIn == 0 {
		t.Fatalf("pending data: ready=%d revents=%#x", r.Val, rev)
	}
	// Drain, close the writer: EOF is readable (PollIn) and a hang-up.
	k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, 8}})
	k.Do(p, Call{Nr: SysClose, Args: [6]uint64{wfd}})
	rev, _ := pollOne(k, p, rfd, PollIn, 0)
	if rev&PollIn == 0 || rev&PollHup == 0 {
		t.Fatalf("EOF revents = %#x, want PollIn|PollHup", rev)
	}
}

func TestPollBlocksUntilWrite(t *testing.T) {
	k := New()
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	rfd, wfd := pr.Val, pr.Val2
	got := make(chan uint16, 1)
	go func() {
		rev, _ := pollOne(k, p, rfd, PollIn, PollNoTimeout)
		got <- rev
	}()
	// The poller parks (no events yet); the write must wake it.
	waitPollParked(t, k)
	k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{wfd}, Data: []byte("wake")})
	select {
	case rev := <-got:
		if rev&PollIn == 0 {
			t.Fatalf("revents = %#x, want PollIn", rev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("poll never woke after write")
	}
}

// The timeout test runs on virtual time: the poll must block for exactly
// its 20ms window — no return before Advance crosses the deadline, a
// 0-events return right after — with no wall-clock sleeps or slack margins.
func TestPollTimeoutExpires(t *testing.T) {
	k := New()
	vc := NewVirtualClock()
	k.SetClock(vc)
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	type res struct {
		rev uint16
		r   Ret
	}
	done := make(chan res, 1)
	go func() {
		rev, r := pollOne(k, p, pr.Val, PollIn, uint64(20*time.Millisecond))
		done <- res{rev, r}
	}()
	// doPoll arms its deadline timer before first parking, so a registered
	// timer means the poll is underway and Advance's wake cannot be lost.
	deadline := time.Now().Add(10 * time.Second)
	for vc.Timers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("poll never armed its timeout timer")
		}
		runtime.Gosched()
	}
	vc.Advance(19 * time.Millisecond)
	select {
	case got := <-done:
		t.Fatalf("poll returned at t=19ms of a 20ms timeout: %+v", got)
	case <-time.After(10 * time.Millisecond):
	}
	vc.Advance(time.Millisecond)
	select {
	case got := <-done:
		if got.r.Val != 0 || got.rev != 0 {
			t.Fatalf("timed-out poll reported events: ready=%d revents=%#x", got.r.Val, got.rev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("poll still parked after its virtual deadline passed")
	}
}

func TestPollListenerReadiness(t *testing.T) {
	k := New()
	p := newTestProc(k)
	sfd := k.Do(p, Call{Nr: SysSocket}).Val
	if r := k.Do(p, Call{Nr: SysListen, Args: [6]uint64{sfd, 8085, 16}}); !r.Ok() {
		t.Fatalf("listen: %v", r.Err)
	}
	if rev, r := pollOne(k, p, sfd, PollIn, 0); r.Val != 0 || rev != 0 {
		t.Fatalf("idle listener: ready=%d revents=%#x", r.Val, rev)
	}
	cc, errno := k.Connect(8085)
	if errno != OK {
		t.Fatalf("connect: %v", errno)
	}
	defer cc.Close()
	if rev, _ := pollOne(k, p, sfd, PollIn, 0); rev&PollIn == 0 {
		t.Fatalf("pending connection: revents=%#x, want PollIn", rev)
	}
	// Poll says the accept will not block; prove it.
	done := make(chan Ret, 1)
	go func() { done <- k.Do(p, Call{Nr: SysAccept, Args: [6]uint64{sfd}}) }()
	select {
	case acc := <-done:
		if !acc.Ok() {
			t.Fatalf("accept: %v", acc.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("accept blocked although poll reported PollIn")
	}
	k.CloseListener(8085)
	if rev, _ := pollOne(k, p, sfd, PollIn, 0); rev&PollHup == 0 {
		t.Fatalf("closed listener: revents=%#x, want PollHup", rev)
	}
}

func TestPollBadFDIsNval(t *testing.T) {
	k := New()
	p := newTestProc(k)
	rev, r := pollOne(k, p, 777, PollIn, PollNoTimeout)
	if r.Val != 1 || rev != PollNval {
		t.Fatalf("bad fd: ready=%d revents=%#x, want 1/PollNval (a dead fd must not park forever)", r.Val, rev)
	}
	// Malformed fd sets are rejected outright.
	if r := k.Do(p, Call{Nr: SysPoll, Args: [6]uint64{3, 0}, Data: make([]byte, 8)}); r.Err != EINVAL {
		t.Fatalf("nfds/payload mismatch: %v, want EINVAL", r.Err)
	}
}

func TestPollMultipleFDsReportsOnlyReady(t *testing.T) {
	k := New()
	p := newTestProc(k)
	p1 := k.Do(p, Call{Nr: SysPipe2})
	p2 := k.Do(p, Call{Nr: SysPipe2})
	k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{p2.Val2}, Data: []byte("y")})
	buf := make([]byte, 2*PollFDSize)
	EncodePollFD(buf, 0, int(p1.Val), PollIn)
	EncodePollFD(buf, 1, int(p2.Val), PollIn)
	r := k.Do(p, Call{Nr: SysPoll, Args: [6]uint64{2, 0}, Data: buf})
	if r.Val != 1 {
		t.Fatalf("ready = %d, want 1", r.Val)
	}
	if rev := DecodeRevents(r.Data, 0); rev != 0 {
		t.Fatalf("idle pipe revents = %#x", rev)
	}
	if rev := DecodeRevents(r.Data, 1); rev&PollIn == 0 {
		t.Fatalf("ready pipe revents = %#x", rev)
	}
	// The input payload must not have been mutated in place: under the
	// monitor it is the compared (and ring-resident) fd set.
	if rev := DecodeRevents(buf, 1); rev != 0 {
		t.Fatalf("poll wrote revents into the caller's buffer")
	}
}

func TestPollInterruptUnblocks(t *testing.T) {
	k := New()
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	done := make(chan Ret, 1)
	go func() {
		buf := make([]byte, PollFDSize)
		EncodePollFD(buf, 0, int(pr.Val), PollIn)
		done <- k.Do(p, Call{Nr: SysPoll, Args: [6]uint64{1, PollNoTimeout}, Data: buf})
	}()
	waitPollParked(t, k)
	k.Interrupt()
	select {
	case <-done:
		// Either outcome is fine (events from the force-closed pipe, or
		// the stopped-kernel error); what matters is that it returned.
	case <-time.After(10 * time.Second):
		t.Fatal("poll still parked after Kernel.Interrupt")
	}
}

// A close must wake pollers even when it touches no pipe or listener: an
// unconnected socket() placeholder polls as nothing, so only the close's
// own wake can tell a parked poller the fd is now PollNval.
func TestPollWokenByPlaceholderClose(t *testing.T) {
	k := New()
	p := newTestProc(k)
	sfd := k.Do(p, Call{Nr: SysSocket}).Val
	got := make(chan uint16, 1)
	go func() {
		rev, _ := pollOne(k, p, sfd, PollIn, PollNoTimeout)
		got <- rev
	}()
	waitPollParked(t, k) // let the poller park on the idle placeholder
	if r := k.Do(p, Call{Nr: SysClose, Args: [6]uint64{sfd}}); !r.Ok() {
		t.Fatalf("close: %v", r.Err)
	}
	select {
	case rev := <-got:
		if rev != PollNval {
			t.Fatalf("revents = %#x, want PollNval", rev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("poller still parked after the fd was closed")
	}
}

// A write larger than the pipe capacity blocks mid-call; the bytes it
// buffered before sleeping must still reach a parked poller, or an
// evented server (whose poll wake is the only thing that drains the
// pipe) deadlocks against the writer.
func TestPollWokenByOversizedWriteInProgress(t *testing.T) {
	k := New()
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	rfd, wfd := pr.Val, pr.Val2
	const total = 2*pipeBufSize + 512
	writerDone := make(chan Ret, 1)
	go func() {
		// Let the drain loop's first poll park on an empty pipe before
		// the oversized write starts filling it — the deadlock ordering:
		// the writer buffers a pipeful and sleeps mid-call, and only the
		// wake it issues before sleeping can reach the parked poller.
		// (Condition-wait, capped, non-fatal: a t.Fatal off the test
		// goroutine is illegal, and a missed park only loses the ordering
		// this test wants, which the assertions below would then catch.)
		for dl := time.Now().Add(10 * time.Second); k.pollPark.Waiters() == 0 && time.Now().Before(dl); {
			runtime.Gosched()
		}
		writerDone <- k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{wfd}, Data: make([]byte, total)})
	}()
	// The evented drain loop: poll (parking when nothing is pending),
	// then read what arrived.
	got := 0
	for got < total {
		rev, r := pollOne(k, p, rfd, PollIn, uint64(30*time.Second))
		if !r.Ok() || rev&PollIn == 0 {
			t.Fatalf("poll after %d/%d bytes: ready=%d revents=%#x err=%v (writer-poller deadlock)",
				got, total, r.Val, rev, r.Err)
		}
		rd := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, 8192}})
		if !rd.Ok() {
			t.Fatalf("read: %v", rd.Err)
		}
		got += int(rd.Val)
	}
	select {
	case w := <-writerDone:
		if !w.Ok() || int(w.Val) != total {
			t.Fatalf("write: %+v", w)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer still blocked after the pipe drained")
	}
}

// TestPollStress churns pollers, writers, and closers over pooled pipes
// and a listener concurrently — the race-detector workout for the poll
// wait set riding the pipes' state changes (run ×3 under -race in CI).
func TestPollStress(t *testing.T) {
	k := New()
	stop := startEchoServer(t, k, 86)
	defer stop()
	p := newTestProc(k)
	const pollers, rounds = 4, 60
	var wg sync.WaitGroup
	errs := make(chan error, pollers)
	for c := 0; c < pollers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 2*PollFDSize)
			for i := 0; i < rounds; i++ {
				pr := k.Do(p, Call{Nr: SysPipe2})
				if !pr.Ok() {
					errs <- fmt.Errorf("poller %d round %d: pipe2: %v", c, i, pr.Err)
					return
				}
				rfd, wfd := pr.Val, pr.Val2
				go func() {
					k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{wfd}, Data: []byte("z")})
					k.Do(p, Call{Nr: SysClose, Args: [6]uint64{wfd}})
				}()
				// No interest bits on wfd: only its Err/Hup can surface, so
				// the poll genuinely parks until the writer goroutine runs.
				EncodePollFD(buf, 0, int(rfd), PollIn)
				EncodePollFD(buf, 1, int(wfd), 0)
				r := k.Do(p, Call{Nr: SysPoll, Args: [6]uint64{2, PollNoTimeout}, Data: buf[:2*PollFDSize]})
				if !r.Ok() || r.Val == 0 {
					errs <- fmt.Errorf("poller %d round %d: poll ready=%d err=%v", c, i, r.Val, r.Err)
					return
				}
				k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, 8}})
				k.Do(p, Call{Nr: SysClose, Args: [6]uint64{rfd}})
				// Interleave served connections so listener wakeups and
				// pipe recycling churn under the pollers.
				cc, errno := k.Connect(86)
				if errno != OK {
					errs <- fmt.Errorf("poller %d round %d: connect: %v", c, i, errno)
					return
				}
				cc.Write([]byte("ping"))
				rb := make([]byte, 8)
				cc.Read(rb)
				cc.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
