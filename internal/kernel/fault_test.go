package kernel

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// stubInjector lets kernel tests script fault decisions directly. (The
// real rate/seed machinery lives in internal/chaos, which imports this
// package — these tests exercise the kernel half of the seam.)
type stubInjector struct {
	decide func(FaultOp) (FaultDecision, bool)
}

func (s stubInjector) Decide(op FaultOp) (FaultDecision, bool) { return s.decide(op) }

// injectOn returns an injector that applies d to every op of the given
// kind.
func injectOn(kind FaultTarget, d FaultDecision) stubInjector {
	return stubInjector{decide: func(op FaultOp) (FaultDecision, bool) {
		if op.Kind != kind {
			return FaultDecision{}, false
		}
		return d, true
	}}
}

func TestInjectedErrorFailsCallWithoutExecuting(t *testing.T) {
	k := New()
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	rfd, wfd := pr.Val, pr.Val2
	if w := k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{wfd}, Data: []byte("intact")}); !w.Ok() {
		t.Fatalf("write: %v", w.Err)
	}

	k.SetInjector(injectOn(FaultPipe, FaultDecision{Err: EIO}))
	r := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, 64}})
	if r.Err != EIO || r.Inj&InjError == 0 {
		t.Fatalf("injected read: err=%v inj=%#x, want EIO with InjError", r.Err, r.Inj)
	}

	// The failed call must not have consumed stream bytes: with injection
	// off, the data is still there.
	k.SetInjector(nil)
	r = k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, 64}})
	if !r.Ok() || string(r.Data) != "intact" || r.Inj != 0 {
		t.Fatalf("post-fault read: %+v, want the untouched payload and Inj=0", r)
	}
}

func TestInjectedShortReadsPreserveTheStream(t *testing.T) {
	k := New()
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	rfd, wfd := pr.Val, pr.Val2
	payload := []byte("0123456789abcdef")
	k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{wfd}, Data: payload})
	k.Do(p, Call{Nr: SysClose, Args: [6]uint64{wfd}})

	k.SetInjector(injectOn(FaultPipe, FaultDecision{Short: true}))
	var got []byte
	for len(got) < len(payload) {
		r := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, uint64(len(payload))}})
		if !r.Ok() {
			t.Fatalf("read after %d bytes: %v", len(got), r.Err)
		}
		if r.Inj&InjShort == 0 {
			t.Fatalf("read was not marked short (inj=%#x)", r.Inj)
		}
		if int(r.Val) > (len(payload)+1)/2 {
			t.Fatalf("short read returned %d bytes of a %d-byte request", r.Val, len(payload))
		}
		got = append(got, r.Data...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %q, want %q — short reads must not lose or reorder bytes", got, payload)
	}
}

func TestInjectedShortWriteReportsTruncatedCount(t *testing.T) {
	k := New()
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	rfd, wfd := pr.Val, pr.Val2

	k.SetInjector(injectOn(FaultPipe, FaultDecision{Short: true}))
	payload := []byte("0123456789")
	w := k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{wfd}, Data: payload})
	if !w.Ok() || w.Inj&InjShort == 0 {
		t.Fatalf("short write: %+v", w)
	}
	if w.Val == 0 || int(w.Val) > (len(payload)+1)/2 {
		t.Fatalf("short write wrote %d of %d bytes", w.Val, len(payload))
	}
	// Exactly the reported prefix reached the pipe.
	k.SetInjector(nil)
	r := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, 64}})
	if !bytes.Equal(r.Data, payload[:w.Val]) {
		t.Fatalf("pipe carries %q, want the written prefix %q", r.Data, payload[:w.Val])
	}
}

func TestInjectedTimeoutForcesPollExpiryAndEAGAIN(t *testing.T) {
	k := New()
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	rfd, wfd := pr.Val, pr.Val2
	k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{wfd}, Data: []byte("ready")})

	// Poll: data is pending, but the forced timeout reports nothing ready.
	k.SetInjector(injectOn(FaultPoll, FaultDecision{Timeout: true}))
	rev, r := pollOne(k, p, rfd, PollIn, PollNoTimeout)
	if r.Val != 0 || rev != 0 || r.Inj&InjTimeout == 0 {
		t.Fatalf("forced poll timeout: ready=%d revents=%#x inj=%#x", r.Val, rev, r.Inj)
	}

	// Blocking read: the forced timeout surfaces as EAGAIN.
	k.SetInjector(injectOn(FaultPipe, FaultDecision{Timeout: true}))
	rd := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, 64}})
	if rd.Err != EAGAIN || rd.Inj&InjTimeout == 0 {
		t.Fatalf("forced read timeout: err=%v inj=%#x, want EAGAIN", rd.Err, rd.Inj)
	}
}

func TestFilesAndPerVariantCallsAreNotInjectable(t *testing.T) {
	k := New()
	p := newTestProc(k)
	k.SetInjector(stubInjector{decide: func(FaultOp) (FaultDecision, bool) {
		return FaultDecision{Err: EIO}, true
	}})
	fd := k.Do(p, openCall("/f", OCreat|ORdwr)).Val
	if w := k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{fd}, Data: []byte("x")}); !w.Ok() || w.Inj != 0 {
		t.Fatalf("file write under always-fail injector: %+v (files must be exempt)", w)
	}
	if g := k.Do(p, Call{Nr: SysGetpid}); !g.Ok() || g.Inj != 0 {
		t.Fatalf("getpid under always-fail injector: %+v (non-I/O calls must be exempt)", g)
	}
}

// waitSigParked spins until a thread of p is parked on its signal parker
// (nanosleep or an injected delay), the condition fixed sleeps used to
// approximate.
func waitSigParked(t *testing.T, p *Proc) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for p.sigPark.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sleeper never parked")
		}
		runtime.Gosched()
	}
}

// The satellite regression for PR 5's signal-boundary semantics: a
// nanosleep stretched by injected latency must still return EINTR when a
// terminating signal lands mid-delay — injection must not create an
// uninterruptible window.
func TestInjectedLatencyNanosleepEINTRsOnKill(t *testing.T) {
	k := New()
	p := newTestProc(k)
	k.SetInjector(injectOn(FaultSleep, FaultDecision{Delay: 30 * time.Second}))
	done := make(chan Ret, 1)
	go func() {
		done <- k.Do(p, Call{Nr: SysNanosleep, Args: [6]uint64{uint64(time.Millisecond)}})
	}()
	waitSigParked(t, p)
	if r := k.Do(p, Call{Nr: SysKill, Args: [6]uint64{uint64(p.Vpid()), SIGTERM}}); !r.Ok() {
		t.Fatalf("kill: %v", r.Err)
	}
	select {
	case r := <-done:
		if r.Err != EINTR {
			t.Fatalf("injected-latency nanosleep returned %v, want EINTR", r.Err)
		}
		if r.Inj&InjLatency == 0 {
			t.Fatalf("interrupted sleep lost its injection marker (inj=%#x)", r.Inj)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nanosleep still blocked 10s after kill — the injected delay is uninterruptible")
	}
}

// Injected latency on I/O completes (with the fault marker) once the delay
// elapses — driven here entirely on virtual time.
func TestInjectedLatencyElapsesOnVirtualClock(t *testing.T) {
	k := New()
	vc := NewVirtualClock()
	k.SetClock(vc)
	p := newTestProc(k)
	pr := k.Do(p, Call{Nr: SysPipe2})
	rfd, wfd := pr.Val, pr.Val2
	k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{wfd}, Data: []byte("late")})

	k.SetInjector(injectOn(FaultPipe, FaultDecision{Delay: 50 * time.Millisecond}))
	done := make(chan Ret, 1)
	go func() {
		done <- k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, 64}})
	}()
	// Wait for the delay loop to ARM its virtual timer (not merely to
	// park): advancing before the timer exists would fire into the void.
	deadline := time.Now().Add(10 * time.Second)
	for vc.Timers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delayed read never armed its timer")
		}
		runtime.Gosched()
	}
	select {
	case r := <-done:
		t.Fatalf("read returned before the virtual delay elapsed: %+v", r)
	default:
	}
	vc.Advance(51 * time.Millisecond)
	select {
	case r := <-done:
		if !r.Ok() || string(r.Data) != "late" || r.Inj&InjLatency == 0 {
			t.Fatalf("delayed read: %+v, want the payload with InjLatency", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read still blocked after the virtual delay elapsed")
	}
}
