package kernel

import (
	"bytes"
	"math"
	"testing"
)

// The iovec and pollfd wire helpers sit on the guest-visible syscall
// surface: decodeIovec consumes a raw Args word as the segment count and
// Call.Data as the vector, so every malformed shape a guest can produce
// must come back EINVAL — never a panic, never a silent partial decode.

func TestDecodeIovecMalformed(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
		cnt  int
	}{
		{"negative count", []byte{1, 0, 0, 0, 'x'}, -1},
		{"count past data", []byte{1, 0, 0, 0}, 2},
		{"truncated prefix", []byte{1, 0, 0}, 1},
		{"empty data nonzero count", nil, 1},
		{"zero count with trailing bytes", []byte("overhang"), 0},
		{"sum short of payload", EncodeIovec(nil, []byte("ab"), []byte("cd"))[:12+3], 2},
		{"sum past payload", append(EncodeIovec(nil, []byte("ab")), 'x'), 1},
		{"overflowing length word", []byte{0xff, 0xff, 0xff, 0xff}, 1},
		{"huge count wraps multiply", []byte{1, 0, 0, 0}, math.MaxInt64/2 + 1},
		{"max count", nil, math.MaxInt64},
	} {
		if payload, errno := decodeIovec(tc.data, tc.cnt); errno != EINVAL {
			t.Errorf("%s: decodeIovec = (%q, %v), want EINVAL", tc.name, payload, errno)
		}
	}
}

func TestDecodeIovecZeroCount(t *testing.T) {
	// cnt=0 with no data is a legal empty vector, like writev(fd, iov, 0).
	payload, errno := decodeIovec(nil, 0)
	if errno != OK || len(payload) != 0 {
		t.Fatalf("empty vector: (%q, %v), want empty OK", payload, errno)
	}
}

func TestEncodeIovecRoundTrip(t *testing.T) {
	for _, segs := range [][][]byte{
		{},
		{[]byte("hello")},
		{[]byte("HTTP/1.1 200 OK\r\n\r\n"), []byte("body")},
		{nil, []byte("x"), nil},            // zero-length segments are legal
		{bytes.Repeat([]byte{0xAB}, 4096)}, // payload larger than prefixes
	} {
		wire := EncodeIovec(nil, segs...)
		var flat []byte
		for _, s := range segs {
			flat = append(flat, s...)
		}
		payload, errno := decodeIovec(wire, len(segs))
		if errno != OK || !bytes.Equal(payload, flat) {
			t.Errorf("round trip of %d segs: (%q, %v), want %q", len(segs), payload, errno, flat)
		}
	}
}

// FuzzDecodeIovec throws arbitrary wire bytes and counts at the decoder:
// it must either return a payload that is exactly the bytes after the
// prefixes, or EINVAL — reaching the check at the bottom unpanicked is the
// property.
func FuzzDecodeIovec(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add(EncodeIovec(nil, []byte("ab"), []byte("cde")), 2)
	f.Add([]byte{1, 0, 0, 0}, 2)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 1)
	f.Add([]byte{1, 0, 0, 0}, math.MaxInt64/2+1)
	f.Fuzz(func(t *testing.T, data []byte, cnt int) {
		payload, errno := decodeIovec(data, cnt)
		switch errno {
		case OK:
			if cnt < 0 || cnt > len(data)/iovLenSize {
				t.Fatalf("decoded with impossible count %d over %d bytes", cnt, len(data))
			}
			if len(payload) != len(data)-cnt*iovLenSize {
				t.Fatalf("payload %d bytes, want %d", len(payload), len(data)-cnt*iovLenSize)
			}
		case EINVAL:
			if payload != nil {
				t.Fatalf("EINVAL with a payload (%d bytes)", len(payload))
			}
		default:
			t.Fatalf("unexpected errno %v", errno)
		}
	})
}

func TestPollFDRoundTrip(t *testing.T) {
	entries := []struct {
		fd     int
		events uint16
	}{
		{0, PollIn},
		{3, PollIn | PollOut},
		{65535, 0},                // zero events is a legal (if useless) entry
		{1 << 20, math.MaxUint16}, // all event bits survive
	}
	b := make([]byte, len(entries)*PollFDSize)
	for i, e := range entries {
		EncodePollFD(b, i, e.fd, e.events)
	}
	for i, e := range entries {
		fd, events, revents := DecodePollFD(b, i)
		if fd != e.fd || events != e.events || revents != 0 {
			t.Errorf("entry %d: got (%d, %#x, %#x), want (%d, %#x, 0)", i, fd, events, revents, e.fd, e.events)
		}
	}
	// Encoding must zero revents even when the buffer is reused dirty —
	// the poll loop reuse contract.
	putRevents(b, 1, PollHup)
	EncodePollFD(b, 1, 9, PollIn)
	if _, _, revents := DecodePollFD(b, 1); revents != 0 {
		t.Errorf("reused entry keeps stale revents %#x", revents)
	}
	if got := DecodeRevents(b, 1); got != 0 {
		t.Errorf("DecodeRevents on fresh entry = %#x, want 0", got)
	}
}

// FuzzPollFDRoundTrip: any (fd, events) a guest can express in the wire
// format decodes back unchanged at every index of a multi-entry array.
func FuzzPollFDRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint16(PollIn), uint8(0))
	f.Add(uint32(3), uint16(PollIn|PollOut), uint8(2))
	f.Add(uint32(math.MaxUint32), uint16(math.MaxUint16), uint8(7))
	f.Fuzz(func(t *testing.T, fd uint32, events uint16, slot uint8) {
		i := int(slot % 8)
		b := make([]byte, 8*PollFDSize)
		EncodePollFD(b, i, int(fd), events)
		gfd, gev, grev := DecodePollFD(b, i)
		if gfd != int(fd) || gev != events || grev != 0 {
			t.Fatalf("entry %d: got (%d, %#x, %#x), want (%d, %#x, 0)", i, gfd, gev, grev, fd, events)
		}
		// Neighbouring entries stay zero: the encoder writes exactly
		// PollFDSize bytes.
		for j := 0; j < 8; j++ {
			if j == i {
				continue
			}
			if jfd, jev, jrev := DecodePollFD(b, j); jfd != 0 || jev != 0 || jrev != 0 {
				t.Fatalf("entry %d bled into entry %d: (%d, %#x, %#x)", i, j, jfd, jev, jrev)
			}
		}
	})
}
