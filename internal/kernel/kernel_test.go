package kernel

import (
	"bytes"
	"sync"
	"testing"
)

func newTestProc(k *Kernel) *Proc {
	return k.NewProc(0x0800_0000, 0x7000_0000)
}

func openCall(path string, flags int) Call {
	return Call{Nr: SysOpen, Args: [6]uint64{uint64(flags)}, Data: []byte(path)}
}

func TestOpenMissingFile(t *testing.T) {
	k := New()
	p := newTestProc(k)
	if r := k.Do(p, openCall("/nope", ORdonly)); r.Err != ENOENT {
		t.Fatalf("open missing file: err = %v, want ENOENT", r.Err)
	}
}

func TestOpenCreateWriteReadRoundtrip(t *testing.T) {
	k := New()
	p := newTestProc(k)
	r := k.Do(p, openCall("/data", OCreat|ORdwr))
	if !r.Ok() {
		t.Fatalf("open: %v", r.Err)
	}
	fd := r.Val
	payload := []byte("hello, mvee")
	w := k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{fd}, Data: payload})
	if !w.Ok() || w.Val != uint64(len(payload)) {
		t.Fatalf("write: %+v", w)
	}
	// Seek back and read.
	if s := k.Do(p, Call{Nr: SysLseek, Args: [6]uint64{fd, 0, SeekSet}}); !s.Ok() || s.Val != 0 {
		t.Fatalf("lseek: %+v", s)
	}
	rd := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{fd, 64}})
	if !rd.Ok() || !bytes.Equal(rd.Data, payload) {
		t.Fatalf("read back %q, want %q (err %v)", rd.Data, payload, rd.Err)
	}
	if c := k.Do(p, Call{Nr: SysClose, Args: [6]uint64{fd}}); !c.Ok() {
		t.Fatalf("close: %v", c.Err)
	}
	if c := k.Do(p, Call{Nr: SysClose, Args: [6]uint64{fd}}); c.Err != EBADF {
		t.Fatalf("double close err = %v, want EBADF", c.Err)
	}
}

func TestLowestFreeFDAllocation(t *testing.T) {
	k := New()
	p := newTestProc(k)
	fd1 := k.Do(p, openCall("/a", OCreat|ORdwr)).Val
	fd2 := k.Do(p, openCall("/b", OCreat|ORdwr)).Val
	fd3 := k.Do(p, openCall("/c", OCreat|ORdwr)).Val
	if fd1 != 3 || fd2 != 4 || fd3 != 5 {
		t.Fatalf("fds = %d,%d,%d; want 3,4,5", fd1, fd2, fd3)
	}
	// Close the middle one; the next open must reuse it (lowest free).
	k.Do(p, Call{Nr: SysClose, Args: [6]uint64{fd2}})
	fd4 := k.Do(p, openCall("/d", OCreat|ORdwr)).Val
	if fd4 != 4 {
		t.Fatalf("reopened fd = %d, want lowest-free 4", fd4)
	}
}

func TestOExclFailsOnExisting(t *testing.T) {
	k := New()
	p := newTestProc(k)
	if r := k.Do(p, openCall("/x", OCreat)); !r.Ok() {
		t.Fatal(r.Err)
	}
	if r := k.Do(p, openCall("/x", OCreat|OExcl)); r.Err != EEXIST {
		t.Fatalf("O_EXCL on existing: err = %v, want EEXIST", r.Err)
	}
}

func TestOTruncAndOAppend(t *testing.T) {
	k := New()
	p := newTestProc(k)
	k.WriteFile("/f", []byte("0123456789"))
	fd := k.Do(p, openCall("/f", OWronly|OAppend)).Val
	k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{fd}, Data: []byte("ab")})
	got, _ := k.ReadFile("/f")
	if string(got) != "0123456789ab" {
		t.Fatalf("append produced %q", got)
	}
	fd2 := k.Do(p, openCall("/f", OWronly|OTrunc)).Val
	_ = fd2
	got, _ = k.ReadFile("/f")
	if len(got) != 0 {
		t.Fatalf("O_TRUNC left %q", got)
	}
}

func TestReadOnWriteOnlyFD(t *testing.T) {
	k := New()
	p := newTestProc(k)
	fd := k.Do(p, openCall("/f", OCreat|OWronly)).Val
	if r := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{fd, 8}}); r.Err != EBADF {
		t.Fatalf("read on O_WRONLY: err = %v, want EBADF", r.Err)
	}
	fd2 := k.Do(p, openCall("/f", ORdonly)).Val
	if r := k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{fd2}, Data: []byte("x")}); r.Err != EBADF {
		t.Fatalf("write on O_RDONLY: err = %v, want EBADF", r.Err)
	}
}

func TestPreadPwriteDoNotMoveOffset(t *testing.T) {
	k := New()
	p := newTestProc(k)
	k.WriteFile("/f", []byte("abcdefgh"))
	fd := k.Do(p, openCall("/f", ORdwr)).Val
	r := k.Do(p, Call{Nr: SysPread, Args: [6]uint64{fd, 4, 2}})
	if !r.Ok() || string(r.Data) != "cdef" {
		t.Fatalf("pread = %q (%v)", r.Data, r.Err)
	}
	// Offset must still be at 0.
	rd := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{fd, 2}})
	if string(rd.Data) != "ab" {
		t.Fatalf("offset moved by pread: read %q", rd.Data)
	}
	k.Do(p, Call{Nr: SysPwrite, Args: [6]uint64{fd, 6}, Data: []byte("ZZ")})
	got, _ := k.ReadFile("/f")
	if string(got) != "abcdefZZ" {
		t.Fatalf("pwrite produced %q", got)
	}
}

func TestStatAndUnlink(t *testing.T) {
	k := New()
	p := newTestProc(k)
	k.WriteFile("/s", []byte("12345"))
	if r := k.Do(p, Call{Nr: SysStat, Data: []byte("/s")}); !r.Ok() || r.Val != 5 {
		t.Fatalf("stat: %+v", r)
	}
	if r := k.Do(p, Call{Nr: SysUnlink, Data: []byte("/s")}); !r.Ok() {
		t.Fatalf("unlink: %v", r.Err)
	}
	if r := k.Do(p, Call{Nr: SysStat, Data: []byte("/s")}); r.Err != ENOENT {
		t.Fatalf("stat after unlink: %v, want ENOENT", r.Err)
	}
}

func TestPipeBlockingAndEOF(t *testing.T) {
	k := New()
	p := newTestProc(k)
	r := k.Do(p, Call{Nr: SysPipe2})
	if !r.Ok() {
		t.Fatal(r.Err)
	}
	rfd, wfd := r.Val, r.Val2
	got := make(chan string, 1)
	go func() {
		rd := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, 16}})
		got <- string(rd.Data)
	}()
	k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{wfd}, Data: []byte("ping")})
	if s := <-got; s != "ping" {
		t.Fatalf("pipe read %q", s)
	}
	// Close writer; reader must see EOF (n==0, OK).
	k.Do(p, Call{Nr: SysClose, Args: [6]uint64{wfd}})
	rd := k.Do(p, Call{Nr: SysRead, Args: [6]uint64{rfd, 16}})
	if !rd.Ok() || rd.Val != 0 {
		t.Fatalf("read after writer close: %+v", rd)
	}
}

func TestPipeWriteAfterReaderCloseIsEPIPE(t *testing.T) {
	k := New()
	p := newTestProc(k)
	r := k.Do(p, Call{Nr: SysPipe2})
	k.Do(p, Call{Nr: SysClose, Args: [6]uint64{r.Val}})
	w := k.Do(p, Call{Nr: SysWrite, Args: [6]uint64{r.Val2}, Data: []byte("x")})
	if w.Err != EPIPE {
		t.Fatalf("write to broken pipe: %v, want EPIPE", w.Err)
	}
}

func TestBrk(t *testing.T) {
	as := NewAddressSpace(0x1000, 0x7000_0000)
	if got := as.Brk(0); got != 0x1000 {
		t.Fatalf("initial brk = %#x", got)
	}
	if got := as.Brk(0x5000); got != 0x5000 {
		t.Fatalf("brk grow = %#x", got)
	}
	if got := as.Brk(0x10); got != 0x5000 {
		t.Fatalf("brk below base accepted: %#x", got)
	}
}

func TestMmapMunmap(t *testing.T) {
	as := NewAddressSpace(0x1000, 0x7000_0000)
	a1, errno := as.Mmap(100)
	if errno != OK || a1 != 0x7000_0000 {
		t.Fatalf("mmap = %#x, %v", a1, errno)
	}
	a2, _ := as.Mmap(PageSize + 1)
	if a2 <= a1 {
		t.Fatalf("second region %#x not above first %#x", a2, a1)
	}
	if !as.Mapped(a1) || !as.Mapped(a2) {
		t.Fatal("regions not mapped")
	}
	if errno := as.Munmap(a1, 100); errno != OK {
		t.Fatalf("munmap: %v", errno)
	}
	if as.Mapped(a1) {
		t.Fatal("region still mapped after munmap")
	}
	if errno := as.Munmap(a1, 100); errno != EINVAL {
		t.Fatalf("double munmap: %v, want EINVAL", errno)
	}
	if errno := as.Munmap(a2, 5); errno != EINVAL {
		t.Fatalf("partial munmap: %v, want EINVAL", errno)
	}
}

func TestMmapZeroLength(t *testing.T) {
	as := NewAddressSpace(0x1000, 0x7000_0000)
	if _, errno := as.Mmap(0); errno != EINVAL {
		t.Fatalf("mmap(0): %v, want EINVAL", errno)
	}
}

func TestClockStrictlyIncreases(t *testing.T) {
	k := New()
	p := newTestProc(k)
	var prev uint64
	for i := 0; i < 1000; i++ {
		r := k.Do(p, Call{Nr: SysGettimeofday})
		if r.Val <= prev {
			t.Fatalf("clock went backwards: %d after %d", r.Val, prev)
		}
		prev = r.Val
	}
}

func TestSocketLoopback(t *testing.T) {
	k := New()
	p := newTestProc(k)
	sfd := k.Do(p, Call{Nr: SysSocket}).Val
	if r := k.Do(p, Call{Nr: SysListen, Args: [6]uint64{sfd, 8080, 16}}); !r.Ok() {
		t.Fatalf("listen: %v", r.Err)
	}
	// Client connects from outside the MVEE.
	connected := make(chan ClientConn, 1)
	go func() {
		cc, errno := k.Connect(8080)
		if errno != OK {
			t.Errorf("connect: %v", errno)
			connected <- ClientConn{}
			return
		}
		cc.Write([]byte("GET /"))
		connected <- cc
	}()
	acc := k.Do(p, Call{Nr: SysAccept, Args: [6]uint64{sfd}})
	if !acc.Ok() {
		t.Fatalf("accept: %v", acc.Err)
	}
	cfd := acc.Val
	req := k.Do(p, Call{Nr: SysRecv, Args: [6]uint64{cfd, 64}})
	if string(req.Data) != "GET /" {
		t.Fatalf("server received %q", req.Data)
	}
	k.Do(p, Call{Nr: SysSend, Args: [6]uint64{cfd}, Data: []byte("200 OK")})
	cc := <-connected
	if cc.c.fromServer == nil {
		t.Fatal("client failed")
	}
	buf := make([]byte, 64)
	n, err := cc.Read(buf)
	if err != nil || string(buf[:n]) != "200 OK" {
		t.Fatalf("client read %q, %v", buf[:n], err)
	}
}

func TestConnectRefusedWithoutListener(t *testing.T) {
	k := New()
	if _, errno := k.Connect(9999); errno != ECONNREFUSED {
		t.Fatalf("connect: %v, want ECONNREFUSED", errno)
	}
}

func TestBindPortCollision(t *testing.T) {
	k := New()
	p := newTestProc(k)
	s1 := k.Do(p, Call{Nr: SysSocket}).Val
	s2 := k.Do(p, Call{Nr: SysSocket}).Val
	if r := k.Do(p, Call{Nr: SysListen, Args: [6]uint64{s1, 80, 4}}); !r.Ok() {
		t.Fatal(r.Err)
	}
	if r := k.Do(p, Call{Nr: SysListen, Args: [6]uint64{s2, 80, 4}}); r.Err != EADDRINUSE {
		t.Fatalf("second listen: %v, want EADDRINUSE", r.Err)
	}
}

func TestUnknownSyscallIsENOSYS(t *testing.T) {
	k := New()
	p := newTestProc(k)
	if r := k.Do(p, Call{Nr: SysMVEEAware}); r.Err != ENOSYS {
		t.Fatalf("mvee_aware reached the kernel and got %v, want ENOSYS", r.Err)
	}
	if r := k.Do(p, Call{Nr: Sysno(999)}); r.Err != ENOSYS {
		t.Fatalf("bogus syscall: %v, want ENOSYS", r.Err)
	}
}

func TestDup(t *testing.T) {
	k := New()
	p := newTestProc(k)
	fd := k.Do(p, openCall("/f", OCreat|ORdwr)).Val
	d := k.Do(p, Call{Nr: SysDup, Args: [6]uint64{fd}})
	if !d.Ok() || d.Val == fd {
		t.Fatalf("dup: %+v", d)
	}
	if r := k.Do(p, Call{Nr: SysDup, Args: [6]uint64{777}}); r.Err != EBADF {
		t.Fatalf("dup bad fd: %v", r.Err)
	}
}

func TestNextTidSequential(t *testing.T) {
	k := New()
	p := newTestProc(k)
	for want := 1; want <= 5; want++ {
		if tid := p.NextTid(); tid != want {
			t.Fatalf("NextTid = %d, want %d", tid, want)
		}
	}
}

func TestConcurrentFileAppendsDoNotCorrupt(t *testing.T) {
	k := New()
	p := newTestProc(k)
	fd := k.Do(p, openCall("/log", OCreat|OWronly)).Val
	var wg sync.WaitGroup
	const writers = 8
	const per = 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k.Do(p, Call{Nr: SysPwrite, Args: [6]uint64{fd, uint64(i)}, Data: []byte("x")})
			}
		}()
	}
	wg.Wait()
	got, _ := k.ReadFile("/log")
	if len(got) != per {
		t.Fatalf("file length %d, want %d", len(got), per)
	}
}

func TestProcIsolation(t *testing.T) {
	k := New()
	p1 := newTestProc(k)
	p2 := newTestProc(k)
	fd1 := k.Do(p1, openCall("/shared", OCreat|ORdwr)).Val
	// p2 must not be able to use p1's descriptor.
	if r := k.Do(p2, Call{Nr: SysWrite, Args: [6]uint64{fd1}, Data: []byte("x")}); r.Err != EBADF {
		t.Fatalf("cross-proc fd use: %v, want EBADF", r.Err)
	}
	if p1.Pid == p2.Pid {
		t.Fatal("pids not unique")
	}
}
