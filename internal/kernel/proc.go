package kernel

import (
	"math/bits"
	"sync"
)

// maxFDs bounds a process's descriptor table, like RLIMIT_NOFILE.
const maxFDs = 1024

// openFile is an open file description — the kernel's struct file: the
// state shared by every descriptor that refers to one open(2)/socket(2)/
// pipe2(2) result. dup(2)'d descriptors point at the SAME description, so
// they share the file offset and status flags exactly like Linux
// descriptors do (an lseek or read through one moves the offset the other
// observes).
//
// Descriptions are pooled per process (Proc.free): close pushes the
// retired entry onto the freelist and the next alloc pops it, so the
// descriptor-install on the serving accept path costs zero allocations in
// steady state. Retirement bumps gen; an fdRef snapshot taken before the
// close fails its generation check under mu instead of reading a
// successor descriptor's offset.
type openFile struct {
	// mu guards offset against concurrent seekable operations (two
	// threads reading one dup'd descriptor race the shared offset) and
	// gates the generation check for offset-carrying ops.
	mu     sync.Mutex
	obj    object
	offset int64
	flags  int
	// refs counts descriptor-table references (dup adds one); the last
	// close releases obj. Guarded by Proc.mu.
	refs int
	// gen is the entry's reuse generation: bumped at retirement, written
	// under Proc.mu AND openFile.mu, readable under either.
	gen uint64
}

// fdRef is a point-in-time snapshot of one descriptor: the description,
// its object, and the generations observed at lookup. Operations validate
// the entry generation before committing state (offset moves) and the
// object-header generation before touching pooled stream objects, so a
// reference that outlives its descriptor — another thread's close(2)
// racing a read — degrades to EBADF instead of acting on a recycled
// entry or a socket endpoint re-attached to a successor connection. (The
// check-then-act window is a few instructions; fully closing it would
// require per-op locks on the stream hot path, and it only opens when a
// guest uses an fd after closing it — a program bug.) fdRef is a value
// type: taking a snapshot allocates nothing.
type fdRef struct {
	ent    *openFile
	obj    object
	flags  int    // the description's open flags (immutable after alloc)
	gen    uint64 // ent's generation at lookup
	objGen uint64 // obj's header generation at lookup
}

// accessMode returns the O_RDONLY/O_WRONLY/O_RDWR bits of the shared
// description's flags — the access-mode check for seekable objects lives
// in the kernel handlers, on the description, because that is the state
// dup(2)'d descriptors share (streams enforce direction in the object).
func (r fdRef) accessMode() int { return r.flags & 0x3 }

// stale reports whether the object behind the snapshot has been retired
// (and possibly recycled) since lookup. One atomic load.
func (r fdRef) stale() bool { return r.obj.header().generation() != r.objGen }

// fdTable is the slab-backed descriptor table: an allocation bitmap for
// the lowest-free scan (the kernel behaviour whose cross-variant
// visibility motivates syscall ordering in the first place, §3.1) plus a
// dense slot array. The bitmap makes alloc O(maxFDs/64) words instead of
// the old map's O(maxFDs) probe loop, and the slots are plain pointers —
// no hashing, no bucket churn.
type fdTable struct {
	// used bit fd = descriptor live. Bits 0-2 are permanently set
	// (stdin/stdout/stderr reserved), so the lowest-free scan lands at 3
	// without a special case.
	used  [maxFDs / 64]uint64
	slots []*openFile // grown on demand; slots[fd] valid while bit fd is set
}

func (t *fdTable) init() { t.used[0] = 0b111 }

// alloc claims the lowest free descriptor and returns it, or false when
// the table is full (EMFILE). Callers hold Proc.mu.
func (t *fdTable) alloc() (int, bool) {
	for w := range t.used {
		free := ^t.used[w]
		if free == 0 {
			continue
		}
		b := bits.TrailingZeros64(free)
		fd := w<<6 | b
		t.used[w] |= 1 << uint(b)
		for len(t.slots) <= fd {
			t.slots = append(t.slots, nil)
		}
		return fd, true
	}
	return -1, false
}

// get returns the live entry at fd, or nil.
func (t *fdTable) get(fd int) *openFile {
	if fd < 3 || fd >= maxFDs || fd >= len(t.slots) ||
		t.used[fd>>6]&(1<<uint(fd&63)) == 0 {
		return nil
	}
	return t.slots[fd]
}

func (t *fdTable) set(fd int, e *openFile) { t.slots[fd] = e }

func (t *fdTable) clear(fd int) {
	t.used[fd>>6] &^= 1 << uint(fd&63)
	t.slots[fd] = nil
}

// count returns the number of live user descriptors (excluding the three
// reserved stdio bits).
func (t *fdTable) count() int {
	n := 0
	for _, w := range t.used {
		n += bits.OnesCount64(w)
	}
	return n - 3
}

// Proc is the kernel-side state of one process (one MVEE variant).
type Proc struct {
	Pid int
	AS  *AddressSpace

	mu  sync.Mutex
	fdt fdTable
	// free pools retired open-file descriptions for reuse by the next
	// alloc; see openFile.
	free []*openFile

	nextTid int
}

// NewProc creates a process with an empty descriptor table (descriptors
// 0-2 are reserved, as stdin/stdout/stderr would be) and the given address
// space.
func NewProc(pid int, as *AddressSpace) *Proc {
	p := &Proc{Pid: pid, AS: as, nextTid: 1}
	p.fdt.init()
	return p
}

// getEntry pops a pooled description (its gen was bumped at retirement) or
// makes a fresh one. Callers hold p.mu.
func (p *Proc) getEntry() *openFile {
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return e
	}
	return &openFile{}
}

// allocFD installs obj at the lowest free descriptor >= 3 with the given
// status flags and initial offset.
func (p *Proc) allocFD(obj object, flags int, offset int64) (int, Errno) {
	p.mu.Lock()
	fd, ok := p.fdt.alloc()
	if !ok {
		p.mu.Unlock()
		return -1, EMFILE
	}
	e := p.getEntry()
	e.obj, e.flags, e.offset, e.refs = obj, flags, offset, 1
	p.fdt.set(fd, e)
	p.mu.Unlock()
	return fd, OK
}

// lookupFD snapshots descriptor fd. The snapshot is valid by construction
// at the moment it is taken (the entry is live in the table under p.mu);
// offset-committing operations revalidate ref.gen under ent.mu before
// acting, so a close racing in between degrades the op to EBADF.
func (p *Proc) lookupFD(fd int) (fdRef, Errno) {
	p.mu.Lock()
	e := p.fdt.get(fd)
	if e == nil {
		p.mu.Unlock()
		return fdRef{}, EBADF
	}
	ref := fdRef{ent: e, obj: e.obj, flags: e.flags, gen: e.gen, objGen: e.obj.header().generation()}
	p.mu.Unlock()
	return ref, OK
}

// revalidateLocked reports whether descriptor fd still maps to the
// snapshot ref — same description at the same generation. Used by
// handlers that install state into the entry after a window in which a
// concurrent close(2) could have retired it. Callers hold p.mu.
func (p *Proc) revalidateLocked(fd int, ref fdRef) bool {
	cur := p.fdt.get(fd)
	return cur == ref.ent && cur.gen == ref.gen
}

func (p *Proc) closeFD(fd int) Errno {
	p.mu.Lock()
	e := p.fdt.get(fd)
	if e == nil {
		p.mu.Unlock()
		return EBADF
	}
	p.fdt.clear(fd)
	e.refs--
	last := e.refs == 0
	var obj object
	if last {
		obj = e.obj
		// Retire the description: bump gen (under both locks, so readers
		// holding either see it), drop the object reference, and pool the
		// entry for the next alloc.
		e.mu.Lock()
		e.gen++
		e.obj = nil
		e.mu.Unlock()
		p.free = append(p.free, e)
	}
	p.mu.Unlock()
	if last {
		return obj.close()
	}
	return OK
}

// dupFD installs a second descriptor referring to the SAME open file
// description — Linux dup(2) semantics: offset and flags are shared, and
// the object is released only when the last descriptor closes.
//
// The free slot is secured BEFORE any reference count moves: the previous
// implementation bumped the object's refcount first and leaked the
// reference when the slot scan came back EMFILE, leaving a pooled socket
// endpoint pinned forever (its last close never reached zero).
func (p *Proc) dupFD(fd int) (int, Errno) {
	p.mu.Lock()
	e := p.fdt.get(fd)
	if e == nil {
		p.mu.Unlock()
		return -1, EBADF
	}
	nfd, ok := p.fdt.alloc()
	if !ok {
		p.mu.Unlock()
		return -1, EMFILE // nothing was touched; no reference leaked
	}
	e.refs++
	p.fdt.set(nfd, e)
	p.mu.Unlock()
	return nfd, OK
}

// OpenFDs reports the number of live descriptors (for tests).
func (p *Proc) OpenFDs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fdt.count()
}

// NextTid allocates a thread id within the process. The monitor calls this
// inside the ordered clone critical section so that corresponding threads
// receive identical tids in every variant.
func (p *Proc) NextTid() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	tid := p.nextTid
	p.nextTid++
	return tid
}
