package kernel

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/futex"
)

// maxFDs bounds a process's descriptor table, like RLIMIT_NOFILE.
const maxFDs = 1024

// openFile is an open file description — the kernel's struct file: the
// state shared by every descriptor that refers to one open(2)/socket(2)/
// pipe2(2) result. dup(2)'d descriptors point at the SAME description, so
// they share the file offset and status flags exactly like Linux
// descriptors do (an lseek or read through one moves the offset the other
// observes). Since fork(2) landed, descriptions are also shared ACROSS
// processes: the child's descriptor table references the parent's
// descriptions, which is why refs and gen are atomics — a close in the
// child and a close in the parent run under different Proc locks.
//
// Descriptions are pooled per process (Proc.free): the close that drops
// the last reference pushes the retired entry onto ITS process's freelist
// and the next alloc there pops it, so the descriptor-install on the
// serving accept path costs zero allocations in steady state. Retirement
// bumps gen; an fdRef snapshot taken before the close fails its
// generation check under mu instead of reading a successor descriptor's
// offset.
type openFile struct {
	// mu guards offset against concurrent seekable operations (two
	// threads reading one dup'd descriptor race the shared offset) and
	// gates the generation check for offset-carrying ops.
	mu     sync.Mutex
	obj    object
	offset int64
	flags  int
	// refs counts descriptor-table references across ALL processes
	// sharing the description (dup and fork add one each); the close
	// that drops it to zero releases obj. An entry live in any table
	// pins refs >= 1, so retirement can never race a lookup.
	refs atomic.Int32
	// gen is the entry's reuse generation: bumped at retirement under
	// openFile.mu, read atomically anywhere.
	gen atomic.Uint64
}

// fdRef is a point-in-time snapshot of one descriptor: the description,
// its object, and the generations observed at lookup. Operations validate
// the entry generation before committing state (offset moves) and the
// object-header generation before touching pooled stream objects, so a
// reference that outlives its descriptor — another thread's close(2)
// racing a read — degrades to EBADF instead of acting on a recycled
// entry or a socket endpoint re-attached to a successor connection. (The
// check-then-act window is a few instructions; fully closing it would
// require per-op locks on the stream hot path, and it only opens when a
// guest uses an fd after closing it — a program bug.) fdRef is a value
// type: taking a snapshot allocates nothing.
type fdRef struct {
	ent    *openFile
	obj    object
	flags  int    // the description's open flags (immutable after alloc)
	gen    uint64 // ent's generation at lookup
	objGen uint64 // obj's header generation at lookup
}

// accessMode returns the O_RDONLY/O_WRONLY/O_RDWR bits of the shared
// description's flags — the access-mode check for seekable objects lives
// in the kernel handlers, on the description, because that is the state
// dup(2)'d descriptors share (streams enforce direction in the object).
func (r fdRef) accessMode() int { return r.flags & 0x3 }

// stale reports whether the object behind the snapshot has been retired
// (and possibly recycled) since lookup. One atomic load.
func (r fdRef) stale() bool { return r.obj.header().generation() != r.objGen }

// fdTable is the slab-backed descriptor table: an allocation bitmap for
// the lowest-free scan (the kernel behaviour whose cross-variant
// visibility motivates syscall ordering in the first place, §3.1) plus a
// dense slot array. The bitmap makes alloc O(maxFDs/64) words instead of
// the old map's O(maxFDs) probe loop, and the slots are plain pointers —
// no hashing, no bucket churn.
type fdTable struct {
	// used bit fd = descriptor live. Bits 0-2 are permanently set
	// (stdin/stdout/stderr reserved), so the lowest-free scan lands at 3
	// without a special case.
	used  [maxFDs / 64]uint64
	slots []*openFile // grown on demand; slots[fd] valid while bit fd is set
}

func (t *fdTable) init() { t.used[0] = 0b111 }

// alloc claims the lowest free descriptor and returns it, or false when
// the table is full (EMFILE). Callers hold Proc.mu.
func (t *fdTable) alloc() (int, bool) {
	for w := range t.used {
		free := ^t.used[w]
		if free == 0 {
			continue
		}
		b := bits.TrailingZeros64(free)
		fd := w<<6 | b
		t.used[w] |= 1 << uint(b)
		for len(t.slots) <= fd {
			t.slots = append(t.slots, nil)
		}
		return fd, true
	}
	return -1, false
}

// get returns the live entry at fd, or nil.
func (t *fdTable) get(fd int) *openFile {
	if fd < 3 || fd >= maxFDs || fd >= len(t.slots) ||
		t.used[fd>>6]&(1<<uint(fd&63)) == 0 {
		return nil
	}
	return t.slots[fd]
}

func (t *fdTable) set(fd int, e *openFile) { t.slots[fd] = e }

// install claims a SPECIFIC descriptor number and maps it to e, growing
// the slot array as needed — the fork path, which must mirror the
// parent's descriptor numbers rather than take the lowest free slot. The
// bitmap/slot representation stays private to fdTable.
func (t *fdTable) install(fd int, e *openFile) {
	t.used[fd>>6] |= 1 << uint(fd&63)
	for len(t.slots) <= fd {
		t.slots = append(t.slots, nil)
	}
	t.slots[fd] = e
}

func (t *fdTable) clear(fd int) {
	t.used[fd>>6] &^= 1 << uint(fd&63)
	t.slots[fd] = nil
}

// count returns the number of live user descriptors (excluding the three
// reserved stdio bits).
func (t *fdTable) count() int {
	n := 0
	for _, w := range t.used {
		n += bits.OnesCount64(w)
	}
	return n - 3
}

// Proc is the kernel-side state of one simulated process. Each variant's
// root process anchors a tree grown by SysFork; the tree shares a pid
// namespace and a thread-id space (see process.go) and each process
// carries its own descriptor table, address space, and signal table.
type Proc struct {
	// Pid is the kernel-internal process id: globally unique across every
	// variant (it keys the futex namespaces). The GUEST-visible pid is
	// vpid, deterministic across variants; SysGetpid returns that one.
	Pid int
	AS  *AddressSpace

	mu  sync.Mutex
	fdt fdTable
	// free pools retired open-file descriptions for reuse by the next
	// alloc; see openFile.
	free []*openFile

	// Process-tree state, guarded by Kernel.treeMu (see process.go).
	kern     *Kernel
	ns       *pidNamespace
	vpid     int
	parent   *Proc
	children []*Proc
	state    int
	status   int
	// autoReap marks a child a slave's waitpid record already reaped in
	// the master: the child frees itself at its own (later) local exit.
	autoReap bool

	// threads counts the process's LIVE threads, guarded by Kernel.treeMu:
	// 1 at creation (the initial thread), +1 per successful clone, -1 per
	// SysThreadExit/SysExit. The zombie transition happens when the count
	// reaches zero with the exit-group flag raised (see doExit).
	threads int

	// tids allocates thread ids tree-wide (see tidSpace).
	tids *tidSpace

	// Signal table (see signal.go). The pending/blocked/ignored masks are
	// atomics so the deliverable predicate polled by blocking kernel ops
	// is lock-free; sigMu serializes read-modify-write transitions.
	sigMu      sync.Mutex
	sigPending atomic.Uint64
	sigBlocked atomic.Uint64
	sigIgnored atomic.Uint64
	sigDisp    [maxSig + 1]uint8
	// sigPark parks nanosleep; kill wakes it. (Other blocking sites park
	// on their object's cond or the kernel poll wait set.)
	sigPark futex.Parker
	// sigIntr is the precomputed interrupt predicate (== interrupted as a
	// method value, bound once so blocking call sites don't allocate a
	// closure per call): deliverable signal or exit-group in progress.
	sigIntr func() bool
	// exitGroup is raised (inside the ordered SysExit) by the first thread
	// to exit the process; sibling threads observe it at their next
	// syscall boundary (BoundarySig) or blocking-op wakeup (interrupted)
	// and unwind.
	exitGroup atomic.Bool

	// board, when non-nil, is the deadlock detector's blocked-site board.
	// It is armed on a session's MASTER root process only (slaves replay
	// the master's schedule, so detection on the master speaks for all) and
	// inherited by forked children. Set before the process serves calls;
	// read without synchronization on every blocking path (one nil check —
	// the disarmed cost).
	board *BlockBoard
}

// NewProc creates a root process with an empty descriptor table
// (descriptors 0-2 are reserved, as stdin/stdout/stderr would be), the
// given address space, and a fresh pid namespace in which it is pid 1.
func NewProc(pid int, as *AddressSpace) *Proc {
	p := &Proc{Pid: pid, AS: as, vpid: 1, threads: 1}
	p.fdt.init()
	p.ns = &pidNamespace{nextVpid: 2, byVpid: map[int]*Proc{1: p}}
	p.tids = &tidSpace{next: 1}
	p.sigIgnored.Store(defaultIgnored)
	p.sigIntr = p.interrupted
	return p
}

// Threads reports p's live thread count (for tests and the admin plane).
func (p *Proc) Threads() int {
	if p.kern == nil {
		return p.threads
	}
	p.kern.treeMu.Lock()
	defer p.kern.treeMu.Unlock()
	return p.threads
}

// Vpid returns the guest-visible process id: 1 for a variant's root
// process, 2, 3, … for forked children in fork order — identical across
// variants because fork is an ordered syscall.
func (p *Proc) Vpid() int { return p.vpid }

// getEntry pops a pooled description (its gen was bumped at retirement) or
// makes a fresh one. Callers hold p.mu.
func (p *Proc) getEntry() *openFile {
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return e
	}
	return &openFile{}
}

// allocFD installs obj at the lowest free descriptor >= 3 with the given
// status flags and initial offset.
func (p *Proc) allocFD(obj object, flags int, offset int64) (int, Errno) {
	p.mu.Lock()
	fd, ok := p.fdt.alloc()
	if !ok {
		p.mu.Unlock()
		return -1, EMFILE
	}
	e := p.getEntry()
	e.obj, e.flags, e.offset = obj, flags, offset
	e.refs.Store(1)
	p.fdt.set(fd, e)
	p.mu.Unlock()
	return fd, OK
}

// lookupFD snapshots descriptor fd. The snapshot is valid by construction
// at the moment it is taken (the entry is live in the table under p.mu,
// which pins refs >= 1 and therefore blocks retirement); offset-committing
// operations revalidate ref.gen under ent.mu before acting, so a close
// racing in between degrades the op to EBADF.
func (p *Proc) lookupFD(fd int) (fdRef, Errno) {
	p.mu.Lock()
	e := p.fdt.get(fd)
	if e == nil {
		p.mu.Unlock()
		return fdRef{}, EBADF
	}
	ref := fdRef{ent: e, obj: e.obj, flags: e.flags, gen: e.gen.Load(), objGen: e.obj.header().generation()}
	p.mu.Unlock()
	return ref, OK
}

// revalidateLocked reports whether descriptor fd still maps to the
// snapshot ref — same description at the same generation. Used by
// handlers that install state into the entry after a window in which a
// concurrent close(2) could have retired it. Callers hold p.mu.
func (p *Proc) revalidateLocked(fd int, ref fdRef) bool {
	cur := p.fdt.get(fd)
	return cur == ref.ent && cur.gen.Load() == ref.gen
}

func (p *Proc) closeFD(fd int) Errno {
	p.mu.Lock()
	e := p.fdt.get(fd)
	if e == nil {
		p.mu.Unlock()
		return EBADF
	}
	p.fdt.clear(fd)
	// The slot is cleared before the reference drops: once refs hits
	// zero, no table anywhere still maps the entry, so the retirement
	// below cannot race a lookup in a process sharing the description.
	last := e.refs.Add(-1) == 0
	var obj object
	if last {
		obj = e.obj
		// Retire the description: bump gen (under ent.mu, so in-flight
		// offset ops serialize against it), drop the object reference, and
		// pool the entry for this process's next alloc.
		e.mu.Lock()
		e.gen.Add(1)
		e.obj = nil
		e.mu.Unlock()
		p.free = append(p.free, e)
	}
	p.mu.Unlock()
	if last {
		return obj.close()
	}
	return OK
}

// dupFD installs a second descriptor referring to the SAME open file
// description — Linux dup(2) semantics: offset and flags are shared, and
// the object is released only when the last descriptor closes.
//
// The free slot is secured BEFORE any reference count moves: the previous
// implementation bumped the object's refcount first and leaked the
// reference when the slot scan came back EMFILE, leaving a pooled socket
// endpoint pinned forever (its last close never reached zero).
func (p *Proc) dupFD(fd int) (int, Errno) {
	p.mu.Lock()
	e := p.fdt.get(fd)
	if e == nil {
		p.mu.Unlock()
		return -1, EBADF
	}
	nfd, ok := p.fdt.alloc()
	if !ok {
		p.mu.Unlock()
		return -1, EMFILE // nothing was touched; no reference leaked
	}
	e.refs.Add(1)
	p.fdt.set(nfd, e)
	p.mu.Unlock()
	return nfd, OK
}

// OpenFDs reports the number of live descriptors (for tests).
func (p *Proc) OpenFDs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fdt.count()
}

// NextTid allocates a thread id. Tids come from the process TREE's shared
// space (fork children's threads must not collide with the parent's: the
// monitor's syscall rings are per-tid). The monitor calls this inside the
// ordered clone critical section so that corresponding threads receive
// identical tids in every variant.
func (p *Proc) NextTid() int { return p.tids.take() }

// SetBlockBoard arms the deadlock detector on this process: every internal
// blocking site its threads sleep at will register a cell on b. Arm the
// master root process only, before it serves calls; forked children
// inherit the board.
func (p *Proc) SetBlockBoard(b *BlockBoard) { p.board = b }

// Board returns the process's deadlock board (nil when disarmed). The core
// layer uses it to register futex sleeps, which happen outside the kernel.
func (p *Proc) Board() *BlockBoard { return p.board }

// blk builds the blocking-call context the kernel's sleep sites take: the
// process's interrupt predicate plus — when the deadlock board is armed —
// the identity (board, tid, fd) a registered cell needs. A plain value,
// built on the caller's stack: the disarmed hot path pays field copies,
// no allocation.
func (p *Proc) blk(tid, fd int) blocker {
	return blocker{intr: p.sigIntr, board: p.board, tid: tid, fd: fd}
}
