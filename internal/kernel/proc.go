package kernel

import (
	"sync"
)

// maxFDs bounds a process's descriptor table, like RLIMIT_NOFILE.
const maxFDs = 1024

// fdEntry binds a descriptor to an object plus per-descriptor state.
type fdEntry struct {
	obj    object
	offset int64
	flags  int
}

// Proc is the kernel-side state of one process (one MVEE variant).
type Proc struct {
	Pid int
	AS  *AddressSpace

	mu  sync.Mutex
	fds map[int]*fdEntry

	nextTid int
}

// NewProc creates a process with an empty descriptor table (descriptors
// 0-2 are reserved, as stdin/stdout/stderr would be) and the given address
// space.
func NewProc(pid int, as *AddressSpace) *Proc {
	return &Proc{Pid: pid, AS: as, fds: make(map[int]*fdEntry), nextTid: 1}
}

// allocFD installs obj at the lowest free descriptor >= 3 — the kernel
// behaviour whose cross-variant visibility motivates syscall ordering in
// the first place (§3.1).
func (p *Proc) allocFD(obj object, flags int) (int, Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for fd := 3; fd < maxFDs; fd++ {
		if _, used := p.fds[fd]; !used {
			p.fds[fd] = &fdEntry{obj: obj, flags: flags}
			return fd, OK
		}
	}
	return -1, EMFILE
}

func (p *Proc) lookupFD(fd int) (*fdEntry, Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.fds[fd]
	if !ok {
		return nil, EBADF
	}
	return e, OK
}

func (p *Proc) closeFD(fd int) Errno {
	p.mu.Lock()
	e, ok := p.fds[fd]
	if !ok {
		p.mu.Unlock()
		return EBADF
	}
	delete(p.fds, fd)
	p.mu.Unlock()
	return e.obj.close()
}

// duppable is implemented by objects that track descriptor-table
// references (pooled socket endpoints): dup tells the object a second
// descriptor now shares it, so only the last close finalizes it.
type duppable interface{ dup() }

func (p *Proc) dupFD(fd int) (int, Errno) {
	p.mu.Lock()
	e, ok := p.fds[fd]
	if !ok {
		p.mu.Unlock()
		return -1, EBADF
	}
	// A dup shares the object but gets an independent entry; sharing the
	// offset (like real dup) is not needed by any workload, so entries
	// keep private offsets for simplicity.
	if d, ok := e.obj.(duppable); ok {
		d.dup()
	}
	clone := &fdEntry{obj: e.obj, offset: e.offset, flags: e.flags}
	for nfd := 3; nfd < maxFDs; nfd++ {
		if _, used := p.fds[nfd]; !used {
			p.fds[nfd] = clone
			p.mu.Unlock()
			return nfd, OK
		}
	}
	p.mu.Unlock()
	return -1, EMFILE
}

// OpenFDs reports the number of live descriptors (for tests).
func (p *Proc) OpenFDs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fds)
}

// NextTid allocates a thread id within the process. The monitor calls this
// inside the ordered clone critical section so that corresponding threads
// receive identical tids in every variant.
func (p *Proc) NextTid() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	tid := p.nextTid
	p.nextTid++
	return tid
}
