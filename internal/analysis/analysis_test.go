package analysis

import (
	"testing"

	"repro/internal/asm"
)

// listing1Unit models Listing 1: an ad-hoc spinlock with a LOCK CMPXCHG
// acquire and a plain store release.
func listing1Unit() *asm.Unit {
	return &asm.Unit{
		Name:    "listing1",
		Symbols: []string{"spinlock", "other"},
		Funcs: []asm.Func{
			{
				Name:   "spinlock_lock",
				Params: []string{"rdi"},
				Body: []asm.Instr{
					{Op: asm.OpLockRMW, Dst: asm.Operand{Reg: "rdi", Aligned: true}, Line: 4},
					{Op: asm.OpRet},
				},
			},
			{
				Name:   "spinlock_unlock",
				Params: []string{"rdi"},
				Body: []asm.Instr{
					{Op: asm.OpStore, Dst: asm.Operand{Reg: "rdi", Aligned: true}, Line: 9},
					{Op: asm.OpRet},
				},
			},
			{
				Name: "main",
				Body: []asm.Instr{
					{Op: asm.OpLea, Dst: asm.Operand{Reg: "rax"}, Src: asm.Operand{Sym: "spinlock"}, Line: 12},
					{Op: asm.OpCall, Callee: "spinlock_lock", Src: asm.Operand{Reg: "rax"}, Line: 12},
					{Op: asm.OpLoad, Src: asm.Operand{Sym: "other", Aligned: true}, Line: 13},
					{Op: asm.OpCall, Callee: "spinlock_unlock", Src: asm.Operand{Reg: "rax"}, Line: 14},
					{Op: asm.OpRet},
				},
			},
		},
	}
}

func TestListing1BothAnalyses(t *testing.T) {
	// The paper's worked example: the CAS at line 4 is type (i); the
	// points-to stage must then find the store at line 9 (through the
	// pointer parameter) to be type (iii). The unrelated load at line 13
	// must not be flagged.
	for _, kind := range []PointsToKind{UseAndersen, UseSteensgaard} {
		rep := Analyze(listing1Unit(), kind)
		if rep.CountI != 1 || rep.CountII != 0 || rep.CountIII != 1 {
			t.Fatalf("kind %v: counts = %d/%d/%d, want 1/0/1",
				kind, rep.CountI, rep.CountII, rep.CountIII)
		}
		if len(rep.SyncVars) != 1 || rep.SyncVars[0] != "spinlock" {
			t.Fatalf("kind %v: sync vars = %v", kind, rep.SyncVars)
		}
		for _, op := range rep.Ops {
			if op.Type == TypeIII && op.Func != "spinlock_unlock" {
				t.Fatalf("type (iii) op found in %s, want spinlock_unlock", op.Func)
			}
		}
	}
}

func TestListing2LimitationIsReproduced(t *testing.T) {
	// Listing 2: a condition flag accessed only by plain loads/stores.
	// The paper's analysis misses it — ours must too (the limitation is
	// part of the design).
	u := &asm.Unit{
		Name:    "listing2",
		Symbols: []string{"flag"},
		Funcs: []asm.Func{
			{Name: "signal_thread", Body: []asm.Instr{
				{Op: asm.OpStore, Dst: asm.Operand{Sym: "flag", Aligned: true}, Line: 4},
				{Op: asm.OpRet},
			}},
			{Name: "wait_until_signaled", Body: []asm.Instr{
				{Op: asm.OpLoad, Src: asm.Operand{Sym: "flag", Aligned: true}, Line: 8},
				{Op: asm.OpRet},
			}},
		},
	}
	rep := Analyze(u, UseAndersen)
	if len(rep.Ops) != 0 {
		t.Fatalf("volatile-only primitive was detected (%d ops); the analysis "+
			"is documented as unable to find these", len(rep.Ops))
	}
}

func TestUnalignedAccessesExcluded(t *testing.T) {
	u := &asm.Unit{
		Name: "unaligned",
		Funcs: []asm.Func{{Name: "f", Body: []asm.Instr{
			{Op: asm.OpLockRMW, Dst: asm.Operand{Sym: "l", Aligned: true}},
			{Op: asm.OpStore, Dst: asm.Operand{Sym: "l", Aligned: false}}, // unaligned: not atomic
			{Op: asm.OpStore, Dst: asm.Operand{Sym: "l", Aligned: true}},
		}}},
	}
	rep := Analyze(u, UseAndersen)
	if rep.CountIII != 1 {
		t.Fatalf("type (iii) count = %d, want 1 (unaligned store must be excluded)", rep.CountIII)
	}
}

func TestXchgIsTypeII(t *testing.T) {
	u := &asm.Unit{
		Name: "xchg",
		Funcs: []asm.Func{{Name: "f", Body: []asm.Instr{
			{Op: asm.OpXchg, Dst: asm.Operand{Sym: "l", Aligned: true}},
			{Op: asm.OpLoad, Src: asm.Operand{Sym: "l", Aligned: true}},
		}}},
	}
	rep := Analyze(u, UseAndersen)
	if rep.CountII != 1 || rep.CountIII != 1 {
		t.Fatalf("counts = %d/%d/%d", rep.CountI, rep.CountII, rep.CountIII)
	}
}

func TestSteensgaardIsCoarserThanAndersen(t *testing.T) {
	// r1 -> {A}, r2 -> {B}, both flow into r3. Andersen keeps r1 and r2
	// precise; Steensgaard unifies all three. A load through r2 is then
	// wrongly flagged by Steensgaard when only A is a sync root.
	u := &asm.Unit{
		Name:    "precision",
		Symbols: []string{"A", "B"},
		Funcs: []asm.Func{{Name: "f", Body: []asm.Instr{
			{Op: asm.OpLea, Dst: asm.Operand{Reg: "r1"}, Src: asm.Operand{Sym: "A"}},
			{Op: asm.OpLea, Dst: asm.Operand{Reg: "r2"}, Src: asm.Operand{Sym: "B"}},
			{Op: asm.OpMovReg, Dst: asm.Operand{Reg: "r3"}, Src: asm.Operand{Reg: "r1"}},
			{Op: asm.OpMovReg, Dst: asm.Operand{Reg: "r3"}, Src: asm.Operand{Reg: "r2"}},
			{Op: asm.OpLockRMW, Dst: asm.Operand{Sym: "A", Aligned: true}},
			{Op: asm.OpLoad, Src: asm.Operand{Reg: "r2", Aligned: true}}, // only B under Andersen
		}}},
	}
	and := Analyze(u, UseAndersen)
	ste := Analyze(u, UseSteensgaard)
	if and.CountIII != 0 {
		t.Fatalf("Andersen flagged %d type (iii) ops, want 0", and.CountIII)
	}
	if ste.CountIII != 1 {
		t.Fatalf("Steensgaard flagged %d type (iii) ops, want 1 (over-approximation)", ste.CountIII)
	}
}

func TestAndersenSubsetOfSteensgaard(t *testing.T) {
	// Soundness ordering: on every generated corpus, every op Andersen
	// reports must also be reported by Steensgaard.
	for _, spec := range Table3Specs() {
		u := Generate(spec)
		and := Analyze(u, UseAndersen)
		ste := Analyze(u, UseSteensgaard)
		steSet := map[SyncOp]bool{}
		for _, op := range ste.Ops {
			steSet[op] = true
		}
		for _, op := range and.Ops {
			if !steSet[op] {
				t.Fatalf("%s: Andersen op %+v missing from Steensgaard", spec.Name, op)
			}
		}
	}
}

func TestGeneratedCorporaMatchPlantedCounts(t *testing.T) {
	// The Table 3 experiment: the analysis must recover exactly the
	// planted sync op populations from each library model.
	for _, spec := range Table3Specs() {
		u := Generate(spec)
		wi, wii, wiii := PlantedCounts(spec)
		rep := Analyze(u, UseAndersen)
		if rep.CountI != wi || rep.CountII != wii || rep.CountIII != wiii {
			t.Errorf("%s: recovered %d/%d/%d, planted %d/%d/%d",
				spec.Name, rep.CountI, rep.CountII, rep.CountIII, wi, wii, wiii)
		}
	}
}

func TestGeneratedCorporaAreDeterministic(t *testing.T) {
	spec := Table3Specs()[0]
	a := Generate(spec)
	b := Generate(spec)
	if a.NumInstrs() != b.NumInstrs() {
		t.Fatalf("same seed produced %d vs %d instructions", a.NumInstrs(), b.NumInstrs())
	}
}

func TestReportSyncVarsSorted(t *testing.T) {
	rep := Analyze(Generate(UnitSpec{Name: "t", I: 8, II: 4, III: 4, Noise: 100, Seed: 9}), UseAndersen)
	for i := 1; i < len(rep.SyncVars); i++ {
		if rep.SyncVars[i] < rep.SyncVars[i-1] {
			t.Fatalf("sync vars not sorted: %v", rep.SyncVars)
		}
	}
}

func TestEmptyUnit(t *testing.T) {
	rep := Analyze(&asm.Unit{Name: "empty"}, UseAndersen)
	if len(rep.Ops) != 0 || len(rep.SyncVars) != 0 {
		t.Fatal("empty unit produced ops")
	}
}

func TestOpAndTypeStrings(t *testing.T) {
	if asm.OpLockRMW.String() != "lock-rmw" || asm.OpXchg.String() != "xchg" {
		t.Fatal("op strings wrong")
	}
	if TypeI.String() != "type-i" || TypeIII.String() != "type-iii" {
		t.Fatal("type strings wrong")
	}
}

func TestVolatileExtensionCatchesListing2(t *testing.T) {
	// The §4.3 extension: with volatile marking enabled, the load/store
	// only primitive of Listing 2 IS identified (the base analysis
	// misses it, see TestListing2LimitationIsReproduced).
	u := &asm.Unit{
		Name:     "listing2-volatile",
		Symbols:  []string{"flag"},
		Volatile: []string{"flag"},
		Funcs: []asm.Func{
			{Name: "signal_thread", Body: []asm.Instr{
				{Op: asm.OpStore, Dst: asm.Operand{Sym: "flag", Aligned: true}, Line: 4},
				{Op: asm.OpRet},
			}},
			{Name: "wait_until_signaled", Body: []asm.Instr{
				{Op: asm.OpLoad, Src: asm.Operand{Sym: "flag", Aligned: true}, Line: 8},
				{Op: asm.OpRet},
			}},
		},
	}
	base := AnalyzeOpts(u, Options{PointsTo: UseAndersen})
	if base.CountIII != 0 {
		t.Fatalf("base analysis found %d ops; limitation gone?", base.CountIII)
	}
	ext := AnalyzeOpts(u, Options{PointsTo: UseAndersen, MarkVolatile: true})
	if ext.CountIII != 2 {
		t.Fatalf("volatile extension found %d type (iii) ops, want 2", ext.CountIII)
	}
	if len(ext.SyncVars) != 1 || ext.SyncVars[0] != "flag" {
		t.Fatalf("sync vars = %v", ext.SyncVars)
	}
}

func TestVolatileExtensionOverApproximates(t *testing.T) {
	// The extension's documented cost: a volatile variable used for
	// something else (e.g. signal-handler flags, MMIO) is flagged too.
	u := &asm.Unit{
		Name:     "volatile-nonsync",
		Symbols:  []string{"mmio_reg"},
		Volatile: []string{"mmio_reg"},
		Funcs: []asm.Func{{Name: "poll", Body: []asm.Instr{
			{Op: asm.OpLoad, Src: asm.Operand{Sym: "mmio_reg", Aligned: true}},
			{Op: asm.OpRet},
		}}},
	}
	ext := AnalyzeOpts(u, Options{PointsTo: UseAndersen, MarkVolatile: true})
	if ext.CountIII != 1 {
		t.Fatalf("expected the documented over-approximation, got %d ops", ext.CountIII)
	}
}
