package analysis

import (
	"fmt"

	"repro/internal/asm"
)

// SyncOpType classifies an identified sync op per the paper's taxonomy.
type SyncOpType int

const (
	// TypeI is a LOCK-prefixed instruction.
	TypeI SyncOpType = iota + 1
	// TypeII is an XCHG instruction (implicit LOCK).
	TypeII
	// TypeIII is an aligned load/store that may alias a variable accessed
	// by type (i)/(ii) instructions elsewhere.
	TypeIII
)

// String implements fmt.Stringer.
func (t SyncOpType) String() string {
	switch t {
	case TypeI:
		return "type-i"
	case TypeII:
		return "type-ii"
	case TypeIII:
		return "type-iii"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// SyncOp is one identified synchronization operation.
type SyncOp struct {
	Type SyncOpType
	Func string
	Idx  int // instruction index within the function body
	Line int // source line (debug info)
}

// Report is the per-unit analysis result — one row of Table 3.
type Report struct {
	Unit     string
	Ops      []SyncOp
	SyncVars []string // sorted synchronization roots
	// Counts per type, indexable by SyncOpType.
	CountI, CountII, CountIII int
}

// PointsToKind selects which stage-2 analysis runs.
type PointsToKind int

const (
	// UseAndersen selects the subset-based analysis (the SVF prototype).
	UseAndersen PointsToKind = iota
	// UseSteensgaard selects the unification-based analysis (the
	// DSA/poolalloc prototype).
	UseSteensgaard
)

// Options tunes Analyze beyond the stage-2 analysis choice.
type Options struct {
	PointsTo PointsToKind
	// MarkVolatile enables the paper's proposed extension (§4.3): treat
	// volatile-declared variables as synchronization roots prior to the
	// points-to stage, catching load/store-only primitives like Listing 2
	// at the cost of a (usually minor) over-approximation.
	MarkVolatile bool
}

// Analyze runs the full two-stage identification on a unit with the given
// stage-2 points-to analysis and no extensions.
func Analyze(u *asm.Unit, kind PointsToKind) *Report {
	return AnalyzeOpts(u, Options{PointsTo: kind})
}

// AnalyzeOpts runs the full two-stage identification with options.
func AnalyzeOpts(u *asm.Unit, opts Options) *Report {
	kind := opts.PointsTo
	rep := &Report{Unit: u.Name}

	// Stage 1: mark type (i) and (ii) instructions and collect the
	// synchronization roots they touch (directly or through pointers,
	// which requires the points-to solution for indirect operands).
	var pts PointsTo
	if kind == UseSteensgaard {
		pts = Steensgaard(u)
	} else {
		pts = Andersen(u)
	}
	roots := map[string]bool{}
	if opts.MarkVolatile {
		for _, sym := range u.Volatile {
			roots[sym] = true
		}
	}
	touch := func(op asm.Operand) {
		if op.Sym != "" {
			roots[op.Sym] = true
		}
		if op.Reg != "" {
			for _, s := range pts.Set(op.Reg) {
				roots[s] = true
			}
		}
	}
	for _, f := range u.Funcs {
		for i, in := range f.Body {
			switch in.Op {
			case asm.OpLockRMW:
				rep.Ops = append(rep.Ops, SyncOp{Type: TypeI, Func: f.Name, Idx: i, Line: in.Line})
				rep.CountI++
				touch(in.Dst)
			case asm.OpXchg:
				rep.Ops = append(rep.Ops, SyncOp{Type: TypeII, Func: f.Name, Idx: i, Line: in.Line})
				rep.CountII++
				touch(in.Dst)
			}
		}
	}

	// Stage 2: aligned loads/stores that may alias a root are type (iii).
	mayAliasRoot := func(op asm.Operand) bool {
		if op.Sym != "" {
			return roots[op.Sym]
		}
		if op.Reg != "" {
			for _, s := range pts.Set(op.Reg) {
				if roots[s] {
					return true
				}
			}
		}
		return false
	}
	for _, f := range u.Funcs {
		for i, in := range f.Body {
			var mem asm.Operand
			switch in.Op {
			case asm.OpLoad:
				mem = in.Src
			case asm.OpStore:
				mem = in.Dst
			default:
				continue
			}
			if !mem.Aligned {
				continue // unaligned accesses cannot be atomic
			}
			if mayAliasRoot(mem) {
				rep.Ops = append(rep.Ops, SyncOp{Type: TypeIII, Func: f.Name, Idx: i, Line: in.Line})
				rep.CountIII++
			}
		}
	}

	for s := range roots {
		rep.SyncVars = append(rep.SyncVars, s)
	}
	sortStrings(rep.SyncVars)
	return rep
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
