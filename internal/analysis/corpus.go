package analysis

import (
	"fmt"
	"math/rand"

	"repro/internal/asm"
)

// UnitSpec describes a synthetic library corpus modelled on one row of
// Table 3. The real binaries (glibc, libpthread, libgomp, libstdc++ and the
// PARSEC binaries) are unavailable here, so the corpus generator plants the
// same number of type (i)/(ii) instructions and aliasing type (iii)
// accesses, surrounded by realistic "noise" code, and the analysis is
// validated by recovering exactly the planted populations (see DESIGN.md
// substitutions).
type UnitSpec struct {
	Name  string
	I     int // LOCK-prefixed instructions to plant
	II    int // XCHG instructions to plant
	III   int // aliasing aligned load/stores to plant
	Noise int // non-sync instructions to interleave
	Seed  int64
}

// Table3Specs models the units of Table 3 with the paper's counts.
func Table3Specs() []UnitSpec {
	return []UnitSpec{
		{Name: "libc-2.19.so", I: 319, II: 409, III: 94, Noise: 12000, Seed: 1},
		{Name: "libpthreads-2.19.so", I: 163, II: 81, III: 160, Noise: 4000, Seed: 2},
		{Name: "libgomp.so", I: 68, II: 38, III: 13, Noise: 1500, Seed: 3},
		{Name: "libstdc++.so", I: 162, II: 3, III: 25, Noise: 5000, Seed: 4},
		{Name: "bodytrack", I: 201, II: 0, III: 8, Noise: 8000, Seed: 5},
		{Name: "facesim", I: 385, II: 0, III: 8, Noise: 15000, Seed: 6},
		{Name: "raytrace", I: 170, II: 0, III: 8, Noise: 9000, Seed: 7},
		{Name: "vips", I: 4, II: 0, III: 6, Noise: 6000, Seed: 8},
	}
}

// Generate builds the synthetic unit for a spec. Ground truth: the planted
// sync ops are exactly the ops a sound and complete analysis must report.
//
// Structure: sync variables are "lock_<k>" symbols. Type (i)/(ii) ops hit
// them directly or through one-hop pointers (lea + movreg), type (iii) ops
// are the matching unlock stores and guard loads — some direct, some
// reached through a helper function's pointer parameter, so stage 2
// genuinely needs the points-to solution. Noise consists of loads/stores to
// "data_<k>" symbols (never aliased with locks), arithmetic, and unaligned
// accesses to lock symbols (excluded by the alignment rule).
func Generate(spec UnitSpec) *asm.Unit {
	rng := rand.New(rand.NewSource(spec.Seed))
	u := &asm.Unit{Name: spec.Name}

	nlocks := spec.I/4 + spec.II/4 + spec.III/4 + 1
	for k := 0; k < nlocks; k++ {
		u.Symbols = append(u.Symbols, fmt.Sprintf("lock_%d", k))
	}
	ndata := spec.Noise/8 + 1
	for k := 0; k < ndata; k++ {
		u.Symbols = append(u.Symbols, fmt.Sprintf("data_%d", k))
	}
	lock := func(k int) string { return fmt.Sprintf("lock_%d", k%nlocks) }
	data := func(k int) string { return fmt.Sprintf("data_%d", k%ndata) }

	// A helper whose pointer parameter is stored through: models
	// spinlock_unlock(int *ptr) { *ptr = 0; } from Listing 1. Calls pass
	// lock addresses, so stage 2 must classify the store as type (iii).
	helperStores := 0
	helper := asm.Func{
		Name:   "unlock_helper",
		Params: []string{"rdi"},
	}

	cur := asm.Func{Name: "fn_0"}
	fnIdx := 0
	line := 1
	flush := func() {
		cur.Body = append(cur.Body, asm.Instr{Op: asm.OpRet, Line: line})
		u.Funcs = append(u.Funcs, cur)
		fnIdx++
		cur = asm.Func{Name: fmt.Sprintf("fn_%d", fnIdx)}
	}
	emit := func(in asm.Instr) {
		in.Line = line
		line++
		cur.Body = append(cur.Body, in)
		if len(cur.Body) > 40 && rng.Intn(4) == 0 {
			flush()
		}
	}

	// Plant type (i): half direct, half through a register.
	for k := 0; k < spec.I; k++ {
		if k%2 == 0 {
			emit(asm.Instr{Op: asm.OpLockRMW, Dst: asm.Operand{Sym: lock(k), Aligned: true}})
		} else {
			reg := fmt.Sprintf("r%d", 8+k%4)
			emit(asm.Instr{Op: asm.OpLea, Dst: asm.Operand{Reg: reg}, Src: asm.Operand{Sym: lock(k)}})
			emit(asm.Instr{Op: asm.OpLockRMW, Dst: asm.Operand{Reg: reg, Aligned: true}})
		}
	}
	// Plant type (ii).
	for k := 0; k < spec.II; k++ {
		emit(asm.Instr{Op: asm.OpXchg, Dst: asm.Operand{Sym: lock(k + spec.I), Aligned: true}})
	}
	// Every lock symbol needs at least one type (i)/(ii) toucher for the
	// planted type (iii) ops to alias a root; the modular lock() indexing
	// above guarantees coverage only if I+II >= nlocks, which the spec
	// arithmetic ensures (nlocks <= I/4+II/4+III/4+1 and III ops reuse
	// root-covered locks below).

	// Plant type (iii): stores and loads on lock symbols, a third of them
	// through register chains. One op is reserved for the helper function
	// below so the total equals the spec exactly.
	rooted := spec.I + spec.II // lock() indices 0..I+II-1 are rooted
	if rooted == 0 {
		rooted = 1
	}
	explicit := spec.III
	if explicit > 0 {
		explicit-- // the helper body's store is the last type (iii) op
	}
	for k := 0; k < explicit; k++ {
		switch k % 3 {
		case 0:
			emit(asm.Instr{Op: asm.OpStore, Dst: asm.Operand{Sym: lock(k % rooted), Aligned: true}})
		case 1:
			emit(asm.Instr{Op: asm.OpLoad, Src: asm.Operand{Sym: lock(k % rooted), Aligned: true}})
		default:
			// Through the helper: lea the lock address, call; the
			// helper's store counts once per *instruction*, so the
			// helper's single store covers all these calls — instead
			// plant per-call stores through a local register chain.
			r1 := "rax"
			r2 := "rbx"
			emit(asm.Instr{Op: asm.OpLea, Dst: asm.Operand{Reg: r1}, Src: asm.Operand{Sym: lock(k % rooted)}})
			emit(asm.Instr{Op: asm.OpMovReg, Dst: asm.Operand{Reg: r2}, Src: asm.Operand{Reg: r1}})
			emit(asm.Instr{Op: asm.OpStore, Dst: asm.Operand{Reg: r2, Aligned: true}})
		}
	}
	// One call into the helper with a lock address: the helper's body
	// store becomes type (iii) iff helperStores is planted.
	if spec.III > 0 {
		helperStores = 1
		helper.Body = append(helper.Body,
			asm.Instr{Op: asm.OpStore, Dst: asm.Operand{Reg: "rdi", Aligned: true}},
			asm.Instr{Op: asm.OpRet})
		emit(asm.Instr{Op: asm.OpLea, Dst: asm.Operand{Reg: "rcx"}, Src: asm.Operand{Sym: lock(0)}})
		emit(asm.Instr{Op: asm.OpCall, Callee: "unlock_helper", Src: asm.Operand{Reg: "rcx"}})
	}

	// Noise: never aliases a lock root.
	for k := 0; k < spec.Noise; k++ {
		switch rng.Intn(5) {
		case 0:
			emit(asm.Instr{Op: asm.OpLoad, Src: asm.Operand{Sym: data(k), Aligned: true}})
		case 1:
			emit(asm.Instr{Op: asm.OpStore, Dst: asm.Operand{Sym: data(k), Aligned: true}})
		case 2:
			emit(asm.Instr{Op: asm.OpArith})
		case 3:
			// Unaligned access to a lock symbol: excluded by alignment.
			emit(asm.Instr{Op: asm.OpLoad, Src: asm.Operand{Sym: lock(k), Aligned: false}})
		default:
			reg := fmt.Sprintf("n%d", k%8)
			emit(asm.Instr{Op: asm.OpLea, Dst: asm.Operand{Reg: reg}, Src: asm.Operand{Sym: data(k)}})
			emit(asm.Instr{Op: asm.OpLoad, Src: asm.Operand{Reg: reg, Aligned: true}})
		}
	}
	flush()
	if helperStores > 0 {
		u.Funcs = append(u.Funcs, helper)
	}
	return u
}

// PlantedCounts returns the ground-truth sync op counts for a spec: what a
// sound and complete two-stage analysis must report. The planted population
// equals the spec exactly (the helper function's store is counted inside
// spec.III).
func PlantedCounts(spec UnitSpec) (i, ii, iii int) {
	return spec.I, spec.II, spec.III
}
