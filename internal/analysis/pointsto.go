// Package analysis implements the paper's two-stage sync-op identification
// (§4.3) over the IR of internal/asm:
//
//   - Stage 1 (the "Ruby script"): scan for LOCK-prefixed instructions
//     (type i) and XCHG instructions (type ii); the variables they touch
//     become synchronization roots.
//   - Stage 2: a points-to analysis marks aligned loads/stores (type iii)
//     that may alias a synchronization root.
//
// Two points-to analyses are provided, mirroring the paper's two LLVM
// prototypes (§4.3.1): a Steensgaard-style unification-based analysis (the
// DSA/poolalloc prototype) and an Andersen-style subset-based analysis (the
// SVF prototype). Andersen is strictly more precise; the tests check the
// subset relation.
package analysis

import (
	"sort"

	"repro/internal/asm"
)

// PointsTo maps a register name to the set of data symbols it may point to.
type PointsTo map[string]map[string]bool

// Set returns the sorted points-to set of reg (nil-safe).
func (p PointsTo) Set(reg string) []string {
	var out []string
	for s := range p[reg] {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Andersen computes a flow-insensitive, subset-based points-to solution:
// lea introduces {sym} ⊆ pts(dst); movreg introduces pts(src) ⊆ pts(dst);
// calls copy argument registers into parameter registers. The constraint
// system is solved to a fixpoint with a worklist.
func Andersen(u *asm.Unit) PointsTo {
	pts := PointsTo{}
	type edge struct{ from, to string }
	var edges []edge
	add := func(reg, sym string) {
		if pts[reg] == nil {
			pts[reg] = map[string]bool{}
		}
		pts[reg][sym] = true
	}
	for _, f := range u.Funcs {
		for _, in := range f.Body {
			switch in.Op {
			case asm.OpLea:
				add(in.Dst.Reg, in.Src.Sym)
			case asm.OpMovReg:
				edges = append(edges, edge{from: in.Src.Reg, to: in.Dst.Reg})
			case asm.OpCall:
				// Arguments travel in registers with the callee's
				// parameter names: model the copy explicitly.
				if callee := u.FuncByName(in.Callee); callee != nil {
					if in.Src.Reg != "" && len(callee.Params) > 0 {
						edges = append(edges, edge{from: in.Src.Reg, to: callee.Params[0]})
					}
				}
			}
		}
	}
	// Propagate subset constraints to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			for s := range pts[e.from] {
				if pts[e.to] == nil || !pts[e.to][s] {
					add(e.to, s)
					changed = true
				}
			}
		}
	}
	return pts
}

// Steensgaard computes a unification-based solution: every assignment
// merges the equivalence classes of its operands (Steensgaard [39]). The
// result is coarser than Andersen's — the precision loss the paper observed
// with DSA when "heap objects of incompatible types get unified".
func Steensgaard(u *asm.Unit) PointsTo {
	uf := newUnionFind()
	classSyms := map[string]map[string]bool{} // class representative -> symbols
	addSym := func(reg, sym string) {
		r := uf.find(reg)
		if classSyms[r] == nil {
			classSyms[r] = map[string]bool{}
		}
		classSyms[r][sym] = true
	}
	union := func(a, b string) {
		ra, rb := uf.find(a), uf.find(b)
		if ra == rb {
			return
		}
		r := uf.union(ra, rb)
		merged := map[string]bool{}
		for s := range classSyms[ra] {
			merged[s] = true
		}
		for s := range classSyms[rb] {
			merged[s] = true
		}
		delete(classSyms, ra)
		delete(classSyms, rb)
		classSyms[r] = merged
	}
	for _, f := range u.Funcs {
		for _, in := range f.Body {
			switch in.Op {
			case asm.OpLea:
				addSym(in.Dst.Reg, in.Src.Sym)
			case asm.OpMovReg:
				union(in.Src.Reg, in.Dst.Reg)
			case asm.OpCall:
				if callee := u.FuncByName(in.Callee); callee != nil {
					if in.Src.Reg != "" && len(callee.Params) > 0 {
						union(in.Src.Reg, callee.Params[0])
					}
				}
			}
		}
	}
	pts := PointsTo{}
	for _, f := range u.Funcs {
		for _, in := range f.Body {
			for _, reg := range []string{in.Dst.Reg, in.Src.Reg} {
				if reg == "" {
					continue
				}
				if syms := classSyms[uf.find(reg)]; len(syms) > 0 {
					if pts[reg] == nil {
						pts[reg] = map[string]bool{}
					}
					for s := range syms {
						pts[reg][s] = true
					}
				}
			}
		}
	}
	return pts
}

// unionFind is a string-keyed disjoint-set forest.
type unionFind struct {
	parent map[string]string
	rank   map[string]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[string]string{}, rank: map[string]int{}}
}

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

func (u *unionFind) union(a, b string) string {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return ra
}
