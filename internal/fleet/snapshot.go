package fleet

import (
	"time"

	"repro/internal/futex"
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/telemetry"
)

// MemberSnapshot extends the dispatch-level MemberInfo with one member's
// kernel and telemetry view: its process table (vpids, states, descriptor
// counts), the master variant's monitored syscall total, and the live
// per-variant flight tails.
type MemberSnapshot struct {
	MemberInfo
	// Epoch and EpochSeed are the member program's live worker generation
	// and its diversity-refresh seed, parsed from the epoch file the
	// prefork server publishes inside its kernel (EpochFile).
	// Both stay zero for programs that do not publish one.
	Epoch     int   `json:"epoch,omitempty"`
	EpochSeed int64 `json:"epoch_seed,omitempty"`
	// Syscalls is the master variant's monitored syscall count so far.
	Syscalls uint64 `json:"syscalls"`
	// Procs is the member kernel's process table.
	Procs []kernel.ProcInfo `json:"procs,omitempty"`
	// Flight is each variant's current flight-recorder tail (oldest
	// first). For a session killed by divergence this is the frozen tail.
	Flight [][]telemetry.FlightRecord `json:"flight,omitempty"`
}

// Snapshot is the fleet-wide admin view: aggregate stats, every member's
// detail, the merged syscall matrix, the process-wide ring/futex wait
// counters, and the quarantine log. One Snapshot call is what backs one
// /metrics or /statusz render.
type Snapshot struct {
	Taken       time.Time           `json:"taken"`
	Stats       Stats               `json:"stats"`
	Members     []MemberSnapshot    `json:"members"`
	Telemetry   *telemetry.Snapshot `json:"telemetry,omitempty"`
	Ring        ring.Metrics        `json:"ring"`
	Futex       futex.Metrics       `json:"futex"`
	Quarantined []Quarantine        `json:"quarantined,omitempty"`
	// Faults sums the chaos plane's injected-fault counters over every
	// live member (all-zero when no fault plan is installed).
	Faults telemetry.FaultSnapshot `json:"faults"`
}

// Snapshot assembles the fleet-wide admin view. It never blocks serving:
// every source is either an atomic counter, a lock the hot path does not
// hold, or a lock-free telemetry snapshot.
func (f *Fleet) Snapshot() Snapshot {
	s := Snapshot{
		Taken:       time.Now(),
		Stats:       f.Stats(),
		Ring:        ring.ReadMetrics(),
		Futex:       futex.ReadMetrics(),
		Quarantined: f.Quarantined(),
	}
	f.mu.RLock()
	members := make([]*member, 0, len(f.slots))
	for _, m := range f.slots {
		if m != nil {
			members = append(members, m)
		}
	}
	f.mu.RUnlock()
	for _, m := range members {
		ms := MemberSnapshot{
			MemberInfo: MemberInfo{
				Slot: m.slot, Gen: m.gen, Seed: m.seed,
				Healthy:  m.healthy.Load(),
				Inflight: m.inflight.Load(),
				Served:   m.served.Load(),
			},
			Syscalls: m.sess.Monitor().Syscalls(0),
			Procs:    m.sess.Kernel().Snapshot(),
		}
		if b, ok := m.sess.Kernel().ReadFile(EpochFile); ok {
			if e, seed, _, valid := ParseEpochState(b); valid {
				ms.Epoch, ms.EpochSeed = e, seed
			}
		}
		if tel := m.sess.Telemetry(); tel != nil {
			ms.Flight = m.sess.Monitor().FlightTail()
			snap := tel.Matrix.Snapshot()
			if s.Telemetry == nil {
				s.Telemetry = &snap
			} else {
				s.Telemetry.Merge(snap)
			}
			s.Faults.Merge(tel.Faults.Snapshot())
		}
		s.Members = append(s.Members, ms)
	}
	return s
}
