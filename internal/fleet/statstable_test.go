package fleet_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/stats"
)

// TestStatsTableGolden pins the rendered stats table to a fixed Stats
// value: every field of fleet.Stats must appear, so adding a field without
// teaching StatsTable about it fails here.
func TestStatsTableGolden(t *testing.T) {
	var lat stats.Histogram
	lat.Observe(uint64(100 * time.Microsecond))
	lat.Observe(uint64(100 * time.Microsecond))
	lat.Observe(uint64(200 * time.Microsecond))
	lat.Observe(uint64(400 * time.Microsecond))
	s := fleet.Stats{
		Served:      1000,
		Errors:      3,
		Rejected:    7,
		Divergences: 2,
		Deadlocks:   1,
		Crashes:     1,
		Recycled:    3,
		Reloads:     5,
		Healthy:     4,
		Uptime:      2 * time.Second,
		Latency:     lat,
	}
	const want = "metric                   value     \n" +
		"-----------------------  ----------\n" +
		"served                   1000      \n" +
		"errors                   3         \n" +
		"rejected (backpressure)  7         \n" +
		"divergences quarantined  2         \n" +
		"deadlocks quarantined    1         \n" +
		"crashes quarantined      1         \n" +
		"sessions recycled        3         \n" +
		"hot restarts             5         \n" +
		"healthy members          4         \n" +
		"uptime                   2s        \n" +
		"throughput               500 req/s \n" +
		"latency samples          4         \n" +
		"latency mean             200µs     \n" +
		"latency p50              100µs     \n" +
		"latency p90              393.216µs \n" +
		"latency p99              393.216µs \n" +
		"latency max              400µs     \n"
	got := fleet.StatsTable(s)
	if got != want {
		t.Errorf("StatsTable mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Belt and braces independent of exact quantile arithmetic: every
	// metric label renders.
	for _, label := range []string{"served", "errors", "rejected", "divergences", "deadlocks", "crashes",
		"recycled", "hot restarts", "healthy", "uptime", "throughput",
		"latency samples", "latency mean", "latency p50", "latency p90", "latency p99", "latency max"} {
		if !strings.Contains(got, label) {
			t.Errorf("StatsTable lacks %q", label)
		}
	}
}
