package fleet_test

import (
	"testing"

	"repro/internal/webserver"
)

// TestFleetSnapshot drives a small pool and checks the admin-plane view:
// per-member process tables and syscall totals, the merged syscall matrix
// (telemetry is always on inside a fleet), and live flight tails.
func TestFleetSnapshot(t *testing.T) {
	cfg := webserver.Config{Port: 8080, PoolThreads: 2, InstrumentCustomSync: true}
	f := newTestFleet(t, cfg, 2, nil)
	for r := 0; r < 20; r++ {
		if _, err := f.Do([]byte("GET /")); err != nil {
			t.Fatalf("request %d: %v", r, err)
		}
	}
	s := f.Snapshot()
	if len(s.Members) != 2 {
		t.Fatalf("snapshot has %d members, want 2", len(s.Members))
	}
	var served uint64
	for _, m := range s.Members {
		served += m.Served
		if m.Syscalls == 0 {
			t.Errorf("slot %d reports zero syscalls after serving", m.Slot)
		}
		if len(m.Procs) == 0 {
			t.Errorf("slot %d has an empty process table", m.Slot)
		}
		for _, p := range m.Procs {
			if p.State != "running" && p.State != "zombie" && p.State != "reaped" {
				t.Errorf("slot %d proc %d in unknown state %q", m.Slot, p.Pid, p.State)
			}
		}
		if len(m.Flight) == 0 {
			t.Errorf("slot %d has no flight tails (telemetry must be on in a fleet)", m.Slot)
		}
		for v, tail := range m.Flight {
			if len(tail) == 0 {
				t.Errorf("slot %d variant %d flight tail is empty", m.Slot, v)
			}
		}
	}
	if served != 20 || s.Stats.Served != 20 {
		t.Fatalf("member served sum %d / stats served %d, want 20/20", served, s.Stats.Served)
	}
	if s.Telemetry == nil {
		t.Fatal("snapshot lacks the merged telemetry matrix")
	}
	// The merged matrix totals the members' master counts; both must agree
	// with the per-member syscall counters the monitor keeps.
	var monTotal uint64
	for _, m := range s.Members {
		monTotal += m.Syscalls
	}
	if got := s.Telemetry.Total(0); got != monTotal {
		t.Fatalf("merged matrix master total = %d, monitor counters say %d", got, monTotal)
	}
	if s.Taken.IsZero() {
		t.Fatal("snapshot missing timestamp")
	}
}
