// Package fleet runs a pool of concurrent MVEE sessions behind a request
// gateway, turning the single-session reproduction (one mvee.Run, one
// divergence kills everything) into a serving system: N sessions of the
// same server program run side by side, each with its own simulated kernel
// and its own set of lockstepped variants, and a gateway fans incoming
// requests over the pool.
//
// The fleet owns the whole session lifecycle. Members are spawned warm
// (the gateway only dispatches to a member once its listener answers),
// requests are dispatched round-robin or least-loaded, the gateway queue
// is bounded so overload surfaces as backpressure instead of unbounded
// memory growth, and Close drains gracefully. When the monitor kills a
// session because its variants diverged — an attack, or a §5.5-style
// uninstrumented synchronization primitive — the fleet quarantines the
// session (capturing the monitor.Divergence and the session's forensic
// counters, plus the full execution trace when Config.Forensics is set)
// and hot-replaces it with a fresh session so the pool keeps serving. The
// replacement is re-randomized: its diversity seed differs from the
// quarantined session's, so a layout leak that let an attacker divert one
// session is useless against its successor.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/stats"
)

// Dispatch selects how the gateway spreads requests over healthy members.
type Dispatch int

const (
	// RoundRobin cycles through the healthy members in slot order.
	RoundRobin Dispatch = iota
	// LeastLoaded picks the healthy member with the fewest in-flight
	// requests.
	LeastLoaded
)

// Config shapes a fleet.
type Config struct {
	// Size is the number of concurrent MVEE sessions in the pool (>= 1).
	Size int
	// Session is the per-session MVEE template (variants, agent, policy,
	// diversity). Session.Seed seeds slot 0's initial layout; respawned
	// sessions are re-randomized (see recycle.go). Session.Kernel must be
	// nil: every member owns a private kernel, which is what lets all
	// members listen on the same Port without colliding.
	Session core.Options
	// Program is the server program every session runs. It must listen on
	// Port and serve one response per accepted connection.
	Program core.Program
	// Port is the port the program listens on inside each session kernel.
	Port uint16
	// Dispatch selects the member-selection policy.
	Dispatch Dispatch
	// QueueCap bounds the gateway queue; a full queue rejects TryDo with
	// ErrOverloaded and blocks Do (backpressure). Default 256.
	QueueCap int
	// Workers is the number of gateway goroutines draining the queue.
	// Default 2*Size.
	Workers int
	// Retries is how many alternate members a request is re-dispatched to
	// when connecting to a member fails (a member that died between
	// selection and connect). Requests that already wrote bytes are never
	// retried. 0 means the default (Size-1); negative disables retries.
	Retries int
	// MaxResponse caps the response read buffer. Default 64 KiB.
	MaxResponse int
	// SpawnTimeout bounds how long a spawned member may take to start
	// listening, and how long a request waits for a healthy member while
	// the pool is recycling. Default 10s.
	SpawnTimeout time.Duration
	// RequestTimeout bounds one request's write+read against a member; a
	// member that accepts a connection and then hangs without diverging
	// would otherwise pin a gateway worker (and wedge Close) forever.
	// Default 30s.
	RequestTimeout time.Duration
	// DrainTimeout bounds the per-member session join during Close;
	// members still running after it are killed. Default 30s.
	DrainTimeout time.Duration
	// MaxQuarantined caps the retained quarantine records (oldest are
	// dropped first) so a long-lived pool under divergence churn does
	// not grow without bound — each record can pin a full execution
	// trace under Forensics. The divergence/crash/recycle counters keep
	// counting past the cap. Default 64.
	MaxQuarantined int
	// Clock is the time source for the gateway's request watchdog. It
	// defaults to the wall clock; chaos soaks running their sessions at
	// -time-scale N install the matching scaled clock here so the
	// watchdog's RequestTimeout tightens in proportion to the (scaled)
	// injected latencies it guards against.
	Clock kernel.Clock
	// Forensics records every session (core.Options.Record) so a
	// quarantined session's Quarantine carries the full execution trace,
	// replayable offline with core Replay. Recording forces the
	// wall-of-clocks agent and costs memory proportional to session
	// activity; leave it off for long-lived pools.
	Forensics bool
}

func (c *Config) fill() error {
	if c.Size <= 0 {
		c.Size = 1
	}
	if c.Program.Main == nil {
		return errors.New("fleet: Config.Program is required")
	}
	if c.Port == 0 {
		return errors.New("fleet: Config.Port is required")
	}
	if c.Session.Kernel != nil {
		return errors.New("fleet: Session.Kernel must be nil; every member owns a private kernel")
	}
	if c.Session.Replay != nil {
		return errors.New("fleet: replay sessions cannot serve in a fleet")
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.Workers <= 0 {
		c.Workers = 2 * c.Size
	}
	switch {
	case c.Retries == 0:
		c.Retries = c.Size - 1
	case c.Retries < 0:
		c.Retries = 0
	case c.Retries > c.Size-1:
		c.Retries = c.Size - 1
	}
	if c.MaxResponse <= 0 {
		c.MaxResponse = 64 << 10
	}
	if c.SpawnTimeout <= 0 {
		c.SpawnTimeout = 10 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxQuarantined <= 0 {
		c.MaxQuarantined = 64
	}
	if c.Clock == nil {
		c.Clock = kernel.RealClock()
	}
	// Forensics implies recording; a caller-set Session.Record is
	// honored either way (the trace then lands in Quarantine.Trace).
	c.Session.Record = c.Session.Record || c.Forensics
	// The fleet always runs its sessions with telemetry: the syscall
	// matrix and flight recorders are what the admin plane and the
	// quarantine forensics are built on, and the per-call cost is one
	// uncontended atomic add (see the bench A/B cells).
	c.Session.Telemetry = true
	return nil
}

// member is one pool slot's current session.
type member struct {
	slot int   // stable pool position
	gen  int   // respawn generation of this slot (0 = initial)
	seed int64 // diversity seed this session was built with

	sess     *core.Session
	healthy  atomic.Bool  // accepts dispatch
	inflight atomic.Int64 // requests currently being served
	served   atomic.Uint64
	ready    chan struct{} // closed once the listener answered (or startup failed)
	done     chan struct{} // closed once the session finished
	res      *core.Result  // valid after done
}

// Fleet is a pool of MVEE sessions behind a gateway. Create with New.
type Fleet struct {
	cfg   Config
	start time.Time

	mu    sync.RWMutex // guards slots
	slots []*member
	rr    atomic.Uint64 // round-robin cursor

	queue chan *pending
	quit  chan struct{}
	// closeMu serializes request enqueue against Close: submitters hold
	// the read side across their closed-check + enqueue, so once Close
	// has flipped closed under the write side, nothing can slip into the
	// queue behind the exiting workers.
	closeMu sync.RWMutex
	closed  atomic.Bool
	wg      sync.WaitGroup // gateway workers
	liveWG  sync.WaitGroup // member lifecycle goroutines

	shards []latencyShard // one per worker; merged by Stats

	quarMu      sync.Mutex
	quarantined []Quarantine
	divergences atomic.Uint64
	deadlocks   atomic.Uint64
	crashes     atomic.Uint64
	recycled    atomic.Uint64

	served   atomic.Uint64
	errors   atomic.Uint64
	rejected atomic.Uint64
	reloads  atomic.Uint64
}

// latencyShard is one gateway worker's latency histogram. Recording is
// lock-free (see stats.AtomicHistogram): the owning worker observes on
// every request and a Stats reader snapshots concurrently, with neither
// ever blocking the other. Sharding per worker keeps even the atomic
// counters essentially uncontended.
type latencyShard struct {
	h stats.AtomicHistogram
	_ [64]byte // keep neighboring shards' hot words off one cache line
}

// New builds the pool, spawns every member, waits until all of them are
// serving, and starts the gateway workers.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:    cfg,
		start:  time.Now(),
		slots:  make([]*member, cfg.Size),
		queue:  make(chan *pending, cfg.QueueCap),
		quit:   make(chan struct{}),
		shards: make([]latencyShard, cfg.Workers),
	}
	f.mu.Lock()
	for slot := range f.slots {
		m := f.newMember(slot, 0)
		f.slots[slot] = m
		f.launch(m)
	}
	f.mu.Unlock()
	for _, m := range f.slots {
		<-m.ready
	}
	for _, m := range f.slots {
		if !m.healthy.Load() {
			f.Close()
			return nil, fmt.Errorf("fleet: slot %d never started listening on port %d", m.slot, cfg.Port)
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		f.wg.Add(1)
		go f.worker(w)
	}
	return f, nil
}

// newMember builds slot's generation-gen session WITHOUT starting it.
// Construction is deliberately separated from launch so replace can pay
// the session-build cost outside f.mu.
func (f *Fleet) newMember(slot, gen int) *member {
	opts := f.cfg.Session
	opts.Seed = memberSeed(f.cfg.Session.Seed, slot, gen)
	m := &member{
		slot: slot, gen: gen, seed: opts.Seed,
		sess:  core.NewSession(opts, f.cfg.Program),
		ready: make(chan struct{}),
		done:  make(chan struct{}),
	}
	// Stop dispatching to a diverged member as soon as the monitor kills
	// it, without waiting for the variants to finish unwinding.
	m.sess.OnDivergence(func(*monitor.Divergence) { m.healthy.Store(false) })
	return m
}

// launch starts a constructed member's lifecycle goroutine. Callers hold
// f.mu (which is what makes the liveWG.Add safe against Close: a launch
// can only happen while closed is false, and then only from a goroutine
// liveWG already counts or before the fleet is shared).
func (f *Fleet) launch(m *member) {
	f.liveWG.Add(1)
	go f.runMember(m)
}

// runMember drives one member's lifecycle: start, warm up, serve, and on
// divergence or crash quarantine + respawn.
func (f *Fleet) runMember(m *member) {
	defer f.liveWG.Done()
	m.sess.Start()
	warm := f.awaitListener(m)
	if warm {
		m.healthy.Store(true)
		// A divergence can land between the successful probe and the
		// store above, in which case the OnDivergence hook's
		// healthy=false just lost the race — re-check so a dead session
		// is never resurrected into dispatch.
		if m.sess.Monitor().Killed() {
			m.healthy.Store(false)
		}
	} else {
		m.sess.Kill()
	}
	close(m.ready)
	res := m.sess.Wait()
	m.healthy.Store(false)
	m.res = res
	close(m.done)
	// Recycle a session that died while serving — a divergence, a program
	// crash (panic), or a detected deadlock (Options.DetectDeadlocks): a
	// wedged member would otherwise hold its slot forever while serving
	// nothing. A session that exited cleanly chose to (the fleet closing
	// its listener, or the program finishing), and one that never warmed
	// up would respawn-spin, so neither is replaced.
	if warm && (res.Divergence != nil || res.Panic != nil || res.Deadlock != nil) {
		f.quarantine(m, res)
		f.replace(m)
	}
}

// awaitListener probes the member's kernel until the program's listener
// accepts a connection (the warm-spawn barrier), or the session dies, or
// the timeout passes.
func (f *Fleet) awaitListener(m *member) bool {
	deadline := time.Now().Add(f.cfg.SpawnTimeout)
	for {
		if cc, errno := m.sess.Kernel().Connect(f.cfg.Port); errno == kernel.OK {
			cc.Close()
			return true
		}
		if m.sess.Monitor().Killed() || f.closed.Load() || time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// pick returns a healthy member not in tried, or nil. See Dispatch.
func (f *Fleet) pick(tried map[*member]bool) *member {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.cfg.Dispatch == LeastLoaded {
		var best *member
		var bestLoad int64
		for _, m := range f.slots {
			if m == nil || tried[m] || !m.healthy.Load() {
				continue
			}
			if l := m.inflight.Load(); best == nil || l < bestLoad {
				best, bestLoad = m, l
			}
		}
		return best
	}
	n := len(f.slots)
	at := int(f.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		m := f.slots[(at+i)%n]
		if m != nil && !tried[m] && m.healthy.Load() {
			return m
		}
	}
	return nil
}

// pickWait is pick, waiting out a recycle window: with every member
// quarantined at once the pool is briefly empty while replacements warm
// up.
func (f *Fleet) pickWait(tried map[*member]bool) *member {
	deadline := time.Now().Add(f.cfg.SpawnTimeout)
	for {
		if m := f.pick(tried); m != nil {
			return m
		}
		if f.closed.Load() || time.Now().After(deadline) {
			return nil
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// MemberInfo is a point-in-time view of one pool slot.
type MemberInfo struct {
	Slot     int
	Gen      int   // respawn generation (0 = initial session)
	Seed     int64 // diversity seed of the current session
	Healthy  bool
	Inflight int64
	Served   uint64
}

// Members returns a snapshot of every pool slot.
func (f *Fleet) Members() []MemberInfo {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]MemberInfo, 0, len(f.slots))
	for _, m := range f.slots {
		if m == nil {
			continue
		}
		out = append(out, MemberInfo{
			Slot: m.slot, Gen: m.gen, Seed: m.seed,
			Healthy:  m.healthy.Load(),
			Inflight: m.inflight.Load(),
			Served:   m.served.Load(),
		})
	}
	return out
}

// Stats is the fleet-wide aggregate view.
type Stats struct {
	Served      uint64 // requests answered successfully
	Errors      uint64 // requests that failed (including divergence kills)
	Rejected    uint64 // TryDo rejections due to a full queue
	Divergences uint64 // sessions quarantined because their variants diverged
	Deadlocks   uint64 // sessions quarantined because the detector proved them wedged
	Crashes     uint64 // sessions quarantined because the program panicked
	Recycled    uint64 // replacement sessions spawned
	Reloads     uint64 // hot-restart sweeps triggered via Reload
	Healthy     int    // members currently accepting dispatch
	Uptime      time.Duration
	// Latency pools every gateway worker's histogram (see
	// internal/stats: Merge is exact, so these are the fleet-wide request
	// latency quantiles).
	Latency stats.Histogram
}

// Throughput returns successful responses per second of fleet uptime.
func (s Stats) Throughput() float64 {
	return stats.Rate(s.Served, s.Uptime.Seconds())
}

// Stats aggregates the fleet-wide counters and merges the per-worker
// latency histograms.
func (f *Fleet) Stats() Stats {
	s := Stats{
		Served:      f.served.Load(),
		Errors:      f.errors.Load(),
		Rejected:    f.rejected.Load(),
		Divergences: f.divergences.Load(),
		Deadlocks:   f.deadlocks.Load(),
		Crashes:     f.crashes.Load(),
		Recycled:    f.recycled.Load(),
		Reloads:     f.reloads.Load(),
		Uptime:      time.Since(f.start),
	}
	for i := range f.shards {
		snap := f.shards[i].h.Snapshot()
		s.Latency.Merge(&snap)
	}
	f.mu.RLock()
	for _, m := range f.slots {
		if m != nil && m.healthy.Load() {
			s.Healthy++
		}
	}
	f.mu.RUnlock()
	return s
}

// Reload triggers a zero-downtime hot restart in every healthy member: it
// posts SIGHUP to the member program's root process — the prefork parent's
// reload trigger, which starts a new diversity-refreshed worker generation
// and drains the old one without dropping a request. It returns how many
// members accepted the signal. Like an operator's kill -HUP, the sweep is
// only graceful for programs that handle SIGHUP; a member program with the
// default disposition terminates instead.
func (f *Fleet) Reload() int {
	f.mu.RLock()
	slots := append([]*member(nil), f.slots...)
	f.mu.RUnlock()
	n := 0
	for _, m := range slots {
		if m == nil || !m.healthy.Load() {
			continue
		}
		if m.sess.Signal(kernel.SIGHUP) {
			n++
		}
	}
	f.reloads.Add(1)
	return n
}

// Close drains the fleet: no new requests are accepted, queued requests
// are served, every member's listener is closed, and all sessions are
// joined. Close is idempotent.
func (f *Fleet) Close() {
	f.closeMu.Lock()
	first := f.closed.CompareAndSwap(false, true)
	f.closeMu.Unlock()
	if !first {
		return
	}
	close(f.quit)
	// Workers finish the queue before exiting, and no enqueue can follow
	// the closed flip above (see Do), so after this wait the queue is
	// provably empty.
	f.wg.Wait()
	f.mu.RLock()
	slots := append([]*member(nil), f.slots...)
	f.mu.RUnlock()
	for _, m := range slots {
		if m == nil {
			continue
		}
		m.healthy.Store(false)
		<-m.ready
		m.sess.Kernel().CloseListener(f.cfg.Port)
		select {
		case <-m.done:
		case <-time.After(f.cfg.DrainTimeout):
			m.sess.Kill()
			<-m.done
		}
	}
	f.liveWG.Wait()
}
