package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/stats"
)

// The gateway: request fan-in over the pool. Requests are opaque byte
// payloads written to one connection of a member's server; the response is
// whatever the server writes back on that connection. A bounded queue sits
// between submitters and the worker goroutines so that overload turns
// into backpressure (Do blocks, TryDo fails fast) instead of piling up
// goroutines behind a saturated pool.

var (
	// ErrClosed is returned for requests submitted to a closed fleet.
	ErrClosed = errors.New("fleet: closed")
	// ErrOverloaded is returned by TryDo when the gateway queue is full.
	ErrOverloaded = errors.New("fleet: gateway queue full")
	// ErrNoHealthyMember is returned when no member accepted the request
	// within the spawn timeout (the whole pool diverged faster than it
	// respawns, or the fleet is shutting down).
	ErrNoHealthyMember = errors.New("fleet: no healthy member")
)

type pending struct {
	req  []byte
	resp chan gwResult
}

type gwResult struct {
	data []byte
	err  error
}

// pendingPool recycles pending structs together with their response
// channels, so a steady-state request allocates neither. The reuse
// invariant: every pending that enters the queue receives exactly one send
// on resp (handle always responds, and Close's graceful drain finishes the
// queue), and the submitter receives it before releasing the pending back
// to the pool — so a pooled pending's channel is always empty.
var pendingPool = sync.Pool{
	New: func() any { return &pending{resp: make(chan gwResult, 1)} },
}

func getPending(req []byte) *pending {
	p := pendingPool.Get().(*pending)
	p.req = req
	return p
}

func putPending(p *pending) {
	p.req = nil // don't pin the caller's payload in the pool
	pendingPool.Put(p)
}

// Do submits one request and blocks for the response. A full queue blocks
// the caller (backpressure); use TryDo to fail fast instead.
//
// The closed-check and the enqueue happen under closeMu's read side:
// while any submitter holds it, Close cannot proceed, so the workers are
// guaranteed to still be draining the queue when the request lands in it.
func (f *Fleet) Do(req []byte) ([]byte, error) {
	p := getPending(req)
	f.closeMu.RLock()
	if f.closed.Load() {
		f.closeMu.RUnlock()
		putPending(p)
		return nil, ErrClosed
	}
	f.queue <- p
	f.closeMu.RUnlock()
	r := <-p.resp
	putPending(p)
	return r.data, r.err
}

// TryDo submits one request without blocking on a full queue: it returns
// ErrOverloaded immediately when the gateway is saturated.
func (f *Fleet) TryDo(req []byte) ([]byte, error) {
	p := getPending(req)
	f.closeMu.RLock()
	if f.closed.Load() {
		f.closeMu.RUnlock()
		putPending(p)
		return nil, ErrClosed
	}
	select {
	case f.queue <- p:
		f.closeMu.RUnlock()
	default:
		f.closeMu.RUnlock()
		putPending(p)
		f.rejected.Add(1)
		return nil, ErrOverloaded
	}
	r := <-p.resp
	putPending(p)
	return r.data, r.err
}

// gwBatch is how many pendings a gateway worker dequeues per wakeup. Under
// load the queue runs deep and one blocking receive amortizes over up to
// gwBatch-1 non-blocking ones — one scheduler wakeup and one channel-lock
// acquisition per batch instead of per request. Under light load the
// drain finds the queue empty and the batch degenerates to length 1,
// costing only a failed non-blocking receive.
const gwBatch = 16

// worker drains the queue in batches until the fleet closes, then
// finishes whatever is still queued (graceful drain).
func (f *Fleet) worker(id int) {
	defer f.wg.Done()
	sh := &f.shards[id]
	// One response-sized scratch buffer per worker: tryMember reads into
	// it and copies out only the bytes actually received, instead of
	// allocating MaxResponse per request on the hot path.
	scratch := make([]byte, f.cfg.MaxResponse)
	var batch [gwBatch]*pending
	for {
		select {
		case p := <-f.queue:
			f.handleBatch(p, batch[:], sh, scratch)
		case <-f.quit:
			for {
				select {
				case p := <-f.queue:
					f.handleBatch(p, batch[:], sh, scratch)
				default:
					return
				}
			}
		}
	}
}

// handleBatch serves first plus whatever else is already queued, up to the
// batch capacity. Requests are answered in arrival order; latency is
// recorded per request inside handle, so queue-depth effects stay visible
// in the histogram.
func (f *Fleet) handleBatch(first *pending, batch []*pending, sh *latencyShard, scratch []byte) {
	batch[0] = first
	n := 1
	for n < len(batch) {
		select {
		case p := <-f.queue:
			batch[n] = p
			n++
		default:
			goto serve
		}
	}
serve:
	for i := 0; i < n; i++ {
		f.handle(batch[i], sh, scratch)
		batch[i] = nil // don't pin served pendings until the next deep batch
	}
}

func (f *Fleet) handle(p *pending, sh *latencyShard, scratch []byte) {
	t0 := time.Now()
	data, err := f.serve(p.req, scratch)
	sh.h.ObserveDuration(time.Since(t0))
	if err != nil {
		f.errors.Add(1)
	} else {
		f.served.Add(1)
	}
	p.resp <- gwResult{data: data, err: err}
}

// serve dispatches one request to a member, re-dispatching to alternates
// when CONNECTING to the chosen member fails — the member died between
// selection and connect, so nothing reached it and the request is safe to
// move. Once any bytes were written the request is never retried: the
// gateway cannot know whether the member acted on them, and a request that
// *caused* the divergence (an exploit payload) must burn at most one
// session, not be walked across the whole pool.
func (f *Fleet) serve(req, scratch []byte) ([]byte, error) {
	var tried map[*member]bool
	var lastErr error
	for attempt := 0; attempt <= f.cfg.Retries; attempt++ {
		m := f.pickWait(tried)
		if m == nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, ErrNoHealthyMember
		}
		data, err, retry := f.tryMember(m, req, scratch)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !retry {
			return nil, err
		}
		if tried == nil {
			tried = make(map[*member]bool, f.cfg.Retries+1)
		}
		tried[m] = true
	}
	return nil, lastErr
}

// tryMember plays one request against one member. The third return value
// reports whether the request may be re-dispatched (true only if nothing
// was written to the member). A watchdog closes the connection after
// RequestTimeout so a member that hangs without diverging cannot pin the
// worker (closing unblocks the pipe read with EBADF).
func (f *Fleet) tryMember(m *member, req, scratch []byte) ([]byte, error, bool) {
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	cc, errno := m.sess.Kernel().Connect(f.cfg.Port)
	if errno != kernel.OK {
		return nil, fmt.Errorf("fleet: connect to slot %d (gen %d): %w", m.slot, m.gen, errno), true
	}
	watchdog := f.cfg.Clock.AfterFunc(f.cfg.RequestTimeout, cc.Close)
	defer watchdog.Stop()
	defer cc.Close()
	if _, err := cc.Write(req); err != nil {
		return nil, fmt.Errorf("fleet: write to slot %d (gen %d): %w", m.slot, m.gen, err), false
	}
	n, err := cc.Read(scratch)
	if err != nil || n == 0 {
		return nil, fmt.Errorf("fleet: slot %d (gen %d) died mid-request: read: %v", m.slot, m.gen, err), false
	}
	m.served.Add(1)
	return append([]byte(nil), scratch[:n]...), nil, false
}

// StatsTable renders the fleet stats as an aligned table (for
// cmd/mvee-serve and /statusz). Every Stats field appears: the counters,
// the uptime, and the latency histogram's sample count, mean, quantiles,
// and max.
func StatsTable(s Stats) string {
	t := &stats.Table{Header: []string{"metric", "value"}}
	t.Add("served", fmt.Sprintf("%d", s.Served))
	t.Add("errors", fmt.Sprintf("%d", s.Errors))
	t.Add("rejected (backpressure)", fmt.Sprintf("%d", s.Rejected))
	t.Add("divergences quarantined", fmt.Sprintf("%d", s.Divergences))
	t.Add("deadlocks quarantined", fmt.Sprintf("%d", s.Deadlocks))
	t.Add("crashes quarantined", fmt.Sprintf("%d", s.Crashes))
	t.Add("sessions recycled", fmt.Sprintf("%d", s.Recycled))
	t.Add("hot restarts", fmt.Sprintf("%d", s.Reloads))
	t.Add("healthy members", fmt.Sprintf("%d", s.Healthy))
	t.Add("uptime", s.Uptime.Round(time.Millisecond).String())
	t.Add("throughput", fmt.Sprintf("%.0f req/s", s.Throughput()))
	t.Add("latency samples", fmt.Sprintf("%d", s.Latency.Count()))
	t.Add("latency mean", time.Duration(s.Latency.MeanValue()).String())
	t.Add("latency p50", time.Duration(s.Latency.Quantile(0.50)).String())
	t.Add("latency p90", time.Duration(s.Latency.Quantile(0.90)).String())
	t.Add("latency p99", time.Duration(s.Latency.Quantile(0.99)).String())
	t.Add("latency max", time.Duration(s.Latency.MaxValue()).String())
	return t.String()
}
