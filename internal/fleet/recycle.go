package fleet

import (
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Quarantine is the forensic record of one session that died while
// serving — its variants diverged, the program crashed, or the deadlock
// detector proved it permanently wedged: enough to
// attribute the death (which slot, which generation, which layout seed),
// to judge its blast radius (requests served, uptime, syscall and
// sync-op volume), and — when the fleet runs with Config.Forensics — to
// re-execute the whole session offline via core's Replay support.
type Quarantine struct {
	Slot int // pool slot the session occupied
	Gen  int // its respawn generation
	Seed int64
	// Divergence is the monitor's verdict: which variant, which thread,
	// and the rendered master/slave call mismatch. Nil for a crash.
	Divergence *monitor.Divergence
	// Deadlock is the detector's verdict when the session was killed
	// because every live master thread was provably parked (see
	// core.Options.DetectDeadlocks). Nil for divergences and crashes.
	Deadlock *core.DeadlockReport
	// Panic is the program panic that killed the session, if that is
	// what did (crashed sessions are quarantined and replaced too).
	Panic any
	// Served is the number of requests the session answered before it was
	// killed.
	Served   uint64
	Uptime   time.Duration
	Syscalls uint64
	SyncOps  uint64
	// Trace is the recorded execution (nil unless Config.Forensics):
	// replaying it deterministically reproduces the run that diverged.
	Trace *trace.Trace
	// Flight is each variant's flight-recorder tail, frozen by the monitor
	// at kill time: the last replicated records leading up to the death,
	// oldest first (see internal/telemetry).
	Flight [][]telemetry.FlightRecord
	When   time.Time
}

// quarantine captures the diverged member's forensic record.
func (f *Fleet) quarantine(m *member, res *core.Result) {
	q := Quarantine{
		Slot: m.slot, Gen: m.gen, Seed: m.seed,
		Divergence: res.Divergence,
		Deadlock:   res.Deadlock,
		Panic:      res.Panic,
		Served:     m.served.Load(),
		Uptime:     res.Duration,
		Syscalls:   res.Syscalls,
		SyncOps:    res.SyncOps,
		Trace:      res.Trace,
		Flight:     res.Flight,
		When:       time.Now(),
	}
	switch {
	case res.Divergence != nil:
		f.divergences.Add(1)
	case res.Deadlock != nil:
		f.deadlocks.Add(1)
	default:
		f.crashes.Add(1)
	}
	f.quarMu.Lock()
	f.quarantined = append(f.quarantined, q)
	// Bounded retention: drop the oldest records past the cap so churny
	// long-lived pools don't accumulate forensics forever (the counters
	// keep the full totals).
	if over := len(f.quarantined) - f.cfg.MaxQuarantined; over > 0 {
		f.quarantined = append(f.quarantined[:0:0], f.quarantined[over:]...)
	}
	f.quarMu.Unlock()
}

// Quarantined returns a copy of the retained quarantine records (up to
// Config.MaxQuarantined, oldest first; older ones are dropped past the
// cap).
func (f *Fleet) Quarantined() []Quarantine {
	f.quarMu.Lock()
	defer f.quarMu.Unlock()
	return append([]Quarantine(nil), f.quarantined...)
}

// replace hot-swaps a fresh session into the quarantined member's slot.
// The session is BUILT outside f.mu — construction allocates per-variant
// address spaces, processes and agents, and holding the write lock for
// that would stall dispatch (pick's read lock) across the whole pool on
// every recycle. Only the closed-check + slot swap + launch run under
// f.mu, so a replacement cannot race Close: once Close has flipped
// closed, no further replacement escapes the drain.
func (f *Fleet) replace(old *member) {
	if f.closed.Load() {
		return
	}
	nm := f.newMember(old.slot, old.gen+1)
	f.mu.Lock()
	if f.closed.Load() {
		f.mu.Unlock()
		// The fleet closed while the replacement was being built. The
		// session was never started; run it killed so its exchange and
		// capture machinery unwinds instead of leaking.
		nm.sess.Kill()
		nm.sess.Start()
		nm.sess.Wait()
		return
	}
	f.slots[old.slot] = nm
	f.launch(nm)
	f.mu.Unlock()
	f.recycled.Add(1)
}

// memberSeed derives the diversity seed for slot's generation-gen session.
//
// Generation 0 uses the configured base seed for every slot — the fleet
// equivalent of deploying the same diversified build on every node; the
// security diversity the MVEE relies on is BETWEEN the variants inside a
// session (the variant id feeds layout randomization), not between pool
// members. Respawned sessions are re-randomized: an attacker whose layout
// leak diverged (and thereby burned) one session cannot reuse the leak
// against its replacement, because the replacement's variants live at
// fresh addresses.
func memberSeed(base int64, slot, gen int) int64 {
	if gen == 0 {
		return base
	}
	return base + int64(slot+1)*7919 + int64(gen)*104729
}
