package fleet

import "fmt"

// The epoch-file contract between a hot-restarting guest program and its
// host-side observers. A program that supports zero-downtime reload (the
// prefork webserver) publishes its live worker generation by writing
// EpochFile inside its simulated kernel; the fleet snapshot reads it back
// through Kernel.ReadFile and surfaces it per member, which is how
// /statusz and /metrics show which generation each member is serving with
// — without the observer ever entering the guest.

// EpochFile is the guest path where the live generation is published.
const EpochFile = "/run/epoch"

// FormatEpochState renders the EpochFile payload.
func FormatEpochState(epoch int, seed int64, workers int) []byte {
	return []byte(fmt.Sprintf("epoch=%d seed=%d workers=%d\n", epoch, seed, workers))
}

// ParseEpochState parses an EpochFile payload. ok is false for anything
// FormatEpochState would not have produced.
func ParseEpochState(b []byte) (epoch int, seed int64, workers int, ok bool) {
	var e, w int
	var s int64
	if n, err := fmt.Sscanf(string(b), "epoch=%d seed=%d workers=%d", &e, &s, &w); err != nil || n != 3 {
		return 0, 0, 0, false
	}
	return e, s, w, true
}
