package fleet_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/kernel"
	"repro/internal/webserver"
)

// TestChaosSoak is the fleet-level chaos acceptance (DESIGN.md §8): the
// prefork webserver pool serves a concurrent load while a worker-kill
// storm (/quit exits and /killme SIGTERMs) churns the worker processes
// AND a seeded fault plan injects connection resets, short transfers, and
// listener latency — all on 10× accelerated kernel time. The MVEE
// contract under all of that:
//
//   - zero divergences and zero program crashes (every injected fault is a
//     master decision replicated to the slaves, so lockstep cannot break);
//   - no leaked processes: every killed worker is reaped and re-forked,
//     and each member settles back to variants × (parent + Workers)
//     running procs with no zombies;
//   - no leaked descriptors: at quiescence every process holds exactly its
//     share of the listener, nothing else.
//
// CI runs this ×3 under -race as part of the stress job.
func TestChaosSoak(t *testing.T) {
	const (
		pool     = 2
		workers  = 3
		clients  = 6
		requests = 30
		kills    = 12
	)
	cfg := webserver.Config{
		Port: 8300, PageSize: 1024, InstrumentCustomSync: true,
		Prefork: true, Workers: workers,
	}
	// Listener errors are deliberately absent from the plan: a failed
	// accept is how a worker learns its listener closed (it exits without
	// replacement), so accept faults would legitimately drain the worker
	// pool rather than expose a bug.
	plan, err := chaos.Parse(
		"target=listener latency=+200us; " +
			"target=socket error=2% errno=ECONNRESET timeout=2% short-reads short-writes seed=7")
	if err != nil {
		t.Fatal(err)
	}
	injector := chaos.New(plan)

	sess := sessOpts()
	sess.Telemetry = true
	sess.Inject = injector
	sess.TimeScale = 10
	fc := webserver.FleetConfig(cfg, sess, pool)
	// The request watchdog must tick on the same accelerated time the
	// session kernels run on.
	fc.Clock = kernel.NewScaledClock(10)
	f, err := fleet.New(fc)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	defer f.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				req := []byte("GET /")
				if r%8 == 7 {
					req = []byte("GET /count")
				}
				// Chaos makes individual request failures legitimate (an
				// injected reset mid-response surfaces as a gateway error);
				// the counters below are what must stay clean.
				f.Do(req)
			}
		}()
	}
	// The kill storm, interleaved with the load: each kill takes down the
	// serving worker after it responds, and the parent's waitpid loop
	// re-forks a replacement while the surviving workers keep serving.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < kills; k++ {
			req := []byte("GET /quit")
			if k%2 == 1 {
				req = []byte("GET /killme")
			}
			f.Do(req)
		}
	}()
	wg.Wait()

	s := f.Stats()
	if s.Divergences != 0 {
		t.Fatalf("chaos soak diverged %d times: %+v\nquarantines: %+v", s.Divergences, s, f.Quarantined())
	}
	if s.Crashes != 0 {
		t.Fatalf("chaos soak crashed %d sessions: %+v\nquarantines: %+v", s.Crashes, s, f.Quarantined())
	}
	if s.Served == 0 {
		t.Fatal("nothing was served — the storm killed the fleet outright")
	}
	if injector.Injected() == 0 {
		t.Fatal("the fault plan injected nothing — the soak exercised no chaos")
	}

	// Quiescence: after the load drains, every member must settle back to
	// exactly variants × (parent + workers) running processes, zero
	// zombies, and at most one descriptor — the shared listener — per
	// process (slave-variant procs hold zero: replicated descriptor calls
	// execute only in the master's process). Anything above that is a
	// leaked proc or fd from the kill/re-fork churn; poll briefly, since
	// the last re-fork may still be in flight.
	wantProcs := sessOpts().Variants * (1 + workers)
	deadline := time.Now().Add(30 * time.Second)
	var last string
	for {
		last = leakReport(f.Snapshot(), wantProcs)
		if last == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never quiesced leak-free: %s\n%s", last, procTable(f.Snapshot()))
		}
		time.Sleep(time.Millisecond)
	}
}

// leakReport returns "" when every member shows exactly wantProcs running
// processes, no zombies, and at most two open fds per process — the
// listener share plus the resident read-only page file the webserver's
// sendfile path serves from; otherwise a description of the first
// discrepancy.
func leakReport(snap fleet.Snapshot, wantProcs int) string {
	for _, m := range snap.Members {
		running := 0
		for _, p := range m.Procs {
			switch p.State {
			case "running":
				running++
				if p.OpenFDs > 2 {
					return fmt.Sprintf("slot %d: pid %d holds %d fds, want <= 2 (leaked descriptor)", m.Slot, p.Pid, p.OpenFDs)
				}
			case "zombie":
				return fmt.Sprintf("slot %d: pid %d is an unreaped zombie", m.Slot, p.Pid)
			}
		}
		if running != wantProcs {
			return fmt.Sprintf("slot %d: %d running procs, want %d", m.Slot, running, wantProcs)
		}
	}
	return ""
}

// procTable renders every member's process table for failure messages.
func procTable(snap fleet.Snapshot) string {
	var b []byte
	for _, m := range snap.Members {
		b = fmt.Appendf(b, "slot %d gen %d:\n", m.Slot, m.Gen)
		for _, p := range m.Procs {
			b = fmt.Appendf(b, "  pid %-5d vpid %-3d parent %-3d %-8s fds %d\n",
				p.Pid, p.Vpid, p.Parent, p.State, p.OpenFDs)
		}
	}
	return string(b)
}

// TestReloadUnderChaos drives hot restarts THROUGH the storm: while the
// prefork pool serves a concurrent load, absorbs a worker kill-storm, and
// eats injected socket faults, the fleet sweeps SIGHUP reloads across the
// members — epoch swaps, drains, and diversity refreshes interleaved with
// worker deaths and re-forks. The contract is the soak's (zero divergence,
// zero crashes, leak-free quiescence) plus: every member actually advanced
// its worker generation. CI runs this ×3 under -race as part of the stress
// job.
func TestReloadUnderChaos(t *testing.T) {
	const (
		pool     = 2
		workers  = 3
		clients  = 6
		requests = 30
		kills    = 8
		reloads  = 3
	)
	cfg := webserver.Config{
		Port: 8301, PageSize: 1024, InstrumentCustomSync: true,
		Prefork: true, Workers: workers, WorkerThreads: 2,
	}
	plan, err := chaos.Parse(
		"target=socket error=2% errno=ECONNRESET short-reads short-writes seed=11")
	if err != nil {
		t.Fatal(err)
	}
	injector := chaos.New(plan)

	sess := sessOpts()
	sess.Inject = injector
	sess.TimeScale = 10
	fc := webserver.FleetConfig(cfg, sess, pool)
	fc.Clock = kernel.NewScaledClock(10)
	f, err := fleet.New(fc)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	defer f.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				req := []byte("GET /")
				if r%8 == 7 {
					req = []byte("GET /count")
				}
				f.Do(req)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < kills; k++ {
			req := []byte("GET /quit")
			if k%2 == 1 {
				req = []byte("GET /killme")
			}
			f.Do(req)
		}
	}()
	// The reload sweeps, fired while the load and the kill storm are both
	// in full swing: each one lands at the parents' next waitpid boundary
	// and starts an epoch swap mid-churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < reloads; r++ {
			time.Sleep(2 * time.Millisecond)
			f.Reload()
		}
	}()
	wg.Wait()

	s := f.Stats()
	if s.Divergences != 0 {
		t.Fatalf("reload-under-chaos diverged %d times: %+v\nquarantines: %+v", s.Divergences, s, f.Quarantined())
	}
	if s.Crashes != 0 {
		t.Fatalf("reload-under-chaos crashed %d sessions: %+v\nquarantines: %+v", s.Crashes, s, f.Quarantined())
	}
	if s.Served == 0 {
		t.Fatal("nothing was served through the reload storm")
	}
	if s.Reloads != reloads {
		t.Fatalf("reload sweeps recorded = %d, want %d", s.Reloads, reloads)
	}

	// Same leak-free quiescence bar as the plain soak: the displaced
	// generations must drain completely even though they died mid-churn.
	wantProcs := sessOpts().Variants * (1 + workers)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if leakReport(f.Snapshot(), wantProcs) == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never quiesced leak-free after reloads: %s\n%s",
				leakReport(f.Snapshot(), wantProcs), procTable(f.Snapshot()))
		}
		time.Sleep(time.Millisecond)
	}
	// Every member advanced its worker generation (back-to-back SIGHUPs
	// may coalesce while a parent is mid-swap, so >= 1 is the guarantee;
	// the sweep counter above pins the exact number of sweeps).
	for _, m := range f.Snapshot().Members {
		if m.Epoch < 1 {
			t.Fatalf("slot %d never advanced past epoch %d (seed %d)", m.Slot, m.Epoch, m.EpochSeed)
		}
	}
}
