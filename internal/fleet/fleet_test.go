package fleet_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/kernel"
	"repro/internal/synclib"
	"repro/internal/variant"
	"repro/internal/webserver"
)

const testSeed = 77

// sessOpts is the per-session MVEE template every fleet test uses: two
// diversified variants under the wall-of-clocks agent.
func sessOpts() core.Options {
	return core.Options{Variants: 2, Agent: agent.WallOfClocks, ASLR: true, DCL: true,
		Seed: testSeed, MaxThreads: 64}
}

func newTestFleet(t *testing.T, cfg webserver.Config, size int, tune func(*fleet.Config)) *fleet.Fleet {
	t.Helper()
	fc := webserver.FleetConfig(cfg, sessOpts(), size)
	if tune != nil {
		tune(&fc)
	}
	f, err := fleet.New(fc)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

// attackGadget is the code address an attacker with a layout leak for one
// variant of a seed-`seed` session would target (webserver_test does the
// same against a single session).
func attackGadget(targetVariant int, seed int64) uint64 {
	sp := variant.NewSpace(targetVariant, variant.Options{ASLR: true, DCL: true, Seed: seed})
	return sp.AllocCode(64)
}

// waitHealthy polls until n members accept dispatch (respawn warm-up).
func waitHealthy(t *testing.T, f *fleet.Fleet, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if f.Stats().Healthy >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("pool never returned to %d healthy members: %+v", n, f.Members())
}

// TestFleetServes100RequestsAcross4Sessions is the core serving
// acceptance: a pool of 4 MVEE sessions answers at least 100 concurrent
// requests through the gateway with zero failures, and the dispatcher
// spreads them over every member.
func TestFleetServes100RequestsAcross4Sessions(t *testing.T) {
	cfg := webserver.Config{Port: 8080, PoolThreads: 4, InstrumentCustomSync: true, PageSize: 1024}
	f := newTestFleet(t, cfg, 4, nil)

	const clients, perClient = 10, 12 // 120 requests
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				resp, err := f.Do([]byte("GET /"))
				if err != nil {
					errs <- err
				} else if !strings.Contains(string(resp), "200 OK") {
					errs <- fmt.Errorf("bad response: %.60q", resp)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("request failed: %v", err)
	}
	s := f.Stats()
	if s.Served < clients*perClient {
		t.Fatalf("served %d < %d", s.Served, clients*perClient)
	}
	if s.Divergences != 0 || s.Errors != 0 {
		t.Fatalf("unexpected trouble: %+v", s)
	}
	if s.Latency.Count() < clients*perClient || s.Latency.Quantile(0.5) == 0 {
		t.Fatalf("latency histogram not populated: %v", s.Latency.String())
	}
	for _, m := range f.Members() {
		if m.Served == 0 {
			t.Fatalf("member %d served nothing: %+v", m.Slot, f.Members())
		}
	}
}

// TestFleetQuarantinesInjectedDivergence is the divergence acceptance: an
// exploit payload injected into a 4-session pool diverges exactly one
// session; that session is quarantined and hot-replaced while concurrent
// requests on the other sessions all succeed, and the pool keeps serving
// afterwards.
func TestFleetQuarantinesInjectedDivergence(t *testing.T) {
	cfg := webserver.Config{Port: 8080, PoolThreads: 4, InstrumentCustomSync: true,
		Vulnerable: true, PageSize: 1024}
	f := newTestFleet(t, cfg, 4, nil)

	// Concurrent benign traffic, running across the attack window.
	var wg sync.WaitGroup
	type reqErr struct{ err error }
	errs := make(chan reqErr, 400)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 25; r++ {
				if _, err := f.Do([]byte("GET /")); err != nil {
					errs <- reqErr{err}
				}
			}
		}()
	}

	// The injected divergence: a gadget address tailored to variant 0's
	// layout, sent mid-traffic. The monitor kills the serving session at
	// the divergent send, so the attacker must NOT see the leak.
	time.Sleep(2 * time.Millisecond)
	resp, err := f.Do([]byte(fmt.Sprintf("POST /upload %x", attackGadget(0, testSeed))))
	if err == nil && strings.Contains(string(resp), "PWNED") {
		t.Fatalf("leak escaped the fleet: %q", resp)
	}
	wg.Wait()
	close(errs)

	// Exactly one session burned; its quarantine record is complete.
	quars := f.Quarantined()
	if len(quars) != 1 {
		t.Fatalf("want exactly 1 quarantined session, got %d: %+v", len(quars), quars)
	}
	q := quars[0]
	if q.Divergence == nil || q.Divergence.Reason != "payload mismatch" {
		t.Fatalf("quarantine lacks the divergence verdict: %+v", q)
	}
	if q.Gen != 0 || q.Seed != testSeed {
		t.Fatalf("unexpected quarantined session identity: %+v", q)
	}
	// The flight-recorder tail rode along: the monitor froze each
	// variant's last replicated records at kill time, and they must show
	// the serving activity that led up to the divergent send.
	if len(q.Flight) != 2 {
		t.Fatalf("quarantine flight tails for %d variants, want 2", len(q.Flight))
	}
	for v, tail := range q.Flight {
		if len(tail) == 0 {
			t.Fatalf("variant %d quarantine flight tail is empty", v)
		}
	}

	// No in-flight request on the other three sessions may have failed:
	// any benign failure must implicate the quarantined session.
	tag := fmt.Sprintf("slot %d (gen %d)", q.Slot, q.Gen)
	for e := range errs {
		if !strings.Contains(e.err.Error(), tag) {
			t.Errorf("request failed on a healthy session: %v", e.err)
		}
	}

	// The slot is hot-replaced and the pool keeps serving.
	waitHealthy(t, f, 4)
	var gen1 bool
	for _, m := range f.Members() {
		if m.Slot == q.Slot && m.Gen == q.Gen+1 {
			gen1 = true
		}
	}
	if !gen1 {
		t.Fatalf("quarantined slot not respawned: %+v", f.Members())
	}
	for r := 0; r < 20; r++ {
		if _, err := f.Do([]byte("GET /")); err != nil {
			t.Fatalf("post-recycle request %d failed: %v", r, err)
		}
	}
	if s := f.Stats(); s.Recycled != 1 || s.Divergences != 1 {
		t.Fatalf("stats after recycle: %+v", s)
	}
}

// TestFleetRecyclesBenignDivergence reproduces the paper's §5.5 negative
// result inside the fleet: with the nginx-style custom spinlock left
// uninstrumented, traffic causes a benign divergence; the pool must
// quarantine the diverged session (with a forensic trace, since Forensics
// is on), record the divergence, respawn, and continue serving.
func TestFleetRecyclesBenignDivergence(t *testing.T) {
	cfg := webserver.Config{Port: 8080, PoolThreads: 4, InstrumentCustomSync: false}
	f := newTestFleet(t, cfg, 2, func(fc *fleet.Config) { fc.Forensics = true })

	// Hammer the endpoint that exposes the custom-lock-protected counter
	// until some session's variants drift apart.
	deadline := time.Now().Add(60 * time.Second)
	for f.Stats().Divergences == 0 && time.Now().Before(deadline) {
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f.Do([]byte("GET /count")) // divergence-window errors expected
			}()
		}
		wg.Wait()
	}
	quars := f.Quarantined()
	if len(quars) == 0 {
		t.Fatal("uninstrumented custom sync never diverged under fleet traffic (§5.5)")
	}
	q := quars[0]
	if q.Divergence == nil {
		t.Fatalf("quarantine without divergence verdict: %+v", q)
	}
	if q.Trace == nil {
		t.Fatalf("Forensics fleet did not capture the execution trace: %+v", q)
	}
	if q.Trace.Program != "nginx-sim" {
		t.Fatalf("trace names %q", q.Trace.Program)
	}

	// The pool respawns and keeps serving the static page (which does not
	// depend on the drifting counter value).
	waitHealthy(t, f, 2)
	ok := 0
	for r := 0; r < 50; r++ {
		if resp, err := f.Do([]byte("GET /")); err == nil && strings.Contains(string(resp), "200 OK") {
			ok++
		}
	}
	// Under continuing /-count-free load, only a request caught by a
	// fresh benign divergence may fail; the pool itself must keep going.
	if ok < 40 {
		t.Fatalf("pool stopped serving after recycle: %d/50 ok", ok)
	}
}

// TestFleetRerandomizesRecycledSession: the replacement session gets a
// fresh diversity seed, so the layout leak that burned its predecessor is
// dead — the same exploit payload now misses EVERY variant, which is a
// benign (identical) 500 response instead of a divergence.
func TestFleetRerandomizesRecycledSession(t *testing.T) {
	cfg := webserver.Config{Port: 8080, PoolThreads: 2, InstrumentCustomSync: true, Vulnerable: true}
	f := newTestFleet(t, cfg, 1, nil)

	gadget := attackGadget(0, testSeed)
	payload := []byte(fmt.Sprintf("POST /upload %x", gadget))
	if resp, err := f.Do(payload); err == nil && strings.Contains(string(resp), "PWNED") {
		t.Fatalf("leak escaped: %q", resp)
	}
	waitHealthy(t, f, 1)
	m := f.Members()[0]
	if m.Gen != 1 || m.Seed == testSeed {
		t.Fatalf("replacement not rerandomized: %+v", m)
	}

	// Same leak, fresh layouts: all variants agree the gadget is garbage.
	resp, err := f.Do(payload)
	if err != nil {
		t.Fatalf("replayed attack errored (should be benign now): %v", err)
	}
	if !strings.Contains(string(resp), "500 internal error") {
		t.Fatalf("replayed attack response: %q", resp)
	}
	if s := f.Stats(); s.Divergences != 1 {
		t.Fatalf("replayed attack burned another session: %+v", s)
	}
}

// slowEchoProgram is a minimal non-webserver server: the fleet is generic
// over any program that listens on a port. Each request burns some
// monitored syscalls so requests take long enough to saturate a
// single-worker gateway deterministically.
func slowEchoProgram(port uint16, work int) core.Program {
	return core.Program{Name: "slow-echo", Main: func(t *core.Thread) {
		sfd := t.Syscall(kernel.SysSocket, [6]uint64{}, nil).Val
		t.Syscall(kernel.SysBind, [6]uint64{sfd, uint64(port)}, nil)
		if !t.Syscall(kernel.SysListen, [6]uint64{sfd, uint64(port), 64}, nil).Ok() {
			return
		}
		for {
			acc := t.Syscall(kernel.SysAccept, [6]uint64{sfd}, nil)
			if !acc.Ok() {
				return
			}
			r := t.Syscall(kernel.SysRecv, [6]uint64{acc.Val, 4096}, nil)
			if r.Ok() && r.Val > 0 {
				for i := 0; i < work; i++ {
					t.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil)
				}
				t.Syscall(kernel.SysSend, [6]uint64{acc.Val}, r.Data)
			}
			t.Syscall(kernel.SysClose, [6]uint64{acc.Val}, nil)
		}
	}}
}

// crashyEchoProgram echoes requests but panics on the payload "crash" —
// a model of a plain program bug (not a divergence) taking a session
// down mid-service.
func crashyEchoProgram(port uint16) core.Program {
	return core.Program{Name: "crashy-echo", Main: func(t *core.Thread) {
		sfd := t.Syscall(kernel.SysSocket, [6]uint64{}, nil).Val
		t.Syscall(kernel.SysBind, [6]uint64{sfd, uint64(port)}, nil)
		if !t.Syscall(kernel.SysListen, [6]uint64{sfd, uint64(port), 64}, nil).Ok() {
			return
		}
		for {
			acc := t.Syscall(kernel.SysAccept, [6]uint64{sfd}, nil)
			if !acc.Ok() {
				return
			}
			r := t.Syscall(kernel.SysRecv, [6]uint64{acc.Val, 4096}, nil)
			if r.Ok() && r.Val > 0 {
				if string(r.Data) == "crash" {
					panic("request of death")
				}
				t.Syscall(kernel.SysSend, [6]uint64{acc.Val}, r.Data)
			}
			t.Syscall(kernel.SysClose, [6]uint64{acc.Val}, nil)
		}
	}}
}

// TestFleetRecyclesCrashedSession: a session killed by a program panic
// (no divergence) is quarantined — with the panic value recorded — and
// replaced, so the pool does not silently lose capacity.
func TestFleetRecyclesCrashedSession(t *testing.T) {
	f, err := fleet.New(fleet.Config{
		Size:    1,
		Session: core.Options{Variants: 2, Agent: agent.WallOfClocks, ASLR: true, Seed: 9},
		Program: crashyEchoProgram(9100),
		Port:    9100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if resp, err := f.Do([]byte("hi")); err != nil || string(resp) != "hi" {
		t.Fatalf("echo: %q, %v", resp, err)
	}
	if _, err := f.Do([]byte("crash")); err == nil {
		t.Fatal("request of death was answered")
	}
	// The quarantine lands only after the crashed session finishes
	// unwinding; wait for the record, then for the replacement.
	deadline := time.Now().Add(30 * time.Second)
	for len(f.Quarantined()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	waitHealthy(t, f, 1)
	quars := f.Quarantined()
	if len(quars) != 1 || quars[0].Divergence != nil || quars[0].Panic != "request of death" {
		t.Fatalf("crash quarantine: %+v", quars)
	}
	if m := f.Members()[0]; m.Gen != 1 {
		t.Fatalf("crashed slot not respawned: %+v", m)
	}
	if resp, err := f.Do([]byte("again")); err != nil || string(resp) != "again" {
		t.Fatalf("post-crash echo: %q, %v", resp, err)
	}
	if s := f.Stats(); s.Crashes != 1 || s.Divergences != 0 || s.Recycled != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// wedgyEchoProgram echoes requests but self-deadlocks on the payload
// "wedge" — re-acquiring a non-recursive mutex on the only guest thread,
// the fleet-serving analogue of bugbench's double-lock entry.
func wedgyEchoProgram(port uint16) core.Program {
	return core.Program{Name: "wedgy-echo", Main: func(t *core.Thread) {
		mu := synclib.NewMutex(t)
		sfd := t.Syscall(kernel.SysSocket, [6]uint64{}, nil).Val
		t.Syscall(kernel.SysBind, [6]uint64{sfd, uint64(port)}, nil)
		if !t.Syscall(kernel.SysListen, [6]uint64{sfd, uint64(port), 64}, nil).Ok() {
			return
		}
		for {
			acc := t.Syscall(kernel.SysAccept, [6]uint64{sfd}, nil)
			if !acc.Ok() {
				return
			}
			r := t.Syscall(kernel.SysRecv, [6]uint64{acc.Val, 4096}, nil)
			if r.Ok() && r.Val > 0 {
				if string(r.Data) == "wedge" {
					mu.Lock(t)
					mu.Lock(t) // waits on itself forever
				}
				t.Syscall(kernel.SysSend, [6]uint64{acc.Val}, r.Data)
			}
			t.Syscall(kernel.SysClose, [6]uint64{acc.Val}, nil)
		}
	}}
}

// TestFleetRecyclesDeadlockedSession: a session wedged on a guest-level
// deadlock (no divergence, no crash) is proven dead by the armed detector,
// quarantined with the DeadlockReport recorded, and hot-replaced — instead
// of pinning a gateway worker until the request watchdog fires.
func TestFleetRecyclesDeadlockedSession(t *testing.T) {
	opts := core.Options{Variants: 2, Agent: agent.WallOfClocks, ASLR: true, Seed: 11,
		DetectDeadlocks: true}
	f, err := fleet.New(fleet.Config{
		Size:    1,
		Session: opts,
		Program: wedgyEchoProgram(9150),
		Port:    9150,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if resp, err := f.Do([]byte("hi")); err != nil || string(resp) != "hi" {
		t.Fatalf("echo: %q, %v", resp, err)
	}
	if _, err := f.Do([]byte("wedge")); err == nil {
		t.Fatal("wedging request was answered")
	}
	deadline := time.Now().Add(30 * time.Second)
	for len(f.Quarantined()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	waitHealthy(t, f, 1)
	quars := f.Quarantined()
	if len(quars) != 1 || quars[0].Deadlock == nil || quars[0].Divergence != nil || quars[0].Panic != nil {
		t.Fatalf("deadlock quarantine: %+v", quars)
	}
	if got := quars[0].Deadlock.Cycle; len(got) != 1 || got[0] != 0 {
		t.Fatalf("deadlock cycle: %v, want [0]", got)
	}
	if m := f.Members()[0]; m.Gen != 1 {
		t.Fatalf("wedged slot not respawned: %+v", m)
	}
	if resp, err := f.Do([]byte("again")); err != nil || string(resp) != "again" {
		t.Fatalf("post-deadlock echo: %q, %v", resp, err)
	}
	if s := f.Stats(); s.Deadlocks != 1 || s.Crashes != 0 || s.Divergences != 0 || s.Recycled != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestFleetBackpressure: with one worker and a one-slot queue, a burst of
// TryDo submissions must observe ErrOverloaded instead of queueing
// without bound, while blocking Do still completes.
func TestFleetBackpressure(t *testing.T) {
	f, err := fleet.New(fleet.Config{
		Size:     1,
		Session:  core.Options{Variants: 2, Agent: agent.WallOfClocks, ASLR: true, Seed: 3},
		Program:  slowEchoProgram(9000, 400),
		Port:     9000,
		QueueCap: 1,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const burst = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	overloaded, served := 0, 0
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := f.TryDo([]byte("ping"))
			mu.Lock()
			defer mu.Unlock()
			switch err {
			case nil:
				served++
			case fleet.ErrOverloaded:
				overloaded++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if overloaded == 0 {
		t.Fatalf("no backpressure in a %d-deep burst (served=%d)", burst, served)
	}
	if served == 0 {
		t.Fatal("gateway served nothing")
	}
	if resp, err := f.Do([]byte("hello")); err != nil || string(resp) != "hello" {
		t.Fatalf("echo through blocking Do: %q, %v", resp, err)
	}
	if got := f.Stats().Rejected; got != uint64(overloaded) {
		t.Fatalf("Rejected stat %d != observed %d", got, overloaded)
	}
}

// TestFleetRequestTimeoutUnwedgesHungMember: a member that accepts a
// request and then hangs WITHOUT diverging must not pin a gateway worker
// (or wedge Close) forever — the per-request watchdog closes the
// connection after RequestTimeout.
func TestFleetRequestTimeoutUnwedgesHungMember(t *testing.T) {
	hang := core.Program{Name: "hang", Main: func(th *core.Thread) {
		sfd := th.Syscall(kernel.SysSocket, [6]uint64{}, nil).Val
		th.Syscall(kernel.SysBind, [6]uint64{sfd, 9200}, nil)
		if !th.Syscall(kernel.SysListen, [6]uint64{sfd, 9200, 64}, nil).Ok() {
			return
		}
		for {
			acc := th.Syscall(kernel.SysAccept, [6]uint64{sfd}, nil)
			if !acc.Ok() {
				return
			}
			th.Syscall(kernel.SysRecv, [6]uint64{acc.Val, 4096}, nil)
			// Never respond: block on a second read the client will not
			// satisfy until the watchdog closes the connection.
			th.Syscall(kernel.SysRecv, [6]uint64{acc.Val, 4096}, nil)
			th.Syscall(kernel.SysClose, [6]uint64{acc.Val}, nil)
		}
	}}
	f, err := fleet.New(fleet.Config{
		Size:           1,
		Session:        core.Options{Variants: 2, Agent: agent.WallOfClocks, ASLR: true, Seed: 4},
		Program:        hang,
		Port:           9200,
		RequestTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if _, err := f.Do([]byte("hello?")); err == nil {
		t.Fatal("hung member answered")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("watchdog did not fire: request took %v", el)
	}
}

// TestFleetLeastLoadedDispatch sanity-checks the alternative policy end
// to end.
func TestFleetLeastLoadedDispatch(t *testing.T) {
	cfg := webserver.Config{Port: 8080, PoolThreads: 2, InstrumentCustomSync: true, PageSize: 512}
	f := newTestFleet(t, cfg, 3, func(fc *fleet.Config) { fc.Dispatch = fleet.LeastLoaded })
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				if _, err := f.Do([]byte("GET /")); err != nil {
					t.Errorf("least-loaded request: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if s := f.Stats(); s.Served < 60 {
		t.Fatalf("served %d < 60", s.Served)
	}
}

// TestFleetClosedRejects: requests after Close fail with ErrClosed; Close
// is idempotent.
func TestFleetClosedRejects(t *testing.T) {
	cfg := webserver.Config{Port: 8080, PoolThreads: 2, InstrumentCustomSync: true}
	f := newTestFleet(t, cfg, 1, nil)
	if _, err := f.Do([]byte("GET /")); err != nil {
		t.Fatalf("pre-close request: %v", err)
	}
	f.Close()
	f.Close()
	if _, err := f.Do([]byte("GET /")); err != fleet.ErrClosed {
		t.Fatalf("Do after Close: %v", err)
	}
	if _, err := f.TryDo([]byte("GET /")); err != fleet.ErrClosed {
		t.Fatalf("TryDo after Close: %v", err)
	}
}

// TestGatewayBatchedDispatchStress floods a deliberately narrow gateway
// (one worker, so every batch fills) with concurrent submitters and
// verifies batched dequeuing loses nothing: every request is answered
// exactly once with the right payload, in the presence of Do and TryDo
// mixed. Run under -race in CI (the satellite's gateway stress test).
func TestGatewayBatchedDispatchStress(t *testing.T) {
	f, err := fleet.New(fleet.Config{
		Size:     1,
		Session:  sessOpts(),
		Program:  slowEchoProgram(9100, 0),
		Port:     9100,
		Workers:  1, // force deep batches: one worker drains everything
		QueueCap: 512,
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	defer f.Close()

	const clients, perClient = 16, 25
	var wg sync.WaitGroup
	var rejected atomic.Uint64
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				req := []byte(fmt.Sprintf("batch-%d-%d", c, r))
				var resp []byte
				var err error
				if r%5 == 4 {
					resp, err = f.TryDo(req)
					if err == fleet.ErrOverloaded {
						rejected.Add(1)
						continue // backpressure is a valid outcome for TryDo
					}
				} else {
					resp, err = f.Do(req)
				}
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %v", c, r, err)
					return
				}
				if string(resp) != string(req) {
					errs <- fmt.Errorf("client %d req %d: echoed %q, want %q", c, r, resp, req)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := f.Stats()
	want := uint64(clients*perClient) - rejected.Load()
	if s.Served != want {
		t.Fatalf("served %d, want %d (rejected %d)", s.Served, want, rejected.Load())
	}
	if s.Errors != 0 {
		t.Fatalf("gateway reported %d errors under pure load", s.Errors)
	}
}
