package futex

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Regression for the unbounded-queue-map bug: queueFor used to only ever
// insert, so a process churning through sync addresses grew the table by
// one queue per address it ever touched. Queues must disappear once their
// last waiter drains.
func TestTableRemovesDrainedQueues(t *testing.T) {
	var tbl Table
	words := make([]atomic.Uint32, 64)
	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		for i := range words {
			w := &words[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				tbl.Wait(w, 0)
			}()
		}
		for i := range words {
			w := &words[i]
			for tbl.Waiters(w) == 0 {
				time.Sleep(time.Millisecond)
			}
		}
		for i := range words {
			tbl.WakeAll(&words[i])
		}
		wg.Wait()
		if n := tbl.Queues(); n != 0 {
			t.Fatalf("round %d: %d queues left after all waiters drained, want 0", round, n)
		}
	}
}

func TestTableValueChangedLeavesNoQueue(t *testing.T) {
	var tbl Table
	var w atomic.Uint32
	w.Store(7)
	if tbl.Wait(&w, 3) {
		t.Fatal("Wait slept although *w != val")
	}
	if n := tbl.Queues(); n != 0 {
		t.Fatalf("%d queues after an EAGAIN wait, want 0", n)
	}
	if tbl.Wake(&w, 1) != 0 {
		t.Fatal("Wake released a phantom waiter")
	}
	if n := tbl.Queues(); n != 0 {
		t.Fatalf("%d queues after a waiterless wake, want 0", n)
	}
}

func TestTableInterruptAllDropsQueues(t *testing.T) {
	var tbl Table
	var w atomic.Uint32
	done := make(chan struct{})
	go func() {
		tbl.Wait(&w, 0)
		close(done)
	}()
	for tbl.Waiters(&w) == 0 {
		time.Sleep(time.Millisecond)
	}
	tbl.InterruptAll()
	<-done
	if n := tbl.Queues(); n != 0 {
		t.Fatalf("%d queues after InterruptAll, want 0", n)
	}
	// Future waits return immediately and leave nothing behind.
	if !tbl.Wait(&w, 0) {
		t.Fatal("post-interrupt Wait returned false")
	}
	if n := tbl.Queues(); n != 0 {
		t.Fatalf("%d queues after post-interrupt Wait, want 0", n)
	}
}

func TestParkerWakeBeforeParkDoesNotSleep(t *testing.T) {
	var p Parker
	g := p.Prepare()
	p.Wake() // lands between Prepare and Park
	done := make(chan struct{})
	go func() {
		p.Park(g) // must return immediately: a wake already happened
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Park slept through a Wake issued after Prepare")
	}
}

func TestParkerCancelBalancesWaiters(t *testing.T) {
	var p Parker
	p.Prepare()
	if p.Waiters() != 1 {
		t.Fatalf("Waiters = %d after Prepare, want 1", p.Waiters())
	}
	p.Cancel()
	if p.Waiters() != 0 {
		t.Fatalf("Waiters = %d after Cancel, want 0", p.Waiters())
	}
}

// The store-buffer race the eventcount exists to close: a producer storing
// a word and a consumer parking on it must never both "miss" — under the
// protocol (announce, re-check, park / store, wake) every published value
// is observed. Run with -race in CI.
func TestParkerNoLostWakeups(t *testing.T) {
	var p Parker
	var word atomic.Uint64
	const total = 20000
	done := make(chan struct{})
	go func() {
		defer close(done)
		next := uint64(1)
		for next <= total {
			if word.Load() >= next {
				next++
				continue
			}
			g := p.Prepare()
			if word.Load() >= next {
				p.Cancel()
				continue
			}
			p.Park(g)
		}
	}()
	for v := uint64(1); v <= total; v++ {
		word.Store(v)
		p.Wake()
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("consumer missed a wakeup and parked forever")
	}
	if p.Waiters() != 0 {
		t.Fatalf("Waiters = %d after drain, want 0", p.Waiters())
	}
}

// Many parked waiters, one broadcast: everyone must come back.
func TestParkerBroadcast(t *testing.T) {
	var p Parker
	var flag atomic.Bool
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !flag.Load() {
				g := p.Prepare()
				if flag.Load() {
					p.Cancel()
					return
				}
				p.Park(g)
			}
		}()
	}
	// Let most of them actually park before the flag flips.
	for p.Waiters() < n/2 {
		time.Sleep(time.Millisecond)
	}
	flag.Store(true)
	p.Wake()
	wg.Wait()
}

func TestParkerWakeIsAllocationFree(t *testing.T) {
	var p Parker
	if allocs := testing.AllocsPerRun(100, p.Wake); allocs != 0 {
		t.Fatalf("Wake with no waiters allocates %.1f/op, want 0", allocs)
	}
}

// The uncontended FUTEX_WAKE — value changed, nobody waiting — must not
// create (and then tear down) a queue per call.
func TestTableWakeWithoutQueueIsAllocationFree(t *testing.T) {
	var tbl Table
	var w atomic.Uint32
	if allocs := testing.AllocsPerRun(100, func() { tbl.Wake(&w, 1) }); allocs != 0 {
		t.Fatalf("waiterless Wake allocates %.1f/op, want 0", allocs)
	}
}
