package futex

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWaitReturnsFalseOnChangedValue(t *testing.T) {
	var tbl Table
	var w atomic.Uint32
	w.Store(5)
	if tbl.Wait(&w, 4) {
		t.Fatal("Wait slept although *w != val")
	}
}

func TestWaitWake(t *testing.T) {
	var tbl Table
	var w atomic.Uint32
	done := make(chan bool)
	go func() {
		done <- tbl.Wait(&w, 0)
	}()
	// Wait for the waiter to park.
	for tbl.Waiters(&w) == 0 {
		time.Sleep(time.Millisecond)
	}
	w.Store(1)
	if n := tbl.Wake(&w, 1); n != 1 {
		t.Fatalf("Wake released %d, want 1", n)
	}
	if !<-done {
		t.Fatal("waiter reported it did not sleep")
	}
}

func TestWakeWithoutWaiters(t *testing.T) {
	var tbl Table
	var w atomic.Uint32
	if n := tbl.Wake(&w, 10); n != 0 {
		t.Fatalf("Wake on empty queue released %d", n)
	}
}

func TestWakeN(t *testing.T) {
	var tbl Table
	var w atomic.Uint32
	const waiters = 5
	var woken sync.WaitGroup
	woken.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			tbl.Wait(&w, 0)
			woken.Done()
		}()
	}
	for tbl.Waiters(&w) < waiters {
		time.Sleep(time.Millisecond)
	}
	if n := tbl.Wake(&w, 2); n != 2 {
		t.Fatalf("Wake(2) released %d", n)
	}
	if n := tbl.WakeAll(&w); n != 3 {
		t.Fatalf("WakeAll released %d, want 3", n)
	}
	woken.Wait()
}

func TestDistinctWordsAreIndependent(t *testing.T) {
	var tbl Table
	var w1, w2 atomic.Uint32
	released := make(chan struct{})
	go func() {
		tbl.Wait(&w1, 0)
		close(released)
	}()
	for tbl.Waiters(&w1) == 0 {
		time.Sleep(time.Millisecond)
	}
	if n := tbl.Wake(&w2, 1); n != 0 {
		t.Fatalf("Wake on w2 released a waiter on w1")
	}
	select {
	case <-released:
		t.Fatal("waiter on w1 released by wake on w2")
	case <-time.After(10 * time.Millisecond):
	}
	tbl.Wake(&w1, 1)
	<-released
}

// A miniature mutex built on the futex, locking/unlocking under heavy
// contention — the canonical futex correctness exercise.
func TestFutexMutex(t *testing.T) {
	var tbl Table
	var word atomic.Uint32 // 0 free, 1 locked
	lock := func() {
		for {
			if word.CompareAndSwap(0, 1) {
				return
			}
			tbl.Wait(&word, 1)
		}
	}
	unlock := func() {
		word.Store(0)
		tbl.Wake(&word, 1)
	}

	var counter int
	var wg sync.WaitGroup
	const workers = 8
	const iters = 500
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				lock()
				counter++
				unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d (lost updates => futex broken)", counter, workers*iters)
	}
}
