package futex

import "sync/atomic"

// Package-wide park/wake telemetry. Park and the broadcast half of Wake are
// already scheduler-weight slow paths, so one more uncontended atomic add
// disappears in their cost; the no-waiter Wake fast path — one load per
// publish on the replication path — is deliberately NOT counted, so the
// hot path stays exactly as cheap as before. The counters therefore read
// as "how often did waits actually sleep / how often did a publish have to
// broadcast", which is the signal the admin plane wants: a healthy lockstep
// fleet spins and pauses; sustained park growth means a variant is lagging.
var (
	parkEvents atomic.Uint64 // Park calls (monitor clock waits, ring waits, wall clocks)
	wakeEvents atomic.Uint64 // Wake calls that found waiters and broadcast
)

// Metrics is one snapshot of the package-wide parker counters, cumulative
// since process start.
type Metrics struct {
	Parks uint64 `json:"parks"`
	Wakes uint64 `json:"wakes"`
}

// ReadMetrics snapshots the package-wide parker counters.
func ReadMetrics() Metrics {
	return Metrics{Parks: parkEvents.Load(), Wakes: wakeEvents.Load()}
}
