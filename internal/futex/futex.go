// Package futex provides a futex-style wait/wake service keyed on 32-bit
// words, mirroring Linux's sys_futex, which both the simulated kernel and
// the instrumented synchronization library use for their slow paths.
//
// Semantics follow FUTEX_WAIT / FUTEX_WAKE: Wait(w, val) blocks the caller
// only if *w still equals val at the time the waiter is registered (the
// atomicity that makes futexes race-free), and Wake(w, n) releases up to n
// of the waiters registered at that moment — never waiters that arrive
// later, which is what makes wakeups lossless.
package futex

import (
	"sync"
	"sync/atomic"
)

// Table is an independent futex namespace. Each simulated kernel process
// owns one. The zero value is ready to use.
type Table struct {
	mu          sync.Mutex
	queues      map[*atomic.Uint32]*queue
	interrupted bool
}

type queue struct {
	mu          sync.Mutex
	waiters     []chan struct{} // FIFO; closed channel = woken
	interrupted bool
}

func (t *Table) queueFor(w *atomic.Uint32) *queue {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.queues == nil {
		t.queues = make(map[*atomic.Uint32]*queue)
	}
	q, ok := t.queues[w]
	if !ok {
		q = &queue{interrupted: t.interrupted}
		t.queues[w] = q
	}
	return q
}

// Wait blocks the caller until a Wake on w, provided *w == val at entry.
// It returns true if it was registered (and subsequently woken or
// interrupted), false if the value had already changed (EAGAIN).
func (t *Table) Wait(w *atomic.Uint32, val uint32) bool {
	q := t.queueFor(w)
	q.mu.Lock()
	if w.Load() != val {
		q.mu.Unlock()
		return false
	}
	if q.interrupted {
		q.mu.Unlock()
		return true
	}
	ch := make(chan struct{})
	q.waiters = append(q.waiters, ch)
	q.mu.Unlock()
	<-ch
	return true
}

// Wake releases up to n waiters registered on w at this moment, in FIFO
// order, and returns how many it released.
func (t *Table) Wake(w *atomic.Uint32, n int) int {
	q := t.queueFor(w)
	q.mu.Lock()
	k := n
	if k > len(q.waiters) {
		k = len(q.waiters)
	}
	for i := 0; i < k; i++ {
		close(q.waiters[i])
	}
	q.waiters = append([]chan struct{}(nil), q.waiters[k:]...)
	q.mu.Unlock()
	return k
}

// WakeAll releases every waiter currently registered on w.
func (t *Table) WakeAll(w *atomic.Uint32) int {
	return t.Wake(w, 1<<30)
}

// InterruptAll permanently releases every waiter on every word and makes
// all future Waits return immediately. It is used when a variant is torn
// down (e.g. after divergence); callers of Wait are expected to observe the
// shutdown condition themselves.
func (t *Table) InterruptAll() {
	t.mu.Lock()
	t.interrupted = true
	queues := make([]*queue, 0, len(t.queues))
	for _, q := range t.queues {
		queues = append(queues, q)
	}
	t.mu.Unlock()
	for _, q := range queues {
		q.mu.Lock()
		q.interrupted = true
		for _, ch := range q.waiters {
			close(ch)
		}
		q.waiters = nil
		q.mu.Unlock()
	}
}

// Waiters reports how many goroutines are currently blocked on w. Intended
// for tests and diagnostics.
func (t *Table) Waiters(w *atomic.Uint32) int {
	q := t.queueFor(w)
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.waiters)
}
