// Package futex provides a futex-style wait/wake service keyed on 32-bit
// words, mirroring Linux's sys_futex, which both the simulated kernel and
// the instrumented synchronization library use for their slow paths.
//
// Semantics follow FUTEX_WAIT / FUTEX_WAKE: Wait(w, val) blocks the caller
// only if *w still equals val at the time the waiter is registered (the
// atomicity that makes futexes race-free), and Wake(w, n) releases up to n
// of the waiters registered at that moment — never waiters that arrive
// later, which is what makes wakeups lossless.
package futex

import (
	"sync"
	"sync/atomic"
)

// Table is an independent futex namespace. Each simulated kernel process
// owns one. The zero value is ready to use.
//
// Queues live in the table only while they are needed: a queue is created
// when the first waiter (or waker) touches its word and removed again once
// the last waiter drains — like the kernel's futex hash buckets, which hold
// no per-address state between waits. Without the removal a process that
// churns through sync addresses (every mutex on a connection object, say)
// would grow the map by one entry per address it ever parked on, for the
// lifetime of the process.
type Table struct {
	mu          sync.Mutex
	queues      map[*atomic.Uint32]*queue
	interrupted bool
}

type queue struct {
	// refs counts callers between acquire and release, guarded by
	// Table.mu. A registered waiter also pins the queue (see release), so
	// refs itself only needs to cover the acquire→register window.
	refs int

	mu          sync.Mutex
	waiters     []chan struct{} // FIFO; closed channel = woken
	interrupted bool
}

// acquire returns the queue for w (creating it on first use) with a
// reference held; every acquire must be balanced by one release.
func (t *Table) acquire(w *atomic.Uint32) *queue {
	t.mu.Lock()
	if t.queues == nil {
		t.queues = make(map[*atomic.Uint32]*queue)
	}
	q, ok := t.queues[w]
	if !ok {
		q = &queue{interrupted: t.interrupted}
		t.queues[w] = q
	}
	q.refs++
	t.mu.Unlock()
	return q
}

// acquireExisting is acquire without create-on-miss, for operations that
// only act on registered waiters (Wake, Waiters). The common uncontended
// FUTEX_WAKE — value changed, nobody waiting — must not allocate a queue
// just to find it empty and delete it again.
func (t *Table) acquireExisting(w *atomic.Uint32) *queue {
	t.mu.Lock()
	q := t.queues[w]
	if q != nil {
		q.refs++
	}
	t.mu.Unlock()
	return q
}

// release drops a reference and removes the queue from the table when it
// is no longer reachable: no caller mid-operation and no registered
// waiter. The map identity check guards against deleting a successor queue
// created for the same word after an InterruptAll dropped this one.
func (t *Table) release(w *atomic.Uint32, q *queue) {
	t.mu.Lock()
	q.refs--
	if q.refs == 0 {
		q.mu.Lock()
		empty := len(q.waiters) == 0
		q.mu.Unlock()
		if empty && t.queues[w] == q {
			delete(t.queues, w)
		}
	}
	t.mu.Unlock()
}

// Wait blocks the caller until a Wake on w, provided *w == val at entry.
// It returns true if it was registered (and subsequently woken or
// interrupted), false if the value had already changed (EAGAIN).
func (t *Table) Wait(w *atomic.Uint32, val uint32) bool {
	q := t.acquire(w)
	q.mu.Lock()
	if w.Load() != val {
		q.mu.Unlock()
		t.release(w, q)
		return false
	}
	if q.interrupted {
		q.mu.Unlock()
		t.release(w, q)
		return true
	}
	ch := make(chan struct{})
	q.waiters = append(q.waiters, ch)
	q.mu.Unlock()
	// The registered waiter keeps the queue in the table (release only
	// removes empty queues); whoever pops it last removes the queue.
	t.release(w, q)
	<-ch
	return true
}

// Wake releases up to n waiters registered on w at this moment, in FIFO
// order, and returns how many it released.
func (t *Table) Wake(w *atomic.Uint32, n int) int {
	q := t.acquireExisting(w)
	if q == nil {
		return 0 // no queue, no waiters
	}
	q.mu.Lock()
	k := n
	if k > len(q.waiters) {
		k = len(q.waiters)
	}
	for i := 0; i < k; i++ {
		close(q.waiters[i])
	}
	q.waiters = append(q.waiters[:0], q.waiters[k:]...)
	q.mu.Unlock()
	t.release(w, q)
	return k
}

// WakeAll releases every waiter currently registered on w.
func (t *Table) WakeAll(w *atomic.Uint32) int {
	return t.Wake(w, 1<<30)
}

// InterruptAll permanently releases every waiter on every word and makes
// all future Waits return immediately. It is used when a variant is torn
// down (e.g. after divergence); callers of Wait are expected to observe the
// shutdown condition themselves.
func (t *Table) InterruptAll() {
	t.mu.Lock()
	t.interrupted = true
	queues := make([]*queue, 0, len(t.queues))
	for _, q := range t.queues {
		queues = append(queues, q)
	}
	// Dropping the whole map is safe: callers holding a reference keep
	// their queue pointer, and release's identity check tolerates the
	// entry being gone. Future Waits observe t.interrupted at creation.
	t.queues = nil
	t.mu.Unlock()
	for _, q := range queues {
		q.mu.Lock()
		q.interrupted = true
		for _, ch := range q.waiters {
			close(ch)
		}
		q.waiters = nil
		q.mu.Unlock()
	}
}

// Waiters reports how many goroutines are currently blocked on w. Intended
// for tests and diagnostics.
func (t *Table) Waiters(w *atomic.Uint32) int {
	q := t.acquireExisting(w)
	if q == nil {
		return 0
	}
	q.mu.Lock()
	n := len(q.waiters)
	q.mu.Unlock()
	t.release(w, q)
	return n
}

// Queues reports how many per-word wait queues the table currently holds.
// It exists so tests can assert the table does not accumulate state for
// addresses whose waiters have all drained.
func (t *Table) Queues() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.queues)
}
