package futex

import (
	"sync"
	"sync/atomic"
)

// Parker is the user-space half of a futex: an eventcount a polling loop
// parks on once spinning has stopped paying off. Where Table implements the
// simulated kernel's sys_futex (waiters keyed on a guest word, queues
// created and torn down per address), a Parker is the MVEE's own waiter
// queue for one producer word it already polls — a ring's publication
// word, a Lamport "now serving" clock, a wall clock. The consumer spins a
// while (ring.Backoff), then parks here; the producer, having stored the
// word, calls Wake, which is a single atomic load when nobody is parked —
// so the replication fast path pays one predictable branch for the right
// to cost a lagging slave zero CPU.
//
// The no-lost-wakeup protocol is FUTEX_WAIT's, adapted to arbitrary wait
// conditions:
//
//	g := p.Prepare()            // announce; returns the wake generation
//	if condition() || stopped { // re-check AFTER announcing
//		p.Cancel()
//		...                     // proceed without sleeping
//	}
//	p.Park(g)                   // sleeps only if no Wake since Prepare
//
// Prepare's announcement is an atomic add and the producer re-reads the
// waiter count after storing the condition's data (both sequentially
// consistent), so either the waiter's re-check sees the new state, or the
// producer's Wake sees the waiter — exactly the store-buffer argument that
// makes FUTEX_WAIT's compare-and-block race-free. A Wake that lands
// between Prepare and Park bumps the generation, and Park returns without
// sleeping.
//
// Parking and waking are allocation-free (sync.Cond.Wait recycles its
// queue nodes), which is what lets waits that occasionally escalate to a
// park coexist with the replication path's 0 allocs/op invariant.
//
// The zero value is ready to use. A Parker must not be copied after first
// use.
type Parker struct {
	// waiters counts goroutines between Prepare and the end of Park (or
	// Cancel). Producers read it on every publish; it lives first in the
	// struct so embedding types can keep it on a quiet cache line.
	waiters atomic.Int32

	mu   sync.Mutex
	gen  uint64 // wake generation, guarded by mu
	cond sync.Cond
}

// Prepare announces the caller as a waiter and returns the current wake
// generation. Every Prepare must be balanced by exactly one Cancel or
// Park, and the caller must re-check its wait condition between Prepare
// and Park (see the type comment for why that ordering is load-bearing).
func (p *Parker) Prepare() uint64 {
	p.waiters.Add(1)
	p.mu.Lock()
	g := p.gen
	p.mu.Unlock()
	return g
}

// Cancel withdraws a Prepare without parking.
func (p *Parker) Cancel() {
	p.waiters.Add(-1)
}

// Park blocks until a Wake issued after the Prepare that returned g. If
// one already happened, Park returns immediately. Spurious returns are
// possible (any Wake releases every parked waiter); callers re-check their
// condition in a loop.
func (p *Parker) Park(g uint64) {
	parkEvents.Add(1)
	p.mu.Lock()
	if p.cond.L == nil {
		p.cond.L = &p.mu
	}
	for p.gen == g {
		p.cond.Wait()
	}
	p.mu.Unlock()
	p.waiters.Add(-1)
}

// Wake releases every waiter that Prepared before this call. It is the
// producer-side publish hook: call it after storing the data waiters poll
// for. When no one is parked — the fast path — Wake is one atomic load.
func (p *Parker) Wake() {
	if p.waiters.Load() == 0 {
		return
	}
	wakeEvents.Add(1)
	p.mu.Lock()
	p.gen++
	if p.cond.L == nil {
		p.cond.L = &p.mu
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Waiters reports how many goroutines are currently between Prepare and
// the end of Park/Cancel. Intended for tests and diagnostics.
func (p *Parker) Waiters() int {
	return int(p.waiters.Load())
}

// Gen returns the current wake generation. A waiter that recorded g at
// Prepare time and still observes Gen() == g has seen no Wake since — the
// deadlock detector uses this to prove a poll sleeper is genuinely asleep
// (any Wake that found waiters bumped the generation).
func (p *Parker) Gen() uint64 {
	p.mu.Lock()
	g := p.gen
	p.mu.Unlock()
	return g
}
