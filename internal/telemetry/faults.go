package telemetry

import (
	"sync/atomic"

	"repro/internal/kernel"
)

// Fault-injection counters: how many chaos-plane faults actually fired in
// this session, by class. The monitor bumps them on the master path when a
// record comes back with Ret.Inj bits set — one branch and at most four
// atomic adds on calls that were already slowed by a fault, zero cost on
// clean calls. The fleet sums members' counters in its Snapshot and the
// admin plane renders them on /metrics and /statusz.
type Faults struct {
	latency  atomic.Uint64
	errors   atomic.Uint64
	timeouts atomic.Uint64
	shorts   atomic.Uint64
}

// Count records one injected-fault marker (a kernel Inj bitmask).
func (f *Faults) Count(inj uint8) {
	if inj&kernel.InjLatency != 0 {
		f.latency.Add(1)
	}
	if inj&kernel.InjError != 0 {
		f.errors.Add(1)
	}
	if inj&kernel.InjTimeout != 0 {
		f.timeouts.Add(1)
	}
	if inj&kernel.InjShort != 0 {
		f.shorts.Add(1)
	}
}

// Snapshot returns a point-in-time copy of the counters.
func (f *Faults) Snapshot() FaultSnapshot {
	return FaultSnapshot{
		Latency:  f.latency.Load(),
		Errors:   f.errors.Load(),
		Timeouts: f.timeouts.Load(),
		Shorts:   f.shorts.Load(),
	}
}

// FaultSnapshot is the plain-value view of Faults, mergeable across fleet
// members.
type FaultSnapshot struct {
	Latency  uint64 `json:"latency"`
	Errors   uint64 `json:"errors"`
	Timeouts uint64 `json:"timeouts"`
	Shorts   uint64 `json:"shorts"`
}

// Merge adds o into s (counter addition commutes, like Matrix.Merge).
func (s *FaultSnapshot) Merge(o FaultSnapshot) {
	s.Latency += o.Latency
	s.Errors += o.Errors
	s.Timeouts += o.Timeouts
	s.Shorts += o.Shorts
}

// Total is the sum over fault classes.
func (s FaultSnapshot) Total() uint64 {
	return s.Latency + s.Errors + s.Timeouts + s.Shorts
}
