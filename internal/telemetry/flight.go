package telemetry

import (
	"fmt"
	"sync/atomic"

	"repro/internal/kernel"
)

// FlightCap is the default per-variant flight-recorder depth: the last
// FlightCap replicated records of each variant survive to the divergence
// snapshot. Power of two (the ring masks, it does not divide).
const FlightCap = 128

// FlightRecord is one replicated record's fixed-width forensic summary:
// what the variant did (sysno, a digest of the compared args+payload),
// where in the total order it did it (the ordering-clock ticket; 0 for
// unordered calls), and what signal the record delivered. Seq is the
// per-variant append position, so a snapshot reads as a timeline.
type FlightRecord struct {
	Seq    uint64       `json:"seq"`
	Sysno  kernel.Sysno `json:"sysno"`
	Tid    int32        `json:"tid"`
	Digest uint64       `json:"digest"`
	Ticket uint64       `json:"ticket,omitempty"`
	Sig    uint32       `json:"sig,omitempty"`
}

// String renders one record for /statusz and quarantine dumps.
func (r FlightRecord) String() string {
	s := fmt.Sprintf("#%d tid%d %v digest=%016x", r.Seq, r.Tid, r.Sysno, r.Digest)
	if r.Ticket != 0 {
		s += fmt.Sprintf(" ts=%d", r.Ticket)
	}
	if r.Sig != 0 {
		s += fmt.Sprintf(" sig=%d", r.Sig)
	}
	return s
}

// flightSlot is one ring entry, all-atomic so concurrent appenders a full
// ring lap apart and snapshot readers race benignly (no torn words, and
// the stamp protocol below catches torn RECORDS). Fields are packed into
// four words: stamp (seq+1 once stable, 0 mid-write), sysno<<32|tid,
// digest, ticket, sig.
type flightSlot struct {
	stamp  atomic.Uint64
	nrTid  atomic.Uint64
	digest atomic.Uint64
	ticket atomic.Uint64
	sig    atomic.Uint64
}

// Flight is a lock-free fixed-capacity ring of the last N FlightRecords of
// ONE variant. Appenders (the variant's threads, through the monitor)
// claim a sequence with one atomic add and store the fields; the ring
// wraps by overwriting. Snapshot never blocks appenders: it reads the
// stamp before and after copying a slot and discards entries caught
// mid-write — forensics want the freshest tail, not a barrier on the
// replication path.
type Flight struct {
	mask  uint64
	head  atomic.Uint64
	slots []flightSlot
}

// NewFlight builds a recorder with the given capacity (rounded up to a
// power of two, minimum 2).
func NewFlight(capacity int) *Flight {
	c := 2
	for c < capacity {
		c <<= 1
	}
	return &Flight{mask: uint64(c - 1), slots: make([]flightSlot, c)}
}

// Cap returns the ring capacity.
func (f *Flight) Cap() int { return len(f.slots) }

// Len returns how many records were ever appended.
func (f *Flight) Len() uint64 { return f.head.Load() }

// Append records one replicated call. Allocation-free: one atomic add to
// claim the slot, five atomic stores to fill it. The stamp is zeroed
// first, so a reader that catches the slot mid-overwrite sees a stamp
// that matches neither the old nor the new sequence and skips it.
func (f *Flight) Append(nr kernel.Sysno, tid int, digest, ticket uint64, sig uint32) {
	seq := f.head.Add(1) - 1
	s := &f.slots[seq&f.mask]
	s.stamp.Store(0)
	s.nrTid.Store(uint64(nr)<<32 | uint64(uint32(tid)))
	s.digest.Store(digest)
	s.ticket.Store(ticket)
	s.sig.Store(uint64(sig))
	s.stamp.Store(seq + 1)
}

// Snapshot copies the recorder's current tail, oldest first. Entries being
// overwritten during the read are dropped (their stamp mismatches), so the
// result is always internally consistent; it allocates (per call, not per
// append) and is meant for the kill path and the admin plane.
func (f *Flight) Snapshot() []FlightRecord {
	head := f.head.Load()
	n := head
	if n > uint64(len(f.slots)) {
		n = uint64(len(f.slots))
	}
	out := make([]FlightRecord, 0, n)
	for seq := head - n; seq != head; seq++ {
		s := &f.slots[seq&f.mask]
		if s.stamp.Load() != seq+1 {
			continue // unpublished, or already overwritten by a racing lap
		}
		rec := FlightRecord{
			Seq:    seq,
			Sysno:  kernel.Sysno(s.nrTid.Load() >> 32),
			Tid:    int32(uint32(s.nrTid.Load())),
			Digest: s.digest.Load(),
			Ticket: s.ticket.Load(),
			Sig:    uint32(s.sig.Load()),
		}
		if s.stamp.Load() != seq+1 {
			continue // overwritten mid-copy; the fields may be mixed
		}
		out = append(out, rec)
	}
	return out
}

// Digest hashes the compared portion of a call — the args array and the
// input payload — into one word (FNV-1a over the words and bytes).
// Identical calls digest identically across variants, so a divergence
// snapshot shows WHERE the tails stop matching without shipping payloads.
func Digest(args *[6]uint64, payload []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, a := range args {
		for i := 0; i < 8; i++ {
			h ^= (a >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	for _, b := range payload {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
