package telemetry

// Recorder bundles one session's telemetry: the counter/latency matrix and
// one flight recorder per variant. The monitor owns one (when enabled) and
// feeds it from the interposition point; the fleet and the admin plane
// read it through Snapshot views.
type Recorder struct {
	Matrix  *Matrix
	Flights []*Flight
	// Faults counts chaos-plane injections (see faults.go); always
	// present, all-zero unless a fault plan is installed.
	Faults Faults
}

// New builds a Recorder for nvariants with the default flight depth.
func New(nvariants int) *Recorder {
	return NewWithCap(nvariants, FlightCap)
}

// NewWithCap builds a Recorder with an explicit per-variant flight depth.
func NewWithCap(nvariants, flightCap int) *Recorder {
	if nvariants < 1 {
		nvariants = 1
	}
	r := &Recorder{
		Matrix:  NewMatrix(nvariants),
		Flights: make([]*Flight, nvariants),
	}
	for v := range r.Flights {
		r.Flights[v] = NewFlight(flightCap)
	}
	return r
}

// Variants returns the variant count the recorder was sized for.
func (r *Recorder) Variants() int { return r.Matrix.variants }

// SnapshotFlights copies every variant's current flight tail (oldest
// first). This is what the monitor captures at kill time and what rides
// the quarantine record.
func (r *Recorder) SnapshotFlights() [][]FlightRecord {
	out := make([][]FlightRecord, len(r.Flights))
	for v, f := range r.Flights {
		out[v] = f.Snapshot()
	}
	return out
}
