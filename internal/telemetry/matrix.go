// Package telemetry is the MVEE's observability plane: allocation-free
// per-syscall/per-variant counter and latency matrices fed by the monitor's
// interposition point, and a lock-free flight recorder whose tail of recent
// replicated records is attached to divergence forensics.
//
// The monitor sits on every system call of every variant, which makes it
// the natural vantage point for production metrics — but only if the
// instrumentation respects the replication path's standing invariant:
// 0 allocs/op and no locks on the hot path. Everything here is therefore
// built from fixed-size arrays indexed by kernel.Sysno (the enum is
// bounded and append-only, so an array lookup replaces a map's hashing,
// bucket probing, and allocation) and per-shard atomic words:
//
//   - Counting is ONE uncontended atomic add: Inc indexes
//     [variant][tid&shardMask][sysno] in a flat padded array. Sharding by
//     thread keeps sibling threads of one variant off each other's cache
//     lines, exactly like fleet's per-worker latency shards.
//   - Latency is SAMPLED, not measured per call: every SampleEvery-th call
//     of a given (variant, shard, sysno) cell — decided from the count the
//     hot-path add already returns, so the common case pays one branch and
//     zero clock reads. Sampled calls pay two time.Now() and one
//     stats.AtomicHistogram observation.
//   - The flight recorder (flight.go) stores fixed-width atomic words into
//     a wrapping ring; no allocation, no locks, readers validate via
//     sequence stamps.
package telemetry

import (
	"sync/atomic"
	"time"

	"repro/internal/kernel"
	"repro/internal/stats"
)

// Shards is how many independent counter banks each variant's matrix
// carries; threads map onto banks by tid&(Shards-1). Four banks cover the
// common serving shapes (a handful of pool threads per session) without
// blowing up the snapshot cost, which folds the banks back together.
const Shards = 4

const shardMask = Shards - 1

// SampleEvery is the latency sampling period: one call in SampleEvery per
// (variant, shard, sysno) cell pays the two clock reads and the histogram
// observation; the rest pay only the counting add. A power of two so the
// due-test is a mask, not a division.
const SampleEvery = 64

// SampleDue reports whether the call that received count c (the value
// returned by Inc) is the one that should be latency-sampled. The first
// call of every cell samples (c == 1 wraps to due at c&mask == 1), so even
// rare syscalls get at least one latency observation.
func SampleDue(c uint64) bool { return c&(SampleEvery-1) == 1 }

// bank is one shard's counter row: a fixed array indexed by Sysno. The
// trailing pad keeps the next bank's first counters off this bank's last
// cache line, so threads hashed to different banks never false-share.
type bank struct {
	counts [kernel.SysnoMax]atomic.Uint64
	_      [64]byte
}

// Matrix is the per-session syscall telemetry: counts[variant][shard][nr]
// and sampled latency histograms lat[variant][nr]. Create with NewMatrix;
// the zero value is not usable.
type Matrix struct {
	variants int
	banks    []bank                  // variants * Shards, flat
	lat      []stats.AtomicHistogram // variants * SysnoMax, flat
}

// NewMatrix builds a matrix for nvariants (min 1). All memory is allocated
// here, up front; the hot-path methods never allocate.
func NewMatrix(nvariants int) *Matrix {
	if nvariants < 1 {
		nvariants = 1
	}
	return &Matrix{
		variants: nvariants,
		banks:    make([]bank, nvariants*Shards),
		lat:      make([]stats.AtomicHistogram, nvariants*int(kernel.SysnoMax)),
	}
}

// Variants returns the variant count the matrix was sized for.
func (m *Matrix) Variants() int { return m.variants }

// Inc counts one monitored call of nr by thread tid of variant v and
// returns the cell's new count (feed it to SampleDue). This is the hot
// path: one uncontended atomic add into a fixed array.
func (m *Matrix) Inc(v, tid int, nr kernel.Sysno) uint64 {
	return m.banks[v*Shards+tid&shardMask].counts[nr].Add(1)
}

// Observe records one sampled latency for (v, nr).
func (m *Matrix) Observe(v int, nr kernel.Sysno, d time.Duration) {
	m.lat[v*int(kernel.SysnoMax)+int(nr)].ObserveDuration(d)
}

// Count folds the shards of (v, nr) into the total monitored-call count.
func (m *Matrix) Count(v int, nr kernel.Sysno) uint64 {
	var n uint64
	for s := 0; s < Shards; s++ {
		n += m.banks[v*Shards+s].counts[nr].Load()
	}
	return n
}

// Cell is one (variant, sysno) aggregate in a snapshot.
type Cell struct {
	Count   uint64          `json:"count"`
	Latency stats.Histogram `json:"-"`
	// Sampled latency summary, precomputed for JSON consumers (mvee-top)
	// that cannot carry the histogram's unexported buckets across the
	// wire. Nanoseconds; zero when the cell was never sampled.
	LatN   uint64 `json:"lat_n,omitempty"`
	LatP50 uint64 `json:"lat_p50_ns,omitempty"`
	LatP99 uint64 `json:"lat_p99_ns,omitempty"`
	LatMax uint64 `json:"lat_max_ns,omitempty"`
}

// Snapshot is a point-in-time copy of a Matrix (or a merge of several —
// the fleet folds its members' matrices into one). Indexing is
// Cells[variant][sysno].
type Snapshot struct {
	Variants int      `json:"variants"`
	Cells    [][]Cell `json:"cells"`
}

// Snapshot folds the shards together and snapshots the latency histograms.
// Concurrent Incs are not lost, merely torn across the fold — exact enough
// for an admin plane read while the session serves.
func (m *Matrix) Snapshot() Snapshot {
	s := Snapshot{Variants: m.variants, Cells: make([][]Cell, m.variants)}
	for v := 0; v < m.variants; v++ {
		row := make([]Cell, kernel.SysnoMax)
		for nr := kernel.Sysno(0); nr < kernel.SysnoMax; nr++ {
			c := Cell{Count: m.Count(v, nr)}
			c.Latency = m.lat[v*int(kernel.SysnoMax)+int(nr)].Snapshot()
			c.fillSummary()
			row[nr] = c
		}
		s.Cells[v] = row
	}
	return s
}

func (c *Cell) fillSummary() {
	if c.Latency.Count() == 0 {
		return
	}
	c.LatN = c.Latency.Count()
	c.LatP50 = c.Latency.Quantile(0.50)
	c.LatP99 = c.Latency.Quantile(0.99)
	c.LatMax = c.Latency.MaxValue()
}

// Merge folds o into s cell-wise (counts add, histograms Merge — the same
// commutative-monoid aggregation fleet stats use). Snapshots of different
// variant widths merge over the common prefix and keep the wider tail.
func (s *Snapshot) Merge(o Snapshot) {
	for v := range o.Cells {
		if v >= len(s.Cells) {
			s.Cells = append(s.Cells, o.Cells[v])
			if s.Variants < v+1 {
				s.Variants = v + 1
			}
			continue
		}
		row, orow := s.Cells[v], o.Cells[v]
		for nr := range orow {
			if nr >= len(row) {
				row = append(row, orow[nr])
				continue
			}
			row[nr].Count += orow[nr].Count
			row[nr].Latency.Merge(&orow[nr].Latency)
			row[nr].fillSummary()
		}
		s.Cells[v] = row
	}
}

// Total returns the snapshot's total monitored-call count for variant v.
func (s *Snapshot) Total(v int) uint64 {
	var n uint64
	if v < len(s.Cells) {
		for nr := range s.Cells[v] {
			n += s.Cells[v][nr].Count
		}
	}
	return n
}
