package telemetry

import (
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
)

func TestMatrixCountsPerVariantPerSysno(t *testing.T) {
	m := NewMatrix(2)
	for i := 0; i < 10; i++ {
		m.Inc(0, i, kernel.SysGetpid) // spread over every shard
	}
	m.Inc(0, 0, kernel.SysWrite)
	m.Inc(1, 3, kernel.SysWrite)
	if got := m.Count(0, kernel.SysGetpid); got != 10 {
		t.Fatalf("Count(0, getpid) = %d, want 10", got)
	}
	if got := m.Count(0, kernel.SysWrite); got != 1 {
		t.Fatalf("Count(0, write) = %d, want 1", got)
	}
	if got := m.Count(1, kernel.SysWrite); got != 1 {
		t.Fatalf("Count(1, write) = %d, want 1", got)
	}
	if got := m.Count(1, kernel.SysGetpid); got != 0 {
		t.Fatalf("Count(1, getpid) = %d, want 0", got)
	}
	s := m.Snapshot()
	if s.Total(0) != 11 || s.Total(1) != 1 {
		t.Fatalf("snapshot totals = %d/%d, want 11/1", s.Total(0), s.Total(1))
	}
	if s.Cells[0][kernel.SysGetpid].Count != 10 {
		t.Fatalf("snapshot cell = %+v", s.Cells[0][kernel.SysGetpid])
	}
}

func TestMatrixSampledLatency(t *testing.T) {
	m := NewMatrix(1)
	m.Observe(0, kernel.SysRead, 5*time.Microsecond)
	m.Observe(0, kernel.SysRead, 7*time.Microsecond)
	s := m.Snapshot()
	c := s.Cells[0][kernel.SysRead]
	if c.LatN != 2 || c.LatMax < uint64(7*time.Microsecond) {
		t.Fatalf("latency cell = %+v", c)
	}
}

func TestSampleDue(t *testing.T) {
	// The first call of a cell samples; then one in every SampleEvery.
	if !SampleDue(1) {
		t.Fatalf("count 1 must sample")
	}
	due := 0
	for c := uint64(1); c <= 4*SampleEvery; c++ {
		if SampleDue(c) {
			due++
		}
	}
	if due != 4 {
		t.Fatalf("%d samples in %d calls, want 4", due, 4*SampleEvery)
	}
}

func TestSnapshotMergeAddsCountsAndLatency(t *testing.T) {
	a, b := NewMatrix(2), NewMatrix(2)
	a.Inc(0, 0, kernel.SysOpen)
	a.Observe(0, kernel.SysOpen, time.Microsecond)
	b.Inc(0, 0, kernel.SysOpen)
	b.Inc(0, 0, kernel.SysOpen)
	b.Observe(0, kernel.SysOpen, 3*time.Microsecond)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	c := s.Cells[0][kernel.SysOpen]
	if c.Count != 3 {
		t.Fatalf("merged count = %d, want 3", c.Count)
	}
	if c.LatN != 2 || c.LatMax != uint64(3*time.Microsecond) {
		t.Fatalf("merged latency cell = %+v", c)
	}
}

func TestFlightWrapKeepsLastCap(t *testing.T) {
	f := NewFlight(8)
	args := [6]uint64{1, 2, 3}
	for i := 0; i < 20; i++ {
		f.Append(kernel.SysWrite, 0, Digest(&args, nil), uint64(i+1), 0)
	}
	tail := f.Snapshot()
	if len(tail) != 8 {
		t.Fatalf("tail has %d records, want 8", len(tail))
	}
	for i, r := range tail {
		if want := uint64(12 + i); r.Seq != want {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, r.Seq, want)
		}
		if r.Ticket != r.Seq+1 || r.Sysno != kernel.SysWrite {
			t.Fatalf("tail[%d] = %+v", i, r)
		}
	}
}

func TestFlightRecordsFields(t *testing.T) {
	f := NewFlight(4)
	args := [6]uint64{7, 0, 9}
	f.Append(kernel.SysKill, 3, Digest(&args, []byte("x")), 42, 15)
	tail := f.Snapshot()
	if len(tail) != 1 {
		t.Fatalf("tail = %+v", tail)
	}
	r := tail[0]
	if r.Sysno != kernel.SysKill || r.Tid != 3 || r.Ticket != 42 || r.Sig != 15 {
		t.Fatalf("record = %+v", r)
	}
	if r.Digest != Digest(&args, []byte("x")) {
		t.Fatalf("digest mismatch: %x", r.Digest)
	}
	if r.Digest == Digest(&args, []byte("y")) {
		t.Fatalf("digest ignores the payload")
	}
}

// TestFlightRecorderStress hammers one recorder from many appenders while
// snapshots run concurrently: every snapshot must be internally consistent
// (monotonic seq, in-range sysno, digests that match what appenders wrote
// for that seq). Run under -race in CI, repeatedly.
func TestFlightRecorderStress(t *testing.T) {
	f := NewFlight(64)
	const appenders = 8
	const perAppender = 5000
	stop := make(chan struct{})
	reader := make(chan struct{})
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			args := [6]uint64{uint64(a)}
			d := Digest(&args, nil)
			for i := 0; i < perAppender; i++ {
				f.Append(kernel.SysWrite, a, d, uint64(i), 0)
			}
		}(a)
	}
	go func() {
		defer close(reader)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tail := f.Snapshot()
			last := uint64(0)
			for i, r := range tail {
				if i > 0 && r.Seq <= last {
					t.Errorf("snapshot seq not monotonic: %d after %d", r.Seq, last)
					return
				}
				last = r.Seq
				if r.Sysno >= kernel.SysnoMax || int(r.Tid) >= appenders {
					t.Errorf("snapshot record out of range: %+v", r)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-reader
	if f.Len() != appenders*perAppender {
		t.Fatalf("recorded %d appends, want %d", f.Len(), appenders*perAppender)
	}
	final := f.Snapshot()
	if len(final) == 0 || len(final) > f.Cap() {
		t.Fatalf("final tail has %d records (cap %d)", len(final), f.Cap())
	}
}
