package clock

import "sync/atomic"

// Tickets is a cache-line-isolated monotone dispenser of ordering tickets.
//
// Paired with a Lamport clock as the "now serving" word, it forms the
// ticket-ordering scheme the monitor uses for §4.1's secure system call
// ordering: a master thread Takes a ticket (one uncontended fetch-add),
// waits until the Lamport clock reaches its ticket, performs its ordered
// critical section, and Ticks the clock to pass the turn. Unlike a global
// mutex, the dispenser and the serving clock live on separate cache lines,
// so handing out tickets never invalidates the line waiters are polling,
// and an uncontended ordered call costs two uncontended atomic adds instead
// of a lock/unlock pair.
//
// The zero value is a dispenser at ticket 0, ready to use.
type Tickets struct {
	_ [56]byte // keep the counter off whatever line precedes this struct
	n atomic.Uint64
	_ [56]byte // and off whatever follows (e.g. the serving clock)
}

// Take returns the next ticket (0, 1, 2, ...). Safe for concurrent use.
func (t *Tickets) Take() uint64 { return t.n.Add(1) - 1 }

// Issued returns how many tickets have been handed out.
func (t *Tickets) Issued() uint64 { return t.n.Load() }
