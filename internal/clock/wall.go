package clock

import (
	"fmt"
	"sync/atomic"
)

// DefaultWallSize is the number of clocks in a Wall when the caller does not
// choose one. The paper pre-allocates a fixed number of clocks because the
// agents may not allocate memory dynamically (§3.3); 4096 keeps the
// collision probability low for realistic lock populations while the wall
// still fits comfortably in a shared segment.
const DefaultWallSize = 4096

// Wall is a fixed array of logical clocks onto which synchronization
// variables are mapped by hashing their address ("wall of clocks", §4.5).
// A Wall is a plausible clock: every happens-before edge between ops on the
// same variable is preserved because colliding variables share a clock;
// collisions only ever add ordering, never remove it.
//
// The zero value is not usable; create Walls with NewWall.
type Wall struct {
	clocks []atomic.Uint64
	mask   uint64
}

// NewWall returns a Wall with size clocks. Size must be a power of two so
// that the address hash can be reduced with a mask (the "cheap hash
// function" of §4.5); NewWall panics otherwise.
func NewWall(size int) *Wall {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("clock: wall size %d is not a positive power of two", size))
	}
	return &Wall{clocks: make([]atomic.Uint64, size), mask: uint64(size - 1)}
}

// Size returns the number of clocks in the wall.
func (w *Wall) Size() int { return len(w.clocks) }

// ClockOf returns the index of the clock assigned to the synchronization
// variable at address addr. Adjacent 32-bit variables sharing a 64-bit
// aligned word deliberately map to the same clock (§4.5: a single
// CMPXCHG8B could modify both), hence the >>3 before hashing.
func (w *Wall) ClockOf(addr uint64) int {
	return int(mix(addr>>3) & w.mask)
}

// Now returns the current time of clock cid.
func (w *Wall) Now(cid int) uint64 { return w.clocks[cid].Load() }

// Tick advances clock cid and returns the time before the advance, i.e. the
// timestamp to record in the sync buffer.
func (w *Wall) Tick(cid int) uint64 { return w.clocks[cid].Add(1) - 1 }

// (Wall deliberately has no WaitFor: waits on wall time are the agent's
// job — an inline poll that parks on the group's futex.Parker; see
// wocSlave.Before — and a closure-taking wait API here would allocate on
// the per-sync-op path. The old WaitFor was removed for that reason.)

// Reset zeroes every clock. Used when a wall is recycled between runs.
func (w *Wall) Reset() {
	for i := range w.clocks {
		w.clocks[i].Store(0)
	}
}

// mix is a 64-bit finalizer (splitmix64-style) providing cheap, well
// distributed hashing of addresses onto clocks.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
