package clock

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestLamportZeroValue(t *testing.T) {
	var c Lamport
	if got := c.Now(); got != 0 {
		t.Fatalf("zero-value clock at %d, want 0", got)
	}
}

func TestLamportTickReturnsPreIncrement(t *testing.T) {
	var c Lamport
	for want := uint64(0); want < 100; want++ {
		if got := c.Tick(); got != want {
			t.Fatalf("Tick() = %d, want %d", got, want)
		}
	}
	if c.Now() != 100 {
		t.Fatalf("Now() = %d after 100 ticks, want 100", c.Now())
	}
}

func TestLamportAdvanceNeverMovesBackwards(t *testing.T) {
	var c Lamport
	c.Advance(50)
	if c.Now() != 50 {
		t.Fatalf("Advance(50): Now() = %d", c.Now())
	}
	c.Advance(10)
	if c.Now() != 50 {
		t.Fatalf("Advance(10) moved clock backwards to %d", c.Now())
	}
	c.Advance(50)
	if c.Now() != 50 {
		t.Fatalf("Advance(50) twice: Now() = %d", c.Now())
	}
}

func TestLamportConcurrentTicksAreUnique(t *testing.T) {
	var c Lamport
	const workers = 8
	const per = 1000
	seen := make([]map[uint64]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		seen[w] = make(map[uint64]bool, per)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen[w][c.Tick()] = true
			}
		}(w)
	}
	wg.Wait()
	all := make(map[uint64]bool, workers*per)
	for w := 0; w < workers; w++ {
		for ts := range seen[w] {
			if all[ts] {
				t.Fatalf("timestamp %d issued twice", ts)
			}
			all[ts] = true
		}
	}
	if len(all) != workers*per {
		t.Fatalf("issued %d unique stamps, want %d", len(all), workers*per)
	}
	if c.Now() != workers*per {
		t.Fatalf("final time %d, want %d", c.Now(), workers*per)
	}
}

func TestLamportInlineWait(t *testing.T) {
	// The wait idiom the replication paths use: poll Now inline (the
	// closure-taking WaitFor was removed — it allocated on the per-call
	// path and could not park).
	var c Lamport
	done := make(chan struct{})
	go func() {
		for c.Now() < 3 {
			runtime.Gosched()
		}
		close(done)
	}()
	c.Tick()
	c.Tick()
	c.Tick()
	<-done // deadlocks (test timeout) if the wait never observes 3
}

func TestWallSizeMustBePowerOfTwo(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 12, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWall(%d) did not panic", bad)
				}
			}()
			NewWall(bad)
		}()
	}
	for _, ok := range []int{1, 2, 64, 4096} {
		if w := NewWall(ok); w.Size() != ok {
			t.Errorf("NewWall(%d).Size() = %d", ok, w.Size())
		}
	}
}

func TestWallClockOfIsStable(t *testing.T) {
	w := NewWall(256)
	for addr := uint64(0); addr < 10000; addr += 7 {
		a := w.ClockOf(addr)
		b := w.ClockOf(addr)
		if a != b {
			t.Fatalf("ClockOf(%#x) unstable: %d vs %d", addr, a, b)
		}
		if a < 0 || a >= w.Size() {
			t.Fatalf("ClockOf(%#x) = %d out of range", addr, a)
		}
	}
}

func TestWallAdjacentWordsShareClock(t *testing.T) {
	// Two 32-bit variables inside one 64-bit aligned word must map to the
	// same clock (§4.5: one CMPXCHG8B can modify both).
	w := NewWall(DefaultWallSize)
	base := uint64(0x7f00_1000)
	if w.ClockOf(base) != w.ClockOf(base+4) {
		t.Fatalf("addresses %#x and %#x map to different clocks", base, base+4)
	}
}

func TestWallTickAndWait(t *testing.T) {
	w := NewWall(8)
	cid := w.ClockOf(0x1000)
	if got := w.Tick(cid); got != 0 {
		t.Fatalf("first Tick = %d, want 0", got)
	}
	if got := w.Tick(cid); got != 1 {
		t.Fatalf("second Tick = %d, want 1", got)
	}
	done := make(chan struct{})
	go func() {
		for w.Now(cid) < 3 {
			runtime.Gosched()
		}
		close(done)
	}()
	w.Tick(cid)
	<-done
}

func TestWallReset(t *testing.T) {
	w := NewWall(16)
	for i := 0; i < 16; i++ {
		w.Tick(i)
	}
	w.Reset()
	for i := 0; i < 16; i++ {
		if w.Now(i) != 0 {
			t.Fatalf("clock %d not reset: %d", i, w.Now(i))
		}
	}
}

func TestWallHashDistribution(t *testing.T) {
	// Sequential 64-byte-spaced addresses (a plausible lock layout) should
	// spread over many distinct clocks, not collapse onto a few.
	w := NewWall(1024)
	used := make(map[int]bool)
	for i := 0; i < 1024; i++ {
		used[w.ClockOf(uint64(0x6000_0000+64*i))] = true
	}
	if len(used) < 512 {
		t.Fatalf("1024 spaced addresses hit only %d clocks; hash too weak", len(used))
	}
}

func TestVectorHappensBefore(t *testing.T) {
	a := NewVector(3)
	b := NewVector(3)
	a.Tick(0) // a = [1 0 0]
	b.Join(a)
	b.Tick(1) // b = [1 1 0]
	if !a.HappensBefore(b) {
		t.Fatal("a should happen before b")
	}
	if b.HappensBefore(a) {
		t.Fatal("b must not happen before a")
	}
	c := NewVector(3)
	c.Tick(2) // c = [0 0 1]
	if !a.Concurrent(c) {
		t.Fatal("a and c should be concurrent")
	}
}

func TestVectorEqualAndCopy(t *testing.T) {
	a := NewVector(4)
	a.Tick(1)
	a.Tick(3)
	b := a.Copy()
	if !a.Equal(b) {
		t.Fatal("copy not equal to original")
	}
	b.Tick(0)
	if a.Equal(b) {
		t.Fatal("copy aliases original")
	}
	if a.Concurrent(a.Copy()) {
		t.Fatal("clock concurrent with itself")
	}
}

func TestVectorHappensBeforeIsIrreflexive(t *testing.T) {
	v := NewVector(2)
	v.Tick(0)
	if v.HappensBefore(v) {
		t.Fatal("HappensBefore must be irreflexive")
	}
}

// Property: Advance(t) always yields Now() >= t, and Tick strictly
// increases the clock.
func TestLamportProperties(t *testing.T) {
	f := func(seed []uint16) bool {
		var c Lamport
		var prev uint64
		for _, s := range seed {
			c.Advance(uint64(s))
			if c.Now() < uint64(s) {
				return false
			}
			before := c.Now()
			got := c.Tick()
			if got != before || c.Now() != before+1 {
				return false
			}
			if c.Now() <= prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ClockOf is deterministic and in range for arbitrary addresses
// and wall sizes.
func TestWallClockOfProperty(t *testing.T) {
	sizes := []int{1, 2, 16, 256, 4096}
	f := func(addr uint64, pick uint8) bool {
		w := NewWall(sizes[int(pick)%len(sizes)])
		c := w.ClockOf(addr)
		return c >= 0 && c < w.Size() && c == w.ClockOf(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: joining vector clocks is commutative and monotone.
func TestVectorJoinProperty(t *testing.T) {
	f := func(xs, ys [4]uint32) bool {
		a := NewVector(4)
		b := NewVector(4)
		for i := 0; i < 4; i++ {
			a[i] = uint64(xs[i])
			b[i] = uint64(ys[i])
		}
		ab := a.Copy().Join(b)
		ba := b.Copy().Join(a)
		if !ab.Equal(ba) {
			return false
		}
		// Join result dominates both inputs.
		return !ab.HappensBefore(a) && !ab.HappensBefore(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
