// Package clock provides the logical-clock machinery used by the MVEE.
//
// Three kinds of clocks appear in the paper:
//
//   - A Lamport logical clock per monitor (the "syscall ordering clock",
//     §4.1) that stamps ordered system calls in the master variant and is
//     advanced in the slave variants as they consume those stamps.
//   - A "wall of clocks" (§4.5): a fixed-size array of logical clocks onto
//     which synchronization variables are hashed. The wall is a plausible
//     clock in the sense of Torres-Rojas and Ahamad: it never misses a
//     happens-before edge, though hash collisions may introduce spurious
//     ordering.
//   - Vector clocks, used by tests as an independent oracle for
//     happens-before relationships.
package clock

import (
	"fmt"
	"sync/atomic"
)

// Lamport is a monotonically increasing logical clock. The zero value is a
// clock at time 0, ready to use. All methods are safe for concurrent use.
type Lamport struct {
	t atomic.Uint64
}

// Now returns the current time on the clock.
func (c *Lamport) Now() uint64 { return c.t.Load() }

// Tick advances the clock by one and returns the time *before* the advance.
// This matches the paper's usage: the master records the current time into
// the buffer and then increments the clock.
func (c *Lamport) Tick() uint64 { return c.t.Add(1) - 1 }

// Advance sets the clock forward to at least t. It never moves the clock
// backwards. Advance is used when merging timelines (Lamport's receive
// rule): a monitor that observes a timestamp t updates its clock to
// max(local, t).
func (c *Lamport) Advance(t uint64) {
	for {
		cur := c.t.Load()
		if cur >= t {
			return
		}
		if c.t.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Waiting for a clock value is the caller's job, not this package's: the
// replication paths poll Now inline (no closure — the per-call path must
// not allocate) and park on a futex.Parker past ring.ParkDue, which a
// yield-callback API here could neither express nor stay allocation-free
// doing. The old closure-taking WaitFor was removed for that reason.

// String implements fmt.Stringer.
func (c *Lamport) String() string { return fmt.Sprintf("L(%d)", c.Now()) }
