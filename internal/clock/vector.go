package clock

// Vector is a classic vector clock over a fixed number of processes. The
// MVEE itself does not use vector clocks at run time (they would require
// per-variable dynamic state, which the agents may not allocate, §3.3), but
// the test suite uses them as an exact happens-before oracle against which
// the plausible Wall is validated.
type Vector []uint64

// NewVector returns a vector clock for n processes, all at time zero.
func NewVector(n int) Vector { return make(Vector, n) }

// Copy returns an independent copy of v.
func (v Vector) Copy() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Tick increments the component of process p and returns the updated clock.
func (v Vector) Tick(p int) Vector {
	v[p]++
	return v
}

// Join sets v to the component-wise maximum of v and o (the "receive" rule).
func (v Vector) Join(o Vector) Vector {
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// HappensBefore reports whether v happens strictly before o: v <= o
// component-wise and v != o.
func (v Vector) HappensBefore(o Vector) bool {
	strict := false
	for i := range v {
		if v[i] > o[i] {
			return false
		}
		if v[i] < o[i] {
			strict = true
		}
	}
	return strict
}

// Concurrent reports whether neither clock happens before the other.
func (v Vector) Concurrent(o Vector) bool {
	return !v.HappensBefore(o) && !o.HappensBefore(v) && !v.Equal(o)
}

// Equal reports whether the two clocks are identical.
func (v Vector) Equal(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}
